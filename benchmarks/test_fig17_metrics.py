"""Figure 17: why FreeTensor wins — SubdivNet-GPU hardware counters.

Paper metrics (FreeTensor vs best baseline, SubdivNet on a V100):
1 kernel invocation vs >= 6; DRAM traffic 3.31% of the baseline; L2
traffic 18.38%; FLOP count 79.72%.

Reproduction: the auto-scheduled FreeTensor program runs on the simulated
GPU (instrumented interpreter + cache model); the operator baseline runs
on the instrumented OpTensor device. Both report kernel launches, DRAM
bytes, L2 bytes and FLOPs. (The paper also notes "profiling on the other
cases shows similar results" — we record all four workloads.)
"""

import numpy as np
import pytest

from common import MODULES, TINY, ft_args, record, run_baseline_once

from repro.autosched import GPU, auto_schedule
from repro.runtime import build
from repro.runtime.metrics import MetricsCollector


def _profile_ft(name):
    mod = MODULES[name]
    data = mod.make_data(**TINY[name])
    func = auto_schedule(mod.make_program(), target=GPU)
    m = MetricsCollector()
    exe = build(func, backend="gpusim", metrics=m)
    args, kwargs = ft_args(name, data)
    out = exe(*args, **kwargs)
    np.testing.assert_allclose(out, mod.reference(data), rtol=1e-3,
                               atol=1e-4)
    return m, data


@pytest.mark.parametrize("name", sorted(MODULES))
def test_counters(benchmark, name):
    m, data = _profile_ft(name)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    _out, _leaves, dev = run_baseline_once(name, data)

    ft = m.as_dict()
    base = dev.as_dict()
    base.setdefault("l2_bytes", base["dram_bytes"])

    for metric in ("kernels", "dram_bytes", "l2_bytes", "flops"):
        record("fig17_metrics", f"{name}/{metric}", "freetensor",
               ft[metric])
        record("fig17_metrics", f"{name}/{metric}", "baseline",
               base[metric])
        if base[metric]:
            record("fig17_metrics", f"{name}/{metric}", "ft_over_base",
                   round(ft[metric] / base[metric], 4))


def test_zz_subdivnet_shape(benchmark):
    """The headline claims of Fig. 17 hold for SubdivNet."""
    m, data = _profile_ft("subdivnet")
    _out, _leaves, dev = run_baseline_once("subdivnet", data)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    # one kernel invocation vs many
    assert m.kernels == 1
    assert dev.kernels >= 6
    # DRAM traffic a small fraction of the baseline's (paper: 3.31%)
    assert m.dram_bytes < 0.35 * dev.dram_bytes
    # FLOPs comparable or lower (paper: 79.72%)
    assert m.flops <= 1.1 * dev.flops

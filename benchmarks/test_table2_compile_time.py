"""Table 2: compiling time — rule-based auto-transform vs search tuning.

Paper: FreeTensor auto-transforms each application in 3.9-13.1 s, while
TVM's auto-tuning needs 196-10361 s (dozens to thousands of rounds at
1.8-5 s per round), i.e. FreeTensor uses 0.13%-22.92% of TVM's compile
time while generating faster code on most applications.

Reproduction: the same architecture contrast on our substrate —
``auto_schedule`` (one dependence-guided pass, paper section 4.3) vs
``RandomTuner`` (measure-and-search over the same schedule space, the
TVM/Ansor stand-in). We report total time, tuning rounds and per-round
cost; the shape to reproduce is *orders of magnitude* between one-shot
analysis and measurement-driven search.
"""

import time

import numpy as np
import pytest

from common import MODULES, TINY, ft_args, record

from repro.autosched import CPU, RandomTuner, auto_schedule

#: tuning rounds per workload (the paper's TVM used 54-2944; scaled down
#: to keep the harness quick — the per-round cost is what extrapolates)
ROUNDS = 12


@pytest.mark.parametrize("name", sorted(MODULES))
def test_compile_time(benchmark, name):
    mod = MODULES[name]
    data = mod.make_data(**TINY[name])
    args, kwargs = ft_args(name, data)

    # -- FreeTensor: one-shot rule-based auto-transform -----------------
    t0 = time.perf_counter()
    func = auto_schedule(mod.make_program(), target=CPU)
    ft_time = time.perf_counter() - t0
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    # -- the tuning baseline: compile+measure per round -------------------
    tuner = RandomTuner(mod.make_program(),
                        make_inputs=lambda: args,
                        backend="pycode", rounds=ROUNDS, seed=0,
                        scalars=kwargs)
    result = tuner.tune()

    record("table2_compile_time", name, "freetensor_s", ft_time)
    record("table2_compile_time", name, "tuner_total_s",
           result.total_time)
    record("table2_compile_time", name, "tuner_rounds", result.rounds)
    record("table2_compile_time", name, "tuner_s_per_round",
           result.time_per_round)
    record("table2_compile_time", name, "ft_fraction_of_tuner",
           round(ft_time / result.total_time, 4))
    # the cost-model screening front-end (docs/PERFORMANCE.md): rounds
    # that skipped compile+measure via dedup or dominance pruning
    record("table2_compile_time", name, "tuner_measured",
           result.measured)
    record("table2_compile_time", name, "tuner_dedup_skips",
           result.dedup_skips)
    record("table2_compile_time", name, "tuner_cost_pruned",
           result.cost_pruned)

    # the paper's shape: one-shot transform is a small fraction of even a
    # heavily-truncated tuning session
    assert ft_time < result.total_time
    # and the tuned code is not better than the rule-based schedule
    from repro.runtime import build

    exe = build(func, backend="pycode")
    exe(*args, **kwargs)
    t0 = time.perf_counter()
    exe(*args, **kwargs)
    rule_time = time.perf_counter() - t0
    record("table2_compile_time", name, "rule_exec_s", rule_time)
    record("table2_compile_time", name, "tuned_exec_s",
           result.best_time)

    # compile-path cache counters: evidence the dependence-feasibility
    # memo and the build cache are actually exercised by the session
    # (see docs/PERFORMANCE.md)
    import repro

    stats = repro.compile_cache_stats()
    record("table2_compile_time", name, "dep_cache_hits",
           stats["deps"]["hits"])
    record("table2_compile_time", name, "dep_cache_misses",
           stats["deps"]["misses"])
    record("table2_compile_time", name, "omega_memo_hits",
           stats["omega"]["memo_hits"])
    record("table2_compile_time", name, "build_cache_hits",
           stats["build"]["hits"])
    record("table2_compile_time", name, "build_cache_misses",
           stats["build"]["misses"])

"""Cold- vs warm-start compile benchmark for the persistent cache.

Measures what the persistent cache (repro.cache) actually buys: the
wall-clock of a *fresh Python process* compiling a workload, first
against an empty cache directory (cold — every pass runs, gcc runs),
then again in another fresh process (warm — the pipeline jumps to its
terminal cached pass and the ``.so`` is loaded from the shared store).

Writes ``benchmarks/results/warm_start.json`` and fails — exit code 1 —
unless the warm process's compile is at least ``MIN_SPEEDUP``× faster
than the cold one and performed zero pass executions and zero compiler
invocations.

Usage::

    PYTHONPATH=src python benchmarks/warm_start.py
"""

import json
import os
import subprocess
import sys
import tempfile
import time

MIN_SPEEDUP = 5.0
WORKLOADS = ["gat", "softras"]
BACKEND = "c"

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "results")
OUT_PATH = os.path.join(RESULTS_DIR, "warm_start.json")

_SNIPPET = """
import json, time
import repro as ft
# the compile path imports lazily; pull it in before the timer so the
# measurement is compile work, not module loading (identical either way)
import repro.autosched, repro.cache, repro.pipeline, repro.schedule
from repro.codegen import ccode
from repro.runtime.driver import build
from repro.workloads import {name}
prog = {name}.make_program()
t0 = time.perf_counter()
exe = build(prog, backend={backend!r}, optimize=True)
dt = time.perf_counter() - t0
stats = ft.compile_cache_stats()
print(json.dumps({{
    "compile_s": dt,
    "pass_misses": stats["passes"]["misses"],
    "disk_hits": stats["passes"]["disk_hits"],
    "gcc_runs": stats["disk"]["gcc_runs"],
}}))
"""


def _run(name: str, cache_dir: str) -> dict:
    env = {k: v for k, v in os.environ.items()
           if not k.startswith("REPRO_")}
    env["PYTHONPATH"] = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    env["REPRO_CACHE_DIR"] = cache_dir
    env["REPRO_NO_DAEMON"] = "1"
    out = subprocess.run(
        [sys.executable, "-c",
         _SNIPPET.format(name=name, backend=BACKEND)],
        env=env, text=True, capture_output=True, check=True)
    return json.loads(out.stdout.splitlines()[-1])


def main() -> int:
    results = {}
    failed = False
    with tempfile.TemporaryDirectory(prefix="repro_warm_start_") as root:
        for name in WORKLOADS:
            cache_dir = os.path.join(root, name)
            cold = _run(name, cache_dir)
            warm = _run(name, cache_dir)
            speedup = cold["compile_s"] / max(warm["compile_s"], 1e-9)
            results[name] = {
                "cold_s": round(cold["compile_s"], 4),
                "warm_s": round(warm["compile_s"], 4),
                "speedup": round(speedup, 2),
                "warm_pass_misses": warm["pass_misses"],
                "warm_disk_hits": warm["disk_hits"],
                "warm_gcc_runs": warm["gcc_runs"],
            }
            ok = (speedup >= MIN_SPEEDUP and warm["pass_misses"] == 0
                  and warm["gcc_runs"] == 0)
            print(f"{name}: cold {cold['compile_s']:.3f}s -> warm "
                  f"{warm['compile_s']:.3f}s ({speedup:.1f}x)"
                  f"{' OK' if ok else ' FAIL'}")
            if not ok:
                failed = True
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(OUT_PATH, "w") as f:
        json.dump(results, f, indent=2, sort_keys=True)
    print(f"wrote {OUT_PATH}")
    if failed:
        print(f"FAIL: warm start must be >={MIN_SPEEDUP}x faster with "
              "zero pass executions and zero gcc runs")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Serving throughput benchmark + the dynamic-batching CI gate.

For each workload, runs the same deterministic request mix two ways —
serially (one compiled call per request: the no-serving baseline) and
through a :class:`repro.serving.Server` in thread mode — verifies the
batched responses bit-match the semantics of the serial ones, writes
``benchmarks/results/serving_throughput.json`` and fails (exit 1)
unless dynamic batching is at least ``GATE_SPEEDUP``x faster on at
least ``GATE_WINS`` workloads, at least one of them *ragged*
(pad-and-mask longformer or concat-with-offsets gat).

The request sizes (``repro.serving.endpoints.SERVE_SIZES``) are small
on purpose: serving batching amortizes per-call dispatch (binding,
ctypes marshalling, Python glue), not kernel arithmetic, so the gate
measures the dispatch-bound regime that dominates real model-serving
request streams. Timing follows the house convention (best of
``REPEATS``; compiles warmed before the clock starts).

Usage::

    PYTHONPATH=src python benchmarks/serving_throughput.py
"""

import json
import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from repro.runtime.metrics import (reset_serving_stats,  # noqa: E402
                                   serving_stats)
from repro.serving import Server, default_endpoints  # noqa: E402

#: batched must beat serial GATE_SPEEDUP x on >= GATE_WINS workloads,
#: of which at least one must use a ragged strategy
GATE_SPEEDUP = 2.0
GATE_WINS = 2
RAGGED = ("longformer", "gat")

BACKEND = "c"
REQUESTS = 256
MAX_BATCH = 64
MAX_WAIT_S = 0.005
REPEATS = 7

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "results")
OUT_PATH = os.path.join(RESULTS_DIR, "serving_throughput.json")


def bench(name: str):
    eps = default_endpoints(backend=BACKEND, names=[name])
    ep = eps[name].warm()
    traffic = ep.gen_requests(REQUESTS, seed=0)
    exe = ep.executable(ep.base_func())

    # serial baseline (warm the binding plans first)
    for arrays, scalars in traffic[:8]:
        exe(*arrays, **scalars)
    refs = [exe(*arrays, **scalars) for arrays, scalars in traffic]
    serial = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        for arrays, scalars in traffic:
            exe(*arrays, **scalars)
        serial = min(serial, time.perf_counter() - t0)

    # batched via the real server path
    reset_serving_stats()
    srv = Server(eps, mode="thread", workers=1, max_batch=MAX_BATCH,
                 max_wait_s=MAX_WAIT_S, queue_limit=4 * REQUESTS)
    warm = srv.submit_many(name, traffic)
    for p in warm:
        assert p.result(timeout=120).ok
    batched = float("inf")
    responses = None
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        pendings = srv.submit_many(name, traffic)
        responses = [p.result(timeout=120) for p in pendings]
        batched = min(batched, time.perf_counter() - t0)
    srv.close()
    stats = serving_stats()

    for ref, resp in zip(refs, responses):
        assert resp.ok, f"{name}: {resp.status}: {resp.error}"
        np.testing.assert_allclose(resp.value, ref, rtol=1e-3,
                                   atol=1e-4)

    return {
        "serial_s": round(serial, 6),
        "batched_s": round(batched, 6),
        "serial_rps": round(REQUESTS / serial, 1),
        "batched_rps": round(REQUESTS / batched, 1),
        "speedup": round(serial / batched, 2),
        "ragged": name in RAGGED,
        "batch_size_hist": stats["batch_size_hist"],
        "pad_elements": stats["pad_elements"],
        "latency_p50_ms": round(stats["latency_p50_s"] * 1e3, 3),
        "latency_p99_ms": round(stats["latency_p99_s"] * 1e3, 3),
    }


def main() -> int:
    results = {}
    for name in ("subdivnet", "longformer", "softras", "gat"):
        results[name] = bench(name)
        r = results[name]
        print(f"{name:12s} serial {r['serial_rps']:8.0f} req/s  "
              f"batched {r['batched_rps']:8.0f} req/s  "
              f"speedup {r['speedup']:.2f}x"
              f"{'  (ragged)' if r['ragged'] else ''}")

    wins = sorted(n for n, r in results.items()
                  if r["speedup"] >= GATE_SPEEDUP)
    ragged_wins = [n for n in wins if n in RAGGED]
    passed = len(wins) >= GATE_WINS and len(ragged_wins) >= 1
    results["_gate"] = {
        "rule": f"batched >= {GATE_SPEEDUP}x serial on >= {GATE_WINS} "
                f"workloads, >= 1 ragged",
        "winning_workloads": wins,
        "ragged_winners": ragged_wins,
        "passed": passed,
    }

    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(OUT_PATH, "w") as f:
        json.dump(results, f, indent=2, sort_keys=True)
    print(f"wrote {OUT_PATH}")

    if not passed:
        print(f"FAIL: batched >= {GATE_SPEEDUP}x on {wins} "
              f"(ragged: {ragged_wins}); need {GATE_WINS} wins with "
              f">= 1 ragged")
        return 1
    print(f"gate passed: {wins} (ragged: {ragged_wins})")
    return 0


if __name__ == "__main__":
    sys.exit(main())

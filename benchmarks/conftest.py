"""Benchmark-session plumbing: collect per-experiment results and print
paper-style tables (and persist them to ``benchmarks/results/``)."""

import json
import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

from common import RESULTS, RESULTS_DIR  # noqa: E402


def pytest_sessionfinish(session, exitstatus):
    if not RESULTS:
        return
    os.makedirs(RESULTS_DIR, exist_ok=True)
    report_lines = []
    for exp in sorted(RESULTS):
        rows = RESULTS[exp]
        with open(os.path.join(RESULTS_DIR, f"{exp}.json"), "w") as f:
            json.dump(rows, f, indent=2, default=str)
        cols = sorted({c for r in rows.values() for c in r})
        widths = [max(len("case"), *(len(r) for r in rows))]
        widths += [max(len(c), 12) for c in cols]
        header = "case".ljust(widths[0]) + "  " + "  ".join(
            c.rjust(w) for c, w in zip(cols, widths[1:]))
        report_lines.append(f"\n=== {exp} ===")
        report_lines.append(header)
        report_lines.append("-" * len(header))
        for rname in rows:
            cells = []
            for c, w in zip(cols, widths[1:]):
                v = rows[rname].get(c, "")
                if isinstance(v, float):
                    cell = f"{v:.4g}"
                else:
                    cell = str(v)
                cells.append(cell.rjust(w))
            report_lines.append(rname.ljust(widths[0]) + "  " +
                                "  ".join(cells))
    report = "\n".join(report_lines)
    with open(os.path.join(RESULTS_DIR, "summary.txt"), "w") as f:
        f.write(report + "\n")
    tr = session.config.pluginmanager.get_plugin("terminalreporter")
    if tr is not None:
        tr.write_line(report)

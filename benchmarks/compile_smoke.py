"""Compile-time smoke benchmark for CI.

Runs a short tuner session per workload (the compile-path hot loop:
dependence analysis, schedule legality checks, lowering and codegen),
writes ``benchmarks/results/compile_bench.json`` and fails — exit code 1 —
if any workload's tuner wall-clock regresses more than ``THRESHOLD``×
over the committed baseline in
``benchmarks/results/compile_bench_baseline.json``.

The threshold is deliberately loose (2×): CI machines are slower and
noisier than the machine that produced the baseline; the guard exists to
catch algorithmic regressions (a cache stops hitting, a fast path stops
firing), not micro-level noise.

Usage::

    PYTHONPATH=src python benchmarks/compile_smoke.py
"""

import json
import os
import sys
import time

# this benchmark measures the *in-process* compile path: a warm disk
# cache (or daemon) would make the timings meaningless
os.environ["REPRO_NO_DISK_CACHE"] = "1"
os.environ["REPRO_NO_DAEMON"] = "1"

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from common import MODULES, TINY, ft_args  # noqa: E402

import repro  # noqa: E402
from repro.autosched import RandomTuner  # noqa: E402
from repro.runtime.metrics import pipeline_stats  # noqa: E402

ROUNDS = 12
THRESHOLD = 2.0

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "results")
BASELINE_PATH = os.path.join(RESULTS_DIR, "compile_bench_baseline.json")
OUT_PATH = os.path.join(RESULTS_DIR, "compile_bench.json")


def run_once():
    out = {}
    for name in sorted(MODULES):
        mod = MODULES[name]
        data = mod.make_data(**TINY[name])
        args, kwargs = ft_args(name, data)
        t0 = time.perf_counter()
        tuner = RandomTuner(mod.make_program(),
                            make_inputs=lambda: args,
                            backend="pycode", rounds=ROUNDS, seed=0,
                            scalars=kwargs)
        tuner.tune()
        out[name] = {"tuner_total_s": round(time.perf_counter() - t0, 4)}
    out["_cache_stats"] = repro.compile_cache_stats()
    out["_pipeline_stats"] = pipeline_stats()
    return out


def main() -> int:
    results = run_once()
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(OUT_PATH, "w") as f:
        json.dump(results, f, indent=2, sort_keys=True)
    print(f"wrote {OUT_PATH}")

    stats = results["_cache_stats"]
    print("cache counters:", json.dumps(stats))
    if not (stats["deps"]["hits"] and stats["omega"]["memo_hits"]):
        print("FAIL: compile-path caches were never hit — the memo layer "
              "is not being exercised")
        return 1

    if not os.path.exists(BASELINE_PATH):
        print(f"no baseline at {BASELINE_PATH}; skipping regression check")
        return 0
    with open(BASELINE_PATH) as f:
        baseline = json.load(f)

    failed = False
    for name, row in sorted(baseline.items()):
        if name.startswith("_"):
            continue
        base = row["tuner_total_s"]
        cur = results[name]["tuner_total_s"]
        ratio = cur / base if base else float("inf")
        flag = ""
        if ratio > THRESHOLD:
            failed = True
            flag = f"  REGRESSION (> {THRESHOLD}x)"
        print(f"{name:12s} baseline {base:8.4f}s  current {cur:8.4f}s  "
              f"ratio {ratio:5.2f}x{flag}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())

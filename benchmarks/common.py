"""Shared infrastructure for the benchmark harness.

Each ``test_figNN_*.py`` file regenerates one table/figure of the paper's
evaluation (see DESIGN.md section 3 for the experiment index). Results are
accumulated in :data:`RESULTS` and written to ``benchmarks/results/*.json``
plus printed as paper-style tables at session end (see ``conftest.py``).

Sizes are scaled to this reproduction's substrate (a 1-core Python/NumPy
host; see EXPERIMENTS.md) — the *relative* shapes are the reproduction
target, not absolute times.
"""

from __future__ import annotations

import json
import os
from collections import defaultdict
from typing import Dict

import numpy as np

from repro.autosched import CPU, GPU, auto_schedule
from repro.baselines import Device
from repro.runtime import build
from repro.workloads import gat, longformer, softras, subdivnet

#: experiment -> row -> column -> value
RESULTS: Dict[str, Dict[str, Dict[str, object]]] = defaultdict(
    lambda: defaultdict(dict))

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

MODULES = {
    "subdivnet": subdivnet,
    "longformer": longformer,
    "softras": softras,
    "gat": gat,
}

#: evaluation sizes (scaled-down analogues of the paper's inputs)
SIZES = {
    "subdivnet": dict(n_faces=192, in_feats=8, out_feats=8),
    "longformer": dict(seq_len=192, feat_len=16, w=8),
    "softras": dict(n_faces=12, image_size=20),
    "gat": dict(n_nodes=192, avg_degree=6, feats=8, out_feats=8),
}

#: smaller sizes for the (slow) reference-interpreter "Julia mode"
TINY = {
    "subdivnet": dict(n_faces=48, in_feats=4, out_feats=4),
    "longformer": dict(seq_len=48, feat_len=8, w=4),
    "softras": dict(n_faces=6, image_size=10),
    "gat": dict(n_nodes=48, avg_degree=4, feats=4, out_feats=4),
}

#: which inputs each FreeTensor program takes
GRAD_REQUIRES = {
    "subdivnet": ["e", "w"],
    "longformer": ["q", "k", "v"],
    "softras": ["verts"],
}


def ft_args(name: str, data):
    if name == "subdivnet":
        return (data["adj"], data["e"], data["w"]), {}
    if name == "longformer":
        return (data["q"], data["k"], data["v"]), {"w": data["w"]}
    if name == "softras":
        return (data["verts"], data["px"]), {}
    return (data["indptr"], data["indices"], data["h"], data["wmat"],
            data["att_s"], data["att_d"]), {}


def make_ft_exe(name: str, backend: str = "c", target=None, sizes=None,
                optimize: bool = True):
    """(executable, args, kwargs, data) for a workload's FT program."""
    mod = MODULES[name]
    data = mod.make_data(**(sizes or SIZES[name]))
    prog = mod.make_program()
    func = auto_schedule(prog, target=target or CPU) if optimize \
        else prog.func
    exe = build(func, backend=backend)
    args, kwargs = ft_args(name, data)
    return exe, args, kwargs, data


def run_baseline_once(name: str, data, capacity=None,
                      requires_grad=False):
    mod = MODULES[name]
    dev = Device(f"{name}-baseline", capacity_bytes=capacity)
    if name == "gat":
        out, leaves = mod.run_baseline(data, dev)
    else:
        out, leaves = mod.run_baseline(data, dev,
                                       requires_grad=requires_grad)
    return out, leaves, dev


def record(experiment: str, row: str, column: str, value):
    RESULTS[experiment][row][column] = value


def verify(out, ref, rtol=1e-3, atol=1e-3):
    np.testing.assert_allclose(np.asarray(out), ref, rtol=rtol, atol=atol)

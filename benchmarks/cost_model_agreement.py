"""Rank agreement between the static cost model and real measurements.

For every paper workload, samples a set of structurally distinct
candidate schedules (the same generator the tuner draws from), computes
each candidate's static ``time_proxy`` and measures its actual runtime,
then checks Spearman rank correlation between the two orderings. The
cost model only needs to *rank* candidates for dominance pruning and
FT5xx lint to be useful — absolute scale is irrelevant — so rank
agreement is the right fidelity metric.

Writes ``benchmarks/results/cost_model_agreement.json`` and fails —
exit code 1 — if the mean Spearman rho over the workloads drops below
``MIN_MEAN_RHO``.

Usage::

    PYTHONPATH=src python benchmarks/cost_model_agreement.py
"""

import json
import os
import sys
import time

os.environ["REPRO_NO_DISK_CACHE"] = "1"
os.environ["REPRO_NO_DAEMON"] = "1"

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from common import MODULES, TINY, ft_args  # noqa: E402

from repro.autosched import RandomTuner  # noqa: E402
from repro.ir.hashing import struct_hash  # noqa: E402

#: distinct candidates to sample per workload
SAMPLE = 12
#: candidate-generation attempts before giving up on reaching SAMPLE
MAX_DRAWS = 200
REPEATS = 5
#: full measurement passes over the candidate list; the per-candidate
#: time is the min across passes, so slow drift (thermal, scheduler)
#: decorrelates from candidate order
PASSES = 3
SEED = 0
MIN_MEAN_RHO = 0.6

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "results")
OUT_PATH = os.path.join(RESULTS_DIR, "cost_model_agreement.json")


def average_ranks(xs):
    """Ranks 1..n with ties sharing their average rank."""
    order = sorted(range(len(xs)), key=lambda i: xs[i])
    ranks = [0.0] * len(xs)
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) and xs[order[j + 1]] == xs[order[i]]:
            j += 1
        avg = (i + j) / 2.0 + 1.0
        for k in range(i, j + 1):
            ranks[order[k]] = avg
        i = j + 1
    return ranks


def spearman(xs, ys):
    rx, ry = average_ranks(xs), average_ranks(ys)
    n = len(xs)
    mx = sum(rx) / n
    my = sum(ry) / n
    cov = sum((a - mx) * (b - my) for a, b in zip(rx, ry))
    vx = sum((a - mx) ** 2 for a in rx)
    vy = sum((b - my) ** 2 for b in ry)
    if vx == 0 or vy == 0:
        return 0.0
    return cov / (vx * vy) ** 0.5


def sample_candidates(tuner):
    """Structurally distinct candidates, the base schedule included."""
    cands = [tuner.base]
    seen = {struct_hash(tuner.base)}
    draws = 0
    while len(cands) < SAMPLE and draws < MAX_DRAWS:
        draws += 1
        c = tuner._random_candidate()
        h = struct_hash(c)
        if h not in seen:
            seen.add(h)
            cands.append(c)
    return cands


def main():
    out = {}
    rhos = []
    for name in sorted(MODULES):
        mod = MODULES[name]
        data = mod.make_data(**TINY[name])
        args, kwargs = ft_args(name, data)
        tuner = RandomTuner(mod.make_program(),
                            make_inputs=lambda: args,
                            backend="pycode", rounds=1, seed=SEED,
                            repeats=REPEATS, scalars=kwargs)
        cands = sample_candidates(tuner)
        proxies = [tuner._estimate(c).time_proxy for c in cands]
        measured = [float("inf")] * len(cands)
        for _ in range(PASSES):
            for i, c in enumerate(cands):
                measured[i] = min(measured[i], tuner._measure(c))
        rho = spearman(proxies, measured)
        rhos.append(rho)
        out[name] = {
            "candidates": len(cands),
            "spearman_rho": round(rho, 4),
            "proxy": [round(p, 1) for p in proxies],
            "measured_s": measured,
        }
        print(f"{name:12s} rho={rho:+.3f} over {len(cands)} candidates")

    mean_rho = sum(rhos) / len(rhos)
    out["mean_rho"] = round(mean_rho, 4)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(OUT_PATH, "w") as f:
        json.dump(out, f, indent=2)
    print(f"\nmean rho {mean_rho:+.3f} (gate >= {MIN_MEAN_RHO}); "
          f"wrote {OUT_PATH}")
    if mean_rho < MIN_MEAN_RHO:
        print("FAIL: cost model ranks candidates worse than the gate")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

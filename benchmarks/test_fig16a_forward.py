"""Figure 16(a): end-to-end time WITHOUT differentiation.

Paper series: PyTorch / JAX / TVM / Julia / DGL vs FreeTensor, CPU and
GPU. Reproduction series (see DESIGN.md substitution table):

- ``freetensor_c``      — auto-scheduled, native C/OpenMP backend;
- ``freetensor_numpy``  — auto-scheduled, vectorising NumPy backend;
- ``baseline_op``       — the operator-based framework (PyTorch/JAX
  analogue: one whole-tensor kernel per op);
- ``julia_mode``        — the same fine-grained program executed without
  holistic optimisation (reference interpreter), on a reduced size
  (scaled back up by the size ratio for the table);
- ``gpu_modeled``       — modeled V100 time of the FreeTensor single-
  kernel version vs the baseline's kernel sequence (analytic model over
  measured counters).

Expected shape (paper: FreeTensor up to 5.10x, 2.08x mean over the best
baseline): freetensor_c beats baseline_op on every workload; julia_mode
is far slower than both.
"""

import numpy as np
import pytest

from common import (MODULES, SIZES, TINY, ft_args, make_ft_exe, record,
                    run_baseline_once, verify)

WORKLOADS = sorted(MODULES)


@pytest.mark.parametrize("name", WORKLOADS)
def test_freetensor_c(benchmark, name):
    exe, args, kwargs, data = make_ft_exe(name, backend="c")
    ref = MODULES[name].reference(data)
    out = benchmark(lambda: exe(*args, **kwargs))
    verify(out, ref)
    record("fig16a_forward", name, "freetensor_c",
           benchmark.stats.stats.mean)


@pytest.mark.parametrize("name", WORKLOADS)
def test_freetensor_numpy(benchmark, name):
    exe, args, kwargs, data = make_ft_exe(name, backend="pycode")
    ref = MODULES[name].reference(data)
    out = benchmark.pedantic(lambda: exe(*args, **kwargs), rounds=3,
                             iterations=1, warmup_rounds=1)
    verify(out, ref)
    record("fig16a_forward", name, "freetensor_numpy",
           benchmark.stats.stats.mean)


@pytest.mark.parametrize("name", WORKLOADS)
def test_baseline_operator(benchmark, name):
    mod = MODULES[name]
    data = mod.make_data(**SIZES[name])
    ref = mod.reference(data)

    def run():
        out, _leaves, _dev = run_baseline_once(name, data)
        return out

    out = benchmark(run)
    verify(out.numpy(), ref)
    record("fig16a_forward", name, "baseline_op",
           benchmark.stats.stats.mean)


@pytest.mark.parametrize("name", WORKLOADS)
def test_julia_mode(benchmark, name):
    """Fine-grained control flow without holistic optimisation: the
    unscheduled program on the reference interpreter (reduced size,
    rescaled; the paper's Julia rows are likewise the fallback mode)."""
    exe, args, kwargs, data = make_ft_exe(name, backend="interp",
                                          sizes=TINY[name],
                                          optimize=False)
    ref = MODULES[name].reference(data)
    out = benchmark.pedantic(lambda: exe(*args, **kwargs), rounds=1,
                             iterations=1)
    verify(out, ref)
    # rescale measured time from TINY to SIZES by the work ratio
    ratio = _work_ratio(name)
    record("fig16a_forward", name, "julia_mode",
           benchmark.stats.stats.mean * ratio)


def _work_ratio(name: str) -> float:
    s, t = SIZES[name], TINY[name]
    if name == "subdivnet":
        return (s["n_faces"] * s["in_feats"] * s["out_feats"]) / \
            (t["n_faces"] * t["in_feats"] * t["out_feats"])
    if name == "longformer":
        return (s["seq_len"] * s["feat_len"] * (2 * s["w"] + 1)) / \
            (t["seq_len"] * t["feat_len"] * (2 * t["w"] + 1))
    if name == "softras":
        return (s["n_faces"] * s["image_size"]**2) / \
            (t["n_faces"] * t["image_size"]**2)
    return (s["n_nodes"] * s["avg_degree"] * s["feats"]) / \
        (t["n_nodes"] * t["avg_degree"] * t["feats"])


@pytest.mark.parametrize("name", WORKLOADS)
def test_gpu_modeled(benchmark, name):
    """Modeled V100 times from measured counters (FreeTensor's simulated
    single kernel vs the baseline's kernel chain)."""
    from repro.autosched import GPU
    from repro.runtime import build
    from repro.runtime.metrics import MetricsCollector, V100

    mod = MODULES[name]
    data = mod.make_data(**TINY[name])
    ref = mod.reference(data)
    from repro.autosched import auto_schedule

    func = auto_schedule(mod.make_program(), target=GPU)
    m = MetricsCollector()
    exe = build(func, backend="gpusim", metrics=m)
    args, kwargs = ft_args(name, data)

    out = benchmark.pedantic(lambda: exe(*args, **kwargs), rounds=1,
                             iterations=1)
    verify(out, ref)
    ft_t = V100.time(m)
    _outb, _leaves, dev = run_baseline_once(name, data)

    class _Wrap:
        def as_dict(self):
            d = dev.as_dict()
            d.setdefault("l2_bytes", d["dram_bytes"])
            return d

    base_t = V100.time(_Wrap())
    record("fig16a_forward", name, "gpu_modeled_ft", ft_t)
    record("fig16a_forward", name, "gpu_modeled_baseline", base_t)
    record("fig16a_forward", name, "gpu_kernels_ft", m.kernels)
    record("fig16a_forward", name, "gpu_kernels_base", dev.kernels)
    assert m.kernels < dev.kernels


def test_zz_shape_holds(benchmark):
    """The figure's comparative claim: FreeTensor wins on every workload
    and by a factor comparable to the paper's average."""
    from common import RESULTS

    rows = RESULTS["fig16a_forward"]
    speedups = []
    for name in WORKLOADS:
        r = rows[name]
        if "freetensor_c" in r and "baseline_op" in r:
            speedups.append(r["baseline_op"] / r["freetensor_c"])
            record("fig16a_forward", name, "speedup_vs_op",
                   r["baseline_op"] / r["freetensor_c"])
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert len(speedups) == len(WORKLOADS)
    assert all(s > 1.0 for s in speedups), speedups
    record("fig16a_forward", "MEAN", "speedup_vs_op",
           float(np.exp(np.mean(np.log(speedups)))))

"""Cross-backend wall-clock benchmark + the npblock performance gate.

Times each paper workload on the registered CPU backends (raw,
unscheduled IR — the "just build it" path a new backend must win on),
verifies outputs against the NumPy reference, writes
``benchmarks/results/backend_bench.json`` and fails — exit code 1 — if
the blocked-NumPy ``npblock`` backend does not beat ``pycode`` by at
least ``GATE_SPEEDUP``x on at least ``GATE_WINS`` workloads. That gate
is the registry's retargetability proof in CI: a backend added purely
through ``repro.backend.register_backend`` delivering a real speedup.

Sizes are larger than the correctness suites': NumPy's per-kernel
dispatch cost needs real trip counts to amortize, which is exactly the
regime the blocked lowering targets (short-trip loops fall back to
scalar code at runtime; see ``repro.backend.npblock``).

Usage::

    PYTHONPATH=src python benchmarks/backend_bench.py
"""

import json
import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from common import MODULES, ft_args  # noqa: E402

from repro.runtime import build  # noqa: E402

#: the backends this benchmark compares (interp is orders of magnitude
#: slower and gpusim needs GPU-scheduled IR; both are out of scope here)
BACKENDS = ("pycode", "npblock", "c")

#: npblock must beat pycode by GATE_SPEEDUP x on >= GATE_WINS workloads
GATE_SPEEDUP = 1.5
GATE_WINS = 2

REPEATS = 5

#: trip counts large enough to amortize NumPy kernel dispatch
BENCH_SIZES = {
    "subdivnet": dict(n_faces=256, in_feats=16, out_feats=16),
    "longformer": dict(seq_len=256, feat_len=32, w=16),
    "softras": dict(n_faces=32, image_size=32),
    "gat": dict(n_nodes=256, avg_degree=8, feats=16, out_feats=16),
}

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "results")
OUT_PATH = os.path.join(RESULTS_DIR, "backend_bench.json")


def bench(name: str):
    mod = MODULES[name]
    data = mod.make_data(**BENCH_SIZES[name])
    ref = mod.reference(data)
    args, kwargs = ft_args(name, data)
    func = mod.make_program().func
    row = {}
    for backend in BACKENDS:
        exe = build(func, backend=backend)
        out = exe(*args, **kwargs)  # warm-up + correctness
        np.testing.assert_allclose(out, ref, rtol=1e-3, atol=1e-4)
        best = float("inf")
        for _ in range(REPEATS):
            t0 = time.perf_counter()
            exe(*args, **kwargs)
            best = min(best, time.perf_counter() - t0)
        row[backend] = round(best * 1e3, 3)  # ms
    row["npblock_speedup_vs_pycode"] = round(
        row["pycode"] / row["npblock"], 2)
    return row


def main() -> int:
    results = {}
    for name in sorted(MODULES):
        results[name] = bench(name)
        r = results[name]
        print(f"{name:12s} " +
              "  ".join(f"{b} {r[b]:9.3f} ms" for b in BACKENDS) +
              f"  npblock {r['npblock_speedup_vs_pycode']:.2f}x vs pycode")

    wins = [n for n in results
            if results[n]["npblock_speedup_vs_pycode"] >= GATE_SPEEDUP]
    results["_gate"] = {
        "rule": f"npblock >= {GATE_SPEEDUP}x pycode on "
                f">= {GATE_WINS} workloads",
        "winning_workloads": sorted(wins),
        "passed": len(wins) >= GATE_WINS,
    }

    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(OUT_PATH, "w") as f:
        json.dump(results, f, indent=2, sort_keys=True)
    print(f"wrote {OUT_PATH}")

    if len(wins) < GATE_WINS:
        print(f"FAIL: npblock beat pycode >= {GATE_SPEEDUP}x on only "
              f"{sorted(wins)} (need {GATE_WINS} workloads)")
        return 1
    print(f"gate passed: npblock >= {GATE_SPEEDUP}x pycode on "
          f"{sorted(wins)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Figure 16(b): end-to-end time WITH differentiation (fwd + bwd).

Paper series: the same frameworks' autograd vs FreeTensor's fine-grained
AD; the paper reports up to 127.74x (36.26x mean) and OOM for every
baseline on Longformer-GPU. Reproduction series:

- ``freetensor_c``  — grad() with selective materialization, native
  backend, forward + backward;
- ``baseline_op``   — the operator framework's graph autograd (every op
  output materialised and retained until backward);
- memory rows — the paper's OOM story: the baseline's graph memory vs
  FreeTensor's tape bytes on a capacity-limited simulated GPU.

As in the paper, GAT's gradient is not evaluated.
"""

import numpy as np
import pytest

from common import (GRAD_REQUIRES, MODULES, SIZES, ft_args, record,
                    run_baseline_once)

from repro.ad import GradExecutable, grad
from repro.errors import SimulatedOOM

WORKLOADS = sorted(GRAD_REQUIRES)  # no GAT, as in the paper


@pytest.mark.parametrize("name", WORKLOADS)
def test_freetensor_grad(benchmark, name):
    mod = MODULES[name]
    data = mod.make_data(**SIZES[name])
    gp = grad(mod.make_program(), requires=GRAD_REQUIRES[name])
    exe = GradExecutable(gp, backend="c")
    args, kwargs = ft_args(name, data)

    def run():
        exe(*args, **kwargs)
        return exe.backward()

    grads = benchmark(run)
    # verify against the NumPy gradient reference
    out = exe(*args, **kwargs)
    ref = mod.grad_reference(data, np.ones_like(np.asarray(out)))
    if not isinstance(grads, tuple):
        grads = (grads,)
    for g, key in zip(grads, GRAD_REQUIRES[name]):
        np.testing.assert_allclose(g, ref[key], rtol=2e-2, atol=2e-2)
    record("fig16b_grad", name, "freetensor_c",
           benchmark.stats.stats.mean)
    record("fig16b_grad", name, "ft_tape_bytes", exe.tape_bytes)


@pytest.mark.parametrize("name", WORKLOADS)
def test_baseline_grad(benchmark, name):
    mod = MODULES[name]
    data = mod.make_data(**SIZES[name])

    def run():
        out, leaves, dev = run_baseline_once(name, data,
                                             requires_grad=True)
        out.backward()
        return leaves, dev

    leaves, dev = benchmark(run)
    ref = mod.grad_reference(
        data, np.ones(mod.reference(data).shape, np.float32))
    for key, leaf in leaves.items():
        np.testing.assert_allclose(leaf.grad, ref[key], rtol=2e-2,
                                   atol=2e-2)
    record("fig16b_grad", name, "baseline_op",
           benchmark.stats.stats.mean)
    record("fig16b_grad", name, "baseline_peak_bytes", dev.peak_bytes)


def test_longformer_baseline_oom_on_limited_gpu(benchmark):
    """The paper's Longformer-GPU OOM: on a capacity-limited device the
    operator baseline's retained graph exceeds memory while FreeTensor's
    selective tapes fit easily (paper: all baselines OOM at 32 GB)."""
    from repro.workloads import longformer

    capacity = 192 * 2**20  # a scaled-down "GPU"
    big = longformer.make_data(seq_len=2048, feat_len=64, w=128)

    def run():
        try:
            out, _l, _d = run_baseline_once("longformer", big,
                                            capacity=capacity,
                                            requires_grad=True)
            out.backward()
            return "ok"
        except SimulatedOOM:
            return "OOM"

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    assert outcome == "OOM"
    record("fig16b_grad", "longformer@2048", "baseline_outcome", "OOM")

    # FreeTensor's fwd+tape footprint on the same device, statically
    gp = grad(longformer.make_program(), requires=["q", "k", "v"])
    from repro.runtime.metrics import static_peak_bytes

    n, d, w = 2048, 64, 128
    peak = static_peak_bytes(gp.fwd, {"n": n, "d": d, "w": w},
                             param_bytes=3 * n * d * 4)
    record("fig16b_grad", "longformer@2048", "ft_peak_bytes", peak)
    record("fig16b_grad", "longformer@2048", "ft_outcome",
           "ok" if peak <= capacity else "OOM")
    assert peak <= capacity


def test_zz_shape_holds(benchmark):
    """FreeTensor's AD beats the baseline autograd on every workload, by
    a larger factor than the forward-only comparison (the paper's
    with-differentiation gap widening)."""
    from common import RESULTS

    rows = RESULTS["fig16b_grad"]
    speedups = []
    for name in WORKLOADS:
        r = rows[name]
        if "freetensor_c" in r and "baseline_op" in r:
            s = r["baseline_op"] / r["freetensor_c"]
            speedups.append(s)
            record("fig16b_grad", name, "speedup_vs_op", s)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert len(speedups) == len(WORKLOADS)
    assert all(s > 1.0 for s in speedups), speedups
    record("fig16b_grad", "MEAN", "speedup_vs_op",
           float(np.exp(np.mean(np.log(speedups)))))

"""A/B benchmark of the structured searcher vs. the PR 7 baselines.

Two phases, results committed to
``benchmarks/results/search_ab.json``:

**Quality (per workload, serial)** — the structured knob-space searcher
(``StructuredTuner``) and the ``EvolutionaryTuner`` baseline tune with
the identical seed and candidate budget; both winners are re-measured
head-to-head (min-of-``HEAD_TO_HEAD``). Gate: on every workload the
structured winner is equal-or-better (``TOLERANCE`` head room for timer
noise).

**Parallel scaling (one workload, C backend)** — the same structured
session runs with 1 and with 4 measurement workers in fake-measure mode
(identical candidate streams, compile-dominated wall-clock), each phase
against its own fresh ``REPRO_CACHE_DIR``. Gates:

- same winner at both worker counts (fold determinism);
- total gcc invocations do not scale with worker count (workers share
  compiled artifacts through the disk store): ``gcc_4w <= gcc_1w *
  GCC_SLACK + 2``;
- >= ``MIN_SPEEDUP``x wall-clock speedup with 4 workers — **enforced
  only when the host has >= 4 CPUs** (the CI runners; a 1-core dev box
  physically cannot parallelize, so there the ratio is recorded but not
  gated).

Usage::

    PYTHONPATH=src python benchmarks/search_ab.py
"""

import json
import os
import shutil
import sys
import tempfile
import time

# the quality phase measures with caches off for an honest baseline;
# scale children instead *need* the shared disk store their parent set up
if "--scale-child" not in sys.argv:
    os.environ["REPRO_NO_DISK_CACHE"] = "1"
    os.environ["REPRO_NO_DAEMON"] = "1"

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from common import MODULES, TINY, ft_args  # noqa: E402

from repro.autosched import EvolutionaryTuner, StructuredTuner  # noqa: E402
from repro.ir.hashing import struct_hash  # noqa: E402
from repro.runtime import metrics  # noqa: E402
from repro.runtime.driver import build  # noqa: E402

ROUNDS = 24
REPEATS = 3
SEED = 0
#: head-to-head noise allowance for "equal-or-better"
TOLERANCE = 1.10
HEAD_TO_HEAD = 7

#: parallel-scaling phase (C backend, fake measure, fresh cache dirs)
SCALE_WORKLOAD = "gat"
SCALE_ROUNDS = 24
SCALE_BATCH = 8
SCALE_TOPK = 8
MIN_SPEEDUP = 2.0
#: gcc must not scale with workers; small slack for racy double-compiles
GCC_SLACK = 1.25

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "results")
OUT_PATH = os.path.join(RESULTS_DIR, "search_ab.json")


def head_to_head(func, args, kwargs):
    exe = build(func, backend="pycode")
    exe(*args, **kwargs)  # warm-up
    best = float("inf")
    for _ in range(HEAD_TO_HEAD):
        t0 = time.perf_counter()
        exe(*args, **kwargs)
        best = min(best, time.perf_counter() - t0)
    return best


def quality_phase(failures):
    out = {}
    for name in sorted(MODULES):
        mod = MODULES[name]
        data = mod.make_data(**TINY[name])
        args, kwargs = ft_args(name, data)

        evo = EvolutionaryTuner(mod.make_program(),
                                make_inputs=lambda: args,
                                backend="pycode", rounds=ROUNDS,
                                seed=SEED, repeats=REPEATS,
                                scalars=kwargs)
        t0 = time.perf_counter()
        evo_res = evo.tune()
        evo_wall = time.perf_counter() - t0

        struct = StructuredTuner(mod.make_program(),
                                 make_inputs=lambda: args,
                                 backend="pycode", rounds=ROUNDS,
                                 seed=SEED, repeats=REPEATS,
                                 scalars=kwargs, workers=1)
        t0 = time.perf_counter()
        struct_res = struct.tune()
        struct_wall = time.perf_counter() - t0

        same = struct_hash(struct_res.best_func) == \
            struct_hash(evo_res.best_func)
        if same:
            t_evo = t_struct = head_to_head(evo_res.best_func, args,
                                            kwargs)
        else:
            t_evo = head_to_head(evo_res.best_func, args, kwargs)
            t_struct = head_to_head(struct_res.best_func, args, kwargs)

        out[name] = {
            "rounds": ROUNDS,
            "evo_measured": evo_res.measured,
            "struct_measured": struct_res.measured,
            "struct_frontier_skips": struct_res.frontier_skips,
            "struct_invalid": struct_res.invalid,
            "evo_wall_s": round(evo_wall, 4),
            "struct_wall_s": round(struct_wall, 4),
            "head_to_head_evo_s": t_evo,
            "head_to_head_struct_s": t_struct,
            "same_winner": same,
            "struct_trace_steps": len(struct_res.best_trace or ()),
        }
        print(f"{name:12s} evo {t_evo * 1e3:.3f} ms "
              f"({evo_res.measured} measured) vs structured "
              f"{t_struct * 1e3:.3f} ms ({struct_res.measured} "
              f"measured){' (same winner)' if same else ''}")
        if t_struct > t_evo * TOLERANCE:
            failures.append(
                f"{name}: structured winner is slower "
                f"({t_struct * 1e3:.3f} ms vs {t_evo * 1e3:.3f} ms)")
    return out


def scale_child(workers: int) -> int:
    """Two identical fake-measure structured sessions (run in a *fresh
    process* so no in-memory compile cache leaks between worker counts);
    prints a JSON summary line.

    The second session's worker pool forks with *empty* in-memory caches
    (the first session's compiles happened inside other workers), so any
    repeat compile it serves without gcc proves the cross-process disk
    store is doing the sharing.
    """
    mod = MODULES[SCALE_WORKLOAD]
    data = mod.make_data(**TINY[SCALE_WORKLOAD])
    args, kwargs = ft_args(SCALE_WORKLOAD, data)

    def session():
        tuner = StructuredTuner(mod.make_program(),
                                make_inputs=lambda: args, backend="c",
                                rounds=SCALE_ROUNDS, batch=SCALE_BATCH,
                                topk=SCALE_TOPK, seed=SEED,
                                scalars=kwargs, workers=workers)
        t0 = time.perf_counter()
        res = tuner.tune()
        wall = time.perf_counter() - t0
        gcc = metrics.disk_cache_stats()["gcc_runs"] + \
            metrics.pool_stats()["worker_gcc_runs"]
        hits = metrics.disk_cache_stats()["native_hits"] + \
            metrics.pool_stats()["worker_native_hits"]
        return res, wall, gcc, hits

    res1, wall1, gcc_after_1, hits_after_1 = session()
    res2, wall2, gcc_after_2, hits_after_2 = session()
    print(json.dumps({
        "winner": struct_hash(res1.best_func),
        "winner_repeat": struct_hash(res2.best_func),
        "measured": res1.measured,
        "wall_s": wall1,
        "wall_repeat_s": wall2,
        "gcc_runs": gcc_after_1,
        "gcc_runs_repeat": gcc_after_2 - gcc_after_1,
        "native_hits_repeat": hits_after_2 - hits_after_1,
    }))
    return 0


def scale_once(workers: int) -> dict:
    import subprocess

    cache_dir = tempfile.mkdtemp(prefix=f"search-ab-{workers}w-")
    env = dict(os.environ)
    env.pop("REPRO_NO_DISK_CACHE", None)
    env.update({
        "REPRO_CACHE_DIR": cache_dir,
        "REPRO_NO_DAEMON": "1",
        "REPRO_TUNE_FAKE_MEASURE": "1",
        "REPRO_NO_COST_PRUNE": "1",  # full identical candidate streams
    })
    try:
        proc = subprocess.run(
            [sys.executable, os.path.abspath(__file__),
             "--scale-child", str(workers)],
            env=env, capture_output=True, text=True, timeout=1200)
        if proc.returncode != 0:
            raise RuntimeError(
                f"scale child ({workers}w) failed:\n{proc.stderr}")
        return json.loads(proc.stdout.strip().splitlines()[-1])
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)


def scaling_phase(failures):
    r1 = scale_once(1)
    r4 = scale_once(4)
    cpus = os.cpu_count() or 1
    speedup = r1["wall_s"] / max(r4["wall_s"], 1e-9)
    same = r1["winner"] == r4["winner"]

    out = {
        "workload": SCALE_WORKLOAD,
        "rounds": SCALE_ROUNDS,
        "measured_1w": r1["measured"],
        "measured_4w": r4["measured"],
        "wall_1w_s": round(r1["wall_s"], 4),
        "wall_4w_s": round(r4["wall_s"], 4),
        "speedup_4w": round(speedup, 3),
        "gcc_runs_1w": r1["gcc_runs"],
        "gcc_runs_4w": r4["gcc_runs"],
        "gcc_runs_4w_repeat": r4["gcc_runs_repeat"],
        "native_hits_4w_repeat": r4["native_hits_repeat"],
        "same_winner": same,
        "cpus": cpus,
        "speedup_gated": cpus >= 4,
    }
    print(f"scaling [{SCALE_WORKLOAD}/c]: 1w {r1['wall_s']:.2f} s "
          f"({r1['gcc_runs']} gcc) vs 4w {r4['wall_s']:.2f} s "
          f"({r4['gcc_runs']} gcc) -> {speedup:.2f}x on {cpus} cpus; "
          f"repeat 4w session: {r4['gcc_runs_repeat']} gcc, "
          f"{r4['native_hits_repeat']} store hits")

    if not same or r1["winner"] != r1["winner_repeat"] \
            or r4["winner"] != r4["winner_repeat"]:
        failures.append(
            "scaling: winner differs between 1 and 4 workers "
            "(fold determinism broken)")
    if r1["measured"] != r4["measured"]:
        failures.append(
            f"scaling: measured counts differ ({r1['measured']} vs "
            f"{r4['measured']}) — candidate streams diverged")
    if r4["gcc_runs"] > r1["gcc_runs"] * GCC_SLACK + 2:
        failures.append(
            f"scaling: gcc runs scale with workers "
            f"({r1['gcc_runs']} at 1w vs {r4['gcc_runs']} at 4w) — "
            f"the shared store is not being used")
    if r4["gcc_runs_repeat"] > 2 or r4["native_hits_repeat"] == 0:
        failures.append(
            f"scaling: repeat 4w session re-ran gcc "
            f"{r4['gcc_runs_repeat']} times with "
            f"{r4['native_hits_repeat']} store hits — fresh workers "
            f"are not served by the shared disk store")
    if cpus >= 4 and speedup < MIN_SPEEDUP:
        failures.append(
            f"scaling: only {speedup:.2f}x with 4 workers on {cpus} "
            f"cpus (need >= {MIN_SPEEDUP}x)")
    elif cpus < 4:
        print(f"  (speedup gate skipped: {cpus} cpu(s) < 4; "
              f"recorded only)")
    return out


def main():
    if len(sys.argv) >= 3 and sys.argv[1] == "--scale-child":
        return scale_child(int(sys.argv[2]))
    failures = []
    out = {
        "quality": quality_phase(failures),
        "scaling": scaling_phase(failures),
    }

    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(OUT_PATH, "w") as f:
        json.dump(out, f, indent=2)
    print(f"\nwrote {OUT_PATH}")
    if failures:
        print("\nFAIL:")
        for msg in failures:
            print(f"  - {msg}")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""A/B benchmark of the tuner's cost-model screening front-end.

For every paper workload, runs the same tuning session twice — identical
seed, rounds and candidate stream — once with the screening front-end
disabled (``REPRO_NO_COST_PRUNE=1``: every candidate is compiled and
measured, the pre-cost-model behaviour) and once with structural dedup +
dominance pruning on. Writes ``benchmarks/results/cost_prune_ab.json``
and fails — exit code 1 — unless, on **every** workload:

- the screened session compiles+measures at least ``MIN_SAVINGS`` fewer
  candidates, and
- its chosen schedule is as fast as the unscreened session's choice
  (head-to-head re-measurement of the two winners, ``TOLERANCE`` head
  room for timer noise).

Usage::

    PYTHONPATH=src python benchmarks/cost_prune_ab.py
"""

import json
import os
import sys
import time

os.environ["REPRO_NO_DISK_CACHE"] = "1"
os.environ["REPRO_NO_DAEMON"] = "1"

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from common import MODULES, TINY, ft_args  # noqa: E402

from repro.autosched import RandomTuner  # noqa: E402
from repro.ir.hashing import struct_hash  # noqa: E402
from repro.runtime import metrics  # noqa: E402
from repro.runtime.driver import build  # noqa: E402

ROUNDS = 24
REPEATS = 3
SEED = 0
#: required reduction in compiled+measured candidates (>= 30%)
MIN_SAVINGS = 0.30
#: head-to-head noise allowance for "equal-or-better"
TOLERANCE = 1.10
#: head-to-head re-measurement repeats (min-of)
HEAD_TO_HEAD = 7

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "results")
OUT_PATH = os.path.join(RESULTS_DIR, "cost_prune_ab.json")


def tune_once(name, prune: bool):
    mod = MODULES[name]
    data = mod.make_data(**TINY[name])
    args, kwargs = ft_args(name, data)
    if prune:
        os.environ.pop("REPRO_NO_COST_PRUNE", None)
    else:
        os.environ["REPRO_NO_COST_PRUNE"] = "1"
    tuner = RandomTuner(mod.make_program(), make_inputs=lambda: args,
                        backend="pycode", rounds=ROUNDS, seed=SEED,
                        repeats=REPEATS, scalars=kwargs)
    t0 = time.perf_counter()
    result = tuner.tune()
    wall = time.perf_counter() - t0
    os.environ.pop("REPRO_NO_COST_PRUNE", None)
    return result, wall, (args, kwargs)


def head_to_head(func, args, kwargs):
    exe = build(func, backend="pycode")
    exe(*args, **kwargs)  # warm-up
    best = float("inf")
    for _ in range(HEAD_TO_HEAD):
        t0 = time.perf_counter()
        exe(*args, **kwargs)
        best = min(best, time.perf_counter() - t0)
    return best


def main():
    out = {}
    failures = []
    for name in sorted(MODULES):
        metrics.reset_tuner_stats()
        full, full_wall, (args, kwargs) = tune_once(name, prune=False)
        pruned, pruned_wall, _ = tune_once(name, prune=True)
        assert full.rounds == pruned.rounds == ROUNDS
        assert full.dedup_skips == 0 and full.cost_pruned == 0

        savings = 1.0 - pruned.measured / max(1, full.measured)
        same_winner = struct_hash(pruned.best_func) == \
            struct_hash(full.best_func)
        if same_winner:
            t_full = t_pruned = head_to_head(full.best_func, args,
                                             kwargs)
        else:
            t_full = head_to_head(full.best_func, args, kwargs)
            t_pruned = head_to_head(pruned.best_func, args, kwargs)

        row = {
            "rounds": ROUNDS,
            "measured_full": full.measured,
            "measured_pruned": pruned.measured,
            "dedup_skips": pruned.dedup_skips,
            "cost_pruned": pruned.cost_pruned,
            "measure_savings": round(savings, 4),
            "tuner_wall_full_s": round(full_wall, 4),
            "tuner_wall_pruned_s": round(pruned_wall, 4),
            "best_full_s": full.best_time,
            "best_pruned_s": pruned.best_time,
            "same_winner": same_winner,
            "head_to_head_full_s": t_full,
            "head_to_head_pruned_s": t_pruned,
        }
        out[name] = row
        print(f"{name:12s} measured {full.measured} -> "
              f"{pruned.measured} ({savings:.0%} fewer; "
              f"{pruned.dedup_skips} dedup + {pruned.cost_pruned} "
              f"pruned), best {t_full * 1e3:.3f} ms -> "
              f"{t_pruned * 1e3:.3f} ms"
              f"{' (same winner)' if same_winner else ''}")

        if savings < MIN_SAVINGS:
            failures.append(
                f"{name}: only {savings:.0%} fewer measurements "
                f"(need >= {MIN_SAVINGS:.0%})")
        if t_pruned > t_full * TOLERANCE:
            failures.append(
                f"{name}: screened winner is slower "
                f"({t_pruned * 1e3:.3f} ms vs {t_full * 1e3:.3f} ms)")

    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(OUT_PATH, "w") as f:
        json.dump(out, f, indent=2)
    print(f"\nwrote {OUT_PATH}")
    if failures:
        print("\nFAIL:")
        for msg in failures:
            print(" ", msg)
        return 1
    print("OK: screening saves >= "
          f"{MIN_SAVINGS:.0%} of measurements on every workload "
          "without losing the winner")
    return 0


if __name__ == "__main__":
    sys.exit(main())

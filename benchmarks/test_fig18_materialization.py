"""Figure 18: Selective Intermediate Tensor Materialization for AD.

Paper: FT(+) (selective, section 5.2) vs FT(-) (materialise every
intermediate): 1.21x-6.83x end-to-end speedup, most of it in the forward
pass, and one case that only *fits in memory* with the selective
strategy.

Reproduction rows per workload: forward time, backward time, tape bytes
for both policies, plus the capacity experiment (SoftRas at a larger
size on a limited device: FT(-)'s pixels x faces tape exceeds capacity,
FT(+) fits).
"""

import time

import numpy as np
import pytest

from common import GRAD_REQUIRES, MODULES, SIZES, ft_args, record

from repro.ad import GradExecutable, grad

WORKLOADS = sorted(GRAD_REQUIRES)


def _measure(exe, args, kwargs, repeats=5):
    exe(*args, **kwargs)
    exe.backward()
    fwd = bwd = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        exe(*args, **kwargs)
        t1 = time.perf_counter()
        exe.backward()
        t2 = time.perf_counter()
        fwd = min(fwd, t1 - t0)
        bwd = min(bwd, t2 - t1)
    return fwd, bwd


#: larger sizes so tape traffic leaves the cache (the regime the paper
#: measures); see EXPERIMENTS.md on scaling
_FIG18_SIZES = dict(SIZES)
_FIG18_SIZES["softras"] = dict(n_faces=96, image_size=64)
_FIG18_SIZES["longformer"] = dict(seq_len=512, feat_len=16, w=16)


@pytest.mark.parametrize("name", WORKLOADS)
def test_selective_vs_all(benchmark, name):
    mod = MODULES[name]
    data = mod.make_data(**_FIG18_SIZES[name])
    args, kwargs = ft_args(name, data)

    results = {}
    grads = {}
    for policy, tag in (("selective", "FT(+)"), ("all", "FT(-)")):
        gp = grad(mod.make_program(), requires=GRAD_REQUIRES[name],
                  tapes=policy)
        exe = GradExecutable(gp, backend="c")
        fwd, bwd = _measure(exe, args, kwargs)
        results[tag] = (fwd, bwd, exe.tape_bytes)
        g = exe.backward()
        grads[tag] = g if isinstance(g, tuple) else (g,)
        record("fig18_materialization", f"{name}/fwd_s", tag, fwd)
        record("fig18_materialization", f"{name}/bwd_s", tag, bwd)
        record("fig18_materialization", f"{name}/tape_bytes", tag,
               exe.tape_bytes)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    # both policies agree numerically
    for a, b in zip(grads["FT(+)"], grads["FT(-)"]):
        np.testing.assert_allclose(a, b, rtol=1e-3, atol=1e-3)
    # selective never stores more (strictly less where recompute applies)
    assert results["FT(+)"][2] <= results["FT(-)"][2]
    total_sel = results["FT(+)"][0] + results["FT(+)"][1]
    total_all = results["FT(-)"][0] + results["FT(-)"][1]
    record("fig18_materialization", f"{name}/speedup", "FT(+)",
           total_all / total_sel)
    record("fig18_materialization", f"{name}/fwd_speedup", "FT(+)",
           results["FT(-)"][0] / results["FT(+)"][0])
    # the paper's observation: the forward pass gains from not
    # materialising. End-to-end, recomputation trades FLOPs for memory
    # traffic; on this CPU substrate (scalar sigmoids vs cached loads)
    # the backward pass can give some of it back — see EXPERIMENTS.md —
    # but the exchange must stay bounded.
    assert results["FT(+)"][0] <= 1.1 * results["FT(-)"][0]
    assert total_sel <= 1.35 * total_all


def test_zz_capacity_case(benchmark):
    """The paper's OOM row: FT(-) must materialise the pixels x faces
    score tensor; on a capacity-limited device only FT(+) runs."""
    from repro.errors import SimulatedOOM
    from repro.runtime.metrics import DeviceModel, static_peak_bytes
    from repro.workloads import softras

    h = w = 96
    m = 256
    capacity = 8 * 2**20  # an 8 MiB "device"
    device = DeviceModel("tiny", 5e-6, 900e9, 2500e9, 14e12, capacity)

    outcomes = {}
    for policy, tag in (("selective", "FT(+)"), ("all", "FT(-)")):
        gp = grad(softras.make_program(), requires=["verts"],
                  tapes=policy)
        peak = static_peak_bytes(
            gp.fwd, {"h": h, "wd": w, "m": m},
            param_bytes=(m * 6 + h * w * 2 + h * w) * 4)
        # tapes are outputs: add their storage
        from repro.ir import defined_tensors

        defs = defined_tensors(gp.fwd.body)
        env = {"h": h, "wd": w, "m": m}
        from repro.runtime.interpreter import Interpreter

        interp = Interpreter()
        tape_bytes = 0
        for t in gp.tape_names:
            d = defs[t]
            size = d.dtype.size_bytes
            for dim in d.shape:
                size *= int(interp.eval_expr(dim, dict(env)))
            tape_bytes += size
        total = peak + tape_bytes
        try:
            device.check_capacity(total)
            outcomes[tag] = "ok"
        except SimulatedOOM:
            outcomes[tag] = "OOM"
        record("fig18_materialization", "softras@96/peak_bytes", tag,
               total)
        record("fig18_materialization", "softras@96/outcome", tag,
               outcomes[tag])
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert outcomes == {"FT(+)": "ok", "FT(-)": "OOM"}

"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not a paper figure — these isolate the contribution of individual
subsystems on this reproduction's substrate:

- holistic optimisation: unscheduled vs auto-scheduled (the "Julia gap");
- the vectorize lowering of the NumPy backend;
- the native C backend vs the NumPy backend;
- dependence-aware fusion (the Fig. 8 -> Fig. 10 example);
- the Omega-test micro-cost (what a legality check costs the compiler).
"""

import time

import numpy as np
import pytest

from common import MODULES, TINY, ft_args, make_ft_exe, record

import repro as ft
from repro.autosched import CPU, auto_schedule
from repro.runtime import build


def test_backends_ladder(benchmark):
    """interp -> pycode -> pycode+autosched -> C on one workload."""
    name = "subdivnet"
    mod = MODULES[name]
    data = mod.make_data(**TINY[name])
    args, kwargs = ft_args(name, data)
    ref = mod.reference(data)

    ladder = {
        "interp_unsched": dict(backend="interp", optimize=False),
        "numpy_unsched": dict(backend="pycode", optimize=False),
        "numpy_autosched": dict(backend="pycode", optimize=True),
        "c_autosched": dict(backend="c", optimize=True),
    }
    for tag, opts in ladder.items():
        exe, a, k, _ = make_ft_exe(name, sizes=TINY[name], **opts)
        out = exe(*a, **k)
        np.testing.assert_allclose(out, ref, rtol=1e-3, atol=1e-4)
        t0 = time.perf_counter()
        exe(*a, **k)
        record("ablations", f"backend_ladder/{name}", tag,
               time.perf_counter() - t0)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = __import__("common").RESULTS["ablations"][
        f"backend_ladder/{name}"]
    assert rows["c_autosched"] < rows["numpy_unsched"] \
        < rows["interp_unsched"]


def test_vectorize_lowering(benchmark):
    """The NumPy backend's vectorize lowering (schedule -> np kernels)."""

    @ft.transform
    def saxpy(x: ft.Tensor[("n",), "f32", "input"],
              y: ft.Tensor[("n",), "f32", "input"]):
        z = ft.empty(("n",), "f32")
        ft.label("L")
        for i in range(x.shape(0)):
            z[i] = 2.5 * x[i] + y[i]
        return z

    n = 200_000
    x = np.random.default_rng(0).standard_normal(n).astype(np.float32)
    y = np.random.default_rng(1).standard_normal(n).astype(np.float32)

    from repro.schedule import Schedule

    plain = build(saxpy, backend="pycode")
    s = Schedule(saxpy)
    s.vectorize("L")
    vec = build(s.func, backend="pycode")

    np.testing.assert_allclose(vec(x, y), plain(x, y), rtol=1e-6)

    t0 = time.perf_counter()
    plain(x, y)
    t_plain = time.perf_counter() - t0
    out = benchmark(lambda: vec(x, y))
    t_vec = benchmark.stats.stats.mean
    record("ablations", "vectorize/saxpy", "scalar_s", t_plain)
    record("ablations", "vectorize/saxpy", "vectorized_s", t_vec)
    record("ablations", "vectorize/saxpy", "speedup", t_plain / t_vec)
    assert t_vec < t_plain / 20  # NumPy kernels vs Python loops


def test_fuse_locality(benchmark):
    """Fusing the paper's Fig. 8 loops improves locality (Fig. 10)."""

    @ft.transform
    def two_pass(x: ft.Tensor[("n",), "f32", "input"]):
        a = ft.empty(("n",), "f32")
        ft.label("L1")
        for i in range(x.shape(0)):
            a[i] = x[i] * 2.0
        y = ft.empty(("n",), "f32")
        ft.label("L2")
        for j in range(x.shape(0)):
            y[j] = a[j] + 1.0
        return y

    from repro.schedule import Schedule

    n = 1 << 23  # 32 MiB: the intermediate must round-trip DRAM
    x = np.random.default_rng(0).standard_normal(n).astype(np.float32)

    unfused = build(two_pass, backend="c")
    s = Schedule(two_pass)
    s.fuse("L1", "L2")
    fused = build(s.func, backend="c")
    np.testing.assert_allclose(fused(x), unfused(x), rtol=1e-6)

    t0 = time.perf_counter()
    for _ in range(5):
        unfused(x)
    t_unfused = (time.perf_counter() - t0) / 5
    out = benchmark(lambda: fused(x))
    t_fused = benchmark.stats.stats.mean
    record("ablations", "fuse/two_pass", "unfused_s", t_unfused)
    record("ablations", "fuse/two_pass", "fused_s", t_fused)
    record("ablations", "fuse/two_pass", "speedup",
           t_unfused / t_fused)
    assert t_fused < 1.2 * t_unfused  # never worse; usually better


def test_omega_cost(benchmark):
    """Cost of one exact dependence query (compiler-side overhead)."""
    from repro.analysis import DirItem, analyze
    from repro.ir import For, collect_stmts

    @ft.transform
    def stencil(x: ft.Tensor[("n", "m"), "f32", "inout"]):
        for i in range(1, x.shape(0) - 1):
            for j in range(1, x.shape(1) - 1):
                x[i + 1, j] = x[i - 1, j + 1] * 2.0 + x[i - 1, j - 1]

    li = collect_stmts(stencil.func.body,
                       lambda s: isinstance(s, For))[0]

    def one_query():
        d = analyze(stencil.func)
        return d.has_dep(direction=[DirItem.same_loop(li.sid, ">")])

    assert benchmark(one_query) is True
    record("ablations", "omega/stencil_query", "seconds",
           benchmark.stats.stats.mean)
    assert benchmark.stats.stats.mean < 0.5  # cheap enough to spam

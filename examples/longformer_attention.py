"""Longformer sliding-window attention: free-form vs operator-based.

Reproduces the paper's motivating example (Fig. 1): an operator-based
framework must pad and copy K/V window-fold to express sliding-window
attention, while the free-form DSL just indexes ``k[i + j]``.

Run:  python examples/longformer_attention.py
"""

import time

import numpy as np

from repro.ad import GradExecutable, grad
from repro.autosched import CPU, auto_schedule
from repro.baselines import Device
from repro.passes import lower
from repro.runtime import build
from repro.runtime.metrics import static_peak_bytes
from repro.workloads import longformer


def main():
    n, d, w = 512, 32, 32
    data = longformer.make_data(seq_len=n, feat_len=d, w=w)
    ref = longformer.reference(data)

    # -- FreeTensor: auto-scheduled, compiled to native code ------------
    prog = longformer.make_program()
    func = auto_schedule(prog, target=CPU)
    exe = build(func, backend="c")
    out = exe(data["q"], data["k"], data["v"], w=w)
    assert np.allclose(out, ref, rtol=1e-3, atol=1e-4)
    t0 = time.perf_counter()
    for _ in range(5):
        exe(data["q"], data["k"], data["v"], w=w)
    ft_time = (time.perf_counter() - t0) / 5

    # -- Operator-based baseline (pad + sliding-window copies) ----------
    dev = Device("baseline")
    out_b, _ = longformer.run_baseline(data, dev)
    assert np.allclose(out_b.numpy(), ref, rtol=1e-3, atol=1e-4)
    t0 = time.perf_counter()
    for _ in range(5):
        dev2 = Device("t")
        longformer.run_baseline(data, dev2)
    base_time = (time.perf_counter() - t0) / 5

    print(f"sequence {n}, features {d}, window ±{w}")
    print(f"FreeTensor (C backend): {ft_time * 1e3:8.2f} ms")
    print(f"operator baseline:      {base_time * 1e3:8.2f} ms "
          f"({dev.kernels} kernels)")

    # -- memory: the paper's core point ----------------------------------
    ft_peak = static_peak_bytes(lower(prog.func),
                                {"n": n, "d": d, "w": w})
    print(f"\nintermediate memory, FreeTensor: {ft_peak:,} bytes "
          f"(per-token scratch only)")
    print(f"intermediate memory, baseline:   {dev.peak_bytes:,} bytes "
          f"(K/V copied {2 * w + 1}-fold)")

    # -- differentiation -----------------------------------------------------
    gp = grad(prog, requires=["q", "k", "v"])
    gexe = GradExecutable(gp)
    gexe(data["q"], data["k"], data["v"], w=w)
    gq, gk, gv = gexe.backward()
    gref = longformer.grad_reference(data, np.ones_like(ref))
    assert np.allclose(gq, gref["q"], rtol=1e-2, atol=1e-3)
    print("\ngradients (selective materialization) verified;"
          f" tapes: {gp.tape_names},"
          f" recomputed: {sorted(gp.materialization.recompute)}")


if __name__ == "__main__":
    main()

"""Quickstart: the free-form DSL in five minutes.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro as ft
from repro.ad import GradExecutable, grad
from repro.autosched import CPU, auto_schedule
from repro.ir import dump
from repro.runtime import build
from repro.schedule import Schedule


# ----------------------------------------------------------------------
# 1. Write a tensor program as plain Python: loops, slices, branches.
#    @ft.transform stages it into the FreeTensor IR at decoration.
# ----------------------------------------------------------------------
@ft.transform
def smooth(x: ft.Tensor[("n",), "f32", "input"]):
    y = ft.zeros(("n",), "f32")
    ft.label("main")
    for i in range(x.shape(0)):
        if i == 0 or i == x.shape(0) - 1:
            y[i] = x[i]
        else:
            y[i] = (x[i - 1] + x[i] + x[i + 1]) / 3.0
    return y


def main():
    print("=== staged IR ===")
    print(dump(smooth.func))

    data = np.arange(10, dtype=np.float32)
    print("smooth(arange(10)) =", smooth(data))

    # ------------------------------------------------------------------
    # 2. Schedule it: every transformation is dependence-checked.
    # ------------------------------------------------------------------
    s = Schedule(smooth)
    outer, inner = s.split("main", factor=4)
    s.parallelize(outer, "openmp")
    s.vectorize(inner)
    print("=== scheduled IR ===")
    print(dump(s.func))

    exe = build(s.func, backend="pycode")
    np.testing.assert_allclose(exe(data), smooth(data), rtol=1e-6)
    print("scheduled result matches")

    # Or let the rule-based auto-scheduler do it (paper section 4.3):
    auto = auto_schedule(smooth, target=CPU)
    exe_c = build(auto, backend="c")  # native code via gcc
    np.testing.assert_allclose(exe_c(data), smooth(data), rtol=1e-6)
    print("auto-scheduled native result matches")

    # ------------------------------------------------------------------
    # 3. Differentiate it (paper section 5): grad() gives a forward pass
    #    (with selective tapes) and a reversed adjoint program.
    # ------------------------------------------------------------------
    gp = grad(smooth, requires=["x"])
    gexe = GradExecutable(gp)
    gexe(data)
    gx = gexe.backward()  # d sum(y) / d x
    print("gradient of sum(smooth(x)):", gx)
    # interior points feed three averages (3 * 1/3 = 1); x[0] feeds y[0]
    # directly plus one average (1 + 1/3); x[1] feeds two averages (2/3)
    expect = np.full(10, 1.0, np.float32)
    expect[0] = expect[-1] = 1 + 1 / 3
    expect[1] = expect[-2] = 2 / 3
    print("matches hand-derived gradient:",
          bool(np.allclose(gx, expect, rtol=1e-5)))


if __name__ == "__main__":
    main()

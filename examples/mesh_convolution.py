"""SubdivNet mesh convolution: manual scheduling walk-through + training.

Shows the full life of one irregular kernel (paper section 2):
stage -> inspect IR -> schedule by hand (with the dependence analyser
rejecting an illegal move) -> compile -> differentiate -> a tiny
gradient-descent fit.

Run:  python examples/mesh_convolution.py
"""

import numpy as np

from repro.ad import GradExecutable, grad
from repro.errors import InvalidSchedule
from repro.runtime import build
from repro.schedule import Schedule
from repro.workloads import subdivnet


def main():
    data = subdivnet.make_data(n_faces=96, in_feats=8, out_feats=8)
    prog = subdivnet.make_program()
    ref = subdivnet.reference(data)

    # -- manual scheduling ------------------------------------------------
    s = Schedule(prog)
    loops = s.loops()
    face_loop = loops[0]  # the outer loop over faces
    outer, inner = s.split(face_loop.sid, factor=16)
    s.parallelize(outer, "openmp")
    print("applied:", "; ".join(s.log))

    # dependence analysis refuses illegal moves: the inner-product loop
    # accumulates into y[i, oo], so it cannot be fused backwards etc.
    try:
        # reordering the face tile loops after parallelisation is fine...
        s2 = s.fork()
        s2.reorder([inner, outer])
        print("reorder of independent tiles: allowed")
    except InvalidSchedule as e:
        print("reorder rejected:", e)

    exe = build(s.func, backend="c")
    out = exe(data["adj"], data["e"], data["w"])
    assert np.allclose(out, ref, rtol=1e-3, atol=1e-4)
    print("scheduled kernel verified against NumPy reference")

    # -- a tiny training loop over the weight matrix ------------------------
    target = ref + 0.1  # pretend labels
    gp = grad(prog, requires=["w"])
    gexe = GradExecutable(gp)
    w = data["w"].copy()
    lr = 1e-5
    for step in range(30):
        out = gexe(data["adj"], data["e"], w)
        err = out - target
        gw = gexe.backward(out_grads={"y": 2 * err})
        w -= lr * gw
        if step % 10 == 0:
            print(f"step {step:2d}  loss {float((err**2).sum()):10.4f}")
    final = float(((gexe(data["adj"], data["e"], w) - target)**2).sum())
    print(f"final loss {final:10.4f} (decreasing => gradients flow "
          f"through the irregular gather)")


if __name__ == "__main__":
    main()

"""GAT: a graph-attention layer on a random graph.

Compares the free-form CSR implementation (one fused traversal) against
a DGL-style message-passing pipeline (gather / segment-softmax / scatter,
one whole-edge-set kernel per step), as in the paper's GAT experiment.

Run:  python examples/gat_graph_attention.py
"""

import time

import numpy as np

from repro.autosched import CPU, auto_schedule
from repro.baselines import Device
from repro.runtime import build
from repro.workloads import gat


def main():
    data = gat.make_data(n_nodes=512, avg_degree=8, feats=16,
                         out_feats=16)
    ref = gat.reference(data)
    args = (data["indptr"], data["indices"], data["h"], data["wmat"],
            data["att_s"], data["att_d"])

    func = auto_schedule(gat.make_program(), target=CPU)
    exe = build(func, backend="c")
    out = exe(*args)
    assert np.allclose(out, ref, rtol=1e-3, atol=1e-4)
    t0 = time.perf_counter()
    for _ in range(5):
        exe(*args)
    ft_time = (time.perf_counter() - t0) / 5

    dev = Device("dgl-style")
    out_b, _ = gat.run_baseline(data, dev)
    assert np.allclose(out_b.numpy(), ref, rtol=1e-3, atol=1e-4)
    t0 = time.perf_counter()
    for _ in range(5):
        gat.run_baseline(data, Device("t"))
    base_time = (time.perf_counter() - t0) / 5

    n_edges = len(data["indices"])
    print(f"graph: {data['h'].shape[0]} nodes, {n_edges} edges")
    print(f"FreeTensor fused traversal (C): {ft_time * 1e3:8.2f} ms")
    print(f"message-passing baseline:       {base_time * 1e3:8.2f} ms "
          f"({dev.kernels} kernels)")
    print("\nthe baseline materialises per-edge score/alpha/message "
          "tensors;\nthe free-form version keeps them in per-node "
          "scratch (paper section 6.2).")


if __name__ == "__main__":
    main()

"""SoftRas: differentiable rendering with the free-form DSL.

Renders a soft silhouette of random triangles to ASCII art, then uses the
gradient (w.r.t. vertex positions!) to nudge the triangles toward a target
coverage — the inverse-graphics loop SoftRas was built for.

Run:  python examples/soft_rasterizer.py
"""

import numpy as np

from repro.ad import GradExecutable, grad
from repro.workloads import softras


_SHADES = " .:-=+*#%@"


def ascii_image(img: np.ndarray) -> str:
    rows = []
    for row in img:
        rows.append("".join(
            _SHADES[min(len(_SHADES) - 1, int(v * (len(_SHADES) - 1)))]
            for v in np.clip(row, 0, 1)))
    return "\n".join(rows)


def main():
    data = softras.make_data(n_faces=8, image_size=24, seed=3)
    gp = grad(softras.make_program(), requires=["verts"])
    gexe = GradExecutable(gp)

    img = gexe(data["verts"], data["px"])
    print("initial render:")
    print(ascii_image(img))
    print(f"coverage: {img.mean():.3f}")
    print(f"(selective materialization recomputes "
          f"{sorted(gp.materialization.recompute)} in the backward pass "
          f"instead of storing a pixels x faces tensor)")

    # gradient ascent on mean coverage: grow the silhouette
    verts = data["verts"].copy()
    target = 0.55
    for step in range(25):
        img = gexe(verts, data["px"])
        cov = float(img.mean())
        # d/dverts of sum(img) scaled toward the target coverage
        sign = 1.0 if cov < target else -1.0
        gv = gexe.backward(out_grads={
            "img": np.full_like(img, sign / img.size)})
        verts += 0.5 * gv
        if step % 8 == 0:
            print(f"step {step:2d}: coverage {cov:.3f}")
    img = gexe(verts, data["px"])
    print(f"\nafter optimisation (target {target}):")
    print(ascii_image(img))
    print(f"coverage: {img.mean():.3f}")


if __name__ == "__main__":
    main()

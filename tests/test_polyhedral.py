"""Tests for the Presburger engine: affine algebra, the Omega test, and
set/map operations."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import DataType, Load, Var, wrap
from repro.polyhedral import (Affine, AffineBuilder, BasicMap, BasicSet,
                              LinCon, NonAffine, eq_constraints, is_feasible,
                              lex_gt_constraints, try_affine)

x, y, z, N = (Affine.var(v) for v in "xyzN")


class TestAffine:

    def test_algebra(self):
        e = x * 2 + y - 3
        assert e.coeff("x") == 2
        assert e.coeff("y") == 1
        assert e.const == -3

    def test_cancellation(self):
        assert (x - x).is_constant()

    def test_substitute(self):
        e = x * 2 + y
        out = e.substitute("x", y + 1)
        assert out.coeff("y") == 3
        assert out.const == 2

    def test_rename(self):
        assert (x + y).rename({"x": "w"}).coeff("w") == 1

    def test_content(self):
        assert (x * 4 + y * 6).content() == 2


class TestLinCon:

    def test_normalize_tightens(self):
        # 2x - 1 >= 0  =>  x >= 1 (integer)  => x - 1 >= 0 after tighten
        c = LinCon.ge0(x * 2 - 1).normalized()
        assert c.expr.coeff("x") == 1
        assert c.expr.const == -1

    def test_normalize_eq_gcd_infeasible(self):
        from repro.polyhedral import Infeasible

        with pytest.raises(Infeasible):
            LinCon.eq0(x * 2 - 1).normalized()

    def test_trivial_true_dropped(self):
        assert LinCon.ge0(Affine.constant(5)).normalized() is None


class TestOmega:
    """Hand-checked feasibility cases including dark-shadow territory."""

    def test_simple_box(self):
        assert is_feasible([LinCon.ge(x, 0), LinCon.le(x, 10)])
        assert not is_feasible([LinCon.ge(x, 1), LinCon.le(x, 0)])

    def test_equality_chain(self):
        assert not is_feasible([
            LinCon.ge(x, 0), LinCon.lt(x, N),
            LinCon.eq(x, y + 1), LinCon.ge(y, N - 1)
        ])

    def test_parity(self):
        assert not is_feasible([LinCon.eq(x * 2, y * 2 + 1)])
        assert is_feasible([LinCon.eq(x * 2, y * 3 + 1)])

    def test_diophantine_gcd(self):
        assert is_feasible([LinCon.eq(x * 3 + y * 5, Affine.constant(1))])
        assert not is_feasible([LinCon.eq(x * 6 + y * 10,
                                          Affine.constant(1))])

    def test_integer_gap(self):
        # 2 <= 4x <= 3 has no integer x
        assert not is_feasible([LinCon.ge(x * 4, 2), LinCon.le(x * 4, 3)])
        # 0 <= 2x <= 1 has x = 0
        assert is_feasible([LinCon.ge(x * 2, 0), LinCon.le(x * 2, 1)])

    def test_symbolic_parameters(self):
        assert is_feasible([LinCon.ge(x, N), LinCon.le(x, N)])
        assert not is_feasible([LinCon.le(x, N), LinCon.ge(x, N + 1)])

    def test_three_vars(self):
        # x + y + z = 10, 0<=x,y,z<=3 -> max sum 9 < 10
        cons = [LinCon.eq(x + y + z, Affine.constant(10))]
        for v in (x, y, z):
            cons += [LinCon.ge(v, 0), LinCon.le(v, 3)]
        assert not is_feasible(cons)
        cons[0] = LinCon.eq(x + y + z, Affine.constant(9))
        assert is_feasible(cons)

    @settings(max_examples=60, deadline=None)
    @given(st.integers(-8, 8), st.integers(-8, 8), st.integers(1, 5),
           st.integers(1, 5))
    def test_matches_bruteforce_2d(self, lo1, lo2, w1, w2):
        """Feasibility of a random 2-D system agrees with brute force."""
        cons = [
            LinCon.ge(x, lo1), LinCon.le(x, lo1 + w1),
            LinCon.ge(y, lo2), LinCon.le(y, lo2 + w2),
            LinCon.ge(x * 2 + y * 3, 0),
            LinCon.le(x + y, lo1 + lo2 + w1),
        ]
        brute = any(
            2 * a + 3 * b >= 0 and a + b <= lo1 + lo2 + w1
            for a in range(lo1, lo1 + w1 + 1)
            for b in range(lo2, lo2 + w2 + 1))
        assert is_feasible(cons) == brute

    @settings(max_examples=40, deadline=None)
    @given(st.integers(2, 7), st.integers(2, 7), st.integers(-20, 20))
    def test_diophantine_matches_gcd(self, a, b, c):
        import math

        cons = [LinCon.eq(x * a + y * b, Affine.constant(c))]
        assert is_feasible(cons) == (c % math.gcd(a, b) == 0)


class TestSetsMaps:

    def test_empty_set(self):
        s = BasicSet(["i"], [LinCon.ge(x.rename({"x": "i"}), 0),
                             LinCon.le(Affine.var("i"), -1)])
        assert s.is_empty()

    def test_intersect(self):
        a = BasicSet(["i"], [LinCon.ge(Affine.var("i"), 0)])
        b = BasicSet(["i"], [LinCon.le(Affine.var("i"), -1)])
        assert not a.is_empty()
        assert a.intersect(b).is_empty()

    def test_map_compose(self):
        # f(i) = i + 1 on 0<=i<10 ; g(j) = 2*j ; g∘f (i) = 2i + 2
        f = BasicMap.from_affine(["i"], [Affine.var("i") + 1],
                                 [LinCon.ge(Affine.var("i"), 0),
                                  LinCon.lt(Affine.var("i"), 10)],
                                 out_prefix="f")
        g = BasicMap.from_affine(["j"], [Affine.var("j") * 2],
                                 out_prefix="g")
        gf = g.compose(f)
        # check: exists i with out = 2i+2 = 5? no (odd)
        odd = gf.with_constraints([LinCon.eq(Affine.var("g0"),
                                             Affine.constant(5))])
        assert odd.is_empty()
        ok = gf.with_constraints([LinCon.eq(Affine.var("g0"),
                                            Affine.constant(6))])
        assert not ok.is_empty()

    def test_map_reverse_domain_range(self):
        f = BasicMap.from_affine(["i"], [Affine.var("i") + 1],
                                 [LinCon.ge(Affine.var("i"), 3)],
                                 out_prefix="o")
        dom = f.domain().with_constraints(
            [LinCon.le(Affine.var("i"), 2)])
        assert dom.is_empty()
        rng = f.range().with_constraints(
            [LinCon.le(Affine.var("o0"), 3)])
        assert rng.is_empty()  # outputs are >= 4

    def test_lex_gt(self):
        alts = lex_gt_constraints(["a0", "a1"], ["b0", "b1"])
        assert len(alts) == 2
        # (1, 0) >lex (0, 5): satisfied by first alternative
        bind = [LinCon.eq(Affine.var("a0"), Affine.constant(1)),
                LinCon.eq(Affine.var("a1"), Affine.constant(0)),
                LinCon.eq(Affine.var("b0"), Affine.constant(0)),
                LinCon.eq(Affine.var("b1"), Affine.constant(5))]
        assert any(is_feasible(bind + alt) for alt in alts)
        # (0, 0) >lex (0, 0): none
        bind_eq = [LinCon.eq(Affine.var(v), Affine.constant(0))
                   for v in ("a0", "a1", "b0", "b1")]
        assert not any(is_feasible(bind_eq + alt) for alt in alts)

    def test_eq_constraints(self):
        cons = eq_constraints(["a"], ["b"])
        assert not is_feasible(cons + [
            LinCon.eq(Affine.var("a"), Affine.constant(0)),
            LinCon.eq(Affine.var("b"), Affine.constant(1))
        ])


class TestAffineBuilder:

    def test_mod_linearised_exactly(self):
        i = Var("i")
        res = try_affine((i + 1) % 3)
        assert res is not None
        a, cons, exists = res
        assert len(exists) == 1
        # (i+1) % 3 == 0 and i == 1 must be infeasible (1+1=2 mod 3)
        sys = cons + [LinCon.eq0(a),
                      LinCon.eq(Affine.var("i"), Affine.constant(1))]
        assert not is_feasible(sys)
        # i == 2 -> (i+1)%3 == 0 feasible
        sys = cons + [LinCon.eq0(a),
                      LinCon.eq(Affine.var("i"), Affine.constant(2))]
        assert is_feasible(sys)

    def test_floordiv(self):
        i = Var("i")
        res = try_affine(i // 4)
        a, cons, _ = res
        sys = cons + [LinCon.eq(Affine.var("i"), Affine.constant(7)),
                      LinCon.eq(a, Affine.constant(1))]
        assert is_feasible(sys)
        sys = cons + [LinCon.eq(Affine.var("i"), Affine.constant(7)),
                      LinCon.eq(a, Affine.constant(2))]
        assert not is_feasible(sys)

    def test_non_affine_reported(self):
        i, j = Var("i"), Var("j")
        assert try_affine(i * j) is None
        load = Load("a", [i], DataType.INT32)
        assert try_affine(load + 1) is None

    def test_condition_disjunction(self):
        i = Var("i")
        b = AffineBuilder()
        alts = b.build_condition((i < 3).logical_or(i > 7))
        assert len(alts) == 2

    def test_condition_negation(self):
        i = Var("i")
        b = AffineBuilder()
        alts = b.build_condition(i < 3, negate=True)
        assert len(alts) == 1
        # i >= 3: i = 2 infeasible
        assert not is_feasible(alts[0] + [
            LinCon.eq(Affine.var("i"), Affine.constant(2))
        ])

"""Tests for parallelizing, memory-hierarchy, layout and misc schedules."""

import numpy as np
import pytest

import repro as ft
from repro.errors import DependenceViolation, InvalidSchedule
from repro.ir import (For, If, LibCall, ReduceTo, Store, VarDef,
                      collect_stmts, defined_tensors, dump)
from repro.runtime import build
from repro.schedule import Schedule


def run_equiv(sched, program, *arrays, **scalars):
    ref = build(program)(*arrays, **scalars)
    out = build(sched.func)(*arrays, **scalars)
    if isinstance(ref, tuple):
        for r, o in zip(ref, out):
            np.testing.assert_allclose(o, r, rtol=1e-5)
    else:
        np.testing.assert_allclose(out, ref, rtol=1e-5)


class TestParallelize:

    def test_independent_loop(self, rng):
        @ft.transform
        def f(b: ft.Tensor[("n",), "f32", "input"],
              a: ft.Tensor[("n",), "f32", "output"]):
            ft.label("L")
            for i in range(b.shape(0)):
                a[i] = b[i] + 1.0

        s = Schedule(f)
        s.parallelize("L", "openmp")
        loop = s.find("L")
        assert loop.property.parallel == "openmp"
        run_equiv(s, f, rng.standard_normal(8).astype(np.float32))

    def test_serial_rejected(self):
        @ft.transform
        def f(a: ft.Tensor[("n",), "f32", "inout"]):
            ft.label("L")
            for i in range(1, a.shape(0)):
                a[i] = a[i - 1] + 1.0

        with pytest.raises(DependenceViolation):
            Schedule(f).parallelize("L", "openmp")

    def test_reduction_allowed(self, rng):
        """Fig. 13(d): same-index reduction parallelises."""
        @ft.transform
        def f(b: ft.Tensor[("n",), "f32", "input"],
              a: ft.Tensor[(), "f32", "inout"]):
            ft.label("L")
            for i in range(b.shape(0)):
                a[...] += b[i]

        s = Schedule(f)
        s.parallelize("L", "openmp")
        reduces = collect_stmts(s.func.body,
                                lambda x: isinstance(x, ReduceTo))
        assert reduces and reduces[0].atomic  # lowered with atomics

    def test_scatter_reduction_atomic(self, rng):
        """Fig. 13(e): random-index reduction parallelises atomically."""
        @ft.transform
        def f(idx: ft.Tensor[("n",), "i32", "input"],
              b: ft.Tensor[("n",), "f32", "input"],
              a: ft.Tensor[("m",), "f32", "inout"]):
            ft.label("L")
            for i in range(idx.shape(0)):
                a[idx[i]] += b[i]

        s = Schedule(f)
        s.parallelize("L", "openmp")
        reduces = collect_stmts(s.func.body,
                                lambda x: isinstance(x, ReduceTo))
        assert reduces[0].atomic

    def test_unknown_kind(self):
        @ft.transform
        def f(a: ft.Tensor[(4,), "f32", "output"]):
            ft.label("L")
            for i in range(4):
                a[i] = 0.0

        with pytest.raises(InvalidSchedule):
            Schedule(f).parallelize("L", "posix")

    def test_cuda_kinds(self):
        @ft.transform
        def f(a: ft.Tensor[(4, 5), "f32", "output"]):
            ft.label("Lb")
            for i in range(4):
                ft.label("Lt")
                for j in range(5):
                    a[i, j] = 1.0

        s = Schedule(f)
        s.parallelize("Lb", "cuda.blockIdx.x")
        s.parallelize("Lt", "cuda.threadIdx.x")
        assert s.find("Lt").property.parallel == "cuda.threadIdx.x"


class TestUnrollBlendVectorize:

    def test_unroll(self, rng):
        @ft.transform
        def f(b: ft.Tensor[(3, 8), "f32", "input"],
              a: ft.Tensor[(3, 8), "f32", "output"]):
            ft.label("Li")
            for i in range(3):
                for j in range(8):
                    a[i, j] = b[i, j] + 1.0

        s = Schedule(f)
        s.unroll("Li")
        assert len(s.loops()) == 3  # three copies of the j loop
        run_equiv(s, f, rng.standard_normal((3, 8)).astype(np.float32))

    def test_unroll_dynamic_rejected(self):
        @ft.transform
        def f(a: ft.Tensor[("n",), "f32", "output"]):
            ft.label("L")
            for i in range(a.shape(0)):
                a[i] = 0.0

        with pytest.raises(InvalidSchedule):
            Schedule(f).unroll("L")

    def test_vectorize_marks(self, rng):
        @ft.transform
        def f(b: ft.Tensor[("n",), "f32", "input"],
              a: ft.Tensor[("n",), "f32", "output"]):
            ft.label("L")
            for i in range(b.shape(0)):
                a[i] = b[i] * 3.0

        s = Schedule(f)
        s.vectorize("L")
        assert s.find("L").property.vectorize
        run_equiv(s, f, rng.standard_normal(16).astype(np.float32))

    def test_vectorize_serial_rejected(self):
        @ft.transform
        def f(a: ft.Tensor[("n",), "f32", "inout"]):
            ft.label("L")
            for i in range(1, a.shape(0)):
                a[i] = a[i - 1] * 2.0

        with pytest.raises(DependenceViolation):
            Schedule(f).vectorize("L")

    def test_blend(self, rng):
        @ft.transform
        def f(b: ft.Tensor[(4,), "f32", "input"],
              a: ft.Tensor[(4,), "f32", "output"],
              c: ft.Tensor[(4,), "f32", "output"]):
            ft.label("L")
            for i in range(4):
                a[i] = b[i] + 1.0
                c[i] = b[i] - 1.0

        s = Schedule(f)
        s.blend("L")
        assert not s.loops()
        stores = collect_stmts(s.func.body, lambda x: isinstance(x, Store))
        assert len(stores) == 8
        # statement-major: all `a` stores precede all `c` stores
        assert [st.var for st in stores] == ["a"] * 4 + ["c"] * 4
        run_equiv(s, f, rng.standard_normal(4).astype(np.float32))


class TestCache:

    def test_cache_paper_fig14(self, rng):
        """cache a[i+j] over the j loop -> an m-sized buffer (Fig. 14)."""
        @ft.transform
        def f(a: ft.Tensor[("nm",), "f32", "inout"], n: ft.Size,
              m: ft.Size):
            for i in range(n):
                ft.label("Lj")
                for j in range(m):
                    a[i + j] = a[i + j] * 2.0

        s = Schedule(f)
        fill, flush, name = s.cache("Lj", "a", "cpu")
        vd = defined_tensors(s.func.body)[name]
        assert dump(vd.shape[0]) in ("m", "m - 1 + 1")
        arr = rng.standard_normal(10).astype(np.float32)
        ref = build(f)(arr.copy(), n=4, m=7)
        out = build(s.func)(arr.copy(), n=4, m=7)
        np.testing.assert_allclose(out, ref, rtol=1e-5)

    def test_cache_read_only(self, rng):
        @ft.transform
        def f(b: ft.Tensor[(8,), "f32", "input"],
              a: ft.Tensor[(8,), "f32", "output"]):
            ft.label("L")
            for i in range(8):
                a[i] = b[i] + 1.0

        s = Schedule(f)
        fill, flush, name = s.cache("L", "b", "cpu")
        assert flush is None  # read-only: no write-back
        run_equiv(s, f, rng.standard_normal(8).astype(np.float32))

    def test_cache_reduction(self, rng):
        @ft.transform
        def f(b: ft.Tensor[(6, 8), "f32", "input"],
              a: ft.Tensor[(8,), "f32", "inout"]):
            for i in range(6):
                ft.label("L")
                for j in range(8):
                    a[j] += b[i, j]

        s = Schedule(f)
        init, flush, name = s.cache_reduction("L", "a", "cpu")
        reduces = collect_stmts(s.func.body,
                                lambda x: isinstance(x, ReduceTo))
        assert any(r.var == name for r in reduces)
        arr = np.zeros(8, np.float32)
        b = rng.standard_normal((6, 8)).astype(np.float32)
        out = build(s.func)(b, arr)
        np.testing.assert_allclose(out, b.sum(axis=0), rtol=1e-5)

    def test_cache_reduction_requires_uniform_op(self):
        @ft.transform
        def f(a: ft.Tensor[(4,), "f32", "inout"]):
            ft.label("L")
            for i in range(4):
                a[i] = a[i] * 2.0 + 1.0  # not a pure reduction

        with pytest.raises(InvalidSchedule):
            Schedule(f).cache_reduction("L", "a", "cpu")

    def test_set_mtype(self):
        @ft.transform
        def f(a: ft.Tensor[(4,), "f32", "output"]):
            t = ft.zeros(4, "f32")
            for i in range(4):
                a[i] = t[i]

        s = Schedule(f)
        s.set_mtype("t", "gpu/shared")
        from repro.ir import MemType
        assert defined_tensors(s.func.body)["t"].mtype \
            is MemType.GPU_SHARED


class TestLayout:

    def _prog(self):
        @ft.transform
        def f(b: ft.Tensor[(6, 4), "f32", "input"],
              a: ft.Tensor[(6, 4), "f32", "output"]):
            t = ft.empty((6, 4), "f32")
            for i in range(6):
                for j in range(4):
                    t[i, j] = b[i, j] * 2.0
            for i in range(6):
                for j in range(4):
                    a[i, j] = t[i, j] + 1.0

        return f

    def test_var_reorder(self, rng):
        f = self._prog()
        s = Schedule(f)
        s.var_reorder("t", [1, 0])
        vd = defined_tensors(s.func.body)["t"]
        assert [d.val for d in vd.shape] == [4, 6]
        run_equiv(s, f, rng.standard_normal((6, 4)).astype(np.float32))

    def test_var_split(self, rng):
        f = self._prog()
        s = Schedule(f)
        s.var_split("t", dim=0, factor=2)
        vd = defined_tensors(s.func.body)["t"]
        assert [d.val for d in vd.shape] == [3, 2, 4]
        run_equiv(s, f, rng.standard_normal((6, 4)).astype(np.float32))

    def test_var_merge(self, rng):
        f = self._prog()
        s = Schedule(f)
        s.var_merge("t", dim=0)
        vd = defined_tensors(s.func.body)["t"]
        assert [d.val for d in vd.shape] == [24]
        run_equiv(s, f, rng.standard_normal((6, 4)).astype(np.float32))

    def test_interface_layout_rejected(self):
        f = self._prog()
        with pytest.raises(InvalidSchedule):
            Schedule(f).var_reorder("a", [1, 0])


class TestAsLib:

    def test_matmul_pattern(self, rng):
        @ft.transform
        def f(a: ft.Tensor[(5, 7), "f32", "input"],
              b: ft.Tensor[(7, 3), "f32", "input"]):
            c = ft.zeros((5, 3), "f32")
            ft.label("Li")
            for i in range(5):
                for j in range(3):
                    for k in range(7):
                        c[i, j] += a[i, k] * b[k, j]
            return c

        s = Schedule(f)
        sid = s.as_lib("Li")
        calls = collect_stmts(s.func.body,
                              lambda x: isinstance(x, LibCall))
        assert len(calls) == 1 and calls[0].kind == "matmul"
        A = rng.standard_normal((5, 7)).astype(np.float32)
        B = rng.standard_normal((7, 3)).astype(np.float32)
        out = build(s.func)(A, B)
        np.testing.assert_allclose(out, A @ B, rtol=1e-4)

    def test_reversed_operands(self, rng):
        @ft.transform
        def f(a: ft.Tensor[(4, 6), "f32", "input"],
              b: ft.Tensor[(6, 2), "f32", "input"]):
            c = ft.zeros((4, 2), "f32")
            ft.label("Li")
            for i in range(4):
                for j in range(2):
                    for k in range(6):
                        c[i, j] += b[k, j] * a[i, k]
            return c

        s = Schedule(f)
        s.as_lib("Li")
        A = rng.standard_normal((4, 6)).astype(np.float32)
        B = rng.standard_normal((6, 2)).astype(np.float32)
        np.testing.assert_allclose(build(s.func)(A, B), A @ B, rtol=1e-4)

    def test_non_matmul_rejected(self):
        @ft.transform
        def f(a: ft.Tensor[(4,), "f32", "inout"]):
            ft.label("L")
            for i in range(1, 4):
                a[i] = a[i - 1] * 2.0

        with pytest.raises(InvalidSchedule):
            Schedule(f).as_lib("L")


class TestSeparateTail:

    def test_split_guard(self, rng):
        """A split-introduced guard disappears after separate_tail."""
        @ft.transform
        def f(b: ft.Tensor[(10,), "f32", "input"],
              a: ft.Tensor[(10,), "f32", "output"]):
            ft.label("L")
            for i in range(10):
                a[i] = b[i] + 1.0

        s = Schedule(f)
        outer, inner = s.split("L", factor=4)  # 10 % 4 != 0 -> guard
        assert collect_stmts(s.func.body, lambda x: isinstance(x, If))
        s.separate_tail(outer)
        # after tail separation + pruning the main loop is branch-free
        ifs = collect_stmts(s.func.body, lambda x: isinstance(x, If))
        assert len(ifs) <= 1
        run_equiv(s, f, rng.standard_normal(10).astype(np.float32))

    def test_explicit_boundary(self, rng):
        @ft.transform
        def f(b: ft.Tensor[("n",), "f32", "input"],
              a: ft.Tensor[("n",), "f32", "output"], k: ft.Size):
            ft.label("L")
            for i in range(b.shape(0)):
                if i < k:
                    a[i] = b[i] * 2.0
                else:
                    a[i] = b[i] * 3.0

        s = Schedule(f)
        sids = s.separate_tail("L")
        assert len(sids) == 2
        ifs = collect_stmts(s.func.body, lambda x: isinstance(x, If))
        assert not ifs
        arr = rng.standard_normal(9).astype(np.float32)
        ref = build(f)(arr, k=4)
        out = build(s.func)(arr, k=4)
        np.testing.assert_allclose(out, ref, rtol=1e-5)

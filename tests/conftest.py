"""Shared fixtures and helpers for the test suite."""

import numpy as np
import pytest


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


def assert_allclose(a, b, rtol=1e-4, atol=1e-5):
    np.testing.assert_allclose(a, b, rtol=rtol, atol=atol)

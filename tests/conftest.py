"""Shared fixtures and helpers for the test suite."""

import os

import numpy as np
import pytest

# The persistent cross-process cache (repro.cache) would make "cold"
# compiles in the suite warm on the second pytest run, breaking every
# test that asserts miss counts or pass executions. Tests run with the
# disk cache and the compile daemon off; tests that exercise them opt in
# by re-pointing REPRO_CACHE_DIR at a tmp_path and clearing the opt-out
# in a subprocess or monkeypatched environment.
os.environ.setdefault("REPRO_NO_DISK_CACHE", "1")
os.environ.setdefault("REPRO_NO_DAEMON", "1")


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


def assert_allclose(a, b, rtol=1e-4, atol=1e-5):
    np.testing.assert_allclose(a, b, rtol=rtol, atol=atol)

"""End-to-end tests of the four evaluation workloads: FreeTensor vs
baseline vs NumPy reference, forward and backward, plus auto-scheduled and
simulated-GPU execution."""

import numpy as np
import pytest

from repro.ad import GradExecutable, grad
from repro.autosched import CPU, GPU, auto_schedule
from repro.baselines import Device
from repro.runtime import build
from repro.workloads import gat, longformer, softras, subdivnet


def _ft_args(name, data):
    if name == "subdivnet":
        return (data["adj"], data["e"], data["w"]), {}
    if name == "longformer":
        return (data["q"], data["k"], data["v"]), {"w": data["w"]}
    if name == "softras":
        return (data["verts"], data["px"]), {}
    return (data["indptr"], data["indices"], data["h"], data["wmat"],
            data["att_s"], data["att_d"]), {}


_SMALL = {
    "subdivnet": dict(n_faces=24, in_feats=4, out_feats=4),
    "longformer": dict(seq_len=24, feat_len=6, w=3),
    "softras": dict(n_faces=6, image_size=8),
    "gat": dict(n_nodes=24, avg_degree=3, feats=4, out_feats=4),
}

_MODULES = {
    "subdivnet": subdivnet,
    "longformer": longformer,
    "softras": softras,
    "gat": gat,
}


@pytest.mark.parametrize("name", sorted(_MODULES))
class TestForward:

    def test_freetensor_matches_reference(self, name):
        mod = _MODULES[name]
        data = mod.make_data(**_SMALL[name])
        ref = mod.reference(data)
        args, kwargs = _ft_args(name, data)
        out = build(mod.make_program())(*args, **kwargs)
        np.testing.assert_allclose(out, ref, rtol=1e-3, atol=1e-4)

    def test_baseline_matches_reference(self, name):
        mod = _MODULES[name]
        data = mod.make_data(**_SMALL[name])
        ref = mod.reference(data)
        dev = Device("test")
        out, _ = mod.run_baseline(data, dev)
        np.testing.assert_allclose(out.numpy(), ref, rtol=1e-3,
                                   atol=1e-4)
        assert dev.kernels > 1  # operator-based: many kernels

    def test_autoscheduled_cpu(self, name):
        mod = _MODULES[name]
        data = mod.make_data(**_SMALL[name])
        ref = mod.reference(data)
        func = auto_schedule(mod.make_program(), target=CPU)
        args, kwargs = _ft_args(name, data)
        out = build(func)(*args, **kwargs)
        np.testing.assert_allclose(out, ref, rtol=1e-3, atol=1e-4)

    def test_autoscheduled_c_backend(self, name):
        mod = _MODULES[name]
        data = mod.make_data(**_SMALL[name])
        ref = mod.reference(data)
        func = auto_schedule(mod.make_program(), target=CPU)
        args, kwargs = _ft_args(name, data)
        out = build(func, backend="c")(*args, **kwargs)
        np.testing.assert_allclose(out, ref, rtol=1e-3, atol=1e-4)

    def test_gpusim_single_kernel(self, name):
        """FreeTensor runs each workload in very few simulated kernels
        (the paper's Fig. 17 headline: one launch for SubdivNet)."""
        mod = _MODULES[name]
        data = mod.make_data(**_SMALL[name])
        ref = mod.reference(data)
        func = auto_schedule(mod.make_program(), target=GPU)
        from repro.runtime.metrics import MetricsCollector

        m = MetricsCollector()
        exe = build(func, backend="gpusim", metrics=m)
        args, kwargs = _ft_args(name, data)
        out = exe(*args, **kwargs)
        np.testing.assert_allclose(out, ref, rtol=1e-3, atol=1e-4)
        assert m.kernels <= 3
        dev = Device("cmp")
        mod.run_baseline(data, dev)
        assert m.kernels < dev.kernels


class TestGradients:

    @pytest.mark.parametrize("name",
                             ["subdivnet", "longformer", "softras"])
    def test_grad_matches_reference(self, name, rng):
        mod = _MODULES[name]
        data = mod.make_data(**_SMALL[name])
        requires = {"subdivnet": ["e", "w"],
                    "longformer": ["q", "k", "v"],
                    "softras": ["verts"]}[name]
        gp = grad(mod.make_program(), requires=requires)
        exe = GradExecutable(gp)
        args, kwargs = _ft_args(name, data)
        out = exe(*args, **kwargs)
        og = rng.standard_normal(out.shape).astype(np.float32)
        out_name = list(gp.output_grads)[0]
        grads = exe.backward(out_grads={out_name: og})
        if not isinstance(grads, tuple):
            grads = (grads,)
        ref = mod.grad_reference(data, og)
        for g, key in zip(grads, requires):
            np.testing.assert_allclose(
                g, ref[key], rtol=1e-2, atol=2e-3,
                err_msg=f"{name}: grad of {key}")

    @pytest.mark.parametrize("name",
                             ["subdivnet", "longformer", "softras"])
    def test_baseline_grad_matches_reference(self, name, rng):
        mod = _MODULES[name]
        data = mod.make_data(**_SMALL[name])
        dev = Device("test")
        out, leaves = mod.run_baseline(data, dev, requires_grad=True)
        og = rng.standard_normal(out.shape).astype(np.float32)
        out.backward(og)
        ref = mod.grad_reference(data, og)
        for key, leaf in leaves.items():
            np.testing.assert_allclose(
                leaf.grad, ref[key], rtol=1e-2, atol=2e-3,
                err_msg=f"{name}: baseline grad of {key}")

    def test_selective_materialization_stores_less(self):
        """Fig. 18: FT(+) (selective) materialises strictly less than
        FT(-) (tape-everything) on SoftRas and Longformer."""
        for mod, requires in ((softras, ["verts"]),
                              (longformer, ["q", "k", "v"])):
            sel = grad(mod.make_program(), requires=requires,
                       tapes="selective")
            all_ = grad(mod.make_program(), requires=requires,
                        tapes="all")
            assert set(sel.tape_names) < set(all_.tape_names), mod

    def test_selective_and_all_agree(self, rng):
        data = softras.make_data(n_faces=4, image_size=6)
        og = None
        results = []
        for policy in ("selective", "all"):
            gp = grad(softras.make_program(), requires=["verts"],
                      tapes=policy)
            exe = GradExecutable(gp)
            out = exe(data["verts"], data["px"])
            if og is None:
                og = rng.standard_normal(out.shape).astype(np.float32)
            results.append(exe.backward(out_grads={"img": og}))
        np.testing.assert_allclose(results[0], results[1], rtol=1e-4)


class TestMemoryBehaviour:

    def test_baseline_longformer_blows_up_with_window(self):
        """Baseline K/V sliding copies scale with the window (Fig. 1)."""
        small = longformer.make_data(seq_len=64, feat_len=8, w=2)
        big = longformer.make_data(seq_len=64, feat_len=8, w=16)
        d1, d2 = Device("a"), Device("b")
        longformer.run_baseline(small, d1)
        longformer.run_baseline(big, d2)
        assert d2.peak_bytes > 3 * d1.peak_bytes

    def test_baseline_oom_on_tiny_device(self):
        from repro.errors import SimulatedOOM

        data = longformer.make_data(seq_len=256, feat_len=32, w=64)
        dev = Device("tiny-gpu", capacity_bytes=2 * 1024 * 1024)
        with pytest.raises(SimulatedOOM):
            longformer.run_baseline(data, dev, requires_grad=True)

    def test_freetensor_static_peak_is_small(self):
        from repro.runtime.metrics import static_peak_bytes

        prog = longformer.make_program()
        from repro.passes import lower

        func = lower(prog.func)
        n, d, w = 256, 32, 64
        peak = static_peak_bytes(func, {"n": n, "d": d, "w": w})
        # order n*d, not n*w*d: no sliding-window materialisation
        assert peak < 3 * (2 * w + 1) * 4 + 64  # per-token scratch only

"""Unit tests for the pass-manager compilation pipeline
(``repro.pipeline``): pass ordering, per-pass caching, instrumentation
(REPRO_DUMP_IR snapshots, REPRO_VERIFY_EACH_PASS attribution), backend
legalization, and the differential guarantee that the pipeline produces
the same IR as the pre-pipeline ad-hoc lowering sequence.
"""

import os

import pytest

import repro as ft
from repro.errors import VerificationError
from repro.ir import For, Func, collect_stmts, struct_hash
from repro.ir import expr as E
from repro.ir import stmt as S
from repro.ir.visitor import Mutator
from repro.pipeline import (Pass, Pipeline, STANDARD_LOWERING,
                            build_pipeline, clear_pass_cache, compile_ir,
                            declared_legalization, legalize,
                            lowering_passes, lowering_pipeline, named_pass,
                            pass_cache_stats, suppress_illegal_simd)
from repro.runtime.driver import build
from repro.runtime.metrics import pipeline_stats
from repro.workloads import ALL


def make_program():
    @ft.transform
    def f(b: ft.Tensor[("n", "m"), "f32", "input"],
          a: ft.Tensor[("n", "m"), "f32", "output"]):
        ft.label("Li")
        for i in range(b.shape(0)):
            ft.label("Lj")
            for j in range(b.shape(1)):
                a[i, j] = b[i, j] * 2.0 + 1.0

    return f


class TestPassOrdering:

    def test_standard_lowering_order(self):
        assert STANDARD_LOWERING == ("flatten", "make_reduction",
                                     "simplify", "cleanup")
        assert lowering_pipeline().pass_names() == list(STANDARD_LOWERING)

    def test_build_pipeline_appends_legalization_then_prep(self):
        # nothing declared for pycode: the build pipeline is exactly the
        # standard lowering (keeps the tuner's per-candidate loop lean)
        assert build_pipeline("pycode").pass_names() == \
            list(STANDARD_LOWERING)
        assert build_pipeline("c").pass_names() == \
            list(STANDARD_LOWERING) + ["simd_suppress", "codegen_prep"]

    def test_run_applies_passes_in_sequence(self):
        trace = []

        def rec(name):
            def fn(func):
                trace.append(name)
                return func

            return fn

        pipe = Pipeline([Pass(n, rec(n), cacheable=False)
                         for n in ("a", "b", "c")], name="t")
        pipe.run(make_program().func)
        assert trace == ["a", "b", "c"]

    def test_duplicate_pass_names_rejected(self):
        p = named_pass("flatten")
        with pytest.raises(ValueError, match="duplicate"):
            Pipeline([p, named_pass("flatten")])

    def test_unknown_pass_name_rejected(self):
        with pytest.raises(ValueError, match="unknown pass"):
            named_pass("no_such_pass")


class TestPassCache:

    def test_second_run_hits_every_pass(self):
        clear_pass_cache()
        func = make_program().func
        pipe = lowering_pipeline()
        before = pass_cache_stats()
        out1 = pipe.run(func)
        mid = pass_cache_stats()
        assert mid["misses"] - before["misses"] == len(pipe.passes)
        assert mid["hits"] == before["hits"]
        out2 = pipe.run(func)
        after = pass_cache_stats()
        assert after["hits"] - mid["hits"] == len(pipe.passes)
        assert after["misses"] == mid["misses"]
        # a full-chain hit returns the identical cached object
        assert out1 is out2

    def test_cache_shared_across_pipeline_names(self):
        clear_pass_cache()
        func = make_program().func
        out1 = lowering_pipeline(name="schedule").run(func)
        before = pass_cache_stats()
        out2 = lowering_pipeline(name="ad").run(func)
        after = pass_cache_stats()
        assert out1 is out2
        assert after["misses"] == before["misses"]

    def test_env_hatches_bypass_cache(self, monkeypatch):
        clear_pass_cache()
        func = make_program().func
        for var in ("REPRO_NO_PASS_CACHE", "REPRO_NO_LOWER_CACHE"):
            monkeypatch.setenv(var, "1")
            pipe = lowering_pipeline()
            assert pipe.run(func) is not pipe.run(func)
            monkeypatch.delenv(var)

    def test_uncacheable_pass_always_runs(self):
        clear_pass_cache()
        runs = []
        pipe = Pipeline([Pass("probe", lambda f: (runs.append(1), f)[1],
                              cacheable=False)], name="t")
        func = make_program().func
        pipe.run(func)
        pipe.run(func)
        assert len(runs) == 2

    def test_lower_shim_uses_pass_cache(self):
        from repro.passes import clear_lower_cache, lower

        clear_lower_cache()
        f = make_program().func
        assert lower(f) is lower(f)

    def test_pipeline_stats_exposed(self):
        clear_pass_cache()
        lowering_pipeline().run(make_program().func)
        stats = pipeline_stats()
        for name in STANDARD_LOWERING:
            assert stats[name]["runs"] >= 1
            assert stats[name]["time_s"] >= 0.0
            assert "cache_hits" in stats[name]

    def test_compile_cache_stats_reports_passes(self):
        stats = ft.compile_cache_stats()
        assert set(stats["passes"]) == {"hits", "misses", "disk_hits"}


class TestDumpIR:

    def test_one_snapshot_per_pass_plus_diffs(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_DUMP_IR", str(tmp_path))
        clear_pass_cache()
        pipe = build_pipeline("pycode")
        pipe.run(make_program().func)
        (run_dir,) = list(tmp_path.iterdir())
        assert "build-pycode" in run_dir.name
        irs = sorted(p.name for p in run_dir.glob("*.ir"))
        # the staged input plus one snapshot per pass
        assert len(irs) == 1 + len(pipe.passes)
        assert irs[0] == "00-input.ir"
        for i, name in enumerate(pipe.pass_names(), start=1):
            assert f"{i:02d}-{name}.ir" in irs
            assert (run_dir / f"{i:02d}-{name}.diff").exists()

    def test_cached_runs_still_snapshot(self, tmp_path, monkeypatch):
        clear_pass_cache()
        func = make_program().func
        pipe = lowering_pipeline()
        pipe.run(func)  # warm the cache without dumping
        monkeypatch.setenv("REPRO_DUMP_IR", str(tmp_path))
        pipe.run(func)
        (run_dir,) = list(tmp_path.iterdir())
        assert len(list(run_dir.glob("*.ir"))) == 1 + len(pipe.passes)


class _BreakStores(Mutator):
    """A deliberately-broken pass: shifts every Store index far negative,
    which the bounds verifier proves out of bounds (FT101)."""

    def mutate_Store(self, s):
        out = S.Store(s.var,
                      [E.makeSub(self.mutate_expr(i), E.IntConst(10 ** 6))
                       for i in s.indices],
                      self.mutate_expr(s.expr))
        out.sid, out.label = s.sid, s.label
        return out


class TestVerifyEachPass:

    def test_broken_pass_is_pinpointed(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY_EACH_PASS", "1")
        clear_pass_cache()
        broken = Pass("break_stores", _BreakStores(), cacheable=False)
        pipe = Pipeline(lowering_passes() + [broken], name="sabotaged")
        with pytest.raises(VerificationError) as exc:
            pipe.run(make_program().func)
        msg = str(exc.value)
        assert "'break_stores'" in msg
        assert "'sabotaged'" in msg
        assert "FT101" in msg

    def test_clean_pipeline_passes(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY_EACH_PASS", "1")
        clear_pass_cache()
        out = build_pipeline("pycode").run(make_program().func)
        assert isinstance(out, Func)

    def test_preexisting_errors_not_attributed(self, monkeypatch):
        # an error already present in the input must not be blamed on
        # the first pass that runs
        monkeypatch.setenv("REPRO_VERIFY_EACH_PASS", "1")
        clear_pass_cache()
        bad = _BreakStores()(make_program().func)
        out = lowering_pipeline().run(bad)
        assert isinstance(out, Func)

    @pytest.mark.parametrize("name", sorted(ALL))
    def test_workloads_survive_per_pass_verification(self, name,
                                                     monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY_EACH_PASS", "1")
        clear_pass_cache()
        func = ALL[name].make_program().func
        out = build_pipeline("pycode").run(func)
        assert isinstance(out, Func)


class TestDifferential:
    """The pipeline must produce bit-identical IR (same sid-inclusive
    struct_hash) to the pre-pipeline ad-hoc lowering sequence."""

    @pytest.mark.parametrize("name", sorted(ALL))
    def test_pipeline_matches_manual_lowering(self, name):
        from repro.passes.cleanup import remove_dead_writes
        from repro.passes.flatten import flatten_stmt_seq
        from repro.passes.make_reduction import make_reduction
        from repro.passes.simplify_pass import simplify

        func = ALL[name].make_program().func
        manual = remove_dead_writes(
            simplify(make_reduction(flatten_stmt_seq(func))))
        clear_pass_cache()
        piped = lowering_pipeline().run(func)
        assert struct_hash(piped, include_sids=True) == \
            struct_hash(manual, include_sids=True)

    def test_cli_and_build_agree(self):
        # the verify CLI's --optimize path and build(optimize=True) must
        # see the exact same IR
        func = ALL["gat"].make_program().func
        via_cli = compile_ir(func, optimize=True)
        exe = build(func, backend="pycode", optimize=True)
        assert struct_hash(via_cli, include_sids=True) == \
            struct_hash(exe.func, include_sids=True)


class TestLegalization:

    def test_backend_declarations(self):
        assert declared_legalization("c") == ("simd_suppress",)
        assert declared_legalization("cuda") == ("simd_suppress",)
        assert declared_legalization("pycode") == ()

    @staticmethod
    def _vectorized_with_atomic_minmax():
        @ft.transform
        def f(x: ft.Tensor[("n", 16), "f32", "input"],
              lo: ft.Tensor[(16,), "f32", "inout"]):
            ft.label("Li")
            for i in range(x.shape(0)):
                ft.label("Lj")
                for j in range(16):
                    lo[j] = ft.min(lo[j], x[i, j])

        s = ft.Schedule(f)
        s.parallelize("Li", "openmp")  # makes the inner min atomic
        s.vectorize("Lj")
        return s.func

    def test_suppress_illegal_simd(self):
        func = self._vectorized_with_atomic_minmax()
        marked = [l for l in collect_stmts(
            func.body, lambda s: isinstance(s, For))
            if l.property.vectorize]
        assert marked, "schedule should have produced a vectorized loop"
        out = suppress_illegal_simd(func)
        assert not [l for l in collect_stmts(
            out.body, lambda s: isinstance(s, For)) if l.property.vectorize]

    def test_legalize_is_idempotent(self):
        func = self._vectorized_with_atomic_minmax()
        once = legalize(func, "c")
        twice = legalize(once, "c")
        assert struct_hash(once, include_sids=True) == \
            struct_hash(twice, include_sids=True)
        # nothing declared for the interpreter: unchanged input
        assert legalize(func, "pycode") is func

    def test_legal_vectorize_survives(self):
        func = make_program().func
        s = ft.Schedule(func)
        (inner,) = [l for l in s.loops() if l.label == "Lj"]
        s.vectorize(inner.sid)
        out = legalize(s.func, "c")
        assert [l for l in collect_stmts(
            out.body, lambda x: isinstance(x, For)) if l.property.vectorize]


class TestBuildIntegration:

    def test_compile_times_has_per_pass_entries(self):
        ft.clear_compile_caches()
        exe = build(make_program().func, backend="pycode")
        for name in STANDARD_LOWERING:
            assert name in exe.compile_times
        assert "codegen" in exe.compile_times

    def test_optimized_build_times_rule_passes(self):
        ft.clear_compile_caches()
        exe = build(make_program().func, backend="pycode", optimize=True)
        for name in ("auto_fuse", "auto_vectorize", "auto_parallelize",
                     "auto_mem_type", "auto_use_lib", "auto_unroll"):
            assert name in exe.compile_times

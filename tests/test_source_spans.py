"""Tests for Python source spans threaded from staging into the IR."""

import os

import numpy as np

import repro as ft
from repro.ir import For, If, Store, VarDef, collect_stmts, dump
from repro.passes import lower
from repro.schedule import Schedule

HERE = os.path.abspath(__file__)


def _prog():
    @ft.transform
    def f(x: ft.Tensor[("n",), "f32", "input"]):
        y = ft.empty((x.shape(0),), "f32")          # VarDef line
        for i in range(x.shape(0)):                 # For line
            if i > 0:                               # If line
                y[i] = x[i] + 1.0                   # Store line
            else:
                y[i] = x[i]
        return y

    return f


def _line_of(text):
    with open(HERE) as f:
        for no, line in enumerate(f, 1):
            if text in line and "_line_of" not in line:
                return no
    raise AssertionError(f"marker {text!r} not found")


class TestCapture:

    def test_spans_point_into_this_file(self):
        func = _prog().func
        stmts = collect_stmts(
            func.body,
            lambda s: isinstance(s, (For, If, Store, VarDef)))
        spanned = [s for s in stmts if s.span is not None]
        assert spanned, "no spans captured at all"
        for s in spanned:
            fname, line = s.span
            assert os.path.abspath(fname) == HERE
            assert line > 0

    def test_exact_lines(self):
        func = _prog().func
        loop = collect_stmts(func.body,
                             lambda s: isinstance(s, For))[0]
        assert loop.span[1] == _line_of("# For line")
        branch = collect_stmts(func.body,
                               lambda s: isinstance(s, If))[0]
        assert branch.span[1] == _line_of("# If line")
        stores = collect_stmts(func.body,
                               lambda s: isinstance(s, Store))
        assert _line_of("# Store line") in [s.span[1] for s in stores]

    def test_vardef_line(self):
        func = _prog().func
        y_def = [
            s for s in collect_stmts(func.body,
                                     lambda s: isinstance(s, VarDef))
            if s.name == "y"
        ][0]
        assert y_def.span[1] == _line_of("# VarDef line")


class TestSurvival:

    def test_spans_survive_lowering(self):
        func = lower(_prog().func)
        stores = collect_stmts(func.body,
                               lambda s: isinstance(s, Store))
        assert any(s.span is not None and
                   os.path.abspath(s.span[0]) == HERE for s in stores)

    def test_spans_survive_schedules(self, rng):
        @ft.transform
        def f(x: ft.Tensor[(8,), "f32", "input"]):
            y = ft.empty((8,), "f32")
            ft.label("L")
            for i in range(8):
                y[i] = x[i] * 2.0                   # survives split
            return y

        marker = _line_of("# survives split")
        s = Schedule(f)
        s.split("L", factor=4)
        stores = collect_stmts(s.func.body,
                               lambda st: isinstance(st, Store))
        assert marker in [st.span[1] for st in stores
                          if st.span is not None]
        from repro.runtime import build

        out = build(s.func)(rng.standard_normal(8).astype(np.float32))
        assert out.shape == (8,)

    def test_spans_survive_unroll_fresh_copies(self):
        @ft.transform
        def f(x: ft.Tensor[(3,), "f32", "input"]):
            y = ft.empty((3,), "f32")
            ft.label("U")
            for i in range(3):
                y[i] = x[i] + 1.0                   # survives unroll
            return y

        marker = _line_of("# survives unroll")
        s = Schedule(f)
        s.unroll("U")
        stores = collect_stmts(s.func.body,
                               lambda st: isinstance(st, Store))
        assert len(stores) == 3
        for st in stores:
            assert st.span is not None and st.span[1] == marker


class TestPrinter:

    def test_dump_show_spans(self):
        func = _prog().func
        text = dump(func, show_spans=True)
        base = os.path.basename(HERE)
        assert f"/* {base}:" in text
        assert dump(func).count(base) == 0  # off by default


class TestDisable:

    def test_repro_no_spans(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_SPANS", "1")

        @ft.transform
        def f(x: ft.Tensor[(4,), "f32", "input"]):
            y = ft.empty((4,), "f32")
            for i in range(4):
                y[i] = x[i]
            return y

        stmts = collect_stmts(f.func.body, lambda s: True)
        assert all(s.span is None for s in stmts)

"""Property-based tests on expression-level machinery: the simplifier
preserves values, bound analysis is sound, and printer/parser agree —
all on randomly generated expressions."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis import BoundsCtx, const_bounds, tightest_bounds
from repro.ir import (DataType, Expr, IntConst, Load, Var, dump, makeMax,
                      makeMin, wrap)
from repro.passes import simplify_expr
from repro.runtime.interpreter import Interpreter

_INTERP = Interpreter()

VARS = ["i", "j", "k"]


@st.composite
def int_exprs(draw, depth=0) -> Expr:
    kind = draw(st.integers(0, 8 if depth < 3 else 1))
    if kind == 0:
        return IntConst(draw(st.integers(-6, 6)))
    if kind == 1:
        return Var(draw(st.sampled_from(VARS)))
    lhs = draw(int_exprs(depth=depth + 1))
    rhs = draw(int_exprs(depth=depth + 1))
    if kind == 2:
        return lhs + rhs
    if kind == 3:
        return lhs - rhs
    if kind == 4:
        return lhs * IntConst(draw(st.integers(-3, 3)))
    if kind == 5:
        return makeMin(lhs, rhs)
    if kind == 6:
        return makeMax(lhs, rhs)
    if kind == 7:
        return lhs // IntConst(draw(st.integers(1, 4)))
    return lhs % IntConst(draw(st.integers(1, 5)))


def _eval(e: Expr, env) -> int:
    return _INTERP.eval_expr(e, dict(env))


@settings(max_examples=200, deadline=None)
@given(int_exprs(), st.integers(-10, 10), st.integers(-10, 10),
       st.integers(-10, 10))
def test_simplify_preserves_value(e, i, j, k):
    env = {"i": i, "j": j, "k": k}
    simplified = simplify_expr(e)
    assert _eval(simplified, env) == _eval(e, env)


@settings(max_examples=150, deadline=None)
@given(int_exprs(), st.integers(0, 5), st.integers(1, 5),
       st.integers(0, 5), st.integers(1, 5), st.integers(-10, 10))
def test_bounds_are_sound(e, i0, ilen, j0, jlen, k):
    """Every value the expression takes over the iteration box lies
    within the inferred bounds."""
    ctx = BoundsCtx().with_loop("i", i0, i0 + ilen) \
        .with_loop("j", j0, j0 + jlen)
    lo, up = tightest_bounds(e, ctx, allowed_vars={"k"})
    env0 = {"k": k}
    for i in range(i0, i0 + ilen):
        for j in range(j0, j0 + jlen):
            v = _eval(e, {**env0, "i": i, "j": j})
            if lo is not None:
                assert _eval(lo, env0) <= v
            if up is not None:
                assert v <= _eval(up, env0)


@settings(max_examples=150, deadline=None)
@given(int_exprs())
def test_printer_parser_roundtrip_exprs(e):
    from repro.ir.parser import parse_stmt

    text = f"a[0] = {dump(e)}\n"
    parsed = parse_stmt(text)
    assert dump(parsed) == text


@settings(max_examples=100, deadline=None)
@given(int_exprs(), st.integers(-10, 10), st.integers(-10, 10),
       st.integers(-10, 10))
def test_c_backend_integer_semantics(e, i, j, k):
    """Generated C agrees with Python on //, %, min/max over negatives."""
    from repro.ir import Func, Store, VarDef
    from repro.ir import substitute
    from repro.runtime import build

    bound = substitute(Store("y", [IntConst(0)], e),
                       {"i": IntConst(i), "j": IntConst(j),
                        "k": IntConst(k)})
    body = VarDef("y", [1], "i64", "output", "cpu", bound)
    func = Func("t", [], ["y"], body)
    out = build(func, backend="c")()
    env = {"i": i, "j": j, "k": k}
    assert int(out[0]) == _eval(e, env)


@settings(max_examples=80, deadline=None)
@given(int_exprs(), st.integers(-10, 10), st.integers(-10, 10),
       st.integers(-10, 10))
def test_affine_builder_exactness(e, i, j, k):
    """When the polyhedral builder accepts an expression, the affine form
    plus its div/mod constraints has exactly the evaluated value."""
    from repro.polyhedral import Affine, LinCon, is_feasible, try_affine

    res = try_affine(e)
    assume(res is not None)
    a, cons, _ex = res
    env = {"i": i, "j": j, "k": k}
    v = _eval(e, env)
    binding = [LinCon.eq(Affine.var(n), Affine.constant(val))
               for n, val in env.items()]
    # value v must be consistent...
    assert is_feasible(cons + binding +
                       [LinCon.eq(a, Affine.constant(v))])
    # ...and any other value must not be
    assert not is_feasible(cons + binding +
                           [LinCon.eq(a, Affine.constant(v + 1))])

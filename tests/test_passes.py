"""Unit tests for the lowering passes."""

import numpy as np
import pytest

import repro as ft
from repro.ir import (Assert, BoolConst, For, If, IntConst, Load, ReduceTo,
                      Store, StmtSeq, Var, VarDef, collect_stmts, dump,
                      match, seq)
from repro.passes import (flatten_stmt_seq, lower, make_reduction,
                          prune_branches, remove_dead_writes, simplify,
                          simplify_expr)


class TestSimplify:

    def test_constant_if_pruned(self):
        s = If(BoolConst(True), Store("a", [], 1), Store("a", [], 2))
        out = simplify(s)
        assert match(out, Store("a", [], 1))

    def test_empty_loop_removed(self):
        s = For("i", 3, 3, Store("a", [Var("i")], 1))
        out = simplify(s)
        assert isinstance(out, StmtSeq) and not out.stmts

    def test_single_iteration_inlined(self):
        s = For("i", 2, 3, Store("a", [Var("i")], Var("i") * 2))
        out = simplify(s)
        assert match(out, Store("a", [IntConst(2)], IntConst(4)))

    def test_linear_cancellation(self):
        i, m = Var("i"), Var("m")
        e = simplify_expr(i + (m - 1) - i + 1)
        assert dump(e) == "m"

    def test_linear_collection(self):
        i = Var("i")
        e = simplify_expr(i + i + i)
        assert dump(e) == "3 * i" or dump(e) == "i * 3"

    def test_float_not_reassociated(self):
        x = Load("x", [], ft.Tensor and __import__(
            "repro.ir", fromlist=["DataType"]).DataType.FLOAT32)
        e = (x + 1.0) - x  # must NOT fold to 1.0 (float semantics)
        out = simplify_expr(e)
        assert "x" in dump(out)

    def test_idempotent(self):
        @ft.transform
        def f(a: ft.Tensor[(4, 4), "f32", "input"]):
            y = ft.zeros((4, 4), "f32")
            for i in range(4):
                for j in range(4):
                    y[i, j] = a[i, j] * 1.0 + 0.0
            return y

        once = simplify(f.func)
        twice = simplify(once)
        assert dump(once) == dump(twice)


class TestPrune:

    def test_range_implied_branch(self):
        body = If(Var("i") < 10, Store("a", [Var("i")], 1),
                  Store("a", [Var("i")], 2))
        loop = For("i", 0, 5, body)
        out = prune_branches(loop)
        ifs = collect_stmts(out, lambda s: isinstance(s, If))
        assert not ifs  # i < 5 <= 10 always

    def test_negated_branch(self):
        body = If(Var("i") >= 10, Store("a", [Var("i")], 1))
        loop = For("i", 0, 5, body)
        out = prune_branches(loop)
        stores = collect_stmts(out, lambda s: isinstance(s, Store))
        assert not stores  # never taken, else empty

    def test_undecidable_kept(self):
        body = If(Var("i") < Var("k"), Store("a", [Var("i")], 1))
        loop = For("i", 0, 5, body)
        out = prune_branches(loop)
        assert collect_stmts(out, lambda s: isinstance(s, If))

    def test_nested_condition_context(self):
        inner = If(Var("i") < 8, Store("a", [Var("i")], 1),
                   Store("a", [Var("i")], 2))
        outer = If(Var("i") < 3, inner)
        loop = For("i", 0, 100, outer)
        out = prune_branches(loop)
        # inside i < 3, the i < 8 branch is decided
        ifs = collect_stmts(out, lambda s: isinstance(s, If))
        assert len(ifs) == 1

    def test_minmax_bounds(self):
        """Bounds with min/max (from separate_tail cuts) still prune."""
        from repro.ir import makeMax, makeMin

        k, n = Var("k"), Var("n")
        cut = makeMax(IntConst(0), makeMin(k, n))
        body = If(Var("i") < k, Store("a", [Var("i")], 1),
                  Store("a", [Var("i")], 2))
        loop = For("i", 0, cut, body)
        out = prune_branches(loop)
        stores = collect_stmts(out, lambda s: isinstance(s, Store))
        assert len(stores) == 1  # else-branch proven dead


class TestMakeReduction:

    def test_add_forms(self):
        i = Var("i")
        from repro.ir import DataType

        load = Load("y", [i], DataType.FLOAT32)
        v = Load("x", [i], DataType.FLOAT32)
        for expr in (load + v, v + load):
            out = make_reduction(Store("y", [i], expr))
            assert isinstance(out, ReduceTo) and out.op == "+"

    def test_sub_becomes_negated_add(self):
        i = Var("i")
        from repro.ir import DataType

        load = Load("y", [i], DataType.FLOAT32)
        v = Load("x", [i], DataType.FLOAT32)
        out = make_reduction(Store("y", [i], load - v))
        assert isinstance(out, ReduceTo) and out.op == "+"

    def test_minmax(self):
        from repro.ir import DataType, makeMax

        load = Load("y", [], DataType.FLOAT32)
        v = Load("x", [], DataType.FLOAT32)
        out = make_reduction(Store("y", [], makeMax(load, v)))
        assert isinstance(out, ReduceTo) and out.op == "max"

    def test_different_index_not_converted(self):
        i = Var("i")
        from repro.ir import DataType

        load = Load("y", [i + 1], DataType.FLOAT32)
        out = make_reduction(Store("y", [i], load + 1.0))
        assert isinstance(out, Store)

    def test_self_in_both_operands_not_converted(self):
        from repro.ir import DataType

        load = Load("y", [], DataType.FLOAT32)
        out = make_reduction(Store("y", [], load + load))
        assert isinstance(out, Store)


class TestDeadWrites:

    def test_unused_cache_removed(self):
        @ft.transform
        def f(a: ft.Tensor[(4,), "f32", "input"]):
            t = ft.zeros((4,), "f32")  # never contributes to the output
            for i in range(4):
                t[i] = a[i] * 2.0
            y = ft.zeros((4,), "f32")
            for i in range(4):
                y[i] = a[i] + 1.0
            return y

        out = remove_dead_writes(f.func)
        names = {d.name for d in collect_stmts(
            out.body, lambda s: isinstance(s, VarDef))}
        assert "t" not in names

    def test_chained_liveness(self):
        @ft.transform
        def f(a: ft.Tensor[(4,), "f32", "input"]):
            t = ft.zeros((4,), "f32")
            for i in range(4):
                t[i] = a[i] * 2.0
            y = ft.zeros((4,), "f32")
            for i in range(4):
                y[i] = t[i] + 1.0  # t reaches the output through y
            return y

        out = remove_dead_writes(f.func)
        names = {d.name for d in collect_stmts(
            out.body, lambda s: isinstance(s, VarDef))}
        assert "t" in names

    def test_index_tensor_is_live(self):
        @ft.transform
        def f(a: ft.Tensor[(4,), "f32", "input"],
              idx: ft.Tensor[(4,), "i32", "input"]):
            y = ft.zeros((4,), "f32")
            for i in range(4):
                y[idx[i]] = a[i]
            return y

        out = remove_dead_writes(f.func)
        exe = __import__("repro.runtime", fromlist=["build"]).build(out)
        a = np.arange(4, dtype=np.float32)
        idx = np.array([3, 2, 1, 0], np.int32)
        np.testing.assert_allclose(exe(a, idx), a[::-1])


class TestLowerPipeline:

    def test_full_pipeline_preserves_results(self, rng):
        @ft.transform
        def f(a: ft.Tensor[("n",), "f32", "input"]):
            dead = ft.zeros(("n",), "f32")
            for i in range(a.shape(0)):
                dead[i] = a[i]
            y = ft.zeros(("n",), "f32")
            for i in range(a.shape(0)):
                if i >= 0:  # always true
                    y[i] = y[i] + a[i] * 2.0  # becomes ReduceTo
            return y

        from repro.runtime import build

        x = rng.standard_normal(6).astype(np.float32)
        out_f = build(f.func, backend="interp")(x)
        lowered = lower(f.func)
        out_l = build(lowered, backend="interp")(x)
        np.testing.assert_allclose(out_l, out_f, rtol=1e-6)
        # the dead tensor is gone and the reduce is recognised
        names = {d.name for d in collect_stmts(
            lowered.body, lambda s: isinstance(s, VarDef))}
        assert "dead" not in names

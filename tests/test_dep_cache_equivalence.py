"""Differential tests: dependence caching must be invisible.

Every scenario runs the same scripted schedule session twice — once with
the compile-path caches enabled (the default) and once with every cache
disabled through the environment escape hatches — and asserts that the
legality verdicts and the transformed IR are identical. A warm-cache
re-run of each scenario must also agree, proving that memoized verdicts
never leak between structurally different queries.
"""

import numpy as np
import pytest

import repro as ft
from repro.analysis import analysis_cache_stats
from repro.autosched import CPU, auto_schedule
from repro.errors import DependenceViolation, InvalidSchedule
from repro.ir import dump
from repro.schedule import Schedule

#: every escape hatch; the uncached runs set them all so no cache layer
#: can mask another's bug
ALL_HATCHES = ("REPRO_NO_ANALYSIS_CACHE", "REPRO_NO_OMEGA_MEMO",
               "REPRO_NO_BUILD_CACHE", "REPRO_NO_LOWER_CACHE")


def make_elementwise():
    @ft.transform
    def f(b: ft.Tensor[("n", "m"), "f32", "input"],
          a: ft.Tensor[("n", "m"), "f32", "output"]):
        ft.label("Li")
        for i in range(b.shape(0)):
            ft.label("Lj")
            for j in range(b.shape(1)):
                a[i, j] = b[i, j] * 2.0 + 1.0

    return f


def make_carried():
    # loop-carried flow dependence: iteration i+1 reads what i wrote
    @ft.transform
    def f(a: ft.Tensor[(16,), "f32", "inout"]):
        ft.label("L")
        for i in range(15):
            a[i + 1] = a[i] + 1.0

    return f


def make_reduction():
    @ft.transform
    def f(x: ft.Tensor[("n", "m"), "f32", "input"],
          y: ft.Tensor[("n",), "f32", "output"]):
        ft.label("Li")
        for i in range(x.shape(0)):
            ft.label("Lj")
            for j in range(x.shape(1)):
                y[i] = y[i] + x[i, j]

    return f


def make_two_stage():
    @ft.transform
    def f(x: ft.Tensor[(8, 8), "f32", "input"],
          y: ft.Tensor[(8, 8), "f32", "output"]):
        t = ft.empty((8, 8), "f32")
        ft.label("La")
        for i in range(8):
            ft.label("Lb")
            for j in range(8):
                t[i, j] = x[i, j] * 3.0
        ft.label("Lc")
        for i in range(8):
            ft.label("Ld")
            for j in range(8):
                y[i, j] = t[i, j] + 1.0

    return f


def _elementwise_steps(s):
    s.reorder(["Lj", "Li"])
    outer, inner = s.split("Li", factor=4)
    s.parallelize("Lj")
    s.vectorize(inner)


def _carried_steps(s):
    s.parallelize("L")  # must raise: loop-carried dependence
    s.vectorize("L")


def _reduction_steps(s):
    s.reorder(["Lj", "Li"])
    s.parallelize("Lj")
    s.vectorize("Li")


def _two_stage_steps(s):
    fused = s.fuse("La", "Lc")
    s.parallelize(fused)
    inner = [l.sid for l in s.loops() if l.sid != fused]
    s.fission(fused, after=inner[0])


SCENARIOS = {
    "elementwise": (make_elementwise, _elementwise_steps),
    "carried": (make_carried, _carried_steps),
    "reduction": (make_reduction, _reduction_steps),
    "two_stage": (make_two_stage, _two_stage_steps),
}


class _Abort(Exception):
    """A primitive raised; end the scenario (deterministically)."""


class _Recorder:
    """Proxies a Schedule, recording each primitive's legality verdict."""

    def __init__(self, sched, verdicts):
        self._sched = sched
        self._verdicts = verdicts

    def __getattr__(self, attr):
        real = getattr(self._sched, attr)
        if not callable(real):
            return real

        def wrapped(*a, **kw):
            try:
                out = real(*a, **kw)
            except (InvalidSchedule, DependenceViolation) as e:
                self._verdicts.append((attr, type(e).__name__))
                raise _Abort from e
            self._verdicts.append((attr, "ok"))
            return out

        return wrapped


def run_scenario(name):
    """One verdict per primitive — "ok" or the exception type — plus the
    final IR, dumped without sids (sids are allocation-order dependent)."""
    make, steps = SCENARIOS[name]
    s = Schedule(make())
    verdicts = []
    try:
        steps(_Recorder(s, verdicts))
    except _Abort:
        pass
    return verdicts, dump(s.func)


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_cached_equals_uncached(name, monkeypatch):
    ft.clear_compile_caches()
    cached_verdicts, cached_ir = run_scenario(name)
    for var in ALL_HATCHES:
        monkeypatch.setenv(var, "1")
    plain_verdicts, plain_ir = run_scenario(name)
    assert cached_verdicts == plain_verdicts
    assert cached_ir == plain_ir


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_warm_cache_agrees_with_cold(name):
    ft.clear_compile_caches()
    cold = run_scenario(name)
    before = analysis_cache_stats()
    warm = run_scenario(name)
    after = analysis_cache_stats()
    assert warm == cold
    # the warm run must actually exercise the memo, or this test proves
    # nothing (every scenario issues dependence queries via reorder/
    # fission/fuse/parallelize/vectorize)
    assert after["hits"] > before["hits"]


@pytest.mark.parametrize("make", [make_elementwise, make_reduction,
                                  make_two_stage],
                         ids=["elementwise", "reduction", "two_stage"])
def test_auto_schedule_ir_identical(make, monkeypatch):
    ft.clear_compile_caches()
    cached = dump(auto_schedule(make(), target=CPU))
    for var in ALL_HATCHES:
        monkeypatch.setenv(var, "1")
    plain = dump(auto_schedule(make(), target=CPU))
    assert cached == plain


def test_transformed_code_still_correct(rng):
    """End-to-end: a cached session's transformed program computes the
    same values as the untransformed one."""
    from repro.runtime import build

    ft.clear_compile_caches()
    x = rng.standard_normal((8, 12)).astype(np.float32)
    for _ in range(2):  # second pass runs against a warm memo
        p = make_elementwise()
        s = Schedule(p)
        s.reorder(["Lj", "Li"])
        outer, inner = s.split("Li", factor=4)
        s.parallelize("Lj")
        ref = build(p)(x)
        out = build(s.func)(x)
        np.testing.assert_allclose(out, ref, rtol=1e-5)

"""Tests for the metrics collector, the static footprint analysis, the
device models and the simulated GPU."""

import numpy as np
import pytest

import repro as ft
from repro.errors import SimulatedOOM
from repro.passes import lower
from repro.runtime import build
from repro.runtime.metrics import (LINE, SECTOR, DeviceModel,
                                   MetricsCollector, V100, XEON,
                                   static_peak_bytes)
from repro.schedule import Schedule


class TestCacheModel:

    def test_sector_counting(self):
        m = MetricsCollector()
        buf = np.zeros(100, np.float32)
        m.on_read("a", buf, (0,))
        m.on_read("a", buf, (1,))  # same 32B sector: coalesced
        assert m.l2_bytes == SECTOR
        m.on_read("a", buf, (20,))  # a different sector
        assert m.l2_bytes == 2 * SECTOR

    def test_dram_line_miss_and_hit(self):
        m = MetricsCollector()
        buf = np.zeros(1000, np.float32)
        m.on_read("a", buf, (0,))
        assert m.dram_bytes == LINE
        m.on_read("a", buf, (100,))  # another line
        assert m.dram_bytes == 2 * LINE
        m.on_read("a", buf, (8,))  # line 0 again: L2 hit
        assert m.dram_bytes == 2 * LINE

    def test_lru_eviction(self):
        m = MetricsCollector(l2_capacity=2 * LINE)  # 2-line cache
        buf = np.zeros(10000, np.float64)
        for block in (0, 100, 200, 0):  # 0 evicted before re-access
            m.on_read("a", buf, (block,))
        assert m.dram_bytes == 4 * LINE

    def test_local_memory_free(self):
        from repro.ir import MemType

        m = MetricsCollector()
        buf = np.zeros(64, np.float32)
        m.on_alloc("t", buf, MemType.GPU_LOCAL)
        m.on_read("t", buf, (0,))
        assert m.l2_bytes == 0
        assert m.peak_bytes == 0  # registers don't count

    def test_footprint_tracking(self):
        from repro.ir import MemType

        m = MetricsCollector()
        a = np.zeros(1000, np.float32)
        b = np.zeros(500, np.float32)
        m.on_alloc("a", a, MemType.GPU_GLOBAL)
        m.on_alloc("b", b, MemType.GPU_GLOBAL)
        m.on_free("a", a, MemType.GPU_GLOBAL)
        assert m.peak_bytes == a.nbytes + b.nbytes
        assert m.current_bytes == b.nbytes

    def test_capacity_enforcement(self):
        from repro.ir import MemType

        m = MetricsCollector(capacity_bytes=1000)
        with pytest.raises(SimulatedOOM):
            m.on_alloc("big", np.zeros(1000, np.float32),
                       MemType.GPU_GLOBAL)


class TestStaticPeak:

    def test_stack_scoped_reuse(self):
        """Per-iteration scratch counts once, not per iteration."""
        @ft.transform
        def f(a: ft.Tensor[("n", 8), "f32", "input"]):
            y = ft.zeros(("n",), "f32")
            for i in range(a.shape(0)):
                t = ft.empty((8,), "f32")  # fresh per iteration
                for k in range(8):
                    t[k] = a[i, k]
                for k in range(8):
                    y[i] += t[k]
            return y

        peak = static_peak_bytes(lower(f.func), {"n": 1000})
        assert peak == 8 * 4  # one t instance; y is an interface tensor

    def test_sibling_scopes_max(self):
        @ft.transform
        def f(a: ft.Tensor[(16,), "f32", "input"],
              y: ft.Tensor[(16,), "f32", "output"]):
            t1 = ft.zeros((16,), "f32")
            for i in range(16):
                t1[i] = a[i] * 2.0
            for i in range(16):
                y[i] = t1[i]

        # a single live cache tensor at any point
        peak = static_peak_bytes(lower(f.func), {})
        assert peak == 16 * 4

    def test_symbolic_extent_via_params(self):
        @ft.transform
        def f(a: ft.Tensor[("n",), "f32", "input"], w: ft.Size):
            y = ft.zeros(("n",), "f32")
            for i in range(a.shape(0)):
                t = ft.empty((2 * w + 1,), "f32")
                for k in range(2 * w + 1):
                    t[k] = a[i]
                y[i] = t[0]
            return y

        peak = static_peak_bytes(lower(f.func), {"n": 100, "w": 8})
        assert peak == (2 * 8 + 1) * 4

    def test_param_bytes_added(self):
        @ft.transform
        def f(y: ft.Tensor[(4,), "f32", "output"]):
            for i in range(4):
                y[i] = 0.0

        assert static_peak_bytes(lower(f.func), {},
                                 param_bytes=1234) == 1234


class TestDeviceModels:

    def test_time_formula(self):
        m = MetricsCollector()
        m.kernels = 10
        m.dram_bytes = 9_000_000_000  # 9 GB at 900 GB/s -> 10 ms
        m.flops = 1
        t = V100.time(m)
        assert abs(t - (10 * 5e-6 + 0.01)) < 1e-9

    def test_compute_bound(self):
        m = MetricsCollector()
        m.kernels = 1
        m.flops = 14_000_000_000_000  # exactly 1 s of V100 FLOPs
        assert abs(V100.time(m) - (5e-6 + 1.0)) < 1e-6

    def test_capacity_check(self):
        with pytest.raises(SimulatedOOM):
            V100.check_capacity(33 * 2**30)
        V100.check_capacity(31 * 2**30)  # fits

    def test_cpu_vs_gpu_models_differ(self):
        assert XEON.dram_bw < V100.dram_bw
        assert XEON.launch_overhead_s < V100.launch_overhead_s


class TestGPUSimulator:

    def _prog(self):
        @ft.transform
        def f(x: ft.Tensor[("n",), "f32", "input"]):
            y = ft.empty(("n",), "f32")
            ft.label("L")
            for i in range(x.shape(0)):
                y[i] = x[i] + 1.0
            return y

        return f

    def test_kernel_per_parallel_root(self):
        f = self._prog()
        s = Schedule(f)
        o, i = s.split("L", factor=32)
        s.parallelize(o, "cuda.blockIdx.x")
        s.parallelize(i, "cuda.threadIdx.x")
        m = MetricsCollector()
        exe = build(s.func, backend="gpusim", metrics=m)
        x = np.arange(100, dtype=np.float32)
        np.testing.assert_allclose(exe(x), x + 1)
        assert m.kernels == 1

    def test_sequential_fallback_counts_per_launch(self):
        """An unparallelised statement at host level is its own launch."""
        f = self._prog()
        m = MetricsCollector()
        exe = build(f, backend="gpusim", metrics=m)
        x = np.arange(10, dtype=np.float32)
        exe(x)
        assert m.kernels >= 1

    def test_capacity_oom(self):
        @ft.transform
        def f(x: ft.Tensor[("n",), "f32", "input"]):
            big = ft.zeros(("n", "n"), "f32")
            y = ft.zeros(("n",), "f32")
            for i in range(x.shape(0)):
                big[i, i] = x[i]
                y[i] = big[i, i]
            return y

        from repro.runtime.metrics import DeviceModel

        tiny = DeviceModel("tiny", 5e-6, 900e9, 2500e9, 14e12,
                           capacity_bytes=1024)
        exe = build(f, backend="gpusim", device=tiny)
        with pytest.raises(SimulatedOOM):
            exe(np.zeros(100, np.float32))

    def test_libcall_is_one_kernel(self, rng):
        @ft.transform
        def mm(a: ft.Tensor[(8, 8), "f32", "input"],
               b: ft.Tensor[(8, 8), "f32", "input"]):
            c = ft.zeros((8, 8), "f32")
            ft.label("L")
            for i in range(8):
                for j in range(8):
                    for k in range(8):
                        c[i, j] += a[i, k] * b[k, j]
            return c

        s = Schedule(mm)
        s.as_lib("L")
        m = MetricsCollector()
        exe = build(s.func, backend="gpusim", metrics=m)
        A = rng.standard_normal((8, 8)).astype(np.float32)
        B = rng.standard_normal((8, 8)).astype(np.float32)
        np.testing.assert_allclose(exe(A, B), A @ B, rtol=1e-4)
        assert any(n.startswith("lib.") for n in m.kernel_names)

"""Cross-backend differential correctness: every registered runnable
backend must produce the reference answer on all four paper workloads,
both on raw (unscheduled) IR and on the auto-scheduled IR the tuner
would ship. New backends registered through ``repro.backend`` are picked
up automatically — this suite is the executable contract behind the
registry's retargetability claim."""

import numpy as np
import pytest

from repro.autosched import auto_schedule
from repro.backend import available_backends, get_backend
from repro.runtime import build
from repro.workloads import gat, longformer, softras, subdivnet

_MODULES = {
    "subdivnet": subdivnet,
    "longformer": longformer,
    "softras": softras,
    "gat": gat,
}

_SMALL = {
    "subdivnet": dict(n_faces=24, in_feats=4, out_feats=4),
    "longformer": dict(seq_len=24, feat_len=6, w=3),
    "softras": dict(n_faces=6, image_size=8),
    "gat": dict(n_nodes=24, avg_degree=3, feats=4, out_feats=4),
}


def _ft_args(name, data):
    if name == "subdivnet":
        return (data["adj"], data["e"], data["w"]), {}
    if name == "longformer":
        return (data["q"], data["k"], data["v"]), {"w": data["w"]}
    if name == "softras":
        return (data["verts"], data["px"]), {}
    return (data["indptr"], data["indices"], data["h"], data["wmat"],
            data["att_s"], data["att_d"]), {}


def _check(name, backend, optimize):
    mod = _MODULES[name]
    data = mod.make_data(**_SMALL[name])
    ref = mod.reference(data)
    args, kwargs = _ft_args(name, data)
    prog = mod.make_program()
    if optimize:
        b = get_backend(backend)
        func = auto_schedule(prog, target=b.default_target(),
                             backend=backend)
    else:
        func = prog
    out = build(func, backend=backend)(*args, **kwargs)
    np.testing.assert_allclose(out, ref, rtol=1e-3, atol=1e-4)


@pytest.mark.parametrize("backend", available_backends())
@pytest.mark.parametrize("name", sorted(_MODULES))
class TestDifferential:

    def test_raw(self, name, backend):
        _check(name, backend, optimize=False)

    def test_autoscheduled(self, name, backend):
        _check(name, backend, optimize=True)

"""Tests of the DSL frontend: staging semantics, partial evaluation,
indexing, granularity-oblivious ops, and error reporting."""

import numpy as np
import pytest

import repro as ft
from repro.errors import StagingError
from repro.ir import (For, If, ReduceTo, Store, VarDef, collect_stmts, dump)


def _loops(program):
    return collect_stmts(program.func.body, lambda s: isinstance(s, For))


class TestBasics:

    def test_simple_loop(self):
        @ft.transform
        def f(a: ft.Tensor[("n",), "f32", "input"]):
            y = ft.empty(a.shape(0), "f32")
            for i in range(a.shape(0)):
                y[i] = a[i] * 2.0
            return y

        assert f.func.params == ["a"]
        assert f.func.scalar_params == ["n"]
        assert f.func.returns == ["y"]
        assert len(_loops(f)) == 1

    def test_shared_symbolic_dims(self):
        @ft.transform
        def f(a: ft.Tensor[("n", "m"), "f32", "input"],
              b: ft.Tensor[("m", "n"), "f32", "input"]):
            y = ft.zeros((a.shape(0),), "f32")
            for i in range(a.shape(0)):
                y[i] = a[i, 0] + b[0, i]
            return y

        assert f.func.scalar_params == ["n", "m"]

    def test_output_param_annotation(self):
        @ft.transform
        def f(a: ft.Tensor[(4,), "f32", "input"],
              y: ft.Tensor[(4,), "f32", "output"]):
            for i in range(4):
                y[i] = a[i] + 1.0

        assert f.func.params == ["a", "y"]
        out = f(np.arange(4, dtype=np.float32))
        np.testing.assert_allclose(out, [1, 2, 3, 4])

    def test_inout_param(self):
        @ft.transform
        def f(a: ft.Tensor[(4,), "f32", "inout"]):
            for i in range(4):
                a[i] += 1.0

        out = f(np.zeros(4, np.float32))
        np.testing.assert_allclose(out, np.ones(4))

    def test_body_declaration_style(self):
        @ft.transform
        def f(a, y):
            a: ft.Tensor[("n",), "f32", "input"]
            y: ft.Tensor[("n",), "f32", "output"]
            for i in range(a.shape(0)):
                y[i] = a[i] + a[i]

        out = f(np.ones(3, np.float32))
        np.testing.assert_allclose(out, 2 * np.ones(3))

    def test_scalar_param_annotation(self):
        @ft.transform
        def f(a: ft.Tensor[("n",), "f32", "input"], k: ft.Size):
            y = ft.zeros((), "f32")
            for i in range(k):
                y[...] += a[i]
            return y

        out = f(np.arange(5, dtype=np.float32), k=3)
        assert float(out) == 3.0


class TestControlFlow:

    def test_symbolic_if_becomes_node(self):
        @ft.transform
        def f(a: ft.Tensor[("n",), "f32", "input"]):
            y = ft.zeros(a.shape(0), "f32")
            for i in range(a.shape(0)):
                if a[i] > 0.0:
                    y[i] = a[i]
            return y

        ifs = collect_stmts(f.func.body, lambda s: isinstance(s, If))
        assert len(ifs) == 1

    def test_concrete_if_partial_evaluated(self):
        flag = True

        @ft.transform
        def f(a: ft.Tensor[(4,), "f32", "input"]):
            y = ft.zeros(4, "f32")
            for i in range(4):
                if flag:
                    y[i] = a[i] + 1.0
                else:
                    y[i] = a[i] - 1.0
            return y

        ifs = collect_stmts(f.func.body, lambda s: isinstance(s, If))
        assert not ifs  # decided at compile time
        np.testing.assert_allclose(f(np.zeros(4, np.float32)), np.ones(4))

    def test_symbolic_if_else(self):
        @ft.transform
        def f(a: ft.Tensor[("n",), "f32", "input"]):
            y = ft.zeros(a.shape(0), "f32")
            for i in range(a.shape(0)):
                if a[i] > 0.0:
                    y[i] = a[i]
                else:
                    y[i] = -a[i]
            return y

        x = np.array([-1.0, 2.0, -3.0], np.float32)
        np.testing.assert_allclose(f(x), np.abs(x))

    def test_range_with_bounds_and_step(self):
        @ft.transform
        def f(a: ft.Tensor[(10,), "f32", "input"]):
            y = ft.zeros((), "f32")
            for i in range(2, 10, 3):
                y[...] += a[i]
            return y

        x = np.arange(10, dtype=np.float32)
        assert float(f(x)) == 2 + 5 + 8

    def test_negative_step(self):
        @ft.transform
        def f(a: ft.Tensor[(5,), "f32", "input"],
              y: ft.Tensor[(5,), "f32", "output"]):
            k = ft.zeros((), "i32")
            for i in range(4, -1, -1):
                y[i] = a[i] * 1.0

        np.testing.assert_allclose(
            f(np.arange(5, dtype=np.float32)), np.arange(5))

    def test_native_loop_over_python_iterable(self):
        @ft.transform
        def f(a: ft.Tensor[(4,), "f32", "input"]):
            y = ft.zeros(4, "f32")
            for mult in [1.0, 2.0]:  # static: unrolled at staging time
                for i in range(4):
                    y[i] += a[i] * mult
            return y

        x = np.ones(4, np.float32)
        np.testing.assert_allclose(f(x), 3 * x)

    def test_while_rejected(self):
        with pytest.raises(StagingError):
            @ft.transform
            def f(a: ft.Tensor[(4,), "f32", "input"]):
                while True:
                    pass

    def test_staged_assert(self):
        @ft.transform
        def f(a: ft.Tensor[("n",), "f32", "input"]):
            assert a.shape(0) > 0
            y = ft.zeros((), "f32")
            for i in range(a.shape(0)):
                y[...] += a[i]
            return y

        from repro.ir import Assert
        asserts = collect_stmts(f.func.body,
                                lambda s: isinstance(s, Assert))
        assert len(asserts) == 1


class TestPartialEvaluation:
    """Dimension-free programming with finite recursion (paper 3.3/4.1)."""

    def test_recursion_unrolls_to_loops(self):
        @ft.inline
        def add(A, B, C):
            if A.ndim == 0:
                C[...] = A + B
            else:
                for i in range(A.shape(0)):
                    add(A[i], B[i], C[i])

        @ft.transform
        def add3d(a: ft.Tensor[(2, 3, 4), "f32", "input"],
                  b: ft.Tensor[(2, 3, 4), "f32", "input"]):
            c = ft.empty((2, 3, 4), "f32")
            add(a, b, c)
            return c

        loops = _loops(add3d)
        assert len(loops) == 3  # fully unrolled recursion -> 3 nested loops
        x = np.random.default_rng(0).standard_normal((2, 3, 4)) \
            .astype(np.float32)
        np.testing.assert_allclose(add3d(x, x), 2 * x, rtol=1e-6)

    def test_recursion_with_symbolic_dims(self):
        @ft.inline
        def fill(A, v):
            if A.ndim == 0:
                A[...] = v
            else:
                for i in range(A.shape(0)):
                    fill(A[i], v)

        @ft.transform
        def f(a: ft.Tensor[("n", "m"), "f32", "output"]):
            fill(a, 7.0)

        out = f(n=2, m=3)
        np.testing.assert_allclose(out, np.full((2, 3), 7.0))

    def test_inline_outside_staging_rejected(self):
        @ft.inline
        def h(x):
            return x

        with pytest.raises(StagingError):
            h(1)


class TestIndexing:

    def test_views_and_slices(self):
        @ft.transform
        def f(a: ft.Tensor[(4, 6), "f32", "input"]):
            # b copies a[1, 2:5] (copy-by-value semantics, paper fig. 4)
            b = a[1, 2:5]
            y = ft.zeros((), "f32")
            for i in range(3):
                y[...] += b[i]
            return y

        x = np.arange(24, dtype=np.float32).reshape(4, 6)
        assert float(f(x)) == x[1, 2:5].sum()

    def test_negative_index(self):
        @ft.transform
        def f(a: ft.Tensor[(5,), "f32", "input"]):
            y = ft.zeros((), "f32")
            y[...] = a[-1] + a[-2]
            return y

        x = np.arange(5, dtype=np.float32)
        assert float(f(x)) == 7.0

    def test_too_many_indices(self):
        with pytest.raises(StagingError):
            @ft.transform
            def f(a: ft.Tensor[(5,), "f32", "input"]):
                y = ft.zeros((), "f32")
                y[...] = a[0, 1]
                return y

    def test_strided_slice_rejected(self):
        with pytest.raises(StagingError):
            @ft.transform
            def f(a: ft.Tensor[(6,), "f32", "input"]):
                b = a[::2]
                return b

    def test_shape_metadata(self):
        @ft.transform
        def f(a: ft.Tensor[(4, 6), "f32", "input"]):
            b = a[0]
            assert b.ndim == 1          # concrete metadata at staging time
            assert b.shape(0) == 6
            y = ft.zeros((), "f32")
            y[...] = b[0]
            return y

        assert f(np.ones((4, 6), np.float32)) == 1.0

    def test_return_view_copies(self):
        @ft.transform
        def f(a: ft.Tensor[(4, 6), "f32", "input"]):
            return a[2]

        x = np.arange(24, dtype=np.float32).reshape(4, 6)
        np.testing.assert_allclose(f(x), x[2])


class TestGranularityObliviousOps:
    """N-D tensor arithmetic emits fine-grained loops (paper 3.2)."""

    def test_tensor_addition(self):
        @ft.transform
        def f(a: ft.Tensor[(3, 4), "f32", "input"],
              b: ft.Tensor[(3, 4), "f32", "input"]):
            c = a + b
            return c

        x = np.ones((3, 4), np.float32)
        np.testing.assert_allclose(f(x, 2 * x), 3 * x)

    def test_subdiv_style_row_ops(self):
        @ft.transform
        def f(e: ft.Tensor[(5, 4), "f32", "input"],
              idx: ft.Tensor[(3,), "i32", "input"]):
            y = ft.zeros(4, "f32")
            for j in range(3):
                d = ft.abs(e[idx[j]] - e[idx[(j + 1) % 3]])
                y += d
            return y

        rng = np.random.default_rng(1)
        e = rng.standard_normal((5, 4)).astype(np.float32)
        idx = np.array([0, 2, 4], np.int32)
        ref = sum(np.abs(e[idx[j]] - e[idx[(j + 1) % 3]]) for j in range(3))
        np.testing.assert_allclose(f(e, idx), ref, rtol=1e-5)

    def test_scalar_broadcast(self):
        @ft.transform
        def f(a: ft.Tensor[(4,), "f32", "input"]):
            c = a * 3.0
            return c

        np.testing.assert_allclose(f(np.ones(4, np.float32)), 3 * np.ones(4))

    def test_mismatched_ndim_rejected(self):
        with pytest.raises(StagingError):
            @ft.transform
            def f(a: ft.Tensor[(3, 4), "f32", "input"],
                  b: ft.Tensor[(4,), "f32", "input"]):
                c = a + b
                return c


class TestAssignmentSemantics:

    def test_float_scalar_materialised(self):
        @ft.transform
        def f(a: ft.Tensor[("n",), "f32", "input"]):
            acc = 0.0  # becomes a 0-D tensor
            for i in range(a.shape(0)):
                acc = ft.max(acc, a[i])
            y = ft.zeros((), "f32")
            y[...] = acc
            return y

        x = np.array([1.0, 5.0, 3.0], np.float32)
        assert float(f(x)) == 5.0

    def test_int_assignment_stays_meta(self):
        @ft.transform
        def f(a: ft.Tensor[(8,), "f32", "input"]):
            half = 4  # compile-time constant
            y = ft.zeros((), "f32")
            for i in range(half):
                y[...] += a[i]
            return y

        # no VarDef for `half` in the IR
        names = {d.name for d in collect_stmts(
            f.func.body, lambda s: isinstance(s, VarDef))}
        assert "half" not in names
        assert float(f(np.ones(8, np.float32))) == 4.0

    def test_augassign_scalar(self):
        @ft.transform
        def f(a: ft.Tensor[(4,), "f32", "input"]):
            s = 0.0
            for i in range(4):
                s += a[i]
            y = ft.zeros((), "f32")
            y[...] = s
            return y

        assert float(f(np.ones(4, np.float32))) == 4.0

    def test_augassign_subscript_becomes_reduce(self):
        @ft.transform
        def f(a: ft.Tensor[(4,), "f32", "input"],
              y: ft.Tensor[(4,), "f32", "output"]):
            for i in range(4):
                y[i] += a[i]

        reduces = collect_stmts(f.func.body,
                                lambda s: isinstance(s, ReduceTo))
        assert len(reduces) == 1
        assert reduces[0].op == "+"

    def test_sub_augassign(self):
        @ft.transform
        def f(y: ft.Tensor[(4,), "f32", "inout"]):
            for i in range(4):
                y[i] -= 1.0

        np.testing.assert_allclose(f(np.zeros(4, np.float32)), -np.ones(4))

    def test_zeros_binding_avoids_copy(self):
        @ft.transform
        def f(a: ft.Tensor[(4,), "f32", "input"]):
            y = ft.zeros(4, "f32")
            for i in range(4):
                y[i] = a[i]
            return y

        stores = collect_stmts(f.func.body,
                               lambda s: isinstance(s, Store))
        # zeros-fill (1 after optimisation may remain) + copy loop; no
        # intermediate "tmp -> y" copy loop.
        defs = collect_stmts(f.func.body, lambda s: isinstance(s, VarDef))
        assert len(defs) == 2  # a and y only


class TestLabels:

    def test_label_on_loop(self):
        @ft.transform
        def f(a: ft.Tensor[(4,), "f32", "input"]):
            y = ft.zeros(4, "f32")
            ft.label("main_loop")
            for i in range(4):
                y[i] = a[i]
            return y

        from repro.ir import find_stmt
        loop = find_stmt(f.func.body, "main_loop")
        assert isinstance(loop, For)


class TestRuntimeBinding:

    def test_wrong_arity(self):
        @ft.transform
        def f(a: ft.Tensor[(4,), "f32", "input"]):
            return a[0:2]

        from repro.errors import InvalidProgram
        with pytest.raises(InvalidProgram):
            f(np.ones(4, np.float32), np.ones(4, np.float32))

    def test_shape_conflict(self):
        @ft.transform
        def f(a: ft.Tensor[("n",), "f32", "input"],
              b: ft.Tensor[("n",), "f32", "input"]):
            c = a + b
            return c

        from repro.errors import InvalidProgram
        with pytest.raises(InvalidProgram):
            f(np.ones(4, np.float32), np.ones(5, np.float32))

    def test_uninferable_scalar_requires_kwarg(self):
        @ft.transform
        def f(a: ft.Tensor[(8,), "f32", "input"], w: ft.Size):
            y = ft.zeros((), "f32")
            for i in range(w):
                y[...] += a[i]
            return y

        from repro.errors import InvalidProgram
        with pytest.raises(InvalidProgram):
            f(np.ones(8, np.float32))
        assert float(f(np.ones(8, np.float32), w=2)) == 2.0

    def test_dtype_coercion(self):
        @ft.transform
        def f(a: ft.Tensor[(3,), "f32", "input"]):
            c = a * 2.0
            return c

        out = f(np.arange(3))  # int64 input is cast to f32
        assert out.dtype == np.float32

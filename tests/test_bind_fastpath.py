"""Tests for the memoized ``Executable._bind`` fast path and the
``Executable.__call__`` concurrency contract (PR 10 satellites).

The binding plan — parameter dtypes, inferred symbolic-shape scalars,
output allocation specs — is a pure function of the argument shape
signature, so repeat calls with same-shaped arrays skip unification and
validation entirely. These tests pin the counters, the correctness of
the fast path, and that error behaviour is unchanged.
"""

import threading

import numpy as np
import pytest

import repro as ft
from repro.runtime import build
from repro.runtime.driver import (bind_cache_stats,
                                  reset_bind_cache_stats)


def make_program():
    @ft.transform
    def scale(x: ft.Tensor[("n", "m"), "f32", "input"]):
        y = ft.zeros((x.shape(0), x.shape(1)), "f32")
        for i in range(x.shape(0)):
            for j in range(x.shape(1)):
                y[i, j] = x[i, j] * 2.0 + 1.0
        return y

    return scale


@pytest.fixture(autouse=True)
def _fresh_counters():
    reset_bind_cache_stats()
    yield
    reset_bind_cache_stats()


def test_plan_hit_after_first_call_and_correct_results():
    exe = build(make_program(), backend="pycode")
    x = np.random.default_rng(0).standard_normal((5, 4)) \
        .astype(np.float32)
    first = exe(x)
    assert bind_cache_stats()["plan_misses"] == 1
    assert bind_cache_stats()["plan_hits"] == 0
    second = exe(x + 1.0)
    st = bind_cache_stats()
    assert st["plan_hits"] == 1 and st["plan_misses"] == 1
    np.testing.assert_allclose(first, x * 2.0 + 1.0, rtol=1e-6)
    np.testing.assert_allclose(second, (x + 1.0) * 2.0 + 1.0, rtol=1e-6)


def test_new_shape_takes_the_slow_path_once():
    exe = build(make_program(), backend="pycode")
    exe(np.ones((3, 2), np.float32))
    exe(np.ones((4, 6), np.float32))   # different signature: miss
    exe(np.ones((4, 6), np.float32))   # now memoized: hit
    st = bind_cache_stats()
    assert st["plan_misses"] == 2
    assert st["plan_hits"] == 1


def test_dtype_cast_on_the_fast_path():
    exe = build(make_program(), backend="pycode")
    x64 = np.ones((3, 3), np.float64)
    exe(x64)
    out = exe(x64 * 2)  # fast path must still cast f64 -> f32
    assert bind_cache_stats()["plan_hits"] == 1
    np.testing.assert_allclose(out, np.full((3, 3), 5.0, np.float32))


def test_binding_errors_unchanged_by_memo():
    exe = build(make_program(), backend="pycode")
    exe(np.ones((3, 2), np.float32))
    with pytest.raises(Exception):
        exe(np.ones((3, 2), np.float32), np.ones(3, np.float32))
    with pytest.raises(Exception):
        exe(np.ones(7, np.float32))  # rank mismatch
    # the failed signatures must not have poisoned the memo
    np.testing.assert_allclose(exe(np.ones((3, 2), np.float32)),
                               np.full((3, 2), 3.0, np.float32))


def test_compile_cache_stats_exposes_bind_counters():
    exe = build(make_program(), backend="pycode")
    exe(np.ones((2, 2), np.float32))
    exe(np.ones((2, 2), np.float32))
    stats = ft.compile_cache_stats()
    assert stats["bind"]["plan_hits"] >= 1
    assert stats["bind"]["plan_misses"] >= 1


@pytest.mark.parametrize("backend", ["pycode", "c"])
def test_concurrent_calls_are_thread_safe(backend):
    """The documented contract: concurrent ``__call__`` on one
    Executable from many threads, mixed shapes, correct results."""
    exe = build(make_program(), backend=backend)
    rng = np.random.default_rng(1)
    inputs = [rng.standard_normal((3 + i % 3, 4)).astype(np.float32)
              for i in range(24)]
    results = [None] * len(inputs)
    errors = []

    def worker(tid):
        try:
            for i in range(tid, len(inputs), 4):
                results[i] = exe(inputs[i])
        except Exception as e:  # noqa: BLE001 - fail the test below
            errors.append(e)

    threads = [threading.Thread(target=worker, args=(t,))
               for t in range(4)]
    for th in threads:
        th.start()
    for th in threads:
        th.join()
    assert not errors
    for x, out in zip(inputs, results):
        np.testing.assert_allclose(out, x * 2.0 + 1.0, rtol=1e-5)

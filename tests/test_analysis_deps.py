"""Dependence analysis tests mirroring the paper's Figures 11-13."""

import pytest

import repro as ft
from repro.analysis import DirItem, analyze
from repro.ir import For, collect_stmts


def loops_of(p):
    return collect_stmts(p.func.body, lambda s: isinstance(s, For))


@pytest.fixture(scope="module")
def progs():
    out = {}

    @ft.transform
    def elementwise(b: ft.Tensor[("n", "m"), "f32", "input"],
                    a: ft.Tensor[("n", "m"), "f32", "output"]):
        for i in range(a.shape(0)):
            for j in range(a.shape(1)):
                a[i, j] = b[i, j] + 1.0

    out["elementwise"] = elementwise

    @ft.transform
    def serial_scalar(b: ft.Tensor[("n", "m"), "f32", "input"],
                      a: ft.Tensor[(), "f32", "inout"]):
        for i in range(b.shape(0)):
            for j in range(b.shape(1)):
                a[...] = a * b[i, j] + 1.0

    out["serial_scalar"] = serial_scalar

    @ft.transform
    def reduction(b: ft.Tensor[("n", "m"), "f32", "input"],
                  a: ft.Tensor[(), "f32", "inout"]):
        for i in range(b.shape(0)):
            for j in range(b.shape(1)):
                a[...] += b[i, j]

    out["reduction"] = reduction

    @ft.transform
    def scoped_temp(a: ft.Tensor[("n", "m", "k"), "f32", "input"],
                    b: ft.Tensor[("n", "m", "k"), "f32", "output"]):
        for i in range(a.shape(0)):
            for j in range(a.shape(1)):
                t = ft.empty((a.shape(2),), "f32")
                for k in range(a.shape(2)):
                    t[k] = a[i, j, k]
                    b[i, j, k] = t[k]

    out["scoped_temp"] = scoped_temp

    @ft.transform
    def stencil(x: ft.Tensor[("n", "m"), "f32", "inout"]):
        for i in range(1, x.shape(0) - 1):
            for j in range(1, x.shape(1) - 1):
                x[i + 1, j] = x[i - 1, j + 1] * 2.0 + x[i - 1, j - 1]

    out["stencil"] = stencil

    @ft.transform
    def indirect(idx: ft.Tensor[("n",), "i32", "input"],
                 b: ft.Tensor[("n",), "f32", "input"],
                 a: ft.Tensor[("m",), "f32", "inout"]):
        for i in range(idx.shape(0)):
            a[idx[i]] += b[i]

    out["indirect"] = indirect
    return out


class TestFigure12:
    """Reorder-relevant dependences."""

    def test_a_no_carried_dep(self, progs):
        p = progs["elementwise"]
        li, lj = loops_of(p)
        d = analyze(p.func)
        assert not d.has_dep(direction=[DirItem.same_loop(li.sid, "!=")])
        assert not d.has_dep(direction=[DirItem.same_loop(lj.sid, "!=")])

    def test_b_serial_scalar_carried(self, progs):
        p = progs["serial_scalar"]
        li, lj = loops_of(p)
        d = analyze(p.func)
        assert d.has_dep(direction=[DirItem.same_loop(li.sid, "!=")])
        assert d.has_dep(direction=[DirItem.same_loop(li.sid, "="),
                                    DirItem.same_loop(lj.sid, "!=")])

    def test_c_reduction_waw_ignored(self, progs):
        p = progs["reduction"]
        li, _ = loops_of(p)
        d = analyze(p.func)
        assert not d.has_dep(direction=[DirItem.same_loop(li.sid, "!=")])
        # but visible when reduction commutativity is not exploited
        assert d.has_dep(direction=[DirItem.same_loop(li.sid, "!=")],
                         ignore_reduce_pairs=False)

    def test_d_stack_scope_projection(self, progs):
        p = progs["scoped_temp"]
        li, lj, lk = loops_of(p)
        d = analyze(p.func)
        # the temp is private per (i, j): no carried dependence on it
        assert not d.has_dep(tensors=["t"],
                             direction=[DirItem.same_loop(li.sid, "!=")])
        assert not d.has_dep(tensors=["t"],
                             direction=[DirItem.same_loop(lj.sid, "!=")])


class TestFigure11Stencil:

    def test_directions(self, progs):
        p = progs["stencil"]
        li, lj = loops_of(p)
        d = analyze(p.func)
        # writes x[i+1], reads x[i-1, j±1]: dependence carried forward on i
        assert d.has_dep(direction=[DirItem.same_loop(li.sid, ">")])
        assert not d.has_dep(direction=[DirItem.same_loop(li.sid, "<")])
        # no loop-independent dependence at equal i
        assert not d.has_dep(direction=[DirItem.same_loop(li.sid, "=")])

    def test_distance_two(self, progs):
        p = progs["stencil"]
        li, lj = loops_of(p)
        d = analyze(p.func)
        # dep distance on i is exactly 2: with i equal or adjacent -> none;
        # asking for strictly-greater finds the distance-2 instance
        assert d.has_dep(direction=[DirItem.same_loop(li.sid, ">"),
                                    DirItem.same_loop(lj.sid, "<")])


class TestIndirectAccess:
    """Fig. 13(e): data-dependent indices are conservative may-alias."""

    def test_conservative_carried(self, progs):
        p = progs["indirect"]
        (li,) = loops_of(p)
        d = analyze(p.func)
        # a[idx[i]] reductions: same-op pairs ignored by default...
        assert not d.has_dep(tensors=["a"],
                             direction=[DirItem.same_loop(li.sid, "!=")])
        # ...but conservatively present as raw updates
        assert d.has_dep(tensors=["a"],
                         direction=[DirItem.same_loop(li.sid, "!=")],
                         ignore_reduce_pairs=False)


class TestFilters:

    def test_tensor_filter(self, progs):
        p = progs["stencil"]
        d = analyze(p.func)
        assert not d.find(tensors=["nonexistent"])

    def test_subtree_filter(self, progs):
        p = progs["serial_scalar"]
        li, lj = loops_of(p)
        d = analyze(p.func)
        deps = d.find(direction=[DirItem.same_loop(li.sid, "!=")],
                      either_in=lj.sid)
        assert deps
        assert all(dd.kind in ("RAW", "WAR", "WAW") for dd in deps)

    def test_kinds_present(self, progs):
        p = progs["serial_scalar"]
        li, _ = loops_of(p)
        d = analyze(p.func)
        kinds = {dd.kind
                 for dd in d.find(direction=[DirItem.same_loop(li.sid, ">")])}
        assert "RAW" in kinds  # read of a after write of a
        assert "WAW" in kinds


class TestNoDepsAnnotation:

    def test_user_assertion_silences(self):
        @ft.transform
        def f(idx: ft.Tensor[("n",), "i32", "input"],
              a: ft.Tensor[("m",), "f32", "inout"]):
            for i in range(idx.shape(0)):
                a[idx[i]] = 1.0

        (li,) = loops_of(f)
        d = analyze(f.func)
        assert d.has_dep(tensors=["a"],
                         direction=[DirItem.same_loop(li.sid, "!=")])
        li.property.no_deps = ("a",)
        d2 = analyze(f.func)
        assert not d2.has_dep(tensors=["a"],
                              direction=[DirItem.same_loop(li.sid, "!=")])


class TestBounds:

    def test_tightest_bounds_paper_example(self):
        """Fig. 14: i + j with j in [0, m) bounds to [i, i+m-1]."""
        from repro.analysis import BoundsCtx, tightest_bounds
        from repro.ir import Var, dump

        ctx = BoundsCtx().with_loop("j", 0, Var("m"))
        lo, up = tightest_bounds(Var("i") + Var("j"), ctx,
                                 allowed_vars={"i", "m"})
        assert dump(lo) == "i"
        assert "i" in dump(up) and "m" in dump(up)

    def test_mod_bounds(self):
        from repro.analysis import BoundsCtx, const_bounds
        from repro.ir import Var

        ctx = BoundsCtx().with_loop("j", 0, 100)
        lo, up = const_bounds((Var("j") + 1) % 3, ctx)
        assert lo == 0 and up == 2

    def test_const_range(self):
        from repro.analysis import BoundsCtx, const_bounds
        from repro.ir import Var

        ctx = BoundsCtx().with_loop("i", 2, 10)
        lo, up = const_bounds(Var("i") * 2 + 1, ctx)
        assert lo == 5 and up == 19

"""Unit tests for AD internals: activity analysis, derivative rules,
slice extraction and the materialization cost model."""

import numpy as np
import pytest

import repro as ft
from repro.ad.activity import active_tensors
from repro.ad.derivatives import grad_contributions, value_dependencies
from repro.ad.tape_select import choose_materialization, slice_writes
from repro.ir import (DataType, FloatConst, For, Load, ReduceTo, Store,
                      Var, dump, makeIntrinsic, seq, wrap)


class TestActivity:

    def _func(self):
        @ft.transform
        def f(a: ft.Tensor[(4,), "f32", "input"],
              b: ft.Tensor[(4,), "f32", "input"],
              c: ft.Tensor[(4,), "i32", "input"]):
            t = ft.empty((4,), "f32")
            u = ft.empty((4,), "f32")
            for i in range(4):
                t[i] = a[i] * 2.0       # on the a->y path
                u[i] = b[i] * 3.0       # dead end
            y = ft.empty((4,), "f32")
            for i in range(4):
                y[i] = t[i] + 1.0
            return y

        return f.func

    def test_path_detection(self):
        func = self._func()
        act = active_tensors(func, ["a"], ["y"])
        assert {"a", "t", "y"} <= act
        assert "u" not in act  # influenced by b, not on the output path
        assert "b" not in act

    def test_int_tensors_inactive(self):
        func = self._func()
        act = active_tensors(func, ["a", "b", "c"], ["y"])
        assert "c" not in act  # integer data carries no gradient


class TestDerivativeRules:

    def _load(self, name="x"):
        return Load(name, [], DataType.FLOAT32)

    def test_product_rule(self):
        x, y = self._load("x"), self._load("y")
        contribs = dict()
        for load, c in grad_contributions(x * y, FloatConst(1.0)):
            contribs[load.var] = dump(c)
        assert contribs["x"] == "y"
        assert contribs["y"] == "x"

    def test_chain_through_intrinsic(self):
        x = self._load("x")
        (load, c), = grad_contributions(makeIntrinsic("exp", [x]),
                                        FloatConst(1.0))
        assert "exp(x)" in dump(c)

    def test_repeated_operand_sums(self):
        x = self._load("x")
        contribs = grad_contributions(x * x, FloatConst(1.0))
        assert len(contribs) == 2  # one per occurrence; ReduceTo sums

    def test_integer_subtrees_skipped(self):
        i = Var("i")
        x = self._load("x")
        e = x * ft.exp(wrap(0.0)) + (i + 1) * 0  # int part contributes 0
        contribs = grad_contributions(e, FloatConst(1.0))
        assert all(l.var == "x" for l, _ in contribs)

    def test_value_dependencies(self):
        x, y = self._load("x"), self._load("y")
        deps = value_dependencies(x * y)
        assert deps == {"x", "y"}
        deps_lin = value_dependencies(x + y)
        assert deps_lin == set()  # linear: no forward values needed

    def test_min_max_subgradient(self):
        from repro.ir import makeMax

        x, y = self._load("x"), self._load("y")
        contribs = grad_contributions(makeMax(x, y), FloatConst(1.0))
        texts = [dump(c) for _l, c in contribs]
        assert any("?" in t for t in texts)  # routed by a select


class TestSliceWrites:

    def test_keeps_only_target_writes(self):
        body = seq([
            Store("t", [Var("i")], Load("a", [Var("i")],
                                        DataType.FLOAT32)),
            Store("u", [Var("i")], FloatConst(1.0)),
        ])
        loop = For("i", 0, 4, body)
        sl, reads = slice_writes(loop, "t")
        assert "a" in reads and "u" not in reads
        text = dump(sl)
        assert "t[" in text and "u[" not in text

    def test_slices_through_nested_scopes(self):
        from repro.ir import VarDef

        inner = seq([
            Store("s", [], FloatConst(0.0)),
            Store("t", [Var("i")], Load("a", [Var("i")],
                                        DataType.FLOAT32)),
        ])
        scoped = VarDef("s", [], "f32", "cache", "cpu", inner)
        loop = For("i", 0, 4, scoped)
        sl, reads = slice_writes(loop, "t")
        assert "s" not in dump(sl)  # sliced through the VarDef


class TestCostModel:

    def test_reduction_loop_forces_tape(self):
        body = For("j", 0, 8,
                   ReduceTo("t", [], "+",
                            Load("a", [Var("j")], DataType.FLOAT32)))
        mat = choose_materialization(
            None, ["t"], {"t": body}, available={"a"},
            policy="selective")
        assert "t" in mat.tape

    def test_cheap_store_recomputed(self):
        body = Store("t", [], Load("a", [], DataType.FLOAT32) * 2.0)
        mat = choose_materialization(
            None, ["t"], {"t": body}, available={"a"},
            policy="selective")
        assert "t" in mat.recompute

    def test_unavailable_read_forces_tape(self):
        body = Store("t", [], Load("hidden", [], DataType.FLOAT32))
        mat = choose_materialization(
            None, ["t"], {"t": body}, available={"a"},
            policy="selective")
        assert "t" in mat.tape

    def test_chained_recompute_requires_enclosure(self):
        b1 = Store("t", [], Load("a", [], DataType.FLOAT32) * 2.0)
        b2 = Store("u", [], Load("t", [], DataType.FLOAT32) + 1.0)
        # u's slice reads t; allowed only when t's scope encloses u
        mat = choose_materialization(
            None, ["t", "u"], {"t": b1, "u": b2}, available={"a"},
            policy="selective", enclosing={"u": {"t"}, "t": set()})
        assert {"t", "u"} <= mat.recompute
        mat2 = choose_materialization(
            None, ["t", "u"], {"t": b1, "u": b2}, available={"a"},
            policy="selective", enclosing={"u": set(), "t": set()})
        assert "u" in mat2.tape

    def test_explicit_list(self):
        b1 = Store("t", [], Load("a", [], DataType.FLOAT32) * 2.0)
        mat = choose_materialization(
            None, ["t"], {"t": b1}, available={"a"}, policy=["t"])
        assert "t" in mat.tape

    def test_bad_policy(self):
        from repro.errors import ADError

        with pytest.raises(ADError):
            choose_materialization(None, [], {}, set(), "turbo")

"""Integration: AD output is ordinary IR — it schedules, runs on every
backend (including the simulated GPU), and composes with the pipeline."""

import numpy as np
import pytest

import repro as ft
from repro.ad import GradExecutable, grad
from repro.autosched import CPU, GPU, auto_schedule
from repro.runtime import build
from repro.schedule import Schedule
from repro.workloads import longformer, subdivnet


class TestScheduledBackward:

    def test_autoscheduled_bwd_matches_plain(self, rng):
        data = subdivnet.make_data(n_faces=16, in_feats=4, out_feats=4)
        gp = grad(subdivnet.make_program(), requires=["e", "w"])

        plain = GradExecutable(gp, backend="pycode")
        plain(data["adj"], data["e"], data["w"])
        ge0, gw0 = plain.backward()

        opt = GradExecutable(gp, backend="pycode", optimize=True,
                             target=CPU)
        opt(data["adj"], data["e"], data["w"])
        ge1, gw1 = opt.backward()
        np.testing.assert_allclose(ge1, ge0, rtol=1e-4, atol=1e-5)
        np.testing.assert_allclose(gw1, gw0, rtol=1e-4, atol=1e-5)

    def test_bwd_on_simulated_gpu(self, rng):
        data = longformer.make_data(seq_len=20, feat_len=4, w=2)
        gp = grad(longformer.make_program(), requires=["q"])
        bwd_gpu = auto_schedule(gp.bwd, target=GPU)
        # run fwd normally to obtain tapes, then bwd on the simulator
        fwd = build(gp.fwd)
        outs = fwd(data["q"], data["k"], data["v"], w=data["w"])
        named = dict(zip(fwd.returns, outs))
        exe = build(bwd_gpu, backend="gpusim")
        args = []
        for p in exe.data_params:
            if p in named:
                args.append(named[p])
            elif p in ("q", "k", "v"):
                args.append(data[p])
            else:  # the output gradient
                args.append(np.ones_like(data["q"]))
        gq = exe(*args, w=data["w"])
        ref = longformer.grad_reference(
            data, np.ones_like(data["q"]))["q"]
        np.testing.assert_allclose(gq, ref, rtol=1e-3, atol=1e-3)

    def test_manual_schedule_of_bwd(self, rng):
        @ft.transform
        def f(a: ft.Tensor[("n",), "f32", "input"]):
            y = ft.empty(("n",), "f32")
            for i in range(a.shape(0)):
                y[i] = a[i] * a[i] * 3.0
            return y

        gp = grad(f)
        s = Schedule(gp.bwd)
        loops = [l for l in s.loops() if l.iter_var.startswith("i")]
        s.parallelize(loops[0].sid, "openmp")
        exe_fwd = build(gp.fwd)
        x = rng.standard_normal(10).astype(np.float32)
        _ = exe_fwd(x)
        exe_bwd = build(s.func, backend="c")
        g = exe_bwd(x, np.ones(10, np.float32))
        np.testing.assert_allclose(g, 6 * x, rtol=1e-5)


class TestGradPolicies:

    def test_none_policy_recomputes_everything_possible(self, rng):
        @ft.transform
        def f(a: ft.Tensor[("n",), "f32", "input"]):
            y = ft.empty(("n",), "f32")
            for i in range(a.shape(0)):
                t = a[i] * a[i]
                u = t  # not used for grads...
                y[i] = ft.exp(a[i]) * 2.0
            return y

        gp = grad(f, tapes="none")
        assert not gp.tape_names
        exe = GradExecutable(gp)
        x = rng.standard_normal(5).astype(np.float32)
        exe(x)
        g = exe.backward()
        np.testing.assert_allclose(g, 2 * np.exp(x), rtol=1e-4)

    def test_grad_through_if_else(self, rng):
        @ft.transform
        def f(a: ft.Tensor[("n",), "f32", "input"],
              b: ft.Tensor[("n",), "f32", "input"]):
            y = ft.empty(("n",), "f32")
            for i in range(a.shape(0)):
                if a[i] > 0.0:
                    y[i] = a[i] * b[i]
                else:
                    y[i] = a[i] + b[i]
            return y

        gp = grad(f)
        exe = GradExecutable(gp)
        a = rng.standard_normal(8).astype(np.float32)
        b = rng.standard_normal(8).astype(np.float32)
        exe(a, b)
        ga, gb = exe.backward()
        np.testing.assert_allclose(ga, np.where(a > 0, b, 1.0),
                                   rtol=1e-4, atol=1e-6)
        np.testing.assert_allclose(gb, np.where(a > 0, a, 1.0),
                                   rtol=1e-4, atol=1e-6)

    def test_grad_of_parsed_program(self, rng):
        """parse -> grad -> run: text IR is a first-class citizen."""
        from repro.ir.parser import parse_program

        text = (
            "func sq(x, n) -> y {\n"
            "  @input x: f32[n] @cpu {\n"
            "    @output y: f32[n] @cpu {\n"
            "      for i in 0:n {\n"
            "        y[i] = x[i] * x[i]\n"
            "      }\n"
            "    }\n"
            "  }\n"
            "}\n")
        gp = grad(parse_program(text), requires=["x"])
        exe = GradExecutable(gp)
        x = rng.standard_normal(6).astype(np.float32)
        exe(x)
        np.testing.assert_allclose(exe.backward(), 2 * x, rtol=1e-5)


class TestFissionAcrossScopes:

    def test_legal_fission_with_vardef(self, rng):
        """Fissioning across a duplicated (dead-on-one-side) VarDef."""
        @ft.transform
        def f(a: ft.Tensor[("n",), "f32", "input"],
              y: ft.Tensor[("n",), "f32", "output"],
              z: ft.Tensor[("n",), "f32", "output"]):
            ft.label("L")
            for i in range(a.shape(0)):
                t = a[i] * 2.0
                ft.label("S1")
                y[i] = t + 1.0
                z[i] = a[i] - 1.0  # does not read t

        s = Schedule(f)
        front, back = s.fission("L", after="S1")
        x = rng.standard_normal(6).astype(np.float32)
        yy, zz = build(s.func)(x)
        np.testing.assert_allclose(yy, 2 * x + 1, rtol=1e-6)
        np.testing.assert_allclose(zz, x - 1, rtol=1e-6)

"""Additional frontend coverage: capture, compile-time defaults, native
Python fallbacks, scope-escape diagnostics, and driver conveniences."""

import numpy as np
import pytest

import repro as ft
from repro.errors import StagingError
from repro.runtime import build


class TestCapture:

    def test_constant_tensor_embedded(self, rng):
        table = rng.standard_normal((4, 3)).astype(np.float32)

        @ft.transform
        def f(idx: ft.Tensor[("n",), "i32", "input"]):
            const = ft.capture(table)
            y = ft.zeros((idx.shape(0), 3), "f32")
            for i in range(idx.shape(0)):
                for k in range(3):
                    y[i, k] = const[idx[i], k] * 2.0
            return y

        idx = np.array([2, 0, 3], np.int32)
        np.testing.assert_allclose(f(idx), table[idx] * 2, rtol=1e-6)

    def test_capture_in_c_backend(self, rng):
        table = np.arange(6, dtype=np.float32)

        @ft.transform
        def f(y: ft.Tensor[(6,), "f32", "output"]):
            const = ft.capture(table)
            for i in range(6):
                y[i] = const[i] + 1.0

        np.testing.assert_allclose(build(f, backend="c")(), table + 1)

    def test_capture_int_dtype(self):
        lut = np.array([3, 1, 2, 0], np.int32)

        @ft.transform
        def f(x: ft.Tensor[(4,), "f32", "input"]):
            perm = ft.capture(lut)
            y = ft.empty((4,), "f32")
            for i in range(4):
                y[i] = x[perm[i]]
            return y

        x = np.arange(4, dtype=np.float32)
        np.testing.assert_allclose(f(x), x[lut])


class TestCompileTimeValues:

    def test_default_args_are_constants(self):
        @ft.transform
        def f(x: ft.Tensor[(8,), "f32", "input"], scale=3.0, start=2):
            y = ft.zeros((8,), "f32")
            for i in range(start, 8):
                y[i] = x[i] * scale
            return y

        x = np.ones(8, np.float32)
        out = f(x)
        assert np.all(out[:2] == 0) and np.all(out[2:] == 3)

    def test_closure_constants(self):
        width = 3

        @ft.transform
        def f(x: ft.Tensor[(8,), "f32", "input"]):
            y = ft.zeros((), "f32")
            for i in range(width):
                y[...] += x[i]
            return y

        assert float(f(np.ones(8, np.float32))) == 3.0

    def test_tuple_unpack_native(self):
        @ft.transform
        def f(x: ft.Tensor[(6,), "f32", "input"]):
            lo, hi = 1, 4  # plain Python tuple unpacking
            y = ft.zeros((), "f32")
            for i in range(lo, hi):
                y[...] += x[i]
            return y

        assert float(f(np.ones(6, np.float32))) == 3.0

    def test_enumerate_native(self):
        @ft.transform
        def f(x: ft.Tensor[(4,), "f32", "input"]):
            y = ft.zeros((4,), "f32")
            for pos, mult in enumerate([1.0, 2.0]):
                for i in range(4):
                    y[i] += x[i] * mult + pos
            return y

        x = np.ones(4, np.float32)
        np.testing.assert_allclose(f(x), (1 + 0) + (2 + 1) * x)

    def test_python_list_augassign_untouched(self):
        @ft.transform
        def f(x: ft.Tensor[(4,), "f32", "input"]):
            weights = [1.0, 1.0]
            weights[0] += 1.0  # plain Python, not a tensor update
            y = ft.zeros((), "f32")
            for i in range(4):
                y[...] += x[i] * weights[0]
            return y

        assert float(f(np.ones(4, np.float32))) == 8.0


class TestDiagnostics:

    def test_scope_escape_augassign_rejected(self):
        with pytest.raises(StagingError):
            @ft.transform
            def f(x: ft.Tensor[("n",), "f32", "input"]):
                y = ft.zeros((), "f32")
                for i in range(x.shape(0)):
                    t = x[i] * 1.0  # scoped to this iteration
                for i in range(x.shape(0)):
                    t += x[i]  # out of scope
                return y

    def test_scope_escape_rebind_creates_fresh(self, rng):
        """Re-using a loop-local name later silently defines a new
        tensor (the GAT pattern)."""
        @ft.transform
        def f(x: ft.Tensor[(4,), "f32", "input"]):
            y = ft.zeros((4,), "f32")
            for i in range(4):
                t = x[i] * 2.0
                y[i] = t
            z = ft.zeros((4,), "f32")
            for i in range(4):
                t = x[i] * 3.0  # fresh tensor, not the old t
                z[i] = t
            return y, z

        x = rng.standard_normal(4).astype(np.float32)
        y, z = f(x)
        np.testing.assert_allclose(y, 2 * x, rtol=1e-6)
        np.testing.assert_allclose(z, 3 * x, rtol=1e-6)

    def test_return_in_branch_rejected(self):
        with pytest.raises(StagingError):
            @ft.transform
            def f(x: ft.Tensor[("n",), "f32", "input"]):
                y = ft.zeros((4,), "f32")
                for i in range(4):
                    if x[i] > 0.0:
                        return y
                return y

    def test_symbolic_bool_in_host_code(self):
        with pytest.raises((StagingError, TypeError)):
            @ft.transform
            def f(x: ft.Tensor[(4,), "f32", "input"]):
                y = ft.zeros((), "f32")
                while x[0] > 0.0:  # host while on symbolic condition
                    y[...] += 1.0
                return y

    def test_bad_annotation_message(self):
        with pytest.raises(StagingError):
            @ft.transform
            def f(x):
                x: "ft.Tensor[(4,)]"  # malformed annotation
                return x


class TestDriverConveniences:

    def test_source_property(self):
        @ft.transform
        def f(y: ft.Tensor[(2,), "f32", "output"]):
            for i in range(2):
                y[i] = 1.0

        assert "def kernel" in build(f, backend="pycode").source
        assert "void kernel" in build(f, backend="c").source
        assert build(f, backend="interp").source is None

    def test_unknown_backend(self):
        from repro.errors import BackendError

        @ft.transform
        def f(y: ft.Tensor[(2,), "f32", "output"]):
            for i in range(2):
                y[i] = 1.0

        with pytest.raises(BackendError):
            build(f, backend="tpu")

    def test_unknown_scalar_kwarg(self):
        @ft.transform
        def f(x: ft.Tensor[("n",), "f32", "input"]):
            y = ft.zeros(("n",), "f32")
            for i in range(x.shape(0)):
                y[i] = x[i]
            return y

        from repro.errors import InvalidProgram

        with pytest.raises(InvalidProgram):
            build(f)(np.ones(3, np.float32), bogus=7)

    def test_lazy_schedule_attr(self):
        assert ft.Schedule.__name__ == "Schedule"

    def test_program_repr(self):
        @ft.transform
        def f(y: ft.Tensor[(2,), "f32", "output"]):
            for i in range(2):
                y[i] = 1.0

        assert "Program" in repr(f) and "func f" in repr(f)

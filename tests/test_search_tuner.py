"""Tests for the structured schedule searcher and its measurement pool
(``repro.autosched.search``): knob-space extraction, trace replay,
determinism across worker counts, crash/hang isolation, and the
satellite guarantees (inputs cached once per session, winner traces
recorded everywhere)."""

import os
import random

import numpy as np
import pytest

import repro as ft
from repro.analysis.cost import frontier_order, pareto_front
from repro.autosched import (EvolutionaryTuner, RandomTuner,
                             StructuredTuner)
from repro.autosched.search.space import ScheduleSpace
from repro.autosched.search.trace import ScheduleTrace
from repro.ir.hashing import struct_hash
from repro.runtime import metrics
from repro.schedule import Schedule


def _mm_program(n=8, m=6, k=5):
    @ft.transform
    def mm(a: ft.Tensor[(n, k), "f32", "input"],
           b: ft.Tensor[(k, m), "f32", "input"],
           c: ft.Tensor[(n, m), "f32", "output"]):
        for i in range(n):
            for j in range(m):
                c[i, j] = 0.
                for p in range(k):
                    c[i, j] += a[i, p] * b[p, j]

    return mm


def _mm_inputs(n=8, m=6, k=5):
    rng = np.random.default_rng(0)
    return (rng.standard_normal((n, k), dtype=np.float32),
            rng.standard_normal((k, m), dtype=np.float32))


def _gat():
    from repro.workloads import gat

    data = gat.make_data(n_nodes=24, avg_degree=3, feats=4, out_feats=4)
    args = (data["indptr"], data["indices"], data["h"], data["wmat"],
            data["att_s"], data["att_d"])
    return gat.make_program(), args


# ---------------------------------------------------------------------------
# the knob space
# ---------------------------------------------------------------------------


class TestScheduleSpace:

    def test_extract_typed_knobs(self):
        base = Schedule(_mm_program()).func
        space = ScheduleSpace.extract(base, backend="pycode")
        kinds = {k.kind for k in space.knobs}
        assert kinds == {"order", "tile", "ann"}
        # every knob's first choice is the identity
        a0 = space.default_assignment()
        func, trace = space.realize(a0)
        assert struct_hash(func) == struct_hash(base)
        assert len(trace) == 0

    def test_order_knob_only_legal_perms(self):
        # c[i,j] += ... has a reduction loop p: permutations among
        # (i, j, p) are all legal here, but every offered choice must
        # replay without raising
        base = Schedule(_mm_program()).func
        space = ScheduleSpace.extract(base, backend="pycode")
        for knob in space.knobs:
            if knob.kind != "order":
                continue
            for perm in knob.choices:
                a = space.default_assignment()
                a[knob.name] = perm
                space.realize(a)  # must not raise

    def test_tile_factors_respect_trip(self):
        base = Schedule(_mm_program(n=8)).func
        space = ScheduleSpace.extract(base, backend="pycode")
        for knob in space.knobs:
            if knob.kind != "tile":
                continue
            for chain in knob.choices:
                for f in chain:
                    assert f < 64  # no factor above any trip here

    def test_every_chain_ann_pair_replays_faithfully(self):
        # every (tile chain, annotation) combination must replay to
        # the exact func realize() returned — regression test: a
        # two-level chain + parallel used to record the last split's
        # outer (the middle loop) in the trace while parallelizing the
        # first split's outer, so replaying the winner trace produced
        # a different schedule. The "c" backend is the one offering
        # the parallel annotation (openmp capacity > 1).
        base = Schedule(_mm_program(n=64, m=64, k=64)).func
        space = ScheduleSpace.extract(base, backend="c")
        assert space.parallel_kind == "openmp"
        covered = set()
        for tk in space.knobs:
            if tk.kind != "tile":
                continue
            ann_name = tk.name.replace(".tile", ".ann")
            ann_knob = next((k for k in space.knobs
                             if k.name == ann_name), None)
            anns = ann_knob.choices if ann_knob else ["none"]
            for chain in tk.choices:
                for ann in anns:
                    a = space.default_assignment()
                    a[tk.name] = chain
                    if ann_knob is not None:
                        a[ann_name] = ann
                    func, trace = space.realize(a)
                    replayed = trace.apply(Schedule(base)).func
                    assert struct_hash(func) == struct_hash(replayed), \
                        (tk.name, chain, ann)
                    covered.add((len(chain), ann))
        # the space must actually have exercised the risky pairings
        assert (2, "parallel") in covered
        assert (2, "vectorize") in covered
        assert (0, "parallel") in covered

    def test_random_realize_and_replay(self):
        base = Schedule(_mm_program()).func
        space = ScheduleSpace.extract(base, backend="pycode")
        rng = random.Random(3)
        for _ in range(10):
            a = space.random_assignment(rng)
            func, trace = space.realize(a)
            replayed = trace.apply(Schedule(base)).func
            assert struct_hash(func) == struct_hash(replayed)

    def test_mutate_and_crossover_stay_in_space(self):
        base = Schedule(_mm_program()).func
        space = ScheduleSpace.extract(base, backend="pycode")
        rng = random.Random(0)
        a = space.random_assignment(rng)
        b = space.random_assignment(rng)
        m = space.mutate(a, rng)
        x = space.crossover(a, b, rng)
        names = {k.name for k in space.knobs}
        assert set(m) == names and set(x) == names
        assert sum(1 for n in names if m[n] != a[n]) == 1
        for n in names:
            assert x[n] == a[n] or x[n] == b[n]

    def test_metrics_counters(self):
        metrics.reset_search_stats()
        base = Schedule(_mm_program()).func
        ScheduleSpace.extract(base, backend="pycode")
        st = metrics.search_stats()
        assert st["spaces"] == 1
        assert st["knobs"] == st["order_knobs"] + st["tile_knobs"] \
            + st["ann_knobs"]
        assert st["knobs"] > 0


# ---------------------------------------------------------------------------
# traces
# ---------------------------------------------------------------------------


class TestScheduleTrace:

    def test_json_round_trip(self):
        base = Schedule(_mm_program()).func
        space = ScheduleSpace.extract(base, backend="pycode")
        rng = random.Random(7)
        a = space.random_assignment(rng)
        func, trace = space.realize(a)
        back = ScheduleTrace.from_json(trace.dumps())
        assert back.as_json() == trace.as_json()
        replayed = back.apply(Schedule(base)).func
        assert struct_hash(func) == struct_hash(replayed)

    def test_res_refs_resolve_split_results(self):
        base = Schedule(_mm_program()).func
        s = Schedule(base)
        tr = ScheduleTrace()
        step = tr.add("split", loop={"$loop": 0}, factor=2)
        tr.add("vectorize", loop={"$res": [step, 1]})
        outer, inner = s.split(s.loops()[0].sid, factor=2)
        s.vectorize(inner)
        replayed = tr.apply(Schedule(base)).func
        assert struct_hash(replayed) == struct_hash(s.func)

    def test_random_tuner_winner_trace_replays(self):
        prog = _mm_program()
        tuner = RandomTuner(prog, make_inputs=_mm_inputs,
                            backend="pycode", rounds=8, seed=1)
        res = tuner.tune()
        assert res.best_trace is not None
        replayed = res.best_trace.apply(Schedule(tuner.base)).func
        assert struct_hash(replayed) == struct_hash(res.best_func)
        # ... and tuner_stats carries the winner's trace as JSON
        assert metrics.tuner_stats()["best_trace"] == \
            res.best_trace.as_json()

    def test_evolutionary_tuner_winner_trace_replays(self):
        prog = _mm_program()
        tuner = EvolutionaryTuner(prog, make_inputs=_mm_inputs,
                                  backend="pycode", rounds=10, seed=2)
        res = tuner.tune()
        assert res.best_trace is not None
        replayed = res.best_trace.apply(Schedule(tuner.base)).func
        assert struct_hash(replayed) == struct_hash(res.best_func)


# ---------------------------------------------------------------------------
# frontier ordering
# ---------------------------------------------------------------------------


class TestFrontier:

    def test_frontier_order_sorts_by_proxy(self):
        base = Schedule(_mm_program()).func
        space = ScheduleSpace.extract(base, backend="pycode")
        from repro.analysis.cost import estimate_cost
        from repro.pipeline import lowering_pipeline

        rng = random.Random(5)
        ests = []
        for _ in range(5):
            f, _tr = space.realize(space.random_assignment(rng))
            ests.append(estimate_cost(lowering_pipeline().run(f),
                                      backend="pycode"))
        order = frontier_order(ests)
        proxies = [ests[i].time_proxy for i in order]
        assert proxies == sorted(proxies)

    def test_frontier_order_nones_last_stable(self):
        class E:
            def __init__(self, p):
                self.time_proxy = p

        ests = [None, E(3.0), None, E(1.0), E(3.0)]
        assert frontier_order(ests) == [3, 1, 4, 0, 2]

    def test_pareto_front_keeps_incomparable(self):
        base = Schedule(_mm_program()).func
        from repro.analysis.cost import estimate_cost
        from repro.pipeline import lowering_pipeline

        est = estimate_cost(lowering_pipeline().run(base),
                            backend="pycode")
        # a duplicate never knocks its twin off the front
        assert pareto_front([est, est]) == [0, 1]
        assert pareto_front([None, est]) == [0, 1]


# ---------------------------------------------------------------------------
# the structured tuner: determinism across worker counts
# ---------------------------------------------------------------------------


def _structured(prog, inputs, workers, rounds=16, seed=0, **kw):
    return StructuredTuner(prog, make_inputs=lambda: inputs,
                           backend="pycode", rounds=rounds, seed=seed,
                           workers=workers, **kw)


class TestDeterminism:

    @pytest.mark.parametrize("no_prune", [False, True])
    def test_same_winner_at_1_2_4_workers(self, monkeypatch, no_prune):
        monkeypatch.setenv("REPRO_TUNE_FAKE_MEASURE", "1")
        if no_prune:
            monkeypatch.setenv("REPRO_NO_COST_PRUNE", "1")
        else:
            monkeypatch.delenv("REPRO_NO_COST_PRUNE", raising=False)
        prog, args = _gat()
        results = []
        for workers in (1, 2, 4):
            res = _structured(prog, args, workers).tune()
            results.append((struct_hash(res.best_func), res.best_time,
                            res.measured))
        assert results[0] == results[1] == results[2]

    def test_identity_assignment_measured_first_gen(self, monkeypatch):
        monkeypatch.setenv("REPRO_TUNE_FAKE_MEASURE", "1")
        prog, args = _gat()
        res = _structured(prog, args, workers=1, rounds=8).tune()
        # the base schedule is always a candidate, so the tuner can
        # never return something worse than doing nothing
        assert res.best_time < float("inf")
        assert res.best_trace is not None

    def test_result_counters_add_up(self, monkeypatch):
        monkeypatch.setenv("REPRO_TUNE_FAKE_MEASURE", "1")
        prog, args = _gat()
        res = _structured(prog, args, workers=1, rounds=16).tune()
        accounted = (res.measured + res.dedup_skips + res.cost_pruned
                     + res.frontier_skips + res.invalid + res.timeouts)
        assert accounted == res.rounds == 16


# ---------------------------------------------------------------------------
# the measurement pool: isolation
# ---------------------------------------------------------------------------


class TestIsolation:

    def test_crashing_candidate_is_counted_not_fatal(self, monkeypatch):
        monkeypatch.setenv("REPRO_TUNE_FAKE_MEASURE", "1")
        monkeypatch.setenv("REPRO_TUNE_FAULT", "crash:*")
        monkeypatch.setenv("REPRO_TUNE_TIMEOUT", "20")
        metrics.reset_pool_stats()
        prog, args = _gat()
        res = _structured(prog, args, workers=2, rounds=8).tune()
        # every measurement crashed a worker; the session survived
        assert res.measured == 0
        assert res.best_time == float("inf")
        st = metrics.pool_stats()
        assert st["task_failures"] >= 1
        assert st["worker_respawns"] >= 1
        assert st["tasks"] == st["task_failures"]

    def test_hanging_candidate_times_out(self, monkeypatch):
        monkeypatch.setenv("REPRO_TUNE_FAKE_MEASURE", "1")
        monkeypatch.setenv("REPRO_TUNE_FAULT", "hang:*")
        monkeypatch.setenv("REPRO_TUNE_TIMEOUT", "2")
        metrics.reset_pool_stats()
        prog, args = _gat()
        res = _structured(prog, args, workers=2, rounds=4,
                          batch=4, topk=2).tune()
        assert res.measured == 0
        assert res.timeouts >= 1
        st = metrics.pool_stats()
        assert st["task_timeouts"] >= 1
        assert st["worker_respawns"] >= 1
        assert metrics.tuner_stats()["measure_timeout"] >= 1

    def test_serial_pool_isolates_any_exception(self, monkeypatch):
        # at workers=1 an arbitrary exception from compile/run (not
        # just FreeTensorError) must fold back as a failed outcome,
        # matching the worker path's catch-everything isolation — not
        # crash the tuning session
        from repro.autosched.search import measure as m

        def boom(*args, **kwargs):
            raise TypeError("bad candidate")

        monkeypatch.setattr(m, "measure_once", boom)
        base = Schedule(_mm_program()).func
        with m.MeasurementPool(workers=1, backend="pycode",
                               inputs=()) as pool:
            out = pool.measure_batch([(base, None)])
        # failure payloads carry the registry backend name
        assert out == [("failed", "pycode: TypeError: bad candidate")]

    def test_selective_fault_spares_other_candidates(self, monkeypatch):
        # crash only one specific candidate: the others still measure
        monkeypatch.setenv("REPRO_TUNE_FAKE_MEASURE", "1")
        monkeypatch.setenv("REPRO_TUNE_TIMEOUT", "20")
        prog, args = _gat()
        clean = _structured(prog, args, workers=2, rounds=8).tune()
        assert clean.measured >= 2
        victim = struct_hash(clean.best_func)
        monkeypatch.setenv("REPRO_TUNE_FAULT", f"crash:{victim[:12]}")
        res = _structured(prog, args, workers=2, rounds=8).tune()
        assert res.measured >= 1
        assert struct_hash(res.best_func) != victim


# ---------------------------------------------------------------------------
# satellites: input caching
# ---------------------------------------------------------------------------


class TestInputCaching:

    def test_make_inputs_called_once_per_session(self):
        calls = []

        def make_inputs():
            calls.append(1)
            return _mm_inputs()

        tuner = RandomTuner(_mm_program(), make_inputs=make_inputs,
                            backend="pycode", rounds=10, seed=0)
        res = tuner.tune()
        assert res.measured >= 2  # several real measurements happened
        assert len(calls) == 1

    def test_structured_tuner_caches_inputs_too(self, monkeypatch):
        monkeypatch.setenv("REPRO_TUNE_FAKE_MEASURE", "1")
        calls = []
        prog, args = _gat()

        def make_inputs():
            calls.append(1)
            return args

        StructuredTuner(prog, make_inputs=make_inputs,
                        backend="pycode", rounds=8, seed=0,
                        workers=1).tune()
        assert len(calls) == 1


# ---------------------------------------------------------------------------
# end-to-end: tuned winners still compute the right thing
# ---------------------------------------------------------------------------


class TestEndToEnd:

    def test_structured_winner_is_correct(self):
        prog = _mm_program()
        a, b = _mm_inputs()
        res = StructuredTuner(prog, make_inputs=lambda: (a, b),
                              backend="pycode", rounds=12, seed=0,
                              workers=1).tune()
        from repro.runtime.driver import build

        exe = build(res.best_func, backend="pycode")
        np.testing.assert_allclose(exe(a, b), a @ b, rtol=1e-4)

    def test_cli_entry_point(self, capsys):
        from repro.tune import main

        rc = main(["gat", "--rounds", "6", "--repeats", "1",
                   "--json"])
        assert rc == 0
        import json

        report = json.loads(capsys.readouterr().out)
        assert report["workload"] == "gat"
        assert report["measured"] >= 1
        assert report["trace"] is not None

"""Tests for loop schedules: split/merge/reorder/fission/fuse/swap.

Each transformation is checked twice: the structural/legality behaviour,
and end-to-end numerical equivalence after the transformation.
"""

import numpy as np
import pytest

import repro as ft
from repro.errors import DependenceViolation, InvalidSchedule
from repro.ir import For, If, StmtSeq, collect_stmts
from repro.runtime import build
from repro.schedule import Schedule


def make_elementwise():
    @ft.transform
    def f(b: ft.Tensor[("n", "m"), "f32", "input"],
          a: ft.Tensor[("n", "m"), "f32", "output"]):
        ft.label("Li")
        for i in range(b.shape(0)):
            ft.label("Lj")
            for j in range(b.shape(1)):
                a[i, j] = b[i, j] * 2.0 + 1.0

    return f


def run_equiv(sched, program, *arrays, **scalars):
    ref = build(program)(*arrays, **scalars)
    out = build(sched.func)(*arrays, **scalars)
    np.testing.assert_allclose(out, ref, rtol=1e-5)
    return out


@pytest.fixture
def x(rng):
    return rng.standard_normal((6, 10)).astype(np.float32)


class TestSplit:

    def test_split_factor(self, x):
        p = make_elementwise()
        s = Schedule(p)
        outer, inner = s.split("Li", factor=4)
        loops = {l.sid: l for l in s.loops()}
        assert loops[inner].len.val == 4
        run_equiv(s, p, x)

    def test_split_nparts(self, x):
        p = make_elementwise()
        s = Schedule(p)
        outer, inner = s.split("Lj", nparts=3)
        run_equiv(s, p, x)

    def test_split_uneven_guard(self, x):
        p = make_elementwise()
        s = Schedule(p)
        s.split("Li", factor=4)  # 6 % 4 != 0 -> guard needed
        guards = collect_stmts(s.func.body, lambda s_: isinstance(s_, If))
        assert guards
        run_equiv(s, p, x)

    def test_split_even_no_guard(self, x):
        @ft.transform
        def p(b: ft.Tensor[(6, 10), "f32", "input"],
              a: ft.Tensor[(6, 10), "f32", "output"]):
            ft.label("Li")
            for i in range(6):
                ft.label("Lj")
                for j in range(10):
                    a[i, j] = b[i, j] * 2.0 + 1.0

        s = Schedule(p)
        s.split("Lj", factor=5)  # 10 % 5 == 0: no guard needed
        guards = collect_stmts(s.func.body, lambda s_: isinstance(s_, If))
        assert not guards
        run_equiv(s, p, x)

    def test_needs_exactly_one_arg(self):
        s = Schedule(make_elementwise())
        with pytest.raises(InvalidSchedule):
            s.split("Li")
        with pytest.raises(InvalidSchedule):
            s.split("Li", factor=2, nparts=2)


class TestMerge:

    def test_merge(self, x):
        p = make_elementwise()
        s = Schedule(p)
        merged = s.merge("Li", "Lj")
        loops = s.loops()
        assert len(loops) == 1
        run_equiv(s, p, x)

    def test_merge_non_nested_rejected(self):
        @ft.transform
        def f(a: ft.Tensor[(4,), "f32", "output"]):
            ft.label("L1")
            for i in range(4):
                a[i] = 1.0
            ft.label("L2")
            for j in range(4):
                a[j] = 2.0

        with pytest.raises(InvalidSchedule):
            Schedule(f).merge("L1", "L2")

    def test_merge_non_rectangular_rejected(self):
        @ft.transform
        def f(a: ft.Tensor[(8, 8), "f32", "output"]):
            ft.label("Li")
            for i in range(8):
                ft.label("Lj")
                for j in range(i, 8):
                    a[i, j] = 1.0

        with pytest.raises(InvalidSchedule):
            Schedule(f).merge("Li", "Lj")


class TestReorder:

    def test_legal(self, x):
        p = make_elementwise()
        s = Schedule(p)
        s.reorder(["Lj", "Li"])
        assert [l.iter_var for l in s.loops()] == ["j", "i"]
        run_equiv(s, p, x)

    def test_illegal_scalar_recurrence(self):
        @ft.transform
        def f(b: ft.Tensor[("n", "m"), "f32", "input"],
              a: ft.Tensor[(), "f32", "inout"]):
            ft.label("Li")
            for i in range(b.shape(0)):
                ft.label("Lj")
                for j in range(b.shape(1)):
                    a[...] = a * b[i, j] + 1.0

        with pytest.raises(DependenceViolation):
            Schedule(f).reorder(["Lj", "Li"])

    def test_legal_reduction(self, x):
        @ft.transform
        def f(b: ft.Tensor[("n", "m"), "f32", "input"],
              a: ft.Tensor[(), "f32", "inout"]):
            ft.label("Li")
            for i in range(b.shape(0)):
                ft.label("Lj")
                for j in range(b.shape(1)):
                    a[...] += b[i, j]

        s = Schedule(f)
        s.reorder(["Lj", "Li"])  # additive commutativity (fig. 12c)

    def test_illegal_stencil(self):
        @ft.transform
        def f(x_: ft.Tensor[("n", "m"), "f32", "inout"]):
            ft.label("Li")
            for i in range(1, x_.shape(0) - 1):
                ft.label("Lj")
                for j in range(1, x_.shape(1) - 1):
                    x_[i + 1, j] = x_[i - 1, j + 1] * 2.0

        # dep (i: >, j: <) flips sign when loops are exchanged
        with pytest.raises(DependenceViolation):
            Schedule(f).reorder(["Lj", "Li"])

    def test_scoped_temp_reorder_allowed(self):
        """Paper fig. 12(d): stack-scoping kills the false dependence."""
        @ft.transform
        def f(a: ft.Tensor[("n", "m", "k"), "f32", "input"],
              b: ft.Tensor[("n", "m", "k"), "f32", "output"]):
            ft.label("Li")
            for i in range(a.shape(0)):
                ft.label("Lj")
                for j in range(a.shape(1)):
                    t = ft.empty((a.shape(2),), "f32")
                    for k in range(a.shape(2)):
                        t[k] = a[i, j, k]
                        b[i, j, k] = t[k]

        s = Schedule(f)
        s.reorder(["Lj", "Li"])  # must not raise


class TestFission:

    def test_basic(self, x):
        @ft.transform
        def f(b: ft.Tensor[("n",), "f32", "input"],
              a: ft.Tensor[("n",), "f32", "output"],
              c: ft.Tensor[("n",), "f32", "output"]):
            ft.label("L")
            for i in range(b.shape(0)):
                ft.label("S1")
                a[i] = b[i] + 1.0
                c[i] = b[i] * 2.0

        s = Schedule(f)
        front, back = s.fission("L", after="S1")
        assert len(s.loops()) == 2
        arr = np.arange(5, dtype=np.float32)
        ref_a, ref_c = build(f)(arr)[0], build(f)(arr)[1]
        out_a, out_c = build(s.func)(arr)
        np.testing.assert_allclose(out_a, ref_a)
        np.testing.assert_allclose(out_c, ref_c)

    def test_backward_dep_rejected(self):
        @ft.transform
        def f(a: ft.Tensor[("n",), "f32", "inout"],
              b: ft.Tensor[("n",), "f32", "input"],
              c: ft.Tensor[("n",), "f32", "output"]):
            ft.label("L")
            for i in range(a.shape(0) - 1):
                ft.label("S1")
                c[i] = a[i]  # at i+1 this reads the value S2 wrote at i
                ft.label("S2")
                a[i + 1] = b[i]

        # S2@i writes a[i+1]; S1@(i+1) reads it. All S1 running before all
        # S2 after fission would read stale values.
        with pytest.raises(DependenceViolation):
            Schedule(f).fission("L", after="S1")

    def test_live_temp_rejected(self):
        @ft.transform
        def f(b: ft.Tensor[("n",), "f32", "input"],
              a: ft.Tensor[("n",), "f32", "output"]):
            ft.label("L")
            for i in range(b.shape(0)):
                t = 0.0
                ft.label("S1")
                t += b[i]
                a[i] = t * 2.0

        with pytest.raises(DependenceViolation):
            Schedule(f).fission("L", after="S1")


class TestFuse:

    def _two_loops(self):
        @ft.transform
        def f(b: ft.Tensor[("n",), "f32", "input"],
              a: ft.Tensor[("n",), "f32", "output"],
              c: ft.Tensor[("n",), "f32", "output"]):
            ft.label("L1")
            for i in range(b.shape(0)):
                a[i] = b[i] + 1.0
            ft.label("L2")
            for j in range(b.shape(0)):
                c[j] = a[j] * 2.0

        return f

    def test_basic(self):
        f = self._two_loops()
        s = Schedule(f)
        fused = s.fuse("L1", "L2")
        assert len(s.loops()) == 1
        arr = np.arange(5, dtype=np.float32)
        out_a, out_c = build(s.func)(arr)
        np.testing.assert_allclose(out_a, arr + 1)
        np.testing.assert_allclose(out_c, (arr + 1) * 2)

    def test_paper_dot_max_example(self):
        """Fig. 8 -> Fig. 10: fusing the dot loop with the max loop is
        legal; fusing the max loop with the normalisation loop is not."""
        @ft.transform
        def f(q: ft.Tensor[("n",), "f32", "input"],
              y: ft.Tensor[("n",), "f32", "output"]):
            dot = ft.empty(("n",), "f32")
            ft.label("L1")
            for p in range(q.shape(0)):
                dot[p] = q[p] * q[p]
            m = -float("inf")
            ft.label("L2")
            for p in range(q.shape(0)):
                m = ft.max(m, dot[p])
            ft.label("L3")
            for p in range(q.shape(0)):
                y[p] = dot[p] - m

        s = Schedule(f)
        fused = s.fuse("L1", "L2")
        with pytest.raises(DependenceViolation):
            s.fuse(fused, "L3")
        arr = np.array([1.0, 3.0, 2.0], np.float32)
        out = build(s.func)(arr)
        np.testing.assert_allclose(out, arr**2 - 9.0)

    def test_backward_dep_rejected(self):
        @ft.transform
        def f(a: ft.Tensor[("n",), "f32", "inout"]):
            ft.label("L1")
            for i in range(a.shape(0)):
                a[i] = a[i] + 1.0
            ft.label("L2")
            for j in range(a.shape(0) - 1):
                a[j] = a[j + 1]  # reads a value L1 writes at a later i

        with pytest.raises(InvalidSchedule):
            Schedule(f).fuse("L1", "L2")

    def test_length_mismatch_rejected(self):
        @ft.transform
        def f(a: ft.Tensor[(6,), "f32", "output"],
              b: ft.Tensor[(4,), "f32", "output"]):
            ft.label("L1")
            for i in range(6):
                a[i] = 1.0
            ft.label("L2")
            for j in range(4):
                b[j] = 2.0

        with pytest.raises(InvalidSchedule):
            Schedule(f).fuse("L1", "L2")

    def test_symbolic_equal_lengths(self):
        @ft.transform
        def f(a: ft.Tensor[("n",), "f32", "output"],
              b: ft.Tensor[("n",), "f32", "output"]):
            ft.label("L1")
            for i in range(a.shape(0)):
                a[i] = 1.0
            ft.label("L2")
            for j in range(b.shape(0)):
                b[j] = 2.0

        s = Schedule(f)
        s.fuse("L1", "L2")  # n == n proved by the engine


class TestSwap:

    def test_legal(self):
        @ft.transform
        def f(b: ft.Tensor[("n",), "f32", "input"],
              a: ft.Tensor[("n",), "f32", "output"],
              c: ft.Tensor[("n",), "f32", "output"]):
            for i in range(b.shape(0)):
                ft.label("S1")
                a[i] = b[i] + 1.0
                ft.label("S2")
                c[i] = b[i] * 2.0

        s = Schedule(f)
        s.swap(["S2", "S1"])
        arr = np.arange(4, dtype=np.float32)
        out_a, out_c = build(s.func)(arr)
        np.testing.assert_allclose(out_a, arr + 1)

    def test_flow_dep_rejected(self):
        @ft.transform
        def f(b: ft.Tensor[("n",), "f32", "input"],
              c: ft.Tensor[("n",), "f32", "output"]):
            t = ft.empty(("n",), "f32")
            for i in range(b.shape(0)):
                ft.label("S1")
                t[i] = b[i] + 1.0
                ft.label("S2")
                c[i] = t[i] * 2.0

        with pytest.raises(DependenceViolation):
            Schedule(f).swap(["S2", "S1"])

"""The unified backend registry: Backend objects as the single source
of backend truth, and the grep gate that keeps string dispatch out."""

import os
import re

import pytest

from repro.backend import (Backend, BackendCaps, ScopeRule,
                           available_backends, backend_cache_tag,
                           backend_caps, find_backend, get_backend,
                           register_backend, scope_violation,
                           unregister_backend)
from repro.errors import BackendError
from repro.ir import MemType


class TestRegistry:

    def test_builtins_registered(self):
        assert available_backends(runnable_only=False) == \
            ["c", "cuda", "gpusim", "interp", "npblock", "pycode"]
        # cuda is codegen-only: emitted source, no executor here
        assert available_backends() == \
            ["c", "gpusim", "interp", "npblock", "pycode"]
        assert not get_backend("cuda").runnable
        assert get_backend("pycode").runnable

    def test_unknown_backend_names_available(self):
        with pytest.raises(BackendError) as exc:
            get_backend("tpu")
        assert "tpu" in str(exc.value)
        assert "pycode" in str(exc.value)
        assert find_backend("tpu") is None

    def test_codegen_only_build_error(self):
        from repro.runtime import build
        from repro.schedule import Schedule
        from repro.workloads import gat

        func = Schedule(gat.make_program()).func
        with pytest.raises(BackendError) as exc:
            build(func, backend="cuda")
        assert "codegen-only" in str(exc.value)
        assert "gpusim" in str(exc.value)  # points at runnable ones

    def test_register_duplicate_and_replace(self):
        stub = Backend(name="pycode")
        with pytest.raises(BackendError):
            register_backend(stub)
        orig = get_backend("pycode")
        try:
            register_backend(stub, replace=True)
            assert get_backend("pycode") is stub
        finally:
            register_backend(orig, replace=True)
        assert get_backend("pycode") is orig

    def test_register_unregister_roundtrip(self):
        b = Backend(name="toy", build=lambda func, **k: (lambda env: None),
                    description="test stub")
        register_backend(b)
        try:
            assert "toy" in available_backends()
            assert get_backend("toy") is b
        finally:
            unregister_backend("toy")
        assert find_backend("toy") is None

    def test_unknown_legalization_pass_rejected(self):
        with pytest.raises(ValueError) as exc:
            register_backend(Backend(name="toy2",
                                     legalization=("no_such_pass",)))
        assert "no_such_pass" in str(exc.value)
        assert find_backend("toy2") is None

    def test_cache_tag_folds_caps_version(self):
        assert get_backend("pycode").cache_tag() == "pycode@1"
        assert backend_cache_tag("pycode") == "pycode@1"
        # unregistered names pass through untagged
        assert backend_cache_tag("adhoc") == "adhoc"

    def test_caps_version_changes_build_cache_key(self):
        from repro.runtime.driver import _build_cache_key
        from repro.schedule import Schedule
        from repro.workloads import gat

        func = Schedule(gat.make_program()).func
        k1 = _build_cache_key(func, "npblock", False, None, {})
        orig = get_backend("npblock")
        bumped = Backend(name="npblock", build=orig.build, caps=orig.caps,
                         legalization=orig.legalization,
                         legalization_impls=orig.legalization_impls,
                         caps_version="2-test")
        register_backend(bumped, replace=True)
        try:
            k2 = _build_cache_key(func, "npblock", False, None, {})
        finally:
            register_backend(orig, replace=True)
        assert k1 != k2


class TestCaps:

    def test_capability_tables(self):
        c = backend_caps("c")
        assert c.capacity("openmp") > 1
        assert c.schedule_parallel_kind() == "openmp"
        assert c.stride_matters
        g = backend_caps("gpusim")
        assert g.capacity("cuda.blockIdx.x") is None  # unbounded
        assert g.schedule_parallel_kind() == "cuda.blockIdx.x"
        assert "gpu/shared" in g.memory_scopes
        p = backend_caps("pycode")
        assert p.schedule_parallel_kind() is None
        assert p.vector_width is None  # whole-loop NumPy kernels

    def test_unknown_backend_sequential_fallback(self):
        caps = backend_caps("adhoc")
        assert caps.capacity("openmp") == 1
        assert caps.schedule_parallel_kind() is None

    def test_parallel_kind_capacity_one_is_noop(self):
        caps = BackendCaps("t", {"openmp": 1}, vector_width=1,
                           stride_matters=False,
                           parallel_ann_kind="openmp")
        assert caps.schedule_parallel_kind() is None

    def test_npblock_cost_overrides(self):
        caps = backend_caps("npblock")
        assert caps.vec_kernel_seq == 96.0
        assert caps.vec_whole_width == 16

    def test_target_capabilities_delegates(self):
        from repro.autosched import CPU

        caps = CPU.capabilities("c")
        assert caps.backend == "c"
        assert caps.capacity("openmp") == CPU.num_threads


class TestScopeRules:

    def test_gpu_scope_rules_declared(self):
        # the FT203 facts formerly hard-coded in analysis/verify/races.py
        assert scope_violation("cuda.threadIdx.x", MemType.GPU_LOCAL)
        assert scope_violation("cuda.blockIdx.x", MemType.GPU_SHARED)
        assert not scope_violation("cuda.blockIdx.x", MemType.GPU_GLOBAL)
        assert not scope_violation("openmp", MemType.GPU_LOCAL)

    def test_scope_rule_prefix_matching(self):
        r = ScopeRule(MemType.GPU_LOCAL, "cuda", "private")
        assert r.matches("cuda.threadIdx.y", MemType.GPU_LOCAL)
        assert not r.matches("cudax", MemType.GPU_LOCAL)
        assert not r.matches("cuda.threadIdx.y", MemType.CPU)


class TestLegalization:

    def test_declared_legalization_from_registry(self):
        from repro.pipeline import declared_legalization

        assert declared_legalization("c") == ("simd_suppress",)
        assert declared_legalization("cuda") == ("simd_suppress",)
        assert declared_legalization("pycode") == ()
        assert declared_legalization("npblock") == ("npblock_vectorize",)

    def test_declare_legalization_shim_updates_object(self):
        from repro.pipeline import (declare_legalization,
                                    declared_legalization)

        orig = get_backend("pycode").legalization
        declare_legalization("pycode", ("simd_suppress",))
        try:
            assert declared_legalization("pycode") == ("simd_suppress",)
            assert get_backend("pycode").legalization == \
                ("simd_suppress",)
        finally:
            declare_legalization("pycode", orig)

    def test_declare_legalization_unknown_pass(self):
        from repro.pipeline import declare_legalization

        with pytest.raises(ValueError):
            declare_legalization("pycode", ("no_such_pass",))

    def test_legalization_pass_keys_versioned(self):
        from repro.pipeline.legalize import legalization_passes

        passes = legalization_passes("c")
        assert [p.name for p in passes] == ["simd_suppress"]
        # the cache chain sees name@caps_version; timings see the name
        assert passes[0].key == "simd_suppress@1"
        nb = legalization_passes("npblock")
        assert nb[0].key == "npblock_vectorize@1"


class TestMeasurementNaming:

    def test_format_failure_carries_backend_name(self):
        from repro.autosched.search.measure import format_failure

        msg = format_failure("pycode", TypeError("boom"))
        assert msg == "pycode: TypeError: boom"
        # unregistered names still format consistently
        msg = format_failure("adhoc", ValueError("x"))
        assert msg == "adhoc: ValueError: x"

    def test_pool_stats_report_backend(self):
        from repro.autosched.search.measure import MeasurementPool
        from repro.runtime import metrics
        from repro.schedule import Schedule
        from repro.workloads import gat

        func = Schedule(gat.make_program()).func
        data = gat.make_data(n_nodes=8, avg_degree=2, feats=2,
                             out_feats=2)
        args = tuple(data[p] for p in func.params)
        with MeasurementPool(workers=1, backend="interp",
                             inputs=args) as pool:
            pool.measure_batch([(func, None)])
        assert metrics.pool_stats()["backend"] == "interp"


_STRING_DISPATCH = (
    # backend == "name" / "name" == backend and != variants
    re.compile(r"""backend\s*[!=]=\s*["']"""),
    re.compile(r"""["'][A-Za-z_]+["']\s*[!=]=\s*backend\b"""),
)


class TestNoStringDispatch:

    def test_no_backend_name_comparisons_outside_registry(self):
        """The grep gate: consumers must query Backend objects, never
        compare backend name strings. Only src/repro/backend/ (the
        declarations themselves) is exempt."""
        root = os.path.join(os.path.dirname(__file__), os.pardir,
                            "src", "repro")
        offenders = []
        for dirpath, _dirs, files in os.walk(os.path.abspath(root)):
            if os.sep + "backend" in dirpath.replace("/", os.sep):
                continue
            for fn in files:
                if not fn.endswith(".py"):
                    continue
                path = os.path.join(dirpath, fn)
                with open(path) as f:
                    for i, line in enumerate(f, 1):
                        if any(p.search(line) for p in _STRING_DISPATCH):
                            offenders.append(f"{path}:{i}: "
                                             f"{line.strip()}")
        assert not offenders, (
            "backend-name string dispatch found (query the registry "
            "instead):\n" + "\n".join(offenders))

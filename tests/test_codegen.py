"""Tests for the three code generators: NumPy (with the vectorize
lowering), C/OpenMP (semantics details), and CUDA (structural golden)."""

import numpy as np
import pytest

import repro as ft
from repro.codegen.cuda import generate_cuda
from repro.codegen.pycode import PyCodegen
from repro.runtime import build
from repro.schedule import Schedule


class TestPycodeVectorizer:

    def _build_vec(self, program, label="L"):
        s = Schedule(program)
        s.vectorize(label)
        exe = build(s.func, backend="pycode")
        return exe

    def test_elementwise_store(self, rng):
        @ft.transform
        def f(x: ft.Tensor[("n",), "f32", "input"]):
            y = ft.empty(("n",), "f32")
            ft.label("L")
            for i in range(x.shape(0)):
                y[i] = x[i] * 2.0 + 1.0
            return y

        exe = self._build_vec(f)
        assert "np.arange" in exe.source
        x = rng.standard_normal(17).astype(np.float32)
        np.testing.assert_allclose(exe(x), 2 * x + 1, rtol=1e-6)

    def test_gather_indices(self, rng):
        """Arbitrary index expressions become fancy-indexed gathers."""
        @ft.transform
        def f(x: ft.Tensor[(10,), "f32", "input"],
              idx: ft.Tensor[(6,), "i32", "input"]):
            y = ft.empty((6,), "f32")
            ft.label("L")
            for i in range(6):
                y[i] = x[idx[i]] + 1.0
            return y

        exe = self._build_vec(f)
        x = rng.standard_normal(10).astype(np.float32)
        idx = rng.integers(0, 10, 6).astype(np.int32)
        np.testing.assert_allclose(exe(x, idx), x[idx] + 1)

    def test_reduction_to_scalar(self, rng):
        @ft.transform
        def f(x: ft.Tensor[("n",), "f32", "input"],
              y: ft.Tensor[(), "f32", "inout"]):
            ft.label("L")
            for i in range(x.shape(0)):
                y[...] += x[i] * x[i]

        exe = self._build_vec(f)
        assert "np.sum" in exe.source
        x = rng.standard_normal(20).astype(np.float32)
        out = exe(x, np.zeros((), np.float32))
        assert abs(float(out) - float((x * x).sum())) < 1e-4

    def test_max_reduction(self, rng):
        @ft.transform
        def f(x: ft.Tensor[("n",), "f32", "input"],
              y: ft.Tensor[(), "f32", "inout"]):
            ft.label("L")
            for i in range(x.shape(0)):
                y[...] = ft.max(y, x[i])

        exe = self._build_vec(f)
        x = rng.standard_normal(20).astype(np.float32)
        out = exe(x, np.full((), -1e30, np.float32))
        assert abs(float(out) - x.max()) < 1e-6

    def test_scatter_add_uses_add_at(self, rng):
        @ft.transform
        def f(x: ft.Tensor[(12,), "f32", "input"],
              idx: ft.Tensor[(12,), "i32", "input"],
              y: ft.Tensor[(4,), "f32", "inout"]):
            ft.label("L")
            for i in range(12):
                y[idx[i]] += x[i]

        s = Schedule(f)
        s.find("L").property.no_deps = ("y",)  # user-asserted
        s.vectorize("L")
        exe = build(s.func, backend="pycode")
        assert "np.add.at" in exe.source
        x = rng.standard_normal(12).astype(np.float32)
        idx = rng.integers(0, 4, 12).astype(np.int32)
        ref = np.zeros(4, np.float32)
        np.add.at(ref, idx, x)
        np.testing.assert_allclose(exe(x, idx, np.zeros(4, np.float32)),
                                   ref, rtol=1e-5)

    def test_guarded_body_falls_back(self, rng):
        """Bodies with control flow keep the scalar loop (no vector
        path), but stay correct."""
        @ft.transform
        def f(x: ft.Tensor[("n",), "f32", "input"]):
            y = ft.zeros(("n",), "f32")
            ft.label("L")
            for i in range(x.shape(0)):
                if x[i] > 0.0:
                    y[i] = x[i]
            return y

        s = Schedule(f)
        s.vectorize("L")
        exe = build(s.func, backend="pycode")
        x = rng.standard_normal(9).astype(np.float32)
        np.testing.assert_allclose(exe(x), np.maximum(x, 0), rtol=1e-6)

    def test_empty_range_guard(self):
        @ft.transform
        def f(x: ft.Tensor[("n",), "f32", "input"],
              y: ft.Tensor[(), "f32", "inout"], k: ft.Size):
            ft.label("L")
            for i in range(k):
                y[...] = ft.min(y, x[i])

        s = Schedule(f)
        s.vectorize("L")
        exe = build(s.func, backend="pycode")
        out = exe(np.ones(4, np.float32), np.full((), 7.0, np.float32),
                  k=0)
        assert float(out) == 7.0  # empty lane: no np.min([]) crash


class TestCBackend:

    def test_python_mod_semantics(self):
        """C's % differs on negatives; ours must match Python."""
        @ft.transform
        def f(y: ft.Tensor[(7,), "i32", "output"]):
            for i in range(7):
                y[i] = (i - 3) % 3

        ref = np.array([(i - 3) % 3 for i in range(7)], np.int32)
        np.testing.assert_array_equal(build(f, backend="c")(), ref)

    def test_python_floordiv_semantics(self):
        @ft.transform
        def f(y: ft.Tensor[(7,), "i32", "output"]):
            for i in range(7):
                y[i] = (i - 3) // 2

        ref = np.array([(i - 3) // 2 for i in range(7)], np.int32)
        np.testing.assert_array_equal(build(f, backend="c")(), ref)

    def test_intrinsics_f32(self, rng):
        @ft.transform
        def f(x: ft.Tensor[(8,), "f32", "input"]):
            y = ft.empty((8,), "f32")
            for i in range(8):
                y[i] = ft.exp(x[i]) + ft.sigmoid(x[i]) \
                    + ft.sqrt(ft.abs(x[i])) + ft.tanh(x[i])
            return y

        exe = build(f, backend="c")
        assert "expf(" in exe.source  # single-precision math selected
        x = rng.standard_normal(8).astype(np.float32)
        ref = np.exp(x) + 1 / (1 + np.exp(-x)) + np.sqrt(np.abs(x)) \
            + np.tanh(x)
        np.testing.assert_allclose(exe(x), ref, rtol=1e-5)

    def test_infinity_handling(self):
        """-inf sentinels survive (no -ffast-math)."""
        @ft.transform
        def f(x: ft.Tensor[(4,), "f32", "input"]):
            y = ft.empty((), "f32")
            y[...] = -float("inf")
            for i in range(4):
                y[...] = ft.max(y, x[i])
            return y

        out = build(f, backend="c")(np.array([-2, -8, -1, -4],
                                             np.float32))
        assert float(out) == -1.0

    def test_cse_emitted(self, rng):
        @ft.transform
        def f(x: ft.Tensor[(6,), "f32", "input"]):
            y = ft.empty((6,), "f32")
            z = ft.empty((6,), "f32")
            for i in range(6):
                y[i] = ft.exp(x[i]) * (1.0 - ft.exp(x[i]))
                z[i] = ft.exp(x[i]) + 2.0
            return y, z

        exe = build(f, backend="c")
        src = exe.source
        assert "cse_" in src
        x = rng.standard_normal(6).astype(np.float32)
        y, z = exe(x)
        np.testing.assert_allclose(y, np.exp(x) * (1 - np.exp(x)),
                                   rtol=1e-5)
        np.testing.assert_allclose(z, np.exp(x) + 2, rtol=1e-5)

    def test_atomic_reduce_pragma(self):
        @ft.transform
        def f(idx: ft.Tensor[(8,), "i32", "input"],
              x: ft.Tensor[(8,), "f32", "input"],
              y: ft.Tensor[(3,), "f32", "inout"]):
            ft.label("L")
            for i in range(8):
                y[idx[i]] += x[i]

        s = Schedule(f)
        s.parallelize("L", "openmp")
        exe = build(s.func, backend="c")
        assert "#pragma omp atomic" in exe.source
        idx = np.array([0, 1, 2, 0, 1, 2, 0, 1], np.int32)
        x = np.ones(8, np.float32)
        ref = np.zeros(3, np.float32)
        np.add.at(ref, idx, x)
        np.testing.assert_allclose(exe(idx, x, np.zeros(3, np.float32)),
                                   ref)

    def test_source_caching(self):
        @ft.transform
        def f(y: ft.Tensor[(2,), "f32", "output"]):
            for i in range(2):
                y[i] = 1.0

        a = build(f, backend="c")
        b = build(f, backend="c")
        assert a.source == b.source  # same digest -> same .so reused


class TestCUDAGolden:

    def _gpu_func(self):
        @ft.transform
        def f(x: ft.Tensor[("n",), "f32", "input"]):
            y = ft.empty(("n",), "f32")
            ft.label("L")
            for i in range(x.shape(0)):
                y[i] = x[i] * 2.0
            return y

        s = Schedule(f)
        o, i = s.split("L", factor=64)
        s.parallelize(o, "cuda.blockIdx.x")
        s.parallelize(i, "cuda.threadIdx.x")
        return s.func

    def test_kernel_structure(self):
        src = generate_cuda(self._gpu_func())
        assert "__global__ void kernel0(" in src
        assert "blockIdx.x" in src and "threadIdx.x" in src
        assert "kernel0<<<" in src
        assert "cudaDeviceSynchronize()" in src
        assert 'extern "C" void entry(' in src

    def test_shared_memory(self):
        @ft.transform
        def f(x: ft.Tensor[(64, 32), "f32", "input"]):
            y = ft.empty((64, 32), "f32")
            ft.label("Lb")
            for b in range(64):
                ft.label("Lt")
                for t in range(32):
                    y[b, t] = x[b, t] + 1.0
            return y

        s = Schedule(f)
        s.parallelize("Lb", "cuda.blockIdx.x")
        s.parallelize("Lt", "cuda.threadIdx.x")
        s.cache("Lt", "x", "gpu/shared")
        src = generate_cuda(s.func)
        assert "__shared__" in src

    def test_atomic_add(self):
        @ft.transform
        def f(idx: ft.Tensor[(128,), "i32", "input"],
              x: ft.Tensor[(128,), "f32", "input"],
              y: ft.Tensor[(8,), "f32", "inout"]):
            ft.label("L")
            for i in range(128):
                y[idx[i]] += x[i]

        s = Schedule(f)
        o, i = s.split("L", factor=64)
        s.parallelize(o, "cuda.blockIdx.x")
        s.parallelize(i, "cuda.threadIdx.x")
        src = generate_cuda(s.func)
        assert "atomicAdd(" in src

    def test_grid_dimensions(self):
        src = generate_cuda(self._gpu_func())
        # grid = ceil(n/64) blocks of 64 threads
        assert "dim3(ft_floordiv(((v_n + 64) - 1), 64), 1, 1)" in src
        assert "dim3(64, 1, 1)" in src

    def test_host_loop_around_kernel(self):
        """A sequential outer loop stays on the host."""
        @ft.transform
        def f(x: ft.Tensor[(4, 32), "f32", "inout"]):
            for step in range(4):
                ft.label("L")
                for i in range(32):
                    x[step, i] += 1.0

        s = Schedule(f)
        s.parallelize("L", "cuda.threadIdx.x")
        src = generate_cuda(s.func)
        assert "for (int64_t v_step" in src
        assert "kernel0<<<" in src


class TestOpenMPReduction:

    def test_scalar_reduction_clause(self, rng):
        @ft.transform
        def f(x: ft.Tensor[("n",), "f32", "input"],
              y: ft.Tensor[(), "f32", "inout"]):
            ft.label("L")
            for i in range(x.shape(0)):
                y[...] += x[i] * x[i]

        s = Schedule(f)
        s.parallelize("L", "openmp")
        exe = build(s.func, backend="c")
        assert "reduction(+:" in exe.source
        assert "#pragma omp atomic" not in exe.source
        x = rng.standard_normal(1000).astype(np.float32)
        out = exe(x, np.zeros((), np.float32))
        assert abs(float(out) - float((x * x).sum())) < 1e-2

    def test_max_reduction_clause(self, rng):
        @ft.transform
        def f(x: ft.Tensor[("n",), "f32", "input"],
              y: ft.Tensor[(), "f32", "inout"]):
            ft.label("L")
            for i in range(x.shape(0)):
                y[...] = ft.max(y, x[i])

        s = Schedule(f)
        s.parallelize("L", "openmp")
        exe = build(s.func, backend="c")
        assert "reduction(max:" in exe.source
        x = rng.standard_normal(500).astype(np.float32)
        out = exe(x, np.full((), -1e30, np.float32))
        assert abs(float(out) - x.max()) < 1e-6

    def test_array_targets_keep_atomics(self):
        @ft.transform
        def f(idx: ft.Tensor[(64,), "i32", "input"],
              x: ft.Tensor[(64,), "f32", "input"],
              y: ft.Tensor[(4,), "f32", "inout"]):
            ft.label("L")
            for i in range(64):
                y[idx[i]] += x[i]

        s = Schedule(f)
        s.parallelize("L", "openmp")
        exe = build(s.func, backend="c")
        assert "#pragma omp atomic" in exe.source
        assert "reduction(" not in exe.source

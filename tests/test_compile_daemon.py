"""The warm compile daemon (python -m repro.cached).

A real daemon subprocess serves a real client subprocess; a dead socket
must degrade to local compilation, invisibly.
"""

import json
import os
import subprocess
import sys
import time

import pytest

_SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src")


def _env(tmp_path, **extra):
    env = {k: v for k, v in os.environ.items()
           if not k.startswith("REPRO_")}
    env["PYTHONPATH"] = _SRC
    env["REPRO_CACHE_DIR"] = str(tmp_path / "cache")
    env["REPRO_DAEMON_SOCK"] = str(tmp_path / "daemon.sock")
    env.update(extra)
    return env


@pytest.fixture
def daemon(tmp_path):
    env = _env(tmp_path)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cached"], env=env, text=True,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
    sock = env["REPRO_DAEMON_SOCK"]
    for _ in range(100):
        if os.path.exists(sock):
            break
        time.sleep(0.1)
    else:
        proc.kill()
        pytest.fail(f"daemon never bound {sock}:\n{proc.stdout.read()}")
    yield env
    proc.terminate()
    proc.wait(timeout=30)


_CLIENT = """
import json
import numpy as np
import repro as ft
from repro.runtime.driver import build
from repro.workloads import gat
exe = build(gat.make_program(), backend="pycode", optimize=True)
data = gat.make_data()
out = exe(data["indptr"], data["indices"], data["h"], data["wmat"],
          data["att_s"], data["att_d"])
np.testing.assert_allclose(out, gat.reference(data), rtol=1e-3,
                           atol=1e-4)
d = ft.compile_cache_stats()["disk"]
print(json.dumps({"compiles": d["daemon_compiles"],
                  "fallbacks": d["daemon_fallbacks"]}))
"""


def _run_client(env):
    out = subprocess.run([sys.executable, "-c", _CLIENT], env=env,
                         text=True, capture_output=True, check=True)
    return json.loads(out.stdout.splitlines()[-1])


class TestDaemon:

    def test_client_compiles_through_daemon(self, daemon):
        stats = _run_client(daemon)
        assert stats["compiles"] == 1
        assert stats["fallbacks"] == 0

    def test_ping_stats_shutdown(self, daemon, tmp_path):
        code = """
import json
from repro.cache.client import request
from repro.cache.keys import schema_tag
ping = request({"op": "ping"})
assert ping["ok"] and ping["schema"] == schema_tag()
stats = request({"op": "stats"})
assert stats["ok"] and "compiles" in stats["stats"]
assert request({"op": "shutdown"})["ok"]
print("done")
"""
        out = subprocess.run([sys.executable, "-c", code], env=daemon,
                             text=True, capture_output=True, check=True)
        assert "done" in out.stdout

    def test_schema_mismatch_refused(self, daemon):
        code = """
from repro.cache.client import request
from repro.cache.serial import encode_func
from repro.workloads import gat
r = request({"op": "compile", "schema": "v0-stale", "backend": "pycode",
             "optimize": False, "target": None,
             "func": encode_func(gat.make_program().func)})
assert not r["ok"] and "schema" in r["error"], r
print("refused")
"""
        out = subprocess.run([sys.executable, "-c", code], env=daemon,
                             text=True, capture_output=True, check=True)
        assert "refused" in out.stdout


class TestFallback:

    def test_stale_socket_falls_back_locally(self, tmp_path):
        # socket path exists but nothing is listening: the client must
        # compile locally and still produce a correct executable
        env = _env(tmp_path)
        open(env["REPRO_DAEMON_SOCK"], "w").close()
        stats = _run_client(env)
        assert stats["compiles"] == 0
        assert stats["fallbacks"] >= 1

    def test_no_daemon_env_never_connects(self, tmp_path):
        env = _env(tmp_path, REPRO_NO_DAEMON="1")
        open(env["REPRO_DAEMON_SOCK"], "w").close()
        stats = _run_client(env)
        assert stats["compiles"] == 0
        assert stats["fallbacks"] == 0

"""Round-trip tests for the textual IR format: print -> parse -> print."""

import numpy as np
import pytest

import repro as ft
from repro.errors import InvalidProgram
from repro.ir import dump, match
from repro.ir.parser import parse_program, parse_stmt


def roundtrip(func):
    text = dump(func)
    parsed = parse_program(text)
    assert dump(parsed) == text
    assert match(parsed.body, func.body)
    return parsed


class TestStatements:

    def test_store_expr(self):
        s = parse_stmt("a[i, j + 1] = b[i] * 2.0 + 1.0\n")
        assert dump(s) == "a[i, j + 1] = b[i] * 2.0 + 1.0\n"

    def test_reduce(self):
        s = parse_stmt("y[i] += x[i] * x[i]\n")
        assert dump(s) == "y[i] += x[i] * x[i]\n"

    def test_precedence_preserved(self):
        for text in [
                "a[0] = (i + 1) * 2\n",
                "a[0] = i * 2 + 1\n",
                "a[0] = i - (j - k)\n",
                "a[0] = i // 2 % 3\n",
                "a[0] = min(i, max(j, 3))\n",
        ]:
            assert dump(parse_stmt(text)) == text

    def test_conditions(self):
        text = ("if i + k >= 0 and i + k < n {\n"
                "  y[i] = 1.0\n"
                "} else {\n"
                "  y[i] = 0.0\n"
                "}\n")
        assert dump(parse_stmt(text)) == text

    def test_ternary_and_not(self):
        # at statement level the printer emits the select unparenthesised
        text = "a[0] = i < 3 ? 1.0 : 2.0\n"
        assert dump(parse_stmt(text)) == text
        text2 = "a[0] = !(i < 3) ? 1.0 : 2.0\n"
        assert dump(parse_stmt(text2)) == text2

    def test_loop_annotations(self):
        text = ("for i in 0:n /*parallel=openmp*/ {\n"
                "  for j in 0:4 /*vectorize*/ {\n"
                "    y[i, j] += x[i, j] /*atomic*/\n"
                "  }\n"
                "}\n")
        s = parse_stmt(text)
        assert s.property.parallel == "openmp"
        assert dump(s) == text

    def test_intrinsics_and_cast(self):
        text = "a[0] = exp(sqrt(abs(x[0]))) + f32(i)\n"
        assert dump(parse_stmt(text)) == text

    def test_negative_and_inf(self):
        text = "a[0] = -inf\n"
        assert dump(parse_stmt(text)) == text

    def test_vardef_block(self):
        text = ("@cache t: f32[n, 4] @gpu/shared {\n"
                "  for i in 0:n {\n"
                "    t[i, 0] = 0.0\n"
                "  }\n"
                "}\n")
        assert dump(parse_stmt(text)) == text

    def test_labels(self):
        text = ("L1: for i in 0:n {\n"
                "  y[i] = 0.0\n"
                "}\n")
        s = parse_stmt(text)
        assert s.label == "L1"
        assert dump(s) == text

    def test_libcall(self):
        text = "lib.matmul(c <- a, b)\n"
        s = parse_stmt(text)
        assert s.kind == "matmul"
        assert s.outs == ("c",)
        assert s.args == ("a", "b")

    def test_assert_block(self):
        text = ("assert g == 4 * f {\n"
                "  y[0] = 1.0\n"
                "}\n")
        assert dump(parse_stmt(text)) == text

    def test_scalar_tensor_load(self):
        text = ("@cache s: f32[] @cpu {\n"
                "  s = 0.0\n"
                "  y[0] = s + 1.0\n"
                "}\n")
        s = parse_stmt(text)
        assert dump(s) == text

    def test_error_on_garbage(self):
        with pytest.raises(InvalidProgram):
            parse_stmt("for for for\n")
        with pytest.raises(InvalidProgram):
            parse_program("not a func")


class TestProgramRoundTrip:

    def test_staged_programs_roundtrip(self):
        @ft.transform
        def f(a: ft.Tensor[("n", "m"), "f32", "input"],
              idx: ft.Tensor[("n",), "i32", "input"]):
            y = ft.zeros(("n",), "f32")
            for i in range(a.shape(0)):
                if idx[i] >= 0:
                    for j in range(a.shape(1)):
                        y[i] += a[i, (j + 1) % a.shape(1)] * 2.0
            return y

        parsed = roundtrip(f.func)
        assert parsed.params == f.func.params
        assert parsed.scalar_params == f.func.scalar_params
        assert parsed.returns == f.func.returns

    def test_workloads_roundtrip(self):
        from repro.workloads import gat, longformer, softras, subdivnet

        for mod in (subdivnet, longformer, softras, gat):
            roundtrip(mod.make_program().func)

    def test_scheduled_roundtrip(self):
        from repro.autosched import CPU, auto_schedule
        from repro.workloads import subdivnet

        func = auto_schedule(subdivnet.make_program(), target=CPU)
        text = dump(func)
        parsed = parse_program(text)
        assert dump(parsed) == text

    def test_parsed_program_runs(self):
        """A parsed program is a real program: it executes."""
        from repro.runtime import build

        text = (
            "func saxpy(x, y, n) -> z {\n"
            "  @input x: f32[n] @cpu {\n"
            "    @input y: f32[n] @cpu {\n"
            "      @output z: f32[n] @cpu {\n"
            "        for i in 0:n {\n"
            "          z[i] = 2.0 * x[i] + y[i]\n"
            "        }\n"
            "      }\n"
            "    }\n"
            "  }\n"
            "}\n")
        func = parse_program(text)
        exe = build(func)
        x = np.arange(4, dtype=np.float32)
        np.testing.assert_allclose(exe(x, x), 3 * x)

    def test_grad_programs_roundtrip(self):
        from repro.ad import grad
        from repro.workloads import longformer

        gp = grad(longformer.make_program(), requires=["q", "k", "v"])
        # backward passes contain reversed loops, tape loads, reductions
        text = dump(gp.bwd)
        parsed = parse_program(text)
        assert dump(parsed) == text

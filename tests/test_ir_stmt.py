"""Unit tests for IR statements, matching, and functional helpers."""

import pytest

from repro.ir import (Any, AnyExpr, DataType, For, If, IntConst, Load,
                      ReduceTo, Stmt, StmtSeq, Store, Var, VarDef, Func,
                      collect_stmts, count_nodes, defined_tensors, dump,
                      find_stmt, fresh_copy, fresh_name, match, reads_of,
                      rename_tensor, seq, substitute, used_names, writes_of)


def _loop_nest():
    i, j = Var("i"), Var("j")
    store = Store("a", [i, j], Load("b", [i, j], DataType.FLOAT32) + 1)
    inner = For("j", 0, 8, store)
    outer = For("i", 0, 4, inner, label="Li")
    return VarDef("a", [4, 8], "f32", "output", "cpu",
                  VarDef("b", [4, 8], "f32", "input", "cpu", outer))


class TestConstruction:

    def test_sids_unique(self):
        a = Store("x", [], 1)
        b = Store("x", [], 1)
        assert a.sid != b.sid

    def test_reduce_op_validation(self):
        with pytest.raises(ValueError):
            ReduceTo("x", [], "^", 1)

    def test_seq_flattens(self):
        s = seq([StmtSeq([Store("x", [], 1), Store("x", [], 2)]),
                 Store("x", [], 3)])
        assert isinstance(s, StmtSeq)
        assert len(s.stmts) == 3

    def test_seq_single(self):
        st = Store("x", [], 1)
        assert seq([st]) is st

    def test_for_len(self):
        f = For("i", 2, Var("n"), Store("x", [], 1))
        assert dump(f.len) == "n - 2"


class TestCollect:

    def test_collect_and_find(self):
        tree = _loop_nest()
        loops = collect_stmts(tree, lambda s: isinstance(s, For))
        assert [l.iter_var for l in loops] == ["i", "j"]
        assert find_stmt(tree, "Li").iter_var == "i"
        with pytest.raises(KeyError):
            find_stmt(tree, "nope")

    def test_defined_tensors(self):
        tree = _loop_nest()
        defs = defined_tensors(tree)
        assert set(defs) == {"a", "b"}
        assert defs["a"].atype.is_written

    def test_reads_writes(self):
        tree = _loop_nest()
        assert set(reads_of(tree)) == {"b"}
        assert set(writes_of(tree)) == {"a"}

    def test_used_names(self):
        tree = _loop_nest()
        assert used_names(tree) == {"a", "b", "i", "j"}

    def test_fresh_name(self):
        assert fresh_name("x", {"x", "x.1"}) == "x.2"
        assert fresh_name("y", {"x"}) == "y"

    def test_count_nodes_positive(self):
        assert count_nodes(_loop_nest()) > 5


class TestTransforms:

    def test_substitute(self):
        i = Var("i")
        st = Store("a", [i], i * 2)
        out = substitute(st, {"i": IntConst(3)})
        assert match(Store("a", [IntConst(3)], IntConst(6)), out)

    def test_substitute_preserves_sid(self):
        st = Store("a", [Var("i")], 1)
        out = substitute(st, {"i": IntConst(0)})
        assert out.sid == st.sid

    def test_rename_tensor(self):
        tree = _loop_nest()
        out = rename_tensor(tree, "a", "c")
        assert "a" not in used_names(out)
        assert "c" in used_names(out)
        # reads of b unchanged
        assert set(reads_of(out)) == {"b"}

    def test_fresh_copy_new_sids(self):
        tree = _loop_nest()
        cp = fresh_copy(tree)
        orig = {s.sid for s in collect_stmts(tree, lambda s: True)}
        copied = {s.sid for s in collect_stmts(cp, lambda s: True)}
        assert not orig & copied
        assert match(tree, cp)


class TestMatch:

    def test_exact(self):
        assert match(_loop_nest(), _loop_nest())

    def test_wildcard_stmt(self):
        pat = VarDef("a", [4, 8], "f32", "output", "cpu",
                     VarDef("b", [4, 8], "f32", "input", "cpu", Any()))
        assert match(pat, _loop_nest())

    def test_wildcard_expr(self):
        i = Var("i")
        pat = Store("a", [AnyExpr()], AnyExpr())
        assert match(pat, Store("a", [i + 1], i * i))
        assert not match(pat, Store("b", [i], i))

    def test_mismatch_shape(self):
        a = VarDef("a", [4], "f32", "cache", "cpu", Any())
        b = VarDef("a", [5], "f32", "cache", "cpu", StmtSeq([]))
        assert not match(a, b)

    def test_singleton_seq_equivalence(self):
        st = Store("x", [], 1)
        assert match(StmtSeq([Store("x", [], 1)]), st)
        assert match(st, StmtSeq([Store("x", [], 1)]))

    def test_if_matching(self):
        i = Var("i")
        a = If(i < 3, Store("x", [], 1))
        b = If(i < 3, Store("x", [], 1))
        c = If(i < 3, Store("x", [], 1), Store("x", [], 2))
        assert match(a, b)
        assert not match(a, c)


class TestFunc:

    def test_interface_tensors(self):
        f = Func("f", ["a", "b"], ["y", "b"], StmtSeq([]),
                 scalar_params=["n"])
        assert f.interface_tensors() == ["a", "b", "y"]

    def test_dump_contains_header(self):
        f = Func("myfn", ["a"], ["y"], _loop_nest())
        text = dump(f)
        assert text.startswith("func myfn(a) -> y {")
        assert "for i in 0:4" in text

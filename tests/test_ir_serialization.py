"""Serialization fidelity of the persistent cache's IR format.

The printer→parser round-trip must preserve the *sid-inclusive*
structure hash — statement identity included — for every workload, raw
and optimized, because disk-cache entries are exactly these texts and a
lossy corner would poison every process on the machine.
"""

import pytest

import repro as ft
from repro.autosched import CPU, auto_schedule
from repro.cache.serial import (canonical_key, decode_entry, decode_func,
                                encode_entry, encode_func, preorder_sids)
from repro.ir import For, Func, LibCall, dump, struct_hash
from repro.ir import expr as E
from repro.ir import stmt as S
from repro.ir.parser import parse_program
from repro.pipeline import build_pipeline
from repro.workloads import gat, longformer, softras, subdivnet

_WORKLOADS = {
    "gat": gat,
    "longformer": longformer,
    "softras": softras,
    "subdivnet": subdivnet,
}


def _roundtrip_ok(func: Func):
    payload = encode_func(func)
    assert payload is not None, "workload IR must be serializable"
    back = decode_func(payload)
    # canonical (process-independent) identity is preserved exactly
    assert canonical_key(back)[0] == canonical_key(func)[0]
    # and the text re-dumps identically
    assert dump(back) == dump(func)


@pytest.mark.parametrize("name", sorted(_WORKLOADS))
class TestWorkloadRoundTrip:

    def test_staged(self, name):
        _roundtrip_ok(_WORKLOADS[name].make_program().func)

    def test_optimized(self, name):
        func = auto_schedule(_WORKLOADS[name].make_program(),
                             target=CPU, backend="c")
        _roundtrip_ok(build_pipeline("c").run(func))


class TestEntryTranslation:

    def test_entry_maps_onto_consumer_sids(self):
        func = gat.make_program().func
        sids = preorder_sids(func)
        entry = encode_entry(func, sids)
        assert entry is not None
        out = decode_entry(entry, sids)
        assert struct_hash(out, include_sids=True) == \
            struct_hash(func, include_sids=True)

    def test_sid_length_mismatch_rejected(self):
        func = gat.make_program().func
        entry = encode_entry(func, preorder_sids(func))
        with pytest.raises(ValueError):
            decode_entry(entry, ["#1"])

    def test_unknown_payload_format_rejected(self):
        func = gat.make_program().func
        payload = encode_func(func)
        payload["fmt"] = 999
        with pytest.raises(ValueError):
            decode_func(payload)

    def test_captured_constants_are_unserializable(self):
        # init_data (frontend capture()) is not in the textual format;
        # the encoder must refuse rather than drop the data
        func = gat.make_program().func
        vd = next(s for s in _walk(func.body) if isinstance(s, S.VarDef))
        vd.init_data = [1.0, 2.0]
        try:
            assert encode_func(func) is None
        finally:
            vd.init_data = None


def _walk(stmt):
    yield stmt
    for c in stmt.children_stmts():
        yield from _walk(c)


class TestPrinterParserCoverage:
    """The printed-format corners the persistent cache depends on."""

    def test_minmax_reduction_roundtrip(self):
        body = S.VarDef(
            "a", (4,), "f32", "inout", "cpu",
            S.For("i", 0, 4, S.seq([
                S.ReduceTo("a", (E.Var("i"),), "max", 1.0),
                S.ReduceTo("a", (E.Var("i"),), "min", 0.5),
            ])))
        func = Func("f", ["a"], [], body)
        back = parse_program(dump(func))
        reds = [s for s in _walk(back.body)
                if isinstance(s, S.ReduceTo)]
        assert [r.op for r in reds] == ["max", "min"]
        assert dump(back) == dump(func)

    def test_for_no_deps_and_prefer_libs_roundtrip(self):
        func = gat.make_program().func
        loop = next(s for s in _walk(func.body) if isinstance(s, For))
        loop.property.no_deps = ("x", "y")
        loop.property.prefer_libs = True
        back = parse_program(dump(func))
        loop2 = next(s for s in _walk(back.body) if isinstance(s, For))
        assert loop2.property.no_deps == ("x", "y")
        assert loop2.property.prefer_libs

    def test_libcall_attrs_roundtrip(self):
        func = softras.make_program().func
        lib = LibCall("matmul", ("c",), ("a", "b"),
                      {"trans_a": True, "trans_b": False,
                       "accumulate": True})
        body = S.StmtSeq([func.body, lib])
        f2 = Func("withlib", func.params, func.returns, body,
                  scalar_params=func.scalar_params)
        back = parse_program(dump(f2))
        lib2 = next(s for s in _walk(back.body)
                    if isinstance(s, LibCall))
        assert lib2.attrs == {"trans_a": True, "trans_b": False,
                              "accumulate": True}

    def test_pinned_vardef_roundtrip(self):
        func = gat.make_program().func
        vd = next(s for s in _walk(func.body) if isinstance(s, S.VarDef))
        vd.pinned = True
        try:
            back = parse_program(dump(func))
            vd2 = next(s for s in _walk(back.body)
                       if isinstance(s, S.VarDef) and s.name == vd.name)
            assert vd2.pinned
        finally:
            vd.pinned = False

"""Tests for libop — operators written in the DSL, fully inlined."""

import numpy as np
import pytest

import repro as ft
from repro import libop
from repro.ad import GradExecutable, grad
from repro.ir import For, LibCall, collect_stmts


class TestElementwise:

    def test_add_dimension_free(self, rng):
        @ft.transform
        def f(a: ft.Tensor[(2, 3, 4), "f32", "input"],
              b: ft.Tensor[(2, 3, 4), "f32", "input"]):
            return libop.add(a, b)

        x = rng.standard_normal((2, 3, 4)).astype(np.float32)
        y = rng.standard_normal((2, 3, 4)).astype(np.float32)
        np.testing.assert_allclose(f(x, y), x + y, rtol=1e-6)
        # inlining produced plain nested loops, no call nodes
        assert len(collect_stmts(f.func.body,
                                 lambda s: isinstance(s, For))) == 3

    def test_broadcast_scalar(self, rng):
        @ft.transform
        def f(a: ft.Tensor[(3, 4), "f32", "input"]):
            return libop.mul(a, 2.5)

        x = rng.standard_normal((3, 4)).astype(np.float32)
        np.testing.assert_allclose(f(x), 2.5 * x, rtol=1e-6)

    def test_div_sub(self, rng):
        @ft.transform
        def f(a: ft.Tensor[(5,), "f32", "input"],
              b: ft.Tensor[(5,), "f32", "input"]):
            return libop.div(libop.sub(a, b), b)

        x = rng.standard_normal(5).astype(np.float32)
        y = rng.standard_normal(5).astype(np.float32) + 3.0
        np.testing.assert_allclose(f(x, y), (x - y) / y, rtol=1e-5)

    def test_unary_chain(self, rng):
        @ft.transform
        def f(a: ft.Tensor[(6,), "f32", "input"]):
            return libop.relu(libop.tanh(a))

        x = rng.standard_normal(6).astype(np.float32)
        np.testing.assert_allclose(f(x), np.maximum(np.tanh(x), 0),
                                   rtol=1e-5)

    def test_sigmoid_exp_abs_neg(self, rng):
        @ft.transform
        def f(a: ft.Tensor[(4,), "f32", "input"]):
            return (libop.sigmoid(a), libop.exp(a), libop.abs(a),
                    libop.neg(a))

        x = rng.standard_normal(4).astype(np.float32)
        s, e, ab, n = f(x)
        np.testing.assert_allclose(s, 1 / (1 + np.exp(-x)), rtol=1e-5)
        np.testing.assert_allclose(e, np.exp(x), rtol=1e-5)
        np.testing.assert_allclose(ab, np.abs(x), rtol=1e-6)
        np.testing.assert_allclose(n, -x, rtol=1e-6)

    def test_assign_into_view(self, rng):
        @ft.transform
        def f(a: ft.Tensor[(4, 6), "f32", "input"]):
            y = ft.zeros((4, 6), "f32")
            libop.assign(y[1], a[2])
            return y

        x = rng.standard_normal((4, 6)).astype(np.float32)
        out = f(x)
        np.testing.assert_allclose(out[1], x[2])
        assert np.all(out[0] == 0)


class TestReductions:

    def test_sum_all(self, rng):
        @ft.transform
        def f(a: ft.Tensor[(3, 5), "f32", "input"]):
            return libop.sum_all(a)

        x = rng.standard_normal((3, 5)).astype(np.float32)
        assert abs(float(f(x)) - x.sum()) < 1e-4

    def test_sum_last(self, rng):
        @ft.transform
        def f(a: ft.Tensor[(3, 5), "f32", "input"]):
            return libop.sum_last(a)

        x = rng.standard_normal((3, 5)).astype(np.float32)
        np.testing.assert_allclose(f(x), x.sum(axis=1), rtol=1e-5)

    def test_max_mean(self, rng):
        @ft.transform
        def f(a: ft.Tensor[(7,), "f32", "input"]):
            return libop.max_all(a), libop.mean_all(a)

        x = rng.standard_normal(7).astype(np.float32)
        mx, mean = f(x)
        assert abs(float(mx) - x.max()) < 1e-6
        assert abs(float(mean) - x.mean()) < 1e-5


class TestMatmulSoftmax:

    def test_matmul(self, rng):
        @ft.transform
        def f(a: ft.Tensor[(4, 6), "f32", "input"],
              b: ft.Tensor[(6, 3), "f32", "input"]):
            return libop.matmul(a, b)

        A = rng.standard_normal((4, 6)).astype(np.float32)
        B = rng.standard_normal((6, 3)).astype(np.float32)
        np.testing.assert_allclose(f(A, B), A @ B, rtol=1e-4)

    def test_matmul_as_lib(self, rng):
        """The inlined matmul is recognised by auto_use_lib."""
        @ft.transform
        def f(a: ft.Tensor[(4, 6), "f32", "input"],
              b: ft.Tensor[(6, 3), "f32", "input"]):
            return libop.matmul(a, b)

        from repro.autosched import auto_schedule

        opt = auto_schedule(f, passes=["use_lib"])
        assert collect_stmts(opt.body, lambda s: isinstance(s, LibCall))

    def test_transpose(self, rng):
        @ft.transform
        def f(a: ft.Tensor[(3, 5), "f32", "input"]):
            return libop.transpose2d(a)

        x = rng.standard_normal((3, 5)).astype(np.float32)
        np.testing.assert_allclose(f(x), x.T)

    def test_softmax_2d(self, rng):
        @ft.transform
        def f(a: ft.Tensor[(4, 7), "f32", "input"]):
            return libop.softmax(a)

        x = rng.standard_normal((4, 7)).astype(np.float32)
        ref = np.exp(x - x.max(1, keepdims=True))
        ref /= ref.sum(1, keepdims=True)
        np.testing.assert_allclose(f(x), ref, rtol=1e-5)

    def test_softmax_3d(self, rng):
        @ft.transform
        def f(a: ft.Tensor[(2, 3, 5), "f32", "input"]):
            return libop.softmax(a)

        x = rng.standard_normal((2, 3, 5)).astype(np.float32)
        ref = np.exp(x - x.max(-1, keepdims=True))
        ref /= ref.sum(-1, keepdims=True)
        np.testing.assert_allclose(f(x), ref, rtol=1e-5)


class TestComposability:
    """libop composes with AD and schedules — the paper's key point about
    implementing operators in the DSL instead of native code."""

    def test_grad_through_libop(self, rng):
        @ft.transform
        def f(a: ft.Tensor[(3, 4), "f32", "input"],
              b: ft.Tensor[(4, 2), "f32", "input"]):
            return libop.softmax(libop.matmul(a, b))

        gp = grad(f)
        exe = GradExecutable(gp)
        A = rng.standard_normal((3, 4)).astype(np.float32)
        B = rng.standard_normal((4, 2)).astype(np.float32)
        y = exe(A, B)
        ref = A @ B
        ref = np.exp(ref - ref.max(1, keepdims=True))
        ref /= ref.sum(1, keepdims=True)
        np.testing.assert_allclose(y, ref, rtol=1e-4)
        # grad of sum(softmax(...)) is ~0 row-wise; use random out grads
        og = rng.standard_normal(y.shape).astype(np.float32)
        ga, gb = exe.backward(out_grads={list(gp.output_grads)[0]: og})
        # finite-difference spot check on one element of A
        eps = 1e-2

        def loss(Am):
            z = Am @ B
            z = np.exp(z - z.max(1, keepdims=True))
            z /= z.sum(1, keepdims=True)
            return float((z * og).sum())

        Ap, Am_ = A.copy(), A.copy()
        Ap[1, 2] += eps
        Am_[1, 2] -= eps
        num = (loss(Ap) - loss(Am_)) / (2 * eps)
        assert abs(num - ga[1, 2]) < 5e-2

    def test_schedule_after_libop(self, rng):
        @ft.transform
        def f(a: ft.Tensor[(8, 8), "f32", "input"],
              b: ft.Tensor[(8, 8), "f32", "input"]):
            return libop.add(a, b)

        from repro.autosched import auto_schedule
        from repro.runtime import build

        opt = auto_schedule(f)
        x = rng.standard_normal((8, 8)).astype(np.float32)
        y = rng.standard_normal((8, 8)).astype(np.float32)
        np.testing.assert_allclose(build(opt)(x, y), x + y, rtol=1e-6)

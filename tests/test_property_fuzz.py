"""Property-based tests (hypothesis): randomly generated IR programs are
run through backends, lowering passes and randomly chosen schedules, and
every path must agree with the reference interpreter.

This is the repository's semantic safety net: a schedule that survives the
dependence checks MUST NOT change results, on ANY generated program.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidSchedule
from repro.ir import (DataType, For, Func, If, IntConst, Load, ReduceTo,
                      Store, StmtSeq, Var, VarDef, collect_stmts, seq)
from repro.passes import lower
from repro.runtime import build
from repro.schedule import Schedule

N, M = 5, 4  # fixed tensor extents (small => interp is fast)


# ---------------------------------------------------------------------------
# random program generation
# ---------------------------------------------------------------------------


def _index(draw, iters, dim_size):
    """A random always-in-bounds index expression."""
    kind = draw(st.integers(0, 3))
    if kind == 0 or not iters:
        return IntConst(draw(st.integers(0, dim_size - 1)))
    it = Var(draw(st.sampled_from(iters)))
    if kind == 1:
        return it % dim_size
    if kind == 2:
        return (it + draw(st.integers(0, 3))) % dim_size
    return (it * draw(st.integers(1, 2)) + draw(
        st.integers(0, 2))) % dim_size


def _scalar_expr(draw, iters, depth=0):
    """A random float expression over the tensors a, b, y."""
    kind = draw(st.integers(0, 6 if depth < 2 else 2))
    if kind == 0:
        return draw(st.sampled_from(
            [0.5, 1.0, 2.0, -1.5, 0.25]))
    if kind == 1:
        return Load("a", [_index(draw, iters, N),
                          _index(draw, iters, M)], DataType.FLOAT32)
    if kind == 2:
        return Load("b", [_index(draw, iters, N)], DataType.FLOAT32)
    lhs = _scalar_expr(draw, iters, depth + 1)
    rhs = _scalar_expr(draw, iters, depth + 1)
    from repro.ir import wrap

    lhs, rhs = wrap(lhs), wrap(rhs)
    if kind == 3:
        return lhs + rhs
    if kind == 4:
        return lhs - rhs
    if kind == 5:
        return lhs * rhs
    return lhs * 0.5 + rhs


def _stmt(draw, iters, depth):
    kind = draw(st.integers(0, 5))
    if kind <= 1 and depth < 3:  # a loop
        it = f"i{len(iters)}_{draw(st.integers(0, 9))}"
        size = draw(st.sampled_from([N, M, 3]))
        body = _body(draw, iters + [it], depth + 1)
        return For(it, 0, size, body)
    if kind == 2 and iters:  # a branch on an iterator
        it = Var(draw(st.sampled_from(iters)))
        cond = it < draw(st.integers(1, 4))
        then = _body(draw, iters, depth + 1)
        els = _body(draw, iters, depth + 1) \
            if draw(st.booleans()) else None
        return If(cond, then, els)
    target_idx = [_index(draw, iters, N), _index(draw, iters, M)]
    value = _scalar_expr(draw, iters)
    if kind == 3:
        return ReduceTo("y", target_idx, "+", value)
    return Store("y", target_idx, value)


def _body(draw, iters, depth):
    n = draw(st.integers(1, 3 if depth < 2 else 2))
    return seq([_stmt(draw, iters, depth) for _ in range(n)])


@st.composite
def programs(draw):
    body = _body(draw, [], 0)
    body = VarDef("y", [N, M], "f32", "output", "cpu", body)
    body = VarDef("b", [N], "f32", "input", "cpu", body)
    body = VarDef("a", [N, M], "f32", "input", "cpu", body)
    return Func("fuzz", ["a", "b"], ["y"], body)


def _run(func, backend="interp"):
    exe = build(func, backend=backend)
    rng = np.random.default_rng(0)
    a = rng.standard_normal((N, M)).astype(np.float32)
    b = rng.standard_normal(N).astype(np.float32)
    return exe(a, b)


# ---------------------------------------------------------------------------
# properties
# ---------------------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(programs())
def test_backends_agree(func):
    """interp == pycode == C on arbitrary programs."""
    ref = _run(func, "interp")
    np.testing.assert_allclose(_run(func, "pycode"), ref, rtol=1e-5,
                               atol=1e-5)
    np.testing.assert_allclose(_run(func, "c"), ref, rtol=1e-5,
                               atol=1e-5)


@settings(max_examples=30, deadline=None)
@given(programs())
def test_lowering_preserves_semantics(func):
    ref = _run(func, "interp")
    np.testing.assert_allclose(_run(lower(func), "interp"), ref,
                               rtol=1e-5, atol=1e-5)


@settings(max_examples=25, deadline=None)
@given(programs(), st.randoms(use_true_random=False))
def test_random_schedules_preserve_semantics(func, rnd):
    """Any sequence of transformations the dependence checker admits
    leaves the program's results unchanged."""
    ref = _run(func, "interp")
    s = Schedule(func)
    for _step in range(4):
        loops = s.loops()
        if not loops:
            break
        loop = rnd.choice(loops)
        move = rnd.choice(["split", "reorder", "fuse", "parallelize",
                           "vectorize", "unroll", "fission", "merge"])
        try:
            if move == "split":
                s.split(loop.sid, factor=rnd.choice([2, 3]))
            elif move == "reorder":
                from repro.schedule.common import only_stmt_of

                inner = only_stmt_of(s.find(loop.sid))
                if isinstance(inner, For):
                    s.reorder([inner.sid, loop.sid])
            elif move == "merge":
                from repro.schedule.common import only_stmt_of

                inner = only_stmt_of(s.find(loop.sid))
                if isinstance(inner, For):
                    s.merge(loop.sid, inner.sid)
            elif move == "fuse":
                other = rnd.choice(loops)
                if other.sid != loop.sid:
                    s.fuse(loop.sid, other.sid)
            elif move == "parallelize":
                s.parallelize(loop.sid, "openmp")
            elif move == "vectorize":
                s.vectorize(loop.sid)
            elif move == "unroll":
                s.unroll(loop.sid)
            elif move == "fission":
                body = s.find(loop.sid).body
                kids = body.stmts if isinstance(body, StmtSeq) else []
                if len(kids) >= 2:
                    s.fission(loop.sid, after=kids[0].sid)
        except InvalidSchedule:
            continue
    for backend in ("interp", "pycode", "c"):
        np.testing.assert_allclose(
            _run(s.func, backend), ref, rtol=1e-4, atol=1e-5,
            err_msg=f"{backend} after: {'; '.join(s.log)}")


@settings(max_examples=20, deadline=None)
@given(programs())
def test_parser_roundtrip_random_programs(func):
    from repro.ir import dump
    from repro.ir.parser import parse_program

    text = dump(func)
    assert dump(parse_program(text)) == text


@settings(max_examples=20, deadline=None)
@given(programs())
def test_autoschedule_preserves_semantics(func):
    from repro.autosched import CPU, auto_schedule

    ref = _run(func, "interp")
    opt = auto_schedule(func, target=CPU)
    np.testing.assert_allclose(_run(opt, "pycode"), ref, rtol=1e-4,
                               atol=1e-5)

"""Automatic differentiation tests (paper section 5): correctness against
finite differences, selective materialization decisions, tape shapes, and
error reporting."""

import numpy as np
import pytest

import repro as ft
from repro.ad import GradExecutable, grad
from repro.errors import ADError


def fd_grad(exe, inputs, scalars, gi, eps=1e-3):
    """Central finite differences of sum(outputs) w.r.t. inputs[gi]."""
    def total(o):
        if isinstance(o, tuple):
            return sum(float(np.sum(v)) for v in o)
        return float(np.sum(o))

    x = inputs[gi]
    num = np.zeros_like(x, dtype=np.float64)
    it = np.nditer(x, flags=["multi_index"])
    for _ in it:
        idx = it.multi_index
        xp = [a.copy() for a in inputs]
        xp[gi][idx] += eps
        xm = [a.copy() for a in inputs]
        xm[gi][idx] -= eps
        num[idx] = (total(exe(*xp, **scalars)) -
                    total(exe(*xm, **scalars))) / (2 * eps)
    return num


def check_all_grads(program, inputs, scalars=None, tapes="selective",
                    rtol=3e-2, atol=2e-3):
    scalars = scalars or {}
    gp = grad(program, tapes=tapes)
    exe = GradExecutable(gp)
    exe(*inputs, **scalars)
    grads = exe.backward()
    if not isinstance(grads, tuple):
        grads = (grads,)
    for gi, g in enumerate(grads):
        num = fd_grad(exe, [a.copy() for a in inputs], scalars, gi)
        np.testing.assert_allclose(g, num, rtol=rtol, atol=atol,
                                   err_msg=f"grad of input {gi}")
    return gp


class TestBasicGradients:

    def test_elementwise_chain(self, rng):
        @ft.transform
        def f(a: ft.Tensor[("n",), "f32", "input"],
              b: ft.Tensor[("n",), "f32", "input"]):
            y = ft.empty(("n",), "f32")
            for i in range(a.shape(0)):
                y[i] = a[i] * b[i] + a[i] * a[i]
            return y

        check_all_grads(f, [rng.standard_normal(5).astype(np.float32),
                            rng.standard_normal(5).astype(np.float32)])

    def test_fig15_recompute(self, rng):
        """Paper Fig. 15: the cheap scalar t is recomputed, not taped."""
        @ft.transform
        def f(a: ft.Tensor[("n",), "f32", "input"],
              b: ft.Tensor[("n",), "f32", "input"],
              c: ft.Tensor[("n",), "f32", "input"],
              d: ft.Tensor[("n",), "f32", "input"]):
            y = ft.empty(("n",), "f32")
            z = ft.empty(("n",), "f32")
            for i in range(a.shape(0)):
                t = a[i] * b[i]
                y[i] = t * c[i]
                z[i] = t * d[i]
            return y, z

        xs = [rng.standard_normal(4).astype(np.float32) for _ in range(4)]
        gp = check_all_grads(f, xs)
        assert "t" in gp.materialization.recompute
        assert not gp.tape_names  # nothing materialised

    def test_fig15_forced_tape(self, rng):
        @ft.transform
        def f(a: ft.Tensor[("n",), "f32", "input"],
              b: ft.Tensor[("n",), "f32", "input"]):
            y = ft.empty(("n",), "f32")
            for i in range(a.shape(0)):
                t = a[i] * b[i]
                y[i] = t * t
            return y

        xs = [rng.standard_normal(4).astype(np.float32) for _ in range(2)]
        gp = check_all_grads(f, xs, tapes="all")
        assert any(t.endswith(".tape") for t in gp.tape_names)
        # one version per loop iteration: tape is n-sized (paper 5.1/5.2)
        from repro.ir import defined_tensors, dump

        tape_def = defined_tensors(gp.fwd.body)[gp.tape_names[0]]
        assert dump(tape_def.shape[0]) == "n"

    def test_reduction_grad(self, rng):
        @ft.transform
        def f(a: ft.Tensor[("n", "m"), "f32", "input"]):
            y = ft.zeros(("n",), "f32")
            for i in range(a.shape(0)):
                for j in range(a.shape(1)):
                    y[i] += a[i, j] * a[i, j]
            return y

        check_all_grads(f, [rng.standard_normal((3, 4))
                            .astype(np.float32)])

    def test_intrinsics(self, rng):
        @ft.transform
        def f(a: ft.Tensor[("n",), "f32", "input"]):
            y = ft.empty(("n",), "f32")
            for i in range(a.shape(0)):
                y[i] = ft.exp(a[i]) + ft.tanh(a[i]) * ft.sigmoid(a[i]) \
                    + ft.sqrt(a[i] * a[i] + 1.0)
            return y

        check_all_grads(f, [rng.standard_normal(5).astype(np.float32)])

    def test_abs_and_select(self, rng):
        @ft.transform
        def f(a: ft.Tensor[("n",), "f32", "input"]):
            y = ft.empty(("n",), "f32")
            for i in range(a.shape(0)):
                if a[i] > 0.0:
                    y[i] = a[i] * 2.0
                else:
                    y[i] = ft.abs(a[i]) * 3.0
            return y

        x = rng.standard_normal(6).astype(np.float32)
        x[np.abs(x) < 0.1] = 0.5  # keep away from the kink
        check_all_grads(f, [x])

    def test_division(self, rng):
        @ft.transform
        def f(a: ft.Tensor[("n",), "f32", "input"],
              b: ft.Tensor[("n",), "f32", "input"]):
            y = ft.empty(("n",), "f32")
            for i in range(a.shape(0)):
                y[i] = a[i] / (b[i] * b[i] + 1.0)
            return y

        check_all_grads(f, [rng.standard_normal(4).astype(np.float32),
                            rng.standard_normal(4).astype(np.float32)])

    def test_indirect_gather_scatter(self, rng):
        """Gradients flow through data-dependent indexing (GAT-style)."""
        @ft.transform
        def f(idx: ft.Tensor[(6,), "i32", "input"],
              e: ft.Tensor[(4, 3), "f32", "input"]):
            y = ft.zeros((6, 3), "f32")
            for i in range(6):
                for k in range(3):
                    y[i, k] += e[idx[i], k] * 2.0
            return y

        idx = rng.integers(0, 4, 6).astype(np.int32)
        e = rng.standard_normal((4, 3)).astype(np.float32)
        gp = grad(f)
        exe = GradExecutable(gp)
        exe(idx, e)
        g = exe.backward()
        ref = np.zeros((4, 3), np.float32)
        for i in range(6):
            ref[idx[i]] += 2.0
        np.testing.assert_allclose(g, ref)


class TestSoftmaxPattern:
    """The Longformer softmax inner kernel: max-reduce + exp + normalise."""

    def _softmax(self):
        @ft.transform
        def softmax(x: ft.Tensor[("n", "m"), "f32", "input"]):
            y = ft.empty(("n", "m"), "f32")
            for i in range(x.shape(0)):
                mx = -float("inf")
                for j in range(x.shape(1)):
                    mx = ft.max(mx, x[i, j])
                s = 0.0
                e = ft.empty(("m",), "f32")
                for j in range(x.shape(1)):
                    e[j] = ft.exp(x[i, j] - mx)
                    s += e[j]
                for j in range(x.shape(1)):
                    y[i, j] = e[j] / s
            return y

        return softmax

    def test_forward_and_grad(self, rng):
        softmax = self._softmax()
        x = rng.standard_normal((3, 5)).astype(np.float32)
        gp = grad(softmax)
        exe = GradExecutable(gp)
        y = exe(x)
        ref = np.exp(x - x.max(1, keepdims=True))
        ref /= ref.sum(1, keepdims=True)
        np.testing.assert_allclose(y, ref, rtol=1e-5)

        og = rng.standard_normal((3, 5)).astype(np.float32)
        g = exe.backward(out_grads={"y": og})
        gref = ref * (og - (og * ref).sum(1, keepdims=True))
        np.testing.assert_allclose(g, gref, rtol=1e-3, atol=1e-5)

    def test_max_target_is_taped(self):
        softmax = self._softmax()
        gp = grad(softmax)
        assert any(t.startswith("mx") for t in gp.tape_names)

    def test_policies_agree(self, rng):
        softmax = self._softmax()
        x = rng.standard_normal((2, 4)).astype(np.float32)
        og = rng.standard_normal((2, 4)).astype(np.float32)
        results = []
        for policy in ("selective", "all"):
            exe = GradExecutable(grad(softmax, tapes=policy))
            exe(x)
            results.append(exe.backward(out_grads={"y": og}))
        np.testing.assert_allclose(results[0], results[1], rtol=1e-5)

    def test_selective_tapes_fewer_than_all(self):
        """Selective materialization stores no more than tape-everything
        (paper 5.2 / Fig. 18)."""
        softmax = self._softmax()
        sel = grad(softmax, tapes="selective")
        all_ = grad(softmax, tapes="all")
        assert len(sel.tape_names) <= len(all_.tape_names)


class TestMaterializationChoice:

    def test_expensive_intermediate_taped(self, rng):
        """A reduction-produced intermediate is taped, not recomputed."""
        @ft.transform
        def f(a: ft.Tensor[("n", "m"), "f32", "input"],
              b: ft.Tensor[("n",), "f32", "input"]):
            y = ft.empty(("n",), "f32")
            for i in range(a.shape(0)):
                s = 0.0
                for j in range(a.shape(1)):
                    s += a[i, j] * a[i, j]
                y[i] = s * b[i]
            return y

        gp = check_all_grads(
            f, [rng.standard_normal((3, 4)).astype(np.float32),
                rng.standard_normal(3).astype(np.float32)])
        assert "s" in gp.materialization.tape
        assert "s" not in gp.materialization.recompute

    def test_explicit_tape_list(self, rng):
        @ft.transform
        def f(a: ft.Tensor[("n",), "f32", "input"],
              b: ft.Tensor[("n",), "f32", "input"]):
            y = ft.empty(("n",), "f32")
            for i in range(a.shape(0)):
                t = a[i] * b[i]
                y[i] = t * t
            return y

        gp = grad(f, tapes=["t"])
        assert gp.tape_names == ["t.tape"]

    def test_requires_subset(self, rng):
        @ft.transform
        def f(a: ft.Tensor[("n",), "f32", "input"],
              b: ft.Tensor[("n",), "f32", "input"]):
            y = ft.empty(("n",), "f32")
            for i in range(a.shape(0)):
                y[i] = a[i] * b[i]
            return y

        gp = grad(f, requires=["a"])
        exe = GradExecutable(gp)
        a = rng.standard_normal(4).astype(np.float32)
        b = rng.standard_normal(4).astype(np.float32)
        exe(a, b)
        g = exe.backward()
        np.testing.assert_allclose(g, b, rtol=1e-5)


class TestErrors:

    def test_bad_requires(self):
        @ft.transform
        def f(a: ft.Tensor[(4,), "f32", "input"]):
            y = ft.empty((4,), "f32")
            for i in range(4):
                y[i] = a[i]
            return y

        with pytest.raises(ADError):
            grad(f, requires=["nope"])

    def test_multiplicative_reduction_rejected(self):
        @ft.transform
        def f(a: ft.Tensor[(4,), "f32", "input"],
              y: ft.Tensor[(), "f32", "inout"]):
            for i in range(4):
                y[...] *= a[i]

        with pytest.raises(ADError):
            grad(f, provides=["y"])

    def test_multi_version_rejected(self):
        """Write-read-overwrite within one iteration needs multi-version
        tapes, which this reproduction rejects explicitly."""
        @ft.transform
        def f(a: ft.Tensor[("n",), "f32", "input"]):
            y = ft.empty(("n",), "f32")
            t = ft.empty((), "f32")
            for i in range(a.shape(0)):
                t[...] = a[i] * a[i]
                y[i] = t * 2.0
                t[...] = a[i] + 1.0  # second live version
                y[i] += t * t
            return y

        with pytest.raises(ADError):
            grad(f, tapes="all")


class TestGradOfScheduled:
    """AD output is plain IR: it composes with schedules (paper 5.1)."""

    def test_backward_is_parallelizable(self, rng):
        @ft.transform
        def f(a: ft.Tensor[("n",), "f32", "input"]):
            y = ft.empty(("n",), "f32")
            for i in range(a.shape(0)):
                y[i] = a[i] * a[i]
            return y

        gp = grad(f)
        from repro.ir import For, collect_stmts
        from repro.schedule import Schedule

        s = Schedule(gp.bwd)
        loops = s.loops()
        # the main adjoint loop parallelises (iterations independent)
        main = [l for l in loops if l.iter_var.startswith("i")]
        s.parallelize(main[-1].sid, "openmp")

    def test_grad_after_schedule(self, rng):
        @ft.transform
        def f(a: ft.Tensor[(8,), "f32", "input"]):
            y = ft.empty((8,), "f32")
            ft.label("L")
            for i in range(8):
                y[i] = a[i] * 3.0
            return y

        from repro.schedule import Schedule

        s = Schedule(f)
        s.split("L", factor=4)
        gp = grad(s.func)
        exe = GradExecutable(gp)
        exe(rng.standard_normal(8).astype(np.float32))
        g = exe.backward()
        np.testing.assert_allclose(g, np.full(8, 3.0), rtol=1e-6)

"""The persistent cross-process compile cache (repro.cache).

The suite runs with ``REPRO_NO_DISK_CACHE=1`` (see conftest); tests here
opt in by re-pointing ``REPRO_CACHE_DIR`` at a tmp_path, either in this
process via monkeypatch or in subprocesses for the cross-process
guarantees.
"""

import json
import os
import subprocess
import sys

import pytest

import repro as ft
from repro.cache import keys as cache_keys
from repro.ir import struct_hash
from repro.cache.serial import canonical_key, preorder_sids
from repro.cache.store import DiskCache, get_store
from repro.pipeline import build_pipeline, clear_pass_cache
from repro.pipeline.manager import pass_cache_stats
from repro.workloads import gat

_SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src")


@pytest.fixture
def disk_env(monkeypatch, tmp_path):
    """Point the persistent cache at a fresh directory and enable it."""
    monkeypatch.delenv("REPRO_NO_DISK_CACHE", raising=False)
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    from repro.codegen import ccode

    ccode._invalidate_cache_dir()
    clear_pass_cache()
    yield str(tmp_path / "cache")
    ccode._invalidate_cache_dir()
    clear_pass_cache()


def _subenv(cache_dir, **extra):
    env = {k: v for k, v in os.environ.items()
           if not k.startswith("REPRO_")}
    env["PYTHONPATH"] = _SRC
    env["REPRO_CACHE_DIR"] = cache_dir
    env["REPRO_NO_DAEMON"] = "1"
    env.update(extra)
    return env


def _run_py(code, cache_dir, **extra):
    return subprocess.run([sys.executable, "-c", code], text=True,
                          capture_output=True, check=True,
                          env=_subenv(cache_dir, **extra))


class TestStore:

    def test_pipeline_populates_and_serves(self, disk_env):
        func = gat.make_program().func
        out1 = build_pipeline("pycode").run(func)
        store = get_store()
        assert store is not None
        assert store.disk_stats()["ir_entries"] >= 1
        # wipe memory: the same compile must now come from disk
        clear_pass_cache()
        before = pass_cache_stats()["disk_hits"]
        out2 = build_pipeline("pycode").run(gat.make_program().func)
        assert pass_cache_stats()["disk_hits"] > before
        assert struct_hash(out2) == struct_hash(out1)

    def test_corrupt_entry_is_a_miss_not_a_crash(self, disk_env):
        build_pipeline("pycode").run(gat.make_program().func)
        store = get_store()
        entries = []
        for dirpath, _dirs, files in os.walk(store.ir_dir()):
            entries += [os.path.join(dirpath, f) for f in files
                        if f.endswith(".json")]
        assert entries
        for path in entries:  # truncate one, garbage the rest
            with open(path, "w") as f:
                f.write('{"fmt": 1, "input_sids": [')
        clear_pass_cache()
        before = ft.compile_cache_stats()["disk"]["ir_corrupt"]
        out = build_pipeline("pycode").run(gat.make_program().func)
        assert out is not None  # recompiled cleanly
        assert ft.compile_cache_stats()["disk"]["ir_corrupt"] > before
        # every corrupt entry was dropped (and possibly re-written with
        # good content by the recompile); none of the garbage survives
        for path in entries:
            if os.path.exists(path):
                with open(path) as f:
                    json.load(f)  # valid again

    def test_opt_out_env_disables_everything(self, disk_env, monkeypatch):
        monkeypatch.setenv("REPRO_NO_DISK_CACHE", "1")
        assert get_store() is None
        build_pipeline("pycode").run(gat.make_program().func)
        assert not os.path.exists(os.path.join(disk_env, "ir"))

    def test_schema_change_invalidates(self, disk_env, monkeypatch):
        build_pipeline("pycode").run(gat.make_program().func)
        store = get_store()
        n = store.disk_stats()["ir_entries"]
        assert n >= 1
        # a compiler-source change moves the namespace: nothing is
        # served, and recompiling writes fresh entries beside the old
        monkeypatch.setattr(cache_keys, "_SCHEMA_TAG",
                            "v1-py0.0-deadbeefdeadbeefdeadbeef")
        clear_pass_cache()
        before = pass_cache_stats()["disk_hits"]
        build_pipeline("pycode").run(gat.make_program().func)
        assert pass_cache_stats()["disk_hits"] == before
        assert store.disk_stats()["ir_entries"] > n

    def test_lru_gc_respects_budget_and_recency(self, disk_env):
        store = DiskCache(os.path.join(disk_env))
        d = os.path.join(store.root, "ir", "vtest", "aa")
        os.makedirs(d)
        for i in range(10):
            with open(os.path.join(d, f"e{i}.json"), "w") as f:
                f.write("x" * 1000)
            os.utime(os.path.join(d, f"e{i}.json"), (i, i))
        evicted = store.gc(budget=4500)
        assert evicted == 6
        survivors = sorted(os.listdir(d))
        assert survivors == ["e6.json", "e7.json", "e8.json", "e9.json"]

    def test_clear_removes_all(self, disk_env):
        build_pipeline("pycode").run(gat.make_program().func)
        store = get_store()
        assert store.disk_stats()["ir_entries"] >= 1
        store.clear()
        assert store.disk_stats()["total_bytes"] == 0


class TestCanonicalKeys:

    def test_canonical_key_ignores_absolute_sids(self):
        # two stagings of one program mint different sids but must agree
        # on the canonical hash (this is what makes cross-process disk
        # keys possible at all)
        f1 = gat.make_program().func
        f2 = gat.make_program().func
        assert preorder_sids(f1) != preorder_sids(f2)
        assert canonical_key(f1)[0] == canonical_key(f2)[0]

    def test_schema_tag_tracks_compiler_sources(self):
        tag = cache_keys.schema_tag()
        assert tag.startswith(f"v{cache_keys.CACHE_FORMAT}-py")
        assert cache_keys.source_digest() in tag


_COMPILE_SNIPPET = """
import json
import repro as ft
from repro.runtime.driver import build
from repro.workloads import gat
exe = build(gat.make_program(), backend="c")
stats = ft.compile_cache_stats()
print(json.dumps({
    "pass": stats["passes"], "disk": stats["disk"],
}))
"""


class TestCrossProcess:
    """The acceptance bar: a fresh process building an already-cached
    workload performs no lowering passes and no compiler invocation."""

    def test_cold_then_warm_process(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        cold = json.loads(_run_py(_COMPILE_SNIPPET, cache_dir).stdout)
        assert cold["pass"]["misses"] > 0
        assert cold["disk"]["gcc_runs"] == 1
        assert cold["disk"]["ir_stores"] >= 1

        warm = json.loads(_run_py(_COMPILE_SNIPPET, cache_dir).stdout)
        assert warm["pass"]["misses"] == 0, \
            "warm process must not execute any lowering pass"
        assert warm["pass"]["disk_hits"] > 0
        assert warm["disk"]["gcc_runs"] == 0, \
            "warm process must not invoke the C compiler"
        assert warm["disk"]["native_hits"] >= 1
        assert warm["disk"]["ir_hits"] >= 1

    def test_two_processes_racing_one_key(self, tmp_path):
        # both processes compile the same workload into an empty cache
        # concurrently: no crashes, both correct, cache consistent
        cache_dir = str(tmp_path / "cache")
        code = _COMPILE_SNIPPET + """
import numpy as np
data = gat.make_data()
out = exe(data["indptr"], data["indices"], data["h"], data["wmat"],
          data["att_s"], data["att_d"])
np.testing.assert_allclose(out, gat.reference(data), rtol=1e-3,
                           atol=1e-4)
"""
        env = _subenv(cache_dir)
        procs = [subprocess.Popen([sys.executable, "-c", code],
                                  text=True, stdout=subprocess.PIPE,
                                  stderr=subprocess.PIPE, env=env)
                 for _ in range(2)]
        for p in procs:
            out, err = p.communicate(timeout=300)
            assert p.returncode == 0, err
        # and a third process is fully warm
        warm = json.loads(_run_py(_COMPILE_SNIPPET, cache_dir).stdout)
        assert warm["pass"]["misses"] == 0
        assert warm["disk"]["gcc_runs"] == 0

"""Tests for the extension features beyond the paper's core system:
dilated Longformer attention, the evolutionary tuner, and multi-layer
composition of DSL programs."""

import numpy as np
import pytest

import repro as ft
from repro.autosched import CPU, EvolutionaryTuner, auto_schedule
from repro.runtime import build
from repro.workloads import longformer, subdivnet


class TestDilatedLongformer:

    def test_matches_reference(self, rng):
        data = longformer.make_data(seq_len=40, feat_len=8, w=3)
        prog = longformer.make_dilated_program()
        for dil in (1, 2, 3):
            ref = longformer.reference_dilated(data, dil)
            out = build(prog)(data["q"], data["k"], data["v"],
                              w=data["w"], dil=dil)
            np.testing.assert_allclose(out, ref, rtol=1e-3, atol=1e-4)

    def test_dilation_one_equals_plain(self, rng):
        data = longformer.make_data(seq_len=32, feat_len=8, w=4)
        plain = build(longformer.make_program())(
            data["q"], data["k"], data["v"], w=data["w"])
        dil = build(longformer.make_dilated_program())(
            data["q"], data["k"], data["v"], w=data["w"], dil=1)
        np.testing.assert_allclose(dil, plain, rtol=1e-5)

    def test_autoschedules_and_differentiates(self, rng):
        data = longformer.make_data(seq_len=24, feat_len=6, w=2)
        prog = longformer.make_dilated_program()
        func = auto_schedule(prog, target=CPU)
        out = build(func, backend="c")(data["q"], data["k"], data["v"],
                                       w=data["w"], dil=2)
        ref = longformer.reference_dilated(data, 2)
        np.testing.assert_allclose(out, ref, rtol=1e-3, atol=1e-4)

        from repro.ad import GradExecutable, grad

        gp = grad(prog, requires=["q"])
        exe = GradExecutable(gp)
        exe(data["q"], data["k"], data["v"], w=data["w"], dil=2)
        g = exe.backward()
        # finite-difference spot check
        eps = 1e-2
        qp, qm = data["q"].copy(), data["q"].copy()
        qp[5, 2] += eps
        qm[5, 2] -= eps
        dp = longformer.reference_dilated({**data, "q": qp}, 2).sum()
        dm = longformer.reference_dilated({**data, "q": qm}, 2).sum()
        assert abs((dp - dm) / (2 * eps) - g[5, 2]) < 5e-2


class TestEvolutionaryTuner:

    def _prog(self):
        @ft.transform
        def f(x: ft.Tensor[(64, 32), "f32", "input"]):
            y = ft.empty((64, 32), "f32")
            for i in range(64):
                for j in range(32):
                    y[i, j] = x[i, j] * 2.0 + 1.0
            return y

        return f

    def test_finds_valid_schedule(self, rng):
        f = self._prog()
        x = rng.standard_normal((64, 32)).astype(np.float32)
        tuner = EvolutionaryTuner(f, make_inputs=lambda: (x,),
                                  backend="pycode", rounds=8, seed=2)
        result = tuner.tune()
        assert result.best_time < float("inf")
        exe = build(result.best_func, backend="pycode")
        np.testing.assert_allclose(exe(x), 2 * x + 1, rtol=1e-6)

    def test_not_worse_than_random_on_average(self, rng):
        """Same budget, same seed stream: evolution >= random (this is a
        smoke property on one seed, not a statistical claim)."""
        from repro.autosched import RandomTuner

        f = self._prog()
        x = rng.standard_normal((64, 32)).astype(np.float32)
        rand = RandomTuner(f, make_inputs=lambda: (x,),
                           backend="pycode", rounds=10, seed=3).tune()
        evo = EvolutionaryTuner(f, make_inputs=lambda: (x,),
                                backend="pycode", rounds=10,
                                seed=3).tune()
        assert evo.best_time <= rand.best_time * 2.0


class TestMultiLayerComposition:
    """DSL programs compose like layers: a 2-layer SubdivNet 'network'."""

    def test_two_layer_mesh_network(self, rng):
        data = subdivnet.make_data(n_faces=20, in_feats=4, out_feats=4)
        prog = subdivnet.make_program()
        exe = build(prog, backend="c")
        h1 = exe(data["adj"], data["e"], data["w"])
        h2 = exe(data["adj"], h1, data["w"])  # same layer applied twice
        ref1 = subdivnet.reference(data)
        ref2 = subdivnet.reference({**data, "e": ref1})
        np.testing.assert_allclose(h2, ref2, rtol=1e-2, atol=1e-3)

    def test_training_two_layers_end_to_end(self, rng):
        """Backprop through two chained compiled layers."""
        from repro.ad import GradExecutable, grad

        data = subdivnet.make_data(n_faces=12, in_feats=4, out_feats=4)
        gp = grad(subdivnet.make_program(), requires=["e", "w"])
        l1 = GradExecutable(gp)
        l2 = GradExecutable(grad(subdivnet.make_program(),
                                 requires=["e", "w"]))
        h1 = l1(data["adj"], data["e"], data["w"])
        out = l2(data["adj"], h1, data["w"])
        # d sum(out) / d w via the chain of the two layers
        gh1, gw2 = l2.backward()
        ge, gw1 = l1.backward(out_grads={"y": gh1})
        gw_total = gw1 + gw2

        # numeric check on one weight entry
        eps = 1e-2

        def loss(w):
            a = subdivnet.reference({**data, "w": w})
            b = subdivnet.reference({**data, "e": a, "w": w})
            return float(b.sum())

        wp, wm = data["w"].copy(), data["w"].copy()
        wp[3, 1] += eps
        wm[3, 1] -= eps
        num = (loss(wp) - loss(wm)) / (2 * eps)
        assert abs(num - gw_total[3, 1]) < max(0.08 * abs(num), 0.08)

"""Property-based AD testing: random smooth programs, gradients checked
against central finite differences, and policy agreement (selective vs
tape-everything) on every generated program."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ad import GradExecutable, grad
from repro.ir import (DataType, For, Func, Load, ReduceTo, Store, Var,
                      VarDef, makeIntrinsic, seq, wrap)

N = 4


@st.composite
def smooth_exprs(draw, iters, depth=0):
    """Random smooth (C^1) float expressions over tensors a, b."""
    kind = draw(st.integers(0, 7 if depth < 2 else 2))
    if kind == 0:
        return wrap(draw(st.sampled_from([0.5, 1.5, -0.75, 2.0])))
    if kind <= 2:
        name = draw(st.sampled_from(["a", "b"]))
        idx = draw(st.sampled_from(iters)) if iters else 0
        i = (Var(idx) + draw(st.integers(0, 2))) % N \
            if iters else wrap(0)
        return Load(name, [i], DataType.FLOAT32)
    lhs = draw(smooth_exprs(iters, depth + 1))
    rhs = draw(smooth_exprs(iters, depth + 1))
    if kind == 3:
        return lhs + rhs
    if kind == 4:
        return lhs - rhs
    if kind == 5:
        return lhs * rhs
    if kind == 6:
        return makeIntrinsic("tanh", [lhs])
    return makeIntrinsic("sigmoid", [lhs]) * rhs


@st.composite
def smooth_programs(draw):
    iters = ["i"]
    stmts = []
    n_stmts = draw(st.integers(1, 3))
    for _k in range(n_stmts):
        e = draw(smooth_exprs(iters))
        idx = (Var("i") + draw(st.integers(0, 2))) % N
        if draw(st.booleans()):
            stmts.append(ReduceTo("y", [idx], "+", e))
        else:
            stmts.append(Store("y", [Var("i")], e))
    body = For("i", 0, N, seq(stmts))
    body = VarDef("y", [N], "f32", "output", "cpu", body)
    body = VarDef("b", [N], "f32", "input", "cpu", body)
    body = VarDef("a", [N], "f32", "input", "cpu", body)
    return Func("fz", ["a", "b"], ["y"], body)


def _inputs():
    rng = np.random.default_rng(42)
    return (rng.standard_normal(N).astype(np.float32) * 0.5,
            rng.standard_normal(N).astype(np.float32) * 0.5)


def _loss(exe, a, b):
    out = exe(a.copy(), b.copy())
    return float(np.sum(out))


@settings(max_examples=25, deadline=None)
@given(smooth_programs())
def test_grad_matches_finite_differences(func):
    a, b = _inputs()
    gp = grad(func, requires=["a", "b"])
    exe = GradExecutable(gp)
    exe(a.copy(), b.copy())
    ga, gb = exe.backward()
    eps = 1e-2
    for gi, (g, x) in enumerate(((ga, a), (gb, b))):
        for pos in range(N):
            args_p = [a.copy(), b.copy()]
            args_p[gi][pos] += eps
            args_m = [a.copy(), b.copy()]
            args_m[gi][pos] -= eps
            num = (_loss(exe, *args_p) - _loss(exe, *args_m)) / (2 * eps)
            assert abs(num - g[pos]) <= 0.05 + 0.05 * abs(num), (
                f"input {gi} pos {pos}: fd={num} ad={g[pos]}\n{func}")


@settings(max_examples=25, deadline=None)
@given(smooth_programs())
def test_policies_agree_on_random_programs(func):
    a, b = _inputs()
    results = []
    for policy in ("selective", "all"):
        exe = GradExecutable(grad(func, requires=["a", "b"],
                                  tapes=policy))
        exe(a.copy(), b.copy())
        results.append(exe.backward())
    for g_sel, g_all in zip(results[0], results[1]):
        np.testing.assert_allclose(g_sel, g_all, rtol=1e-4, atol=1e-5)


@settings(max_examples=15, deadline=None)
@given(smooth_programs())
def test_grad_backends_agree(func):
    a, b = _inputs()
    grads = []
    for backend in ("pycode", "c"):
        exe = GradExecutable(grad(func, requires=["a", "b"]),
                             backend=backend)
        exe(a.copy(), b.copy())
        grads.append(exe.backward())
    for g1, g2 in zip(grads[0], grads[1]):
        np.testing.assert_allclose(g1, g2, rtol=1e-4, atol=1e-5)

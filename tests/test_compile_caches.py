"""Unit tests for the compile-path caches and their building blocks:

- structural IR hashing (``repro.ir.hashing``);
- the Omega-test fast paths and feasibility memo;
- the content-addressed build cache;
- the lowering memo.
"""

import time

import numpy as np
import pytest

import repro as ft
from repro.ir import struct_hash
from repro.polyhedral import (Affine, LinCon, clear_feasibility_cache,
                              feasibility_stats, is_feasible)
from repro.runtime import build, build_cache_stats, clear_build_cache


def make_program():
    @ft.transform
    def f(b: ft.Tensor[("n", "m"), "f32", "input"],
          a: ft.Tensor[("n", "m"), "f32", "output"]):
        ft.label("Li")
        for i in range(b.shape(0)):
            ft.label("Lj")
            for j in range(b.shape(1)):
                a[i, j] = b[i, j] * 2.0 + 1.0

    return f


def make_program_variant():
    @ft.transform
    def f(b: ft.Tensor[("n", "m"), "f32", "input"],
          a: ft.Tensor[("n", "m"), "f32", "output"]):
        ft.label("Li")
        for i in range(b.shape(0)):
            ft.label("Lj")
            for j in range(b.shape(1)):
                a[i, j] = b[i, j] * 2.0 + 3.0  # different constant

    return f


class TestStructHash:

    def test_same_source_same_hash(self):
        # two stagings mint different sids; the default hash ignores them
        f1, f2 = make_program().func, make_program().func
        assert struct_hash(f1) == struct_hash(f2)

    def test_sid_inclusive_hash_differs(self):
        f1, f2 = make_program().func, make_program().func
        assert struct_hash(f1, include_sids=True) \
            != struct_hash(f2, include_sids=True)

    def test_structure_sensitive(self):
        assert struct_hash(make_program().func) \
            != struct_hash(make_program_variant().func)

    def test_stable_for_same_object(self):
        f = make_program().func
        assert struct_hash(f) == struct_hash(f)


class TestOmegaFastPaths:

    def test_gcd_reject(self):
        # 2x == 1 has no integer solution; caught before any elimination
        before = feasibility_stats()["gcd_rejects"]
        assert not is_feasible([LinCon.eq(Affine.var("x", 2),
                                          Affine.constant(1))])
        assert feasibility_stats()["gcd_rejects"] == before + 1

    def test_interval_reject(self):
        # x >= 5 and x <= 3: disjoint constant bounds
        before = feasibility_stats()["interval_rejects"]
        assert not is_feasible([
            LinCon.ge(Affine.var("x"), Affine.constant(5)),
            LinCon.le(Affine.var("x"), Affine.constant(3)),
        ])
        assert feasibility_stats()["interval_rejects"] == before + 1

    def test_interval_reject_scaled(self):
        # 3x >= 10 (x >= 4) and 2x <= 7 (x <= 3)
        assert not is_feasible([
            LinCon.ge(Affine.var("x", 3), Affine.constant(10)),
            LinCon.le(Affine.var("x", 2), Affine.constant(7)),
        ])

    def test_feasible_single_var_not_rejected(self):
        assert is_feasible([
            LinCon.ge(Affine.var("x"), Affine.constant(3)),
            LinCon.le(Affine.var("x"), Affine.constant(5)),
        ])

    def test_memo_hit_and_rename_invariance(self):
        clear_feasibility_cache()
        sys_x = [LinCon.ge(Affine.var("x") + Affine.var("y"),
                           Affine.constant(0)),
                 LinCon.lt(Affine.var("x"), Affine.var("y"))]
        sys_z = [LinCon.ge(Affine.var("z") + Affine.var("w"),
                           Affine.constant(0)),
                 LinCon.lt(Affine.var("z"), Affine.var("w"))]
        before = feasibility_stats()
        r1 = is_feasible(sys_x)
        # same system under renamed variables must hit the memo
        r2 = is_feasible(sys_z)
        after = feasibility_stats()
        assert r1 == r2
        assert after["memo_hits"] == before["memo_hits"] + 1

    def test_memo_disabled_agrees(self, monkeypatch):
        systems = [
            [LinCon.eq(Affine.var("i"), Affine.var("j")),
             LinCon.lt(Affine.var("i"), Affine.var("j"))],
            [LinCon.ge(Affine.var("i"), Affine.constant(0)),
             LinCon.lt(Affine.var("i"), Affine.constant(8))],
            [LinCon.eq(Affine.var("i", 4), Affine.var("j", 6) +
                       Affine.constant(1))],
        ]
        clear_feasibility_cache()
        with_memo = [is_feasible(s) for s in systems]
        monkeypatch.setenv("REPRO_NO_OMEGA_MEMO", "1")
        without = [is_feasible(s) for s in systems]
        assert with_memo == without


class TestBuildCache:

    def test_hit_returns_same_executable(self):
        clear_build_cache()
        p = make_program()
        before = build_cache_stats()
        e1 = build(p, backend="pycode")
        e2 = build(p, backend="pycode")
        after = build_cache_stats()
        assert e2 is e1
        assert after["misses"] == before["misses"] + 1
        assert after["hits"] == before["hits"] + 1

    def test_equivalent_program_hits(self):
        # a separately staged but identical program shares the entry
        clear_build_cache()
        e1 = build(make_program(), backend="pycode")
        e2 = build(make_program(), backend="pycode")
        assert e2 is e1

    def test_hit_is_fast(self):
        clear_build_cache()
        p = make_program()
        t0 = time.perf_counter()
        e1 = build(p, backend="pycode")
        cold = time.perf_counter() - t0
        t0 = time.perf_counter()
        e2 = build(p, backend="pycode")
        warm = time.perf_counter() - t0
        assert e2 is e1
        assert warm < cold / 10  # acceptance: >= 10x faster
        # the cold build carries its phase timings; they sum to the total
        assert e1.compile_times
        assert e1.compile_time_total == sum(e1.compile_times.values()) > 0

    def test_clear_restores_cold_build(self):
        clear_build_cache()
        p = make_program()
        e1 = build(p, backend="pycode")
        ft.clear_build_cache()  # also exported at package level
        before = build_cache_stats()
        e2 = build(p, backend="pycode")
        after = build_cache_stats()
        assert e2 is not e1
        assert after["misses"] == before["misses"] + 1

    def test_distinct_options_miss(self):
        clear_build_cache()
        p = make_program()
        e1 = build(p, backend="pycode")
        e2 = build(p, backend="interp")
        e3 = build(p, backend="pycode", optimize=True)
        assert e1 is not e2
        assert e1 is not e3

    def test_env_hatch_bypasses(self, monkeypatch):
        clear_build_cache()
        p = make_program()
        monkeypatch.setenv("REPRO_NO_BUILD_CACHE", "1")
        e1 = build(p, backend="pycode")
        e2 = build(p, backend="pycode")
        assert e1 is not e2

    def test_stateful_opts_uncacheable(self):
        from repro.runtime.metrics import MetricsCollector

        clear_build_cache()
        p = make_program()
        before = build_cache_stats()
        e1 = build(p, backend="interp", metrics=MetricsCollector())
        e2 = build(p, backend="interp", metrics=MetricsCollector())
        after = build_cache_stats()
        assert e1 is not e2
        assert after["uncacheable"] == before["uncacheable"] + 2

    def test_cached_executable_still_correct(self, rng):
        clear_build_cache()
        x = rng.standard_normal((4, 6)).astype(np.float32)
        p = make_program()
        ref = build(p, backend="interp")(x)
        e1 = build(p, backend="pycode")
        e2 = build(p, backend="pycode")
        np.testing.assert_allclose(e2(x), ref, rtol=1e-5)
        np.testing.assert_allclose(e1(x), ref, rtol=1e-5)


class TestLowerCache:

    def test_lower_memo_shares_result(self):
        from repro.passes import clear_lower_cache, lower

        clear_lower_cache()
        f = make_program().func
        assert lower(f) is lower(f)

    def test_lower_memo_keyed_on_sids(self, monkeypatch):
        # separately staged identical programs differ in sids, and the
        # lowering memo must keep them apart (sids address statements in
        # later scheduling)
        from repro.passes import clear_lower_cache, lower

        clear_lower_cache()
        l1 = lower(make_program().func)
        l2 = lower(make_program().func)
        assert l1 is not l2

    def test_env_hatch_bypasses(self, monkeypatch):
        from repro.passes import clear_lower_cache, lower

        clear_lower_cache()
        monkeypatch.setenv("REPRO_NO_LOWER_CACHE", "1")
        f = make_program().func
        assert lower(f) is not lower(f)


def test_clear_compile_caches_clears_everything():
    p = make_program()
    build(p, backend="pycode")
    ft.clear_compile_caches()
    stats = ft.compile_cache_stats()
    # counters survive clearing, but a rebuild after clearing is a miss
    before = stats["build"]["misses"]
    build(p, backend="pycode")
    assert ft.compile_cache_stats()["build"]["misses"] == before + 1

"""The static cost model (repro.analysis.cost) and its consumers.

The load-bearing property is *oracle agreement*: the static walker and
the interpreter's ``REPRO_COUNT_OPS`` dynamic counter count the same
events by construction (shared ``op_category``), so on an *exact*
estimate the two must agree to the operation, on a *sound* one the
static side must upper-bound the dynamic one, and only the
assumed-trip fallback (data-dependent loops, e.g. GAT's CSR walks) may
break the bound. The tuner-pruning tests then show dominance pruning
never changes which candidate a deterministic tuner returns.
"""

import os

import numpy as np
import pytest

import repro as ft
from repro.analysis.cost import (COUNT_FIELDS, CostEstimate, Counts,
                                 analyze_cost, clear_cost_memo,
                                 estimate_cost, infer_scalar_env,
                                 perf_lint)
from repro.autosched import CPU, auto_schedule
from repro.autosched.autotune import RandomTuner
from repro.autosched.target import Target, default_target
from repro.ir.hashing import struct_hash
from repro.runtime import metrics
from repro.runtime.driver import build, clear_build_cache
from repro.runtime.interpreter import Interpreter, global_op_counts
from repro.workloads import ALL

#: interpreter-friendly sizes (the oracle executes every scalar op)
ORACLE_SIZES = {
    "subdivnet": dict(n_faces=16, in_feats=4, out_feats=4),
    "longformer": dict(seq_len=24, feat_len=4, w=2),
    "softras": dict(n_faces=4, image_size=6),
    "gat": dict(n_nodes=16, avg_degree=3, feats=4, out_feats=4),
}

#: schedule rules applied in the "optimized" oracle runs (all of them
#: except use_lib, whose kernels the reference interpreter also treats
#: as one uncounted invocation — excluded to keep the comparison about
#: loop code)
ORACLE_PASSES = ["fuse", "vectorize", "parallelize", "mem_type",
                 "unroll"]


def _workload_args(name, data, func):
    """(arrays, scalars) for the driver, in the program's own order."""
    from repro.ir import AccessType, defined_tensors

    defs = defined_tensors(func.body)
    arrays = tuple(data[p] for p in func.params
                   if defs[p].atype in (AccessType.INPUT,
                                        AccessType.INOUT))
    scalars = {p: data[p] for p in func.scalar_params if p in data}
    return arrays, scalars


def _check_agreement(name, func, monkeypatch):
    data = ALL[name].make_data(**ORACLE_SIZES[name])
    arrays, scalars = _workload_args(name, data, func)
    monkeypatch.setenv("REPRO_COUNT_OPS", "1")
    clear_build_cache()  # the cached exe may predate REPRO_COUNT_OPS
    exe = build(func, backend="interp")
    # estimate exactly the lowered tree the interpreter executes
    # (build() runs standard lowering before handing off)
    env = infer_scalar_env(exe.func, arrays, data)
    est = estimate_cost(exe.func, backend="pycode", scalar_env=env)
    ops = global_op_counts()
    ops.reset()
    exe(*arrays, **scalars)
    dyn = ops.as_dict()
    stat = {f: getattr(est.counts, f) for f in COUNT_FIELDS}
    assert sum(dyn.values()) > 0, "oracle counted nothing"
    if est.exact:
        assert stat == dyn, f"{name}: exact estimate disagrees"
    elif est.sound:
        for f in COUNT_FIELDS:
            assert stat[f] >= dyn[f], \
                f"{name}: sound estimate under-counts {f}"
    else:
        # assumed-trip fallback (data-dependent loops): no bound, but
        # the estimate must stay within an order of magnitude
        for f in COUNT_FIELDS:
            if dyn[f]:
                assert stat[f] > 0, f"{name}: missed all {f}"
                assert stat[f] / dyn[f] < 16, \
                    f"{name}: {f} overcounted wildly"
    return est


class TestOracleAgreement:

    @pytest.mark.parametrize("name", sorted(ALL))
    def test_raw_workload(self, name, monkeypatch):
        est = _check_agreement(name, ALL[name].make_program().func,
                               monkeypatch)
        # the CSR loops make gat (and only gat) unsound; longformer's
        # asymmetric window-boundary If makes it sound-but-inexact; the
        # other two have shape-var bounds the scalar env makes exact
        if name == "gat":
            assert not est.sound
        elif name == "longformer":
            assert est.sound and not est.exact
        else:
            assert est.exact

    @pytest.mark.parametrize("name", sorted(ALL))
    def test_scheduled_workload(self, name, monkeypatch):
        func = auto_schedule(ALL[name].make_program(), target=CPU,
                             passes=ORACLE_PASSES)
        _check_agreement(name, func, monkeypatch)

    def test_interpreter_counts_off_by_default(self, rng, monkeypatch):
        monkeypatch.delenv("REPRO_COUNT_OPS", raising=False)
        assert Interpreter().ops is None


@ft.transform
def _axpy(x: ft.Tensor[(32, 32), "f32", "input"]):
    y = ft.empty((32, 32), "f32")
    for i in range(32):
        for j in range(32):
            y[i, j] = x[i, j] * 2.0 + 1.0
    return y


class TestEstimate:

    def test_counts_and_report(self):
        est = analyze_cost(_axpy)
        assert est.exact and est.sound
        n = 32 * 32
        assert est.counts.flops == 2 * n
        assert est.counts.loads == n
        assert est.counts.stores == n
        assert est.counts.iters == 32 + n
        d = est.as_dict()
        assert d["counts"]["flops"] == 2 * n
        assert [l["iter_var"] for l in d["loops"]] == ["i", "j"]
        assert d["traffic"]["x"]["stride_class"] == "unit"
        assert est.parallelism == pytest.approx(1.0)

    def test_parallel_lowers_seq_only(self):
        s = ft.Schedule(_axpy.func)
        loop = s.loops()[0]
        s.parallelize(loop.sid, "openmp")
        base = estimate_cost(_axpy.func, backend="c")
        par = estimate_cost(s.func, backend="c")
        for f in COUNT_FIELDS:
            assert getattr(par.counts, f) == getattr(base.counts, f)
        assert par.counts.seq < base.counts.seq
        assert par.parallelism > base.parallelism
        # dominance: par is no worse everywhere, strictly better on seq
        assert par.dominates(base)
        assert not base.dominates_or_equal(par)
        assert base.dominates_or_equal(base)
        assert not base.dominates(base)

    def test_backend_capabilities(self):
        # pycode ignores openmp annotations entirely
        s = ft.Schedule(_axpy.func)
        s.parallelize(s.loops()[0].sid, "openmp")
        assert estimate_cost(s.func, backend="pycode").counts.seq == \
            estimate_cost(_axpy.func, backend="pycode").counts.seq
        caps = default_target("c").capabilities("c")
        assert caps.capacity("openmp") > 1
        assert caps.stride_matters
        gpu = default_target("gpusim").capabilities("gpusim")
        assert gpu.capacity("cuda.blockIdx.x") is None  # unbounded

    def test_memo_and_metrics(self):
        metrics.reset_cost_stats()
        clear_cost_memo()
        estimate_cost(_axpy.func)
        estimate_cost(_axpy.func)
        st = metrics.cost_stats()
        assert st["analyses"] == 2 and st["memo_hits"] == 1

    def test_pipeline_pass(self):
        from repro.pipeline import Pipeline, named_pass

        p = named_pass("cost_model")
        assert not p.cacheable  # a cache hit would skip the analysis
        metrics.reset_cost_stats()
        out = Pipeline([p], name="cost-only").run(_axpy.func)
        assert out is _axpy.func
        assert metrics.cost_stats()["analyses"] == 1

    def test_scalar_env_replaces_assumed_trips(self):
        @ft.transform
        def f(x: ft.Tensor[("n",), "f32", "input"]):
            y = ft.empty((x.shape(0),), "f32")
            for i in range(x.shape(0)):
                y[i] = x[i] + 1.0
            return y

        sym = estimate_cost(f.func, assumed_trip=8)
        assert not sym.sound and sym.counts.flops == 8
        conc = estimate_cost(f.func, scalar_env={"n": 100})
        assert conc.exact and conc.counts.flops == 100

    def test_infer_scalar_env(self):
        @ft.transform
        def f(a: ft.Tensor[("n", "m"), "f32", "input"],
              b: ft.Tensor[("m",), "f32", "input"],
              k: ft.Size):
            y = ft.empty((a.shape(0),), "f32")
            for i in range(a.shape(0)):
                y[i] = a[i, 0] + b[0] + k * 1.0
            return y

        arrs = (np.zeros((5, 7), np.float32), np.zeros(7, np.float32))
        env = infer_scalar_env(f.func, arrs, {"k": 3, "junk": 2.5})
        assert env == {"n": 5, "m": 7, "k": 3}
        # name-keyed mapping form (what the verify CLI uses)
        env2 = infer_scalar_env(f.func, {"a": arrs[0], "b": arrs[1]},
                                {"k": 3})
        assert env2 == env


class TestPerfLint:

    def test_ft501_fires_on_parallelizable_hot_loop(self):
        codes = [d.code for d in perf_lint(_axpy)]
        assert "FT501" in codes

    def test_ft501_respects_carried_deps_and_annotations(self):
        @ft.transform
        def acc(x: ft.Tensor[(1024,), "f32", "input"]):
            y = ft.zeros((1024,), "f32")
            for i in range(1, 1024):
                y[i] = y[i - 1] + x[i]  # loop-carried: not parallel
            return y

        # the ft.zeros init loop is legitimately flagged; the carried-dep
        # accumulation loop must not be
        carried_sid = [l.sid for l in ft.Schedule(acc.func).loops()
                       if l.iter_var == "i"]
        assert carried_sid
        assert not [d for d in perf_lint(acc)
                    if d.code == "FT501" and d.sid in carried_sid]
        # an already-parallel loop is not reported either
        s = ft.Schedule(_axpy.func)
        s.parallelize(s.loops()[0].sid, "openmp")
        assert "FT501" not in [d.code for d in perf_lint(s.func)]

    def test_ft502_fires_on_transposed_traversal(self):
        @ft.transform
        def tr(x: ft.Tensor[(32, 32), "f32", "input"]):
            y = ft.empty((32, 32), "f32")
            for j in range(32):
                for i in range(32):
                    y[j, i] = x[i, j] * 2.0  # x strides its outer dim
            return y

        hits = [d for d in perf_lint(tr) if d.code == "FT502"]
        assert any(d.tensor == "x" for d in hits)
        assert not any(d.tensor == "y" for d in hits)

    def test_ft503_fires_on_invariant_recompute(self):
        @ft.transform
        def inv(x: ft.Tensor[(32,), "f32", "input"]):
            y = ft.empty((32, 32), "f32")
            for i in range(32):
                for j in range(32):
                    y[i, j] = x[i] * 2.0 + 1.0  # j-invariant store? no:
                    # indices use j, so this is NOT invariant
            return y

        assert "FT503" not in [d.code for d in perf_lint(inv)]

        @ft.transform
        def inv2(s: ft.Tensor[(32,), "f32", "input"]):
            y = ft.empty((32,), "f32")
            z = ft.empty((32,), "f32")
            for i in range(32):
                for j in range(32):
                    y[i] = s[i] * 2.0 + 1.0  # same value, every j
                    z[j] = y[i] + 0.0
            return z

        hits = [d for d in perf_lint(inv2) if d.code == "FT503"]
        assert any(d.tensor == "y" for d in hits)

    def test_verify_level_gates_perf_findings(self):
        from repro.analysis import verify

        assert not [d for d in verify(_axpy.func).diags
                    if d.code.startswith("FT5")]
        info = verify(_axpy.func, level="info")
        assert [d for d in info.diags if d.code == "FT501"]
        only = verify(_axpy.func, analyses=("perf",), level="info")
        assert all(d.code.startswith("FT5") for d in only.diags)


class _ProxyMeasuredTuner(RandomTuner):
    """Deterministic tuner: 'measuring' a candidate returns its static
    time proxy. Because pruning only drops candidates the incumbent
    dominates on *every* axis — and the proxy is monotone in those axes —
    a pruned candidate provably cannot beat the incumbent, so the
    pruned and unpruned searches must return the same best time."""

    calls = 0

    def _measure(self, func):
        type(self).calls += 1
        return self._estimate(func).time_proxy


class TestTunerPruning:

    def _mk(self, **kw):
        rng = np.random.default_rng(7)
        x = rng.standard_normal((64, 64)).astype(np.float32)
        return _ProxyMeasuredTuner(
            _axpy.func, make_inputs=lambda: (x,), backend="pycode",
            rounds=32, seed=3, **kw)

    def test_counters_and_skips(self, monkeypatch):
        monkeypatch.delenv("REPRO_NO_COST_PRUNE", raising=False)
        metrics.reset_tuner_stats()
        r = self._mk().tune()
        assert r.rounds == 32
        assert len(r.round_times) == 32
        assert r.dedup_skips > 0 or r.cost_pruned > 0
        assert r.measured == len(r.measure_times)
        assert r.measured + r.dedup_skips + r.cost_pruned <= 32
        st = metrics.tuner_stats()
        assert st["candidates"] == 32
        assert st["dedup_skips"] == r.dedup_skips
        assert st["cost_pruned"] == r.cost_pruned
        assert st["measured"] == r.measured

    def test_pruning_never_changes_the_winner(self, monkeypatch):
        monkeypatch.delenv("REPRO_NO_COST_PRUNE", raising=False)
        pruned = self._mk(keep_pruned=True).tune()
        monkeypatch.setenv("REPRO_NO_COST_PRUNE", "1")
        full = self._mk().tune()
        assert full.dedup_skips == 0 and full.cost_pruned == 0
        assert full.measured == 32
        assert pruned.measured < full.measured
        # same deterministic best, despite measuring fewer candidates
        assert pruned.best_time == full.best_time
        # force-measure everything the pruner dropped: none beats it
        monkeypatch.delenv("REPRO_NO_COST_PRUNE", raising=False)
        t = self._mk()
        assert len(pruned.pruned_funcs) == pruned.cost_pruned
        for cand in pruned.pruned_funcs:
            assert t._measure(cand) >= pruned.best_time

    def test_no_prune_env_restores_old_behavior(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_COST_PRUNE", "1")
        a = self._mk().tune()
        b = self._mk().tune()
        assert a.measured == b.measured == 32
        assert struct_hash(a.best_func) == struct_hash(b.best_func)

    def test_dedup_by_structure(self, monkeypatch):
        # an unschedulable program yields identical candidates: the
        # first is measured, every other round dedupes
        monkeypatch.delenv("REPRO_NO_COST_PRUNE", raising=False)

        @ft.transform
        def tiny(y: ft.Tensor[(4,), "f32", "output"]):
            for i in range(4):
                y[i] = 1.0

        t = _ProxyMeasuredTuner(tiny.func, make_inputs=lambda: (),
                                backend="pycode", rounds=6, seed=0)
        r = t.tune()
        assert r.rounds == 6
        assert r.measured + r.dedup_skips + r.cost_pruned == 6
        assert r.dedup_skips > 0

"""Tests for the serving subsystem (``repro.serving``):

- batch-axis prepending and every batching strategy produce the same
  answers as per-request serial execution on all four workloads;
- fault injection (``REPRO_SERVE_FAULT``) proves crashes and hangs cost
  exactly the affected batch — no request is dropped or run twice;
- admission control rejects over-quota and over-capacity submissions
  synchronously;
- batch composition is deterministic under a fixed clock.
"""

import threading

import numpy as np
import pytest

from repro.runtime import metrics
from repro.serving import (BatchingUnsupported, Server,
                           batch_axis_prepend, default_endpoints)
from repro.workloads import gat, longformer, softras, subdivnet

WORKLOADS = ("subdivnet", "longformer", "softras", "gat")


def reference_for(name, arrays, scalars):
    if name == "subdivnet":
        return subdivnet.reference(
            {"adj": arrays[0], "e": arrays[1], "w": arrays[2]})
    if name == "longformer":
        return longformer.reference(
            {"q": arrays[0], "k": arrays[1], "v": arrays[2],
             "w": scalars["w"]})
    if name == "softras":
        return softras.reference({"verts": arrays[0], "px": arrays[1]})
    return gat.reference(
        {"indptr": arrays[0], "indices": arrays[1], "h": arrays[2],
         "wmat": arrays[3], "att_s": arrays[4], "att_d": arrays[5]})


@pytest.fixture(autouse=True)
def _fresh_serving_stats():
    metrics.reset_serving_stats()
    yield
    metrics.reset_serving_stats()


# ---------------------------------------------------------------------------
# batching correctness
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name", WORKLOADS)
def test_batched_results_match_serial(name):
    eps = default_endpoints(backend="pycode", names=[name])
    traffic = eps[name].gen_requests(6, seed=11)
    with Server(eps, mode="thread", workers=2, max_batch=3,
                max_wait_s=0.01) as srv:
        pendings = [srv.submit(name, a, s) for a, s in traffic]
        for (arrays, scalars), p in zip(traffic, pendings):
            resp = p.result(timeout=120)
            assert resp.ok, (resp.status, resp.error)
            ref = reference_for(name, arrays, scalars)
            np.testing.assert_allclose(resp.value, ref, rtol=1e-3,
                                       atol=1e-4)
    st = metrics.serving_stats()
    assert st["admitted"] == 6
    assert st["completed"] == 6
    assert st["batches"] >= 2  # really coalesced, not one-by-one


def test_stack_batching_actually_batches():
    eps = default_endpoints(backend="pycode", names=["subdivnet"])
    traffic = eps["subdivnet"].gen_requests(4, seed=0)
    with Server(eps, mode="thread", workers=1, max_batch=4,
                max_wait_s=0.2) as srv:
        responses = [p.result(timeout=120) for p in
                     srv.submit_many("subdivnet", traffic)]
    assert {r.batch_size for r in responses} == {4}
    assert len({r.batch_id for r in responses}) == 1


def test_ragged_longformer_pad_and_mask():
    """Variable-length sequences batch via pad-and-mask and match the
    per-request reference exactly (padding never leaks in)."""
    eps = default_endpoints(backend="pycode", names=["longformer"])
    traffic = eps["longformer"].gen_requests(5, seed=7)
    lens = {a[0].shape[0] for a, _ in traffic}
    assert len(lens) > 1  # genuinely ragged mix
    with Server(eps, mode="thread", workers=1, max_batch=5,
                max_wait_s=0.2) as srv:
        responses = [p.result(timeout=120) for p in
                     srv.submit_many("longformer", traffic)]
    assert len({r.batch_id for r in responses}) == 1  # one ragged batch
    for (arrays, scalars), resp in zip(traffic, responses):
        assert resp.ok, resp.error
        assert resp.value.shape == arrays[0].shape  # true length back
        np.testing.assert_allclose(
            resp.value, reference_for("longformer", arrays, scalars),
            rtol=1e-3, atol=1e-4)
    assert metrics.serving_stats()["pad_elements"] > 0


def test_ragged_gat_concat_with_offsets():
    """Variable-size graphs batch as one disjoint union through the
    unbatched program; outputs split back by node offsets."""
    eps = default_endpoints(backend="pycode", names=["gat"])
    traffic = eps["gat"].gen_requests(5, seed=9)
    sizes = {a[0].shape[0] for a, _ in traffic}
    assert len(sizes) > 1  # genuinely ragged mix
    with Server(eps, mode="thread", workers=1, max_batch=5,
                max_wait_s=0.2) as srv:
        responses = [p.result(timeout=120) for p in
                     srv.submit_many("gat", traffic)]
    assert len({r.batch_id for r in responses}) == 1
    for (arrays, scalars), resp in zip(traffic, responses):
        assert resp.ok, resp.error
        assert resp.value.shape[0] == arrays[0].shape[0] - 1
        np.testing.assert_allclose(
            resp.value, reference_for("gat", arrays, scalars),
            rtol=1e-3, atol=1e-4)
    # concat adds no padding
    assert metrics.serving_stats()["pad_elements"] == 0


def test_gat_different_weights_never_share_a_bucket():
    eps = default_endpoints(backend="pycode", names=["gat"])
    ep = eps["gat"]
    (arrays, scalars), = ep.gen_requests(1, seed=0)
    other = list(arrays)
    other[3] = arrays[3] + 1.0  # different model weights
    key_a = ep.strategy.bucket_key(arrays, scalars)
    key_b = ep.strategy.bucket_key(other, scalars)
    assert key_a != key_b


def test_batch_axis_prepend_memoized_and_guarded():
    import repro as ft
    from repro.ir import For, Func

    @ft.transform
    def prog(x: ft.Tensor[("n",), "f32", "input"]):
        y = ft.zeros((x.shape(0),), "f32")
        for i in range(x.shape(0)):
            y[i] = x[i] * 2.0
        return y

    batched = batch_axis_prepend(prog)
    assert batched.name.endswith("_batched")
    # memoized: same Func object on repeat calls (keeps build caches hot)
    assert batch_axis_prepend(prog) is batched
    # the new batch-size scalar is threaded through the driver
    assert len(batched.scalar_params) == len(prog.func.scalar_params) + 1

    # an interface tensor whose VarDef hides under a loop cannot be
    # hoisted; the transform must refuse, not mis-batch
    func = prog.func
    bad = Func(func.name + "_nested", list(func.params),
               list(func.returns), For("ii", 0, 1, func.body),
               scalar_params=list(func.scalar_params))
    with pytest.raises(BatchingUnsupported):
        batch_axis_prepend(bad)


# ---------------------------------------------------------------------------
# fault injection: crashes and hangs cost one batch, never a request
# ---------------------------------------------------------------------------

def test_crash_isolated_to_failing_endpoint(monkeypatch):
    monkeypatch.setenv("REPRO_SERVE_FAULT", "crash:gat")
    eps = default_endpoints(backend="pycode",
                            names=["gat", "subdivnet"])
    with Server(eps, mode="process", workers=2, max_batch=4,
                max_wait_s=0.01) as srv:
        gps = [srv.submit("gat", a, s) for a, s in
               eps["gat"].gen_requests(4, seed=3)]
        sps = [srv.submit("subdivnet", a, s) for a, s in
               eps["subdivnet"].gen_requests(4, seed=3)]
        gres = [p.result(timeout=120) for p in gps]
        sres = [p.result(timeout=120) for p in sps]
    # every request resolved exactly once; the crash cost the gat batch
    assert all(r.status == "failed" for r in gres)
    assert all(r.ok for r in sres)
    st = metrics.serving_stats()
    assert st["admitted"] == 8
    assert st["completed"] + st["failed"] == 8  # none dropped
    assert st["worker_respawns"] >= 1


def test_hang_times_out_and_respawns(monkeypatch):
    monkeypatch.setenv("REPRO_SERVE_FAULT", "hang:gat")
    eps = default_endpoints(backend="pycode", names=["gat"])
    with Server(eps, mode="process", workers=1, max_batch=4,
                max_wait_s=0.01, timeout_s=1.0) as srv:
        pendings = [srv.submit("gat", a, s) for a, s in
                    eps["gat"].gen_requests(2, seed=3)]
        responses = [p.result(timeout=120) for p in pendings]
    assert all(r.status == "timeout" for r in responses)
    st = metrics.serving_stats()
    assert st["timed_out"] == 2
    assert st["worker_respawns"] >= 1


def test_thread_mode_fault_degrades_to_failure(monkeypatch):
    monkeypatch.setenv("REPRO_SERVE_FAULT", "crash:subdivnet")
    eps = default_endpoints(backend="pycode", names=["subdivnet"])
    with Server(eps, mode="thread", workers=1, max_batch=2,
                max_wait_s=0.01) as srv:
        pendings = [srv.submit("subdivnet", a, s) for a, s in
                    eps["subdivnet"].gen_requests(2, seed=0)]
        responses = [p.result(timeout=120) for p in pendings]
    assert all(r.status == "failed" for r in responses)
    assert all("injected" in r.error for r in responses)


def test_no_request_lost_or_double_run_under_faults(monkeypatch):
    """Mixed healthy/crashing traffic: every admitted request resolves
    exactly once and belongs to exactly one executed batch."""
    monkeypatch.setenv("REPRO_SERVE_FAULT", "crash:longformer")
    eps = default_endpoints(backend="pycode",
                            names=["longformer", "subdivnet"])
    with Server(eps, mode="process", workers=2, max_batch=3,
                max_wait_s=0.01) as srv:
        pendings = []
        for name in ("longformer", "subdivnet"):
            pendings += [(name, srv.submit(name, a, s)) for a, s in
                         eps[name].gen_requests(6, seed=5)]
        responses = [(n, p.result(timeout=120)) for n, p in pendings]
    assert len(responses) == 12
    assert all(p.done() for _n, p in pendings)
    # each request appears in exactly one batch (ids unique per request)
    seen = [r.request_id for _n, r in responses]
    assert len(set(seen)) == len(seen)
    st = metrics.serving_stats()
    assert st["completed"] + st["failed"] + st["timed_out"] == 12
    assert st["batched_requests"] == 12  # each ran in exactly one batch


# ---------------------------------------------------------------------------
# admission control
# ---------------------------------------------------------------------------

def test_quota_rejection_per_tenant():
    eps = default_endpoints(backend="pycode", names=["subdivnet"])
    traffic = eps["subdivnet"].gen_requests(4, seed=0)
    srv = Server(eps, mode="thread", workers=1, max_batch=4,
                 max_wait_s=60.0, quotas={"small": 2}, start=False)
    out = [srv.submit("subdivnet", a, s, tenant="small")
           for a, s in traffic]
    rejected = [p.result(timeout=1) for p in out[2:]]
    assert all(r.status == "rejected" for r in rejected)
    assert all("quota" in r.error for r in rejected)
    # other tenants are unaffected
    ok = srv.submit("subdivnet", *traffic[0], tenant="big")
    assert not ok.done()
    while srv.poll(force=True):
        pass
    assert ok.result(timeout=1).ok
    assert [p.result(timeout=1).ok for p in out[:2]] == [True, True]
    st = metrics.serving_stats()
    assert st["rejected_quota"] == 2
    assert st["per_tenant"]["small"]["rejected"] == 2
    srv.close()


def test_queue_backpressure_rejection():
    eps = default_endpoints(backend="pycode", names=["subdivnet"])
    traffic = eps["subdivnet"].gen_requests(5, seed=0)
    srv = Server(eps, mode="thread", workers=1, max_batch=8,
                 max_wait_s=60.0, queue_limit=3, start=False)
    out = [srv.submit("subdivnet", a, s) for a, s in traffic]
    statuses = ["rejected" if p.done() else "queued" for p in out]
    assert statuses == ["queued"] * 3 + ["rejected"] * 2
    assert metrics.serving_stats()["rejected_queue"] == 2
    while srv.poll(force=True):
        pass
    assert all(p.result(timeout=1).ok for p in out[:3])
    srv.close()


def test_unknown_endpoint_rejected_synchronously():
    eps = default_endpoints(backend="pycode", names=["subdivnet"])
    with Server(eps, mode="thread", workers=1, start=False) as srv:
        p = srv.submit("nope", [np.zeros(3, np.float32)])
        assert p.done()
        assert p.result().status == "rejected"


# ---------------------------------------------------------------------------
# determinism under a fixed clock
# ---------------------------------------------------------------------------

def _fixed_clock_run(eps, traffic):
    """Manual-mode run under a controlled clock; returns the batch
    composition as request-submission-index -> (batch_id, batch_size)."""
    t = [0.0]
    srv = Server(eps, mode="thread", workers=1, max_batch=3,
                 max_wait_s=0.010, clock=lambda: t[0], start=False)
    pendings = []
    for i, (arrays, scalars) in enumerate(traffic):
        pendings.append(srv.submit("subdivnet", arrays, scalars))
        t[0] += 0.004  # 4ms between arrivals; window 10ms, batch cap 3
        srv.poll()
    while srv.poll(force=True):
        pass
    srv.close()
    out = [p.result(timeout=1) for p in pendings]
    assert all(r.ok for r in out)
    return [(r.batch_id, r.batch_size) for r in out]


def test_batch_composition_deterministic_under_fixed_clock():
    eps = default_endpoints(backend="pycode", names=["subdivnet"])
    traffic = eps["subdivnet"].gen_requests(8, seed=2)
    first = _fixed_clock_run(eps, traffic)
    second = _fixed_clock_run(eps, traffic)
    assert first == second
    # the window actually splits the stream: several distinct batches
    assert len({b for b, _s in first}) >= 2


def test_deadline_expired_in_queue_times_out():
    eps = default_endpoints(backend="pycode", names=["subdivnet"])
    traffic = eps["subdivnet"].gen_requests(1, seed=0)
    t = [0.0]
    srv = Server(eps, mode="thread", workers=1, max_wait_s=0.01,
                 timeout_s=0.5, clock=lambda: t[0], start=False)
    p = srv.submit("subdivnet", *traffic[0])
    t[0] = 1.0  # deadline long gone before any flush
    srv.poll(force=True)
    r = p.result(timeout=1)
    assert r.status == "timeout"
    assert metrics.serving_stats()["timed_out"] == 1
    srv.close()


# ---------------------------------------------------------------------------
# concurrency: parallel submitters against one server
# ---------------------------------------------------------------------------

def test_concurrent_submitters_all_served():
    eps = default_endpoints(backend="pycode", names=["subdivnet"])
    traffic = eps["subdivnet"].gen_requests(12, seed=4)
    results = {}
    with Server(eps, mode="thread", workers=2, max_batch=4,
                max_wait_s=0.005) as srv:
        def client(cid):
            ps = [srv.submit("subdivnet", a, s,
                             tenant=f"client{cid}")
                  for a, s in traffic[cid * 4:(cid + 1) * 4]]
            results[cid] = [p.result(timeout=120) for p in ps]

        threads = [threading.Thread(target=client, args=(cid,))
                   for cid in range(3)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
    for cid, rs in results.items():
        assert len(rs) == 4
        for (arrays, scalars), r in zip(
                traffic[cid * 4:(cid + 1) * 4], rs):
            assert r.ok, r.error
            np.testing.assert_allclose(
                r.value, reference_for("subdivnet", arrays, scalars),
                rtol=1e-3, atol=1e-4)
    st = metrics.serving_stats()
    assert sorted(st["per_tenant"]) == ["client0", "client1", "client2"]


def test_asubmit_resolves_in_event_loop():
    import asyncio

    eps = default_endpoints(backend="pycode", names=["subdivnet"])
    traffic = eps["subdivnet"].gen_requests(4, seed=5)

    async def drive(srv):
        resps = await asyncio.gather(*[
            srv.asubmit("subdivnet", a, s, tenant="async")
            for a, s in traffic])
        return resps

    with Server(eps, mode="thread", workers=1, max_batch=4,
                max_wait_s=0.005) as srv:
        resps = asyncio.run(drive(srv))
    for (arrays, scalars), r in zip(traffic, resps):
        assert r.ok, r.error
        np.testing.assert_allclose(
            r.value, reference_for("subdivnet", arrays, scalars),
            rtol=1e-3, atol=1e-4)

"""Unit tests for IR expressions: construction, folding, dtypes, identity."""

import pytest

from repro.ir import (Add, BoolConst, Cast, DataType, FloatConst, IntConst,
                      Intrinsic, Load, Max, Min, Mul, Sub, Var, join_dtype,
                      makeCast, makeIntrinsic, makeMax, makeMin, print_expr,
                      same_expr, wrap, wrap_like)


class TestConstruction:

    def test_wrap_scalars(self):
        assert isinstance(wrap(3), IntConst)
        assert isinstance(wrap(3.5), FloatConst)
        assert isinstance(wrap(True), BoolConst)
        assert wrap(True).val is True

    def test_wrap_passthrough(self):
        v = Var("i")
        assert wrap(v) is v

    def test_wrap_rejects_strings(self):
        with pytest.raises(TypeError):
            wrap("hello")

    def test_wrap_like(self):
        assert wrap_like(3, DataType.FLOAT32).val == 3.0
        assert isinstance(wrap_like(3, DataType.FLOAT32), FloatConst)
        assert isinstance(wrap_like(2.7, DataType.INT32), IntConst)
        assert wrap_like(2.7, DataType.INT32).val == 2

    def test_operator_overloads_build_nodes(self):
        i = Var("i")
        e = i * 2 + 1
        assert isinstance(e, Add)
        assert isinstance(e.lhs, Mul)

    def test_reflected_operators(self):
        i = Var("i")
        assert isinstance(2 - i, Sub)
        assert isinstance(2 * i, Mul)


class TestFolding:

    def test_constant_folding(self):
        assert (wrap(2) + wrap(3)).val == 5
        assert (wrap(2) * wrap(3)).val == 6
        assert (wrap(7) // wrap(2)).val == 3
        assert (wrap(7) % wrap(2)).val == 1

    def test_identity_elimination(self):
        i = Var("i")
        assert (i + 0) is i
        assert (0 + i) is i
        assert (i * 1) is i
        assert (i - 0) is i
        assert same_expr(i - i, 0)

    def test_mul_zero_int_only(self):
        i = Var("i")
        assert same_expr(i * 0, 0)
        x = Load("a", [i], DataType.FLOAT32)
        # 0 * NaN != 0, so float multiplications by zero must survive.
        assert isinstance(x * 0, Mul)

    def test_min_max_folding(self):
        assert makeMin(2, 3).val == 2
        assert makeMax(2, 3).val == 3
        i = Var("i")
        assert makeMin(i, i) is i

    def test_comparison_folding(self):
        assert (wrap(2) < wrap(3)).val is True
        i = Var("i")
        assert same_expr(i <= i, True)
        assert same_expr(i != i, False)

    def test_logical_folding(self):
        i = Var("i")
        c = i < 3
        assert c.logical_and(True) is c
        assert same_expr(c.logical_and(False), False)
        assert c.logical_or(False) is c
        assert same_expr(c.logical_or(True), True)
        assert c.logical_not().logical_not() is c

    def test_intrinsic_folding(self):
        assert makeIntrinsic("abs", [wrap(-3)]).val == 3
        assert makeIntrinsic("exp", [wrap(0.0)]).val == 1.0
        assert makeIntrinsic("pow", [wrap(2.0), wrap(3.0)]).val == 8.0

    def test_intrinsic_domain_error_not_folded(self):
        e = makeIntrinsic("sqrt", [wrap(-1.0)])
        assert isinstance(e, Intrinsic)

    def test_unknown_intrinsic_rejected(self):
        with pytest.raises(ValueError):
            Intrinsic("frobnicate", [], DataType.FLOAT32)

    def test_cast_folding(self):
        assert makeCast(wrap(2.7), DataType.INT32).val == 2
        i = Var("i")
        assert makeCast(i, DataType.INT32) is i
        assert isinstance(makeCast(i, DataType.FLOAT32), Cast)


class TestDtypes:

    def test_join(self):
        assert join_dtype(DataType.INT32, DataType.FLOAT32) \
            is DataType.FLOAT32
        assert join_dtype(DataType.FLOAT64, DataType.FLOAT32) \
            is DataType.FLOAT64
        assert join_dtype(DataType.BOOL, DataType.INT64) is DataType.INT64

    def test_binop_dtype(self):
        a = Load("a", [], DataType.FLOAT32)
        i = Var("i")
        assert (a + i).dtype is DataType.FLOAT32
        assert (i + 1).dtype is DataType.INT32

    def test_realdiv_always_float(self):
        i, j = Var("i"), Var("j")
        assert (i / j).dtype is DataType.FLOAT32

    def test_cmp_dtype_bool(self):
        i = Var("i")
        assert (i < 3).dtype is DataType.BOOL

    def test_parse(self):
        assert DataType.parse("f32") is DataType.FLOAT32
        assert DataType.parse("float64") is DataType.FLOAT64
        with pytest.raises(ValueError):
            DataType.parse("f16x")

    def test_sizes(self):
        assert DataType.FLOAT64.size_bytes == 8
        assert DataType.INT32.size_bytes == 4
        assert DataType.BOOL.size_bytes == 1


class TestIdentity:

    def test_same_expr(self):
        i = Var("i")
        a = Load("a", [i + 1], DataType.FLOAT32)
        b = Load("a", [Var("i") + 1], DataType.FLOAT32)
        assert same_expr(a, b)
        assert not same_expr(a, Load("b", [i + 1], DataType.FLOAT32))
        assert not same_expr(a, Load("a", [i + 2], DataType.FLOAT32))

    def test_hashable(self):
        i = Var("i")
        s = {(i + 1).key(), (i + 1).key(), (i + 2).key()}
        assert len(s) == 2

    def test_bool_conversion_raises(self):
        i = Var("i")
        with pytest.raises(TypeError):
            bool(i < 3)


class TestPrinter:

    def test_simple(self):
        i = Var("i")
        assert print_expr(i + 1) == "i + 1"
        assert print_expr((i + 1) * 2) == "(i + 1) * 2"
        assert print_expr(i * 2 + 1) == "i * 2 + 1"

    def test_load(self):
        i = Var("i")
        e = Load("a", [i, i + 1], DataType.FLOAT32)
        assert print_expr(e) == "a[i, i + 1]"

    def test_min_max_as_calls(self):
        i = Var("i")
        assert print_expr(makeMin(i, 3)) == "min(i, 3)"

    def test_infinity(self):
        assert print_expr(wrap(float("-inf"))) == "-inf"

"""Tests for the whole-program verifier (``repro.verify``).

One deliberately-broken program per diagnostic code, asserting the code
and the source span; a clean bill of health over all four paper
workloads (raw and auto-scheduled); agreement between the race detector
and schedule-time ``parallelize`` legality; the build() gate; the CLI;
and the structured-diagnostic payload of DependenceViolation.
"""

import os

import numpy as np
import pytest

import repro as ft
from repro.analysis.verify import Diagnostic, Diagnostics, verify
from repro.errors import (DependenceViolation, InvalidProgram,
                          VerificationError)
from repro.ir import (For, Func, ReduceTo, Store, VarDef, collect_stmts,
                      dump)
from repro.passes import lower
from repro.runtime import build
from repro.runtime.metrics import reset_verifier_stats, verifier_stats
from repro.schedule import Schedule

HERE = os.path.basename(__file__)


def codes(report):
    return sorted(report.codes)


def the_diag(report, code):
    found = report.by_code(code)
    assert found, f"expected a {code} finding, got {codes(report)}"
    return found[0]


def assert_span_here(diag, line=None):
    assert diag.span is not None, f"{diag.code} finding has no span"
    assert os.path.basename(diag.span[0]) == HERE
    if line is not None:
        assert diag.span[1] == line


def first_loop(func):
    return collect_stmts(func.body, lambda s: isinstance(s, For))[0]


# ---------------------------------------------------------------------------
# Bounds sanitizer
# ---------------------------------------------------------------------------


class TestBounds:

    def test_ft101_proven_oob(self):
        @ft.transform
        def f(x: ft.Tensor[("n",), "f32", "input"]):
            y = ft.empty((x.shape(0),), "f32")
            for i in range(x.shape(0)):
                y[i] = x[i + 1]
            return y

        rep = verify(f)
        d = the_diag(rep, "FT101")
        assert d.severity == "error"
        assert d.tensor == "x"
        assert_span_here(d)
        # the span points at the offending store line
        assert "y[i] = x[i + 1]" in open(d.span[0]).readlines()[
            d.span[1] - 1]

    def test_ft101_negative_index(self):
        @ft.transform
        def f(x: ft.Tensor[("n",), "f32", "input"]):
            y = ft.empty((x.shape(0),), "f32")
            for i in range(x.shape(0)):
                y[i] = x[i - 1]
            return y

        d = the_diag(verify(f), "FT101")
        assert "negative" in d.message

    def test_guarded_access_is_clean(self):
        @ft.transform
        def f(x: ft.Tensor[("n",), "f32", "input"]):
            y = ft.empty((x.shape(0),), "f32")
            for i in range(x.shape(0)):
                y[i] = 0.0
                if i + 1 < x.shape(0):
                    y[i] = x[i + 1]
            return y

        assert not verify(f, analyses=("bounds",))

    def test_ft102_data_dependent_index(self):
        @ft.transform
        def f(idx: ft.Tensor[("n",), "i32", "input"],
              x: ft.Tensor[("m",), "f32", "input"]):
            y = ft.empty((idx.shape(0),), "f32")
            for i in range(idx.shape(0)):
                y[i] = x[idx[i]]
            return y

        rep = verify(f)
        d = the_diag(rep, "FT102")
        assert d.severity == "warning"
        assert not rep.has_errors
        assert_span_here(d)

    def test_ft103_rank_mismatch(self):
        # Staging catches wrong index counts, so build the IR directly.
        from repro.ir import DataType, Load

        body = VarDef(
            "x", (4, 5), "f32", "input", "cpu",
            VarDef("y", (4,), "f32", "output", "cpu",
                   Store("y", (0,),
                         Load("x", (0,), DataType.parse("f32")))))
        func = Func("f", ["x", "y"], ["y"], body)
        d = the_diag(verify(func), "FT103")
        assert d.severity == "error"
        assert "2-dimensional" in d.message

    def test_nonaffine_extent_relation_is_proven(self):
        """Loop bounds and indices sharing the same data-dependent
        expressions (CSR-style) are proven safe via shared atoms."""
        @ft.transform
        def f(indptr: ft.Tensor[("n1",), "i32", "input"],
              x: ft.Tensor[("m",), "f32", "input"]):
            n = indptr.shape(0) - 1
            y = ft.empty((n,), "f32")
            for i in range(n):
                buf = ft.empty((indptr[i + 1] - indptr[i],), "f32")
                for j in range(indptr[i], indptr[i + 1]):
                    buf[j - indptr[i]] = 1.0
                y[i] = 0.0
                if indptr[i + 1] > indptr[i]:
                    y[i] = buf[0]
            return y

        rep = verify(f, analyses=("bounds",))
        # no finding may concern 'buf': its extent matches its loop
        assert not [d for d in rep if d.tensor == "buf"], rep.render()


# ---------------------------------------------------------------------------
# Race detector
# ---------------------------------------------------------------------------


def _annotate_parallel(func, kind="openmp"):
    """Force a parallel annotation on a lowered Func, bypassing the
    legality checks of ``Schedule.parallelize``."""
    first_loop(func).property.parallel = kind
    return func


class TestRaces:

    def _scan(self):
        @ft.transform
        def f(a: ft.Tensor[("n",), "f32", "inout"]):
            ft.label("L")
            for i in range(1, a.shape(0)):
                a[i] = a[i - 1] + 1.0

        return f

    def test_ft201_forced_annotation(self):
        func = _annotate_parallel(lower(self._scan().func))
        d = the_diag(verify(func), "FT201")
        assert d.severity == "error"
        assert d.tensor == "a"
        assert_span_here(d)

    def test_agrees_with_parallelize_rejection(self):
        prog = self._scan()
        with pytest.raises(DependenceViolation):
            Schedule(prog).parallelize("L", "openmp")
        func = _annotate_parallel(lower(prog.func))
        assert verify(func).has_errors

    def test_agrees_with_legal_independent(self, rng):
        @ft.transform
        def f(b: ft.Tensor[("n",), "f32", "input"],
              a: ft.Tensor[("n",), "f32", "output"]):
            ft.label("L")
            for i in range(b.shape(0)):
                a[i] = b[i] + 1.0

        s = Schedule(f)
        s.parallelize("L", "openmp")
        assert not s.verify(level="error")

    def test_agrees_with_legal_reduction(self):
        @ft.transform
        def f(b: ft.Tensor[("n",), "f32", "input"],
              a: ft.Tensor[(), "f32", "inout"]):
            ft.label("L")
            for i in range(b.shape(0)):
                a[...] += b[i]

        s = Schedule(f)
        s.parallelize("L", "openmp")
        assert not s.verify(level="error")

    def test_agrees_with_legal_scatter_reduction(self):
        @ft.transform
        def f(idx: ft.Tensor[("n",), "i32", "input"],
              b: ft.Tensor[("n",), "f32", "input"],
              a: ft.Tensor[("m",), "f32", "inout"]):
            ft.label("L")
            for i in range(b.shape(0)):
                a[idx[i]] += b[i]

        s = Schedule(f)
        s.parallelize("L", "openmp")
        assert not s.verify(level="error")

    def test_agrees_with_legal_cuda_kinds(self):
        @ft.transform
        def f(a: ft.Tensor[(4, 5), "f32", "output"]):
            ft.label("Lb")
            for i in range(4):
                ft.label("Lt")
                for j in range(5):
                    a[i, j] = 1.0

        s = Schedule(f)
        s.parallelize("Lb", "cuda.blockIdx.x")
        s.parallelize("Lt", "cuda.threadIdx.x")
        assert not s.verify(level="error")

    def test_ft202_non_atomic_reduction(self):
        @ft.transform
        def f(b: ft.Tensor[("n",), "f32", "input"],
              a: ft.Tensor[(), "f32", "inout"]):
            for i in range(b.shape(0)):
                a[...] += b[i]

        func = _annotate_parallel(lower(f.func))
        d = the_diag(verify(func), "FT202")
        assert d.severity == "error"
        assert "atomic" in d.message
        # marking the reduction atomic resolves it
        for r in collect_stmts(func.body,
                               lambda s: isinstance(s, ReduceTo)):
            r.atomic = True
        assert not verify(func).has_errors

    def test_ft203_shared_memory_cross_block(self):
        @ft.transform
        def f(b: ft.Tensor[(8,), "f32", "input"],
              a: ft.Tensor[(8,), "f32", "output"]):
            t = ft.empty((8,), "f32")
            ft.label("L")
            for i in range(8):
                t[0] = b[i]
                a[i] = t[0]

        s = Schedule(f)
        s.set_mtype("t", "gpu/shared")
        func = s.func
        first_loop(func).property.parallel = "cuda.blockIdx.x"
        rep = verify(func)
        d = the_diag(rep, "FT203")
        assert d.severity == "error"
        assert d.tensor == "t"
        assert "gpu/shared" in d.message


# ---------------------------------------------------------------------------
# Def-use
# ---------------------------------------------------------------------------


class TestDefUse:

    def test_ft301_use_before_init(self):
        @ft.transform
        def f(x: ft.Tensor[("n",), "f32", "input"]):
            t = ft.empty((x.shape(0),), "f32")
            y = ft.empty((x.shape(0),), "f32")
            for i in range(x.shape(0)):
                y[i] = t[i]
                t[i] = x[i]
            return y

        d = the_diag(verify(f), "FT301")
        assert d.severity == "error"
        assert d.tensor == "t"
        assert_span_here(d)

    def test_ft301_reduce_without_init(self):
        @ft.transform
        def f(x: ft.Tensor[("n",), "f32", "input"]):
            t = ft.empty((), "f32")
            for i in range(x.shape(0)):
                t[...] += x[i]
            y = ft.empty((), "f32")
            y[...] = t[...]
            return y

        rep = verify(f)
        assert rep.by_code("FT301") or rep.by_code("FT302")

    def test_ft302_never_written(self):
        @ft.transform
        def f(x: ft.Tensor[("n",), "f32", "input"]):
            t = ft.empty((x.shape(0),), "f32")
            y = ft.empty((x.shape(0),), "f32")
            for i in range(x.shape(0)):
                y[i] = t[i]
            return y

        d = the_diag(verify(f), "FT302")
        assert d.severity == "error"
        assert d.tensor == "t"
        assert_span_here(d)

    def test_initialized_then_read_is_clean(self):
        @ft.transform
        def f(x: ft.Tensor[("n",), "f32", "input"]):
            t = ft.empty((x.shape(0),), "f32")
            y = ft.empty((x.shape(0),), "f32")
            for i in range(x.shape(0)):
                t[i] = x[i]
            for i in range(x.shape(0)):
                y[i] = t[i]
            return y

        assert not verify(f, analyses=("defuse",))


# ---------------------------------------------------------------------------
# Lint
# ---------------------------------------------------------------------------


class TestLint:

    def _prog(self):
        @ft.transform
        def f(x: ft.Tensor[("n",), "f32", "input"]):
            dead = ft.empty((4,), "f32")
            unused = ft.empty((4,), "f32")
            y = ft.empty((x.shape(0),), "f32")
            for i in range(x.shape(0)):
                y[i] = x[i]
            for j in range(4):
                dead[j] = 1.0
            for k in range(3, 3):
                y[0] = 0.0
            return y

        return f

    def test_ft401_dead_write(self):
        d = the_diag(verify(self._prog()), "FT401")
        assert d.severity == "warning"
        assert d.tensor == "dead"
        assert_span_here(d)

    def test_ft402_unused_tensor(self):
        d = the_diag(verify(self._prog()), "FT402")
        assert d.severity == "warning"
        assert d.tensor == "unused"

    def test_ft403_zero_trip_loop(self):
        d = the_diag(verify(self._prog()), "FT403")
        assert d.severity == "warning"
        assert "zero iterations" in d.message

    def test_level_filter_drops_warnings(self):
        rep = verify(self._prog(), level="error")
        assert not rep  # lint findings are all warnings


# ---------------------------------------------------------------------------
# Clean bill of health over the paper workloads
# ---------------------------------------------------------------------------


class TestWorkloadsClean:

    @pytest.mark.parametrize("name", ["subdivnet", "longformer", "softras",
                                      "gat"])
    def test_raw_no_errors(self, name):
        from repro.workloads import ALL

        rep = verify(ALL[name].make_program())
        assert not rep.has_errors, rep.render()

    @pytest.mark.parametrize("name", ["subdivnet", "longformer", "softras",
                                      "gat"])
    def test_auto_scheduled_no_errors(self, name):
        from repro.autosched import auto_schedule
        from repro.workloads import ALL

        func = auto_schedule(ALL[name].make_program().func)
        rep = verify(func)
        assert not rep.has_errors, rep.render()


# ---------------------------------------------------------------------------
# Driver gate, CLI, report plumbing
# ---------------------------------------------------------------------------


def _broken_prog():
    @ft.transform
    def f(x: ft.Tensor[("n",), "f32", "input"]):
        y = ft.empty((x.shape(0),), "f32")
        for i in range(x.shape(0)):
            y[i] = x[i + 1]
        return y

    return f


class TestBuildGate:

    def test_kwarg_gate_raises(self):
        with pytest.raises(VerificationError) as exc:
            build(_broken_prog(), verify=True)
        assert isinstance(exc.value.diagnostics, Diagnostics)
        assert exc.value.diagnostics.by_code("FT101")

    def test_env_gate(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY", "1")
        with pytest.raises(VerificationError):
            build(_broken_prog())

    def test_default_is_off(self, rng):
        prog = _broken_prog()
        exe = build(prog)  # compiles; the bug only bites at runtime
        assert exe is not None

    def test_warnings_do_not_block(self, rng):
        @ft.transform
        def f(idx: ft.Tensor[("n",), "i32", "input"],
              x: ft.Tensor[("m",), "f32", "input"]):
            y = ft.empty((idx.shape(0),), "f32")
            for i in range(idx.shape(0)):
                y[i] = x[idx[i]]
            return y

        exe = build(f, verify=True)
        out = exe(np.zeros(3, np.int32),
                  rng.standard_normal(5).astype(np.float32))
        assert out.shape == (3,)


class TestCLI:

    def test_workload_passes(self, capsys):
        from repro.verify.__main__ import main

        assert main(["gat", "--no-source"]) == 0
        out = capsys.readouterr().out
        assert "gat" in out and "passed" in out

    def test_broken_file_fails(self, tmp_path, capsys):
        src = tmp_path / "broken.py"
        src.write_text(
            "import repro as ft\n"
            "@ft.transform\n"
            "def f(x: ft.Tensor[('n',), 'f32', 'input']):\n"
            "    y = ft.empty((x.shape(0),), 'f32')\n"
            "    for i in range(x.shape(0)):\n"
            "        y[i] = x[i + 1]\n"
            "    return y\n")
        from repro.verify.__main__ import main

        assert main([str(src)]) == 1
        assert "FT101" in capsys.readouterr().out

    def test_json_output(self, capsys):
        import json

        from repro.verify.__main__ import main

        assert main(["softras", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["targets"][0]["target"] == "softras"
        assert payload["targets"][0]["errors"] == 0


class TestDiagnosticsPlumbing:

    def test_dependence_violation_payload(self):
        @ft.transform
        def f(a: ft.Tensor[("n",), "f32", "inout"]):
            ft.label("L")
            for i in range(1, a.shape(0)):
                a[i] = a[i - 1] + 1.0

        with pytest.raises(DependenceViolation) as exc:
            Schedule(f).parallelize("L", "openmp")
        err = exc.value
        assert err.dependences
        for d in err.dependences:
            assert isinstance(d, Diagnostic)
            assert d.code == "FT200"
            assert d.source is not None  # the raw Dependence
        assert len(err.raw_dependences) == len(err.dependences)
        assert_span_here(err.dependences[0])
        assert "FT200" in err.render()

    def test_metrics_counters(self):
        reset_verifier_stats()
        verify(_broken_prog())
        from repro.workloads import ALL

        verify(ALL["softras"].make_program())
        stats = verifier_stats()
        assert stats["runs"] == 2
        assert stats["failed"] == 1
        assert stats["passed"] == 1
        assert stats["errors"] >= 1

    def test_render_has_caret_and_summary(self):
        rep = verify(_broken_prog())
        text = rep.render()
        assert "error[FT101]" in text
        assert "^" in text
        assert "error(s)" in text

    def test_ir_path_breadcrumb(self):
        d = the_diag(verify(_broken_prog()), "FT101")
        assert any(p.startswith("for ") for p in d.path)


class TestBindMessages:

    def _exe(self):
        @ft.transform
        def f(h: ft.Tensor[("n", "f"), "f32", "input"]):
            y = ft.empty((h.shape(0),), "f32")
            for i in range(h.shape(0)):
                y[i] = h[i, 0]
            return y

        return build(f)

    def test_ndim_mismatch_names_everything(self):
        with pytest.raises(InvalidProgram) as exc:
            self._exe()(np.zeros(7, np.int64))
        msg = str(exc.value)
        assert "'h'" in msg
        assert "2-D" in msg and "1-D" in msg
        assert "f32" in msg and "int64" in msg
        assert "(n, f)" in msg and "(7,)" in msg

    def test_const_dim_mismatch(self):
        @ft.transform
        def f(a: ft.Tensor[(4,), "f32", "input"]):
            y = ft.empty((4,), "f32")
            for i in range(4):
                y[i] = a[i]
            return y

        with pytest.raises(InvalidProgram) as exc:
            build(f)(np.zeros(5, np.float32))
        msg = str(exc.value)
        assert "'a'" in msg and "4" in msg and "5" in msg

    def test_conflicting_shape_vars(self):
        @ft.transform
        def f(a: ft.Tensor[("n",), "f32", "input"],
              b: ft.Tensor[("n",), "f32", "input"]):
            y = ft.empty((a.shape(0),), "f32")
            for i in range(a.shape(0)):
                y[i] = a[i] + b[i]
            return y

        with pytest.raises(InvalidProgram) as exc:
            build(f)(np.zeros(3, np.float32), np.zeros(4, np.float32))
        msg = str(exc.value)
        assert "'n'" in msg and "'b'" in msg
        assert "3" in msg and "4" in msg

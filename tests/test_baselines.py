"""Tests for the OpTensor baseline framework: operator semantics, graph
autograd, kernel/byte accounting and the simulated-memory limit."""

import numpy as np
import pytest

from repro.baselines import (Device, abs_, add, bmm, cat, div, exp,
                             index_select, leaky_relu, matmul, max_,
                             maximum, mean, mul, pad, prod, relu, reshape,
                             scatter_add, sigmoid, sliding_window, softmax,
                             sub, sum_, tanh, tensor, transpose, vmap,
                             where)
from repro.errors import SimulatedOOM


@pytest.fixture
def dev():
    return Device("test")


class TestOperators:

    def test_elementwise(self, dev, rng):
        x = rng.standard_normal((3, 4)).astype(np.float32)
        y = rng.standard_normal((3, 4)).astype(np.float32)
        a, b = tensor(x, dev), tensor(y, dev)
        np.testing.assert_allclose((a + b).numpy(), x + y)
        np.testing.assert_allclose((a - b).numpy(), x - y)
        np.testing.assert_allclose((a * b).numpy(), x * y)
        np.testing.assert_allclose((a / (b * b + 1.0)).numpy(),
                                   x / (y * y + 1), rtol=1e-6)

    def test_unary(self, dev, rng):
        x = rng.standard_normal(8).astype(np.float32)
        a = tensor(x, dev)
        np.testing.assert_allclose(exp(a).numpy(), np.exp(x), rtol=1e-6)
        np.testing.assert_allclose(tanh(a).numpy(), np.tanh(x), rtol=1e-6)
        np.testing.assert_allclose(relu(a).numpy(), np.maximum(x, 0))
        np.testing.assert_allclose(abs_(a).numpy(), np.abs(x))
        np.testing.assert_allclose(
            leaky_relu(a, 0.1).numpy(), np.where(x > 0, x, 0.1 * x),
            rtol=1e-6)

    def test_reductions(self, dev, rng):
        x = rng.standard_normal((4, 5)).astype(np.float32)
        a = tensor(x, dev)
        np.testing.assert_allclose(sum_(a).numpy(), x.sum(), rtol=1e-5)
        np.testing.assert_allclose(sum_(a, axis=1).numpy(), x.sum(1),
                                   rtol=1e-5)
        np.testing.assert_allclose(max_(a, axis=0).numpy(), x.max(0))
        np.testing.assert_allclose(mean(a).numpy(), x.mean(), rtol=1e-5)

    def test_matmul_softmax(self, dev, rng):
        x = rng.standard_normal((4, 5)).astype(np.float32)
        y = rng.standard_normal((5, 3)).astype(np.float32)
        np.testing.assert_allclose(matmul(tensor(x, dev),
                                          tensor(y, dev)).numpy(),
                                   x @ y, rtol=1e-5)
        s = softmax(tensor(x, dev), axis=1).numpy()
        ref = np.exp(x - x.max(1, keepdims=True))
        ref /= ref.sum(1, keepdims=True)
        np.testing.assert_allclose(s, ref, rtol=1e-5)

    def test_data_movement(self, dev, rng):
        x = rng.standard_normal((5, 3)).astype(np.float32)
        a = tensor(x, dev)
        idx = np.array([4, 0, 2], np.int64)
        np.testing.assert_allclose(
            index_select(a, 0, tensor(idx, dev, dtype=np.int64)).numpy(),
            x[idx])
        np.testing.assert_allclose(
            cat([a, a], axis=0).numpy(), np.concatenate([x, x]))
        np.testing.assert_allclose(
            pad(a, ((1, 1), (0, 0))).numpy(),
            np.pad(x, ((1, 1), (0, 0))))
        np.testing.assert_allclose(transpose(a).numpy(), x.T)
        np.testing.assert_allclose(reshape(a, (3, 5)).numpy(),
                                   x.reshape(3, 5))

    def test_sliding_window(self, dev, rng):
        x = rng.standard_normal((6, 2)).astype(np.float32)
        w = sliding_window(tensor(x, dev), 3).numpy()
        assert w.shape == (4, 3, 2)
        np.testing.assert_allclose(w[1], x[1:4])

    def test_scatter_add(self, dev, rng):
        base = np.zeros((4, 2), np.float32)
        src = rng.standard_normal((5, 2)).astype(np.float32)
        idx = np.array([0, 1, 1, 3, 0], np.int64)
        out = scatter_add(tensor(base, dev), 0, idx,
                          tensor(src, dev)).numpy()
        ref = base.copy()
        np.add.at(ref, idx, src)
        np.testing.assert_allclose(out, ref, rtol=1e-6)


class TestAutograd:

    def test_mul_chain(self, dev, rng):
        x = rng.standard_normal(5).astype(np.float32)
        a = tensor(x, dev, requires_grad=True)
        y = sum_(a * a * 3.0)
        y.backward()
        np.testing.assert_allclose(a.grad, 6 * x, rtol=1e-5)

    def test_matmul_grad(self, dev, rng):
        A = rng.standard_normal((3, 4)).astype(np.float32)
        B = rng.standard_normal((4, 2)).astype(np.float32)
        a = tensor(A, dev, requires_grad=True)
        b = tensor(B, dev, requires_grad=True)
        sum_(matmul(a, b)).backward()
        np.testing.assert_allclose(a.grad, np.ones((3, 2)) @ B.T,
                                   rtol=1e-5)
        np.testing.assert_allclose(b.grad, A.T @ np.ones((3, 2)),
                                   rtol=1e-5)

    def test_softmax_grad(self, dev, rng):
        x = rng.standard_normal((2, 4)).astype(np.float32)
        og = rng.standard_normal((2, 4)).astype(np.float32)
        a = tensor(x, dev, requires_grad=True)
        softmax(a, axis=1).backward(og)
        s = np.exp(x - x.max(1, keepdims=True))
        s /= s.sum(1, keepdims=True)
        ref = s * (og - (og * s).sum(1, keepdims=True))
        np.testing.assert_allclose(a.grad, ref, rtol=1e-4, atol=1e-6)

    def test_gather_grad(self, dev, rng):
        x = rng.standard_normal((4, 2)).astype(np.float32)
        a = tensor(x, dev, requires_grad=True)
        idx = np.array([1, 1, 3], np.int64)
        sum_(index_select(a, 0, tensor(idx, dev,
                                       dtype=np.int64))).backward()
        ref = np.zeros_like(x)
        np.add.at(ref, idx, 1.0)
        np.testing.assert_allclose(a.grad, ref)

    def test_sliding_window_grad(self, dev, rng):
        x = rng.standard_normal((6, 2)).astype(np.float32)
        a = tensor(x, dev, requires_grad=True)
        sum_(sliding_window(a, 3)).backward()
        counts = np.array([1, 2, 3, 3, 2, 1], np.float32)[:, None]
        np.testing.assert_allclose(a.grad, np.broadcast_to(counts,
                                                           (6, 2)))

    def test_branch_grad_accumulates(self, dev, rng):
        x = rng.standard_normal(4).astype(np.float32)
        a = tensor(x, dev, requires_grad=True)
        y = a * 2.0
        z = sum_(y + y * a)
        z.backward()
        np.testing.assert_allclose(a.grad, 2 + 4 * x, rtol=1e-5)


class TestAccounting:

    def test_kernel_counts(self, rng):
        dev = Device("count")
        a = tensor(rng.standard_normal(16).astype(np.float32), dev)
        b = tensor(rng.standard_normal(16).astype(np.float32), dev)
        dev.reset()
        _ = a + b
        _ = a * b
        assert dev.kernels == 2
        assert dev.kernel_names == ["add", "mul"]

    def test_bytes_accounting(self, rng):
        dev = Device("bytes")
        a = tensor(np.zeros(1000, np.float32), dev)
        dev.reset()
        _ = a + a
        assert dev.bytes_read == 2 * 4000
        assert dev.bytes_written == 4000

    def test_views_free(self, rng):
        dev = Device("views")
        a = tensor(np.zeros((10, 10), np.float32), dev)
        dev.reset()
        _ = reshape(a, (100,))
        assert dev.bytes_written == 0

    def test_peak_memory_tracked(self):
        dev = Device("peak")
        base = dev.peak_bytes
        t = tensor(np.zeros(1 << 20, np.float32), dev)
        assert dev.peak_bytes - base >= (1 << 20) * 4

    def test_capacity_oom(self):
        dev = Device("tiny", capacity_bytes=1024)
        with pytest.raises(SimulatedOOM):
            tensor(np.zeros(1 << 16, np.float32), dev)

    def test_backward_counts_kernels(self, rng):
        dev = Device("bwd")
        a = tensor(rng.standard_normal(8).astype(np.float32), dev,
                   requires_grad=True)
        y = sum_(a * a)
        before = dev.kernels
        y.backward()
        assert dev.kernels > before  # gradient kernels are launched


class TestVmap:

    def test_vmap_broadcasts(self, dev, rng):
        def per_item(x):
            return sum_(x * x, axis=-1)

        batched = vmap(per_item)
        x = rng.standard_normal((5, 3)).astype(np.float32)
        out = batched(tensor(x, dev))
        np.testing.assert_allclose(out.numpy(), (x * x).sum(-1),
                                   rtol=1e-5)

"""Tests for the rule-based auto-scheduler and the search tuner."""

import numpy as np
import pytest

import repro as ft
from repro.autosched import (CPU, GPU, RandomTuner, Target, auto_schedule,
                             default_target)
from repro.ir import For, If, LibCall, VarDef, collect_stmts, dump
from repro.runtime import build
from repro.schedule import Schedule


def _loops(func):
    return collect_stmts(func.body, lambda s: isinstance(s, For))


class TestAutoFuse:

    def test_adjacent_elementwise_fused(self):
        @ft.transform
        def f(x: ft.Tensor[("n",), "f32", "input"]):
            a = ft.empty(("n",), "f32")
            for i in range(x.shape(0)):
                a[i] = x[i] * 2.0
            y = ft.empty(("n",), "f32")
            for j in range(x.shape(0)):
                y[j] = a[j] + 1.0
            return y

        out = auto_schedule(f, target=CPU, passes=["fuse"])
        assert len(_loops(out)) == 1

    def test_illegal_fusion_skipped(self):
        @ft.transform
        def f(a: ft.Tensor[("n",), "f32", "inout"]):
            for i in range(a.shape(0)):
                a[i] = a[i] + 1.0
            for j in range(a.shape(0) - 1):
                a[j] = a[j + 1]  # backward dep: cannot fuse

        out = auto_schedule(f, target=CPU, passes=["fuse"])
        assert len(_loops(out)) == 2


class TestAutoParallelizeVectorize:

    def test_cpu_annotations(self):
        @ft.transform
        def f(x: ft.Tensor[("n", "m"), "f32", "input"]):
            y = ft.empty(("n", "m"), "f32")
            for i in range(x.shape(0)):
                for j in range(x.shape(1)):
                    y[i, j] = x[i, j] * 2.0
            return y

        out = auto_schedule(f, target=CPU)
        pars = [l for l in _loops(out) if l.property.parallel]
        vecs = [l for l in _loops(out) if l.property.vectorize]
        assert pars and pars[0].property.parallel == "openmp"
        assert vecs

    def test_gpu_two_level_binding(self):
        @ft.transform
        def f(x: ft.Tensor[("n", 64), "f32", "input"]):
            y = ft.empty(("n", 64), "f32")
            for i in range(x.shape(0)):
                for j in range(64):
                    y[i, j] = x[i, j] + 1.0
            return y

        out = auto_schedule(f, target=GPU)
        kinds = {l.property.parallel for l in _loops(out)
                 if l.property.parallel}
        assert "cuda.blockIdx.x" in kinds
        assert "cuda.threadIdx.x" in kinds

    def test_serial_scan_stays_sequential(self):
        @ft.transform
        def f(a: ft.Tensor[("n",), "f32", "inout"]):
            for i in range(1, a.shape(0)):
                a[i] = a[i - 1] + a[i]

        out = auto_schedule(f, target=CPU)
        assert all(not l.property.parallel for l in _loops(out))


class TestAutoMemTypeUseLibUnroll:

    def test_gpu_local_promotion(self):
        @ft.transform
        def f(x: ft.Tensor[("n", 16), "f32", "input"]):
            y = ft.empty(("n",), "f32")
            for i in range(x.shape(0)):
                t = ft.empty((16,), "f32")
                for k in range(16):
                    t[k] = x[i, k] * 2.0
                s = 0.0
                for k in range(16):
                    s += t[k]
                y[i] = s
            return y

        out = auto_schedule(f, target=GPU)
        from repro.ir import MemType

        mtypes = {d.name.split(".")[0]: d.mtype
                  for d in collect_stmts(out.body,
                                         lambda s: isinstance(s, VarDef))
                  if d.atype.value == "cache"}
        assert any(m in (MemType.GPU_LOCAL, MemType.GPU_SHARED)
                   for m in mtypes.values())

    def test_matmul_to_lib(self):
        from repro import libop

        @ft.transform
        def f(a: ft.Tensor[(16, 16), "f32", "input"],
              b: ft.Tensor[(16, 16), "f32", "input"]):
            return libop.matmul(a, b)

        out = auto_schedule(f, target=CPU)
        assert collect_stmts(out.body, lambda s: isinstance(s, LibCall))

    def test_short_loop_unrolled(self):
        @ft.transform
        def f(x: ft.Tensor[("n", 3), "f32", "input"]):
            y = ft.zeros(("n",), "f32")
            for i in range(x.shape(0)):
                for j in range(3):
                    y[i] += x[i, j]
            return y

        out = auto_schedule(f, target=CPU)
        # the j loop (trip 3) is unrolled away
        iters = {l.iter_var for l in _loops(out)}
        assert not any(it.startswith("j") for it in iters)


class TestEndToEnd:

    def test_results_unchanged(self, rng):
        @ft.transform
        def f(x: ft.Tensor[("n", "m"), "f32", "input"],
              idx: ft.Tensor[("n",), "i32", "input"]):
            y = ft.zeros(("n",), "f32")
            for i in range(x.shape(0)):
                for j in range(x.shape(1)):
                    y[i] += x[idx[i], j]
            return y

        x = rng.standard_normal((10, 6)).astype(np.float32)
        idx = rng.integers(0, 10, 10).astype(np.int32)
        ref = build(f)(x, idx)
        for target in (CPU, GPU):
            out_func = auto_schedule(f, target=target)
            backend = "gpusim" if target.kind == "gpu" else "pycode"
            np.testing.assert_allclose(
                build(out_func, backend=backend)(x, idx), ref, rtol=1e-5)

    def test_default_target(self):
        assert default_target("gpusim").kind == "gpu"
        assert default_target("c").kind == "cpu"

    def test_driver_optimize_flag(self, rng):
        @ft.transform
        def f(x: ft.Tensor[(8,), "f32", "input"]):
            y = ft.empty((8,), "f32")
            for i in range(8):
                y[i] = x[i] * 3.0
            return y

        x = rng.standard_normal(8).astype(np.float32)
        exe = build(f, backend="pycode", optimize=True)
        np.testing.assert_allclose(exe(x), 3 * x, rtol=1e-6)


class TestRandomTuner:

    def test_tuner_improves_or_matches(self, rng):
        @ft.transform
        def f(x: ft.Tensor[(64, 64), "f32", "input"]):
            y = ft.empty((64, 64), "f32")
            for i in range(64):
                for j in range(64):
                    y[i, j] = x[i, j] * 2.0 + 1.0
            return y

        x = rng.standard_normal((64, 64)).astype(np.float32)
        tuner = RandomTuner(f, make_inputs=lambda: (x,),
                            backend="pycode", rounds=6, seed=1)
        result = tuner.tune()
        assert result.rounds == 6
        assert result.best_time < float("inf")
        assert len(result.round_times) == 6
        # the tuned program is still correct
        exe = build(result.best_func, backend="pycode")
        np.testing.assert_allclose(exe(x), 2 * x + 1, rtol=1e-6)

    def test_records_per_round_cost(self):
        @ft.transform
        def f(y: ft.Tensor[(16,), "f32", "output"]):
            for i in range(16):
                y[i] = 1.0

        tuner = RandomTuner(f, make_inputs=lambda: (),
                            backend="pycode", rounds=3, seed=0)
        result = tuner.tune()
        assert result.total_time > 0
        assert result.time_per_round > 0

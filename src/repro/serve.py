"""``python -m repro.serve`` — serving demo and load generator.

Generates a deterministic request mix for the chosen workloads, runs it
twice — serially (one compiled call per request, the no-serving
baseline) and through a :class:`~repro.serving.Server` (dynamic
batching) — verifies the batched results against the serial ones, and
prints throughput, latency percentiles and the serving counters.

Examples::

    python -m repro.serve                          # all 4 workloads
    python -m repro.serve --workloads gat longformer --requests 64
    python -m repro.serve --mode process --workers 4 --backend c
    python -m repro.serve --tenants 3 --quota 8    # admission control
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List

import numpy as np

from .runtime.metrics import reset_serving_stats, serving_stats
from .serving import Server, default_endpoints


def run_serial(endpoints, traffic) -> Dict[str, float]:
    """The baseline: every request is its own compiled call."""
    t0 = time.perf_counter()
    outs = []
    for name, arrays, scalars in traffic:
        ep = endpoints[name]
        exe = ep.executable(ep.base_func())
        outs.append(exe(*arrays, **scalars))
    return {"seconds": time.perf_counter() - t0, "outputs": outs}


def run_batched(endpoints, traffic, args) -> Dict[str, object]:
    reset_serving_stats()
    quotas = None
    if args.quota is not None:
        quotas = {f"tenant{t}": args.quota for t in range(args.tenants)}
    srv = Server(endpoints, mode=args.mode, workers=args.workers,
                 max_batch=args.max_batch,
                 max_wait_s=args.max_wait_ms / 1e3, quotas=quotas)
    t0 = time.perf_counter()
    pendings = []
    for i, (name, arrays, scalars) in enumerate(traffic):
        tenant = f"tenant{i % args.tenants}"
        pendings.append(srv.submit(name, arrays, scalars, tenant=tenant))
    responses = [p.result(timeout=120) for p in pendings]
    seconds = time.perf_counter() - t0
    srv.close()
    return {"seconds": seconds, "responses": responses,
            "stats": serving_stats()}


def main(argv: List[str] = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.serve", description=__doc__.split("\n")[0])
    ap.add_argument("--workloads", nargs="+",
                    default=["subdivnet", "longformer", "softras", "gat"],
                    choices=["subdivnet", "longformer", "softras", "gat"])
    ap.add_argument("--requests", type=int, default=32,
                    help="requests per workload")
    ap.add_argument("--mode", choices=["thread", "process"],
                    default="thread")
    ap.add_argument("--workers", type=int, default=2)
    ap.add_argument("--max-batch", type=int, default=8)
    ap.add_argument("--max-wait-ms", type=float, default=2.0)
    ap.add_argument("--backend", default="pycode")
    ap.add_argument("--no-optimize", action="store_true")
    ap.add_argument("--tenants", type=int, default=1)
    ap.add_argument("--quota", type=int, default=None,
                    help="per-tenant in-flight quota (default: unlimited)")
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--json", action="store_true",
                    help="machine-readable output")
    args = ap.parse_args(argv)

    endpoints = default_endpoints(backend=args.backend,
                                  optimize=not args.no_optimize,
                                  names=args.workloads)
    traffic = []
    for name, ep in endpoints.items():
        for arrays, scalars in ep.gen_requests(args.requests,
                                               seed=args.seed):
            traffic.append((name, arrays, scalars))
        ep.warm()

    serial = run_serial(endpoints, traffic)
    batched = run_batched(endpoints, traffic, args)

    mismatches = rejected = 0
    for (name, _a, _s), ref, resp in zip(traffic, serial["outputs"],
                                         batched["responses"]):
        if resp.status == "rejected":
            rejected += 1
        elif not resp.ok or not np.allclose(resp.value, ref, atol=1e-4):
            mismatches += 1

    n = len(traffic)
    st = batched["stats"]
    report = {
        "requests": n,
        "serial_s": round(serial["seconds"], 4),
        "batched_s": round(batched["seconds"], 4),
        "speedup": round(serial["seconds"] /
                         max(batched["seconds"], 1e-9), 2),
        "serial_rps": round(n / max(serial["seconds"], 1e-9), 1),
        "batched_rps": round(n / max(batched["seconds"], 1e-9), 1),
        "mismatches": mismatches,
        "rejected": rejected,
        "stats": st,
    }
    if args.json:
        json.dump(report, sys.stdout, indent=2, default=str)
        print()
    else:
        print(f"{n} requests over {len(endpoints)} endpoint(s) "
              f"[{args.mode} mode, {args.workers} workers, "
              f"max_batch={args.max_batch}, "
              f"window={args.max_wait_ms}ms]")
        print(f"  serial : {report['serial_s']:8.3f}s  "
              f"({report['serial_rps']:.0f} req/s)")
        print(f"  batched: {report['batched_s']:8.3f}s  "
              f"({report['batched_rps']:.0f} req/s)  "
              f"speedup {report['speedup']}x")
        print(f"  batches: {st['batches']}  sizes {st['batch_size_hist']}"
              f"  pad_elements {st['pad_elements']}")
        print(f"  latency: p50 {st['latency_p50_s'] * 1e3:.1f}ms  "
              f"p99 {st['latency_p99_s'] * 1e3:.1f}ms")
        print(f"  outcomes: {st['completed']} ok, {st['failed']} failed, "
              f"{st['timed_out']} timed out, "
              f"{st['rejected_quota'] + st['rejected_queue']} rejected")
        if mismatches:
            print(f"  !! {mismatches} result(s) differ from serial")
    return 1 if mismatches else 0


if __name__ == "__main__":
    sys.exit(main())

"""Batching strategies: how compatible requests coalesce into one call.

A strategy answers three questions for its endpoint:

- ``bucket_key(arrays, scalars)`` — which requests may share a batch
  (requests whose keys are equal are *compatible*: one compiled call
  can serve them together);
- ``collate(endpoint, requests)`` — fold the requests of one batch into
  a single ``(func, arrays, scalars, pad_elements)`` call description;
- ``split(endpoint, outs, requests)`` — slice the batched call's
  outputs back into one result per request.

:class:`StackStrategy` is the generic dense case: identical shapes are
stacked along the new leading axis of the ``batch_axis_prepend``
variant. The ragged strategies for variable-length and variable-size
requests live in ``repro.serving.ragged``.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = ["BatchStrategy", "StackStrategy", "array_digest",
           "scalar_items"]


def scalar_items(scalars: Dict[str, object]) -> tuple:
    """Scalars as a canonical hashable tuple (bucket-key component)."""
    if not scalars:
        return ()
    return tuple(sorted((k, int(v)) for k, v in scalars.items()))


def array_digest(arr: np.ndarray) -> str:
    """A short content fingerprint, for bucket keys that must separate
    requests by array *contents* (e.g. different model weights)."""
    arr = np.ascontiguousarray(arr)
    h = hashlib.blake2b(arr.tobytes(), digest_size=8)
    h.update(str(arr.shape).encode())
    return h.hexdigest()


class BatchStrategy:
    """Interface; see module docstring. ``name`` tags bucket keys."""

    name = "base"

    def bucket_key(self, arrays: Sequence[np.ndarray],
                   scalars: Dict[str, object]) -> tuple:
        raise NotImplementedError

    def collate(self, endpoint, requests) -> Tuple[object, list, dict, int]:
        """-> (func, arrays, scalars, pad_elements) for one batched call."""
        raise NotImplementedError

    def split(self, endpoint, outs, requests) -> List[object]:
        """-> one output (array or tuple of arrays) per request."""
        raise NotImplementedError

    @staticmethod
    def _outs_tuple(outs) -> tuple:
        return outs if isinstance(outs, tuple) else (outs,)

    @staticmethod
    def _per_request(parts: List[tuple]) -> List[object]:
        return [p[0] if len(p) == 1 else p for p in parts]


class StackStrategy(BatchStrategy):
    """Dense batching: equal-shape requests stack along a new leading
    axis and run through the endpoint's ``batch_axis_prepend`` variant.
    """

    name = "stack"

    def bucket_key(self, arrays, scalars):
        # dtype objects hash/compare by identity-equivalence and are
        # cheaper to fetch than .str on this per-request hot path
        return (self.name,
                tuple((a.shape, a.dtype) for a in arrays),
                scalar_items(scalars))

    def collate(self, endpoint, requests):
        n_args = len(requests[0].arrays)
        stacked = [np.stack([r.arrays[i] for r in requests])
                   for i in range(n_args)]
        return endpoint.batched_func(), stacked, \
            dict(requests[0].scalars), 0

    def split(self, endpoint, outs, requests):
        outs = self._outs_tuple(outs)
        parts = [tuple(o[i] for o in outs) for i in range(len(requests))]
        return self._per_request(parts)

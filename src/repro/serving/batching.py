"""Batch-axis prepending: turn a Func into its batched variant.

``batch_axis_prepend(func)`` rewrites a compiled-unit that serves one
request into one that serves ``bsz`` stacked requests in a single call:

- every interface tensor (inputs, inouts, outputs) gains a leading
  symbolic ``bsz`` dimension;
- the whole computation is wrapped in ``for bi in [0, bsz)`` and every
  access to an interface tensor is indexed by ``bi`` first;
- ``bsz`` joins the scalar parameters and is inferred by the driver
  from the leading extent of the stacked arrays, so one compiled
  artifact serves any batch size.

This is the ``baselines/vmap.py`` whole-batch idea carried into the
compiled path: the batched Func goes through the ordinary pipeline
(``build(..., optimize=...)``), lands in the persistent artifact store
like any other program, and amortizes per-call dispatch across the
batch. By-value scalar parameters (``ft.Size``) stay shared across the
batch — requests batched together must agree on them, which the serving
bucketer guarantees by keying buckets on scalars.

The transform is memoized on the input Func's structural hash so repeat
requests reuse one batched Func object (and therefore hit the in-memory
and on-disk build caches).
"""

from __future__ import annotations

from typing import Dict, List

from ..errors import InvalidProgram
from ..ir import (AccessType, Assert, Expr, For, Func, LibCall, Load,
                  Mutator, Stmt, Store, Var, VarDef, fresh_name,
                  struct_hash, used_names)
from ..ir import stmt as S

__all__ = ["BatchingUnsupported", "batch_axis_prepend"]


class BatchingUnsupported(InvalidProgram):
    """The Func cannot be batch-transformed (the serving layer falls
    back to serial per-request execution)."""


#: struct_hash(func) -> batched Func; bounded like the build cache
_MEMO: Dict[str, Func] = {}
_MEMO_LIMIT = 256


class _AccessRewriter(Mutator):
    """Prepend ``bi`` to every access of an interface tensor."""

    def __init__(self, iface: set, bi: Expr):
        self.iface = iface
        self.bi = bi

    def mutate_Load(self, e: Load):
        idx = [self.mutate_expr(i) for i in e.indices]
        if e.var in self.iface:
            idx = [self.bi] + idx
        return Load(e.var, idx, e.dtype)

    def mutate_Store(self, s: Store):
        idx = [self.mutate_expr(i) for i in s.indices]
        if s.var in self.iface:
            idx = [self.bi] + idx
        out = Store(s.var, idx, self.mutate_expr(s.expr))
        out.sid, out.label = s.sid, s.label
        return out

    def mutate_ReduceTo(self, s: S.ReduceTo):
        idx = [self.mutate_expr(i) for i in s.indices]
        if s.var in self.iface:
            idx = [self.bi] + idx
        out = S.ReduceTo(s.var, idx, s.op, self.mutate_expr(s.expr),
                         s.atomic)
        out.sid, out.label = s.sid, s.label
        return out

    def mutate_LibCall(self, s: LibCall):
        if self.iface & (set(s.outs) | set(s.args)):
            raise BatchingUnsupported(
                f"cannot batch a LibCall ({s.kind!r}) over interface "
                f"tensors; batch the raw (pre-schedule) program instead")
        return s

    def mutate_VarDef(self, s: VarDef):
        if s.name in self.iface:
            raise BatchingUnsupported(
                f"interface tensor {s.name!r} is redefined in an inner "
                f"scope; cannot batch")
        return self.generic_mutate_stmt(s)


def _strip_interface_defs(s: Stmt, iface: set,
                          found: List[VarDef]) -> Stmt:
    """Remove interface VarDefs (recording them in declaration order)
    and drop the tree down to the remaining computation."""
    if isinstance(s, VarDef) and s.name in iface:
        found.append(s)
        return _strip_interface_defs(s.body, iface, found)
    if isinstance(s, Assert):
        out = Assert(s.cond, _strip_interface_defs(s.body, iface, found))
        out.sid, out.label = s.sid, s.label
        return out
    if isinstance(s, S.StmtSeq):
        out = S.StmtSeq([_strip_interface_defs(c, iface, found)
                         for c in s.stmts])
        out.sid, out.label = s.sid, s.label
        return out
    if isinstance(s, VarDef):  # a local: its body may hide more defs
        out = VarDef(s.name, s.shape, s.dtype, s.atype, s.mtype,
                     _strip_interface_defs(s.body, iface, found), s.pinned)
        out.sid, out.label, out.init_data = s.sid, s.label, s.init_data
        return out
    return s


def batch_axis_prepend(func: Func, batch_var: str = "bsz",
                       iter_var: str = "bi") -> Func:
    """Return the batched variant of ``func`` (see module docstring).

    The result is a fresh Func named ``<name>_batched`` with the same
    parameter and return names; the caller passes arrays stacked along a
    new leading axis and the driver infers the batch size. Raises
    :class:`BatchingUnsupported` for programs the transform cannot
    express (LibCalls over interface tensors, shadowed interfaces).
    """
    func = getattr(func, "func", func)  # unwrap a frontend Program
    memo_key = struct_hash(func)
    hit = _MEMO.get(memo_key)
    if hit is not None:
        return hit

    iface = set(func.interface_tensors())
    taken = used_names(func.body) | set(func.scalar_params) | iface
    bsz = fresh_name(batch_var, taken)
    bi = fresh_name(iter_var, taken | {bsz})

    defs: List[VarDef] = []
    compute = _strip_interface_defs(func.body, iface, defs)
    if {d.name for d in defs} != iface:
        missing = iface - {d.name for d in defs}
        raise BatchingUnsupported(
            f"interface tensors without a reachable VarDef: "
            f"{sorted(missing)}")

    compute = _AccessRewriter(iface, Var(bi))(compute)
    body: Stmt = For(bi, 0, Var(bsz), compute)
    # Re-nest the interface declarations (innermost-last order preserved)
    # around the batch loop, each with the new leading extent.
    for d in reversed(defs):
        out = VarDef(d.name, (Var(bsz),) + tuple(d.shape), d.dtype,
                     d.atype, d.mtype, body, d.pinned)
        out.sid, out.label, out.init_data = d.sid, d.label, d.init_data
        body = out

    batched = Func(func.name + "_batched", list(func.params),
                   list(func.returns), body,
                   scalar_params=list(func.scalar_params) + [bsz])
    if len(_MEMO) >= _MEMO_LIMIT:  # pragma: no cover - bounded memo
        _MEMO.clear()
    _MEMO[memo_key] = batched
    return batched

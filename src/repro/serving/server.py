"""The serving front end: admission, bucketing, dynamic batching.

Requests are submitted asynchronously (``submit`` returns a
:class:`PendingResponse` immediately; ``asubmit`` awaits it) and routed
to *buckets* keyed by ``(endpoint, strategy.bucket_key(...))`` — two
requests share a bucket exactly when one compiled call can serve them
together. A bucket flushes when it holds ``max_batch`` requests or when
its oldest request has waited ``max_wait_s``, whichever comes first —
the classic dynamic-batching window: bounded added latency, amortized
dispatch.

Guarantees:

- **admission control** — per-tenant in-flight quotas and a bounded
  total queue; over-quota or over-capacity submissions are *rejected
  synchronously* (the response resolves immediately with status
  ``rejected``), so overload sheds load instead of growing latency;
- **no request is lost or run twice** — every admitted request resolves
  exactly once: with its output slice, or ``failed`` (batch raised or
  worker crashed), or ``timeout`` (deadline passed while queued, or the
  batch was killed at its deadline). Crash/timeout handling is the
  worker pool's job (see ``executor``); the server only ever resolves
  requests it has popped from a bucket.
- **determinism** — with an injected ``clock`` and ``start=False``
  (manual mode: the test calls :meth:`poll`), batch composition is a
  pure function of the submission sequence; responses carry
  ``batch_id``/``batch_size`` so tests can assert it.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from typing import Dict, List, Optional, Sequence

from ..runtime import metrics
from .endpoints import ServedWorkload
from .executor import (DEFAULT_TIMEOUT_S, FAILED, OK, TIMEOUT, ProcessPool,
                       run_batch_guarded)

__all__ = ["PendingResponse", "Request", "Response", "Server"]


class Response:
    """The resolved outcome of one request."""

    __slots__ = ("status", "value", "error", "request_id", "tenant",
                 "latency_s", "batch_id", "batch_size")

    def __init__(self, status, value=None, error=None, request_id=None,
                 tenant=None, latency_s=0.0, batch_id=None,
                 batch_size=0):
        self.status = status          # ok | failed | timeout | rejected
        self.value = value
        self.error = error
        self.request_id = request_id
        self.tenant = tenant
        self.latency_s = latency_s
        self.batch_id = batch_id
        self.batch_size = batch_size

    @property
    def ok(self) -> bool:
        return self.status == OK

    def __repr__(self):
        return (f"Response({self.status!r}, request={self.request_id}, "
                f"batch={self.batch_id}x{self.batch_size})")


#: shared lock for PendingResponse's lazy event creation (see below)
_PENDING_LOCK = threading.Lock()


class PendingResponse:
    """A future for one request; resolved exactly once by the server.

    The wakeup Event is created lazily, only when a caller actually
    blocks before resolution — Event construction costs more than the
    rest of a submission's bookkeeping combined, and the common
    high-throughput pattern (submit a wave, then collect) never blocks
    on an unresolved response. Publishing ``_response`` is GIL-atomic;
    the shared lock only orders event creation against resolution.
    """

    __slots__ = ("_response", "_event")

    def __init__(self):
        self._response: Optional[Response] = None
        self._event: Optional[threading.Event] = None

    def done(self) -> bool:
        return self._response is not None

    def result(self, timeout: Optional[float] = None) -> Response:
        """Block until resolved (a rejected submission is already
        resolved on return from ``submit``)."""
        if self._response is None:
            with _PENDING_LOCK:
                if self._response is None and self._event is None:
                    self._event = threading.Event()
            if self._response is None and not self._event.wait(timeout):
                raise TimeoutError("response not ready")
        return self._response

    def _resolve(self, response: Response):
        self._response = response
        with _PENDING_LOCK:
            event = self._event
        if event is not None:
            event.set()


class Request:
    __slots__ = ("id", "endpoint", "arrays", "scalars", "tenant",
                 "timeout_s", "submitted_at", "pending")

    def __init__(self, rid, endpoint, arrays, scalars, tenant,
                 timeout_s, submitted_at):
        self.id = rid
        self.endpoint = endpoint
        self.arrays = arrays
        self.scalars = scalars
        self.tenant = tenant
        self.timeout_s = timeout_s
        self.submitted_at = submitted_at
        self.pending = PendingResponse()


class Server:
    """Dynamic-batching server over a set of :class:`ServedWorkload`\\ s.

    ``mode="thread"`` runs batches on the dispatcher threads
    (GIL-releasing backends overlap; a kernel crash is fatal);
    ``mode="process"`` runs them on a :class:`ProcessPool` (crash/hang
    isolated per batch). ``start=False`` starts no dispatcher threads —
    the owner drives flushing via :meth:`poll`, with an optional
    injected ``clock``, which is how the determinism tests pin batch
    composition.
    """

    def __init__(self, endpoints: Dict[str, ServedWorkload],
                 mode: str = "thread", workers: int = 2,
                 max_batch: int = 8, max_wait_s: float = 0.002,
                 queue_limit: int = 256,
                 quotas: Optional[Dict[str, int]] = None,
                 default_quota: Optional[int] = None,
                 timeout_s: float = DEFAULT_TIMEOUT_S,
                 clock=time.monotonic, start: bool = True):
        if mode not in ("thread", "process"):
            raise ValueError(f"unknown serving mode {mode!r}")
        self.endpoints = dict(endpoints)
        self.mode = mode
        self.workers = max(1, int(workers))
        self.max_batch = max(1, int(max_batch))
        self.max_wait_s = float(max_wait_s)
        self.queue_limit = int(queue_limit)
        self.quotas = dict(quotas or {})
        self.default_quota = default_quota
        self.timeout_s = float(timeout_s)
        self.clock = clock

        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        self._buckets: Dict[tuple, deque] = {}
        self._queued = 0
        self._tenant_inflight: Dict[str, int] = {}
        self._rid = itertools.count()
        self._batch_id = itertools.count()
        self._closed = False

        self._pool = (ProcessPool(self.endpoints, workers=self.workers,
                                  timeout_s=self.timeout_s)
                      if mode == "process" else None)
        self._threads: List[threading.Thread] = []
        if start:
            for i in range(self.workers):
                t = threading.Thread(target=self._dispatch_loop,
                                     name=f"repro-serve-{i}", daemon=True)
                t.start()
                self._threads.append(t)

    # -- submission --------------------------------------------------------
    def submit(self, endpoint: str, arrays: Sequence, scalars:
               Optional[dict] = None, tenant: str = "default",
               timeout_s: Optional[float] = None) -> PendingResponse:
        """Enqueue one request; returns immediately. Rejections (quota,
        queue capacity, unknown endpoint, closed server) resolve the
        returned :class:`PendingResponse` before it is returned."""
        ep = self.endpoints.get(endpoint)
        scalars = dict(scalars or {})
        req = Request(next(self._rid), endpoint, list(arrays), scalars,
                      tenant, timeout_s if timeout_s is not None
                      else self.timeout_s, self.clock())

        def reject(outcome: str, why: str) -> PendingResponse:
            metrics.record_serving_submit(tenant, outcome)
            req.pending._resolve(Response(
                "rejected", error=why, request_id=req.id, tenant=tenant))
            return req.pending

        if ep is None:
            return reject("rejected_queue", f"unknown endpoint "
                          f"{endpoint!r}")
        key = (endpoint, ep.strategy.bucket_key(req.arrays, scalars))
        with self._work:
            if self._closed:
                return reject("rejected_queue", "server closed")
            if self._queued >= self.queue_limit:
                return reject("rejected_queue", "queue full")
            quota = self.quotas.get(tenant, self.default_quota)
            inflight = self._tenant_inflight.get(tenant, 0)
            if quota is not None and inflight >= quota:
                return reject("rejected_quota",
                              f"tenant {tenant!r} quota {quota} exceeded")
            self._buckets.setdefault(key, deque()).append(req)
            self._queued += 1
            self._tenant_inflight[tenant] = inflight + 1
            metrics.record_serving_submit(tenant, "admitted")
            metrics.record_serving_queue_depth(self._queued)
            self._work.notify()
        return req.pending

    def submit_many(self, endpoint: str, payloads: Sequence,
                    tenant: str = "default",
                    timeout_s: Optional[float] = None
                    ) -> List[PendingResponse]:
        """Submit a wave of ``(arrays, scalars)`` payloads in one lock
        acquisition — the batch front door for load generators and
        clients that already aggregate (amortizes locking, notification
        and queue-depth accounting; admission is still checked per
        request, in order)."""
        ep = self.endpoints.get(endpoint)
        tmo = timeout_s if timeout_s is not None else self.timeout_s
        out: List[PendingResponse] = []

        def reject(req: Request, outcome: str, why: str):
            metrics.record_serving_submit(tenant, outcome)
            req.pending._resolve(Response(
                "rejected", error=why, request_id=req.id, tenant=tenant))

        now = self.clock()
        reqs = []
        for arrays, scalars in payloads:
            req = Request(next(self._rid), endpoint, list(arrays),
                          dict(scalars or {}), tenant, tmo, now)
            reqs.append(req)
            out.append(req.pending)
        if ep is None:
            for req in reqs:
                reject(req, "rejected_queue",
                       f"unknown endpoint {endpoint!r}")
            return out
        keys = [(endpoint, ep.strategy.bucket_key(r.arrays, r.scalars))
                for r in reqs]
        admitted = 0
        with self._work:
            quota = self.quotas.get(tenant, self.default_quota)
            inflight = self._tenant_inflight.get(tenant, 0)
            for req, key in zip(reqs, keys):
                if self._closed:
                    reject(req, "rejected_queue", "server closed")
                elif self._queued >= self.queue_limit:
                    reject(req, "rejected_queue", "queue full")
                elif quota is not None and inflight >= quota:
                    reject(req, "rejected_quota",
                           f"tenant {tenant!r} quota {quota} exceeded")
                else:
                    self._buckets.setdefault(key, deque()).append(req)
                    self._queued += 1
                    inflight += 1
                    admitted += 1
            self._tenant_inflight[tenant] = inflight
            if admitted:
                metrics.record_serving_submit(tenant, "admitted",
                                              n=admitted)
            metrics.record_serving_queue_depth(self._queued)
            self._work.notify_all()
        return out

    async def asubmit(self, endpoint: str, arrays: Sequence,
                      scalars: Optional[dict] = None,
                      tenant: str = "default",
                      timeout_s: Optional[float] = None) -> Response:
        """Async submission: awaits the response without blocking the
        event loop (the wait runs on the loop's default executor)."""
        import asyncio

        pending = self.submit(endpoint, arrays, scalars, tenant,
                              timeout_s)
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, pending.result)

    # -- dispatch ----------------------------------------------------------
    def _ready_key(self, now: float, force: bool) -> Optional[tuple]:
        """Under the lock: a bucket due for flushing, oldest wait first."""
        best, best_age = None, -1.0
        for key, dq in self._buckets.items():
            if not dq:
                continue
            age = now - dq[0].submitted_at
            if force or len(dq) >= self.max_batch or age >= self.max_wait_s:
                if age > best_age:
                    best, best_age = key, age
        return best

    def _pop_batch(self, key: tuple) -> List[Request]:
        dq = self._buckets[key]
        batch = []
        while dq and len(batch) < self.max_batch:
            batch.append(dq.popleft())
        if not dq:
            del self._buckets[key]
        self._queued -= len(batch)
        return batch

    def _dispatch_loop(self):
        while True:
            with self._work:
                now = self.clock()
                key = self._ready_key(now, force=False)
                if key is None:
                    if self._closed:
                        return
                    # sleep until the oldest bucket would hit its window
                    wait = self.max_wait_s
                    for dq in self._buckets.values():
                        if dq:
                            age = now - dq[0].submitted_at
                            wait = min(wait, self.max_wait_s - age)
                    self._work.wait(timeout=max(wait, 1e-4))
                    continue
                batch = self._pop_batch(key)
            self._run_batch(batch)

    def poll(self, force: bool = False) -> int:
        """Manual mode: flush at most one due bucket on the caller's
        thread; returns the number of batches run (0 or 1). ``force``
        flushes the oldest non-empty bucket regardless of the window.
        Call in a loop to drain."""
        with self._work:
            key = self._ready_key(self.clock(), force)
            if key is None:
                return 0
            batch = self._pop_batch(key)
        self._run_batch(batch)
        return 1

    # -- execution ---------------------------------------------------------
    def _resolve(self, req: Request, status: str, value=None, error=None,
                 batch_id=None, batch_size=0):
        self._resolve_many([(req, status, value, error)], batch_id,
                           batch_size)

    def _resolve_many(self, entries, batch_id=None, batch_size=0):
        """Resolve ``(req, status, value, error)`` entries of one batch:
        one clock read, one lock acquisition and one metrics call per
        (tenant, status) group cover them all."""
        now = self.clock()
        with self._lock:
            for req, _s, _v, _e in entries:
                n = self._tenant_inflight.get(req.tenant, 1)
                self._tenant_inflight[req.tenant] = max(0, n - 1)
        groups: Dict[tuple, List[float]] = {}
        for req, status, value, error in entries:
            latency = max(0.0, now - req.submitted_at)
            groups.setdefault((req.tenant, status), []).append(latency)
            req.pending._resolve(Response(
                status, value=value, error=error, request_id=req.id,
                tenant=req.tenant, latency_s=latency, batch_id=batch_id,
                batch_size=batch_size))
        for (tenant, status), lats in groups.items():
            metrics.record_serving_responses(tenant, status, lats)

    def _run_batch(self, batch: List[Request]):
        now = self.clock()
        bid = next(self._batch_id)
        # a request whose deadline passed while queued times out here —
        # resolved, not silently dropped
        live = []
        for r in batch:
            if now - r.submitted_at >= r.timeout_s:
                self._resolve(r, TIMEOUT, error="deadline exceeded "
                              "while queued", batch_id=bid)
            else:
                live.append(r)
        if not live:
            return
        ep = self.endpoints[live[0].endpoint]
        try:
            func, arrays, scalars, pad_elements = \
                ep.strategy.collate(ep, live)
            kind = ep.kind_of(func)
        except Exception as e:  # noqa: BLE001 - resolve, never drop
            msg = f"collate: {type(e).__name__}: {e}"
            self._resolve_many([(r, FAILED, None, msg) for r in live],
                               bid, len(live))
            return
        metrics.record_serving_batch(len(live), pad_elements)
        budget = min(r.timeout_s - (now - r.submitted_at) for r in live)
        if self._pool is not None:
            outcome, payload = self._pool.run(
                ep.name, kind, arrays, scalars,
                timeout_s=max(0.05, budget))
        else:
            outcome, payload = run_batch_guarded(ep, kind, arrays,
                                                 scalars)
        if outcome == OK:
            try:
                parts = ep.strategy.split(ep, payload, live)
            except Exception as e:  # noqa: BLE001 - resolve, never drop
                outcome, payload = FAILED, (f"split: {type(e).__name__}:"
                                            f" {e}")
        if outcome == OK:
            self._resolve_many([(r, OK, part, None) for r, part in
                                zip(live, parts)], bid, len(live))
        else:
            error = payload if outcome == FAILED else "batch deadline " \
                "exceeded"
            self._resolve_many([(r, outcome, None, error) for r in live],
                               bid, len(live))

    # -- lifecycle ---------------------------------------------------------
    def queue_depth(self) -> int:
        with self._lock:
            return self._queued

    def close(self, drain: bool = True):
        """Stop accepting work; with ``drain`` flush what is queued,
        otherwise resolve it as failed (still never silently lost)."""
        with self._work:
            if self._closed:
                return
            self._closed = True
            self._work.notify_all()
        for t in self._threads:
            t.join(timeout=10)
        while True:
            with self._work:
                key = self._ready_key(self.clock(), force=True)
                if key is None:
                    break
                batch = self._pop_batch(key)
            if drain:
                self._run_batch(batch)
            else:
                for r in batch:
                    self._resolve(r, FAILED, error="server closed")
        if self._pool is not None:
            self._pool.close()

    def __enter__(self) -> "Server":
        return self

    def __exit__(self, *exc):
        self.close()

"""Batch execution: in-process, or on a fault-isolated worker pool.

Two execution modes back the server's dispatcher threads:

- **thread** — the batch runs right on the dispatcher thread via
  :func:`run_batch`. Safe because ``Executable.__call__`` is
  thread-safe (see its concurrency contract) and the native backends
  release the GIL during kernel execution; zero IPC cost, but a
  segfaulting or hanging kernel takes the server down with it.
- **process** — :class:`ProcessPool` reuses the fault-isolation design
  of ``autosched.search.measure.MeasurementPool``: forked persistent
  workers, parent-side dispatch with one outstanding batch per worker
  (so a death always maps to exactly one batch), crash -> that batch's
  requests fail, deadline exceeded -> worker killed and the batch times
  out, and a replacement worker is forked either way. Workers inherit
  the endpoint registry and the ``REPRO_CACHE_DIR`` artifact store by
  fork, so each program is natively compiled at most once per host.

Fault injection (tests / drills): ``REPRO_SERVE_FAULT=crash:<endpoint>``
or ``hang:<endpoint>`` (``*`` matches all). In process mode the worker
genuinely ``os._exit``\\ s or sleeps; in thread mode both degrade to a
raised error (a real crash would kill the server — which is the point
of process mode) so the request still resolves as failed.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue as _queue
import threading
import time
from typing import Dict, Optional, Tuple

DEFAULT_TIMEOUT_S = 30.0

#: outcome kinds a batch execution can resolve as
OK, FAILED, TIMEOUT = "ok", "failed", "timeout"


def injected_fault(endpoint: str) -> Optional[str]:
    """The fault (``"crash"``/``"hang"``) configured for an endpoint via
    ``REPRO_SERVE_FAULT``, or None."""
    spec = os.environ.get("REPRO_SERVE_FAULT", "")
    if not spec or ":" not in spec:
        return None
    kind, _, pattern = spec.partition(":")
    if kind not in ("crash", "hang"):
        return None
    if pattern == "*" or pattern == endpoint:
        return kind
    return None


def run_batch(endpoint, kind: str, arrays, scalars):
    """Execute one collated batch in the current process and return the
    raw outputs. ``kind`` names which of the endpoint's program variants
    to run (``base``/``batched``/``pad``)."""
    func = endpoint.func_of_kind(kind)
    exe = endpoint.executable(func)
    return exe(*arrays, **scalars)


def run_batch_guarded(endpoint, kind: str, arrays, scalars
                      ) -> Tuple[str, object]:
    """Thread-mode execution: ``(outcome, payload)`` where payload is
    the outputs on ``ok`` or a message on ``failed``. Injected faults
    degrade to failures (see module docstring)."""
    fault = injected_fault(endpoint.name)
    if fault is not None:
        return FAILED, f"injected {fault} (thread mode)"
    try:
        return OK, run_batch(endpoint, kind, arrays, scalars)
    except Exception as e:  # noqa: BLE001 - isolation is the point
        return FAILED, f"{type(e).__name__}: {e}"


def _worker_main(endpoints, tasks, results):
    """Worker loop: run ``(endpoint_name, kind, arrays, scalars)`` batch
    tasks from this worker's own queue until the ``None`` sentinel. The
    parent dispatches and therefore always knows which batch a dead or
    hung worker held."""
    while True:
        task = tasks.get()
        if task is None:
            break
        name, kind, arrays, scalars = task
        fault = injected_fault(name)
        if fault == "crash":
            os._exit(17)
        elif fault == "hang":  # pragma: no cover - killed by the parent
            time.sleep(3600)
        try:
            outs = run_batch(endpoints[name], kind, arrays, scalars)
            results.put((True, outs))
        except Exception as e:  # noqa: BLE001 - isolation is the point
            results.put((False, f"{type(e).__name__}: {e}"))


class ProcessPool:
    """``k`` persistent forked workers executing serving batches.

    Unlike the tuner's pool (one thread feeding many workers), serving
    dispatcher threads call :meth:`run` concurrently; each call acquires
    a free worker, runs exactly one batch on it, and releases it. Each
    worker owns a private task and result queue pair, discarded with the
    worker on crash/kill, so a stale result can never be attributed to
    the wrong batch.
    """

    def __init__(self, endpoints: Dict[str, object], workers: int = 2,
                 timeout_s: float = DEFAULT_TIMEOUT_S):
        self.endpoints = endpoints
        self.workers = max(1, int(workers))
        self.timeout_s = float(timeout_s)
        method = "fork" if "fork" in mp.get_all_start_methods() else None
        self._ctx = mp.get_context(method)
        self._lock = threading.Lock()
        self._procs: dict = {}    # wid -> Process
        self._queues: dict = {}   # wid -> (task_q, result_q)
        self._free: _queue.Queue = _queue.Queue()
        self._next_wid = 0
        self._closed = False
        for _ in range(self.workers):
            self._free.put(self._spawn())

    def _spawn(self) -> int:
        with self._lock:
            wid = self._next_wid
            self._next_wid += 1
            tq, rq = self._ctx.Queue(), self._ctx.Queue()
            p = self._ctx.Process(
                target=_worker_main, args=(self.endpoints, tq, rq),
                daemon=True)
            p.start()
            self._procs[wid] = p
            self._queues[wid] = (tq, rq)
            return wid

    def _reap(self, wid: int):
        """Kill and forget a worker; fork a replacement."""
        from ..runtime.metrics import record_serving_respawn

        with self._lock:
            p = self._procs.pop(wid)
            self._queues.pop(wid)
        if p.is_alive():
            p.terminate()
        p.join(timeout=5)
        record_serving_respawn()
        return self._spawn()

    def run(self, endpoint_name: str, kind: str, arrays, scalars,
            timeout_s: Optional[float] = None) -> Tuple[str, object]:
        """Run one batch on a free worker (blocking until one is free).

        Returns ``("ok", outputs)``, ``("failed", message)`` on a raised
        error or worker crash, or ``("timeout", None)`` after killing a
        worker that exceeded the deadline. The batch is resolved exactly
        once in every path; a crash or timeout costs one worker fork,
        never a lost batch.
        """
        deadline = time.monotonic() + (timeout_s if timeout_s is not None
                                       else self.timeout_s)
        wid = self._free.get()
        tq, rq = self._queues[wid]
        tq.put((endpoint_name, kind, arrays, scalars))
        try:
            while True:
                try:
                    ok, payload = rq.get(timeout=0.02)
                    return (OK, payload) if ok else (FAILED, payload)
                except _queue.Empty:
                    pass
                if time.monotonic() > deadline:
                    wid = self._reap(wid)
                    return TIMEOUT, None
                if not self._procs[wid].is_alive():
                    wid = self._reap(wid)
                    return FAILED, "worker crashed"
        finally:
            self._free.put(wid)

    def close(self):
        if self._closed:
            return
        self._closed = True
        with self._lock:
            for tq, _rq in self._queues.values():
                try:
                    tq.put_nowait(None)
                except Exception:  # pragma: no cover - closed queue
                    pass
            deadline = time.monotonic() + 5
            for p in self._procs.values():
                p.join(timeout=max(0.1, deadline - time.monotonic()))
                if p.is_alive():  # pragma: no cover - stuck worker
                    p.terminate()
                    p.join(timeout=1)
            self._procs.clear()
            self._queues.clear()

    def __enter__(self) -> "ProcessPool":
        return self

    def __exit__(self, *exc):
        self.close()

"""Ragged batching for the irregular workloads.

Two strategies cover the paper's irregular request shapes:

- :class:`PadStrategy` (pad-and-mask) — variable-*length* requests
  (Longformer sequences) are padded to the batch maximum and executed
  by a length-aware batched program that masks the padding: each batch
  element carries its true length in a ``lens`` array and the program
  only iterates ``[0, lens[b])``, so padding never contaminates real
  tokens and its cost is bounded by the pad waste, not by attention over
  garbage. Pad lengths are quantized (``pad_to``) so the driver's
  binding-plan memo and the native-artifact store see few distinct
  shapes.
- :class:`ConcatCSRStrategy` (concat-with-offsets) — variable-*size*
  CSR graphs (GAT) are concatenated block-diagonally: indptr rows are
  rebased by the running edge count, indices by the running node count,
  and node features are stacked. A disjoint union of graphs is
  semantically just a bigger graph, so the *unbatched* compiled program
  serves the whole batch in one call and outputs split back by node
  offsets. No padding, no masking, zero waste.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from .strategies import BatchStrategy, array_digest, scalar_items

__all__ = ["ConcatCSRStrategy", "PadStrategy",
           "make_batched_longformer_program"]


def make_batched_longformer_program():
    """Length-aware batched Longformer sliding-window attention.

    The pad-and-mask variant of ``workloads.longformer.make_program``:
    Q/K/V come padded to ``(bsz, nmax, d)`` with true sequence lengths
    in ``lens``; attention for batch element ``b`` only reads and writes
    tokens ``< lens[b]``, so rows past the true length stay zero.
    """
    import repro as ft

    @ft.transform
    def longformer_batched(
            q: ft.Tensor[("b", "nmax", "d"), "f32", "input"],
            k: ft.Tensor[("b", "nmax", "d"), "f32", "input"],
            v: ft.Tensor[("b", "nmax", "d"), "f32", "input"],
            lens: ft.Tensor[("b",), "i32", "input"],
            w: ft.Size):
        y = ft.zeros((q.shape(0), q.shape(1), q.shape(2)), "f32")
        for bb in range(q.shape(0)):
            for i in range(lens[bb]):
                dot = ft.empty((2 * w + 1,), "f32")
                for j in range(-w, w + 1):
                    if i + j >= 0 and i + j < lens[bb]:
                        dot[j + w] = 0.0
                        for p in range(q.shape(2)):
                            dot[j + w] += q[bb, i, p] * k[bb, i + j, p]
                    else:
                        dot[j + w] = -float("inf")
                scale = ft.sqrt(1.0 * q.shape(2))
                mx = -float("inf")
                for j in range(2 * w + 1):
                    mx = ft.max(mx, dot[j] / scale)
                attn = ft.empty((2 * w + 1,), "f32")
                s = 0.0
                for j in range(2 * w + 1):
                    attn[j] = ft.exp(dot[j] / scale - mx)
                    s += attn[j]
                for j in range(-w, w + 1):
                    if i + j >= 0 and i + j < lens[bb]:
                        for p in range(q.shape(2)):
                            y[bb, i, p] += attn[j + w] / s * v[bb, i + j, p]
        return y

    return longformer_batched


class PadStrategy(BatchStrategy):
    """Pad-and-mask ragged batching over one variable-extent axis.

    ``ragged_params`` are the positions of arrays whose ``axis`` extent
    varies per request (they must share it); the rest of each shape is
    part of the bucket key. The endpoint supplies the length-aware
    batched program (``endpoint.pad_func()``), which takes the padded
    ragged arrays, then the non-ragged arrays, then the ``lens`` vector.
    """

    name = "pad"

    def __init__(self, ragged_params: Sequence[int] = (0, 1, 2),
                 axis: int = 0, pad_to: int = 16):
        self.ragged_params = tuple(ragged_params)
        self.axis = axis
        self.pad_to = max(1, int(pad_to))

    def bucket_key(self, arrays, scalars):
        shapes = []
        for i, a in enumerate(arrays):
            shape = list(a.shape)
            if i in self.ragged_params:
                shape[self.axis] = -1  # the ragged extent: free
            shapes.append((tuple(shape), a.dtype))
        return (self.name, tuple(shapes), scalar_items(scalars))

    def _len_of(self, request) -> int:
        return int(request.arrays[self.ragged_params[0]].shape[self.axis])

    def collate(self, endpoint, requests):
        lens = [self._len_of(r) for r in requests]
        nmax = -(-max(lens) // self.pad_to) * self.pad_to
        n_args = len(requests[0].arrays)
        padded, pad_elements = [], 0
        for i in range(n_args):
            arrs = [r.arrays[i] for r in requests]
            if i not in self.ragged_params:
                padded.append(np.stack(arrs))
                continue
            first = arrs[0]
            shape = list(first.shape)
            shape[self.axis] = nmax
            out = np.zeros((len(arrs),) + tuple(shape), first.dtype)
            for b, a in enumerate(arrs):
                sl = [b] + [slice(None)] * first.ndim
                sl[1 + self.axis] = slice(0, a.shape[self.axis])
                out[tuple(sl)] = a
                pad_elements += out[b].size - a.size
            padded.append(out)
        padded.append(np.asarray(lens, np.int32))
        return endpoint.pad_func(), padded, \
            dict(requests[0].scalars), pad_elements

    def split(self, endpoint, outs, requests):
        outs = self._outs_tuple(outs)
        parts = []
        for b, r in enumerate(requests):
            n = self._len_of(r)
            sl = [slice(None)] * (outs[0].ndim - 1)
            sl[self.axis] = slice(0, n)
            parts.append(tuple(o[b][tuple(sl)] for o in outs))
        return self._per_request(parts)


class ConcatCSRStrategy(BatchStrategy):
    """Concat-with-offsets ragged batching for CSR-graph requests.

    Parameter positions: ``indptr_param`` / ``indices_param`` are the
    CSR arrays, ``node_params`` are per-node arrays concatenated along
    axis 0, and every other parameter is *shared* (model weights): its
    content digest joins the bucket key so requests against different
    weights never merge, and one copy is passed through. The merged
    batch is a plain disjoint-union graph executed by the endpoint's
    ordinary unbatched program.
    """

    name = "concat"

    def __init__(self, indptr_param: int = 0, indices_param: int = 1,
                 node_params: Sequence[int] = (2,)):
        self.indptr_param = indptr_param
        self.indices_param = indices_param
        self.node_params = tuple(node_params)

    def _shared(self, n_args: int) -> List[int]:
        special = {self.indptr_param, self.indices_param,
                   *self.node_params}
        return [i for i in range(n_args) if i not in special]

    def bucket_key(self, arrays, scalars):
        parts = []
        for i, a in enumerate(arrays):
            if i == self.indptr_param or i == self.indices_param:
                parts.append(("csr", a.dtype))
            elif i in self.node_params:
                parts.append((tuple(a.shape[1:]), a.dtype))
            else:
                parts.append(("shared", array_digest(a)))
        return (self.name, tuple(parts), scalar_items(scalars))

    def _node_counts(self, requests) -> List[int]:
        return [int(r.arrays[self.indptr_param].shape[0]) - 1
                for r in requests]

    def collate(self, endpoint, requests):
        n_args = len(requests[0].arrays)
        nodes = self._node_counts(requests)
        merged: List[object] = [None] * n_args
        indptrs = [np.asarray(r.arrays[self.indptr_param])
                   for r in requests]
        indices = [np.asarray(r.arrays[self.indices_param])
                   for r in requests]
        edge_off = np.cumsum([0] + [len(ix) for ix in indices])
        node_off = np.cumsum([0] + nodes)
        merged[self.indptr_param] = np.concatenate(
            [indptrs[0][:1]] + [p[1:] + off for p, off in
                                zip(indptrs, edge_off[:-1])]
        ).astype(indptrs[0].dtype)
        merged[self.indices_param] = np.concatenate(
            [ix + off for ix, off in zip(indices, node_off[:-1])]
        ).astype(indices[0].dtype)
        for i in self.node_params:
            merged[i] = np.concatenate([r.arrays[i] for r in requests])
        for i in self._shared(n_args):
            merged[i] = requests[0].arrays[i]
        return endpoint.base_func(), merged, \
            dict(requests[0].scalars), 0

    def split(self, endpoint, outs, requests):
        outs = self._outs_tuple(outs)
        node_off = np.cumsum([0] + self._node_counts(requests))
        parts = [tuple(o[node_off[b]:node_off[b + 1]] for o in outs)
                 for b in range(len(requests))]
        return self._per_request(parts)

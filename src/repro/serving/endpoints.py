"""Served workloads: the programs a Server knows how to run.

A :class:`ServedWorkload` bundles a workload's program factory with the
batching strategy the serving layer uses for it and with the build
configuration (backend, optimize). Compiled executables and derived
batched program variants are built lazily, once, and then reused for
every batch — they land in the ordinary build caches, so a server
restart on a warm artifact store skips native compilation entirely.

:func:`default_endpoints` wires the four paper workloads:

==========  =========  ====================================
endpoint    strategy   why
==========  =========  ====================================
subdivnet   stack      fixed mesh size per bucket -> dense
softras     stack      fixed image/face count -> dense
longformer  pad        variable sequence length (ragged)
gat         concat     variable graph size (ragged)
==========  =========  ====================================
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from .batching import batch_axis_prepend
from .ragged import (ConcatCSRStrategy, PadStrategy,
                     make_batched_longformer_program)
from .strategies import BatchStrategy, StackStrategy

__all__ = ["ServedWorkload", "default_endpoints"]

#: request-instance sizes for the demo load generator and benchmarks —
#: deliberately small, so serving measures dispatch amortization
SERVE_SIZES = {
    "subdivnet": dict(n_faces=24, in_feats=4, out_feats=4),
    "softras": dict(n_faces=4, image_size=8),
    "longformer": dict(feat_len=8, w=4, min_len=16, max_len=48),
    "gat": dict(feats=4, out_feats=4, min_nodes=8, max_nodes=24,
                avg_degree=3),
}


class ServedWorkload:
    """One servable endpoint: program + batching strategy + build config.

    ``make_func`` produces the unbatched program; ``make_pad_func`` (pad
    strategies only) produces the length-aware masked batched program.
    ``gen_requests(n, seed)`` yields ``(arrays, scalars)`` request
    payloads for tests and the load generator. All derived funcs and
    executables are cached; ``warm()`` forces compilation up front so
    latency measurements never include a cold build.
    """

    def __init__(self, name: str, make_func: Callable,
                 strategy: BatchStrategy,
                 gen_requests: Callable[[int, int], List[Tuple[list, dict]]],
                 backend: str = "pycode", optimize: bool = True,
                 make_pad_func: Optional[Callable] = None):
        self.name = name
        self.make_func = make_func
        self.make_pad_func = make_pad_func
        self.strategy = strategy
        self.gen_requests = gen_requests
        self.backend = backend
        self.optimize = optimize
        self._funcs: Dict[str, object] = {}
        self._exes: Dict[str, object] = {}
        self._lock = threading.Lock()

    def _func(self, kind: str):
        with self._lock:
            if kind not in self._funcs:
                if kind == "base":
                    self._funcs[kind] = self.make_func()
                elif kind == "batched":
                    self._funcs[kind] = batch_axis_prepend(
                        self._func_unlocked("base"))
                elif kind == "pad":
                    if self.make_pad_func is None:
                        raise ValueError(
                            f"endpoint {self.name!r} has no pad program")
                    self._funcs[kind] = self.make_pad_func()
                else:
                    raise KeyError(kind)
            return self._funcs[kind]

    def _func_unlocked(self, kind: str):
        if kind not in self._funcs:
            self._funcs[kind] = self.make_func()
        return self._funcs[kind]

    def base_func(self):
        return self._func("base")

    def batched_func(self):
        return self._func("batched")

    def pad_func(self):
        return self._func("pad")

    def func_of_kind(self, kind: str):
        return self._func(kind)

    def kind_of(self, func) -> str:
        """Which variant a func returned by this endpoint's accessors
        is — lets the server ship the (picklable) kind name to pool
        workers instead of the Func object itself."""
        with self._lock:
            for kind, f in self._funcs.items():
                if f is func:
                    return kind
        raise KeyError(f"func {getattr(func, 'name', func)!r} is not a "
                       f"variant of endpoint {self.name!r}")

    def executable(self, func):
        """Build (or fetch) the executable for one of this endpoint's
        funcs, under this endpoint's backend/optimize configuration."""
        key = getattr(func, "name", str(id(func)))
        exe = self._exes.get(key)
        if exe is None:
            from ..runtime.driver import build
            exe = build(func, backend=self.backend,
                        optimize=self.optimize)
            with self._lock:
                self._exes.setdefault(key, exe)
                exe = self._exes[key]
        return exe

    def warm(self):
        """Compile every variant this endpoint's strategy can request."""
        self.executable(self.base_func())
        if isinstance(self.strategy, StackStrategy):
            self.executable(self.batched_func())
        if self.make_pad_func is not None:
            self.executable(self.pad_func())
        return self


def _gen_subdivnet(n: int, seed: int = 0):
    from ..workloads.data import mesh_conv_weights, mesh_faces

    cfg = SERVE_SIZES["subdivnet"]
    w = mesh_conv_weights(cfg["in_feats"], cfg["out_feats"],
                          seed=seed)["w"]
    out = []
    for i in range(n):
        d = mesh_faces(cfg["n_faces"], cfg["in_feats"], seed=seed + i)
        out.append(([d["adj"], d["e"], w], {}))
    return out


def _gen_softras(n: int, seed: int = 0):
    from ..workloads.data import pixel_grid, projected_triangles

    cfg = SERVE_SIZES["softras"]
    px = pixel_grid(cfg["image_size"])
    out = []
    for i in range(n):
        d = projected_triangles(cfg["n_faces"], cfg["image_size"],
                                seed=seed + i)
        out.append(([d["verts"], px], {}))
    return out


def _gen_longformer(n: int, seed: int = 0):
    from ..workloads.data import ragged_token_sequences

    cfg = SERVE_SIZES["longformer"]
    return [([d["q"], d["k"], d["v"]], {"w": d["w"]})
            for d in ragged_token_sequences(n, seed=seed, **cfg)]


def _gen_gat(n: int, seed: int = 0):
    from ..workloads.data import ragged_graphs

    cfg = SERVE_SIZES["gat"]
    return [([d["indptr"], d["indices"], d["h"], d["wmat"],
              d["att_s"], d["att_d"]], {})
            for d in ragged_graphs(n, seed=seed, **cfg)]


def default_endpoints(backend: str = "pycode", optimize: bool = True,
                      names: Optional[List[str]] = None
                      ) -> Dict[str, ServedWorkload]:
    """The four paper workloads under their natural batching strategies."""
    from ..workloads import gat, longformer, softras, subdivnet

    eps = {
        "subdivnet": ServedWorkload(
            "subdivnet", subdivnet.make_program, StackStrategy(),
            _gen_subdivnet, backend=backend, optimize=optimize),
        "softras": ServedWorkload(
            "softras", softras.make_program, StackStrategy(),
            _gen_softras, backend=backend, optimize=optimize),
        "longformer": ServedWorkload(
            "longformer", longformer.make_program,
            PadStrategy(ragged_params=(0, 1, 2), axis=0, pad_to=16),
            _gen_longformer, backend=backend, optimize=optimize,
            make_pad_func=make_batched_longformer_program),
        "gat": ServedWorkload(
            "gat", gat.make_program,
            ConcatCSRStrategy(indptr_param=0, indices_param=1,
                              node_params=(2,)),
            _gen_gat, backend=backend, optimize=optimize),
    }
    if names is not None:
        eps = {k: eps[k] for k in names}
    return eps

"""Model serving: dynamic batching over compiled programs (PR 10).

The paper's compiler produces one fast executable per program; this
subsystem turns those executables into a *service*: concurrent clients
submit (workload, arrays, tenant) requests, a dynamic batcher coalesces
compatible ones within a bounded wait window — stacking dense requests,
pad-and-masking variable-length ones, concatenating variable-size
graphs — and a worker pool executes the batches with per-request
deadlines, crash isolation and per-tenant admission control.

Layering::

    server.Server          admission, bucketing, batching windows
      endpoints.ServedWorkload   program variants + build config
        strategies / ragged      stack | pad | concat collation
        batching.batch_axis_prepend   the IR-level batched variant
      executor               thread-mode or forked worker pool

``python -m repro.serve`` runs a load-generator demo;
``runtime.metrics.serving_stats()`` exposes the counters.
"""

from .batching import BatchingUnsupported, batch_axis_prepend
from .endpoints import SERVE_SIZES, ServedWorkload, default_endpoints
from .executor import ProcessPool, injected_fault, run_batch_guarded
from .ragged import (ConcatCSRStrategy, PadStrategy,
                     make_batched_longformer_program)
from .server import PendingResponse, Request, Response, Server
from .strategies import BatchStrategy, StackStrategy, array_digest

__all__ = [
    "BatchStrategy", "BatchingUnsupported", "ConcatCSRStrategy",
    "PadStrategy", "PendingResponse", "ProcessPool", "Request",
    "Response", "SERVE_SIZES", "ServedWorkload", "Server",
    "StackStrategy", "array_digest", "batch_axis_prepend",
    "default_endpoints", "injected_fault",
    "make_batched_longformer_program", "run_batch_guarded",
]

"""Fine-grained automatic differentiation (paper section 5)."""

from typing import Dict, Optional

import numpy as np

from .activity import active_tensors
from .derivatives import grad_contributions, value_dependencies
from .grad import GradProgram, grad
from .tape_select import Materialization, choose_materialization


class GradExecutable:
    """Compiled forward+backward pair with a convenient calling API.

    ``exe(*inputs, **scalars)`` runs the forward pass and returns the
    outputs; ``exe.backward(out_grads=None)`` then runs the backward pass
    over the saved tapes and returns the gradients of ``requires`` (in
    order). With ``out_grads`` omitted, every provided output receives an
    all-ones gradient (i.e. d(sum(outputs))/d(input), matching how the
    paper's baselines reduce outputs to a scalar loss).
    """

    def __init__(self, gp: GradProgram, backend: str = "pycode",
                 optimize: bool = False, target=None, **opts):
        from ..runtime.driver import build

        self.gp = gp
        self.fwd_exe = build(gp.fwd, backend=backend, optimize=optimize,
                             target=target, **opts)
        self.bwd_exe = build(gp.bwd, backend=backend, optimize=optimize,
                             target=target, **opts)
        self._saved: Optional[Dict[str, np.ndarray]] = None
        self._scalars: Dict[str, int] = {}

    # -- forward ---------------------------------------------------------
    def __call__(self, *inputs, **scalars):
        outs = self.fwd_exe(*inputs, **scalars)
        if not isinstance(outs, tuple):
            outs = (outs,)
        named = dict(zip(self.fwd_exe.returns, outs))
        named.update(
            dict(zip(self.fwd_exe.data_params,
                     (np.asarray(a) for a in inputs))))
        self._saved = named
        self._scalars = scalars
        user_outputs = [named[r] for r in self.fwd_exe.returns
                        if r not in self.gp.tape_names]
        if len(user_outputs) == 1:
            return user_outputs[0]
        return tuple(user_outputs)

    # -- backward ----------------------------------------------------------
    def backward(self, out_grads=None):
        if self._saved is None:
            raise RuntimeError("run the forward pass first")
        env = self._saved
        args = []
        grads_given = dict(out_grads or {})
        for p in self.bwd_exe.data_params:
            if p in env:
                args.append(env[p])
                continue
            # a gradient parameter "<y>.grad.in"
            y = _strip_grad_suffix(p, self.gp.output_grads)
            if y is not None:
                if y in grads_given:
                    args.append(np.asarray(grads_given[y]))
                else:
                    args.append(np.ones_like(env[y]))
                continue
            raise KeyError(f"cannot bind backward parameter {p!r}")
        out = self.bwd_exe(*args, **self._scalars)
        return out

    @property
    def tape_bytes(self) -> int:
        """Bytes of materialised tape storage from the last forward run."""
        if self._saved is None:
            return 0
        return sum(self._saved[t].nbytes for t in self.gp.tape_names)


def _strip_grad_suffix(param: str, output_grads: Dict[str, str]):
    for y, gname in output_grads.items():
        if gname == param:
            return y
    return None


__all__ = [
    "GradExecutable", "GradProgram", "Materialization", "active_tensors",
    "choose_materialization", "grad", "grad_contributions",
    "value_dependencies",
]

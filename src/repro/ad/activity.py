"""Activity analysis: which tensors carry gradient from the inputs being
differentiated (``requires``) to the outputs differentiated against
(``provides``).

A tensor is *active* when it is (transitively) influenced by a required
input AND influences a provided output through float dataflow. Adjoint
statements are only generated for active tensors, which keeps the backward
pass free of dead zero-gradient arithmetic.
"""

from __future__ import annotations

from typing import Dict, Iterable, Set

from ..ir import (Func, LibCall, ReduceTo, Store, VarDef, collect_stmts)
from ..ir import expr as E


def _float_dataflow_edges(func: Func):
    """Edges src -> dst: a float value of ``src`` flows into ``dst``."""
    defs = {d.name: d
            for d in collect_stmts(func.body,
                                   lambda s: isinstance(s, VarDef))}
    edges = []
    for s in collect_stmts(func.body,
                           lambda s: isinstance(s, (Store, ReduceTo,
                                                    LibCall))):
        if isinstance(s, LibCall):
            for o in s.outs:
                for a in s.args:
                    edges.append((a, o))
            continue
        dst = s.var
        if dst in defs and not defs[dst].dtype.is_float:
            continue
        for l in E.all_reads(s.expr):
            if l.dtype.is_float:
                edges.append((l.var, dst))
    return edges


def _closure(starts: Set[str], edges, forward: bool) -> Set[str]:
    adj: Dict[str, list] = {}
    for a, b in edges:
        if forward:
            adj.setdefault(a, []).append(b)
        else:
            adj.setdefault(b, []).append(a)
    seen = set(starts)
    frontier = list(starts)
    while frontier:
        x = frontier.pop()
        for y in adj.get(x, ()):
            if y not in seen:
                seen.add(y)
                frontier.append(y)
    return seen


def active_tensors(func: Func, requires: Iterable[str],
                   provides: Iterable[str]) -> Set[str]:
    """Tensors on a differentiable path from requires to provides."""
    edges = _float_dataflow_edges(func)
    fwd = _closure(set(requires), edges, forward=True)
    bwd = _closure(set(provides), edges, forward=False)
    return fwd & bwd

"""Selective intermediate tensor materialization (paper section 5.2).

For every intermediate tensor whose forward value the backward pass needs,
decide between **taping** it (materialise one version per scope instance in
the forward pass) and **recomputing** it in the backward pass. The decision
balances the materialisation overhead — proportional to the number of
versions, known symbolically at compile time (paper 5.1) — against the
recomputation cost.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..errors import ADError
from ..ir import (AccessType, For, If, ReduceTo, Stmt, StmtSeq, Store,
                  VarDef, collect_stmts, seq)
from ..ir import expr as E

#: recomputation is "cheap" when the defining slice is loop-free and the
#: total operation count stays under this bound (a few dozen scalar ops
#: cost far less than a round-trip of one element through DRAM)
_CHEAP_OPS = 64


class Materialization:
    """The decision for the needed intermediates of one program."""

    def __init__(self, tape: Set[str], recompute: Set[str],
                 slices: Dict[str, Stmt]):
        self.tape = tape
        self.recompute = recompute
        #: per-recomputed-tensor: the copied statement slice computing it
        self.slices = slices

    def __repr__(self):  # pragma: no cover
        return (f"Materialization(tape={sorted(self.tape)}, "
                f"recompute={sorted(self.recompute)})")


def slice_writes(scope_body: Stmt, target: str) -> Tuple[Stmt, Set[str]]:
    """A copy of ``scope_body`` keeping only the control structure around
    writes to ``target``. Returns (slice, names_read_by_slice)."""
    reads: Set[str] = set()

    def keep(s: Stmt) -> Optional[Stmt]:
        if isinstance(s, (Store, ReduceTo)) and s.var == target:
            from ..ir import fresh_copy

            for e in s.child_exprs():
                for l in E.all_reads(e):
                    reads.add(l.var)
            return fresh_copy(s)
        if isinstance(s, StmtSeq):
            kept = [k for k in (keep(c) for c in s.stmts) if k is not None]
            if not kept:
                return None
            return seq(kept)
        if isinstance(s, For):
            inner = keep(s.body)
            if inner is None:
                return None
            for e in (s.begin, s.end):
                for l in E.all_reads(e):
                    reads.add(l.var)
            return For(s.iter_var, s.begin, s.end, inner,
                       s.property.clone())
        if isinstance(s, If):
            t = keep(s.then_case)
            e = keep(s.else_case) if s.else_case is not None else None
            if t is None and e is None:
                return None
            for l in E.all_reads(s.cond):
                reads.add(l.var)
            if t is None:
                t = StmtSeq([])
            return If(s.cond, t, e)
        if isinstance(s, VarDef):
            # slice through nested scopes: the scoped tensor itself is
            # only needed if a kept statement reads it, in which case it
            # shows up in `reads` and is resolved like any other value
            return keep(s.body)
        return None

    sl = keep(scope_body)
    if sl is None:
        sl = StmtSeq([])
    return sl, reads


def _count_ops(e) -> int:
    """Arithmetic operations in an expression (leaves and the index
    arithmetic of loads are free — they are address computation)."""
    from ..ir import Load
    from ..ir.expr import BinOp, Cast, IfExpr, Intrinsic, LNot

    if isinstance(e, Load):
        return 0
    n = 1 if isinstance(e, (BinOp, Intrinsic, IfExpr, Cast, LNot)) else 0
    return n + sum(_count_ops(c) for c in e.children())


def _slice_cost(sl: Stmt) -> Tuple[bool, int]:
    """(has_reduction_loop, per_element_op_count) of a recompute slice.

    A loop whose iterator indexes the written element is a *parallel*
    fill — recomputing it costs the same per element as the forward pass.
    A loop whose iterator does not appear in the write target is a
    *reduction*: recomputing means re-running the whole loop per use,
    which is what the paper's cost balance tapes instead (section 5.2).
    """
    has_reduction = False
    for loop in collect_stmts(sl, lambda s: isinstance(s, For)):
        writes = collect_stmts(loop.body,
                               lambda s: isinstance(s, (Store, ReduceTo)))
        for w in writes:
            used = set()
            for ix in w.indices:
                for v in E.all_vars(ix):
                    used.add(v)
            if loop.iter_var not in used:
                has_reduction = True
    ops = 0
    for s in collect_stmts(sl, lambda s: isinstance(s, (Store, ReduceTo))):
        ops = max(ops, _count_ops(s.expr))
    return has_reduction, ops


def choose_materialization(func, needed: Iterable[str],
                           scope_bodies: Dict[str, Stmt],
                           available: Set[str],
                           policy,
                           force_tape: Set[str] = frozenset(),
                           enclosing: Optional[Dict[str, Set[str]]] = None
                           ) -> Materialization:
    """Pick tape vs recompute for every needed intermediate.

    ``scope_bodies`` maps tensor name -> its VarDef body (the statements
    computing it). ``available`` are tensors the backward pass can read
    directly (inputs, outputs, by-value params). ``enclosing`` maps each
    tensor to the VarDef names whose scope encloses it — a recomputation
    slice may read another *recomputed* tensor only when that tensor's
    scope encloses it (the backward pass re-creates it around this one).
    ``policy`` is ``"selective"`` (cost-based), ``"all"`` (tape
    everything), ``"none"`` (recompute everything possible), or an
    explicit iterable of names to tape.
    """
    needed = set(needed)
    enclosing = enclosing or {}
    tape: Set[str] = set()
    recompute: Set[str] = set()
    slices: Dict[str, Stmt] = {}

    explicit: Optional[Set[str]] = None
    if not isinstance(policy, str):
        explicit = set(policy)
    elif policy not in ("selective", "all", "none"):
        raise ADError(f"unknown tape policy {policy!r}")

    pending: List[str] = []
    for t in sorted(needed):
        if t in force_tape or (explicit is not None and t in explicit) \
                or (explicit is None and policy == "all"):
            tape.add(t)
        else:
            pending.append(t)

    def read_ok(t: str, r: str) -> Optional[bool]:
        """True: usable; False: never usable; None: not yet decided."""
        if r in available:
            return True
        if r in tape:
            return True  # the slice reads it back through the tape
        if r in recompute:
            return r in enclosing.get(t, set())
        if r not in pending:
            return False
        return None

    # Fixed point: availability for recomputation grows as enclosing
    # tensors are themselves chosen for recomputation.
    while pending:
        progressed = False
        for t in list(pending):
            sl, reads = slice_writes(scope_bodies[t], t)
            reads -= {t}
            status = [read_ok(t, r) for r in reads]
            if any(okx is False for okx in status):
                tape.add(t)
                pending.remove(t)
                progressed = True
                continue
            if any(okx is None for okx in status):
                continue  # wait for dependencies
            has_loop, ops = _slice_cost(sl)
            cheap = not has_loop and ops <= _CHEAP_OPS
            selective = explicit is None and policy == "selective"
            if not selective or cheap:
                recompute.add(t)
                slices[t] = sl
            else:
                tape.add(t)
            pending.remove(t)
            progressed = True
        if not progressed:
            for t in pending:  # circular/blocked: tape the remainder
                tape.add(t)
            pending = []
    return Materialization(tape, recompute, slices)

"""Reverse-mode automatic differentiation as an IR-to-IR transformation
(paper section 5).

``grad(func, requires, provides, tapes)`` produces:

- a **forward** function: the original computation plus *tape* stores that
  materialise selected intermediate tensors, one version per scope
  instance (symbolic version numbers, paper 5.1), returned as extra
  outputs;
- a **backward** function: the statement-reversed adjoint program. Loops
  run in reverse iteration order, gradients accumulate through ReduceTo
  nodes (so the result is itself schedulable/parallelisable — Fig. 13),
  and forward values referenced by adjoints come either from tapes or from
  recomputation slices inserted at the original scopes (paper 5.2).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..errors import ADError
from ..ir import (AccessType, Assert, Eval, Expr, For, Func, If, IntConst,
                  LibCall, Load, Mutator, ReduceTo, Stmt, StmtSeq, Store,
                  Var, VarDef, all_vars, collect_stmts, defined_tensors,
                  fresh_name, map_exprs, seq, substitute, used_names, wrap,
                  wrap_like)
from ..ir import expr as E
from .activity import active_tensors
from .derivatives import grad_contributions, value_dependencies
from .tape_select import Materialization, choose_materialization


class GradProgram:
    """The result of differentiation: forward and backward Funcs plus the
    calling-convention metadata that binds them together."""

    def __init__(self, fwd: Func, bwd: Func, requires, provides,
                 tape_names, used_outputs, input_grads, output_grads,
                 materialization: Materialization):
        self.fwd = fwd
        self.bwd = bwd
        self.requires = list(requires)
        self.provides = list(provides)
        #: tape tensors appended to the forward outputs, in order
        self.tape_names = list(tape_names)
        #: forward outputs whose values the backward pass reads
        self.used_outputs = list(used_outputs)
        #: map input name -> its gradient (backward output)
        self.input_grads = dict(input_grads)
        #: map output name -> its gradient (backward input)
        self.output_grads = dict(output_grads)
        self.materialization = materialization

    def __repr__(self):  # pragma: no cover
        return (f"<GradProgram fwd={self.fwd.name} bwd={self.bwd.name} "
                f"tapes={self.tape_names}>")


def grad(program_or_func, requires=None, provides=None,
         tapes="selective") -> GradProgram:
    """Differentiate a program.

    ``requires``: input tensors to compute gradients for (default: all
    float inputs). ``provides``: outputs to differentiate against
    (default: all float outputs). ``tapes``: ``"selective"`` (cost-based,
    the paper's default), ``"all"``, ``"none"``, or an explicit list of
    tensor names to materialise.
    """
    from ..frontend.staging import Program
    from ..pipeline import lowering_pipeline

    func = program_or_func.func if isinstance(program_or_func, Program) \
        else program_or_func
    # the same standard lowering Pipeline normalises the input program
    # and (below) the generated forward/backward functions, under the
    # "ad" name so REPRO_DUMP_IR snapshots separate the three runs
    func = lowering_pipeline(name="ad").run(func)
    return _GradBuilder(func, requires, provides, tapes).build()


# ---------------------------------------------------------------------------


class _GradBuilder:

    def __init__(self, func: Func, requires, provides, tapes_policy):
        self.func = func
        self.defs = defined_tensors(func.body)
        inputs = [p for p in func.params
                  if self.defs[p].atype is AccessType.INPUT]
        outputs = func.interface_tensors()
        outputs = [o for o in outputs
                   if self.defs[o].atype in (AccessType.OUTPUT,
                                             AccessType.INOUT)]
        self.inputs = inputs
        self.outputs = outputs
        self.requires = list(requires) if requires is not None else [
            p for p in inputs if self.defs[p].dtype.is_float
        ]
        self.provides = list(provides) if provides is not None else [
            o for o in outputs if self.defs[o].dtype.is_float
        ]
        for r in self.requires:
            if r not in self.defs or not self.defs[r].atype.is_input:
                raise ADError(f"requires target {r!r} is not an input")
        for p in self.provides:
            if p not in self.defs:
                raise ADError(f"provides target {p!r} is not an output")
        self.tapes_policy = tapes_policy

        self.active = active_tensors(func, self.requires, self.provides)
        #: per cache tensor: iterator names of loops enclosing its VarDef
        self.scope_loops: Dict[str, List[For]] = {}
        self.scope_bodies: Dict[str, Stmt] = {}
        self._collect_scopes()

        taken = used_names(func)
        self.grad_name: Dict[str, str] = {}
        self.tape_name: Dict[str, str] = {}
        for t in sorted(self.active | set(self.requires)
                        | set(self.provides)):
            self.grad_name[t] = fresh_name(t + ".grad", taken)
            taken.add(self.grad_name[t])
        self._taken = taken

    # -- scope info -----------------------------------------------------------
    def _collect_scopes(self):
        self.enclosing: Dict[str, Set[str]] = {}

        def walk(s: Stmt, loops: List[For], defs: List[str]):
            if isinstance(s, VarDef):
                self.scope_loops[s.name] = list(loops)
                self.scope_bodies[s.name] = s.body
                self.enclosing[s.name] = set(defs)
                walk(s.body, loops, defs + [s.name])
                return
            if isinstance(s, For):
                walk(s.body, loops + [s], defs)
                return
            for c in s.children_stmts():
                walk(c, loops, defs)

        walk(self.func.body, [], [])

    # -- needed-forward-values scan --------------------------------------------
    def _scan_needed(self) -> Tuple[Set[str], Set[str]]:
        needed: Set[str] = set()
        force_tape: Set[str] = set()

        def add_expr_loads(e):
            for l in E.all_reads(e):
                needed.add(l.var)

        for s in collect_stmts(self.func.body, lambda _s: True):
            if isinstance(s, (Store, ReduceTo)) and s.var in self.active:
                needed.update(value_dependencies(s.expr))
                for idx in s.indices:
                    add_expr_loads(idx)
                if isinstance(s, ReduceTo) and s.op in ("min", "max"):
                    add_expr_loads(s.expr)
                    needed.add(s.var)
                    if self.defs[s.var].atype is AccessType.CACHE:
                        force_tape.add(s.var)
                if isinstance(s, ReduceTo) and s.op == "*":
                    raise ADError(
                        "cannot differentiate a '*=' reduction")
            if isinstance(s, (If, Assert)):
                add_expr_loads(s.cond)
            if isinstance(s, For):
                add_expr_loads(s.begin)
                add_expr_loads(s.end)
            if isinstance(s, LibCall):
                if any(o in self.active for o in s.outs):
                    needed.update(s.args)
        cache_needed = {
            t for t in needed
            if t in self.defs and self.defs[t].atype is AccessType.CACHE
        }
        return cache_needed, force_tape, needed

    # -- versioning check (paper 5.1) ------------------------------------------
    def _check_single_version(self, tensors: Set[str]):
        """The available value is the scope-final value; a tensor whose
        value is read and then overwritten within one scope instance has
        several live versions, which this implementation rejects (the
        symbolic version count would need an extra dimension per WAR
        dependence, paper 5.1)."""
        from ..analysis import DepAnalyzer, DirItem

        analyzer = DepAnalyzer(self.func)
        for t in sorted(tensors):
            scope = self.scope_loops.get(t, [])
            direction = [DirItem.same_loop(l.sid, "=") for l in scope]
            deps = analyzer.find(tensors=[t], direction=direction)
            for d in deps:
                if d.kind == "WAR" and d.earlier.stmt.sid != \
                        d.later.stmt.sid:
                    raise ADError(
                        f"tensor {t!r} has multiple live versions per "
                        f"iteration (WAR {d.earlier.stmt.sid} -> "
                        f"{d.later.stmt.sid}); restructure the program "
                        f"or exclude it from differentiation")

    # -- main -----------------------------------------------------------------
    def build(self) -> GradProgram:
        needed, force_tape, all_needed = self._scan_needed()
        available = set(self.inputs) | set(self.outputs) | \
            set(self.func.scalar_params)
        mat = choose_materialization(self.func, needed, self.scope_bodies,
                                     available, self.tapes_policy,
                                     force_tape, enclosing=self.enclosing)
        used_out_values = {
            t for t in all_needed
            if t in self.defs and self.defs[t].atype in
            (AccessType.OUTPUT, AccessType.INOUT)
        }
        self._check_single_version(mat.tape | mat.recompute
                                   | used_out_values)
        self.mat = mat
        for t in sorted(mat.tape):
            self.tape_name[t] = fresh_name(t + ".tape", self._taken)
            self._taken.add(self.tape_name[t])
            self._check_tape_shape(t)

        fwd = self._build_fwd()
        bwd = self._build_bwd()
        used_outputs = self._used_outputs(bwd)
        bwd = self._wrap_bwd_params(bwd, used_outputs)

        from ..pipeline import lowering_pipeline

        pipe = lowering_pipeline(name="ad")
        return GradProgram(
            fwd=pipe.run(fwd),
            bwd=pipe.run(bwd),
            requires=self.requires,
            provides=self.provides,
            tape_names=[self.tape_name[t] for t in sorted(mat.tape)],
            used_outputs=used_outputs,
            input_grads={x: self.grad_name[x] for x in self.requires},
            output_grads={y: self.grad_name[y] + ".in"
                          for y in self.provides},
            materialization=mat,
        )

    # -- tape helpers ------------------------------------------------------------
    def _check_tape_shape(self, t: str):
        ok_vars = set(self.func.scalar_params)
        for d in self.defs[t].shape:
            for v in all_vars(d):
                if v not in ok_vars:
                    raise ADError(
                        f"cannot tape {t!r}: its shape depends on loop "
                        f"iterators")
        for loop in self.scope_loops[t]:
            for v in list(all_vars(loop.begin)) + list(all_vars(loop.end)):
                if v not in ok_vars:
                    raise ADError(
                        f"cannot tape {t!r}: version count depends on "
                        f"loop iterator {v!r} (non-rectangular nest)")

    def _tape_dims(self, t: str) -> List[Expr]:
        return [l.len for l in self.scope_loops[t]]

    def _tape_version_index(self, t: str) -> List[Expr]:
        return [Var(l.iter_var) - l.begin for l in self.scope_loops[t]]

    def _tape_load(self, orig: Load, idx: List[Expr]) -> Expr:
        t = orig.var
        return Load(self.tape_name[t],
                    self._tape_version_index(t) + list(idx), orig.dtype)

    # -- availability rewriting ---------------------------------------------------
    def _avail(self, e: Expr) -> Expr:
        """Rewrite forward-value loads to their backward-available form."""

        def rw(x):
            if isinstance(x, Load):
                idx = [self._avail(i) for i in x.indices]
                d = self.defs.get(x.var)
                if d is None or d.atype is not AccessType.CACHE:
                    return Load(x.var, idx, x.dtype)
                if x.var in self.mat.tape:
                    return self._tape_load(x, idx)
                if x.var in self.mat.recompute:
                    return Load(x.var, idx, x.dtype)
                raise ADError(
                    f"forward value of {x.var!r} is needed by the "
                    f"backward pass but was not materialised")
            return None

        return map_exprs(e, rw)

    def _avail_stmt(self, s: Stmt) -> Stmt:
        """Availability-rewrite every expression in a statement tree."""
        return map_exprs(s, lambda e: self._avail(e)
                         if isinstance(e, Load) else None)

    # -- forward construction ----------------------------------------------------
    def _build_fwd(self) -> Func:
        builder = self

        class AddTapes(Mutator):

            def mutate_VarDef(self, s: VarDef):
                out = self.generic_mutate_stmt(s)
                if s.name not in builder.tape_name:
                    return out
                copy = builder._tape_store_loops(s)
                nd = VarDef(out.name, out.shape, out.dtype, out.atype,
                            out.mtype, seq([out.body, copy]), out.pinned)
                nd.sid, nd.label, nd.init_data = out.sid, out.label, \
                    out.init_data
                return nd

        body = AddTapes()(self.func.body)
        for t in sorted(self.mat.tape, reverse=True):
            d = self.defs[t]
            body = VarDef(self.tape_name[t],
                          self._tape_dims(t) + list(d.shape), d.dtype,
                          "output", d.mtype, body)
        returns = list(self.func.returns) + \
            [self.tape_name[t] for t in sorted(self.mat.tape)]
        return Func(self.func.name + ".fwd", list(self.func.params),
                    returns, body, list(self.func.scalar_params))

    def _tape_store_loops(self, vd: VarDef) -> Stmt:
        """``tape[versions..., i...] = t[i...]`` at the end of t's scope."""
        iters = []
        for k in range(vd.ndim):
            it = fresh_name(f"i.tp{k}", self._taken)
            self._taken.add(it)
            iters.append(it)
        ivs = [Var(i) for i in iters]
        body: Stmt = Store(self.tape_name[vd.name],
                           self._tape_version_index(vd.name) + ivs,
                           Load(vd.name, ivs, vd.dtype))
        for it, size in zip(reversed(iters), reversed(vd.shape)):
            body = For(it, 0, size, body)
        return body

    # -- backward construction ------------------------------------------------
    def _build_bwd(self) -> Func:
        return Func(self.func.name + ".bwd", [], [],
                    self._bwd_of(self.func.body),
                    list(self.func.scalar_params))

    def _bwd_of(self, s: Stmt) -> Stmt:
        if isinstance(s, StmtSeq):
            return seq([self._bwd_of(c) for c in reversed(s.stmts)])
        if isinstance(s, VarDef):
            return self._bwd_vardef(s)
        if isinstance(s, For):
            inner = self._bwd_of(s.body)
            it2 = fresh_name(s.iter_var + ".r", self._taken)
            self._taken.add(it2)
            # reversed iteration: i = begin + end - 1 - i2
            inner = substitute(inner,
                               {s.iter_var: s.begin + s.end - 1 - Var(it2)})
            return For(it2, s.begin, s.end, inner)
        if isinstance(s, If):
            then_b = self._bwd_of(s.then_case)
            else_b = self._bwd_of(s.else_case) \
                if s.else_case is not None else None
            return If(self._avail(s.cond), then_b, else_b)
        if isinstance(s, Assert):
            return Assert(self._avail(s.cond), self._bwd_of(s.body))
        if isinstance(s, Store):
            return self._bwd_store(s)
        if isinstance(s, ReduceTo):
            return self._bwd_reduce(s)
        if isinstance(s, LibCall):
            return self._bwd_libcall(s)
        if isinstance(s, (Eval, StmtSeq)):
            return StmtSeq([])
        from ..ir import Alloc, Free

        if isinstance(s, (Alloc, Free)):
            return StmtSeq([])
        raise ADError(
            f"cannot differentiate statement {type(s).__name__}")

    def _bwd_vardef(self, s: VarDef) -> Stmt:
        inner = self._bwd_of(s.body)
        if s.atype is not AccessType.CACHE:
            return inner  # parameters are re-declared by the wrapper
        parts: List[Stmt] = []
        if s.name in self.mat.recompute:
            # the slice may read taped tensors: route those loads through
            # their tapes
            parts.append(self._avail_stmt(self.mat.slices[s.name]))
        parts.append(inner)
        out = seq(parts)
        if s.name in self.active:
            gname = self.grad_name[s.name]
            out = VarDef(gname, s.shape, s.dtype, "cache", s.mtype,
                         seq([self._zero_fill(gname, s.shape, s.dtype),
                              out]))
        if s.name in self.mat.recompute:
            out = VarDef(s.name, s.shape, s.dtype, "cache", s.mtype, out)
        return out

    def _zero_fill(self, name: str, shape, dtype) -> Stmt:
        iters = []
        for k in range(len(shape)):
            it = fresh_name(f"i.z{k}", self._taken)
            self._taken.add(it)
            iters.append(it)
        body: Stmt = Store(name, [Var(i) for i in iters],
                           wrap_like(0, dtype))
        for it, size in zip(reversed(iters), reversed(shape)):
            body = For(it, 0, size, body)
        return body

    def _is_active_load(self, load: Load) -> bool:
        return load.var in self.active and load.dtype.is_float

    def _adjoint_of_target(self, s) -> Optional[Expr]:
        if s.var not in self.active:
            return None
        idx = [self._avail(i) for i in s.indices]
        return Load(self.grad_name[s.var], idx, self.defs[s.var].dtype)

    def _contributions(self, expr: Expr, adj: Expr) -> List[Stmt]:
        stmts: List[Stmt] = []
        for load, contrib in grad_contributions(expr, adj,
                                                self._is_active_load):
            target = self.grad_name[load.var]
            idx = [self._avail(i) for i in load.indices]
            stmts.append(ReduceTo(target, idx, "+", self._avail(contrib)))
        return stmts

    def _bwd_store(self, s: Store) -> Stmt:
        adj = self._adjoint_of_target(s)
        if adj is None:
            return StmtSeq([])
        stmts = self._contributions(s.expr, adj)
        # the overwritten previous value is dead: reset its adjoint
        stmts.append(Store(self.grad_name[s.var],
                           [self._avail(i) for i in s.indices],
                           wrap_like(0, self.defs[s.var].dtype)))
        return seq(stmts)

    def _bwd_reduce(self, s: ReduceTo) -> Stmt:
        adj = self._adjoint_of_target(s)
        if adj is None:
            return StmtSeq([])
        if s.op == "+":
            return seq(self._contributions(s.expr, adj))
        if s.op in ("min", "max"):
            # gradient flows to the winning contribution (final value
            # needed: forced onto the tape or available as an output)
            final = Load(s.var, list(s.indices), self.defs[s.var].dtype)
            f_avail = self._avail(s.expr)
            mask = E.makeCmp(E.EQ, f_avail, self._avail(final))
            masked = E.makeIfExpr(mask, adj, wrap_like(0, adj.dtype))
            return seq(self._contributions(s.expr, masked))
        raise ADError(f"cannot differentiate '{s.op}=' reduction")

    def _bwd_libcall(self, s: LibCall) -> Stmt:
        if s.kind == "fill":
            out = s.outs[0]
            if out not in self.active:
                return StmtSeq([])
            d = self.defs[out]
            return self._zero_fill(self.grad_name[out], d.shape, d.dtype)
        if s.kind == "copy":
            out, src = s.outs[0], s.args[0]
            if out not in self.active:
                return StmtSeq([])
            parts: List[Stmt] = []
            d = self.defs[out]
            if src in self.active:
                parts.append(
                    self._accumulate_tensor(self.grad_name[out],
                                            self.grad_name[src], d))
            parts.append(self._zero_fill(self.grad_name[out], d.shape,
                                         d.dtype))
            return seq(parts)
        if s.kind != "matmul":
            raise ADError(f"cannot differentiate library call {s.kind!r}")
        c = s.outs[0]
        a, b = s.args
        if c not in self.active:
            return StmtSeq([])
        parts: List[Stmt] = []
        ta = s.attrs.get("trans_a", False)
        tb = s.attrs.get("trans_b", False)
        if ta or tb:
            raise ADError("AD of transposed matmul LibCalls is not "
                          "supported; apply as_lib after grad instead")
        a_val = self._value_tensor_name(a)
        b_val = self._value_tensor_name(b)
        if a in self.active:
            parts.append(
                LibCall("matmul", [self.grad_name[a]],
                        [self.grad_name[c], b_val],
                        {"accumulate": True, "trans_b": True}))
        if b in self.active:
            parts.append(
                LibCall("matmul", [self.grad_name[b]],
                        [a_val, self.grad_name[c]],
                        {"accumulate": True, "trans_a": True}))
        if not s.attrs.get("accumulate", False):
            d = self.defs[c]
            parts.append(self._zero_fill(self.grad_name[c], d.shape,
                                         d.dtype))
        return seq(parts)

    def _value_tensor_name(self, t: str) -> str:
        """The backward-side tensor holding the forward value of ``t``."""
        d = self.defs[t]
        if d.atype is not AccessType.CACHE:
            return t
        if t in self.mat.recompute:
            return t
        if t in self.mat.tape:
            if self.scope_loops.get(t):
                raise ADError(
                    f"library call operand {t!r} is versioned across "
                    f"loops; cannot pass its tape to a library routine")
            return self.tape_name[t]
        raise ADError(
            f"forward value of {t!r} is needed by a library call "
            f"adjoint but was not materialised")

    def _accumulate_tensor(self, src: str, dst: str, d: VarDef) -> Stmt:
        iters = []
        for k in range(d.ndim):
            it = fresh_name(f"i.ac{k}", self._taken)
            self._taken.add(it)
            iters.append(it)
        ivs = [Var(i) for i in iters]
        body: Stmt = ReduceTo(dst, ivs, "+", Load(src, ivs, d.dtype))
        for it, size in zip(reversed(iters), reversed(d.shape)):
            body = For(it, 0, size, body)
        return body

    # -- backward parameters -----------------------------------------------------
    def _used_outputs(self, bwd: Func) -> List[str]:
        reads = set()
        for s in collect_stmts(bwd.body, lambda _s: True):
            for e in s.child_exprs():
                for l in E.all_reads(e):
                    reads.add(l.var)
        return [o for o in self.outputs if o in reads]

    def _wrap_bwd_params(self, bwd: Func, used_outputs: List[str]) -> Func:
        body = bwd.body
        # map provides-grad reads/writes onto a local working copy so the
        # incoming gradient parameter stays read-only
        params: List[str] = []

        # innermost first: requires grads (outputs), zero-filled
        for x in reversed(self.requires):
            d = self.defs[x]
            gname = self.grad_name[x]
            body = VarDef(gname, d.shape, d.dtype, "output", d.mtype,
                          seq([self._zero_fill(gname, d.shape, d.dtype),
                               body]))
        # provides grads: input parameter + local copy
        for y in reversed(self.provides):
            d = self.defs[y]
            gname = self.grad_name[y]
            in_name = gname + ".in"
            copy = self._copy_tensor(in_name, gname, d)
            body = VarDef(gname, d.shape, d.dtype, "cache", d.mtype,
                          seq([copy, body]))
            body = VarDef(in_name, d.shape, d.dtype, "input", d.mtype,
                          body)
            params.append(in_name)
        # tapes
        for t in sorted(self.mat.tape, reverse=True):
            d = self.defs[t]
            body = VarDef(self.tape_name[t],
                          self._tape_dims(t) + list(d.shape), d.dtype,
                          "input", d.mtype, body)
            params.append(self.tape_name[t])
        # used forward outputs
        for o in reversed(used_outputs):
            d = self.defs[o]
            body = VarDef(o, d.shape, d.dtype, "input", d.mtype, body)
            params.append(o)
        # original inputs
        for i in reversed(self.inputs):
            d = self.defs[i]
            body = VarDef(i, d.shape, d.dtype, "input", d.mtype, body)
            params.append(i)
        params.reverse()
        returns = [self.grad_name[x] for x in self.requires]
        return Func(bwd.name, params, returns, body,
                    list(self.func.scalar_params))

    def _copy_tensor(self, src: str, dst: str, d: VarDef) -> Stmt:
        iters = []
        for k in range(d.ndim):
            it = fresh_name(f"i.cp{k}", self._taken)
            self._taken.add(it)
            iters.append(it)
        ivs = [Var(i) for i in iters]
        body: Stmt = Store(dst, ivs, Load(src, ivs, d.dtype))
        for it, size in zip(reversed(iters), reversed(d.shape)):
            body = For(it, 0, size, body)
        return body

"""Symbolic derivative rules for IR expressions.

``grad_contributions(f, adj)`` walks an expression tree and returns, for
every float Load inside it, the adjoint contribution
``∂f/∂load * adj`` as a symbolic expression. The returned expressions
reference *forward* tensor names; the grad transformation rewrites them to
taped / recomputed values afterwards.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..errors import ADError
from ..ir import (Cast, Expr, FloatConst, IfExpr, Load, makeIfExpr,
                  makeIntrinsic, wrap)
from ..ir import expr as E

Contribution = Tuple[Load, Expr]


def grad_contributions(f: Expr, adj: Expr,
                       is_active: Optional[Callable[[Load], bool]] = None
                       ) -> List[Contribution]:
    """Adjoint contributions of every active float Load in ``f``."""
    out: List[Contribution] = []
    _walk(f, adj, out, is_active or (lambda _l: True))
    return out


def _walk(e: Expr, adj: Expr, out: List[Contribution], is_active):
    if not e.dtype.is_float:
        return  # integer/bool subtrees carry no gradient
    if isinstance(e, E.Const):
        return
    if isinstance(e, Load):
        if is_active(e):
            out.append((e, adj))
        return
    if isinstance(e, E.Add):
        _walk(e.lhs, adj, out, is_active)
        _walk(e.rhs, adj, out, is_active)
        return
    if isinstance(e, E.Sub):
        _walk(e.lhs, adj, out, is_active)
        _walk(e.rhs, -adj, out, is_active)
        return
    if isinstance(e, E.Mul):
        _walk(e.lhs, adj * e.rhs, out, is_active)
        _walk(e.rhs, adj * e.lhs, out, is_active)
        return
    if isinstance(e, E.RealDiv):
        _walk(e.lhs, adj / e.rhs, out, is_active)
        _walk(e.rhs, -(adj * e.lhs) / (e.rhs * e.rhs), out, is_active)
        return
    if isinstance(e, (E.Min, E.Max)):
        # subgradient: route to the winning operand (ties -> lhs)
        win_l = (e.lhs <= e.rhs) if isinstance(e, E.Min) else \
            (e.lhs >= e.rhs)
        _walk(e.lhs, makeIfExpr(win_l, adj, _zero(adj)), out, is_active)
        _walk(e.rhs, makeIfExpr(win_l, _zero(adj), adj), out, is_active)
        return
    if isinstance(e, IfExpr):
        _walk(e.then_case, makeIfExpr(e.cond, adj, _zero(adj)), out,
              is_active)
        _walk(e.else_case, makeIfExpr(e.cond, _zero(adj), adj), out,
              is_active)
        return
    if isinstance(e, Cast):
        if e.operand.dtype.is_float:
            _walk(e.operand, adj, out, is_active)
        return
    if isinstance(e, E.Intrinsic):
        _walk_intrinsic(e, adj, out, is_active)
        return
    if isinstance(e, (E.FloorDiv, E.Mod)):
        return  # piecewise-constant
    raise ADError(f"cannot differentiate {type(e).__name__}")


def _zero(adj: Expr) -> Expr:
    from ..ir import wrap_like

    return wrap_like(0, adj.dtype)


def _walk_intrinsic(e: E.Intrinsic, adj, out, is_active):
    name = e.name
    x = e.args[0] if e.args else None
    I = lambda n, args: makeIntrinsic(n, args, e.dtype)
    if name == "abs":
        _walk(x, makeIfExpr(x >= _zero(adj), adj, -adj), out, is_active)
    elif name == "sqrt":
        _walk(x, adj / (2.0 * I("sqrt", [x])), out, is_active)
    elif name == "exp":
        _walk(x, adj * I("exp", [x]), out, is_active)
    elif name == "log":
        _walk(x, adj / x, out, is_active)
    elif name == "sin":
        _walk(x, adj * I("cos", [x]), out, is_active)
    elif name == "cos":
        _walk(x, -(adj * I("sin", [x])), out, is_active)
    elif name == "tan":
        c = I("cos", [x])
        _walk(x, adj / (c * c), out, is_active)
    elif name == "tanh":
        t = I("tanh", [x])
        _walk(x, adj * (1.0 - t * t), out, is_active)
    elif name == "sigmoid":
        s = I("sigmoid", [x])
        _walk(x, adj * s * (1.0 - s), out, is_active)
    elif name == "erf":
        two_over_sqrt_pi = 1.1283791670955126
        _walk(x, adj * two_over_sqrt_pi * I("exp", [-(x * x)]), out,
              is_active)
    elif name in ("floor", "ceil"):
        pass  # piecewise-constant
    elif name == "pow":
        a, b = e.args
        _walk(a, adj * b * I("pow", [a, b - 1.0]), out, is_active)
        if b.dtype.is_float and not isinstance(b, E.Const):
            _walk(b, adj * I("pow", [a, b]) * I("log", [a]), out,
                  is_active)
    elif name in ("unbound_min", "unbound_max"):
        raise ADError(f"cannot differentiate intrinsic {name!r}")
    else:  # pragma: no cover - exhaustive over INTRINSICS
        raise ADError(f"no derivative rule for intrinsic {name!r}")


def value_dependencies(f: Expr) -> set:
    """Names of tensors whose forward values the adjoint of ``f`` needs."""
    names = set()
    for _load, contrib in grad_contributions(f, FloatConst(1.0)):
        for l in E.all_reads(contrib):
            names.add(l.var)
        # index expressions of the contribution target also need values
    for l in E.all_reads(f):
        for idx in l.indices:
            for il in E.all_reads(idx):
                names.add(il.var)
    return names

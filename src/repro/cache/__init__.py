"""Persistent cross-process compile cache (see docs/PERFORMANCE.md).

The in-process pass/build caches make the *second* compile in one process
free; this package makes the second compile on one *machine* free. It has
three layers:

- :mod:`repro.cache.keys` — the versioned key schema (self-invalidating
  on compiler-source or format changes),
- :mod:`repro.cache.serial` — fidelity-checked IR serialization with
  cross-process statement-identity translation,
- :mod:`repro.cache.store` — the content-addressed on-disk store with
  atomic writes, corruption recovery and LRU GC,

plus an optional warm compile daemon (:mod:`repro.cache.daemon`, run as
``python -m repro.cached``) that keeps a hot in-memory cache across
client processes.

Environment knobs: ``REPRO_CACHE_DIR`` (location, default
``~/.cache/repro``), ``REPRO_NO_DISK_CACHE=1`` (opt out),
``REPRO_CACHE_MAX_MB`` (LRU budget, default 512), ``REPRO_NO_DAEMON=1``
(never consult the daemon), ``REPRO_DAEMON_SOCK`` (socket path).
"""

from .keys import (CACHE_FORMAT, native_digest, schema_tag, source_digest,
                   target_tag)
from .serial import (canonical_key, decode_entry, decode_func, encode_entry,
                     encode_func, preorder_sids)
from .store import DiskCache, cache_root, enabled, get_store, max_bytes

__all__ = [
    "CACHE_FORMAT",
    "DiskCache",
    "cache_root",
    "canonical_key",
    "decode_entry",
    "decode_func",
    "enabled",
    "encode_entry",
    "encode_func",
    "get_store",
    "max_bytes",
    "native_digest",
    "preorder_sids",
    "schema_tag",
    "source_digest",
    "target_tag",
]

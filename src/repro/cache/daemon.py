"""The warm compile daemon (run as ``python -m repro.cached``).

A long-lived process listening on a unix socket whose in-memory pass and
autosched caches stay hot across client processes. A client delegates a
whole ``compile_ir`` job (see :mod:`repro.cache.client`); the daemon
compiles through the exact same pipeline — including the persistent disk
cache, which it also populates — and ships the result back with the
statement-identity translation of :mod:`repro.cache.serial`.

Protocol: one JSON object per line, one request per connection.

- ``{"op": "ping"}`` → ``{"ok": true, "pid": ..., "schema": ...}``
- ``{"op": "stats"}`` → ``{"ok": true, "stats": {...}}``
- ``{"op": "compile", "schema", "backend", "optimize", "target",
  "func"}`` → ``{"ok": true, "entry": ...}``
- ``{"op": "shutdown"}`` → ``{"ok": true}`` and the daemon exits

A ``schema`` mismatch (client built from different compiler sources)
refuses the job; the client recompiles locally. Compiles serialize on
one lock — the pass caches are not thread-safe, and a warm compile is
far cheaper than fine-grained locking would be.
"""

from __future__ import annotations

import json
import os
import socket
import threading
from typing import Optional

from . import keys, serial


def _resolve_target(fields: Optional[dict]):
    if fields is None:
        return None
    from ..autosched.target import Target

    return Target(fields["kind"], fields["name"],
                  num_threads=fields["num_threads"],
                  block_size=fields["block_size"],
                  max_local_elems=fields["max_local_elems"],
                  max_shared_elems=fields["max_shared_elems"],
                  unroll_limit=fields["unroll_limit"])


class CompileDaemon:
    """One listening socket; one thread per connection; one compile at a
    time."""

    def __init__(self, sock_path: Optional[str] = None):
        from .client import daemon_sock_path

        self.sock_path = sock_path or daemon_sock_path()
        self._compile_lock = threading.Lock()
        self._shutdown = threading.Event()
        self._server: Optional[socket.socket] = None
        self.compiles = 0

    # -- request handlers -------------------------------------------------

    def handle(self, req: dict) -> dict:
        op = req.get("op")
        if op == "ping":
            return {"ok": True, "pid": os.getpid(),
                    "schema": keys.schema_tag()}
        if op == "stats":
            from ..runtime import metrics

            return {"ok": True, "stats": {
                "pid": os.getpid(),
                "compiles": self.compiles,
                "disk": metrics.disk_cache_stats(),
                "passes": metrics.pipeline_stats(),
            }}
        if op == "shutdown":
            self._shutdown.set()
            return {"ok": True}
        if op == "compile":
            return self._compile(req)
        return {"ok": False, "error": f"unknown op {op!r}"}

    def _compile(self, req: dict) -> dict:
        if req.get("schema") != keys.schema_tag():
            return {"ok": False, "error": "schema mismatch"}
        try:
            # fresh local sids: client sid spaces must never leak into
            # (or collide within) the daemon's own
            inp = serial.decode_func(req["func"], sid_map={})
        except Exception as exc:
            return {"ok": False, "error": f"bad input IR: {exc}"}
        from ..pipeline import compile_ir

        target = _resolve_target(req.get("target"))
        with self._compile_lock:
            try:
                out = compile_ir(inp, backend=req.get("backend", "pycode"),
                                 target=target,
                                 optimize=bool(req.get("optimize")))
            except Exception as exc:
                return {"ok": False, "error": f"compile failed: {exc}"}
            self.compiles += 1
        entry = serial.encode_entry(out, serial.preorder_sids(inp))
        if entry is None:
            return {"ok": False, "error": "result not serializable"}
        return {"ok": True, "entry": entry}

    # -- server loop ------------------------------------------------------

    def _serve_conn(self, conn: socket.socket):
        with conn:
            conn.settimeout(120)
            buf = b""
            try:
                while not buf.endswith(b"\n"):
                    chunk = conn.recv(1 << 20)
                    if not chunk:
                        return
                    buf += chunk
                reply = self.handle(json.loads(buf.decode()))
            except Exception as exc:
                reply = {"ok": False, "error": str(exc)}
            try:
                conn.sendall(json.dumps(reply).encode() + b"\n")
            except OSError:
                pass

    def serve_forever(self):
        # the daemon never consults itself, and its compiles must run
        # even if the spawning shell exported the opt-out
        os.environ["REPRO_NO_DAEMON"] = "1"
        os.makedirs(os.path.dirname(self.sock_path), exist_ok=True)
        try:
            os.unlink(self.sock_path)
        except OSError:
            pass
        self._server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._server.bind(self.sock_path)
        self._server.listen(16)
        self._server.settimeout(0.5)  # poll the shutdown flag
        try:
            while not self._shutdown.is_set():
                try:
                    conn, _ = self._server.accept()
                except socket.timeout:
                    continue
                t = threading.Thread(target=self._serve_conn, args=(conn,),
                                     daemon=True)
                t.start()
        finally:
            self._server.close()
            try:
                os.unlink(self.sock_path)
            except OSError:
                pass


def main(argv=None) -> int:
    import argparse

    ap = argparse.ArgumentParser(
        prog="python -m repro.cached",
        description="warm compile daemon for the repro DSL")
    ap.add_argument("--sock", default=None,
                    help="socket path (default: REPRO_DAEMON_SOCK or "
                         "<cache root>/daemon.sock)")
    args = ap.parse_args(argv)
    daemon = CompileDaemon(args.sock)
    print(f"repro compile daemon: pid {os.getpid()}, "
          f"socket {daemon.sock_path}", flush=True)
    try:
        daemon.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover
        pass
    return 0

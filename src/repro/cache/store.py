"""Content-addressed on-disk store backing the persistent compile cache.

Layout (under :func:`cache_root`, default ``~/.cache/repro``)::

    <root>/ir/<schema-tag>/<hh>/<hash>.json   serialized pass / autosched
                                              outputs (repro.cache.serial)
    <root>/native/k<digest>.{c,so}            compiled kernel artifacts
                                              (repro.codegen.ccode)
    <root>/gc.lock                            inter-process GC mutex

Writes are crash-safe: entries are written to a temp file in the same
directory and ``os.replace``-d into place, so readers only ever observe
complete files. Corrupt or truncated entries (e.g. from a torn copy or a
foreign writer) are deleted and reported as misses — the cache can lose
entries but never serve garbage, because every IR payload was
fidelity-checked at write time and native artifacts are keyed by the full
gcc input.

Eviction is LRU over file mtimes (a hit bumps the entry's mtime); the
budget is ``REPRO_CACHE_MAX_MB`` (default 512). GC runs opportunistically
after a batch of stores and takes a non-blocking ``flock`` so concurrent
processes never double-evict.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from typing import List, Optional, Tuple

from . import keys, serial

_DEFAULT_MAX_MB = 512
_AUTO_GC_EVERY = 64  # stores between opportunistic GC checks


def cache_root() -> str:
    """Resolved cache directory (``REPRO_CACHE_DIR`` wins)."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return os.path.abspath(os.path.expanduser(env))
    return os.path.join(os.path.expanduser("~"), ".cache", "repro")


def enabled() -> bool:
    """Whether the persistent cache participates in this process."""
    return os.environ.get("REPRO_NO_DISK_CACHE") != "1"


def max_bytes() -> int:
    try:
        mb = float(os.environ.get("REPRO_CACHE_MAX_MB", _DEFAULT_MAX_MB))
    except ValueError:
        mb = _DEFAULT_MAX_MB
    return int(mb * 1024 * 1024)


class DiskCache:
    """One process's handle on the shared on-disk store."""

    def __init__(self, root: str):
        self.root = root
        self._stores_since_gc = 0

    # -- paths ------------------------------------------------------------

    def ir_dir(self) -> str:
        return os.path.join(self.root, "ir", keys.schema_tag())

    def native_dir(self) -> str:
        return os.path.join(self.root, "native")

    def _entry_path(self, kind: str, key: str) -> str:
        h = keys.entry_hash(kind, key)
        return os.path.join(self.ir_dir(), h[:2], h + ".json")

    # -- IR entries -------------------------------------------------------

    def ir_lookup(self, kind: str, key: str,
                  current_input_sids: List[str]):
        """Return the cached output Func translated onto this process's
        sids, or None on miss. Never raises."""
        from ..runtime import metrics

        t0 = time.perf_counter()
        path = self._entry_path(kind, key)
        try:
            with open(path, "r") as f:
                entry = json.load(f)
            func = serial.decode_entry(entry, current_input_sids)
        except FileNotFoundError:
            metrics.record_disk_lookup(False, time.perf_counter() - t0)
            return None
        except Exception:
            # torn write, foreign format, sid-list mismatch: drop it
            try:
                os.unlink(path)
            except OSError:
                pass
            metrics.record_disk_corrupt()
            metrics.record_disk_lookup(False, time.perf_counter() - t0)
            return None
        try:  # LRU recency bump
            os.utime(path)
        except OSError:
            pass
        metrics.record_disk_lookup(True, time.perf_counter() - t0)
        return func

    def ir_store(self, kind: str, key: str, input_sids: List[str],
                 func) -> bool:
        """Persist one entry; False when the func is unserializable or
        the write fails (both are non-fatal)."""
        from ..runtime import metrics

        t0 = time.perf_counter()
        entry = serial.encode_entry(func, input_sids)
        if entry is None:
            return False
        path = self._entry_path(kind, key)
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                       suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as f:
                    json.dump(entry, f, separators=(",", ":"))
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            return False
        metrics.record_disk_store(time.perf_counter() - t0)
        self._stores_since_gc += 1
        if self._stores_since_gc >= _AUTO_GC_EVERY:
            self._stores_since_gc = 0
            self.gc()
        return True

    # -- maintenance ------------------------------------------------------

    def _all_files(self) -> List[Tuple[float, int, str]]:
        """(mtime, size, path) of every evictable file under the root."""
        out = []
        for sub in ("ir", "native"):
            top = os.path.join(self.root, sub)
            for dirpath, _dirs, files in os.walk(top):
                for name in files:
                    if ".tmp" in name or name.endswith(".lock"):
                        continue
                    p = os.path.join(dirpath, name)
                    try:
                        st = os.stat(p)
                    except OSError:
                        continue
                    out.append((st.st_mtime, st.st_size, p))
        return out

    def disk_stats(self) -> dict:
        """What is actually on disk right now (all schema namespaces)."""
        files = self._all_files()
        ir = [f for f in files if os.sep + "ir" + os.sep in f[2]]
        native = [f for f in files if os.sep + "native" + os.sep in f[2]]
        return {
            "root": self.root,
            "schema": keys.schema_tag(),
            "ir_entries": len(ir),
            "ir_bytes": sum(f[1] for f in ir),
            "native_files": len(native),
            "native_bytes": sum(f[1] for f in native),
            "total_bytes": sum(f[1] for f in files),
            "budget_bytes": max_bytes(),
        }

    def gc(self, budget: Optional[int] = None) -> int:
        """Evict least-recently-used files until under budget. Returns
        the number of files removed (0 when under budget or when another
        process is already collecting)."""
        from ..runtime import metrics

        budget = max_bytes() if budget is None else budget
        lock_path = os.path.join(self.root, "gc.lock")
        try:
            os.makedirs(self.root, exist_ok=True)
            lock = open(lock_path, "w")
        except OSError:
            return 0
        try:
            try:
                import fcntl

                fcntl.flock(lock, fcntl.LOCK_EX | fcntl.LOCK_NB)
            except (ImportError, OSError):
                return 0  # someone else is collecting
            files = self._all_files()
            total = sum(f[1] for f in files)
            evicted = 0
            # Evict a .so together with its .c twin: pairs share a stem,
            # and stranded sources would just be re-evicted next round.
            for mtime, size, path in sorted(files):
                if total <= budget:
                    break
                try:
                    os.unlink(path)
                except OSError:
                    continue
                total -= size
                evicted += 1
            if evicted:
                metrics.record_disk_evictions(evicted)
                self._prune_empty_dirs()
            return evicted
        finally:
            lock.close()

    def clear(self) -> int:
        """Remove every cache entry (all schema namespaces and native
        artifacts). Returns the number of files removed."""
        files = self._all_files()
        removed = 0
        for _mtime, _size, path in files:
            try:
                os.unlink(path)
                removed += 1
            except OSError:
                pass
        self._prune_empty_dirs()
        return removed

    def _prune_empty_dirs(self):
        for sub in ("ir", "native"):
            top = os.path.join(self.root, sub)
            for dirpath, dirs, files in os.walk(top, topdown=False):
                if not dirs and not files and dirpath != top:
                    try:
                        os.rmdir(dirpath)
                    except OSError:
                        pass


_STORES: dict = {}


def get_store() -> Optional[DiskCache]:
    """The process-wide store handle, or None when disk caching is off.

    Keyed by the resolved root so tests that re-point ``REPRO_CACHE_DIR``
    get a fresh handle.
    """
    if not enabled():
        return None
    root = cache_root()
    store = _STORES.get(root)
    if store is None:
        store = _STORES[root] = DiskCache(root)
    return store

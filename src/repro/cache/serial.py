"""IR serialization for the persistent compile cache.

Entries are the pretty-printer's textual IR (``repro.ir.printer``) plus a
*preorder sid list*, so a loaded tree can be given back exact statement
identity — the one thing ``parse_program(dump(func))`` alone cannot
recover. Serialization is **fidelity-checked at write time**: an entry is
only produced if decoding it reproduces the original tree bit-for-bit
(sid-inclusive ``struct_hash`` *and* per-node expression dtypes), so any
IR feature the printer cannot yet represent degrades to "not cached",
never to a wrong compile.

Cross-process statement identity
--------------------------------

Statement ids are minted per process, so the *absolute* sids of two
processes that staged the same program differ even though the trees are
structurally identical. The cache therefore keys entries under a
**canonical** hash — sids renumbered ``#1..#n`` in preorder — and stores
the producing process's preorder sid list alongside the payload. A
consumer maps the stored sids onto *its own* tree's preorder sids
(:func:`decode_func`): statements that survived from the input keep the
consumer's identity (so schedules still address them, and sid-keyed
source spans re-attach automatically), while pass-introduced statements
get fresh local sids that cannot collide.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..ir import Func, bump_sid_counter, dump, fresh_sid, struct_hash
from ..ir.parser import parse_program

#: payload encoding version (also covered by the schema tag; this one is
#: checked explicitly so a mixed-version directory degrades to misses)
PAYLOAD_FORMAT = 1


def preorder_sids(func: Func) -> List[str]:
    """Every statement's sid, in preorder (the printer's emission
    order)."""
    out: List[str] = []

    def walk(s):
        out.append(s.sid)
        for c in s.children_stmts():
            walk(c)

    walk(func.body)
    return out


def canonical_key(func: Func) -> Tuple[str, List[str]]:
    """``(canonical sid-inclusive struct hash, preorder sids)``.

    The hash renumbers sids ``#1..#n`` in preorder before hashing, so it
    is invariant under the process-local absolute sid values while still
    distinguishing trees whose statement *identity structure* differs.
    """
    sids = preorder_sids(func)
    canon = {sid: f"#{i + 1}" for i, sid in enumerate(sids)}
    return struct_hash(func, include_sids=True, sid_map=canon), sids


def _expr_dtypes(func: Func) -> List[str]:
    """Every expression node's dtype, in deterministic preorder — the
    part of the tree ``struct_hash`` deliberately ignores but code
    generation reads."""
    out: List[str] = []

    def walk_expr(e):
        out.append(e.dtype.value)
        for c in e.children():
            walk_expr(c)

    def walk(s):
        for e in s.child_exprs():
            walk_expr(e)
        for c in s.children_stmts():
            walk(c)

    walk(func.body)
    return out


def _has_init_data(func: Func) -> bool:
    from ..ir import VarDef, collect_stmts

    return any(vd.init_data is not None for vd in collect_stmts(
        func.body, lambda s: isinstance(s, VarDef)))


def encode_func(func: Func) -> Optional[dict]:
    """Serialize ``func`` to a JSON-able payload, or None when the
    function cannot be represented faithfully (the caller should treat
    this as "uncacheable", not as an error)."""
    from ..runtime import metrics

    if _has_init_data(func):  # captured constant tensors: not in the
        metrics.record_disk_unserializable()  # textual format
        return None
    sids = preorder_sids(func)
    payload = {
        "fmt": PAYLOAD_FORMAT,
        "ir": dump(func),
        "sids": sids,
    }
    # Fidelity gate: decoding must reproduce the tree exactly. struct_hash
    # covers structure + sids; the dtype walk covers expression dtypes
    # (which hashing ignores but codegen depends on).
    try:
        back = decode_func(payload, sid_map={s: s for s in sids},
                           bump_counter=False)
    except Exception:
        metrics.record_disk_unserializable()
        return None
    if struct_hash(back, include_sids=True) != \
            struct_hash(func, include_sids=True) \
            or _expr_dtypes(back) != _expr_dtypes(func):
        metrics.record_disk_unserializable()
        return None
    return payload


def decode_func(payload: dict, sid_map: Optional[Dict[str, str]] = None,
                bump_counter: bool = True) -> Func:
    """Reconstruct a Func from :func:`encode_func`'s payload.

    ``sid_map`` translates stored sids to this process's sids; stored
    sids missing from the map get a fresh local sid. With no map, the
    stored sids are kept verbatim and the local sid counter is bumped
    past them so later ``fresh_sid()`` calls cannot collide.
    """
    if payload.get("fmt") != PAYLOAD_FORMAT:
        raise ValueError(f"unknown payload format {payload.get('fmt')!r}")
    func = parse_program(payload["ir"])
    stored = payload["sids"]
    nodes: List = []

    def walk(s):
        nodes.append(s)
        for c in s.children_stmts():
            walk(c)

    walk(func.body)
    if len(nodes) != len(stored):
        raise ValueError(
            f"sid list length {len(stored)} does not match parsed tree "
            f"({len(nodes)} statements)")
    if sid_map is None:
        numeric = 0
        for node, sid in zip(nodes, stored):
            node.sid = sid
            if sid.startswith("#") and sid[1:].isdigit():
                numeric = max(numeric, int(sid[1:]))
        if bump_counter:
            bump_sid_counter(numeric)
    else:
        for node, sid in zip(nodes, stored):
            mapped = sid_map.get(sid)
            node.sid = mapped if mapped is not None else fresh_sid()
    return func


def encode_entry(func: Func, input_sids: List[str]) -> Optional[dict]:
    """A complete cache entry: the compiled output plus the *input*
    tree's preorder sids (recorded so a consumer can translate)."""
    payload = encode_func(func)
    if payload is None:
        return None
    return {"fmt": PAYLOAD_FORMAT, "input_sids": input_sids,
            "func": payload}


def decode_entry(entry: dict, current_input_sids: List[str]) -> Func:
    """Decode a cache entry against the consumer's input tree.

    ``current_input_sids`` is the consumer's own preorder sid list for
    the (structurally identical) input; stored input sids map onto it
    positionally, which is exact because the entry was keyed under the
    canonical hash of that same structure.
    """
    stored_input = entry["input_sids"]
    if len(stored_input) != len(current_input_sids):
        raise ValueError("input sid list length mismatch")
    sid_map = dict(zip(stored_input, current_input_sids))
    return decode_func(entry["func"], sid_map=sid_map)

"""Versioned key schema for the persistent compile cache.

Every on-disk IR entry lives under a *schema tag* that folds together

- the cache format version (bumped when the entry encoding changes),
- a digest of the ``repro`` package's own source tree (any change to a
  pass, the printer, the hashing scheme, ... silently invalidates every
  entry written by the previous compiler), and
- the interpreter's major.minor (a different Python can pickle-free
  round-trip differently).

so stale entries self-invalidate: a new compiler simply reads and writes
a different namespace, and the old namespace ages out through LRU GC.

Native (``.so``) artifacts are *not* namespaced by the schema tag — they
are keyed by a digest of the generated C source plus the compiler
identity and flags (:func:`native_digest`), which is the complete input
of the gcc invocation regardless of compiler-internals.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import subprocess
import sys
from typing import Optional

#: bump when the on-disk entry encoding changes shape
CACHE_FORMAT = 1

_SOURCE_DIGEST: Optional[str] = None
_SCHEMA_TAG: Optional[str] = None
_CC_FINGERPRINTS: dict = {}


def source_digest() -> str:
    """Content digest of every ``.py`` file in the ``repro`` package
    (computed once per process)."""
    global _SOURCE_DIGEST
    if _SOURCE_DIGEST is None:
        pkg_dir = os.path.dirname(os.path.dirname(os.path.abspath(
            __file__)))
        h = hashlib.blake2b(digest_size=12)
        names = []
        for root, dirs, files in os.walk(pkg_dir):
            dirs[:] = sorted(d for d in dirs if d != "__pycache__")
            for f in sorted(files):
                if f.endswith(".py"):
                    names.append(os.path.join(root, f))
        for path in names:
            h.update(os.path.relpath(path, pkg_dir).encode())
            with open(path, "rb") as f:
                h.update(f.read())
        _SOURCE_DIGEST = h.hexdigest()
    return _SOURCE_DIGEST


def schema_tag() -> str:
    """The namespace current-compiler entries live under."""
    global _SCHEMA_TAG
    if _SCHEMA_TAG is None:
        _SCHEMA_TAG = (f"v{CACHE_FORMAT}"
                       f"-py{sys.version_info[0]}.{sys.version_info[1]}"
                       f"-{source_digest()}")
    return _SCHEMA_TAG


def target_tag(target) -> str:
    """Stable text form of a scheduling target for key construction."""
    if target is None:
        return "none"
    key = getattr(target, "cache_key", None)
    if callable(key):
        return repr(key())
    return repr(target)


def cc_fingerprint(cc: str) -> str:
    """First line of ``cc --version`` ("" when the compiler cannot be
    queried).

    Memoized per process and, keyed by the compiler binary's path+mtime,
    in ``<cache root>/ccinfo.json`` — spawning gcc just to identify
    itself costs ~10ms, which would dominate a warm process's entire
    compile.
    """
    fp = _CC_FINGERPRINTS.get(cc)
    if fp is not None:
        return fp
    binkey = _cc_binary_key(cc)
    info_path, info = _load_ccinfo()
    if binkey is not None and info.get(binkey) is not None:
        fp = info[binkey]
    else:
        try:
            out = subprocess.run([cc, "--version"], capture_output=True,
                                 text=True, timeout=10)
            fp = (out.stdout or "").splitlines()[0].strip() if out.stdout \
                else ""
        except Exception:
            fp = ""
        if binkey is not None and info_path is not None:
            try:
                info[binkey] = fp
                os.makedirs(os.path.dirname(info_path), exist_ok=True)
                tmp = info_path + f".{os.getpid()}.tmp"
                with open(tmp, "w") as f:
                    json.dump(info, f)
                os.replace(tmp, info_path)
            except OSError:
                pass
    _CC_FINGERPRINTS[cc] = fp
    return fp


def _cc_binary_key(cc: str) -> Optional[str]:
    """Identity of the compiler *binary* (path + mtime), or None when it
    cannot be resolved (then the fingerprint is never disk-memoized)."""
    path = shutil.which(cc)
    if path is None:
        return None
    try:
        return f"{path}|{os.stat(path).st_mtime_ns}"
    except OSError:
        return None


def _load_ccinfo():
    from .store import cache_root, enabled

    if not enabled():
        return None, {}
    path = os.path.join(cache_root(), "ccinfo.json")
    try:
        with open(path) as f:
            return path, json.load(f)
    except (OSError, ValueError):
        return path, {}


def native_digest(source: str, cc: str, opt: str, openmp: bool) -> str:
    """Content key of one native artifact: generated source + compiler
    identity + flags. Two processes generating the same C translation
    unit share one ``.so``."""
    h = hashlib.blake2b(digest_size=12)
    h.update(source.encode())
    h.update(b"\0")
    h.update(f"{cc}|{opt}|omp={int(bool(openmp))}|"
             f"{cc_fingerprint(cc)}".encode())
    return h.hexdigest()


def entry_hash(kind: str, key: str) -> str:
    """Filename-safe digest for one IR entry within the schema
    namespace."""
    return hashlib.blake2b(f"{kind}\0{key}".encode(),
                           digest_size=16).hexdigest()

"""Client side of the warm compile daemon.

``maybe_daemon_compile`` is consulted at the top of
``repro.pipeline.compile_ir``: when a daemon (``python -m repro.cached``)
is listening on the well-known socket, the whole optimize+lower job is
delegated to it — the daemon's in-memory pass/autosched caches stay hot
across short-lived client processes, so a popular kernel compiles to a
socket round-trip. Every failure mode (no daemon, stale socket, protocol
or schema mismatch, timeout, unserializable IR) returns None and the
caller compiles locally; the daemon is a pure accelerator, never a
dependency.
"""

from __future__ import annotations

import json
import os
import socket
import time
from typing import Dict, Optional

from ..ir import Func
from . import keys, serial

#: per-request ceiling; a genuinely cold daemon compile of the largest
#: workload is well under this, and a hung daemon must not hang clients
_TIMEOUT_S = 60.0

#: daemon results already fetched by this process, keyed by
#: (input hash, backend, target, optimize)
_LOCAL: dict = {}


def daemon_sock_path() -> str:
    env = os.environ.get("REPRO_DAEMON_SOCK")
    if env:
        return env
    from .store import cache_root

    return os.path.join(cache_root(), "daemon.sock")


def daemon_enabled() -> bool:
    return os.environ.get("REPRO_NO_DAEMON") != "1"


def _target_fields(target) -> Optional[dict]:
    if target is None:
        return None
    return {
        "kind": target.kind, "name": target.name,
        "num_threads": target.num_threads,
        "block_size": target.block_size,
        "max_local_elems": target.max_local_elems,
        "max_shared_elems": target.max_shared_elems,
        "unroll_limit": target.unroll_limit,
    }


def request(req: dict, timeout: float = _TIMEOUT_S) -> dict:
    """One JSON-line round-trip with the daemon; raises OSError family on
    transport problems, ValueError on garbage replies."""
    path = daemon_sock_path()
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sk:
        sk.settimeout(timeout)
        sk.connect(path)
        sk.sendall(json.dumps(req).encode() + b"\n")
        buf = b""
        while not buf.endswith(b"\n"):
            chunk = sk.recv(1 << 20)
            if not chunk:  # daemon died mid-reply
                break
            buf += chunk
    if not buf:
        raise ValueError("empty reply from daemon")
    return json.loads(buf.decode())


def maybe_daemon_compile(func: Func, backend: str, target, optimize: bool,
                         times: Optional[Dict[str, float]] = None,
                         ) -> Optional[Func]:
    """Delegate one compile to the daemon; None means "compile locally".

    Never raises: the daemon path is strictly best-effort.
    """
    from ..runtime import metrics

    if not daemon_enabled():
        return None
    if os.environ.get("REPRO_DUMP_IR") or \
            os.environ.get("REPRO_VERIFY_EACH_PASS") == "1":
        return None  # instrumented runs want local pass execution
    path = daemon_sock_path()
    if not os.path.exists(path):
        return None
    from ..ir import struct_hash
    from .keys import target_tag

    # repeats of one job inside one process are served locally — a
    # socket round-trip per tuner-candidate recompile would undo the
    # in-memory caches the daemon exists to complement
    local_key = (struct_hash(func, include_sids=True), backend,
                 target_tag(target), bool(optimize))
    hit = _LOCAL.get(local_key)
    if hit is not None:
        return hit
    t0 = time.perf_counter()
    try:
        payload = serial.encode_func(func)
        if payload is None:
            metrics.record_daemon(False, time.perf_counter() - t0)
            return None
        reply = request({
            "op": "compile",
            "schema": keys.schema_tag(),
            "backend": backend,
            "optimize": bool(optimize),
            "target": _target_fields(target),
            "func": payload,
        })
        if not reply.get("ok"):
            metrics.record_daemon(False, time.perf_counter() - t0)
            return None
        out = serial.decode_entry(reply["entry"],
                                  serial.preorder_sids(func))
    except Exception:
        metrics.record_daemon(False, time.perf_counter() - t0)
        return None
    dt = time.perf_counter() - t0
    metrics.record_daemon(True, dt)
    if times is not None:
        times["daemon"] = times.get("daemon", 0.0) + dt
    if len(_LOCAL) >= 512:
        _LOCAL.clear()  # pragma: no cover
    _LOCAL[local_key] = out
    return out

"""``python -m repro.cache`` — inspect and manage the persistent cache.

Subcommands:

- ``stats``            what is on disk plus this process's counters
- ``clear``            delete every entry and native artifact
- ``gc``               run LRU eviction against the size budget now
- ``warm <name|all>``  pre-compile workloads into the cache so the next
  process — or CI job, or fleet of tuner workers — starts warm

``REPRO_CACHE_DIR`` points the store somewhere else; see
docs/PERFORMANCE.md for the full knob list.
"""

from __future__ import annotations

import argparse
import json
import sys


def _fmt_bytes(n: int) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if n < 1024 or unit == "GiB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{n} B"
        n /= 1024
    return f"{n} B"  # pragma: no cover


def cmd_stats(args) -> int:
    from ..runtime.metrics import disk_cache_stats
    from .store import DiskCache, cache_root

    store = DiskCache(cache_root())  # direct handle: stats work even
    disk = store.disk_stats()        # under REPRO_NO_DISK_CACHE
    if args.json:
        print(json.dumps({"disk": disk, "process": disk_cache_stats()},
                         indent=2))
        return 0
    print(f"cache root      {disk['root']}")
    print(f"schema          {disk['schema']}")
    print(f"ir entries      {disk['ir_entries']}"
          f"  ({_fmt_bytes(disk['ir_bytes'])})")
    print(f"native kernels  {disk['native_files']}"
          f"  ({_fmt_bytes(disk['native_bytes'])})")
    print(f"total           {_fmt_bytes(disk['total_bytes'])}"
          f"  of {_fmt_bytes(disk['budget_bytes'])} budget")
    return 0


def cmd_clear(_args) -> int:
    from .store import DiskCache, cache_root

    removed = DiskCache(cache_root()).clear()
    print(f"removed {removed} file(s)")
    return 0


def cmd_gc(_args) -> int:
    from .store import DiskCache, cache_root

    evicted = DiskCache(cache_root()).gc()
    print(f"evicted {evicted} file(s)")
    return 0


def cmd_warm(args) -> int:
    from ..runtime.driver import build
    from ..workloads import ALL

    names = sorted(ALL) if args.workload == "all" else [args.workload]
    unknown = [n for n in names if n not in ALL]
    if unknown:
        print(f"unknown workload(s): {', '.join(unknown)}; "
              f"known: {', '.join(sorted(ALL))} or 'all'",
              file=sys.stderr)
        return 2
    for name in names:
        prog = ALL[name].make_program()
        build(prog, backend=args.backend, optimize=args.optimize)
        print(f"warmed {name} (backend={args.backend}, "
              f"optimize={args.optimize})")
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.cache",
        description="manage the persistent compile cache")
    sub = ap.add_subparsers(dest="cmd", required=True)
    p = sub.add_parser("stats", help="show cache contents and counters")
    p.add_argument("--json", action="store_true",
                   help="machine-readable output")
    p.set_defaults(fn=cmd_stats)
    p = sub.add_parser("clear", help="delete every cache entry")
    p.set_defaults(fn=cmd_clear)
    p = sub.add_parser("gc", help="run LRU eviction now")
    p.set_defaults(fn=cmd_gc)
    p = sub.add_parser("warm", help="pre-compile workloads into the cache")
    p.add_argument("workload", help="workload name or 'all'")
    p.add_argument("--backend", default="c")
    p.add_argument("--optimize", action="store_true")
    p.set_defaults(fn=cmd_warm)
    args = ap.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())

"""Execution metrics: kernel launches, DRAM/L2 traffic, FLOPs, footprint.

This is the measurement substrate for the paper's Figure 17 (kernel
invocations, DRAM bytes, L2 bytes, FLOP count) and the OOM outcomes of
Figures 16(b)/18. The memory-hierarchy model is deliberately simple and
documented:

- every scalar access to a *global-memory* tensor costs one 32-byte sector
  at the L2 (adjacent repeated accesses to the same sector by the same
  access site are merged — a one-entry coalescing buffer);
- DRAM traffic is 64-byte lines missing in an LRU cache of configurable
  capacity;
- accesses to registers / scratchpad (``byvalue``, ``gpu/local``,
  ``gpu/shared``) are free.

Absolute byte counts are approximations; the paper-level comparisons
(FreeTensor touching a few percent of the baseline's DRAM traffic) are
driven by *which* tensors get materialised, which this model captures
exactly.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional

import numpy as np

from ..errors import SimulatedOOM
from ..ir import (AccessType, Expr, For, Func, MemType, Stmt, StmtSeq,
                  VarDef, collect_stmts)

SECTOR = 32
LINE = 64

# ---------------------------------------------------------------------------
# Pipeline pass counters (see repro.pipeline and docs/ARCHITECTURE.md)
# ---------------------------------------------------------------------------

#: per pass name: cumulative runs, per-pass cache hits, wall-clock seconds
_PIPELINE_STATS: Dict[str, Dict[str, float]] = {}


def record_pass_run(name: str, seconds: float, cache_hit: bool):
    """Account one pipeline pass execution (or cache-served skip)."""
    row = _PIPELINE_STATS.get(name)
    if row is None:
        row = _PIPELINE_STATS[name] = {"runs": 0, "cache_hits": 0,
                                       "time_s": 0.0}
    row["runs"] += 1
    if cache_hit:
        row["cache_hits"] += 1
    row["time_s"] += seconds


def pipeline_stats() -> Dict[str, Dict[str, float]]:
    """Cumulative per-pass pipeline counters for this process: number of
    runs, per-pass cache hits among them, and total wall-clock seconds
    (cache-served runs contribute only their lookup time)."""
    return {name: dict(row) for name, row in _PIPELINE_STATS.items()}


def reset_pipeline_stats():
    _PIPELINE_STATS.clear()


# ---------------------------------------------------------------------------
# Persistent (on-disk) compile-cache counters (see repro.cache and
# docs/PERFORMANCE.md): IR entry hits/misses with lookup/store latency,
# native-artifact (.so) reuse vs fresh gcc runs, and compile-daemon
# round-trips.
# ---------------------------------------------------------------------------

_DISK_STATS = {
    "ir_hits": 0,          # IR entries served from disk
    "ir_misses": 0,        # disk lookups that found nothing
    "ir_stores": 0,        # IR entries written
    "ir_corrupt": 0,       # truncated/garbled entries treated as misses
    "ir_unserializable": 0,  # funcs the serializer refused to store
    "lookup_time_s": 0.0,
    "store_time_s": 0.0,
    "native_hits": 0,      # compiled .so found in the shared store
    "native_misses": 0,
    "gcc_runs": 0,         # actual C-compiler subprocess invocations
    "gcc_time_s": 0.0,
    "evictions": 0,        # entries removed by LRU GC
    "daemon_compiles": 0,  # compiles served by the warm daemon
    "daemon_fallbacks": 0,  # daemon configured but unusable: compiled locally
    "daemon_time_s": 0.0,
}


def record_disk_lookup(hit: bool, seconds: float = 0.0):
    _DISK_STATS["ir_hits" if hit else "ir_misses"] += 1
    _DISK_STATS["lookup_time_s"] += seconds


def record_disk_store(seconds: float = 0.0):
    _DISK_STATS["ir_stores"] += 1
    _DISK_STATS["store_time_s"] += seconds


def record_disk_corrupt():
    _DISK_STATS["ir_corrupt"] += 1


def record_disk_unserializable():
    _DISK_STATS["ir_unserializable"] += 1


def record_disk_evictions(n: int):
    _DISK_STATS["evictions"] += int(n)


def record_native(hit: bool):
    _DISK_STATS["native_hits" if hit else "native_misses"] += 1


def record_gcc_run(seconds: float):
    _DISK_STATS["gcc_runs"] += 1
    _DISK_STATS["gcc_time_s"] += seconds


def record_daemon(served: bool, seconds: float = 0.0):
    _DISK_STATS["daemon_compiles" if served else "daemon_fallbacks"] += 1
    _DISK_STATS["daemon_time_s"] += seconds


def disk_cache_stats() -> Dict[str, float]:
    """Cumulative persistent-cache counters for this process (IR entries,
    native artifacts, GC evictions, daemon round-trips)."""
    return dict(_DISK_STATS)


def reset_disk_cache_stats():
    for k in _DISK_STATS:
        _DISK_STATS[k] = 0.0 if k.endswith("_s") else 0


# ---------------------------------------------------------------------------
# Verifier pass/fail counters (published by the CI verify-workloads job)
# ---------------------------------------------------------------------------

_VERIFIER_STATS = {
    "runs": 0,
    "passed": 0,
    "failed": 0,
    "errors": 0,
    "warnings": 0,
}


def record_verifier_run(n_errors: int, n_warnings: int):
    """Account one ``repro.verify`` run; a run with any error-severity
    finding counts as failed."""
    _VERIFIER_STATS["runs"] += 1
    _VERIFIER_STATS["errors"] += int(n_errors)
    _VERIFIER_STATS["warnings"] += int(n_warnings)
    if n_errors:
        _VERIFIER_STATS["failed"] += 1
    else:
        _VERIFIER_STATS["passed"] += 1


def verifier_stats() -> Dict[str, int]:
    """Cumulative verifier counters for this process."""
    return dict(_VERIFIER_STATS)


def reset_verifier_stats():
    for k in _VERIFIER_STATS:
        _VERIFIER_STATS[k] = 0


# ---------------------------------------------------------------------------
# Cost-model and tuner-screening counters (see repro.analysis.cost and
# docs/PERFORMANCE.md "Cost model & tuner pruning")
# ---------------------------------------------------------------------------

_COST_STATS = {
    "analyses": 0,     # estimate_cost calls
    "memo_hits": 0,    # ... served from the in-process memo
    "time_s": 0.0,
}


def record_cost_analysis(seconds: float, memo_hit: bool):
    _COST_STATS["analyses"] += 1
    if memo_hit:
        _COST_STATS["memo_hits"] += 1
    _COST_STATS["time_s"] += seconds


def cost_stats() -> Dict[str, float]:
    """Cumulative cost-model counters for this process."""
    return dict(_COST_STATS)


def reset_cost_stats():
    for k in _COST_STATS:
        _COST_STATS[k] = 0.0 if k.endswith("_s") else 0


_TUNER_STATS = {
    "candidates": 0,       # schedules drawn by a tuner
    "dedup_skips": 0,      # structurally identical to an earlier candidate
    "cost_pruned": 0,      # dominated by the incumbent's estimate
    "frontier_skips": 0,   # survived screening but ranked below top-k
    "invalid": 0,          # knob assignment failed to realize (illegal)
    "measured": 0,         # actually compiled + run
    "measure_failed": 0,   # compile/run raised (illegal candidate)
    "measure_timeout": 0,  # worker hung/crashed and was killed
}

#: replayable trace of the last finished tuning session's winner
#: (``ScheduleTrace.as_json()`` payload, or None)
_BEST_TRACE = None


def record_tuner_candidate(outcome: str):
    """Account one tuner round; ``outcome`` is one of ``dedup_skips`` /
    ``cost_pruned`` / ``frontier_skips`` / ``invalid`` / ``measured`` /
    ``measure_failed`` / ``measure_timeout``."""
    _TUNER_STATS["candidates"] += 1
    _TUNER_STATS[outcome] += 1


def record_best_trace(trace_json):
    """Publish the winner's schedule trace (JSON-able list of steps) so
    ``tuner_stats()`` can report how the best schedule was built."""
    global _BEST_TRACE
    _BEST_TRACE = trace_json


def tuner_stats() -> Dict[str, object]:
    """Cumulative tuner screening counters for this process, plus the
    last finished session's winning schedule trace (``best_trace``)."""
    out: Dict[str, object] = dict(_TUNER_STATS)
    out["best_trace"] = _BEST_TRACE
    return out


def reset_tuner_stats():
    global _BEST_TRACE
    for k in _TUNER_STATS:
        _TUNER_STATS[k] = 0
    _BEST_TRACE = None


# ---------------------------------------------------------------------------
# Structured search-space and measurement-pool counters (see
# repro.autosched.search and docs/PERFORMANCE.md "Structured search &
# parallel measurement")
# ---------------------------------------------------------------------------

_SEARCH_STATS = {
    "spaces": 0,        # ScheduleSpace.extract calls
    "knobs": 0,         # total knobs across extracted spaces
    "order_knobs": 0,
    "tile_knobs": 0,
    "ann_knobs": 0,
    "generations": 0,   # evolutionary generations advanced
    "assignments": 0,   # knob assignments drawn (before screening)
}


def record_search_space(knobs: int, order_knobs: int, tile_knobs: int,
                        ann_knobs: int):
    _SEARCH_STATS["spaces"] += 1
    _SEARCH_STATS["knobs"] += int(knobs)
    _SEARCH_STATS["order_knobs"] += int(order_knobs)
    _SEARCH_STATS["tile_knobs"] += int(tile_knobs)
    _SEARCH_STATS["ann_knobs"] += int(ann_knobs)


def record_search_generation(assignments: int):
    _SEARCH_STATS["generations"] += 1
    _SEARCH_STATS["assignments"] += int(assignments)


def search_stats() -> Dict[str, int]:
    """Cumulative structured-search counters for this process."""
    return dict(_SEARCH_STATS)


def reset_search_stats():
    for k in _SEARCH_STATS:
        _SEARCH_STATS[k] = 0


_POOL_STATS = {
    "sessions": 0,         # measurement pools started
    "backend": "",         # registry name of the last session's backend
    "max_workers": 0,      # largest pool size seen
    "tasks": 0,            # measurement tasks dispatched to workers
    "task_failures": 0,    # candidate compile/run raised in a worker
    "task_timeouts": 0,    # worker killed after exceeding the deadline
    "worker_respawns": 0,  # replacement workers forked after a death
    "worker_gcc_runs": 0,      # gcc invocations inside workers (summed)
    "worker_native_hits": 0,   # .so served to workers by the disk store
    "measure_time_s": 0.0,     # wall-clock spent inside pool.measure()
}


def record_pool_session(workers: int, backend: str = ""):
    _POOL_STATS["sessions"] += 1
    if backend:
        _POOL_STATS["backend"] = str(backend)
    _POOL_STATS["max_workers"] = max(_POOL_STATS["max_workers"],
                                     int(workers))


def record_pool_task(outcome: str):
    """``outcome``: ``ok`` / ``failed`` / ``timeout``."""
    _POOL_STATS["tasks"] += 1
    if outcome == "failed":
        _POOL_STATS["task_failures"] += 1
    elif outcome == "timeout":
        _POOL_STATS["task_timeouts"] += 1


def record_pool_respawn():
    _POOL_STATS["worker_respawns"] += 1


def record_pool_worker_compiles(gcc_runs: int, native_hits: int):
    _POOL_STATS["worker_gcc_runs"] += int(gcc_runs)
    _POOL_STATS["worker_native_hits"] += int(native_hits)


def record_pool_time(seconds: float):
    _POOL_STATS["measure_time_s"] += seconds


def pool_stats() -> Dict[str, float]:
    """Cumulative parallel-measurement-pool counters for this process."""
    return dict(_POOL_STATS)


def reset_pool_stats():
    for k in _POOL_STATS:
        if k == "backend":
            _POOL_STATS[k] = ""
        else:
            _POOL_STATS[k] = 0.0 if k.endswith("_s") else 0


# ---------------------------------------------------------------------------
# Serving-runtime counters (see repro.serving and docs/SERVING.md):
# admission, batching, worker-pool outcomes, latency, per-tenant usage.
# ---------------------------------------------------------------------------

_SERVING_STATS = {
    "submitted": 0,         # requests offered to Server.submit
    "admitted": 0,          # ... accepted into a bucket queue
    "rejected_quota": 0,    # ... refused: tenant over its in-flight quota
    "rejected_queue": 0,    # ... refused: bounded queue full (backpressure)
    "completed": 0,         # responses with status "ok"
    "failed": 0,            # responses with status "failed" (incl. crashes)
    "timed_out": 0,         # responses with status "timeout"
    "batches": 0,           # batched executions dispatched
    "batched_requests": 0,  # requests carried by those batches
    "worker_respawns": 0,   # serving workers replaced after crash/hang
    "queue_depth_peak": 0,  # largest total queued-request count seen
    "pad_elements": 0,      # padding elements added by ragged pad batching
}

#: batch size -> number of batches of that size
_SERVING_BATCH_HIST: Dict[int, int] = {}

#: bounded reservoir of request latencies (seconds, admission->response)
_SERVING_LATENCIES: List[float] = []
_SERVING_LATENCY_CAP = 4096

#: tenant -> {"submitted": n, "completed": n, "rejected": n, "failed": n}
_SERVING_TENANTS: Dict[str, Dict[str, int]] = {}


def _tenant_row(tenant: str) -> Dict[str, int]:
    row = _SERVING_TENANTS.get(tenant)
    if row is None:
        row = _SERVING_TENANTS[tenant] = {
            "submitted": 0, "completed": 0, "rejected": 0, "failed": 0}
    return row


def record_serving_submit(tenant: str, outcome: str, n: int = 1):
    """Account ``n`` same-outcome admission decisions; ``outcome`` is
    ``admitted`` / ``rejected_quota`` / ``rejected_queue``. The count
    parameter lets the server's wave-submission path record a whole
    batch of decisions in one call."""
    _SERVING_STATS["submitted"] += n
    _SERVING_STATS[outcome] += n
    row = _tenant_row(tenant)
    row["submitted"] += n
    if outcome != "admitted":
        row["rejected"] += n


_RESPONSE_KEY = {"ok": "completed", "failed": "failed",
                 "timeout": "timed_out"}


def record_serving_response(tenant: str, status: str, latency_s: float):
    """Account one terminal response; ``status`` is ``ok`` / ``failed``
    / ``timeout``."""
    _SERVING_STATS[_RESPONSE_KEY[status]] += 1
    row = _tenant_row(tenant)
    row["completed" if status == "ok" else "failed"] += 1
    if len(_SERVING_LATENCIES) < _SERVING_LATENCY_CAP:
        _SERVING_LATENCIES.append(float(latency_s))


def record_serving_responses(tenant: str, status: str,
                             latencies: List[float]):
    """Bulk form of :func:`record_serving_response` for one batch whose
    requests share a tenant and terminal status."""
    n = len(latencies)
    _SERVING_STATS[_RESPONSE_KEY[status]] += n
    row = _tenant_row(tenant)
    row["completed" if status == "ok" else "failed"] += n
    room = _SERVING_LATENCY_CAP - len(_SERVING_LATENCIES)
    if room > 0:
        _SERVING_LATENCIES.extend(float(x) for x in latencies[:room])


def record_serving_batch(size: int, pad_elements: int = 0):
    _SERVING_STATS["batches"] += 1
    _SERVING_STATS["batched_requests"] += int(size)
    _SERVING_STATS["pad_elements"] += int(pad_elements)
    _SERVING_BATCH_HIST[int(size)] = \
        _SERVING_BATCH_HIST.get(int(size), 0) + 1


def record_serving_queue_depth(depth: int):
    _SERVING_STATS["queue_depth_peak"] = max(
        _SERVING_STATS["queue_depth_peak"], int(depth))


def record_serving_respawn():
    _SERVING_STATS["worker_respawns"] += 1


def _percentile(samples: List[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    idx = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[idx]


def serving_stats() -> Dict[str, object]:
    """Cumulative serving-runtime counters for this process: admission
    and terminal-response counts, the batch-size histogram, p50/p99
    request latency (seconds, over a bounded reservoir) and per-tenant
    usage rows. Follows the other ``*_stats()`` conventions in this
    module (plain dict snapshot; reset via ``reset_serving_stats``)."""
    out: Dict[str, object] = dict(_SERVING_STATS)
    out["batch_size_hist"] = dict(sorted(_SERVING_BATCH_HIST.items()))
    out["latency_p50_s"] = _percentile(_SERVING_LATENCIES, 0.50)
    out["latency_p99_s"] = _percentile(_SERVING_LATENCIES, 0.99)
    out["latency_samples"] = len(_SERVING_LATENCIES)
    out["per_tenant"] = {t: dict(r) for t, r in
                         sorted(_SERVING_TENANTS.items())}
    return out


def reset_serving_stats():
    for k in _SERVING_STATS:
        _SERVING_STATS[k] = 0
    _SERVING_BATCH_HIST.clear()
    _SERVING_LATENCIES.clear()
    _SERVING_TENANTS.clear()


class MetricsCollector:
    """Counts events reported by the interpreter / simulated device."""

    def __init__(self, l2_capacity: int = 4 * 1024 * 1024,
                 count_local: bool = False,
                 capacity_bytes: Optional[int] = None):
        #: when set, allocations beyond this raise SimulatedOOM
        self.capacity_bytes = capacity_bytes
        self.kernels = 0
        self.kernel_names: List[str] = []
        self.l2_bytes = 0
        self.dram_bytes = 0
        self.flops = 0
        self.current_bytes = 0
        self.peak_bytes = 0
        self.count_local = count_local
        self._l2_lines = max(1, l2_capacity // LINE)
        self._l2: "OrderedDict[tuple, bool]" = OrderedDict()
        self._last_sector: Dict[tuple, tuple] = {}
        self._mtypes: Dict[int, MemType] = {}

    # -- kernels -----------------------------------------------------------
    def on_kernel(self, name: str):
        self.kernels += 1
        self.kernel_names.append(name)

    # -- memory ------------------------------------------------------------
    def _counts(self, buf) -> bool:
        mt = self._mtypes.get(id(buf))
        if mt is None:
            return True  # parameters default to global memory
        if self.count_local:
            return True
        return mt.is_global

    def on_alloc(self, name: str, buf: np.ndarray, mtype: MemType):
        self._mtypes[id(buf)] = mtype
        if mtype.is_global:
            self.current_bytes += buf.nbytes
            self.peak_bytes = max(self.peak_bytes, self.current_bytes)
            if self.capacity_bytes is not None and \
                    self.current_bytes > self.capacity_bytes:
                raise SimulatedOOM(
                    f"allocating {name!r} exceeds device capacity",
                    requested=self.current_bytes,
                    capacity=self.capacity_bytes)

    def on_free(self, name: str, buf: np.ndarray, mtype: MemType):
        if mtype.is_global:
            self.current_bytes -= buf.nbytes
        self._mtypes.pop(id(buf), None)

    def register_param(self, buf: np.ndarray, mtype: MemType = MemType.CPU):
        """Count an input/output buffer toward the footprint."""
        self._mtypes[id(buf)] = mtype
        if mtype.is_global:
            self.current_bytes += buf.nbytes
            self.peak_bytes = max(self.peak_bytes, self.current_bytes)

    def _touch(self, buf: np.ndarray, idx: tuple):
        if not self._counts(buf):
            return
        if idx:
            off = int(sum(int(i) * s for i, s in zip(idx, buf.strides)))
        else:
            off = 0
        sector = (id(buf), off // SECTOR)
        if self._last_sector.get(id(buf)) != sector:
            self._last_sector[id(buf)] = sector
            self.l2_bytes += SECTOR
            line = (id(buf), off // LINE)
            hit = self._l2.pop(line, None)
            if hit is None:
                self.dram_bytes += LINE
                if len(self._l2) >= self._l2_lines:
                    self._l2.popitem(last=False)
            self._l2[line] = True

    def on_read(self, name: str, buf, idx):
        self._touch(buf, idx)

    def on_write(self, name: str, buf, idx):
        self._touch(buf, idx)

    def on_bulk_read(self, buf: np.ndarray):
        """A whole-tensor read by a library kernel."""
        if self._counts(buf):
            self.l2_bytes += buf.nbytes
            self.dram_bytes += buf.nbytes  # streaming access

    def on_bulk_write(self, buf: np.ndarray):
        if self._counts(buf):
            self.l2_bytes += buf.nbytes
            self.dram_bytes += buf.nbytes

    # -- compute -------------------------------------------------------------
    def on_flop(self, n: int = 1):
        self.flops += n

    # -- reporting ------------------------------------------------------------
    def as_dict(self) -> Dict[str, int]:
        return {
            "kernels": self.kernels,
            "l2_bytes": self.l2_bytes,
            "dram_bytes": self.dram_bytes,
            "flops": self.flops,
            "peak_bytes": self.peak_bytes,
        }

    def __repr__(self):  # pragma: no cover
        d = self.as_dict()
        return "Metrics(" + ", ".join(f"{k}={v}" for k, v in d.items()) \
            + ")"


# ---------------------------------------------------------------------------
# Static peak-footprint analysis (fast OOM checks for Fig. 16(b) / 18)
# ---------------------------------------------------------------------------


def static_peak_bytes(func: Func, scalar_env: Dict[str, int],
                      param_bytes: int = 0) -> int:
    """Peak bytes of stack-scoped tensor storage, computed without running
    the program.

    Stack scoping makes this exact: the live set at any program point is
    the chain of enclosing VarDefs, so ``peak = max over tree paths of the
    sum of VarDef sizes``. Shapes that depend on loop iterators are
    evaluated at their upper bound. ``param_bytes`` adds caller-allocated
    input/output storage.
    """
    from ..analysis import BoundsCtx, tightest_bounds
    from .interpreter import Interpreter

    interp = Interpreter()

    def eval_dim(e: Expr, ctx: BoundsCtx) -> int:
        try:
            return int(interp.eval_expr(e, dict(scalar_env)))
        except Exception:
            pass
        _lo, up = tightest_bounds(e, ctx, allowed_vars=set(scalar_env))
        if up is None:
            raise ValueError(
                f"cannot bound tensor extent {e!r} statically")
        return int(interp.eval_expr(up, dict(scalar_env)))

    def walk(s: Stmt, ctx: BoundsCtx) -> int:
        if isinstance(s, VarDef):
            size = s.dtype.size_bytes
            for d in s.shape:
                size *= max(0, eval_dim(d, ctx))
            if s.atype is not AccessType.CACHE:
                size = 0  # parameters are accounted via param_bytes
            return size + walk(s.body, ctx)
        if isinstance(s, For):
            inner_ctx = ctx.with_loop(s.iter_var, s.begin, s.end)
            return walk(s.body, inner_ctx)
        peak = 0
        for c in s.children_stmts():
            peak = max(peak, walk(c, ctx))
        return peak

    return param_bytes + walk(func.body, BoundsCtx())


# ---------------------------------------------------------------------------
# Modeled execution time
# ---------------------------------------------------------------------------


class DeviceModel:
    """An analytical device: launch overhead + bandwidth + throughput.

    ``time = kernels * launch_overhead
             + max(dram_bytes / dram_bw, l2_bytes / l2_bw,
                   flops / flops_per_s)``

    The defaults below approximate the paper's testbed (V100-PCIE 32GB and
    a dual Xeon E5-2670v3); see EXPERIMENTS.md for how modeled time is
    used next to measured wall-clock.
    """

    def __init__(self, name: str, launch_overhead_s: float,
                 dram_bw: float, l2_bw: float, flops_per_s: float,
                 capacity_bytes: int):
        self.name = name
        self.launch_overhead_s = launch_overhead_s
        self.dram_bw = dram_bw
        self.l2_bw = l2_bw
        self.flops_per_s = flops_per_s
        self.capacity_bytes = capacity_bytes

    def time(self, metrics: MetricsCollector) -> float:
        m = metrics.as_dict()
        stream = max(m["dram_bytes"] / self.dram_bw,
                     m["l2_bytes"] / self.l2_bw,
                     m["flops"] / self.flops_per_s)
        return m["kernels"] * self.launch_overhead_s + stream

    def check_capacity(self, peak_bytes: int):
        if peak_bytes > self.capacity_bytes:
            raise SimulatedOOM(
                f"{self.name}: peak footprint {peak_bytes / 2**30:.2f} GiB "
                f"exceeds capacity "
                f"{self.capacity_bytes / 2**30:.2f} GiB",
                requested=peak_bytes, capacity=self.capacity_bytes)


V100 = DeviceModel("V100-PCIE-32GB",
                   launch_overhead_s=5e-6,
                   dram_bw=900e9,
                   l2_bw=2500e9,
                   flops_per_s=14e12,
                   capacity_bytes=32 * 2**30)

XEON = DeviceModel("Xeon-E5-2670v3-x2",
                   launch_overhead_s=2e-7,
                   dram_bw=68e9,
                   l2_bw=400e9,
                   flops_per_s=1.7e12,
                   capacity_bytes=256 * 2**30)

"""Driver: binds NumPy arrays to IR parameters and runs a backend.

``build(program_or_func, target=..., backend=...)`` returns an
:class:`Executable`. Calling it:

1. binds positional NumPy arrays to the function's tensor parameters that
   require caller data (``input`` / ``inout``);
2. infers by-value scalar parameters (symbolic shape variables) by unifying
   declared shapes with the actual array shapes — explicit keyword arguments
   override / supplement inference;
3. allocates ``output`` parameters and returned tensors;
4. runs the backend and returns the outputs (a single array or a tuple).
"""

from __future__ import annotations

import os
import threading
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..backend import (available_backends, backend_cache_tag, get_backend,
                       register_backend)
from ..errors import BackendError, InvalidProgram
from ..ir import (AccessType, Const, Expr, Func, IntConst, Var, VarDef,
                  defined_tensors, struct_hash)
from ..frontend.staging import Program

__all__ = ["Executable", "bind_cache_stats", "build", "build_cache_stats",
           "clear_build_cache", "register_backend",
           "reset_bind_cache_stats"]

#: content-addressed build cache: (IR hash, backend, optimize, target,
#: opts) -> Executable. Executables are stateless between calls, so a
#: cached one can be handed to any number of callers.
_BUILD_CACHE: Dict[tuple, "Executable"] = {}
_BUILD_CACHE_LIMIT = 1024
_BUILD_STATS = {"hits": 0, "misses": 0, "uncacheable": 0}


def clear_build_cache():
    """Drop all cached Executables; the next build() compiles cold."""
    _BUILD_CACHE.clear()


def build_cache_stats() -> Dict[str, int]:
    """Hit/miss counters of the content-addressed build cache."""
    return dict(_BUILD_STATS)


#: process-wide binding-plan counters (every Executable's plans folded
#: together); surfaced as compile_cache_stats()["bind"]
_BIND_STATS = {"plan_hits": 0, "plan_misses": 0, "plan_uncacheable": 0}


def bind_cache_stats() -> Dict[str, int]:
    """Hit/miss counters of the per-shape-signature binding-plan memo
    (see :meth:`Executable._bind`)."""
    return dict(_BIND_STATS)


def reset_bind_cache_stats():
    for k in _BIND_STATS:
        _BIND_STATS[k] = 0


class _BindPlan:
    """A validated binding recipe for one exact call signature.

    Everything ``_bind`` derives from the *shapes* of a call — inferred
    shape scalars, per-parameter target dtypes, output allocation shapes
    — is a pure function of the signature key, so repeat calls with the
    same key replay the recipe and skip re-validation and dim inference
    entirely. Only genuinely per-call properties (contiguity, the need
    to cast this particular array) are still checked on the hit path.
    """

    __slots__ = ("params", "scalars", "outs")

    def __init__(self, params, scalars, outs):
        #: [(name, target numpy dtype)] in data_params order
        self.params = params
        #: name -> int for every scalar/shape variable, fully inferred
        self.scalars = scalars
        #: [(name, shape tuple, numpy dtype)] the driver must allocate
        self.outs = outs


def _target_key(target):
    if target is None:
        return None
    key = getattr(target, "cache_key", None)
    if callable(key):
        return key()
    return repr(target)


def _build_cache_key(func, backend, optimize, target, opts):
    """The cache key, or None when some option defies content hashing.

    The backend component is its registry ``cache_tag``
    (``name@caps_version``), so bumping a Backend's declared version
    invalidates cached Executables built under the old declarations.
    """
    items = []
    for k in sorted(opts):
        v = opts[k]
        if not isinstance(v, (str, int, float, bool, type(None))):
            return None  # stateful opts (metrics sinks, devices): no cache
        items.append((k, v))
    return (struct_hash(func), backend_cache_tag(backend), bool(optimize),
            _target_key(target), tuple(items))


class Executable:
    """A compiled DSL function, callable on NumPy arrays.

    **Concurrency contract.** ``__call__`` is safe to invoke from many
    threads at once on the same Executable: every call binds a fresh
    environment (freshly-allocated outputs, per-call converted inputs)
    and the built-in runnable backends (``pycode``, ``npblock``, ``c``,
    ``interp``, ``gpusim``) keep no per-call mutable state in their run
    functions — the ``c`` backend additionally releases the GIL for the
    duration of the native call. Two caveats:

    - an Executable built with a stateful option (e.g. a ``metrics``
      sink for ``interp``/``gpusim``) shares that sink across calls;
      concurrent callers race on its counters unless they synchronize
      or build one Executable per thread;
    - input arrays are read (and ``inout`` parameters written) without
      locking — callers must not mutate an array another thread is
      concurrently passing to the same call.

    The per-signature binding-plan memo below is guarded by a lock on
    the store side and relies on GIL-atomic dict reads on the hit path,
    so concurrent first calls at a new signature are safe (both compute
    the plan; one wins the store).
    """

    #: distinct call signatures memoized per Executable before the plan
    #: cache resets (mirrors _BUILD_CACHE_LIMIT's wholesale clearing)
    _PLAN_LIMIT = 64

    def __init__(self, func: Func, run_fn, backend: str,
                 compile_times: Optional[Dict[str, float]] = None):
        self.func = func
        self.backend = backend
        self._run = run_fn
        #: per-phase compile wall-clock seconds: one entry per pipeline
        #: pass (flatten/simplify/auto_parallelize/...), plus codegen
        #: and, when gated, verify
        self.compile_times: Dict[str, float] = dict(compile_times or {})
        self._dim_interp = None
        self._defs = defined_tensors(func.body)
        # Parameters the caller must provide data for, in order.
        self.data_params: List[str] = [
            p for p in func.params
            if self._defs[p].atype in (AccessType.INPUT, AccessType.INOUT)
        ]
        # Parameters the driver allocates (output) or hands back (inout).
        self.out_params: List[str] = [
            p for p in func.params
            if self._defs[p].atype in (AccessType.OUTPUT, AccessType.INOUT)
        ]
        self.returns: List[str] = list(
            dict.fromkeys(self.out_params + list(func.returns)))
        #: signature key -> _BindPlan (see _bind)
        self._plans: Dict[tuple, _BindPlan] = {}
        self._plans_lock = threading.Lock()

    # -- shape/scalars inference ------------------------------------------
    @staticmethod
    def _plan_key(converted: List[np.ndarray], scalars
                  ) -> Optional[tuple]:
        """The signature a binding plan is memoized under, or None for
        calls whose scalars defy hashing (then every call re-validates).
        """
        try:
            return (tuple((a.shape, a.dtype.str) for a in converted),
                    tuple(sorted((k, int(v)) for k, v in scalars.items())))
        except (TypeError, ValueError):
            return None

    def _bind_from_plan(self, plan: _BindPlan,
                        converted: List[np.ndarray]) -> Dict[str, object]:
        env: Dict[str, object] = {}
        for (name, np_dt), arr in zip(plan.params, converted):
            if arr.dtype != np_dt:
                arr = arr.astype(np_dt)
            if arr.ndim and not arr.flags["C_CONTIGUOUS"]:
                arr = np.ascontiguousarray(arr)
            env[name] = arr
        env.update(plan.scalars)
        for name, shape, np_dt in plan.outs:
            env[name] = np.zeros(shape, dtype=np_dt)
        return env

    def _bind(self, arrays, scalars) -> Dict[str, object]:
        """Bind a call to an environment, via the per-signature plan memo.

        The first call at a given (shapes, dtypes, scalars) signature
        runs the full validation/inference path and records a
        :class:`_BindPlan`; repeat calls replay it.
        """
        converted = [np.asarray(a) for a in arrays]
        key = None
        if len(converted) == len(self.data_params):
            key = self._plan_key(converted, scalars)
            if key is not None:
                plan = self._plans.get(key)
                if plan is not None:
                    _BIND_STATS["plan_hits"] += 1
                    return self._bind_from_plan(plan, converted)
                _BIND_STATS["plan_misses"] += 1
            else:
                _BIND_STATS["plan_uncacheable"] += 1
        env, plan = self._bind_slow(converted, scalars)
        if key is not None:
            with self._plans_lock:
                if len(self._plans) >= self._PLAN_LIMIT:
                    self._plans.clear()
                self._plans[key] = plan
        return env

    def _bind_slow(self, converted: List[np.ndarray], scalars
                   ) -> Tuple[Dict[str, object], _BindPlan]:
        arrays = converted
        if len(arrays) != len(self.data_params):
            raise InvalidProgram(
                f"{self.func.name} expects {len(self.data_params)} arrays "
                f"({', '.join(self.data_params)}), got {len(arrays)}")
        env: Dict[str, object] = {}
        sc: Dict[str, int] = {
            k: int(v)
            for k, v in scalars.items() if k in self.func.scalar_params
        }
        extra = set(scalars) - set(sc)
        if extra:
            raise InvalidProgram(f"unknown scalar parameters: {sorted(extra)}")
        # Unify declared shapes against actual shapes (arrays were
        # converted to ndarrays exactly once, in _bind).
        for name, arr in zip(self.data_params, arrays):
            vd = self._defs[name]
            if arr.ndim != vd.ndim:
                raise InvalidProgram(
                    f"parameter {name!r} expects {vd.ndim}-D {vd.dtype} "
                    f"data of shape ({self._shape_str(vd)}), got "
                    f"{arr.ndim}-D {arr.dtype} of shape "
                    f"{tuple(arr.shape)}")
            for dim, (dim_expr, actual) in enumerate(zip(vd.shape,
                                                         arr.shape)):
                self._unify(dim_expr, int(actual), sc, name, dim)
        # Verify every dim and scalar is now known.
        for p in self.func.scalar_params:
            if p not in sc:
                raise InvalidProgram(
                    f"scalar parameter {p!r} cannot be inferred from input "
                    f"shapes; pass it as a keyword argument")
        # Check dims and convert dtypes. (np.ascontiguousarray promotes
        # 0-D arrays to 1-D, so contiguity is handled separately.)
        plan_params = []
        for name, arr in zip(self.data_params, arrays):
            vd = self._defs[name]
            plan_params.append((name, vd.dtype.to_numpy()))
            if arr.dtype != vd.dtype.to_numpy():
                arr = arr.astype(vd.dtype.to_numpy())
            if arr.ndim and not arr.flags["C_CONTIGUOUS"]:
                arr = np.ascontiguousarray(arr)
            expect = tuple(self._eval_dim(d, sc) for d in vd.shape)
            if tuple(arr.shape) != expect:
                raise InvalidProgram(
                    f"parameter {name!r} expects {vd.dtype} data of shape "
                    f"{expect} (declared ({self._shape_str(vd)})), got "
                    f"{arr.dtype} of shape {tuple(arr.shape)}")
            env[name] = arr
        env.update(sc)
        # Allocate outputs.
        plan_outs = []
        for name in self.returns:
            if name in env:
                continue
            vd = self._defs[name]
            shape = tuple(self._eval_dim(d, sc) for d in vd.shape)
            plan_outs.append((name, shape, vd.dtype.to_numpy()))
            env[name] = np.zeros(shape, dtype=vd.dtype.to_numpy())
        return env, _BindPlan(plan_params, dict(sc), plan_outs)

    @staticmethod
    def _shape_str(vd: VarDef) -> str:
        from ..ir.printer import print_expr

        return ", ".join(print_expr(d) for d in vd.shape)

    @staticmethod
    def _unify(dim_expr: Expr, actual: int, sc: Dict[str, int], pname: str,
               dim: int):
        if isinstance(dim_expr, Var):
            prev = sc.setdefault(dim_expr.name, actual)
            if prev != actual:
                raise InvalidProgram(
                    f"conflicting sizes for shape variable "
                    f"{dim_expr.name!r}: dimension {dim} of parameter "
                    f"{pname!r} is {actual}, but an earlier parameter "
                    f"implies {prev}")
        elif isinstance(dim_expr, IntConst):
            if dim_expr.val != actual:
                raise InvalidProgram(
                    f"parameter {pname!r}: dimension {dim} expects extent "
                    f"{dim_expr.val}, got {actual}")
        # Composite dimension expressions are checked after inference.

    def _eval_dim(self, d: Expr, sc: Dict[str, int]) -> int:
        if isinstance(d, Const):
            return int(d.val)
        if self._dim_interp is None:
            from .interpreter import Interpreter

            self._dim_interp = Interpreter()
        return int(self._dim_interp.eval_expr(d, dict(sc)))

    # -- running ----------------------------------------------------------
    def run_env(self, env: Dict[str, object]):
        """Run on a pre-built environment (advanced use, e.g. metrics)."""
        self._run(env)
        return env

    def __call__(self, *arrays, **scalars):
        env = self._bind(arrays, scalars)
        self._run(env)
        outs = [env[n] for n in self.returns]
        if not outs:
            return None
        if len(outs) == 1:
            return outs[0]
        return tuple(outs)

    @property
    def source(self) -> Optional[str]:
        """Generated backend source, if the backend produces source code."""
        return getattr(self._run, "__ft_source__", None)

    @property
    def compile_time_total(self) -> float:
        """Total compile wall-clock (0.0 for a cache-served Executable's
        second caller — compilation happened once, earlier)."""
        return sum(self.compile_times.values())


def _as_func(program_or_func) -> Func:
    if isinstance(program_or_func, Program):
        return program_or_func.func
    if isinstance(program_or_func, Func):
        return program_or_func
    raise TypeError(
        f"expected a Program or Func, got {type(program_or_func).__name__}")


def build(program_or_func,
          backend: str = "pycode",
          optimize: bool = False,
          target=None,
          verify: Optional[bool] = None,
          **opts) -> Executable:
    """Compile a staged program (or a raw Func) into an Executable.

    ``optimize=True`` runs the standard lowering pipeline and the rule-based
    auto-schedule for ``target`` before code generation (see
    ``repro.autosched``).

    ``verify=True`` runs the whole-program verifier (``repro.verify``) on
    the scheduled/lowered IR before code generation and raises
    :class:`~repro.errors.VerificationError` on any error-severity finding.
    The default (``None``) obeys the ``REPRO_VERIFY=1`` environment gate.
    """
    func = _as_func(program_or_func)
    want_verify = bool(verify) if verify is not None \
        else os.environ.get("REPRO_VERIFY", "") == "1"
    key = None
    if os.environ.get("REPRO_NO_BUILD_CACHE", "") != "1":
        # want_verify is part of the key: a cached unverified Executable
        # must not satisfy a verifying build (or vice versa).
        key = _build_cache_key(func, backend, optimize, target, opts)
        if key is not None:
            key = key + (want_verify,)
            hit = _BUILD_CACHE.get(key)
            if hit is not None:
                _BUILD_STATS["hits"] += 1
                return hit
            _BUILD_STATS["misses"] += 1
        else:
            _BUILD_STATS["uncacheable"] += 1
    times: Dict[str, float] = {}
    # The one authoritative compile path (shared with the verify CLI and
    # the auto-scheduler): a pass-manager Pipeline of standard lowering,
    # backend-declared legalization and codegen prep — with the schedule
    # rule passes in front when optimizing. Per-pass wall-clock lands in
    # ``times`` under each pass's name.
    from ..pipeline import compile_ir

    func = compile_ir(func, backend=backend, target=target,
                      optimize=optimize, times=times)
    if want_verify:
        from ..analysis.verify import verify as run_verifier

        t0 = time.perf_counter()
        run_verifier(func).raise_if_errors()
        times["verify"] = time.perf_counter() - t0
    b = get_backend(backend)
    if not b.runnable:
        raise BackendError(
            f"backend {b.name!r} is codegen-only (emits source but "
            f"cannot execute it here); runnable backends: "
            f"{available_backends()}")
    t0 = time.perf_counter()
    run_fn = b.build(func, target=target, **opts)
    times["codegen"] = time.perf_counter() - t0
    exe = Executable(func, run_fn, b.name, compile_times=times)
    if key is not None:
        if len(_BUILD_CACHE) >= _BUILD_CACHE_LIMIT:  # pragma: no cover
            _BUILD_CACHE.clear()
        _BUILD_CACHE[key] = exe
    return exe

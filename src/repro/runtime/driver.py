"""Driver: binds NumPy arrays to IR parameters and runs a backend.

``build(program_or_func, target=..., backend=...)`` returns an
:class:`Executable`. Calling it:

1. binds positional NumPy arrays to the function's tensor parameters that
   require caller data (``input`` / ``inout``);
2. infers by-value scalar parameters (symbolic shape variables) by unifying
   declared shapes with the actual array shapes — explicit keyword arguments
   override / supplement inference;
3. allocates ``output`` parameters and returned tensors;
4. runs the backend and returns the outputs (a single array or a tuple).
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional

import numpy as np

from ..backend import (available_backends, backend_cache_tag, get_backend,
                       register_backend)
from ..errors import BackendError, InvalidProgram
from ..ir import (AccessType, Const, Expr, Func, IntConst, Var, VarDef,
                  defined_tensors, struct_hash)
from ..frontend.staging import Program

__all__ = ["Executable", "build", "build_cache_stats", "clear_build_cache",
           "register_backend"]

#: content-addressed build cache: (IR hash, backend, optimize, target,
#: opts) -> Executable. Executables are stateless between calls, so a
#: cached one can be handed to any number of callers.
_BUILD_CACHE: Dict[tuple, "Executable"] = {}
_BUILD_CACHE_LIMIT = 1024
_BUILD_STATS = {"hits": 0, "misses": 0, "uncacheable": 0}


def clear_build_cache():
    """Drop all cached Executables; the next build() compiles cold."""
    _BUILD_CACHE.clear()


def build_cache_stats() -> Dict[str, int]:
    """Hit/miss counters of the content-addressed build cache."""
    return dict(_BUILD_STATS)


def _target_key(target):
    if target is None:
        return None
    key = getattr(target, "cache_key", None)
    if callable(key):
        return key()
    return repr(target)


def _build_cache_key(func, backend, optimize, target, opts):
    """The cache key, or None when some option defies content hashing.

    The backend component is its registry ``cache_tag``
    (``name@caps_version``), so bumping a Backend's declared version
    invalidates cached Executables built under the old declarations.
    """
    items = []
    for k in sorted(opts):
        v = opts[k]
        if not isinstance(v, (str, int, float, bool, type(None))):
            return None  # stateful opts (metrics sinks, devices): no cache
        items.append((k, v))
    return (struct_hash(func), backend_cache_tag(backend), bool(optimize),
            _target_key(target), tuple(items))


class Executable:
    """A compiled DSL function, callable on NumPy arrays."""

    def __init__(self, func: Func, run_fn, backend: str,
                 compile_times: Optional[Dict[str, float]] = None):
        self.func = func
        self.backend = backend
        self._run = run_fn
        #: per-phase compile wall-clock seconds: one entry per pipeline
        #: pass (flatten/simplify/auto_parallelize/...), plus codegen
        #: and, when gated, verify
        self.compile_times: Dict[str, float] = dict(compile_times or {})
        self._dim_interp = None
        self._defs = defined_tensors(func.body)
        # Parameters the caller must provide data for, in order.
        self.data_params: List[str] = [
            p for p in func.params
            if self._defs[p].atype in (AccessType.INPUT, AccessType.INOUT)
        ]
        # Parameters the driver allocates (output) or hands back (inout).
        self.out_params: List[str] = [
            p for p in func.params
            if self._defs[p].atype in (AccessType.OUTPUT, AccessType.INOUT)
        ]
        self.returns: List[str] = list(
            dict.fromkeys(self.out_params + list(func.returns)))

    # -- shape/scalars inference ------------------------------------------
    def _bind(self, arrays, scalars) -> Dict[str, object]:
        if len(arrays) != len(self.data_params):
            raise InvalidProgram(
                f"{self.func.name} expects {len(self.data_params)} arrays "
                f"({', '.join(self.data_params)}), got {len(arrays)}")
        env: Dict[str, object] = {}
        sc: Dict[str, int] = {
            k: int(v)
            for k, v in scalars.items() if k in self.func.scalar_params
        }
        extra = set(scalars) - set(sc)
        if extra:
            raise InvalidProgram(f"unknown scalar parameters: {sorted(extra)}")
        # Unify declared shapes against actual shapes (converting each
        # array exactly once; the checked arrays are reused below).
        converted: List[np.ndarray] = []
        for name, arr in zip(self.data_params, arrays):
            arr = np.asarray(arr)
            converted.append(arr)
            vd = self._defs[name]
            if arr.ndim != vd.ndim:
                raise InvalidProgram(
                    f"parameter {name!r} expects {vd.ndim}-D {vd.dtype} "
                    f"data of shape ({self._shape_str(vd)}), got "
                    f"{arr.ndim}-D {arr.dtype} of shape "
                    f"{tuple(arr.shape)}")
            for dim, (dim_expr, actual) in enumerate(zip(vd.shape,
                                                         arr.shape)):
                self._unify(dim_expr, int(actual), sc, name, dim)
        # Verify every dim and scalar is now known.
        for p in self.func.scalar_params:
            if p not in sc:
                raise InvalidProgram(
                    f"scalar parameter {p!r} cannot be inferred from input "
                    f"shapes; pass it as a keyword argument")
        # Check dims and convert dtypes. (np.ascontiguousarray promotes
        # 0-D arrays to 1-D, so contiguity is handled separately.)
        for name, arr in zip(self.data_params, converted):
            vd = self._defs[name]
            if arr.dtype != vd.dtype.to_numpy():
                arr = arr.astype(vd.dtype.to_numpy())
            if arr.ndim and not arr.flags["C_CONTIGUOUS"]:
                arr = np.ascontiguousarray(arr)
            expect = tuple(self._eval_dim(d, sc) for d in vd.shape)
            if tuple(arr.shape) != expect:
                raise InvalidProgram(
                    f"parameter {name!r} expects {vd.dtype} data of shape "
                    f"{expect} (declared ({self._shape_str(vd)})), got "
                    f"{arr.dtype} of shape {tuple(arr.shape)}")
            env[name] = arr
        env.update(sc)
        # Allocate outputs.
        for name in self.returns:
            if name in env:
                continue
            vd = self._defs[name]
            shape = tuple(self._eval_dim(d, sc) for d in vd.shape)
            env[name] = np.zeros(shape, dtype=vd.dtype.to_numpy())
        return env

    @staticmethod
    def _shape_str(vd: VarDef) -> str:
        from ..ir.printer import print_expr

        return ", ".join(print_expr(d) for d in vd.shape)

    @staticmethod
    def _unify(dim_expr: Expr, actual: int, sc: Dict[str, int], pname: str,
               dim: int):
        if isinstance(dim_expr, Var):
            prev = sc.setdefault(dim_expr.name, actual)
            if prev != actual:
                raise InvalidProgram(
                    f"conflicting sizes for shape variable "
                    f"{dim_expr.name!r}: dimension {dim} of parameter "
                    f"{pname!r} is {actual}, but an earlier parameter "
                    f"implies {prev}")
        elif isinstance(dim_expr, IntConst):
            if dim_expr.val != actual:
                raise InvalidProgram(
                    f"parameter {pname!r}: dimension {dim} expects extent "
                    f"{dim_expr.val}, got {actual}")
        # Composite dimension expressions are checked after inference.

    def _eval_dim(self, d: Expr, sc: Dict[str, int]) -> int:
        if isinstance(d, Const):
            return int(d.val)
        if self._dim_interp is None:
            from .interpreter import Interpreter

            self._dim_interp = Interpreter()
        return int(self._dim_interp.eval_expr(d, dict(sc)))

    # -- running ----------------------------------------------------------
    def run_env(self, env: Dict[str, object]):
        """Run on a pre-built environment (advanced use, e.g. metrics)."""
        self._run(env)
        return env

    def __call__(self, *arrays, **scalars):
        env = self._bind(arrays, scalars)
        self._run(env)
        outs = [env[n] for n in self.returns]
        if not outs:
            return None
        if len(outs) == 1:
            return outs[0]
        return tuple(outs)

    @property
    def source(self) -> Optional[str]:
        """Generated backend source, if the backend produces source code."""
        return getattr(self._run, "__ft_source__", None)

    @property
    def compile_time_total(self) -> float:
        """Total compile wall-clock (0.0 for a cache-served Executable's
        second caller — compilation happened once, earlier)."""
        return sum(self.compile_times.values())


def _as_func(program_or_func) -> Func:
    if isinstance(program_or_func, Program):
        return program_or_func.func
    if isinstance(program_or_func, Func):
        return program_or_func
    raise TypeError(
        f"expected a Program or Func, got {type(program_or_func).__name__}")


def build(program_or_func,
          backend: str = "pycode",
          optimize: bool = False,
          target=None,
          verify: Optional[bool] = None,
          **opts) -> Executable:
    """Compile a staged program (or a raw Func) into an Executable.

    ``optimize=True`` runs the standard lowering pipeline and the rule-based
    auto-schedule for ``target`` before code generation (see
    ``repro.autosched``).

    ``verify=True`` runs the whole-program verifier (``repro.verify``) on
    the scheduled/lowered IR before code generation and raises
    :class:`~repro.errors.VerificationError` on any error-severity finding.
    The default (``None``) obeys the ``REPRO_VERIFY=1`` environment gate.
    """
    func = _as_func(program_or_func)
    want_verify = bool(verify) if verify is not None \
        else os.environ.get("REPRO_VERIFY", "") == "1"
    key = None
    if os.environ.get("REPRO_NO_BUILD_CACHE", "") != "1":
        # want_verify is part of the key: a cached unverified Executable
        # must not satisfy a verifying build (or vice versa).
        key = _build_cache_key(func, backend, optimize, target, opts)
        if key is not None:
            key = key + (want_verify,)
            hit = _BUILD_CACHE.get(key)
            if hit is not None:
                _BUILD_STATS["hits"] += 1
                return hit
            _BUILD_STATS["misses"] += 1
        else:
            _BUILD_STATS["uncacheable"] += 1
    times: Dict[str, float] = {}
    # The one authoritative compile path (shared with the verify CLI and
    # the auto-scheduler): a pass-manager Pipeline of standard lowering,
    # backend-declared legalization and codegen prep — with the schedule
    # rule passes in front when optimizing. Per-pass wall-clock lands in
    # ``times`` under each pass's name.
    from ..pipeline import compile_ir

    func = compile_ir(func, backend=backend, target=target,
                      optimize=optimize, times=times)
    if want_verify:
        from ..analysis.verify import verify as run_verifier

        t0 = time.perf_counter()
        run_verifier(func).raise_if_errors()
        times["verify"] = time.perf_counter() - t0
    b = get_backend(backend)
    if not b.runnable:
        raise BackendError(
            f"backend {b.name!r} is codegen-only (emits source but "
            f"cannot execute it here); runnable backends: "
            f"{available_backends()}")
    t0 = time.perf_counter()
    run_fn = b.build(func, target=target, **opts)
    times["codegen"] = time.perf_counter() - t0
    exe = Executable(func, run_fn, b.name, compile_times=times)
    if key is not None:
        if len(_BUILD_CACHE) >= _BUILD_CACHE_LIMIT:  # pragma: no cover
            _BUILD_CACHE.clear()
        _BUILD_CACHE[key] = exe
    return exe

"""Runtime: drivers, interpreters, metric collectors, simulated devices."""

from .driver import (Executable, build, build_cache_stats, clear_build_cache,
                     register_backend)
from .interpreter import Interpreter

__all__ = ["Executable", "build", "build_cache_stats", "clear_build_cache",
           "register_backend", "Interpreter"]

"""Runtime: drivers, interpreters, metric collectors, simulated devices."""

from .driver import Executable, build, register_backend
from .interpreter import Interpreter

__all__ = ["Executable", "build", "register_backend", "Interpreter"]

"""A simulated GPU device.

The environment has no GPU (see DESIGN.md), so CUDA-targeted programs run
here: the device executes the IR with the reference interpreter while

- counting one **kernel launch** per outermost parallel region (a loop
  bound to ``cuda.blockIdx.*`` / ``cuda.threadIdx.*``, or a library call);
- modelling DRAM/L2 traffic and FLOPs through
  :class:`~repro.runtime.metrics.MetricsCollector`;
- enforcing the configured **memory capacity** (32 GB by default, the
  paper's V100), raising :class:`~repro.errors.SimulatedOOM` as the paper
  reports for Longformer baselines in Figures 16(b) and 18.

Numerical results are exact (it is the same interpreter); only timing is
modelled, via :class:`~repro.runtime.metrics.DeviceModel`.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..errors import SimulatedOOM
from ..ir import (For, Func, LibCall, MemType, Stmt, StmtSeq, VarDef)
from .interpreter import Interpreter
from .metrics import MetricsCollector, V100, static_peak_bytes


class _SuppressKernels:
    """Metrics proxy that drops kernel-launch events (in-kernel work)."""

    def __init__(self, inner):
        self._inner = inner

    def on_kernel(self, name: str):
        pass

    def __getattr__(self, name):
        return getattr(self._inner, name)


def _is_kernel_root(s: Stmt) -> bool:
    if isinstance(s, LibCall):
        return True
    return isinstance(s, For) and (s.property.parallel or "").startswith(
        "cuda")


class GPUSimulator:
    """Executes a Func as a sequence of simulated kernel launches."""

    def __init__(self, device=None, metrics: Optional[MetricsCollector] =
                 None, enforce_capacity: bool = True):
        self.device = device if device is not None else V100
        self.metrics = metrics if metrics is not None else \
            MetricsCollector()
        self.enforce_capacity = enforce_capacity
        self._interp = Interpreter(metrics=self.metrics)

    def run(self, func: Func, env: Dict[str, object]):
        """Execute ``func`` over NumPy buffers bound in ``env``."""
        if self.enforce_capacity:
            scalar_env = {k: v for k, v in env.items()
                          if not isinstance(v, np.ndarray)}
            param_bytes = sum(v.nbytes for v in env.values()
                              if isinstance(v, np.ndarray))
            try:
                peak = static_peak_bytes(func, scalar_env, param_bytes)
            except ValueError:
                # data-dependent extents: fall back to enforcing the
                # capacity allocation-by-allocation while running
                self.metrics.capacity_bytes = self.device.capacity_bytes
            else:
                self.device.check_capacity(peak)
                self.metrics.peak_bytes = max(self.metrics.peak_bytes,
                                              peak)
        for v in env.values():
            if isinstance(v, np.ndarray):
                self.metrics.register_param(v, MemType.GPU_GLOBAL)
        self._exec(func.body, env, in_kernel=False)
        return env

    def _exec(self, s: Stmt, env, in_kernel: bool):
        if not in_kernel and _is_kernel_root(s):
            self.metrics.on_kernel(self._kernel_name(s))
            if isinstance(s, LibCall):
                self._interp.exec_stmt(s, env)
                return
            # library calls nested inside this kernel are fused device
            # code, not separate launches: suppress their kernel events
            suppressed = _SuppressKernels(self.metrics)
            inner = Interpreter(metrics=suppressed)
            inner.exec_stmt(s, env)
            return
        if isinstance(s, StmtSeq):
            for c in s.stmts:
                self._exec(c, env, in_kernel)
            return
        if isinstance(s, VarDef):
            if s.name in env:
                self._exec(s.body, env, in_kernel)
                return
            shape = tuple(int(self._interp.eval_expr(d, env))
                          for d in s.shape)
            buf = np.empty(shape, dtype=s.dtype.to_numpy())
            if s.init_data is not None:
                buf[...] = s.init_data
            self.metrics.on_alloc(s.name, buf, MemType.GPU_GLOBAL
                                  if s.mtype.is_global else s.mtype)
            env[s.name] = buf
            try:
                self._exec(s.body, env, in_kernel)
            finally:
                self.metrics.on_free(s.name, buf, MemType.GPU_GLOBAL
                                     if s.mtype.is_global else s.mtype)
                del env[s.name]
            return
        if isinstance(s, For) and not in_kernel:
            # a sequential host-side loop around kernels
            begin = int(self._interp.eval_expr(s.begin, env))
            end = int(self._interp.eval_expr(s.end, env))
            for i in range(begin, end):
                env[s.iter_var] = i
                self._exec(s.body, env, in_kernel)
            env.pop(s.iter_var, None)
            return
        # anything else at host level: treat as one implicit kernel
        if not in_kernel:
            self.metrics.on_kernel(self._kernel_name(s))
        self._interp.exec_stmt(s, env)

    @staticmethod
    def _kernel_name(s: Stmt) -> str:
        if isinstance(s, LibCall):
            return f"lib.{s.kind}"
        if isinstance(s, For):
            return f"kernel@{s.sid}"
        return f"kernel@{s.sid}"

    def modeled_time(self) -> float:
        """Modeled execution time on this device (seconds)."""
        return self.device.time(self.metrics)

"""Implementations of vendor-library calls (the ``as_lib`` schedule).

On this reproduction's substrate the "vendor library" is NumPy's BLAS: a
:class:`~repro.ir.stmt.LibCall` executes as a single whole-tensor kernel.
Metrics account it as one kernel launch touching its operands once, which is
exactly how the paper's baselines behave per operator.
"""

from __future__ import annotations

import numpy as np

from ..errors import InvalidProgram


def run_libcall(stmt, env, metrics=None):
    """Execute a LibCall against an environment of NumPy buffers."""
    outs = [env[n] for n in stmt.outs]
    args = [env[n] for n in stmt.args]
    apply_libcall(stmt.kind, stmt.attrs, outs, args, metrics=metrics)


def apply_libcall(kind: str, attrs: dict, outs, args, metrics=None):
    """Execute a library routine on concrete buffers.

    Supported kinds:

    - ``matmul``: ``outs[0][...] (+)= op(args[0]) @ op(args[1])``;
      ``attrs`` may set ``accumulate``, ``trans_a``, ``trans_b`` (bools).
    - ``copy``: ``outs[0][...] = args[0]``.
    - ``fill``: ``outs[0][...] = attrs["value"]``.
    """
    if metrics is not None:
        metrics.on_kernel(f"lib.{kind}")
        for buf in args:
            metrics.on_bulk_read(buf)
        for buf in outs:
            metrics.on_bulk_write(buf)
    if kind == "matmul":
        a, b = args[0], args[1]
        if attrs.get("trans_a"):
            a = a.T
        if attrs.get("trans_b"):
            b = b.T
        c = outs[0]
        if metrics is not None:
            k = a.shape[-1]
            metrics.on_flop(2 * c.size * k)
        if attrs.get("accumulate"):
            c += a @ b
        else:
            c[...] = a @ b
        return
    if kind == "copy":
        outs[0][...] = args[0]
        return
    if kind == "fill":
        outs[0][...] = attrs["value"]
        return
    raise InvalidProgram(f"unknown library call {kind!r}")

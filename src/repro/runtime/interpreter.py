"""Reference interpreter for the IR.

Executes a :class:`~repro.ir.stmt.Func` directly over NumPy buffers, one
scalar operation at a time. It is deliberately simple — it is the executable
semantics of the IR, used as the golden reference against which the code
generators are tested, and as the paper's "Julia"-like *fine-grained but
unoptimised* execution mode in the benchmarks.

Optionally records access metrics through a :class:`repro.runtime.metrics`
collector.
"""

from __future__ import annotations

import math
import os
from typing import Dict, Optional

import numpy as np

from ..errors import InvalidProgram
from ..ir import expr as E
from ..ir import stmt as S


class OpCounts:
    """Dynamic operation counter — the cost model's ground-truth oracle.

    Counts every event the static analysis (``repro.analysis.cost``)
    claims to predict, using the *same* ``op_category`` classification,
    so static-vs-dynamic comparisons are apples to apples: on an exact
    estimate the two agree to the operation; on a sound one the static
    side is an upper bound. Enable globally with ``REPRO_COUNT_OPS=1``
    (checked per :class:`Interpreter`), or pass an instance explicitly
    as ``Interpreter(op_counts=...)``.
    """

    FIELDS = ("flops", "int_ops", "loads", "stores", "reduces",
              "lib_calls", "iters")

    __slots__ = FIELDS + ("_category",)

    def __init__(self):
        from ..analysis.cost.model import op_category

        self._category = op_category
        self.reset()

    def reset(self):
        for f in self.FIELDS:
            setattr(self, f, 0)

    def note(self, e: E.Expr):
        cat = self._category(e)
        if cat is not None:
            setattr(self, cat, getattr(self, cat) + 1)

    def as_dict(self) -> Dict[str, int]:
        return {f: getattr(self, f) for f in self.FIELDS}

    def __repr__(self):  # pragma: no cover - debugging aid
        body = ", ".join(f"{f}={getattr(self, f)}" for f in self.FIELDS
                         if getattr(self, f))
        return f"OpCounts({body})"


_GLOBAL_OPS: Optional[OpCounts] = None


def global_op_counts() -> OpCounts:
    """The process-wide counter used when ``REPRO_COUNT_OPS=1``."""
    global _GLOBAL_OPS
    if _GLOBAL_OPS is None:
        _GLOBAL_OPS = OpCounts()
    return _GLOBAL_OPS

_INTRIN_IMPL = {
    "abs": abs,
    "sqrt": math.sqrt,
    "exp": math.exp,
    "log": math.log,
    "sin": math.sin,
    "cos": math.cos,
    "tan": math.tan,
    "tanh": math.tanh,
    "sigmoid": lambda x: 1.0 / (1.0 + math.exp(-x)),
    "floor": math.floor,
    "ceil": math.ceil,
    "pow": lambda a, b: a**b,
    "erf": math.erf,
    "unbound_min": min,
    "unbound_max": max,
}


class Interpreter:
    """Evaluates IR over an environment of NumPy buffers and scalars."""

    def __init__(self, metrics=None, op_counts: Optional[OpCounts] = None):
        self.metrics = metrics
        if op_counts is None and os.environ.get("REPRO_COUNT_OPS") == "1":
            op_counts = global_op_counts()
        self.ops = op_counts

    # -- expressions ------------------------------------------------------
    def eval_expr(self, e: E.Expr, env: Dict[str, object]):
        ev = self.eval_expr
        if self.ops is not None:
            self.ops.note(e)
        if isinstance(e, E.Const):
            return e.val
        if isinstance(e, E.Var):
            try:
                return env[e.name]
            except KeyError:
                raise InvalidProgram(f"unbound scalar {e.name!r}") from None
        if isinstance(e, E.Load):
            buf = env[e.var]
            idx = tuple(int(ev(i, env)) for i in e.indices)
            if self.metrics is not None:
                self.metrics.on_read(e.var, buf, idx)
            if idx:
                return buf[idx]
            return buf[()] if isinstance(buf, np.ndarray) else buf
        if isinstance(e, E.Add):
            if self.metrics is not None and e.dtype.is_float:
                self.metrics.on_flop(1)
            return ev(e.lhs, env) + ev(e.rhs, env)
        if isinstance(e, E.Sub):
            if self.metrics is not None and e.dtype.is_float:
                self.metrics.on_flop(1)
            return ev(e.lhs, env) - ev(e.rhs, env)
        if isinstance(e, E.Mul):
            if self.metrics is not None and e.dtype.is_float:
                self.metrics.on_flop(1)
            return ev(e.lhs, env) * ev(e.rhs, env)
        if isinstance(e, E.RealDiv):
            if self.metrics is not None:
                self.metrics.on_flop(1)
            return ev(e.lhs, env) / ev(e.rhs, env)
        if isinstance(e, E.FloorDiv):
            return ev(e.lhs, env) // ev(e.rhs, env)
        if isinstance(e, E.Mod):
            return ev(e.lhs, env) % ev(e.rhs, env)
        if isinstance(e, E.Min):
            if self.metrics is not None and e.dtype.is_float:
                self.metrics.on_flop(1)
            return min(ev(e.lhs, env), ev(e.rhs, env))
        if isinstance(e, E.Max):
            if self.metrics is not None and e.dtype.is_float:
                self.metrics.on_flop(1)
            return max(ev(e.lhs, env), ev(e.rhs, env))
        if isinstance(e, E.LT):
            return ev(e.lhs, env) < ev(e.rhs, env)
        if isinstance(e, E.LE):
            return ev(e.lhs, env) <= ev(e.rhs, env)
        if isinstance(e, E.GT):
            return ev(e.lhs, env) > ev(e.rhs, env)
        if isinstance(e, E.GE):
            return ev(e.lhs, env) >= ev(e.rhs, env)
        if isinstance(e, E.EQ):
            return ev(e.lhs, env) == ev(e.rhs, env)
        if isinstance(e, E.NE):
            return ev(e.lhs, env) != ev(e.rhs, env)
        if isinstance(e, E.LAnd):
            return bool(ev(e.lhs, env)) and bool(ev(e.rhs, env))
        if isinstance(e, E.LOr):
            return bool(ev(e.lhs, env)) or bool(ev(e.rhs, env))
        if isinstance(e, E.LNot):
            return not bool(ev(e.operand, env))
        if isinstance(e, E.IfExpr):
            if ev(e.cond, env):
                return ev(e.then_case, env)
            return ev(e.else_case, env)
        if isinstance(e, E.Cast):
            v = ev(e.operand, env)
            if e.dtype.is_float:
                return float(v)
            if e.dtype.is_bool:
                return bool(v)
            return int(v)
        if isinstance(e, E.Intrinsic):
            if self.metrics is not None:
                self.metrics.on_flop(1)
            args = [ev(a, env) for a in e.args]
            return _INTRIN_IMPL[e.name](*args)
        raise InvalidProgram(
            f"cannot interpret {type(e).__name__}")  # pragma: no cover

    def _shape(self, vardef: S.VarDef, env) -> tuple:
        return tuple(int(self.eval_expr(d, env)) for d in vardef.shape)

    # -- statements ----------------------------------------------------------
    def exec_stmt(self, s: S.Stmt, env: Dict[str, object]):
        ex = self.exec_stmt
        if isinstance(s, S.StmtSeq):
            for c in s.stmts:
                ex(c, env)
            return
        if isinstance(s, S.VarDef):
            if s.name in env:  # a parameter, already bound by the driver
                ex(s.body, env)
                return
            shape = self._shape(s, env)
            buf = np.empty(shape, dtype=s.dtype.to_numpy())
            if s.init_data is not None:
                buf[...] = s.init_data
            if self.metrics is not None:
                self.metrics.on_alloc(s.name, buf, s.mtype)
            env[s.name] = buf
            try:
                ex(s.body, env)
            finally:
                if self.metrics is not None:
                    self.metrics.on_free(s.name, buf, s.mtype)
                del env[s.name]
            return
        if isinstance(s, S.For):
            begin = int(self.eval_expr(s.begin, env))
            end = int(self.eval_expr(s.end, env))
            if self.ops is not None:
                self.ops.iters += max(0, end - begin)
            body = s.body
            for i in range(begin, end):
                env[s.iter_var] = i
                ex(body, env)
            env.pop(s.iter_var, None)
            return
        if isinstance(s, S.If):
            if self.eval_expr(s.cond, env):
                ex(s.then_case, env)
            elif s.else_case is not None:
                ex(s.else_case, env)
            return
        if isinstance(s, S.Store):
            buf = env[s.var]
            idx = tuple(int(self.eval_expr(i, env)) for i in s.indices)
            val = self.eval_expr(s.expr, env)
            if self.ops is not None:
                self.ops.stores += 1
            if self.metrics is not None:
                self.metrics.on_write(s.var, buf, idx)
            buf[idx if idx else ()] = val
            return
        if isinstance(s, S.ReduceTo):
            buf = env[s.var]
            idx = tuple(int(self.eval_expr(i, env)) for i in s.indices)
            val = self.eval_expr(s.expr, env)
            key = idx if idx else ()
            if self.ops is not None:
                self.ops.reduces += 1
            if self.metrics is not None:
                self.metrics.on_read(s.var, buf, idx)
                self.metrics.on_write(s.var, buf, idx)
                self.metrics.on_flop(1)
            if s.op == "+":
                buf[key] += val
            elif s.op == "*":
                buf[key] *= val
            elif s.op == "min":
                buf[key] = min(buf[key], val)
            else:
                buf[key] = max(buf[key], val)
            return
        if isinstance(s, S.Assert):
            if not self.eval_expr(s.cond, env):
                raise AssertionError(f"IR assertion failed: {s.cond!r}")
            ex(s.body, env)
            return
        if isinstance(s, S.Eval):
            self.eval_expr(s.expr, env)
            return
        if isinstance(s, (S.Alloc, S.Free)):
            return
        if isinstance(s, S.LibCall):
            self._exec_libcall(s, env)
            return
        raise InvalidProgram(
            f"cannot interpret {type(s).__name__}")  # pragma: no cover

    def _exec_libcall(self, s: S.LibCall, env):
        from .libcalls import run_libcall

        if self.ops is not None:
            # the kernel's interior is vendor code: count the invocation
            # only, exactly like the static side
            self.ops.lib_calls += 1
        run_libcall(s, env, metrics=self.metrics)

    # -- entry point ----------------------------------------------------------
    def run(self, func: S.Func, env: Dict[str, object]):
        """Execute ``func.body`` in-place over ``env`` (name -> buffer)."""
        self.exec_stmt(func.body, env)
        return env

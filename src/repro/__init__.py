"""repro — a from-scratch Python reproduction of *FreeTensor: A Free-Form
DSL with Holistic Optimizations for Irregular Tensor Programs* (PLDI 2022).

Quickstart::

    import numpy as np
    import repro as ft

    @ft.transform
    def add(a: ft.Tensor[("n",), "f32", "input"],
            b: ft.Tensor[("n",), "f32", "input"]):
        y = ft.empty(a.shape(0), "f32")
        for i in range(a.shape(0)):
            y[i] = a[i] + b[i]
        return y

    print(add(np.ones(4, np.float32), np.ones(4, np.float32)))

See README.md for the architecture overview and DESIGN.md for how this
reproduction maps onto the paper.
"""

import sys as _sys

# Deeply-nested staged programs (partial evaluation of recursion, unrolled
# loops) exceed CPython's default recursion limit.
if _sys.getrecursionlimit() < 20000:
    _sys.setrecursionlimit(20000)

from .errors import (ADError, BackendError, DependenceViolation,
                     FreeTensorError, InvalidProgram, InvalidSchedule,
                     SimulatedOOM, StagingError, VerificationError)
from .frontend import (Program, Size, Tensor, TensorRef, capture, create_var,
                       empty, inline, label, ones, transform, zeros)
from .frontend.tensor import (ceil, cos, erf, exp, floor, log, sigmoid, sin,
                              sqrt, tan, tanh)
from .frontend.tensor import ft_abs as abs  # noqa: A001 - mirrors paper DSL
from .frontend.tensor import ft_max as max  # noqa: A001
from .frontend.tensor import ft_min as min  # noqa: A001

__version__ = "1.0.0"

__all__ = [
    "ADError", "BackendError", "DependenceViolation", "FreeTensorError",
    "InvalidProgram", "InvalidSchedule", "SimulatedOOM", "StagingError",
    "VerificationError", "verify",
    "Program", "Size", "Tensor", "TensorRef", "capture", "create_var",
    "empty", "inline", "label", "ones", "transform", "zeros",
    "ceil", "cos", "erf", "exp", "floor", "log", "sigmoid", "sin", "sqrt",
    "tan", "tanh", "abs", "max", "min",
    "analyze_cost", "perf_lint",
    "build_cache_stats", "clear_build_cache", "clear_compile_caches",
    "compile_cache_stats",
    "__version__",
]


def clear_compile_caches():
    """Reset every compile-path cache: the build cache, the per-pass
    pipeline cache, the dependence-feasibility memo and the Omega
    feasibility memo."""
    from .analysis import clear_analysis_cache
    from .pipeline import clear_pass_cache
    from .polyhedral import clear_feasibility_cache
    from .runtime.driver import clear_build_cache

    clear_build_cache()
    clear_pass_cache()
    clear_analysis_cache()
    clear_feasibility_cache()


def compile_cache_stats():
    """Hit/miss counters for all compile-path caches (see
    docs/PERFORMANCE.md). ``disk`` covers the persistent cross-process
    store and the compile daemon (``repro.cache``); the rest are
    in-process."""
    from .analysis import analysis_cache_stats
    from .pipeline import pass_cache_stats
    from .polyhedral import feasibility_stats
    from .runtime.driver import bind_cache_stats, build_cache_stats
    from .runtime.metrics import disk_cache_stats

    return {
        "build": build_cache_stats(),
        "bind": bind_cache_stats(),
        "passes": pass_cache_stats(),
        "deps": analysis_cache_stats(),
        "omega": feasibility_stats(),
        "disk": disk_cache_stats(),
    }


def __getattr__(name):
    # Heavier subsystems load lazily so `import repro` stays fast.
    if name in ("libop", "verify"):
        import importlib

        return importlib.import_module("." + name, __name__)
    if name == "Schedule":
        from .schedule.schedule import Schedule

        return Schedule
    if name in ("analyze_cost", "perf_lint"):
        from .analysis import cost

        return getattr(cost, name)
    if name in ("build_cache_stats", "clear_build_cache"):
        from .runtime import driver

        return getattr(driver, name)
    if name == "pipeline":
        import importlib

        return importlib.import_module(".pipeline", __name__)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")

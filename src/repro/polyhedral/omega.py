"""Exact integer feasibility of affine constraint systems (the Omega test).

This is the decision procedure at the bottom of the dependence analyser —
our stand-in for isl's emptiness check. It follows Pugh's Omega test:

1. equalities are eliminated by substitution, using the "mod-hat"
   change of variables when no coefficient is ±1;
2. inequalities are eliminated by Fourier–Motzkin: elimination is *exact*
   when every (lower, upper) pair has a unit coefficient; otherwise the
   *dark shadow* is tried first (sufficient) and the *real shadow* second
   (necessary), with exact *splintering* in the gap between them.

All variables are treated as existentially quantified integers, so
``is_feasible(cons)`` decides ``∃ x ∈ Z^n . cons(x)`` — unbounded symbolic
parameters (tensor extents) are handled for free.

Safety valve: pathological systems (never produced by the DSL in practice)
give up after a budget and return ``True`` ("may be feasible"), which is the
conservative answer for dependence analysis.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Tuple

from .linear import Affine, Infeasible, LinCon, fresh_var

#: give-up budget: constraint-count ceiling during elimination
_MAX_CONSTRAINTS = 4000
_MAX_DEPTH = 64

#: memo of canonicalized constraint systems -> feasibility verdict. Shared
#: across all queries (dependence direction queries over one program repeat
#: near-identical systems many times); keys are variable-renamed so fresh
#: existential names do not defeat the memo.
_MEMO: Dict[tuple, bool] = {}
_MEMO_LIMIT = 1 << 20

_STATS = {
    "memo_hits": 0,
    "memo_misses": 0,
    "gcd_rejects": 0,
    "interval_rejects": 0,
    "full_solves": 0,
}


def _memo_enabled() -> bool:
    return os.environ.get("REPRO_NO_OMEGA_MEMO", "") != "1"


def clear_feasibility_cache():
    """Drop the global feasibility memo (counters are kept)."""
    _MEMO.clear()


def feasibility_stats() -> Dict[str, int]:
    """Counters for the fast paths and the feasibility memo."""
    return dict(_STATS)


def is_feasible(constraints: Iterable[LinCon]) -> bool:
    """Whether an integer point satisfies all constraints."""
    try:
        # normalization + dedup: gcd-tightens every constraint and raises
        # Infeasible for trivially-false ground constraints and for
        # equalities whose coefficient gcd does not divide the constant
        # (the single-constraint GCD quick-reject).
        cons = _normalize(constraints)
    except Infeasible:
        _STATS["gcd_rejects"] += 1
        return False
    if not cons:
        return True
    # Constant-bounds disjointness: conflicting single-variable interval
    # bounds decide infeasibility without any elimination.
    if _interval_reject(cons):
        _STATS["interval_rejects"] += 1
        return False
    if not _memo_enabled():
        _STATS["full_solves"] += 1
        return _solve(cons, 0)
    key = _canonical_key(cons)
    hit = _MEMO.get(key)
    if hit is not None:
        _STATS["memo_hits"] += 1
        return hit
    _STATS["memo_misses"] += 1
    _STATS["full_solves"] += 1
    result = _solve(cons, 0)
    if len(_MEMO) >= _MEMO_LIMIT:  # pragma: no cover - backstop
        _MEMO.clear()
    _MEMO[key] = result
    return result


def _interval_reject(cons: List[LinCon]) -> bool:
    """True when single-variable constraints alone are contradictory.

    For every constraint mentioning exactly one variable, an integer
    interval bound for that variable is derived; an empty intersection
    proves infeasibility. This catches the common trivially-disjoint
    dependence pairs (accesses to constant, non-overlapping index ranges)
    at a fraction of the cost of Fourier-Motzkin elimination.
    """
    lo: Dict[str, int] = {}
    hi: Dict[str, int] = {}
    for con in cons:
        coeffs = con.expr.coeffs
        if len(coeffs) != 1:
            continue
        (v, c), = coeffs.items()
        k = con.expr.const
        if con.is_eq:
            # c*v + k == 0; after gcd-normalization |c| may still be > 1
            if k % c != 0:
                return True
            val = -k // c
            if val > hi.get(v, val) or val < lo.get(v, val):
                return True
            lo[v] = hi[v] = val
        elif c > 0:
            # c*v >= -k  =>  v >= ceil(-k / c)
            b = -(k // c)
            if v not in lo or b > lo[v]:
                lo[v] = b
        else:
            # |c|*v <= k  =>  v <= floor(k / |c|)
            b = k // -c
            if v not in hi or b < hi[v]:
                hi[v] = b
    for v, b in lo.items():
        if v in hi and b > hi[v]:
            return True
    return False


def _canonical_key(cons: List[LinCon]) -> tuple:
    """A hashable key with variables renamed by first appearance.

    Renaming is injective per system, so two systems sharing a key are
    genuinely identical up to variable names; instability in the renaming
    order can only cost memo hits, never correctness.
    """
    ren: Dict[str, int] = {}
    parts = []
    for c in cons:
        # first appearance in *construction* order (dict insertion order),
        # which mirrors the structure of the system rather than the
        # spelling of the names — renamed-but-identical systems share keys
        items = tuple(sorted((ren.setdefault(v, len(ren)), k)
                             for v, k in c.expr.coeffs.items()))
        parts.append((c.is_eq, c.expr.const, items))
    return tuple(parts)


def _normalize(constraints) -> List[LinCon]:
    out, seen = [], set()
    for c in constraints:
        c = c.normalized()
        if c is None:
            continue
        k = c.key()
        if k not in seen:
            seen.add(k)
            out.append(c)
    return out


def _solve(cons: List[LinCon], depth: int) -> bool:
    if depth > _MAX_DEPTH or len(cons) > _MAX_CONSTRAINTS:
        return True  # give up conservatively
    try:
        cons = _eliminate_equalities(cons)
    except Infeasible:
        return False
    if not cons:
        return True

    # Drop variables unbounded on one side (they can always be satisfied).
    while True:
        lowers, uppers = _bounds_index(cons)
        removable = [
            v for v in set(lowers) | set(uppers)
            if not lowers.get(v) or not uppers.get(v)
        ]
        if not removable:
            break
        drop = set(removable)
        cons = [c for c in cons if not (set(c.expr.vars()) & drop)]
        if not cons:
            return True

    variables = set()
    for c in cons:
        variables.update(c.expr.vars())
    if not variables:
        return True  # only trivially-true ground constraints remain

    x = _choose_var(cons, lowers, uppers)
    lows = lowers[x]
    ups = uppers[x]
    others = [c for c in cons if c.expr.coeff(x) == 0]

    exact = all(b == 1 or a == 1 for b, _ in lows for a, _ in ups)
    real, dark = [], []
    for b, beta in lows:  # b*x >= beta
        for a, alpha in ups:  # a*x <= alpha
            shadow = alpha * b - beta * a
            real.append(LinCon.ge0(shadow))
            dark.append(LinCon.ge0(shadow - Affine.constant((a - 1) *
                                                            (b - 1))))
    try:
        real_sys = _normalize(others + real)
    except Infeasible:
        return False
    if exact:
        return _solve(real_sys, depth + 1)
    try:
        dark_sys = _normalize(others + dark)
    except Infeasible:
        dark_sys = None
    if dark_sys is not None and _solve(dark_sys, depth + 1):
        return True
    if not _solve(real_sys, depth + 1):
        return False
    # Splinter the gap between the dark and real shadows (Pugh, 1991).
    a_max = max(a for a, _ in ups)
    for b, beta in lows:
        hi = (a_max * b - a_max - b) // a_max
        for i in range(hi + 1):
            eq = LinCon.eq0(Affine.var(x, b) - beta - Affine.constant(i))
            try:
                sys_i = _normalize(cons + [eq])
            except Infeasible:
                continue
            if _solve(sys_i, depth + 1):
                return True
    return False


# ---------------------------------------------------------------------------


def _bounds_index(cons):
    """Index constraints per variable as lower/upper bounds.

    For ``c*x + rest >= 0``: if c > 0 it is a lower bound ``c*x >= -rest``
    (recorded as ``(c, -rest)``); if c < 0 an upper bound
    ``|c|*x <= rest`` (recorded as ``(|c|, rest)``).
    """
    lowers: dict = {}
    uppers: dict = {}
    for c in cons:
        if c.is_eq:
            continue
        for v, k in c.expr.coeffs.items():
            rest = Affine(
                {u: w for u, w in c.expr.coeffs.items() if u != v},
                c.expr.const)
            if k > 0:
                lowers.setdefault(v, []).append((k, -rest))
            else:
                uppers.setdefault(v, []).append((-k, rest))
    return lowers, uppers


def _choose_var(cons, lowers, uppers) -> str:
    """Pick the elimination variable: prefer exact+cheap eliminations."""
    best, best_key = None, None
    for v in set(lowers) & set(uppers):
        lo, up = lowers[v], uppers[v]
        exact = all(b == 1 or a == 1 for b, _ in lo for a, _ in up)
        cost = len(lo) * len(up)
        key = (not exact, cost)
        if best_key is None or key < best_key:
            best, best_key = v, key
    assert best is not None
    return best


def _eliminate_equalities(cons: List[LinCon]) -> List[LinCon]:
    cons = list(cons)
    guard = 0
    while True:
        guard += 1
        if guard > 500:  # pathological; bail out conservatively feasible
            return [c for c in cons if not c.is_eq]
        eqs = [(i, c) for i, c in enumerate(cons)
               if c.is_eq and not c.expr.is_constant()]
        if not eqs:
            return _normalize(cons)
        chosen = None
        for i, c in eqs:
            unit = next(
                (v for v, k in c.expr.coeffs.items() if abs(k) == 1), None)
            if unit is not None:
                chosen = (i, c, unit)
                break
        if chosen is not None:
            i, c, unit = chosen
            e = c.expr
            k = e.coeffs[unit]
            rest = Affine({v: c2 for v, c2 in e.coeffs.items() if v != unit},
                          e.const)
            # k*x + rest = 0  =>  x = -rest  (k=1)  or  x = rest  (k=-1)
            value = rest * (-1) if k == 1 else rest
            cons.pop(i)
            cons = _normalize([c2.substitute(unit, value) for c2 in cons])
            continue
        # No equality has a unit coefficient: Pugh's mod-hat substitution
        # introduces a fresh variable whose coefficient is ±1 in a derived
        # equality; substituting it shrinks the original coefficients.
        _i, c = eqs[0]
        e = c.expr
        xk = min(e.coeffs, key=lambda v: abs(e.coeffs[v]))
        m = abs(e.coeffs[xk]) + 1
        sigma = fresh_var("s")
        hat = Affine(
            {v: _mod_hat(c2, m) for v, c2 in e.coeffs.items()},
            _mod_hat(e.const, m)) - Affine.var(sigma, m)
        cons.append(LinCon.eq0(hat))


def _mod_hat(a: int, m: int) -> int:
    """Symmetric remainder in ``(-m/2, m/2]``."""
    r = a % m
    if 2 * r > m:
        r -= m
    return r

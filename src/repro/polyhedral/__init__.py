"""A small exact Presburger engine (the reproduction's isl substitute).

Layers:

- ``linear``: integer affine expressions and constraints;
- ``omega``: exact integer feasibility (Pugh's Omega test);
- ``iset``: basic/union sets and maps with intersect/compose/project and
  lexicographic-order helpers;
- ``build``: translation from IR expressions (including ``//`` and ``%`` by
  constants) into affine form.
"""

from .build import AffineBuilder, NonAffine, try_affine
from .iset import (BasicMap, BasicSet, IMap, ISet, eq_constraints,
                   lex_gt_constraints)
from .linear import Affine, Infeasible, LinCon, fresh_var
from .omega import clear_feasibility_cache, feasibility_stats, is_feasible

__all__ = [
    "AffineBuilder", "NonAffine", "try_affine",
    "BasicMap", "BasicSet", "IMap", "ISet", "eq_constraints",
    "lex_gt_constraints",
    "Affine", "Infeasible", "LinCon", "fresh_var",
    "clear_feasibility_cache", "feasibility_stats", "is_feasible",
]

"""Integer affine expressions and constraints — the building blocks of the
Presburger engine (our substitute for isl, see DESIGN.md)."""

from __future__ import annotations

import itertools
from math import gcd
from typing import Dict, Iterable, Optional


class Affine:
    """An integer affine expression ``sum(coeffs[v] * v) + const``."""

    __slots__ = ("coeffs", "const")

    def __init__(self, coeffs: Optional[Dict[str, int]] = None,
                 const: int = 0):
        self.coeffs = {v: int(c) for v, c in (coeffs or {}).items()
                       if int(c) != 0}
        self.const = int(const)

    # -- constructors ------------------------------------------------------
    @staticmethod
    def var(name: str, coeff: int = 1) -> "Affine":
        return Affine({name: coeff})

    @staticmethod
    def constant(c: int) -> "Affine":
        return Affine({}, c)

    # -- algebra -------------------------------------------------------------
    def __add__(self, other):
        other = _as_affine(other)
        coeffs = dict(self.coeffs)
        for v, c in other.coeffs.items():
            coeffs[v] = coeffs.get(v, 0) + c
        return Affine(coeffs, self.const + other.const)

    def __sub__(self, other):
        return self + _as_affine(other) * -1

    def __mul__(self, k: int):
        if not isinstance(k, int):
            return NotImplemented
        return Affine({v: c * k for v, c in self.coeffs.items()},
                      self.const * k)

    __rmul__ = __mul__

    def __neg__(self):
        return self * -1

    # -- queries -------------------------------------------------------------
    def is_constant(self) -> bool:
        return not self.coeffs

    def coeff(self, v: str) -> int:
        return self.coeffs.get(v, 0)

    def vars(self):
        return self.coeffs.keys()

    def substitute(self, name: str, value: "Affine") -> "Affine":
        """Replace variable ``name`` with an affine expression."""
        c = self.coeffs.get(name, 0)
        if c == 0:
            return self
        rest = Affine({v: k for v, k in self.coeffs.items() if v != name},
                      self.const)
        return rest + value * c

    def rename(self, mapping: Dict[str, str]) -> "Affine":
        return Affine({mapping.get(v, v): c for v, c in self.coeffs.items()},
                      self.const)

    def content(self) -> int:
        """GCD of the variable coefficients (0 when constant)."""
        g = 0
        for c in self.coeffs.values():
            g = gcd(g, abs(c))
        return g

    # -- identity ---------------------------------------------------------
    def key(self):
        return (tuple(sorted(self.coeffs.items())), self.const)

    def __eq__(self, other):
        return isinstance(other, Affine) and self.key() == other.key()

    def __hash__(self):
        return hash(self.key())

    def __repr__(self):
        parts = []
        for v, c in sorted(self.coeffs.items()):
            if c == 1:
                parts.append(f"+{v}")
            elif c == -1:
                parts.append(f"-{v}")
            else:
                parts.append(f"{c:+d}{v}")
        parts.append(f"{self.const:+d}")
        out = "".join(parts)
        return out[1:] if out.startswith("+") else out


def _as_affine(x) -> Affine:
    if isinstance(x, Affine):
        return x
    if isinstance(x, int):
        return Affine.constant(x)
    raise TypeError(f"cannot convert {x!r} to Affine")


class LinCon:
    """A linear constraint: ``expr >= 0`` or ``expr == 0``."""

    __slots__ = ("expr", "is_eq")

    def __init__(self, expr: Affine, is_eq: bool = False):
        self.expr = expr
        self.is_eq = is_eq

    # -- constructors --------------------------------------------------------
    @staticmethod
    def ge0(expr: Affine) -> "LinCon":
        return LinCon(expr, False)

    @staticmethod
    def eq0(expr: Affine) -> "LinCon":
        return LinCon(expr, True)

    @staticmethod
    def ge(a, b) -> "LinCon":
        return LinCon(_as_affine(a) - _as_affine(b), False)

    @staticmethod
    def le(a, b) -> "LinCon":
        return LinCon(_as_affine(b) - _as_affine(a), False)

    @staticmethod
    def gt(a, b) -> "LinCon":
        return LinCon(_as_affine(a) - _as_affine(b) - 1, False)

    @staticmethod
    def lt(a, b) -> "LinCon":
        return LinCon(_as_affine(b) - _as_affine(a) - 1, False)

    @staticmethod
    def eq(a, b) -> "LinCon":
        return LinCon(_as_affine(a) - _as_affine(b), True)

    # -- helpers -----------------------------------------------------------
    def substitute(self, name: str, value: Affine) -> "LinCon":
        return LinCon(self.expr.substitute(name, value), self.is_eq)

    def rename(self, mapping: Dict[str, str]) -> "LinCon":
        return LinCon(self.expr.rename(mapping), self.is_eq)

    def normalized(self) -> Optional["LinCon"]:
        """Tighten by the coefficient gcd; None when trivially true.

        Raises :class:`Infeasible` for trivially false constraints.
        """
        e = self.expr
        if e.is_constant():
            ok = (e.const == 0) if self.is_eq else (e.const >= 0)
            if not ok:
                raise Infeasible
            return None
        g = e.content()
        if g <= 1:
            return self
        if self.is_eq:
            if e.const % g != 0:
                raise Infeasible
            return LinCon(
                Affine({v: c // g for v, c in e.coeffs.items()},
                       e.const // g), True)
        # g | all coeffs: sum >= -const  <=>  sum/g >= ceil(-const/g),
        # i.e. sum/g + floor(const/g) >= 0  (integer tightening)
        return LinCon(
            Affine({v: c // g for v, c in e.coeffs.items()},
                   e.const // g), False)

    def key(self):
        return (self.expr.key(), self.is_eq)

    def __eq__(self, other):
        return isinstance(other, LinCon) and self.key() == other.key()

    def __hash__(self):
        return hash(self.key())

    def __repr__(self):
        return f"{self.expr!r} {'==' if self.is_eq else '>='} 0"


class Infeasible(Exception):
    """Internal signal: a constraint system is trivially unsatisfiable."""


_fresh_counter = itertools.count()


def fresh_var(prefix: str = "q") -> str:
    """A globally fresh variable name for existentials."""
    return f"${prefix}{next(_fresh_counter)}"

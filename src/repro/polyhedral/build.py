"""Translate IR expressions into affine form for the Presburger engine.

``FloorDiv`` and ``Mod`` by positive constants are linearised exactly with
an existential quotient (this is what makes accesses like ``(j + 1) % 3``
analysable). Anything non-affine (data-dependent indices such as
``adj[i, j]``, products of iterators, float arithmetic) is reported to the
caller, which models it conservatively as an unconstrained value.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..ir import expr as E
from .linear import Affine, LinCon, fresh_var


class NonAffine(Exception):
    """The expression cannot be represented affinely."""


class AffineBuilder:
    """Builds Affine forms, accumulating existentials for div/mod."""

    def __init__(self, rename: Optional[Dict[str, str]] = None):
        self.rename = rename or {}
        self.extra_cons: List[LinCon] = []
        self.exists: List[str] = []

    def build(self, e: E.Expr) -> Affine:
        if isinstance(e, E.IntConst):
            return Affine.constant(e.val)
        if isinstance(e, E.BoolConst):
            return Affine.constant(int(e.val))
        if isinstance(e, E.Var):
            return Affine.var(self.rename.get(e.name, e.name))
        if isinstance(e, E.Add):
            return self.build(e.lhs) + self.build(e.rhs)
        if isinstance(e, E.Sub):
            return self.build(e.lhs) - self.build(e.rhs)
        if isinstance(e, E.Mul):
            if isinstance(e.lhs, E.IntConst):
                return self.build(e.rhs) * e.lhs.val
            if isinstance(e.rhs, E.IntConst):
                return self.build(e.lhs) * e.rhs.val
            raise NonAffine(e)
        if isinstance(e, E.FloorDiv):
            return self._quotient(e)[0]
        if isinstance(e, E.Mod):
            a, c, q = self._quotient(e)
            del a
            return c - q  # value = dividend - divisor*quotient
        if isinstance(e, E.Min):
            raise NonAffine(e)
        if isinstance(e, E.Max):
            raise NonAffine(e)
        raise NonAffine(e)

    def _quotient(self, e):
        """Linearise ``a // d`` / ``a % d`` for a positive constant d.

        Returns (quotient_affine, dividend_affine, divisor*quotient_affine).
        """
        if not isinstance(e.rhs, E.IntConst) or e.rhs.val <= 0:
            raise NonAffine(e)
        d = e.rhs.val
        a = self.build(e.lhs)
        q = fresh_var("q")
        self.exists.append(q)
        qa = Affine.var(q)
        # a - d*q in [0, d)
        self.extra_cons.append(LinCon.ge0(a - qa * d))
        self.extra_cons.append(LinCon.ge0(qa * d - a + (d - 1)))
        return qa, a, qa * d

    # -- conditions -----------------------------------------------------------
    def build_condition(self, e: E.Expr,
                        negate: bool = False) -> List[List[LinCon]]:
        """Translate a boolean expression to a disjunction of conjunctions.

        Raises :class:`NonAffine` for conditions the engine cannot model.
        """
        if isinstance(e, E.LNot):
            return self.build_condition(e.operand, not negate)
        if isinstance(e, E.LAnd) and not negate or \
                isinstance(e, E.LOr) and negate:
            left = self.build_condition(e.lhs, negate)
            right = self.build_condition(e.rhs, negate)
            return [l + r for l in left for r in right]
        if isinstance(e, E.LOr) and not negate or \
                isinstance(e, E.LAnd) and negate:
            return (self.build_condition(e.lhs, negate) +
                    self.build_condition(e.rhs, negate))
        if isinstance(e, E.CmpOp):
            a = self.build(e.lhs)
            b = self.build(e.rhs)
            cls = type(e)
            if negate:
                cls = {E.LT: E.GE, E.LE: E.GT, E.GT: E.LE, E.GE: E.LT,
                       E.EQ: E.NE, E.NE: E.EQ}[cls]
            if cls is E.LT:
                return [[LinCon.lt(a, b)]]
            if cls is E.LE:
                return [[LinCon.le(a, b)]]
            if cls is E.GT:
                return [[LinCon.gt(a, b)]]
            if cls is E.GE:
                return [[LinCon.ge(a, b)]]
            if cls is E.EQ:
                return [[LinCon.eq(a, b)]]
            # NE: a < b or a > b
            return [[LinCon.lt(a, b)], [LinCon.gt(a, b)]]
        if isinstance(e, E.BoolConst):
            val = e.val != negate
            if val:
                return [[]]
            # unsatisfiable conjunction
            return [[LinCon.ge0(Affine.constant(-1))]]
        raise NonAffine(e)


def try_affine(e: E.Expr, rename=None):
    """Affine form of ``e`` or None; returns (affine, extra_cons, exists)."""
    b = AffineBuilder(rename)
    try:
        a = b.build(e)
    except NonAffine:
        return None
    return a, b.extra_cons, b.exists

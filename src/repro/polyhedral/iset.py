"""Presburger sets and maps (unions of basic conjunctions).

A :class:`BasicSet` is a conjunction of affine constraints over named
dimensions, existential variables, and free symbolic parameters (any
variable mentioned in a constraint but not declared is a parameter).
A :class:`BasicMap` relates an input tuple to an output tuple the same way.
Unions (:class:`ISet`, :class:`IMap`) give the full Presburger algebra the
dependence analyser needs: intersect, compose, reverse, project, apply,
lexicographic ordering, and exact emptiness via the Omega test.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from .linear import Affine, LinCon, fresh_var
from .omega import is_feasible


def _rename_exists(cons, exists):
    """Freshen existential names so concatenated systems cannot clash."""
    mapping = {e: fresh_var("e") for e in exists}
    return ([c.rename(mapping) for c in cons],
            tuple(mapping[e] for e in exists))


class BasicSet:
    """A conjunction of constraints over named dimensions."""

    __slots__ = ("dims", "cons", "exists")

    def __init__(self, dims: Sequence[str], cons: Iterable[LinCon] = (),
                 exists: Sequence[str] = ()):
        self.dims = tuple(dims)
        self.cons = tuple(cons)
        self.exists = tuple(exists)

    def is_empty(self) -> bool:
        return not is_feasible(self.cons)

    def intersect(self, other: "BasicSet") -> "BasicSet":
        assert self.dims == other.dims, "dimension mismatch"
        oc, oe = _rename_exists(other.cons, other.exists)
        return BasicSet(self.dims, list(self.cons) + oc,
                        self.exists + oe)

    def project_out(self, names: Iterable[str]) -> "BasicSet":
        names = set(names)
        return BasicSet([d for d in self.dims if d not in names], self.cons,
                        self.exists + tuple(n for n in self.dims
                                            if n in names))

    def rename_dims(self, mapping: Dict[str, str]) -> "BasicSet":
        return BasicSet([mapping.get(d, d) for d in self.dims],
                        [c.rename(mapping) for c in self.cons], self.exists)

    def with_constraints(self, extra: Iterable[LinCon]) -> "BasicSet":
        return BasicSet(self.dims, list(self.cons) + list(extra),
                        self.exists)

    def __repr__(self):
        return (f"{{ [{', '.join(self.dims)}] : "
                f"{' and '.join(map(repr, self.cons))} }}")


class ISet:
    """A finite union of BasicSets over the same dimensions."""

    __slots__ = ("parts",)

    def __init__(self, parts: Iterable[BasicSet]):
        self.parts = tuple(parts)

    @staticmethod
    def universe(dims: Sequence[str]) -> "ISet":
        return ISet([BasicSet(dims)])

    @staticmethod
    def empty(dims: Sequence[str]) -> "ISet":
        return ISet([])

    def is_empty(self) -> bool:
        return all(p.is_empty() for p in self.parts)

    def intersect(self, other: "ISet") -> "ISet":
        return ISet([a.intersect(b) for a in self.parts
                     for b in other.parts])

    def union(self, other: "ISet") -> "ISet":
        return ISet(list(self.parts) + list(other.parts))

    def project_out(self, names) -> "ISet":
        return ISet([p.project_out(names) for p in self.parts])

    def __repr__(self):
        return " u ".join(map(repr, self.parts)) or "{}"


class BasicMap:
    """A conjunction of constraints relating input dims to output dims."""

    __slots__ = ("in_dims", "out_dims", "cons", "exists")

    def __init__(self, in_dims: Sequence[str], out_dims: Sequence[str],
                 cons: Iterable[LinCon] = (), exists: Sequence[str] = ()):
        self.in_dims = tuple(in_dims)
        self.out_dims = tuple(out_dims)
        overlap = set(self.in_dims) & set(self.out_dims)
        assert not overlap, f"in/out dims overlap: {overlap}"
        self.cons = tuple(cons)
        self.exists = tuple(exists)

    # -- constructors -------------------------------------------------------
    @staticmethod
    def from_affine(in_dims: Sequence[str], out_exprs: Sequence[Affine],
                    domain_cons: Iterable[LinCon] = (),
                    out_prefix: str = "o") -> "BasicMap":
        """The map ``[ins] -> [out_exprs(ins)]`` restricted to a domain."""
        out_dims = [f"{out_prefix}{i}" for i in range(len(out_exprs))]
        cons = list(domain_cons)
        for d, e in zip(out_dims, out_exprs):
            cons.append(LinCon.eq(Affine.var(d), e))
        return BasicMap(in_dims, out_dims, cons)

    # -- algebra ---------------------------------------------------------------
    def reverse(self) -> "BasicMap":
        return BasicMap(self.out_dims, self.in_dims, self.cons, self.exists)

    def is_empty(self) -> bool:
        return not is_feasible(self.cons)

    def intersect(self, other: "BasicMap") -> "BasicMap":
        assert self.in_dims == other.in_dims
        assert self.out_dims == other.out_dims
        oc, oe = _rename_exists(other.cons, other.exists)
        return BasicMap(self.in_dims, self.out_dims,
                        list(self.cons) + oc, self.exists + oe)

    def compose(self, inner: "BasicMap") -> "BasicMap":
        """``self ∘ inner``: first ``inner``, then ``self``.

        ``inner.out_dims`` unify with ``self.in_dims`` (positionally) and
        become existentials.
        """
        assert len(inner.out_dims) == len(self.in_dims)
        mid = [fresh_var("m") for _ in self.in_dims]
        inner_map = dict(zip(inner.out_dims, mid))
        self_map = dict(zip(self.in_dims, mid))
        # inner's in dims must not clash with self's out dims
        ic, ie = _rename_exists(
            [c.rename(inner_map) for c in inner.cons], inner.exists)
        sc, se = _rename_exists(
            [c.rename(self_map) for c in self.cons], self.exists)
        return BasicMap(inner.in_dims, self.out_dims, ic + sc,
                        tuple(mid) + ie + se)

    def domain(self) -> BasicSet:
        return BasicSet(self.in_dims, self.cons,
                        self.exists + self.out_dims)

    def range(self) -> BasicSet:
        return BasicSet(self.out_dims, self.cons,
                        self.exists + self.in_dims)

    def as_set(self) -> BasicSet:
        return BasicSet(self.in_dims + self.out_dims, self.cons, self.exists)

    def with_constraints(self, extra) -> "BasicMap":
        return BasicMap(self.in_dims, self.out_dims,
                        list(self.cons) + list(extra), self.exists)

    def rename(self, mapping: Dict[str, str]) -> "BasicMap":
        return BasicMap([mapping.get(d, d) for d in self.in_dims],
                        [mapping.get(d, d) for d in self.out_dims],
                        [c.rename(mapping) for c in self.cons], self.exists)

    def __repr__(self):
        return (f"{{ [{', '.join(self.in_dims)}] -> "
                f"[{', '.join(self.out_dims)}] : "
                f"{' and '.join(map(repr, self.cons))} }}")


class IMap:
    """A finite union of BasicMaps."""

    __slots__ = ("parts",)

    def __init__(self, parts: Iterable[BasicMap]):
        self.parts = tuple(parts)

    def is_empty(self) -> bool:
        return all(p.is_empty() for p in self.parts)

    def reverse(self) -> "IMap":
        return IMap([p.reverse() for p in self.parts])

    def intersect(self, other: "IMap") -> "IMap":
        return IMap([a.intersect(b) for a in self.parts
                     for b in other.parts])

    def union(self, other: "IMap") -> "IMap":
        return IMap(list(self.parts) + list(other.parts))

    def compose(self, inner: "IMap") -> "IMap":
        return IMap([a.compose(b) for a in self.parts
                     for b in inner.parts])

    def __repr__(self):
        return " u ".join(map(repr, self.parts)) or "{}"


def lex_gt_constraints(a_dims: Sequence[str],
                       b_dims: Sequence[str]) -> List[List[LinCon]]:
    """Constraint alternatives for ``a >lex b`` (disjunction of
    conjunctions). Tuples must have equal length."""
    assert len(a_dims) == len(b_dims)
    out: List[List[LinCon]] = []
    for k in range(len(a_dims)):
        cons = [LinCon.eq(Affine.var(a), Affine.var(b))
                for a, b in zip(a_dims[:k], b_dims[:k])]
        cons.append(LinCon.gt(Affine.var(a_dims[k]), Affine.var(b_dims[k])))
        out.append(cons)
    return out


def eq_constraints(a_dims: Sequence[str],
                   b_dims: Sequence[str]) -> List[LinCon]:
    """Constraints for component-wise equality of two tuples."""
    assert len(a_dims) == len(b_dims)
    return [LinCon.eq(Affine.var(a), Affine.var(b))
            for a, b in zip(a_dims, b_dims)]

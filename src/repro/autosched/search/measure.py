"""Parallel candidate measurement: a fault-isolated worker-process pool.

The pre-search tuners compile and measure every surviving candidate
serially, in-process — a miscompiled candidate that segfaults or loops
forever kills the whole tuning session, and wall-clock is the sum of
every measurement. This module runs measurements in ``k`` worker
processes instead:

- **isolation** — each candidate is compiled + run inside a worker; a
  crash (worker process dies) or a hang (deadline exceeded, worker
  killed) is folded back as a *failed/timeout outcome for that one
  candidate* and a replacement worker is forked, so the session always
  survives;
- **shared artifacts** — workers inherit ``REPRO_CACHE_DIR`` and serve
  repeat compiles from the PR 4 on-disk store, so ``gcc_runs`` does not
  scale with worker count (each distinct candidate is compiled by
  whichever worker gets there first; the rest hit the shared ``.so``
  store). Workers report their per-task ``gcc_runs`` / ``native_hits``
  deltas back to the parent, folded into
  ``runtime.metrics.pool_stats()``;
- **determinism** — results return in *submission order* regardless of
  completion order, so the searcher's fold (and therefore the winner) is
  identical at any worker count given identical measured values.

Environment knobs (see docs/PERFORMANCE.md):

- ``REPRO_TUNE_WORKERS`` — default pool size when the tuner does not
  pass one (``1`` = serial in-process measurement, the honest baseline);
- ``REPRO_TUNE_TIMEOUT`` — per-candidate deadline in seconds (default
  60) after which a worker is killed and the candidate counted as a
  timeout;
- ``REPRO_TUNE_MP`` — multiprocessing start method (default ``fork``);
- ``REPRO_TUNE_FAKE_MEASURE=1`` — compile-only mode: the pool returns
  the deterministic pseudo-time the searcher attached to each task
  (derived from the cost model's ``time_proxy``) instead of wall-clock.
  Used by the determinism tests and the gcc-sharing CI gate, where real
  timings would be noise;
- ``REPRO_TUNE_FAULT=crash:<hash-prefix|*>`` / ``hang:<prefix|*>`` —
  fault injection for the isolation tests: a worker about to measure a
  candidate whose sid-less ``struct_hash`` matches the prefix crashes
  (``os._exit``) or hangs instead.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue as _queue
import time
from typing import List, Optional, Sequence, Tuple

from ...ir import Func
from ...ir.hashing import struct_hash

DEFAULT_TIMEOUT_S = 60.0

#: outcome kinds a measurement can fold back as
OK, FAILED, TIMEOUT = "ok", "failed", "timeout"


def pool_size(workers: Optional[int] = None) -> int:
    """Resolve a worker count: explicit argument, else
    ``REPRO_TUNE_WORKERS``, else 1 (serial)."""
    if workers is None:
        workers = int(os.environ.get("REPRO_TUNE_WORKERS", "1"))
    return max(1, int(workers))


def fake_measure_enabled() -> bool:
    return os.environ.get("REPRO_TUNE_FAKE_MEASURE") == "1"


def _injected_fault(func: Func) -> Optional[str]:
    spec = os.environ.get("REPRO_TUNE_FAULT", "")
    if not spec or ":" not in spec:
        return None
    kind, _, pattern = spec.partition(":")
    if kind not in ("crash", "hang"):
        return None
    h = struct_hash(func)
    if pattern == "*" or h.startswith(pattern):
        return kind
    return None


def format_failure(backend: str, exc: BaseException) -> str:
    """One consistent rendering of a candidate compile/run failure,
    delegated to the registered :class:`~repro.backend.Backend` so the
    serial path, the pool workers and the driver all agree on the
    backend name (fault-injection logs vs ``pool_stats()``)."""
    from ...backend import find_backend

    b = find_backend(backend)
    if b is not None:
        return b.format_failure(exc)
    return f"{backend}: {type(exc).__name__}: {exc}"


def measure_once(func: Func, backend: str, inputs: Sequence,
                 scalars: dict, repeats: int,
                 fake_time: Optional[float] = None) -> float:
    """Compile + measure one candidate in the current process.

    With ``fake_time`` set (fake-measure mode) the candidate is still
    fully compiled — exercising the shared compile caches — but not run;
    the deterministic pseudo-time is returned instead.
    """
    from ...runtime.driver import build

    exe = build(func, backend=backend)
    if fake_time is not None:
        return float(fake_time)
    exe(*inputs, **scalars)  # warm-up
    best = float("inf")
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        exe(*inputs, **scalars)
        best = min(best, time.perf_counter() - t0)
    return best


def _worker_main(wid: int, backend: str, inputs: tuple, scalars: dict,
                 repeats: int, tasks, results):
    """Worker loop: take ``(tid, func, fake_time)`` tasks from this
    worker's own queue until the ``None`` sentinel. The parent does the
    dispatching, so it always knows which task a dead/hung worker held —
    no handshake message that a crash could swallow.

    The worker receives only the backend *name*; the Backend object is
    resolved from the registry inside the fork (``build()`` and
    ``format_failure`` both query it), so whatever the parent registered
    under that name is what the worker runs."""
    from ...runtime import metrics

    while True:
        task = tasks.get()
        if task is None:
            break
        tid, func, fake_time = task
        fault = _injected_fault(func)
        if fault == "crash":
            os._exit(17)
        elif fault == "hang":  # pragma: no cover - killed by the parent
            time.sleep(3600)
        before = metrics.disk_cache_stats()
        try:
            t = measure_once(func, backend, inputs, scalars, repeats,
                             fake_time)
            ok, payload = True, t
        except Exception as e:  # noqa: BLE001 - isolation is the point
            ok, payload = False, format_failure(backend, e)
        after = metrics.disk_cache_stats()
        results.put(("done", wid, tid, ok, payload,
                     int(after["gcc_runs"] - before["gcc_runs"]),
                     int(after["native_hits"] - before["native_hits"])))


class MeasurementPool:
    """``k`` persistent worker processes measuring candidates.

    With ``workers <= 1`` the pool degenerates to serial in-process
    measurement (no subprocesses at all) — the honest 1-worker baseline
    the speedup gate compares against.
    """

    def __init__(self, workers: Optional[int] = None,
                 backend: str = "pycode", inputs: Sequence = (),
                 scalars: Optional[dict] = None, repeats: int = 1,
                 timeout_s: Optional[float] = None):
        from ...backend import find_backend
        from ...runtime import metrics

        self.workers = pool_size(workers)
        b = find_backend(backend)
        #: the registry object's name (not the caller's spelling), so
        #: pool metrics and worker failure payloads agree
        self.backend = b.name if b is not None else backend
        self.inputs = tuple(inputs)
        self.scalars = dict(scalars or {})
        self.repeats = repeats
        self.timeout_s = timeout_s if timeout_s is not None else float(
            os.environ.get("REPRO_TUNE_TIMEOUT", DEFAULT_TIMEOUT_S))
        self.parallel = self.workers >= 2
        self._procs: dict = {}   # wid -> Process
        self._queues: dict = {}  # wid -> this worker's own task queue
        self._next_wid = 0
        if self.parallel:
            method = os.environ.get("REPRO_TUNE_MP", "fork")
            if method not in mp.get_all_start_methods():  # pragma: no cover
                method = mp.get_start_method(allow_none=False)
            self._ctx = mp.get_context(method)
            self._results = self._ctx.Queue()
            for _ in range(self.workers):
                self._spawn()
        metrics.record_pool_session(self.workers, backend=self.backend)

    def _spawn(self) -> int:
        wid = self._next_wid
        self._next_wid += 1
        q = self._ctx.Queue()
        p = self._ctx.Process(
            target=_worker_main,
            args=(wid, self.backend, self.inputs, self.scalars,
                  self.repeats, q, self._results),
            daemon=True)
        p.start()
        self._procs[wid] = p
        self._queues[wid] = q
        return wid

    # -- measurement -------------------------------------------------------
    def measure_batch(self, entries: Sequence[Tuple[Func, Optional[float]]]
                      ) -> List[Tuple[str, object]]:
        """Measure ``(func, fake_time)`` entries; returns one
        ``(outcome, payload)`` per entry **in submission order** —
        ``("ok", seconds)``, ``("failed", message)`` or
        ``("timeout", None)``."""
        from ...runtime import metrics

        t0 = time.perf_counter()
        if not self.parallel:
            out = [self._measure_serial(func, fake) for func, fake in
                   entries]
        else:
            out = self._measure_parallel(entries)
        metrics.record_pool_time(time.perf_counter() - t0)
        return out

    def _measure_serial(self, func: Func, fake: Optional[float]
                        ) -> Tuple[str, object]:
        from ...runtime import metrics

        try:
            t = measure_once(func, self.backend, self.inputs,
                             self.scalars, self.repeats, fake)
        except Exception as e:  # noqa: BLE001 - match worker isolation
            metrics.record_pool_task(FAILED)
            return FAILED, format_failure(self.backend, e)
        metrics.record_pool_task(OK)
        return OK, t

    def _measure_parallel(self, entries) -> List[Tuple[str, object]]:
        from ...runtime import metrics

        outcomes: List[Optional[Tuple[str, object]]] = [None] * len(
            entries)
        pending: List[int] = list(range(len(entries)))  # tids to dispatch
        assigned: dict = {}  # wid -> (tid, started_at)
        remaining = len(entries)

        def resolve(tid: int, outcome: Tuple[str, object]):
            nonlocal remaining
            if outcomes[tid] is None:
                outcomes[tid] = outcome
                remaining -= 1

        def reap(wid: int, outcome: str, message):
            """A worker died (crash) or was killed (hang): attribute its
            task, fork a replacement."""
            p = self._procs.pop(wid)
            self._queues.pop(wid)
            if p.is_alive():
                p.terminate()
            p.join(timeout=5)
            tid, _started = assigned.pop(wid)
            metrics.record_pool_task(outcome)
            resolve(tid, (outcome, message))
            metrics.record_pool_respawn()
            self._spawn()

        while remaining:
            # keep every idle worker fed (one outstanding task each, so
            # a death always maps to exactly one candidate)
            for wid in list(self._procs):
                if pending and wid not in assigned:
                    tid = pending.pop(0)
                    func, fake = entries[tid]
                    assigned[wid] = (tid, time.monotonic())
                    self._queues[wid].put((tid, func, fake))

            try:
                msg = self._results.get(timeout=0.05)
            except _queue.Empty:
                msg = None
            if msg is not None:
                _, wid, tid, ok, payload, gcc, native = msg
                if assigned.pop(wid, None) is None:
                    # stale result from a worker already reaped on
                    # timeout (its put raced the kill): the task was
                    # resolved and counted by reap() — don't let it
                    # into the pool metrics a second time
                    continue
                metrics.record_pool_task(OK if ok else FAILED)
                metrics.record_pool_worker_compiles(gcc, native)
                resolve(tid, (OK, payload) if ok else (FAILED, payload))
                continue

            now = time.monotonic()
            for wid, p in list(self._procs.items()):
                at = assigned.get(wid)
                if at is not None and now - at[1] > self.timeout_s:
                    # hung candidate: kill the worker, count a timeout
                    reap(wid, TIMEOUT, None)
                elif not p.is_alive():
                    if wid in assigned:
                        # crashed candidate
                        reap(wid, FAILED, "worker crashed")
                    else:  # pragma: no cover - spontaneous idle death
                        self._procs.pop(wid)
                        self._queues.pop(wid)
                        metrics.record_pool_respawn()
                        self._spawn()
        return [o for o in outcomes if o is not None]

    # -- lifecycle ---------------------------------------------------------
    def close(self):
        if not self.parallel:
            return
        for q in self._queues.values():
            try:
                q.put_nowait(None)
            except Exception:  # pragma: no cover - full/closed queue
                pass
        deadline = time.monotonic() + 5
        for p in self._procs.values():
            p.join(timeout=max(0.1, deadline - time.monotonic()))
            if p.is_alive():  # pragma: no cover - stuck worker
                p.terminate()
                p.join(timeout=1)
        self._procs.clear()
        self._queues.clear()

    def __enter__(self) -> "MeasurementPool":
        return self

    def __exit__(self, *exc):
        self.close()

"""The shared static screening front-end for all tuners.

PR 7 built this logic inside ``RandomTuner`` (struct-hash dedup +
dominance pruning against the incumbent best's estimate); the structured
searcher needs the identical policy, so it lives here now and both
tuner families delegate to one :class:`CandidateScreen` instance per
session. Behaviour is unchanged:

1. *dedup* — structurally identical candidates (sid-less
   ``struct_hash``) are measured once; repeats are skipped.
2. *dominance pruning* — each candidate is cost-analyzed
   (``repro.analysis.cost``) and skipped when the incumbent best's
   estimate is at least as good on **every** axis. A candidate that is
   better on *any* axis is still measured, so a sound estimate never
   hides a potential winner.

``REPRO_NO_COST_PRUNE=1`` disables the whole front-end (identical
results, more rounds measured). The screen also owns the per-session
scalar environment and — new in PR 8 — the **per-session measurement
inputs**: ``make_inputs()`` runs once and every measurement binds the
same arrays (regenerating them each round was pure overhead in the
Table 2 numbers, and sharing them is what lets worker processes receive
the arrays once at fork time).
"""

from __future__ import annotations

import os
from typing import Callable, Optional, Tuple

from ...ir import Func
from ...ir.hashing import struct_hash


class CandidateScreen:
    """Per-session dedup + dominance pruning + cached inputs/estimates."""

    def __init__(self, base: Func, make_inputs: Callable[[], tuple],
                 backend: str, target, scalars: dict):
        self.base = base
        self.make_inputs = make_inputs
        self.backend = backend
        self.target = target
        self.scalars = scalars
        self.enabled = os.environ.get("REPRO_NO_COST_PRUNE") != "1"
        self.best_est = None
        self._seen: set = set()
        self._scalar_env: Optional[dict] = None
        self._inputs: Optional[tuple] = None
        #: times ``make_inputs`` actually ran (should stay at 1/session)
        self.input_regens = 0

    def reset(self):
        """Start a fresh session (re-reads the escape-hatch env var)."""
        self.enabled = os.environ.get("REPRO_NO_COST_PRUNE") != "1"
        self.best_est = None
        self._seen.clear()

    # -- cached per-session state ------------------------------------------
    def inputs(self) -> tuple:
        """The measurement inputs, materialized once per session."""
        if self._inputs is None:
            self._inputs = tuple(self.make_inputs())
            self.input_regens += 1
        return self._inputs

    def scalar_env(self) -> dict:
        # Shape variables (loop bounds) are not in ``self.scalars`` —
        # recover them from the one materialized input set every
        # measurement binds, so symbolic candidates are compared under
        # their real trip counts.
        if self._scalar_env is None:
            from ...analysis.cost import infer_scalar_env

            try:
                arrays = self.inputs()
            except Exception:
                arrays = ()
            self._scalar_env = infer_scalar_env(self.base, arrays,
                                                self.scalars)
        return self._scalar_env

    # -- estimates ---------------------------------------------------------
    def estimate(self, func: Func):
        # Estimate the standard-lowered tree, not the raw candidate: the
        # backend compiles post-make_reduction/simplify IR, and vectorize
        # feasibility (BackendCaps.vec_feasible) depends on those forms.
        # The per-pass cache shares this lowering with the subsequent
        # build of any candidate that survives screening.
        from ...analysis.cost import estimate_cost
        from ...errors import FreeTensorError
        from ...pipeline import lowering_pipeline

        try:
            func = lowering_pipeline().run(func)
        except FreeTensorError:  # pragma: no cover - fails in measure too
            pass
        return estimate_cost(func, backend=self.backend,
                             target=self.target,
                             scalar_env=self.scalar_env())

    def screen(self, cand: Func) -> Tuple[str, object]:
        """Decide a candidate's fate before compiling it.

        Returns ``(verdict, estimate)`` with verdict one of ``"measure"``
        (go compile+measure), ``"dedup_skips"`` or ``"cost_pruned"``.
        """
        from ...runtime import metrics

        if not self.enabled:
            return "measure", None
        h = struct_hash(cand)  # sid-less: same structure, same schedule
        if h in self._seen:
            metrics.record_tuner_candidate("dedup_skips")
            return "dedup_skips", None
        self._seen.add(h)
        est = self.estimate(cand)
        if self.best_est is not None \
                and self.best_est.dominates_or_equal(est):
            metrics.record_tuner_candidate("cost_pruned")
            return "cost_pruned", est
        return "measure", est

    def accept(self, est):
        """Record the estimate of a new incumbent best (tightens the
        dominance pruner for later rounds)."""
        if est is not None:
            self.best_est = est

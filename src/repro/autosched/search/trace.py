"""Recorded schedule traces: a serializable, replayable list of schedule
primitives.

A tuned schedule used to be only a ``Func`` — reproducing it meant
re-running the whole search. A :class:`ScheduleTrace` records the
primitives (name + arguments) a tuner applied, in order, with two kinds
of *symbolic references* instead of raw statement ids (sids are minted
per process and would not survive serialization):

- ``{"$loop": k}`` — the k-th loop (pre-order) of the schedule's tree
  **at the moment the step is applied**. Replaying the steps in order on
  a structurally identical base resolves each index to the same loop.
- ``{"$res": [i, j]}`` — the j-th element of step *i*'s result (e.g. the
  inner sid returned by an earlier ``split``).

``apply()`` replays the trace on a fresh :class:`~repro.schedule.Schedule`
of the same base program; ``as_json()`` / ``from_json()`` round-trip the
trace through plain JSON. Winner traces are carried on
``TuneResult.best_trace`` and (for the last finished session) in
``runtime.metrics.tuner_stats()["best_trace"]``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from ...errors import InvalidSchedule


def loop_ref(schedule, sid: str) -> Dict[str, int]:
    """A symbolic reference to the loop with ``sid`` in ``schedule``'s
    current tree (its pre-order index among all loops)."""
    sids = [l.sid for l in schedule.loops()]
    try:
        return {"$loop": sids.index(sid)}
    except ValueError:
        raise InvalidSchedule(f"loop {sid!r} not in the current tree")


def res_ref(step: int, item: int) -> Dict[str, List[int]]:
    """A symbolic reference to element ``item`` of step ``step``'s
    result."""
    return {"$res": [step, item]}


def _is_ref(v) -> bool:
    return isinstance(v, dict) and ("$loop" in v or "$res" in v)


class ScheduleTrace:
    """An ordered, replayable record of applied schedule primitives."""

    __slots__ = ("steps",)

    def __init__(self, steps: Optional[List[dict]] = None):
        #: each step: ``{"prim": name, "args": {...}}`` with JSON-able
        #: argument values (scalars, lists, or symbolic references)
        self.steps: List[dict] = list(steps or [])

    def __len__(self):
        return len(self.steps)

    def __bool__(self):
        # an empty trace is still a real trace (the base schedule)
        return True

    def add(self, prim: str, **args) -> int:
        """Record one applied primitive; returns the step index (for
        :func:`res_ref` references from later steps)."""
        self.steps.append({"prim": prim, "args": dict(args)})
        return len(self.steps) - 1

    def fork(self) -> "ScheduleTrace":
        """An independent copy (for mutating a parent candidate)."""
        return ScheduleTrace([{"prim": s["prim"], "args": dict(s["args"])}
                              for s in self.steps])

    # -- replay ------------------------------------------------------------
    def _resolve(self, v, schedule, results):
        if isinstance(v, dict) and "$loop" in v:
            loops = schedule.loops()
            idx = v["$loop"]
            if not 0 <= idx < len(loops):
                raise InvalidSchedule(
                    f"trace references loop #{idx} but the tree has "
                    f"{len(loops)} loops")
            return loops[idx].sid
        if isinstance(v, dict) and "$res" in v:
            step, item = v["$res"]
            res = results[step]
            if not isinstance(res, (tuple, list)):
                res = (res,)
            return res[item]
        if isinstance(v, list):
            return [self._resolve(x, schedule, results) for x in v]
        return v

    def apply(self, schedule):
        """Replay every step, in order, on ``schedule`` (a
        :class:`~repro.schedule.Schedule` over the same base program).
        Returns the schedule. Raises the primitive's own error if a step
        no longer applies."""
        results: List[Any] = []
        for step in self.steps:
            fn = getattr(schedule, step["prim"], None)
            if fn is None:
                raise InvalidSchedule(
                    f"trace step {step['prim']!r} is not a schedule "
                    f"primitive")
            args = {k: self._resolve(v, schedule, results)
                    for k, v in step["args"].items()}
            results.append(fn(**args))
        return schedule

    # -- serialization -----------------------------------------------------
    def as_json(self) -> List[dict]:
        """The trace as a plain JSON-able list (also what
        ``json.dumps``-ing the trace produces)."""
        return [{"prim": s["prim"], "args": s["args"]} for s in self.steps]

    def dumps(self) -> str:
        return json.dumps(self.as_json())

    @classmethod
    def from_json(cls, data) -> "ScheduleTrace":
        """Rebuild a trace from :meth:`as_json` output (or its
        ``json.loads``-ed string)."""
        if isinstance(data, str):
            data = json.loads(data)
        steps = []
        for s in data:
            steps.append({"prim": str(s["prim"]), "args": dict(s["args"])})
        return cls(steps)

    def summary(self) -> str:
        """Human-readable one-line-per-step rendering."""

        def show(v):
            if isinstance(v, dict) and "$loop" in v:
                return f"loop[{v['$loop']}]"
            if isinstance(v, dict) and "$res" in v:
                return f"step{v['$res'][0]}[{v['$res'][1]}]"
            if isinstance(v, list):
                return "[" + ", ".join(show(x) for x in v) + "]"
            return repr(v)

        lines = []
        for i, s in enumerate(self.steps):
            args = ", ".join(f"{k}={show(v)}" for k, v in s["args"].items())
            lines.append(f"{i}: {s['prim']}({args})")
        return "\n".join(lines)

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"<ScheduleTrace {len(self.steps)} steps>"

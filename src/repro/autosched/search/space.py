"""The structured schedule search space: typed knobs per loop nest.

Instead of drawing blind random primitives (the pre-search tuners'
``_random_step``), the structured searcher extracts a **knob space** from
the base IR once, and every candidate is a *coherent assignment* of those
knobs (FlexTensor-style; see ROADMAP):

- ``tile`` knobs — a split-factor chain per loop (``[]`` = no split,
  ``[f]`` = one split, ``[f1, f2]`` = a two-level chain), offered only
  with factors below the loop's constant trip count;
- ``order`` knobs — one per perfectly-nested band of 2-3 loops, whose
  choices are the **legal** permutations (checked against the same
  dependence queries ``schedule.reorder`` enforces, so candidates do not
  waste rounds on illegal moves);
- ``ann`` knobs — an annotation per loop (``none`` / ``parallel`` /
  ``vectorize`` / ``unroll``), gated by the exact ``parallelize`` /
  ``vectorize`` legality query (the one the FT501 lint uses) and by the
  backend's capability table (no ``parallel`` choice on backends where
  the annotation is a no-op).

``realize()`` turns an assignment into a scheduled ``Func`` plus the
:class:`~repro.autosched.search.trace.ScheduleTrace` that produced it, so
every candidate ships with a replayable recipe. Assignments are plain
JSON-able dicts, which is what mutation and crossover operate on.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

from ...analysis import DepAnalyzer, DirItem
from ...errors import FreeTensorError
from ...ir import For, Func, IntConst, collect_stmts
from ...schedule import Schedule
from ...schedule.common import only_stmt_of
from ...schedule.loop_trans import _check_permutation_legal
from .trace import ScheduleTrace, loop_ref, res_ref

#: single-split factors offered to every splittable loop
TILE_FACTORS = (2, 4, 8, 16, 32, 64)
#: two-level chains (outer split, then inner re-split) for long loops
TILE_CHAINS = ((8, 2), (16, 4), (32, 8))
#: loops with a constant trip below this get no tile knob
MIN_TILE_TRIP = 4
#: constant trip bound for offering the ``unroll`` annotation
MAX_UNROLL_TRIP = 8
#: bands longer than this get no reorder knob (permutations explode)
MAX_BAND = 3


class Knob:
    """One typed dimension of the search space."""

    __slots__ = ("name", "kind", "choices", "sid", "band")

    def __init__(self, name: str, kind: str, choices: List,
                 sid: Optional[str] = None,
                 band: Optional[List[str]] = None):
        self.name = name
        #: ``tile`` / ``ann`` / ``order``
        self.kind = kind
        #: JSON-able choice values; ``choices[0]`` is the identity
        self.choices = list(choices)
        #: the base loop this knob schedules (tile/ann)
        self.sid = sid
        #: the base band sids, outer to inner (order)
        self.band = list(band) if band else None

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"Knob({self.name}: {self.choices})"


def _const_trip(loop: For) -> Optional[int]:
    if isinstance(loop.begin, IntConst) and isinstance(loop.end, IntConst):
        return loop.end.val - loop.begin.val
    return None


def _bands(func: Func) -> List[List[For]]:
    """Maximal perfectly-nested loop bands, outer to inner."""
    inner_sids = set()
    loops = collect_stmts(func.body, lambda s: isinstance(s, For))
    for l in loops:
        nxt = only_stmt_of(l)
        if isinstance(nxt, For):
            inner_sids.add(nxt.sid)
    bands = []
    for l in loops:
        if l.sid in inner_sids:
            continue  # not a band head
        band = [l]
        cur = l
        while True:
            nxt = only_stmt_of(cur)
            if not isinstance(nxt, For):
                break
            band.append(nxt)
            cur = nxt
        bands.append(band)
    return bands


class ScheduleSpace:
    """The typed knob space extracted from one base program."""

    def __init__(self, base: Func, knobs: List[Knob], backend: str,
                 parallel_kind: Optional[str]):
        self.base = base
        self.knobs = knobs
        self.backend = backend
        #: the parallel kind ``ann=parallel`` binds to (backend-dependent)
        self.parallel_kind = parallel_kind
        self._by_name = {k.name: k for k in knobs}

    # -- extraction --------------------------------------------------------
    @classmethod
    def extract(cls, base: Func, backend: str = "pycode",
                target=None) -> "ScheduleSpace":
        """Build the knob space for ``base`` (an already-lowered Func —
        what ``Schedule(prog).func`` returns)."""
        from ...runtime import metrics
        from ..target import default_target

        target = target or default_target(backend)
        caps = target.capabilities(backend)
        # the annotation kind a `parallel` knob binds to, straight from
        # the backend's declared capability table (None when the backend
        # would ignore the annotation: no knob)
        parallel_kind = caps.schedule_parallel_kind()

        analyzer = DepAnalyzer(base)
        knobs: List[Knob] = []

        # order knobs: one per multi-loop band, legal permutations only
        for b, band in enumerate(_bands(base)):
            if not 2 <= len(band) <= MAX_BAND:
                continue
            legal = []
            for perm in itertools.permutations(range(len(band))):
                perm = list(perm)
                if perm == sorted(perm):
                    legal.append(perm)  # identity: always legal
                    continue
                try:
                    _check_permutation_legal(base, band, perm, analyzer)
                    legal.append(perm)
                except FreeTensorError:
                    pass
            if len(legal) > 1:
                knobs.append(Knob(f"band{b}.order", "order", legal,
                                  band=[l.sid for l in band]))

        # per-loop tile + annotation knobs, in pre-order
        loops = collect_stmts(base.body, lambda s: isinstance(s, For))
        for i, loop in enumerate(loops):
            trip = _const_trip(loop)
            tiles: List[List[int]] = [[]]
            if trip is None or trip >= MIN_TILE_TRIP:
                for f in TILE_FACTORS:
                    if trip is None or f < trip:
                        tiles.append([f])
                for chain in TILE_CHAINS:
                    if trip is not None and chain[0] < trip:
                        tiles.append(list(chain))
            if len(tiles) > 1:
                knobs.append(Knob(f"L{i}.tile", "tile", tiles,
                                  sid=loop.sid))

            anns = ["none"]
            if not (loop.property.parallel or loop.property.vectorize):
                carried = analyzer.find(
                    direction=[DirItem.same_loop(loop.sid, "!=")],
                    first_only=True)
                if not carried:
                    anns.append("vectorize")
                    if parallel_kind is not None:
                        anns.append("parallel")
            if (trip is not None and trip <= MAX_UNROLL_TRIP
                    and trip > 1):
                anns.append("unroll")
            if len(anns) > 1:
                knobs.append(Knob(f"L{i}.ann", "ann", anns, sid=loop.sid))

        space = cls(base, knobs, backend, parallel_kind)
        metrics.record_search_space(
            knobs=len(knobs),
            order_knobs=sum(1 for k in knobs if k.kind == "order"),
            tile_knobs=sum(1 for k in knobs if k.kind == "tile"),
            ann_knobs=sum(1 for k in knobs if k.kind == "ann"))
        return space

    def size(self) -> int:
        """Number of distinct knob assignments (candidates)."""
        n = 1
        for k in self.knobs:
            n *= len(k.choices)
        return n

    # -- assignments -------------------------------------------------------
    def default_assignment(self) -> Dict[str, object]:
        """The identity assignment (base schedule unchanged)."""
        return {k.name: k.choices[0] for k in self.knobs}

    def random_assignment(self, rng) -> Dict[str, object]:
        return {k.name: k.choices[rng.randrange(len(k.choices))]
                for k in self.knobs}

    def mutate(self, assignment: Dict[str, object], rng,
               steps: int = 1) -> Dict[str, object]:
        """A copy of ``assignment`` with ``steps`` knobs re-drawn."""
        out = dict(assignment)
        if not self.knobs:
            return out
        for _ in range(steps):
            k = self.knobs[rng.randrange(len(self.knobs))]
            alternatives = [c for c in k.choices if c != out.get(k.name)]
            if alternatives:
                out[k.name] = alternatives[rng.randrange(len(alternatives))]
        return out

    def crossover(self, a: Dict[str, object], b: Dict[str, object],
                  rng) -> Dict[str, object]:
        """Uniform crossover: each knob from one parent or the other."""
        return {k.name: (a if rng.random() < 0.5 else b).get(
            k.name, k.choices[0]) for k in self.knobs}

    @staticmethod
    def assignment_key(assignment: Dict[str, object]) -> str:
        """A hashable identity for visited-set bookkeeping."""
        return repr(sorted(assignment.items()))

    # -- realization -------------------------------------------------------
    def realize(self, assignment: Dict[str, object]
                ) -> Tuple[Func, ScheduleTrace]:
        """Apply a knob assignment to a fresh schedule of the base.

        Returns ``(func, trace)``. Raises
        :class:`~repro.errors.FreeTensorError` when some interaction of
        knobs is illegal (callers count it as an invalid candidate) —
        individual knob choices are pre-gated, but e.g. a reorder can
        invalidate a sibling band's annotation in rare aliasing cases.
        """
        s = Schedule(self.base)
        tr = ScheduleTrace()

        # reorders first: band sids are base sids and reorder keeps them
        for k in self.knobs:
            if k.kind != "order":
                continue
            perm = assignment.get(k.name, k.choices[0])
            if list(perm) == sorted(perm):
                continue  # identity
            order = [k.band[p] for p in perm]
            tr.add("reorder", order=[loop_ref(s, sid) for sid in order])
            s.reorder(order)

        # then every split chain, in base pre-order (splits preserve the
        # sids of the loops nested inside), deferring annotations
        pending = []  # (ann, outer_sid, inner_sid, first_step, last_step)
        for k in self.knobs:
            if k.kind == "tile":
                chain = assignment.get(k.name, [])
                inner_sid = k.sid
                outer_sid = k.sid
                first_step = None
                last_step = None
                for level, f in enumerate(chain):
                    step = tr.add("split", loop=loop_ref(s, inner_sid),
                                  factor=int(f))
                    outer, inner = s.split(inner_sid, factor=int(f))
                    if level == 0:
                        outer_sid = outer
                        first_step = step
                    inner_sid = inner
                    last_step = step
                ann_name = k.name.replace(".tile", ".ann")
                pending.append((assignment.get(ann_name, "none"),
                                outer_sid, inner_sid, first_step,
                                last_step))
            elif k.kind == "ann" \
                    and k.name.replace(".ann", ".tile") \
                    not in self._by_name:
                pending.append((assignment.get(k.name, "none"),
                                k.sid, k.sid, None, None))

        # annotations innermost-first: an immediate ``unroll`` duplicates
        # its body with fresh sids, so an ancestor must only unroll after
        # its descendants are fully scheduled. "Innermost" is judged on
        # the *current* tree (a reorder can invert the base nesting), by
        # descending pre-order index — descendants always come after
        # their ancestors in pre-order.
        pos = {l.sid: i for i, l in enumerate(s.loops())}
        pending.sort(key=lambda p: -pos[p[2]])
        for ann, outer_sid, inner_sid, first_step, last_step in pending:
            self._apply_ann(s, tr, ann, outer_sid, inner_sid,
                            first_step, last_step)
        return s.func, tr

    def _apply_ann(self, s: Schedule, tr: ScheduleTrace, ann: str,
                   outer_sid: str, inner_sid: str,
                   first_step: Optional[int],
                   last_step: Optional[int]):
        """Attach one annotation choice: ``parallel`` binds the outer
        result of the *first* split in the chain (distribute tiles),
        ``vectorize``/``unroll`` the inner result of the *last* split
        (contiguous short loop)."""
        if ann == "none" or not ann:
            return
        if ann == "parallel":
            ref = (res_ref(first_step, 0) if first_step is not None
                   else loop_ref(s, outer_sid))
            tr.add("parallelize", loop=ref, kind=self.parallel_kind)
            s.parallelize(outer_sid, self.parallel_kind)
        elif ann == "vectorize":
            ref = (res_ref(last_step, 1) if last_step is not None
                   else loop_ref(s, inner_sid))
            tr.add("vectorize", loop=ref)
            s.vectorize(inner_sid)
        elif ann == "unroll":
            ref = (res_ref(last_step, 1) if last_step is not None
                   else loop_ref(s, inner_sid))
            tr.add("unroll", loop=ref)
            s.unroll(inner_sid)

    def __repr__(self):  # pragma: no cover - debugging aid
        return (f"<ScheduleSpace {len(self.knobs)} knobs, "
                f"{self.size()} points>")

"""The structured evolutionary searcher over the typed knob space.

Where :class:`~repro.autosched.autotune.RandomTuner` draws blind random
primitives, :class:`StructuredTuner` searches coherent points of a
:class:`~repro.autosched.search.space.ScheduleSpace`:

1. **generate** — each generation draws a batch of knob assignments:
   mutations and crossovers of the surviving population plus a slice of
   fresh random exploration (generation 0 seeds the batch with the
   identity assignment so the unscheduled base is always a measured
   baseline);
2. **screen** — every realized candidate passes the shared
   :class:`~repro.autosched.search.screen.CandidateScreen` (struct-hash
   dedup + dominance pruning, ``REPRO_NO_COST_PRUNE=1`` to disable);
3. **rank** — screening survivors are ordered by the cost model's
   ``time_proxy`` (``analysis.cost.frontier_order``) and only the top-k
   are measured; the rest are counted as ``frontier_skips``;
4. **measure** — the top-k go through a
   :class:`~repro.autosched.search.measure.MeasurementPool` of worker
   processes (``workers=1`` measures serially in-process). Results fold
   back in submission order with strict ``<`` winner updates, and all
   RNG draws happen in the generate step — so the same seed yields the
   same winner at any worker count (given identical measured values;
   the determinism tests pin measurements with
   ``REPRO_TUNE_FAKE_MEASURE=1``).

The result is a plain :class:`~repro.autosched.autotune.TuneResult`
whose ``best_trace`` replays the winning schedule.
"""

from __future__ import annotations

import math
import random
from typing import Callable, List, Optional, Tuple

import time

from ...errors import FreeTensorError
from ...ir.hashing import struct_hash
from ...schedule import Schedule
from ..target import default_target
from .measure import (MeasurementPool, OK, TIMEOUT, fake_measure_enabled,
                      pool_size)
from .screen import CandidateScreen
from .space import ScheduleSpace


class StructuredTuner:
    """Cost-frontier-guided evolutionary search over typed schedule knobs,
    with parallel multi-process measurement."""

    def __init__(self, program_or_func, make_inputs: Callable[[], tuple],
                 backend: str = "pycode", rounds: int = 64,
                 batch: int = 16, topk: Optional[int] = None,
                 population: int = 8, explore_prob: float = 0.25,
                 crossover_prob: float = 0.3, seed: int = 0,
                 repeats: int = 1, scalars: Optional[dict] = None,
                 workers: Optional[int] = None,
                 timeout_s: Optional[float] = None, target=None):
        self.base = Schedule(program_or_func).func
        self.make_inputs = make_inputs
        self.backend = backend
        #: total candidate budget (matches the other tuners' ``rounds``
        #: so A/B comparisons are at equal budget)
        self.rounds = rounds
        self.batch = max(1, batch)
        self.generations = max(1, math.ceil(rounds / self.batch))
        self.topk = topk if topk is not None else max(2, self.batch // 4)
        self.population = population
        self.explore_prob = explore_prob
        self.crossover_prob = crossover_prob
        self.rng = random.Random(seed)
        self.repeats = repeats
        self.scalars = scalars or {}
        self.workers = pool_size(workers)
        self.timeout_s = timeout_s
        self.target = target or default_target(backend)
        self.screen = CandidateScreen(self.base, make_inputs, backend,
                                      self.target, self.scalars)
        self.space = ScheduleSpace.extract(self.base, backend,
                                           self.target)

    # -- generation --------------------------------------------------------
    def _draw_batch(self, generation: int, pool: List[tuple],
                    budget: int) -> List[dict]:
        """Knob assignments for one generation (all RNG happens here, so
        the search path is independent of measurement timing)."""
        n = min(self.batch, budget)
        out: List[dict] = []
        if generation == 0:
            # the identity assignment: always measure the base schedule
            out.append(self.space.default_assignment())
        while len(out) < n:
            if not pool or self.rng.random() < self.explore_prob:
                out.append(self.space.random_assignment(self.rng))
            elif len(pool) >= 2 \
                    and self.rng.random() < self.crossover_prob:
                i = self.rng.randrange(len(pool))
                j = self.rng.randrange(len(pool))
                out.append(self.space.crossover(pool[i][1], pool[j][1],
                                                self.rng))
            else:
                parent = pool[self.rng.randrange(len(pool))][1]
                steps = 1 + (self.rng.random() < 0.3)
                out.append(self.space.mutate(parent, self.rng,
                                             steps=steps))
        return out

    # -- the search loop ---------------------------------------------------
    def tune(self):
        from ...analysis.cost import frontier_order
        from ...runtime import metrics
        from ..autotune import TuneResult
        from .trace import ScheduleTrace

        best_func, best_time = self.base, float("inf")
        best_trace: Optional[ScheduleTrace] = None
        round_times: List[float] = []
        measure_times: List[float] = []
        dedup_skips = cost_pruned = frontier_skips = invalid = 0
        timeouts = 0
        #: (measured_time, assignment, func, trace), best first
        pool_members: List[tuple] = []
        seen_keys = set()
        fake_mode = fake_measure_enabled()
        self.screen.reset()

        with MeasurementPool(self.workers, self.backend,
                             self.screen.inputs(), self.scalars,
                             self.repeats, self.timeout_s) as mpool:
            budget = self.rounds
            for gen in range(self.generations):
                if budget <= 0:
                    break
                t0 = time.perf_counter()
                batch = self._draw_batch(gen, pool_members, budget)
                budget -= len(batch)
                metrics.record_search_generation(len(batch))

                # realize + screen every assignment, in draw order
                survivors = []  # (assignment, func, trace, est)
                for a in batch:
                    key = self.space.assignment_key(a)
                    if key in seen_keys:
                        dedup_skips += 1
                        metrics.record_tuner_candidate("dedup_skips")
                        continue
                    seen_keys.add(key)
                    try:
                        func, trace = self.space.realize(a)
                    except FreeTensorError:
                        invalid += 1
                        metrics.record_tuner_candidate("invalid")
                        continue
                    verdict, est = self.screen.screen(func)
                    if verdict == "dedup_skips":
                        dedup_skips += 1
                    elif verdict == "cost_pruned":
                        cost_pruned += 1
                    else:
                        survivors.append((a, func, trace, est))

                # rank survivors on the cost frontier; measure the top-k
                order = frontier_order([s[3] for s in survivors])
                chosen = order[:self.topk]
                skipped = len(order) - len(chosen)
                frontier_skips += skipped
                for _ in range(skipped):
                    metrics.record_tuner_candidate("frontier_skips")

                entries = []
                for idx in chosen:
                    _a, func, _tr, est = survivors[idx]
                    fake = None
                    if fake_mode:
                        # deterministic pseudo-time, computed in the
                        # parent so every worker count sees identical
                        # "timings": the cost model's proxy when
                        # screening is on, else a structural hash (the
                        # winner is then arbitrary but reproducible)
                        if est is not None:
                            fake = float(est.time_proxy)
                        else:
                            fake = 1.0 + int(struct_hash(func),
                                             16) % 10**9 / 1e9
                    entries.append((func, fake))
                outcomes = mpool.measure_batch(entries)

                # fold back in submission order (determinism)
                for (idx, (outcome, payload)) in zip(chosen, outcomes):
                    a, func, trace, est = survivors[idx]
                    if outcome == OK:
                        metrics.record_tuner_candidate("measured")
                        t = float(payload)
                        measure_times.append(t)
                        pool_members.append((t, a, func, trace))
                        if t < best_time:
                            best_time, best_func = t, func
                            best_trace = trace
                            self.screen.accept(est)
                    elif outcome == TIMEOUT:
                        timeouts += 1
                        metrics.record_tuner_candidate(
                            "measure_timeout")
                    else:
                        metrics.record_tuner_candidate("measure_failed")
                pool_members.sort(key=lambda p: p[0])
                del pool_members[self.population:]

                # one round_times entry per drawn candidate, so budget
                # accounting matches the other tuners
                gen_wall = time.perf_counter() - t0
                round_times.extend([gen_wall / len(batch)] * len(batch))

        metrics.record_best_trace(
            best_trace.as_json() if best_trace is not None else None)
        return TuneResult(best_func, best_time, round_times,
                          measure_times, dedup_skips=dedup_skips,
                          cost_pruned=cost_pruned,
                          best_trace=best_trace,
                          frontier_skips=frontier_skips,
                          invalid=invalid, timeouts=timeouts)

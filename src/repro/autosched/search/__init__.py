"""``repro.autosched.search`` — structured schedule search with parallel
multi-process measurement (see docs/PERFORMANCE.md, "Structured search &
parallel measurement").

- :mod:`.space` — typed knobs (tile chains, legal reorder permutations,
  legality-gated annotations) extracted once per program;
- :mod:`.trace` — replayable, serializable schedule traces;
- :mod:`.screen` — the dedup + dominance-pruning front-end shared with
  the random/evolutionary tuners, plus per-session input caching;
- :mod:`.measure` — the fault-isolated worker-process measurement pool;
- :mod:`.tuner` — :class:`StructuredTuner` tying them together.

Submodules load lazily: ``autosched.autotune`` imports ``screen`` /
``trace`` from here, so an eager ``tuner`` import would be circular.
"""

_LAZY = {
    "StructuredTuner": ".tuner",
    "ScheduleSpace": ".space",
    "Knob": ".space",
    "ScheduleTrace": ".trace",
    "CandidateScreen": ".screen",
    "MeasurementPool": ".measure",
}


def __getattr__(name):
    mod = _LAZY.get(name)
    if mod is not None:
        import importlib

        return getattr(importlib.import_module(mod, __name__), name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")


__all__ = list(_LAZY)

"""Automatic scheduling: the paper's rule-based passes and a
search-based tuner used as the compile-time baseline (Table 2)."""

from .autotune import EvolutionaryTuner, RandomTuner, TuneResult
from .rules import (auto_fuse, auto_mem_type, auto_parallelize,
                    auto_schedule, auto_unroll, auto_use_lib,
                    auto_vectorize)
from .search import (MeasurementPool, ScheduleSpace, ScheduleTrace,
                     StructuredTuner)
from .target import CPU, GPU, Target, default_target

__all__ = [
    "EvolutionaryTuner", "RandomTuner", "StructuredTuner", "TuneResult",
    "MeasurementPool", "ScheduleSpace", "ScheduleTrace",
    "auto_fuse", "auto_mem_type", "auto_parallelize", "auto_schedule",
    "auto_unroll", "auto_use_lib", "auto_vectorize",
    "CPU", "GPU", "Target", "default_target",
]

"""Target descriptions for the auto-scheduler."""

from __future__ import annotations


class Target:
    """Hardware the auto-scheduler optimises for."""

    def __init__(self, kind: str, name: str, num_threads: int = 1,
                 block_size: int = 256, max_local_elems: int = 64,
                 max_shared_elems: int = 4096, unroll_limit: int = 4):
        assert kind in ("cpu", "gpu")
        self.kind = kind
        self.name = name
        self.num_threads = num_threads
        #: threads per block when mapping loops onto a GPU grid
        self.block_size = block_size
        self.max_local_elems = max_local_elems
        self.max_shared_elems = max_shared_elems
        self.unroll_limit = unroll_limit

    def cache_key(self) -> tuple:
        """Full-content key for the build cache (repr omits tunables)."""
        return ("Target", self.kind, self.name, self.num_threads,
                self.block_size, self.max_local_elems,
                self.max_shared_elems, self.unroll_limit)

    def __repr__(self):  # pragma: no cover
        return f"Target({self.kind}:{self.name})"


CPU = Target("cpu", "generic-cpu", num_threads=24)
GPU = Target("gpu", "sim-v100", num_threads=0, block_size=256)


def default_target(backend: str = "pycode") -> Target:
    return GPU if backend == "gpusim" else CPU

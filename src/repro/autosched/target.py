"""Target descriptions for the auto-scheduler."""

from __future__ import annotations

from typing import Callable, Optional


class BackendCaps:
    """What a (backend, target) pair actually does with parallel/vector
    annotations — the capability table behind the cost model's
    exploited-parallelism axis (see docs/PERFORMANCE.md).

    ``capacity(kind)`` is the hardware lane count a ``For`` bound to
    parallel kind ``kind`` is spread over: 1 means the annotation is a
    no-op on this backend, None means effectively unbounded (every
    iteration gets a lane). ``vector_width`` is the SIMD width applied to
    ``vectorize`` loops; None means the whole loop becomes one vector
    kernel (the NumPy lowering). ``vec_feasible`` is the backend's own
    legality predicate for honouring a ``vectorize`` marking on a given
    ``For`` (None = always honoured): the code generators silently fall
    back to plain loops on shapes they cannot vectorize, and the cost
    model must model that fallback, not the annotation. ``stride_matters``
    is False on backends whose per-element cost is interpretation
    overhead rather than memory latency.
    """

    __slots__ = ("backend", "vector_width", "stride_matters", "_parallel",
                 "vec_feasible")

    def __init__(self, backend: str, parallel: dict,
                 vector_width: Optional[int], stride_matters: bool,
                 vec_feasible: Optional[Callable] = None):
        self.backend = backend
        self._parallel = dict(parallel)
        self.vector_width = vector_width
        self.stride_matters = stride_matters
        self.vec_feasible = vec_feasible

    def capacity(self, kind: str) -> Optional[int]:
        """Lane count for parallel kind ``kind`` (e.g. ``openmp``,
        ``cuda.blockIdx.x``); 1 when the backend ignores it."""
        for prefix, cap in self._parallel.items():
            if kind == prefix or kind.startswith(prefix + "."):
                return cap
        return 1

    def __repr__(self):  # pragma: no cover
        return (f"BackendCaps({self.backend}, vec={self.vector_width}, "
                f"parallel={self._parallel})")


class Target:
    """Hardware the auto-scheduler optimises for."""

    def __init__(self, kind: str, name: str, num_threads: int = 1,
                 block_size: int = 256, max_local_elems: int = 64,
                 max_shared_elems: int = 4096, unroll_limit: int = 4,
                 vector_width: int = 8):
        assert kind in ("cpu", "gpu")
        self.kind = kind
        self.name = name
        self.num_threads = num_threads
        #: threads per block when mapping loops onto a GPU grid
        self.block_size = block_size
        self.max_local_elems = max_local_elems
        self.max_shared_elems = max_shared_elems
        self.unroll_limit = unroll_limit
        #: SIMD lanes per vector op on native backends (8 × f32 = AVX2)
        self.vector_width = vector_width

    def cache_key(self) -> tuple:
        """Full-content key for the build cache (repr omits tunables)."""
        return ("Target", self.kind, self.name, self.num_threads,
                self.block_size, self.max_local_elems,
                self.max_shared_elems, self.unroll_limit,
                self.vector_width)

    def capabilities(self, backend: str = "pycode") -> BackendCaps:
        """The cost model's view of what ``backend`` does with schedule
        annotations when compiling for this target:

        - ``pycode`` runs sequentially in one Python process: ``openmp``
          and ``cuda.*`` markings are ignored (capacity 1), but
          ``vectorize`` lowers the whole loop to one NumPy kernel;
        - ``c`` honours ``openmp`` up to ``num_threads`` and vectorizes
          at ``vector_width`` lanes;
        - ``gpusim`` spreads ``cuda.blockIdx`` without bound and
          ``cuda.threadIdx`` over ``block_size`` lanes.
        """
        if backend == "c":
            from ..pipeline import simd_body_ok

            return BackendCaps(
                backend,
                {"openmp": self.num_threads},
                vector_width=self.vector_width,
                stride_matters=True,
                vec_feasible=lambda s: simd_body_ok(s.body))
        if backend == "gpusim":
            return BackendCaps(
                backend,
                {"cuda.blockIdx": None,
                 "cuda.threadIdx": self.block_size,
                 "openmp": self.num_threads},
                vector_width=32,
                stride_matters=True)
        if backend == "pycode":
            from ..codegen.pycode import loop_vectorizes

            return BackendCaps(backend, {}, vector_width=None,
                               stride_matters=False,
                               vec_feasible=loop_vectorizes)
        # the reference interpreter (and unknown backends): sequential
        # scalar evaluation; every annotation is a no-op
        return BackendCaps(backend, {}, vector_width=1,
                           stride_matters=False)

    def __repr__(self):  # pragma: no cover
        return f"Target({self.kind}:{self.name})"


CPU = Target("cpu", "generic-cpu", num_threads=24)
GPU = Target("gpu", "sim-v100", num_threads=0, block_size=256)


def default_target(backend: str = "pycode") -> Target:
    return GPU if backend == "gpusim" else CPU

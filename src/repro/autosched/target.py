"""Target descriptions for the auto-scheduler.

:class:`BackendCaps` itself lives in ``repro.backend.caps`` now (it is
declared per-backend by the registry's Backend objects) and is
re-exported here for compatibility; ``Target.capabilities`` delegates to
the registry query instead of the old per-backend if/elif ladder.
"""

from __future__ import annotations

from ..backend.caps import BackendCaps

__all__ = ["BackendCaps", "CPU", "GPU", "Target", "default_target"]


class Target:
    """Hardware the auto-scheduler optimises for."""

    def __init__(self, kind: str, name: str, num_threads: int = 1,
                 block_size: int = 256, max_local_elems: int = 64,
                 max_shared_elems: int = 4096, unroll_limit: int = 4,
                 vector_width: int = 8):
        assert kind in ("cpu", "gpu")
        self.kind = kind
        self.name = name
        self.num_threads = num_threads
        #: threads per block when mapping loops onto a GPU grid
        self.block_size = block_size
        self.max_local_elems = max_local_elems
        self.max_shared_elems = max_shared_elems
        self.unroll_limit = unroll_limit
        #: SIMD lanes per vector op on native backends (8 × f32 = AVX2)
        self.vector_width = vector_width

    def cache_key(self) -> tuple:
        """Full-content key for the build cache (repr omits tunables)."""
        return ("Target", self.kind, self.name, self.num_threads,
                self.block_size, self.max_local_elems,
                self.max_shared_elems, self.unroll_limit,
                self.vector_width)

    def capabilities(self, backend: str = "pycode") -> BackendCaps:
        """The cost model's view of what ``backend`` does with schedule
        annotations when compiling for this target — the capability
        table the backend's registered :class:`~repro.backend.Backend`
        declares (``repro.backend.backend_caps``); unknown backend names
        get the sequential-scalar fallback where every annotation is a
        no-op."""
        from ..backend import backend_caps

        return backend_caps(backend, self)

    def __repr__(self):  # pragma: no cover
        return f"Target({self.kind}:{self.name})"


CPU = Target("cpu", "generic-cpu", num_threads=24)
GPU = Target("gpu", "sim-v100", num_threads=0, block_size=256)


def default_target(backend: str = "pycode") -> Target:
    """The default scheduling target for ``backend``, per its registered
    ``target_kind`` declaration (CPU for unknown names)."""
    from ..backend import find_backend

    b = find_backend(backend)
    return b.default_target() if b is not None else CPU

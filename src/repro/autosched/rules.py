"""The rule-based auto-scheduler (paper section 4.3).

Six passes run in the paper's order — ``auto_fuse``, ``auto_vectorize``,
``auto_parallelize``, ``auto_mem_type``, ``auto_use_lib``, ``auto_unroll``
— each *trying* transformations and letting dependence analysis veto the
illegal ones ("we can aggressively try transformations without worrying
about their correctness").
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import InvalidSchedule
from ..ir import For, Func, IntConst, StmtSeq, VarDef, collect_stmts
from ..schedule import Schedule
from ..schedule.common import only_stmt_of, parent_of
from .target import CPU, Target, default_target


def auto_schedule(program_or_func, target: Optional[Target] = None,
                  backend: Optional[str] = None,
                  passes: Optional[List[str]] = None,
                  times=None) -> Func:
    """Apply the automatic transformation pipeline; returns a new Func.

    The rule passes run as one pass-manager :class:`~repro.pipeline.Pipeline`
    (uncacheable — they share this Schedule session), followed by the
    standard lowering and the backend's declared legalization passes, so
    per-pass timing, ``REPRO_DUMP_IR`` snapshots and
    ``REPRO_VERIFY_EACH_PASS`` cover every rule individually. ``times``,
    when given, accumulates per-pass wall-clock seconds.
    """
    import os
    import time

    from ..ir.hashing import struct_hash
    from ..pipeline import Pass, Pipeline, build_pipeline
    from ..pipeline.manager import (composite_cache_lookup,
                                    composite_cache_store)
    from ..runtime import metrics

    if target is None:
        target = default_target(backend or "pycode")
    enabled = passes if passes is not None else [
        "fuse", "vectorize", "parallelize", "mem_type", "use_lib",
        "unroll",
    ]

    # Rule passes are individually uncacheable, but the whole run is
    # deterministic in (raw input, backend, target, enabled rules):
    # memoize it as one composite entry so every optimized compile of a
    # program — build(), the tuner, the verify CLI — sees the identical
    # Func (same sids, same struct_hash). Keyed on the *raw* (pre-
    # Schedule) tree so a memo hit skips Schedule construction and its
    # pre-lowering outright. Skipped under the instrumentation env vars,
    # which want every pass to really run.
    instrumented = (os.environ.get("REPRO_VERIFY_EACH_PASS", "") == "1"
                    or bool(os.environ.get("REPRO_DUMP_IR", "")))
    raw = getattr(program_or_func, "func", program_or_func)
    # the backend discriminator is the registry cache tag
    # (name@caps_version): bumping a Backend's declared version
    # invalidates memoized schedules that ran its legalization
    from ..backend import backend_cache_tag

    btag = backend_cache_tag(backend or "pycode")
    memo_key = "|".join((struct_hash(raw, include_sids=True), btag,
                         repr(target.cache_key()), ",".join(enabled)))
    # process-independent discriminator for the persistent store (the
    # canonical input hash is prepended by the cache layer itself)
    disk_extra = "|".join((btag, repr(target.cache_key()),
                           ",".join(enabled)))
    if not instrumented:
        t0 = time.perf_counter()
        cached = composite_cache_lookup("autosched", memo_key,
                                        input_func=raw,
                                        disk_extra=disk_extra)
        if cached is not None:
            dt = time.perf_counter() - t0
            metrics.record_pass_run("autosched", dt, True)
            if times is not None:
                times["autosched"] = times.get("autosched", 0.0) + dt
            return cached
    s = Schedule(program_or_func)
    rules = (
        ("fuse", auto_fuse, ()),
        ("vectorize", auto_vectorize, (target,)),
        ("parallelize", auto_parallelize, (target,)),
        ("mem_type", auto_mem_type, (target,)),
        ("use_lib", auto_use_lib, ()),
        ("unroll", auto_unroll, (target,)),
    )

    def rule_pass(fn, args):
        # rule passes transform the shared Schedule session; the session's
        # current tree is by construction the previous pass's output
        def run(_func):
            fn(s, *args)
            return s.func

        return run

    rule_passes = [Pass("auto_" + key, rule_pass(fn, args),
                        cacheable=False)
                   for key, fn, args in rules if key in enabled]
    tail = build_pipeline(backend=backend or "pycode", target=target)
    pipe = Pipeline(rule_passes + tail.passes, name="autosched")
    out = pipe.run(s.func, times=times)
    if not instrumented:
        composite_cache_store("autosched", memo_key, out,
                              input_func=raw, disk_extra=disk_extra)
    return out


# ---------------------------------------------------------------------------


def _sibling_loop_pairs(func):
    """(loop, next_loop) pairs that are plausibly fusable: consecutive
    siblings, or separated only by VarDef scopes."""
    pairs = []
    loops = collect_stmts(func.body, lambda s: isinstance(s, For))
    for l in loops:
        parent = parent_of(func.body, l.sid)
        if not isinstance(parent, StmtSeq):
            continue
        idx = next((i for i, c in enumerate(parent.stmts)
                    if c.sid == l.sid), None)
        if idx is None:
            continue
        # the immediate next loop in program order, skipping into VarDefs
        rest = parent.stmts[idx + 1:]
        nxt = _first_loop_through_defs(rest)
        if nxt is not None:
            pairs.append((l.sid, nxt.sid))
    return pairs


def _first_loop_through_defs(stmts):
    for s in stmts:
        if isinstance(s, For):
            return s
        if isinstance(s, VarDef):
            return _first_loop_through_defs(
                s.body.stmts if isinstance(s.body, StmtSeq) else [s.body])
        if isinstance(s, StmtSeq):
            inner = _first_loop_through_defs(s.stmts)
            if inner is not None:
                return inner
            continue
        return None  # a non-loop statement intervenes: let fuse decide
    return None


def auto_fuse(s: Schedule, max_rounds: int = 20):
    """Fuse nearby loops to increase locality (pass 1)."""
    for _ in range(max_rounds):
        for a, b in _sibling_loop_pairs(s.func):
            try:
                s.fuse(a, b)
                break  # structure changed: recompute pairs
            except InvalidSchedule:
                continue
        else:
            return


def _innermost_loops(func) -> List[For]:
    out = []
    for l in collect_stmts(func.body, lambda s: isinstance(s, For)):
        if not collect_stmts(l.body, lambda s: isinstance(s, For)):
            out.append(l)
    return out


def auto_vectorize(s: Schedule, target: Target):
    """Vectorize dependence-free innermost loops (pass 2).

    Very short constant loops are left alone — ``auto_unroll`` (pass 6)
    turns those into straight-line code instead, which beats a 3-lane
    vector op."""
    for l in _innermost_loops(s.func):
        if isinstance(l.begin, IntConst) and isinstance(l.end, IntConst) \
                and l.end.val - l.begin.val <= target.unroll_limit:
            continue
        try:
            s.vectorize(l.sid)
        except InvalidSchedule:
            continue


def _outermost_loops(func) -> List[For]:
    out = []

    def walk(node, inside_loop):
        if isinstance(node, For):
            if not inside_loop:
                out.append(node)
            walk(node.body, True)
            return
        for c in node.children_stmts():
            walk(c, inside_loop)

    walk(func.body, False)
    return out


def auto_parallelize(s: Schedule, target: Target):
    """Bind outer loops to hardware parallelism (pass 3)."""
    for outer in _outermost_loops(s.func):
        try:
            outer = s.find(outer.sid)
        except InvalidSchedule:
            continue  # consumed by an earlier restructuring
        if target.kind == "cpu":
            _parallelize_cpu(s, outer)
        else:
            _parallelize_gpu(s, outer, target)


def _merge_chain(s: Schedule, outer: For,
                 const_only: bool = False) -> str:
    """Merge a perfect rectangular nest under ``outer`` as deep as
    possible; returns the resulting loop sid.

    With ``const_only``, only merge loops of constant extent: merging a
    symbolic-extent inner loop introduces ``// n`` / ``% n`` by a symbol,
    which is outside the (linear) polyhedral model and would block later
    legality proofs.
    """
    sid = outer.sid
    while True:
        loop = s.find(sid)
        inner = only_stmt_of(loop)
        if not isinstance(inner, For):
            return sid
        if const_only and not isinstance(inner.len, IntConst):
            return sid
        try:
            sid = s.merge(sid, inner.sid)
        except InvalidSchedule:
            return sid


def _parallelize_cpu(s: Schedule, outer: For):
    sid = outer.sid
    try:
        s.parallelize(sid, "openmp")
        return
    except InvalidSchedule:
        pass
    # the outer loop carries a dependence: try one level further in
    loop = s.find(sid)
    inner = only_stmt_of(loop)
    if isinstance(inner, For):
        try:
            s.parallelize(inner.sid, "openmp")
        except InvalidSchedule:
            pass


def _parallelize_gpu(s: Schedule, outer: For, target: Target):
    sid = _merge_chain(s, outer, const_only=True)
    loop = s.find(sid)
    inner = only_stmt_of(loop)
    # Prefer binding an existing 2-level nest directly: outer loop to the
    # grid, inner loop to the block (keeps all indices affine).
    if isinstance(inner, For):
        probe = s.fork()
        try:
            probe.parallelize(sid, "cuda.blockIdx.x")
            probe.parallelize(inner.sid, "cuda.threadIdx.x")
            s.parallelize(sid, "cuda.blockIdx.x")
            s.parallelize(inner.sid, "cuda.threadIdx.x")
            return
        except InvalidSchedule:
            pass
    # Otherwise tile the (possibly merged) loop into (blocks, threads).
    try:
        blk, thr = s.split(sid, factor=target.block_size)
    except InvalidSchedule:
        return
    try:
        s.parallelize(blk, "cuda.blockIdx.x")
        s.parallelize(thr, "cuda.threadIdx.x")
    except InvalidSchedule:
        pass  # a carried dependence: stays a sequential host loop


def auto_mem_type(s: Schedule, target: Target):
    """Move tensors toward the processor (pass 4): registers over
    scratchpad over main memory."""
    if target.kind != "gpu":
        return
    from ..schedule.common import path_to

    for vd in collect_stmts(s.func.body,
                            lambda x: isinstance(x, VarDef)):
        if vd.atype.value != "cache":
            continue
        size = 1
        const = True
        for d in vd.shape:
            if isinstance(d, IntConst):
                size *= d.val
            else:
                const = False
                break
        if not const:
            continue
        try:
            path = path_to(s.func.body, vd.sid)
        except InvalidSchedule:
            continue
        kinds = {l.property.parallel for l in path
                 if isinstance(l, For) and l.property.parallel}
        in_thread = any(k and k.startswith("cuda.threadIdx")
                        for k in kinds)
        in_block = any(k and k.startswith("cuda.blockIdx")
                       for k in kinds)
        try:
            if in_thread and size <= target.max_local_elems:
                s.set_mtype(vd.name, "gpu/local")
            elif in_block and size <= target.max_shared_elems:
                s.set_mtype(vd.name, "gpu/shared")
        except InvalidSchedule:  # pragma: no cover - defensive
            continue


def auto_use_lib(s: Schedule):
    """Replace recognised compute-intensive nests with library calls
    (pass 5). Loops already inside parallel regions stay as device code:
    a per-thread library call is not a library call."""
    from ..schedule.common import loops_on_path

    for l in collect_stmts(s.func.body, lambda x: isinstance(x, For)):
        try:
            if any(p.property.parallel
                   for p in loops_on_path(s.func.body, l.sid)):
                continue
            s.as_lib(l.sid)
        except InvalidSchedule:
            continue


def auto_unroll(s: Schedule, target: Target):
    """Unroll very short loops (pass 6)."""
    changed = True
    while changed:
        changed = False
        for l in collect_stmts(s.func.body, lambda x: isinstance(x, For)):
            if not (isinstance(l.begin, IntConst)
                    and isinstance(l.end, IntConst)):
                continue
            trip = l.end.val - l.begin.val
            if not (0 < trip <= target.unroll_limit):
                continue
            if l.property.parallel or l.property.vectorize:
                continue
            from ..ir import count_nodes

            if count_nodes(l.body) > 60:
                continue
            try:
                s.unroll(l.sid)
                changed = True
                break
            except InvalidSchedule:
                continue

"""A measurement-driven auto-tuner (the reproduction's TVM/Ansor stand-in).

Table 2 of the paper contrasts FreeTensor's one-shot rule-based
auto-transform with TVM's tuning loop (hundreds to thousands of rounds,
seconds per round, because every candidate is compiled and measured). This
module implements that *architecture* over our own schedule space: each
round draws a random schedule (splits, reorders, vectorize/parallelize
markings), compiles it with a real backend, measures it on user-provided
inputs, and keeps the best. The per-round compile+measure cost and the
round count are what the Table-2 reproduction reports.
"""

from __future__ import annotations

import random
import time
from typing import Callable, List, Optional, Tuple

from ..errors import FreeTensorError, InvalidSchedule
from ..ir import For, Func, IntConst, collect_stmts
from ..schedule import Schedule


class TuneResult:
    """Outcome of a tuning session."""

    def __init__(self, best_func: Func, best_time: float,
                 round_times: List[float], measure_times: List[float]):
        self.best_func = best_func
        self.best_time = best_time
        #: wall-clock cost of each tuning round (compile + measure)
        self.round_times = round_times
        #: measured candidate runtimes
        self.measure_times = measure_times

    @property
    def rounds(self) -> int:
        return len(self.round_times)

    @property
    def total_time(self) -> float:
        return sum(self.round_times)

    @property
    def time_per_round(self) -> float:
        return self.total_time / max(1, self.rounds)


class RandomTuner:
    """Random search over the schedule space with real measurements."""

    def __init__(self, program_or_func, make_inputs: Callable[[], tuple],
                 backend: str = "pycode", rounds: int = 64,
                 seed: int = 0, repeats: int = 1,
                 scalars: Optional[dict] = None):
        self.base = Schedule(program_or_func).func
        self.make_inputs = make_inputs
        self.backend = backend
        self.rounds = rounds
        self.rng = random.Random(seed)
        self.repeats = repeats
        self.scalars = scalars or {}

    # -- candidate generation ----------------------------------------------
    def _random_candidate(self) -> Func:
        s = Schedule(self.base)
        n_steps = self.rng.randint(1, 4)
        for _ in range(n_steps):
            self._random_step(s)
        return s.func

    def _random_step(self, s: Schedule):
        loops = s.loops()
        if not loops:
            return
        loop = self.rng.choice(loops)
        move = self.rng.choice(["split", "vectorize", "parallelize",
                                "reorder", "unroll"])
        try:
            if move == "split":
                s.split(loop.sid,
                        factor=self.rng.choice([2, 4, 8, 16, 32, 64]))
            elif move == "vectorize":
                s.vectorize(loop.sid)
            elif move == "parallelize":
                s.parallelize(loop.sid, "openmp")
            elif move == "unroll":
                if isinstance(loop.begin, IntConst) and \
                        isinstance(loop.end, IntConst) and \
                        loop.end.val - loop.begin.val <= 8:
                    s.unroll(loop.sid)
            elif move == "reorder":
                from ..schedule.common import only_stmt_of

                inner = only_stmt_of(loop)
                if isinstance(inner, For):
                    s.reorder([inner.sid, loop.sid])
        except FreeTensorError:
            pass  # illegal move: skip (the tuner samples blindly)

    # -- measurement -------------------------------------------------------------
    def _measure(self, func: Func) -> float:
        from ..runtime.driver import build

        exe = build(func, backend=self.backend)
        inputs = self.make_inputs()
        exe(*inputs, **self.scalars)  # warm-up
        best = float("inf")
        for _ in range(self.repeats):
            t0 = time.perf_counter()
            exe(*inputs, **self.scalars)
            best = min(best, time.perf_counter() - t0)
        return best

    def tune(self) -> TuneResult:
        best_func = self.base
        best_time = float("inf")
        round_times: List[float] = []
        measure_times: List[float] = []
        for _r in range(self.rounds):
            t0 = time.perf_counter()
            cand = self._random_candidate()
            try:
                t = self._measure(cand)
            except FreeTensorError:
                round_times.append(time.perf_counter() - t0)
                continue
            measure_times.append(t)
            if t < best_time:
                best_time, best_func = t, cand
            round_times.append(time.perf_counter() - t0)
        return TuneResult(best_func, best_time, round_times,
                          measure_times)


class EvolutionaryTuner(RandomTuner):
    """Mutation-based search (the Ansor-style strategy the paper lists as
    future work for its auto-scheduler).

    Keeps a small population of the best-measured schedules; each round
    either mutates a surviving candidate (applying one more random
    transformation to it) or explores a fresh random schedule. On the
    same round budget this typically finds better schedules than blind
    random search because good partial schedules are refined rather than
    rediscovered.
    """

    def __init__(self, *args, population: int = 4,
                 explore_prob: float = 0.3, **kwargs):
        super().__init__(*args, **kwargs)
        self.population = population
        self.explore_prob = explore_prob

    def tune(self) -> TuneResult:
        pool: List[Tuple[float, Func]] = []  # (time, func), best first
        round_times: List[float] = []
        measure_times: List[float] = []
        for _r in range(self.rounds):
            t0 = time.perf_counter()
            if not pool or self.rng.random() < self.explore_prob:
                cand = self._random_candidate()
            else:
                _pt, parent = pool[self.rng.randrange(len(pool))]
                s = Schedule(parent)
                self._random_step(s)
                cand = s.func
            try:
                t = self._measure(cand)
            except FreeTensorError:
                round_times.append(time.perf_counter() - t0)
                continue
            measure_times.append(t)
            pool.append((t, cand))
            pool.sort(key=lambda p: p[0])
            del pool[self.population:]
            round_times.append(time.perf_counter() - t0)
        if pool:
            best_time, best_func = pool[0]
        else:  # pragma: no cover - nothing measured
            best_time, best_func = float("inf"), self.base
        return TuneResult(best_func, best_time, round_times,
                          measure_times)

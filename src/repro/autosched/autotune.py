"""A measurement-driven auto-tuner (the reproduction's TVM/Ansor stand-in).

Table 2 of the paper contrasts FreeTensor's one-shot rule-based
auto-transform with TVM's tuning loop (hundreds to thousands of rounds,
seconds per round, because every candidate is compiled and measured). This
module implements that *architecture* over our own schedule space: each
round draws a random schedule (splits, reorders, vectorize/parallelize
markings), compiles it with a real backend, measures it on user-provided
inputs, and keeps the best. The per-round compile+measure cost and the
round count are what the Table-2 reproduction reports.

Candidates pass through a static screening front-end before the expensive
compile+measure step — since PR 8 the
:class:`~repro.autosched.search.screen.CandidateScreen` shared with the
structured searcher (see docs/PERFORMANCE.md, "Cost model & tuner
pruning"): struct-hash dedup, then dominance pruning against the
incumbent best's estimate. ``REPRO_NO_COST_PRUNE=1`` disables the whole
front-end. Skip counts are reported on :class:`TuneResult` and in
``runtime.metrics.tuner_stats()``.

Every tuner also records the **schedule trace** (primitive + args) that
built each candidate, so the winner is reproducible and serializable
without re-searching: ``TuneResult.best_trace`` replays onto a fresh
``Schedule`` of the same program (see ``autosched.search.trace``).

For the structured knob-space searcher with parallel multi-process
measurement, see :class:`repro.autosched.search.StructuredTuner` — it
shares this module's screening front-end and result type.
"""

from __future__ import annotations

import random
import time
from typing import Callable, List, Optional, Tuple

from ..errors import FreeTensorError
from ..ir import For, Func, IntConst
from ..schedule import Schedule
from .search.screen import CandidateScreen
from .search.trace import ScheduleTrace, loop_ref
from .target import default_target


class TuneResult:
    """Outcome of a tuning session."""

    def __init__(self, best_func: Func, best_time: float,
                 round_times: List[float], measure_times: List[float],
                 dedup_skips: int = 0, cost_pruned: int = 0,
                 pruned_funcs: Optional[List[Func]] = None,
                 best_trace: Optional[ScheduleTrace] = None,
                 frontier_skips: int = 0, invalid: int = 0,
                 timeouts: int = 0):
        self.best_func = best_func
        self.best_time = best_time
        #: wall-clock cost of each tuning round (compile + measure, or
        #: just generate + screen for skipped rounds)
        self.round_times = round_times
        #: measured candidate runtimes
        self.measure_times = measure_times
        #: rounds skipped because the candidate was a structural repeat
        self.dedup_skips = dedup_skips
        #: rounds skipped because the incumbent's estimate dominated
        self.cost_pruned = cost_pruned
        #: the pruned candidates themselves (only with ``keep_pruned``)
        self.pruned_funcs = pruned_funcs if pruned_funcs is not None \
            else []
        #: replayable schedule trace of the winner (None when the winner
        #: is the unscheduled base)
        self.best_trace = best_trace
        #: candidates that survived screening but ranked below the
        #: structured searcher's measurement top-k
        self.frontier_skips = frontier_skips
        #: knob assignments that failed to realize into a schedule
        self.invalid = invalid
        #: measurements killed on the worker-pool deadline
        self.timeouts = timeouts

    @property
    def rounds(self) -> int:
        return len(self.round_times)

    @property
    def measured(self) -> int:
        """Rounds that actually compiled and measured a candidate."""
        return len(self.measure_times)

    @property
    def total_time(self) -> float:
        return sum(self.round_times)

    @property
    def time_per_round(self) -> float:
        return self.total_time / max(1, self.rounds)


class RandomTuner:
    """Random search over the schedule space with real measurements."""

    def __init__(self, program_or_func, make_inputs: Callable[[], tuple],
                 backend: str = "pycode", rounds: int = 64,
                 seed: int = 0, repeats: int = 1,
                 scalars: Optional[dict] = None,
                 keep_pruned: bool = False):
        self.base = Schedule(program_or_func).func
        self.make_inputs = make_inputs
        self.backend = backend
        self.rounds = rounds
        self.rng = random.Random(seed)
        self.repeats = repeats
        self.scalars = scalars or {}
        self.target = default_target(backend)
        #: collect pruned candidates on the result (for differential
        #: testing of the pruner; costs memory, off by default)
        self.keep_pruned = keep_pruned
        #: shared screening front-end + per-session cached inputs
        self.screen = CandidateScreen(self.base, make_inputs, backend,
                                      self.target, self.scalars)

    # -- candidate generation ----------------------------------------------
    def _random_candidate(self) -> Tuple[Func, ScheduleTrace]:
        s = Schedule(self.base)
        tr = ScheduleTrace()
        n_steps = self.rng.randint(1, 4)
        for _ in range(n_steps):
            self._random_step(s, tr)
        return s.func, tr

    def _random_step(self, s: Schedule, trace: Optional[ScheduleTrace]
                     = None):
        loops = s.loops()
        if not loops:
            return
        loop = self.rng.choice(loops)
        move = self.rng.choice(["split", "vectorize", "parallelize",
                                "reorder", "unroll"])
        try:
            # symbolic refs are computed against the pre-step tree, then
            # recorded only if the primitive succeeds
            if move == "split":
                ref = loop_ref(s, loop.sid)
                factor = self.rng.choice([2, 4, 8, 16, 32, 64])
                s.split(loop.sid, factor=factor)
                if trace is not None:
                    trace.add("split", loop=ref, factor=factor)
            elif move == "vectorize":
                ref = loop_ref(s, loop.sid)
                s.vectorize(loop.sid)
                if trace is not None:
                    trace.add("vectorize", loop=ref)
            elif move == "parallelize":
                ref = loop_ref(s, loop.sid)
                s.parallelize(loop.sid, "openmp")
                if trace is not None:
                    trace.add("parallelize", loop=ref, kind="openmp")
            elif move == "unroll":
                if isinstance(loop.begin, IntConst) and \
                        isinstance(loop.end, IntConst) and \
                        loop.end.val - loop.begin.val <= 8:
                    ref = loop_ref(s, loop.sid)
                    s.unroll(loop.sid)
                    if trace is not None:
                        trace.add("unroll", loop=ref)
            elif move == "reorder":
                from ..schedule.common import only_stmt_of

                inner = only_stmt_of(loop)
                if isinstance(inner, For):
                    refs = [loop_ref(s, inner.sid), loop_ref(s, loop.sid)]
                    s.reorder([inner.sid, loop.sid])
                    if trace is not None:
                        trace.add("reorder", order=refs)
        except FreeTensorError:
            pass  # illegal move: skip (the tuner samples blindly)

    # -- static screening (delegated to the shared front-end) ---------------
    def _reset_screen(self):
        self.screen.reset()

    def _infer_env(self) -> dict:
        return self.screen.scalar_env()

    def _estimate(self, func: Func):
        return self.screen.estimate(func)

    def _screen(self, cand: Func) -> Tuple[str, object]:
        return self.screen.screen(cand)

    # -- measurement -------------------------------------------------------------
    def _measure(self, func: Func) -> float:
        from .search.measure import measure_once

        return measure_once(func, self.backend, self.screen.inputs(),
                            self.scalars, self.repeats)

    def _publish(self, result: TuneResult) -> TuneResult:
        from ..runtime import metrics

        metrics.record_best_trace(
            result.best_trace.as_json()
            if result.best_trace is not None else None)
        return result

    def tune(self) -> TuneResult:
        from ..runtime import metrics

        best_func = self.base
        best_time = float("inf")
        best_trace: Optional[ScheduleTrace] = None
        round_times: List[float] = []
        measure_times: List[float] = []
        pruned_funcs: List[Func] = []
        dedup_skips = cost_pruned = 0
        self._reset_screen()
        for _r in range(self.rounds):
            t0 = time.perf_counter()
            cand, trace = self._random_candidate()
            verdict, est = self._screen(cand)
            if verdict != "measure":
                if verdict == "dedup_skips":
                    dedup_skips += 1
                else:
                    cost_pruned += 1
                    if self.keep_pruned:
                        pruned_funcs.append(cand)
                round_times.append(time.perf_counter() - t0)
                continue
            try:
                t = self._measure(cand)
            except FreeTensorError:
                metrics.record_tuner_candidate("measure_failed")
                round_times.append(time.perf_counter() - t0)
                continue
            metrics.record_tuner_candidate("measured")
            measure_times.append(t)
            if t < best_time:
                best_time, best_func, best_trace = t, cand, trace
                self.screen.accept(est)
            round_times.append(time.perf_counter() - t0)
        return self._publish(TuneResult(
            best_func, best_time, round_times, measure_times,
            dedup_skips=dedup_skips, cost_pruned=cost_pruned,
            pruned_funcs=pruned_funcs, best_trace=best_trace))


class EvolutionaryTuner(RandomTuner):
    """Mutation-based search (the Ansor-style strategy the paper lists as
    future work for its auto-scheduler).

    Keeps a small population of the best-measured schedules; each round
    either mutates a surviving candidate (applying one more random
    transformation to it) or explores a fresh random schedule. On the
    same round budget this typically finds better schedules than blind
    random search because good partial schedules are refined rather than
    rediscovered. Shares the dedup + dominance-pruning front-end of
    :class:`RandomTuner`.
    """

    def __init__(self, *args, population: int = 4,
                 explore_prob: float = 0.3, **kwargs):
        super().__init__(*args, **kwargs)
        self.population = population
        self.explore_prob = explore_prob

    def tune(self) -> TuneResult:
        from ..runtime import metrics

        # (time, func, trace), best first
        pool: List[Tuple[float, Func, ScheduleTrace]] = []
        round_times: List[float] = []
        measure_times: List[float] = []
        pruned_funcs: List[Func] = []
        dedup_skips = cost_pruned = 0
        best_time = float("inf")
        self._reset_screen()
        for _r in range(self.rounds):
            t0 = time.perf_counter()
            if not pool or self.rng.random() < self.explore_prob:
                cand, trace = self._random_candidate()
            else:
                _pt, parent, ptrace = pool[self.rng.randrange(len(pool))]
                s = Schedule(parent)
                trace = ptrace.fork()
                # the constructor re-normalized the parent; record that,
                # or the replayed tree diverges from what the new step's
                # loop indices were computed against
                trace.add("normalize")
                self._random_step(s, trace)
                cand = s.func
            verdict, est = self._screen(cand)
            if verdict != "measure":
                if verdict == "dedup_skips":
                    dedup_skips += 1
                else:
                    cost_pruned += 1
                    if self.keep_pruned:
                        pruned_funcs.append(cand)
                round_times.append(time.perf_counter() - t0)
                continue
            try:
                t = self._measure(cand)
            except FreeTensorError:
                metrics.record_tuner_candidate("measure_failed")
                round_times.append(time.perf_counter() - t0)
                continue
            metrics.record_tuner_candidate("measured")
            measure_times.append(t)
            pool.append((t, cand, trace))
            pool.sort(key=lambda p: p[0])
            del pool[self.population:]
            if t < best_time:
                best_time = t
                self.screen.accept(est)
            round_times.append(time.perf_counter() - t0)
        if pool:
            best_time, best_func, best_trace = pool[0]
        else:  # pragma: no cover - nothing measured
            best_time, best_func, best_trace = float("inf"), self.base, \
                None
        return self._publish(TuneResult(
            best_func, best_time, round_times, measure_times,
            dedup_skips=dedup_skips, cost_pruned=cost_pruned,
            pruned_funcs=pruned_funcs, best_trace=best_trace))

"""A measurement-driven auto-tuner (the reproduction's TVM/Ansor stand-in).

Table 2 of the paper contrasts FreeTensor's one-shot rule-based
auto-transform with TVM's tuning loop (hundreds to thousands of rounds,
seconds per round, because every candidate is compiled and measured). This
module implements that *architecture* over our own schedule space: each
round draws a random schedule (splits, reorders, vectorize/parallelize
markings), compiles it with a real backend, measures it on user-provided
inputs, and keeps the best. The per-round compile+measure cost and the
round count are what the Table-2 reproduction reports.

Candidates pass through a static screening front-end before the expensive
compile+measure step (see docs/PERFORMANCE.md, "Cost model & tuner
pruning"):

1. *dedup* — structurally identical candidates (sid-less
   ``struct_hash``) are measured once; repeats are skipped.
2. *dominance pruning* — each candidate is cost-analyzed
   (``repro.analysis.cost``) and skipped when the incumbent best's
   estimate is at least as good on **every** axis (op counts, sequential
   critical path, stride penalty, footprint). Pruning is deliberately
   conservative: a candidate that is better on *any* axis is still
   measured, so a sound estimate never hides a potential winner.

Set ``REPRO_NO_COST_PRUNE=1`` to disable the whole front-end and restore
the measure-everything behaviour (identical results, more rounds
measured). Skip counts are reported on :class:`TuneResult` and in
``runtime.metrics.tuner_stats()``.
"""

from __future__ import annotations

import os
import random
import time
from typing import Callable, List, Optional, Tuple

from ..errors import FreeTensorError, InvalidSchedule
from ..ir import For, Func, IntConst, collect_stmts
from ..ir.hashing import struct_hash
from ..schedule import Schedule
from .target import default_target


class TuneResult:
    """Outcome of a tuning session."""

    def __init__(self, best_func: Func, best_time: float,
                 round_times: List[float], measure_times: List[float],
                 dedup_skips: int = 0, cost_pruned: int = 0,
                 pruned_funcs: Optional[List[Func]] = None):
        self.best_func = best_func
        self.best_time = best_time
        #: wall-clock cost of each tuning round (compile + measure, or
        #: just generate + screen for skipped rounds)
        self.round_times = round_times
        #: measured candidate runtimes
        self.measure_times = measure_times
        #: rounds skipped because the candidate was a structural repeat
        self.dedup_skips = dedup_skips
        #: rounds skipped because the incumbent's estimate dominated
        self.cost_pruned = cost_pruned
        #: the pruned candidates themselves (only with ``keep_pruned``)
        self.pruned_funcs = pruned_funcs if pruned_funcs is not None \
            else []

    @property
    def rounds(self) -> int:
        return len(self.round_times)

    @property
    def measured(self) -> int:
        """Rounds that actually compiled and measured a candidate."""
        return len(self.measure_times)

    @property
    def total_time(self) -> float:
        return sum(self.round_times)

    @property
    def time_per_round(self) -> float:
        return self.total_time / max(1, self.rounds)


class RandomTuner:
    """Random search over the schedule space with real measurements."""

    def __init__(self, program_or_func, make_inputs: Callable[[], tuple],
                 backend: str = "pycode", rounds: int = 64,
                 seed: int = 0, repeats: int = 1,
                 scalars: Optional[dict] = None,
                 keep_pruned: bool = False):
        self.base = Schedule(program_or_func).func
        self.make_inputs = make_inputs
        self.backend = backend
        self.rounds = rounds
        self.rng = random.Random(seed)
        self.repeats = repeats
        self.scalars = scalars or {}
        self.target = default_target(backend)
        #: collect pruned candidates on the result (for differential
        #: testing of the pruner; costs memory, off by default)
        self.keep_pruned = keep_pruned
        self._scalar_env: Optional[dict] = None

    # -- candidate generation ----------------------------------------------
    def _random_candidate(self) -> Func:
        s = Schedule(self.base)
        n_steps = self.rng.randint(1, 4)
        for _ in range(n_steps):
            self._random_step(s)
        return s.func

    def _random_step(self, s: Schedule):
        loops = s.loops()
        if not loops:
            return
        loop = self.rng.choice(loops)
        move = self.rng.choice(["split", "vectorize", "parallelize",
                                "reorder", "unroll"])
        try:
            if move == "split":
                s.split(loop.sid,
                        factor=self.rng.choice([2, 4, 8, 16, 32, 64]))
            elif move == "vectorize":
                s.vectorize(loop.sid)
            elif move == "parallelize":
                s.parallelize(loop.sid, "openmp")
            elif move == "unroll":
                if isinstance(loop.begin, IntConst) and \
                        isinstance(loop.end, IntConst) and \
                        loop.end.val - loop.begin.val <= 8:
                    s.unroll(loop.sid)
            elif move == "reorder":
                from ..schedule.common import only_stmt_of

                inner = only_stmt_of(loop)
                if isinstance(inner, For):
                    s.reorder([inner.sid, loop.sid])
        except FreeTensorError:
            pass  # illegal move: skip (the tuner samples blindly)

    # -- static screening --------------------------------------------------
    def _reset_screen(self):
        self._screen_on = os.environ.get("REPRO_NO_COST_PRUNE") != "1"
        self._seen: set = set()
        self._best_est = None

    def _infer_env(self) -> dict:
        # Shape variables (loop bounds) are not in ``self.scalars`` —
        # recover them from one materialized input set, the same arrays
        # every measurement binds, so symbolic candidates are compared
        # under their real trip counts.
        if self._scalar_env is None:
            from ..analysis.cost import infer_scalar_env

            try:
                arrays = self.make_inputs()
            except Exception:
                arrays = ()
            self._scalar_env = infer_scalar_env(self.base, arrays,
                                                self.scalars)
        return self._scalar_env

    def _estimate(self, func: Func):
        # Estimate the standard-lowered tree, not the raw candidate: the
        # backend compiles post-make_reduction/simplify IR, and vectorize
        # feasibility (BackendCaps.vec_feasible) depends on those forms.
        # The per-pass cache shares this lowering with the subsequent
        # build of any candidate that survives screening.
        from ..analysis.cost import estimate_cost
        from ..pipeline import lowering_pipeline

        try:
            func = lowering_pipeline().run(func)
        except FreeTensorError:  # pragma: no cover - fails in _measure too
            pass
        return estimate_cost(func, backend=self.backend,
                             target=self.target,
                             scalar_env=self._infer_env())

    def _screen(self, cand: Func) -> Tuple[str, object]:
        """Decide a candidate's fate before compiling it.

        Returns ``(verdict, estimate)`` with verdict one of ``"measure"``
        (go compile+measure), ``"dedup_skips"`` or ``"cost_pruned"``.
        """
        from ..runtime import metrics

        if not self._screen_on:
            return "measure", None
        h = struct_hash(cand)  # sid-less: same structure, same schedule
        if h in self._seen:
            metrics.record_tuner_candidate("dedup_skips")
            return "dedup_skips", None
        self._seen.add(h)
        est = self._estimate(cand)
        if self._best_est is not None \
                and self._best_est.dominates_or_equal(est):
            metrics.record_tuner_candidate("cost_pruned")
            return "cost_pruned", est
        return "measure", est

    # -- measurement -------------------------------------------------------------
    def _measure(self, func: Func) -> float:
        from ..runtime.driver import build

        exe = build(func, backend=self.backend)
        inputs = self.make_inputs()
        exe(*inputs, **self.scalars)  # warm-up
        best = float("inf")
        for _ in range(self.repeats):
            t0 = time.perf_counter()
            exe(*inputs, **self.scalars)
            best = min(best, time.perf_counter() - t0)
        return best

    def tune(self) -> TuneResult:
        from ..runtime import metrics

        best_func = self.base
        best_time = float("inf")
        round_times: List[float] = []
        measure_times: List[float] = []
        pruned_funcs: List[Func] = []
        dedup_skips = cost_pruned = 0
        self._reset_screen()
        for _r in range(self.rounds):
            t0 = time.perf_counter()
            cand = self._random_candidate()
            verdict, est = self._screen(cand)
            if verdict != "measure":
                if verdict == "dedup_skips":
                    dedup_skips += 1
                else:
                    cost_pruned += 1
                    if self.keep_pruned:
                        pruned_funcs.append(cand)
                round_times.append(time.perf_counter() - t0)
                continue
            try:
                t = self._measure(cand)
            except FreeTensorError:
                metrics.record_tuner_candidate("measure_failed")
                round_times.append(time.perf_counter() - t0)
                continue
            metrics.record_tuner_candidate("measured")
            measure_times.append(t)
            if t < best_time:
                best_time, best_func = t, cand
                if est is not None:
                    self._best_est = est
            round_times.append(time.perf_counter() - t0)
        return TuneResult(best_func, best_time, round_times,
                          measure_times, dedup_skips=dedup_skips,
                          cost_pruned=cost_pruned,
                          pruned_funcs=pruned_funcs)


class EvolutionaryTuner(RandomTuner):
    """Mutation-based search (the Ansor-style strategy the paper lists as
    future work for its auto-scheduler).

    Keeps a small population of the best-measured schedules; each round
    either mutates a surviving candidate (applying one more random
    transformation to it) or explores a fresh random schedule. On the
    same round budget this typically finds better schedules than blind
    random search because good partial schedules are refined rather than
    rediscovered. Shares the dedup + dominance-pruning front-end of
    :class:`RandomTuner`.
    """

    def __init__(self, *args, population: int = 4,
                 explore_prob: float = 0.3, **kwargs):
        super().__init__(*args, **kwargs)
        self.population = population
        self.explore_prob = explore_prob

    def tune(self) -> TuneResult:
        from ..runtime import metrics

        pool: List[Tuple[float, Func]] = []  # (time, func), best first
        round_times: List[float] = []
        measure_times: List[float] = []
        pruned_funcs: List[Func] = []
        dedup_skips = cost_pruned = 0
        best_time = float("inf")
        self._reset_screen()
        for _r in range(self.rounds):
            t0 = time.perf_counter()
            if not pool or self.rng.random() < self.explore_prob:
                cand = self._random_candidate()
            else:
                _pt, parent = pool[self.rng.randrange(len(pool))]
                s = Schedule(parent)
                self._random_step(s)
                cand = s.func
            verdict, est = self._screen(cand)
            if verdict != "measure":
                if verdict == "dedup_skips":
                    dedup_skips += 1
                else:
                    cost_pruned += 1
                    if self.keep_pruned:
                        pruned_funcs.append(cand)
                round_times.append(time.perf_counter() - t0)
                continue
            try:
                t = self._measure(cand)
            except FreeTensorError:
                metrics.record_tuner_candidate("measure_failed")
                round_times.append(time.perf_counter() - t0)
                continue
            metrics.record_tuner_candidate("measured")
            measure_times.append(t)
            pool.append((t, cand))
            pool.sort(key=lambda p: p[0])
            del pool[self.population:]
            if t < best_time:
                best_time = t
                if est is not None:
                    self._best_est = est
            round_times.append(time.perf_counter() - t0)
        if pool:
            best_time, best_func = pool[0]
        else:  # pragma: no cover - nothing measured
            best_time, best_func = float("inf"), self.base
        return TuneResult(best_func, best_time, round_times,
                          measure_times, dedup_skips=dedup_skips,
                          cost_pruned=cost_pruned,
                          pruned_funcs=pruned_funcs)

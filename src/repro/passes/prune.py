"""Prune provably-taken/untaken branches using the polyhedral engine.

Walks the tree carrying the affine iteration context (loop bounds and
enclosing conditions) as a *disjunction of conjunctions* — ``min``/``max``
in loop bounds (as produced by ``separate_tail``'s clamped cuts) expand to
case alternatives. An ``If`` whose condition must hold (or must fail) under
every context alternative collapses to a single branch.
"""

from __future__ import annotations

from typing import List, Optional

from ..ir import Assert, For, Func, If, Max, Min, Stmt, StmtSeq, VarDef
from ..ir import expr as E
from ..polyhedral import Affine, AffineBuilder, LinCon, NonAffine, is_feasible

#: blowup guard for the disjunctive context
_MAX_ALTS = 16

Ctx = List[List[LinCon]]  # disjunction of conjunctions


def _affine(e) -> Optional[tuple]:
    b = AffineBuilder()
    try:
        return b.build(e), b.extra_cons
    except NonAffine:
        return None


def _upper_alts(it: Affine, e) -> Optional[Ctx]:
    """Alternatives for ``it < e`` (Min joins, Max splits)."""
    if isinstance(e, Min):
        l = _upper_alts(it, e.lhs)
        r = _upper_alts(it, e.rhs)
        if l is None or r is None:
            return None
        return [a + b for a in l for b in r]
    if isinstance(e, Max):
        l = _upper_alts(it, e.lhs)
        r = _upper_alts(it, e.rhs)
        if l is None or r is None:
            return None
        return l + r
    res = _affine(e)
    if res is None:
        return [[]]
    a, extra = res
    return [[LinCon.lt(it, a)] + extra]


def _lower_alts(it: Affine, e) -> Optional[Ctx]:
    """Alternatives for ``it >= e`` (Max joins, Min splits)."""
    if isinstance(e, Max):
        l = _lower_alts(it, e.lhs)
        r = _lower_alts(it, e.rhs)
        if l is None or r is None:
            return None
        return [a + b for a in l for b in r]
    if isinstance(e, Min):
        l = _lower_alts(it, e.lhs)
        r = _lower_alts(it, e.rhs)
        if l is None or r is None:
            return None
        return l + r
    res = _affine(e)
    if res is None:
        return [[]]
    a, extra = res
    return [[LinCon.ge(it, a)] + extra]


def _combine(ctx: Ctx, alts: Optional[Ctx]) -> Ctx:
    if not alts:
        return ctx
    out = [c + a for c in ctx for a in alts]
    if len(out) > _MAX_ALTS:
        return ctx  # give up on refinement, keep the coarser context
    return out


def _cond_alts(cond, negate: bool) -> Optional[Ctx]:
    builder = AffineBuilder()
    try:
        alts = builder.build_condition(cond, negate)
    except NonAffine:
        return None
    return [alt + builder.extra_cons for alt in alts]


def _always(cond, ctx: Ctx, negate: bool) -> bool:
    """Whether ``cond`` (or its negation) holds in every context case."""
    neg = _cond_alts(cond, not negate)
    if neg is None:
        return False
    return all(not is_feasible(c + alt) for c in ctx for alt in neg)


def prune_branches(node):
    """Remove branches decided by loop ranges and enclosing conditions."""

    def walk(s: Stmt, ctx: Ctx) -> Stmt:
        if isinstance(s, StmtSeq):
            out = StmtSeq([walk(c, ctx) for c in s.stmts])
            out.sid, out.label = s.sid, s.label
            return out
        if isinstance(s, VarDef):
            nd = VarDef(s.name, s.shape, s.dtype, s.atype, s.mtype,
                        walk(s.body, ctx), s.pinned)
            nd.sid, nd.label, nd.init_data = s.sid, s.label, s.init_data
            return nd
        if isinstance(s, For):
            it = Affine.var(s.iter_var)
            inner = _combine(ctx, _lower_alts(it, s.begin))
            inner = _combine(inner, _upper_alts(it, s.end))
            out = For(s.iter_var, s.begin, s.end, walk(s.body, inner),
                      s.property.clone())
            out.sid, out.label = s.sid, s.label
            return out
        if isinstance(s, If):
            if _always(s.cond, ctx, negate=False):
                return walk(s.then_case, ctx)
            if _always(s.cond, ctx, negate=True):
                if s.else_case is None:
                    return StmtSeq([])
                return walk(s.else_case, ctx)
            then_ctx = _combine(ctx, _single(_cond_alts(s.cond, False)))
            else_ctx = _combine(ctx, _single(_cond_alts(s.cond, True)))
            out = If(s.cond, walk(s.then_case, then_ctx),
                     walk(s.else_case, else_ctx)
                     if s.else_case is not None else None)
            out.sid, out.label = s.sid, s.label
            return out
        if isinstance(s, Assert):
            inner = _combine(ctx, _single(_cond_alts(s.cond, False)))
            out = Assert(s.cond, walk(s.body, inner))
            out.sid, out.label = s.sid, s.label
            return out
        return s

    def _single(alts: Optional[Ctx]) -> Optional[Ctx]:
        # Only conjunctive refinements strengthen the context safely here.
        if alts is not None and len(alts) == 1:
            return alts
        return None

    if isinstance(node, Func):
        return Func(node.name, list(node.params), list(node.returns),
                    walk(node.body, [[]]), list(node.scalar_params))
    return walk(node, [[]])

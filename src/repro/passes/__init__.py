"""Lowering passes applied between staging and code generation.

The individual transformations live here; the *sequence* they run in is
owned by the pass manager (``repro.pipeline``), which adds per-pass
caching, timing and instrumentation. ``lower()`` remains the stable
convenience entry for "run the standard lowering pipeline".
"""

from .cleanup import remove_dead_writes
from .flatten import flatten_stmt_seq
from .make_reduction import make_reduction
from .prune import prune_branches
from .simplify_pass import simplify, simplify_expr


def clear_lower_cache():
    """Drop cached lowering results.

    Backwards-compatible shim: the old whole-``lower()`` memo was
    subsumed by the pass manager's per-pass cache, so this now clears
    that (``repro.pipeline.clear_pass_cache``).
    """
    from ..pipeline import clear_pass_cache

    clear_pass_cache()


def lower(func):
    """The standard lowering pipeline (no scheduling decisions):
    flatten statement sequences, canonicalise self-updates into
    reductions, fold/simplify expressions and control flow, and drop dead
    writes.

    Equivalent to ``repro.pipeline.lowering_pipeline().run(func)`` —
    results are served pass-by-pass from the content-addressed per-pass
    cache (disable with ``REPRO_NO_PASS_CACHE=1`` or its older alias
    ``REPRO_NO_LOWER_CACHE=1``).
    """
    from ..pipeline import lowering_pipeline

    return lowering_pipeline().run(func)


__all__ = [
    "clear_lower_cache", "flatten_stmt_seq", "make_reduction",
    "prune_branches", "remove_dead_writes", "simplify", "simplify_expr",
    "lower",
]

"""Lowering passes applied between staging and code generation."""

from .cleanup import remove_dead_writes
from .flatten import flatten_stmt_seq
from .make_reduction import make_reduction
from .prune import prune_branches
from .simplify_pass import simplify, simplify_expr


def lower(func):
    """The standard lowering pipeline (no scheduling decisions):
    flatten statement sequences, canonicalise self-updates into
    reductions, fold/simplify expressions and control flow, and drop dead
    writes."""
    func = flatten_stmt_seq(func)
    func = make_reduction(func)
    func = simplify(func)
    func = remove_dead_writes(func)
    return func


__all__ = [
    "flatten_stmt_seq", "make_reduction", "prune_branches",
    "remove_dead_writes", "simplify", "simplify_expr", "lower",
]

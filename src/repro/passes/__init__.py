"""Lowering passes applied between staging and code generation."""

import os

from .cleanup import remove_dead_writes
from .flatten import flatten_stmt_seq
from .make_reduction import make_reduction
from .prune import prune_branches
from .simplify_pass import simplify, simplify_expr

#: memo of lowered functions keyed by sid-inclusive content hash. Lowering
#: is deterministic and sid-preserving, and lowered trees are treated as
#: immutable by every consumer (schedules rebuild, never mutate in place),
#: so sharing the output across callers is safe. The sid-inclusive key
#: keeps statement addressing identical to a fresh lowering.
_LOWER_MEMO = {}
_LOWER_MEMO_LIMIT = 512


def clear_lower_cache():
    """Drop the lowering memo."""
    _LOWER_MEMO.clear()


def lower(func):
    """The standard lowering pipeline (no scheduling decisions):
    flatten statement sequences, canonicalise self-updates into
    reductions, fold/simplify expressions and control flow, and drop dead
    writes."""
    key = None
    if os.environ.get("REPRO_NO_LOWER_CACHE", "") != "1":
        from ..ir.hashing import struct_hash

        key = struct_hash(func, include_sids=True)
        hit = _LOWER_MEMO.get(key)
        if hit is not None:
            return hit
    func = flatten_stmt_seq(func)
    func = make_reduction(func)
    func = simplify(func)
    func = remove_dead_writes(func)
    if key is not None:
        if len(_LOWER_MEMO) >= _LOWER_MEMO_LIMIT:  # pragma: no cover
            _LOWER_MEMO.clear()
        _LOWER_MEMO[key] = func
    return func


__all__ = [
    "clear_lower_cache", "flatten_stmt_seq", "make_reduction",
    "prune_branches", "remove_dead_writes", "simplify", "simplify_expr",
    "lower",
]

"""Cleanup passes: dead-write removal and unused-variable elimination.

These run after scheduling and after automatic differentiation, where
transformations routinely leave behind writes to tensors nobody reads.
"""

from __future__ import annotations

from typing import Set

from ..ir import (AccessType, Func, Mutator, ReduceTo, StmtSeq, Store,
                  VarDef, collect_stmts, reads_of, writes_of)


def _live_tensors(func) -> Set[str]:
    """Tensors whose value can reach an output (transitively)."""
    defs = {d.name: d
            for d in collect_stmts(func.body,
                                   lambda s: isinstance(s, VarDef))}
    reads = reads_of(func.body)
    writes = writes_of(func.body)

    # writer statements of y read some tensors: edge x -> y
    producers = {}
    for name, stmts in writes.items():
        srcs = set()
        for st in stmts:
            if isinstance(st, (Store, ReduceTo)):
                for e in st.child_exprs():
                    srcs.update(_loads_in(e))
            else:  # LibCall
                srcs.update(getattr(st, "args", ()))
        producers[name] = srcs

    live = {n for n, d in defs.items()
            if d.atype in (AccessType.OUTPUT, AccessType.INOUT)}
    live |= set(func.returns)
    # any tensor read by an index expression of a live tensor's
    # reader/writer also matters; approximate by transitive closure over
    # producers plus tensors read anywhere by live consumers
    frontier = list(live)
    while frontier:
        t = frontier.pop()
        for src in producers.get(t, ()):
            if src not in live:
                live.add(src)
                frontier.append(src)
    # tensors read by statements that also read live tensors via indices
    # are already covered: Store indices are in child_exprs above.
    # Finally, anything read inside loop bounds / conditions stays live.
    for name in _control_reads(func):
        if name not in live:
            live.add(name)
            for src in producers.get(name, ()):
                if src not in live:
                    live.add(src)
    return live


def _loads_in(e):
    from ..ir import Load

    if isinstance(e, Load):
        yield e.var
    for c in e.children():
        yield from _loads_in(c)


def _control_reads(func):
    """Tensors read by control flow (loop bounds, conditions, shapes)."""
    from ..ir import Assert, For, If

    out = set()

    def walk(s):
        if isinstance(s, For):
            for e in (s.begin, s.end):
                out.update(_loads_in(e))
        if isinstance(s, (If, Assert)):
            out.update(_loads_in(s.cond))
        if isinstance(s, VarDef):
            for e in s.shape:
                out.update(_loads_in(e))
        for c in s.children_stmts():
            walk(c)

    walk(func.body)
    return out


class _DropWrites(Mutator):

    def __init__(self, dead: Set[str]):
        self.dead = dead

    def mutate_Store(self, s: Store):
        if s.var in self.dead:
            return StmtSeq([])
        return self.generic_mutate_stmt(s)

    def mutate_ReduceTo(self, s: ReduceTo):
        if s.var in self.dead:
            return StmtSeq([])
        return self.generic_mutate_stmt(s)

    def mutate_VarDef(self, s: VarDef):
        if s.name in self.dead and s.atype is AccessType.CACHE:
            return self.mutate_stmt(s.body)
        return self.generic_mutate_stmt(s)


def remove_dead_writes(func: Func) -> Func:
    """Drop writes to (and definitions of) tensors that cannot reach an
    output; iterates to a fixed point."""
    for _ in range(10):
        live = _live_tensors(func)
        defs = {d.name: d
                for d in collect_stmts(func.body,
                                       lambda s: isinstance(s, VarDef))}
        dead = {n for n, d in defs.items()
                if n not in live and d.atype is AccessType.CACHE}
        if not dead:
            return func
        func = _DropWrites(dead)(func)
        from .flatten import flatten_stmt_seq

        func = flatten_stmt_seq(func)
    return func

"""Flatten nested statement sequences and drop empty ones."""

from __future__ import annotations

from ..ir import Mutator, Stmt, StmtSeq


def _is_empty(s: Stmt) -> bool:
    return isinstance(s, StmtSeq) and not s.stmts


class _Flatten(Mutator):

    def mutate_StmtSeq(self, s: StmtSeq) -> Stmt:
        flat = []
        for c in s.stmts:
            c = self.mutate_stmt(c)
            if _is_empty(c):
                continue
            if isinstance(c, StmtSeq) and c.label is None:
                flat.extend(c.stmts)
            else:
                flat.append(c)
        if len(flat) == 1 and s.label is None:
            return flat[0]
        out = StmtSeq(flat)
        out.sid, out.label = s.sid, s.label
        return out


def flatten_stmt_seq(node):
    """Flatten nested unlabelled StmtSeq nodes; drop empty sequences."""
    return _Flatten()(node)

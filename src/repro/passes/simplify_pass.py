"""Rebuild expressions through folding constructors and prune dead control
flow (constant conditions, empty or single-iteration loops)."""

from __future__ import annotations

from ..ir import (BoolConst, Expr, If, IntConst, For, Mutator, Stmt, StmtSeq,
                  makeAdd, makeCast, makeCmp, makeFloorDiv, makeIfExpr,
                  makeIntrinsic, makeLAnd, makeLNot, makeLOr, makeMax,
                  makeMin, makeMod, makeMul, makeRealDiv, makeSub, substitute)
from ..ir import expr as E

_REBUILD_BIN = {
    E.Add: makeAdd,
    E.Sub: makeSub,
    E.Mul: makeMul,
    E.RealDiv: makeRealDiv,
    E.FloorDiv: makeFloorDiv,
    E.Mod: makeMod,
    E.Min: makeMin,
    E.Max: makeMax,
    E.LAnd: makeLAnd,
    E.LOr: makeLOr,
}


def _linearize(e: Expr):
    """Decompose an integer expression into (const, {atom_key: (coeff,
    atom_expr)}); atoms are maximal non-linear subtrees."""
    if isinstance(e, E.IntConst):
        return e.val, {}
    if isinstance(e, E.Add):
        c1, t1 = _linearize(e.lhs)
        c2, t2 = _linearize(e.rhs)
        return c1 + c2, _merge_terms(t1, t2, 1)
    if isinstance(e, E.Sub):
        c1, t1 = _linearize(e.lhs)
        c2, t2 = _linearize(e.rhs)
        return c1 - c2, _merge_terms(t1, t2, -1)
    if isinstance(e, E.Mul):
        if isinstance(e.lhs, E.IntConst):
            c, t = _linearize(e.rhs)
            k = e.lhs.val
            return c * k, {kk: (co * k, a) for kk, (co, a) in t.items()}
        if isinstance(e.rhs, E.IntConst):
            c, t = _linearize(e.lhs)
            k = e.rhs.val
            return c * k, {kk: (co * k, a) for kk, (co, a) in t.items()}
    return 0, {e.key(): (1, e)}


def _merge_terms(t1, t2, sign):
    out = dict(t1)
    for k, (c, a) in t2.items():
        c0 = out.get(k, (0, a))[0]
        out[k] = (c0 + sign * c, a)
    return out


def _relinearize(e: Expr) -> Expr:
    """Canonicalise integer +/-/const* chains, cancelling equal terms."""
    if not e.dtype.is_int or not isinstance(e, (E.Add, E.Sub, E.Mul)):
        return e
    const, terms = _linearize(e)
    parts = [(c, a) for c, a in
             (terms[k] for k in sorted(terms, key=repr)) if c != 0]
    if len(parts) + (const != 0) >= _size_of(e):
        return e  # no simplification achieved; keep user structure
    out = None
    for c, a in parts:
        piece = a if c == 1 else makeMul(wrap_int(c, e), a)
        if c < 0 and out is not None:
            out = makeSub(out, a if c == -1 else
                          makeMul(wrap_int(-c, e), a))
        else:
            out = piece if out is None else makeAdd(out, piece)
    if out is None:
        return wrap_int(const, e)
    if const > 0:
        out = makeAdd(out, wrap_int(const, e))
    elif const < 0:
        out = makeSub(out, wrap_int(-const, e))
    return out


def wrap_int(v, like: Expr):
    from ..ir import wrap_like

    return wrap_like(v, like.dtype)


def _size_of(e: Expr) -> int:
    n = 1
    for c in e.children():
        n += _size_of(c)
    return n


class _Simplify(Mutator):
    """One bottom-up folding sweep over expressions and control flow."""

    def mutate_expr(self, e: Expr) -> Expr:
        cls = type(e)
        if cls in _REBUILD_BIN:
            out = _REBUILD_BIN[cls](self.mutate_expr(e.lhs),
                                    self.mutate_expr(e.rhs))
            return _relinearize(out)
        if isinstance(e, E.CmpOp):
            return makeCmp(cls, self.mutate_expr(e.lhs),
                           self.mutate_expr(e.rhs))
        if isinstance(e, E.LNot):
            return makeLNot(self.mutate_expr(e.operand))
        if isinstance(e, E.IfExpr):
            return makeIfExpr(self.mutate_expr(e.cond),
                              self.mutate_expr(e.then_case),
                              self.mutate_expr(e.else_case))
        if isinstance(e, E.Cast):
            return makeCast(self.mutate_expr(e.operand), e.dtype)
        if isinstance(e, E.Intrinsic):
            return makeIntrinsic(e.name,
                                 [self.mutate_expr(a) for a in e.args],
                                 e.dtype)
        return super().generic_mutate_expr(e)

    def mutate_If(self, s: If) -> Stmt:
        cond = self.mutate_expr(s.cond)
        if isinstance(cond, BoolConst):
            if cond.val:
                return self.mutate_stmt(s.then_case)
            if s.else_case is not None:
                return self.mutate_stmt(s.else_case)
            return StmtSeq([])
        else_case = (self.mutate_stmt(s.else_case)
                     if s.else_case is not None else None)
        if else_case is not None and isinstance(else_case, StmtSeq) \
                and not else_case.stmts:
            else_case = None
        out = If(cond, self.mutate_stmt(s.then_case), else_case)
        out.sid, out.label = s.sid, s.label
        return out

    def mutate_For(self, s: For) -> Stmt:
        begin = self.mutate_expr(s.begin)
        end = self.mutate_expr(s.end)
        if isinstance(begin, IntConst) and isinstance(end, IntConst):
            if end.val <= begin.val:
                return StmtSeq([])
            if end.val == begin.val + 1:
                body = self.mutate_stmt(s.body)
                return self.mutate_stmt(
                    substitute(body, {s.iter_var: begin}))
        body = self.mutate_stmt(s.body)
        if isinstance(body, StmtSeq) and not body.stmts:
            return StmtSeq([])
        out = For(s.iter_var, begin, end, body, s.property.clone())
        out.sid, out.label = s.sid, s.label
        return out


def simplify_expr(e: Expr) -> Expr:
    """Fold and canonicalise a single expression."""
    return _Simplify().mutate_expr(e)


def simplify(node):
    """Iterate folding sweeps to a fixed point (bounded)."""
    from ..ir import count_nodes

    for _round in range(10):
        before = count_nodes(node)
        node = _Simplify()(node)
        from .flatten import flatten_stmt_seq

        node = flatten_stmt_seq(node)
        if count_nodes(node) == before:
            break
    return node

"""Recognise ``x[i] = x[i] op e`` stores as ReduceTo nodes.

The ReduceTo form is what lets dependence analysis exploit commutativity
(paper Fig. 12(c)), parallel backends use atomics, and AD treat
accumulations without versioning the accumulator.
"""

from __future__ import annotations

from ..ir import (Load, Max, Min, Mutator, ReduceTo, Store, same_expr)
from ..ir import expr as E


def _self_load(store: Store, e) -> bool:
    return (isinstance(e, Load) and e.var == store.var
            and len(e.indices) == len(store.indices)
            and all(same_expr(a, b)
                    for a, b in zip(e.indices, store.indices)))


class _MakeReduction(Mutator):

    def mutate_Store(self, s: Store):
        idx = [self.mutate_expr(i) for i in s.indices]
        expr = self.mutate_expr(s.expr)
        s2 = Store(s.var, idx, expr)
        s2.sid, s2.label = s.sid, s.label
        red = self._recognise(s2)
        return red if red is not None else s2

    @staticmethod
    def _recognise(s: Store):
        e = s.expr
        # x = x + v  |  x = v + x
        if isinstance(e, E.Add):
            for a, b in ((e.lhs, e.rhs), (e.rhs, e.lhs)):
                if _self_load(s, a) and not _reads(b, s.var):
                    out = ReduceTo(s.var, s.indices, "+", b)
                    out.sid, out.label = s.sid, s.label
                    return out
        # x = x - v
        if isinstance(e, E.Sub) and _self_load(s, e.lhs) \
                and not _reads(e.rhs, s.var):
            out = ReduceTo(s.var, s.indices, "+", -e.rhs)
            out.sid, out.label = s.sid, s.label
            return out
        # x = x * v | x = v * x
        if isinstance(e, E.Mul):
            for a, b in ((e.lhs, e.rhs), (e.rhs, e.lhs)):
                if _self_load(s, a) and not _reads(b, s.var):
                    out = ReduceTo(s.var, s.indices, "*", b)
                    out.sid, out.label = s.sid, s.label
                    return out
        # x = min(x, v) / max(x, v)
        if isinstance(e, (Min, Max)):
            op = "min" if isinstance(e, Min) else "max"
            for a, b in ((e.lhs, e.rhs), (e.rhs, e.lhs)):
                if _self_load(s, a) and not _reads(b, s.var):
                    out = ReduceTo(s.var, s.indices, op, b)
                    out.sid, out.label = s.sid, s.label
                    return out
        return None


def _reads(e, name: str) -> bool:
    if isinstance(e, Load) and e.var == name:
        return True
    return any(_reads(c, name) for c in e.children())


def make_reduction(node):
    """Convert self-referencing stores into ReduceTo where possible."""
    return _MakeReduction()(node)

"""libop: a tensor operator library written in the DSL itself (paper 3.2).

Every operator here is an ``@inline`` helper built from fine-grained loops
and dimension-free recursion; calling one from a ``@transform``-ed function
fully inlines it into the caller's IR, where it is optimised *together
with* the surrounding program — unlike an operator-based framework where
each call is an opaque kernel.

Out-of-place operators (``add``, ``mul``, ``softmax``...) return a fresh
tensor; in-place variants (``add_to``...) write into a destination.
"""

from ..frontend.staging import empty, inline, zeros
from ..frontend.tensor import TensorRef, as_expr
from ..ir import join_dtype

__all__ = [
    "assign", "add", "sub", "mul", "div", "add_to", "sub_to", "mul_to",
    "div_to", "relu", "sigmoid", "tanh", "exp", "abs", "neg", "scale",
    "sum_all", "sum_last", "max_all", "mean_all", "matmul", "matmul_to",
    "softmax", "softmax_to", "transpose2d",
]


def _sub(x, i):
    """Index tensors, broadcast scalars."""
    if isinstance(x, TensorRef) and x.ndim > 0:
        return x[i]
    return x


def _res_dtype(a, b):
    da = a.dtype if isinstance(a, TensorRef) else as_expr(a).dtype
    db = b.dtype if isinstance(b, TensorRef) else as_expr(b).dtype
    return join_dtype(da, db).value


def _shape_of(a, b):
    t = a if isinstance(a, TensorRef) and a.ndim else b
    return t.shape()


# -- elementwise ------------------------------------------------------------


@inline
def assign(y, x):
    """``y[...] = x`` element-wise (dimension-free recursion)."""
    if y.ndim == 0:
        y[...] = x
    else:
        for i in range(y.shape(0)):
            assign(y[i], _sub(x, i))


def _make_binary(op_name, fn):

    @inline
    def op_to(y, a, b):
        if y.ndim == 0:
            y[...] = fn(a, b)
        else:
            for i in range(y.shape(0)):
                op_to(y[i], _sub(a, i), _sub(b, i))

    op_to.__name__ = op_name + "_to"
    op_to.__doc__ = f"In-place element-wise ``y = a {op_name} b``."

    @inline
    def op(a, b):
        y = empty(_shape_of(a, b), _res_dtype(a, b))
        op_to(y, a, b)
        return y

    op.__name__ = op_name
    op.__doc__ = f"Element-wise ``a {op_name} b`` into a fresh tensor."
    return op, op_to


add, add_to = _make_binary("add", lambda a, b: a + b)
sub, sub_to = _make_binary("sub", lambda a, b: a - b)
mul, mul_to = _make_binary("mul", lambda a, b: a * b)
div, div_to = _make_binary("div", lambda a, b: a / b)


def _make_unary(op_name, fn):

    @inline
    def op_to(y, x):
        if y.ndim == 0:
            y[...] = fn(x)
        else:
            for i in range(y.shape(0)):
                op_to(y[i], x[i])

    @inline
    def op(x):
        y = empty(x.shape(), x.dtype.value)
        op_to(y, x)
        return y

    op.__name__ = op_name
    op.__doc__ = f"Element-wise ``{op_name}`` into a fresh tensor."
    return op


def _relu(x):
    from ..frontend.tensor import ft_max

    return ft_max(x, 0.0)


def _sigmoid(x):
    from ..frontend.tensor import sigmoid as sg

    return sg(as_expr(x))


def _tanh(x):
    from ..frontend.tensor import tanh as th

    return th(as_expr(x))


def _exp(x):
    from ..frontend.tensor import exp as ex

    return ex(as_expr(x))


def _abs(x):
    from ..frontend.tensor import ft_abs

    return ft_abs(as_expr(x))


relu = _make_unary("relu", _relu)
sigmoid = _make_unary("sigmoid", _sigmoid)
tanh = _make_unary("tanh", _tanh)
exp = _make_unary("exp", _exp)
abs = _make_unary("abs", _abs)  # noqa: A001 - mirrors the paper's libop
neg = _make_unary("neg", lambda x: -as_expr(x))


@inline
def scale(x, k):
    """``x * k`` for a scalar ``k`` into a fresh tensor."""
    y = empty(x.shape(), x.dtype.value)
    _scale_to(y, x, k)
    return y


@inline
def _scale_to(y, x, k):
    if y.ndim == 0:
        y[...] = x * k
    else:
        for i in range(y.shape(0)):
            _scale_to(y[i], x[i], k)


# -- reductions ---------------------------------------------------------------


@inline
def _sum_into(acc, x):
    if x.ndim == 0:
        acc[...] += x
    else:
        for i in range(x.shape(0)):
            _sum_into(acc, x[i])


@inline
def sum_all(x):
    """Sum of all elements, as a 0-D tensor."""
    acc = zeros((), x.dtype.value)
    _sum_into(acc, x)
    return acc


@inline
def _count(x):
    n = 1
    for d in x.shape():
        n = n * d
    return n


@inline
def mean_all(x):
    """Mean of all elements, as a 0-D tensor."""
    s = sum_all(x)
    y = empty((), "f32")
    y[...] = s / _count(x)
    return y


@inline
def _max_into(acc, x):
    from ..frontend.tensor import ft_max

    if x.ndim == 0:
        acc[...] = ft_max(acc, x)
    else:
        for i in range(x.shape(0)):
            _max_into(acc, x[i])


@inline
def max_all(x):
    """Maximum over all elements, as a 0-D tensor."""
    acc = empty((), x.dtype.value)
    acc[...] = -float("inf")
    _max_into(acc, x)
    return acc


@inline
def sum_last(x):
    """Sum over the last axis (any dimensionality)."""
    if x.ndim == 1:
        return sum_all(x)
    y = empty(x.shape()[:-1], x.dtype.value)
    _sum_last_to(y, x)
    return y


@inline
def _sum_last_to(y, x):
    if x.ndim == 1:
        y[...] = 0.0
        for i in range(x.shape(0)):
            y[...] += x[i]
    else:
        for i in range(x.shape(0)):
            _sum_last_to(y[i], x[i])


# -- matrix multiplication ------------------------------------------------------


@inline
def matmul_to(c, a, b, accumulate=False):
    """``c (+)= a @ b`` for 2-D operands."""
    assert a.ndim == 2 and b.ndim == 2 and c.ndim == 2
    if not accumulate:
        assign(c, 0.0)
    for i in range(a.shape(0)):
        for j in range(b.shape(1)):
            for k in range(a.shape(1)):
                c[i, j] += a[i, k] * b[k, j]


@inline
def matmul(a, b):
    """``a @ b`` into a fresh 2-D tensor."""
    c = empty((a.shape(0), b.shape(1)), _res_dtype(a, b))
    matmul_to(c, a, b)
    return c


@inline
def transpose2d(a):
    """Transpose of a 2-D tensor (fresh storage)."""
    y = empty((a.shape(1), a.shape(0)), a.dtype.value)
    for i in range(a.shape(0)):
        for j in range(a.shape(1)):
            y[j, i] = a[i, j]
    return y


# -- softmax ----------------------------------------------------------------------


@inline
def softmax_to(y, x):
    """Numerically-stable softmax over the last axis, into ``y``."""
    from ..frontend.tensor import ft_max
    from ..frontend.tensor import exp as fexp

    if x.ndim == 1:
        mx = empty((), x.dtype.value)
        mx[...] = -float("inf")
        for i in range(x.shape(0)):
            mx[...] = ft_max(mx, x[i])
        # exponentials go through a scratch tensor (not in-place in y):
        # every tensor keeps one live version per instance, which is what
        # both the dependence analysis and AD versioning like to see
        e = empty((x.shape(0),), x.dtype.value)
        s = zeros((), x.dtype.value)
        for i in range(x.shape(0)):
            e[i] = fexp(x[i] - mx)
            s[...] += e[i]
        for i in range(x.shape(0)):
            y[i] = e[i] / s
    else:
        for i in range(x.shape(0)):
            softmax_to(y[i], x[i])


@inline
def softmax(x):
    """Numerically-stable softmax over the last axis (fresh tensor)."""
    y = empty(x.shape(), x.dtype.value)
    softmax_to(y, x)
    return y

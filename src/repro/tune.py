"""CLI: ``python -m repro.tune <workload> [...]``.

Runs a tuning session on one of the paper workloads and prints the
winner: best measured time, screening/pool counters, and the replayable
schedule trace. The default tuner is the structured knob-space searcher
(``repro.autosched.search.StructuredTuner``); ``--tuner random`` /
``--tuner evolutionary`` select the PR 7 baselines.

Examples::

    PYTHONPATH=src python -m repro.tune gat --rounds 24 --workers 2
    PYTHONPATH=src python -m repro.tune longformer --tuner evolutionary
    PYTHONPATH=src python -m repro.tune softras --json --trace out.json

Exits non-zero if the session measured nothing (every candidate failed).
"""

from __future__ import annotations

import argparse
import json
import sys


def _workload_inputs(mod, func):
    """(args, scalars) for a workload: program params come from the
    module's default ``make_data()`` dict by name; int-valued entries
    (e.g. longformer's window) are scalar keyword params."""
    data = mod.make_data()
    args = tuple(data[p] for p in func.params)
    scalars = {k: v for k, v in data.items() if isinstance(v, int)}
    return args, scalars


def main(argv=None) -> int:
    from .autosched import (EvolutionaryTuner, RandomTuner,
                            StructuredTuner)
    from .backend import available_backends
    from .runtime import metrics
    from .schedule import Schedule
    from .workloads import ALL

    parser = argparse.ArgumentParser(
        prog="python -m repro.tune",
        description="Tune a paper workload and report the best schedule.")
    parser.add_argument("workload", choices=sorted(ALL),
                        help="which workload to tune")
    parser.add_argument("--tuner", default="structured",
                        choices=["structured", "random", "evolutionary"],
                        help="search strategy (default: structured)")
    parser.add_argument("--backend", default="pycode",
                        choices=available_backends(),
                        help="measurement backend (default: pycode)")
    parser.add_argument("--rounds", type=int, default=32,
                        help="candidate budget (default: 32)")
    parser.add_argument("--workers", type=int, default=None,
                        help="measurement worker processes (default: "
                             "$REPRO_TUNE_WORKERS or 1; structured only)")
    parser.add_argument("--batch", type=int, default=16,
                        help="assignments per generation (structured)")
    parser.add_argument("--topk", type=int, default=None,
                        help="measured survivors per generation "
                             "(structured; default: batch/4)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeats", type=int, default=3,
                        help="min-of-N measurement repeats (default: 3)")
    parser.add_argument("--trace", metavar="FILE",
                        help="write the winning schedule trace as JSON")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="print a JSON report instead of text")
    args = parser.parse_args(argv)

    mod = ALL[args.workload]
    prog = mod.make_program()
    base = Schedule(prog).func
    inputs, scalars = _workload_inputs(mod, base)

    common = dict(make_inputs=lambda: inputs, backend=args.backend,
                  rounds=args.rounds, seed=args.seed,
                  repeats=args.repeats, scalars=scalars)
    if args.tuner == "structured":
        tuner = StructuredTuner(prog, batch=args.batch, topk=args.topk,
                                workers=args.workers, **common)
    elif args.tuner == "evolutionary":
        tuner = EvolutionaryTuner(prog, **common)
    else:
        tuner = RandomTuner(prog, **common)

    result = tuner.tune()

    trace_json = result.best_trace.as_json() \
        if result.best_trace is not None else None
    report = {
        "workload": args.workload,
        "tuner": args.tuner,
        "backend": args.backend,
        "rounds": result.rounds,
        "measured": result.measured,
        "dedup_skips": result.dedup_skips,
        "cost_pruned": result.cost_pruned,
        "frontier_skips": result.frontier_skips,
        "invalid": result.invalid,
        "timeouts": result.timeouts,
        "best_time_s": result.best_time,
        "tuner_wall_s": round(result.total_time, 4),
        "trace": trace_json,
        "pool": metrics.pool_stats(),
        "search": metrics.search_stats(),
    }

    if args.trace:
        with open(args.trace, "w") as f:
            json.dump(trace_json, f, indent=2)
    if args.as_json:
        print(json.dumps(report, indent=2))
    else:
        r = result
        print(f"{args.workload} [{args.tuner}/{args.backend}]: "
              f"best {r.best_time * 1e3:.3f} ms after {r.rounds} rounds "
              f"({r.measured} measured, {r.dedup_skips} dedup, "
              f"{r.cost_pruned} cost-pruned, {r.frontier_skips} "
              f"frontier-skipped, {r.invalid} invalid, {r.timeouts} "
              f"timeouts; wall {r.total_time:.2f} s)")
        if r.best_trace is not None and len(r.best_trace):
            print("winning schedule:")
            for line in r.best_trace.summary().splitlines():
                print(f"  {line}")
        elif r.best_trace is not None:
            print("winning schedule: the unscheduled base")
        if args.trace:
            print(f"trace written to {args.trace}")

    return 0 if result.measured else 1


if __name__ == "__main__":
    sys.exit(main())

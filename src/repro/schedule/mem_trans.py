"""Memory transformations: cache, cache_reduction, set_mtype (hierarchy)
and var_split / var_reorder / var_merge (layout) — paper Table 1, with the
cache-region bound inference of section 4.2.3."""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..analysis import BoundsCtx, tightest_bounds
from ..analysis.access import collect_accesses
from ..errors import InvalidSchedule
from ..ir import (AccessType, DataType, Expr, For, Load, MemType, Mutator,
                  ReduceTo, Store, VarDef, collect_stmts, defined_tensors,
                  fresh_name, makeMax, makeMin, seq, used_names, wrap)
from .common import find_stmt, loops_on_path, replace_stmt


class _AccessRewriter(Mutator):
    """Rewrites every access to ``name`` through an index transform."""

    def __init__(self, name: str, new_name: str,
                 transform: Callable[[tuple], list]):
        self.name = name
        self.new_name = new_name
        self.transform = transform

    def mutate_Load(self, e: Load):
        idx = [self.mutate_expr(i) for i in e.indices]
        if e.var != self.name:
            return Load(e.var, idx, e.dtype)
        return Load(self.new_name, self.transform(tuple(idx)), e.dtype)

    def mutate_Store(self, s: Store):
        idx = [self.mutate_expr(i) for i in s.indices]
        expr = self.mutate_expr(s.expr)
        if s.var != self.name:
            out = Store(s.var, idx, expr)
        else:
            out = Store(self.new_name, self.transform(tuple(idx)), expr)
        out.sid, out.label = s.sid, s.label
        return out

    def mutate_ReduceTo(self, s: ReduceTo):
        idx = [self.mutate_expr(i) for i in s.indices]
        expr = self.mutate_expr(s.expr)
        if s.var != self.name:
            out = ReduceTo(s.var, idx, s.op, expr, s.atomic)
        else:
            out = ReduceTo(self.new_name, self.transform(tuple(idx)), s.op,
                           expr, s.atomic)
        out.sid, out.label = s.sid, s.label
        return out


def _region_of(func, stmt, tensor: str):
    """Per-dimension inclusive (lo, size) of elements of ``tensor``
    accessed inside ``stmt``, expressed with outer-scope variables only."""
    defs = defined_tensors(func.body)
    if tensor not in defs:
        raise InvalidSchedule(f"unknown tensor {tensor!r}")
    vardef = defs[tensor]
    accesses = [a for a in collect_accesses(stmt) if a.tensor == tensor]
    if not accesses:
        raise InvalidSchedule(
            f"tensor {tensor!r} is not accessed inside {stmt.sid}")
    if any(a.indices is None for a in accesses):
        raise InvalidSchedule(
            f"cannot infer cached region of {tensor!r}: opaque access")

    outer = {l.iter_var for l in loops_on_path(func.body, stmt.sid)}
    allowed = outer | set(func.scalar_params) | _shape_vars(func)

    lows: List[Optional[Expr]] = [None] * vardef.ndim
    ups: List[Optional[Expr]] = [None] * vardef.ndim
    for a in accesses:
        ctx = BoundsCtx()
        for l in a.loops:
            ctx = ctx.with_loop(l.iter_var, l.begin, l.end)
        for d, idx in enumerate(a.indices):
            lo, up = tightest_bounds(idx, ctx, allowed)
            if lo is None or up is None:
                raise InvalidSchedule(
                    f"cannot bound dimension {d} of {tensor!r} accessed "
                    f"at {a.stmt.sid} with outer-scope variables")
            lows[d] = lo if lows[d] is None else makeMin(lows[d], lo)
            ups[d] = up if ups[d] is None else makeMax(ups[d], up)
    from ..passes.simplify_pass import simplify_expr

    lows = [simplify_expr(lo) for lo in lows]
    sizes = [simplify_expr(up - lo + 1) for lo, up in zip(lows, ups)]
    return vardef, accesses, lows, sizes


def _shape_vars(func) -> set:
    """Variables used in parameter shapes (symbolic extents)."""
    out = set()
    from ..ir import all_vars

    for d in defined_tensors(func.body).values():
        for s in d.shape:
            out.update(all_vars(s))
    return out


def _nested_copy(iters, sizes, make_leaf) -> object:
    """Build ``for i0 in 0..s0: ... leaf(i0, i1, ...)`` nests."""
    from ..ir import Var

    ivs = [Var(i) for i in iters]
    body = make_leaf(ivs)
    for it, size in zip(reversed(iters), reversed(sizes)):
        body = For(it, 0, size, body)
    return body


def cache(func, stmt_sel, tensor: str, mtype):
    """Fetch the region of ``tensor`` used by ``stmt`` into a new tensor on
    ``mtype`` before the statement, and write it back after (paper
    Fig. 14). Returns ``(new_func, fill_sid, flush_sid, cache_name)``.
    """
    stmt = find_stmt(func.body, stmt_sel)
    vardef, accesses, lows, sizes = _region_of(func, stmt, tensor)
    mtype = MemType.parse(mtype)

    cache_name = fresh_name(tensor + ".c", used_names(func))
    taken = used_names(func) | {cache_name}
    iters = []
    for d in range(vardef.ndim):
        it = fresh_name(f"i.c{d}", taken)
        taken.add(it)
        iters.append(it)

    reads = any(not a.is_write for a in accesses)
    writes = any(a.is_write for a in accesses)

    def shift(idx: tuple) -> list:
        return [i - lo for i, lo in zip(idx, lows)]

    new_body = _AccessRewriter(tensor, cache_name, shift)(stmt)

    fill = _nested_copy(
        iters, sizes, lambda ivs: Store(
            cache_name, ivs,
            Load(tensor, [lo + iv for lo, iv in zip(lows, ivs)],
                 vardef.dtype)))
    flush = _nested_copy(
        iters, sizes, lambda ivs: Store(
            tensor, [lo + iv for lo, iv in zip(lows, ivs)],
            Load(cache_name, ivs, vardef.dtype)))

    parts = []
    # Fill even when only writing if the written region may be partial;
    # filling is always safe and keeps the flush whole-region.
    if reads or writes:
        parts.append(fill)
    parts.append(new_body)
    if writes:
        parts.append(flush)
    wrapped = VarDef(cache_name, sizes, vardef.dtype, "cache", mtype,
                     seq(parts))
    new_func = replace_stmt(func, stmt.sid, lambda _s: wrapped)
    return new_func, fill.sid, (flush.sid if writes else None), cache_name


def cache_reduction(func, stmt_sel, tensor: str, mtype):
    """Accumulate reductions over ``tensor`` inside ``stmt`` into a local
    tensor initialised to the reduction identity, then reduce it back once
    (paper Table 1, ``cache_reduce``). Returns
    ``(new_func, init_sid, flush_sid, cache_name)``."""
    stmt = find_stmt(func.body, stmt_sel)
    vardef, accesses, lows, sizes = _region_of(func, stmt, tensor)
    mtype = MemType.parse(mtype)

    ops = {a.reduce_op for a in accesses}
    if len(ops) != 1 or None in ops:
        raise InvalidSchedule(
            f"cache_reduction requires every access to {tensor!r} inside "
            f"{stmt_sel!r} to be the same reduction")
    op = ops.pop()
    identity = {
        "+": 0.0 if vardef.dtype.is_float else 0,
        "*": 1.0 if vardef.dtype.is_float else 1,
        "min": float("inf"),
        "max": float("-inf"),
    }[op]

    cache_name = fresh_name(tensor + ".r", used_names(func))
    taken = used_names(func) | {cache_name}
    iters = []
    for d in range(vardef.ndim):
        it = fresh_name(f"i.r{d}", taken)
        taken.add(it)
        iters.append(it)

    def shift(idx: tuple) -> list:
        return [i - lo for i, lo in zip(idx, lows)]

    new_body = _AccessRewriter(tensor, cache_name, shift)(stmt)
    init = _nested_copy(
        iters, sizes,
        lambda ivs: Store(cache_name, ivs, wrap(identity)))
    flush = _nested_copy(
        iters, sizes, lambda ivs: ReduceTo(
            tensor, [lo + iv for lo, iv in zip(lows, ivs)], op,
            Load(cache_name, ivs, vardef.dtype)))
    wrapped = VarDef(cache_name, sizes, vardef.dtype, "cache", mtype,
                     seq([init, new_body, flush]))
    new_func = replace_stmt(func, stmt.sid, lambda _s: wrapped)
    return new_func, init.sid, flush.sid, cache_name


def set_mtype(func, tensor: str, mtype):
    """Change where a tensor is stored."""
    mtype = MemType.parse(mtype)
    defs = defined_tensors(func.body)
    if tensor not in defs:
        raise InvalidSchedule(f"unknown tensor {tensor!r}")
    vd = defs[tensor]

    def on_def(d: VarDef):
        out = VarDef(d.name, d.shape, d.dtype, d.atype, mtype, d.body,
                     d.pinned)
        out.sid, out.label, out.init_data = d.sid, d.label, d.init_data
        return out

    return replace_stmt(func, vd.sid, on_def)


def _layout_target(func, tensor: str) -> VarDef:
    defs = defined_tensors(func.body)
    if tensor not in defs:
        raise InvalidSchedule(f"unknown tensor {tensor!r}")
    vd = defs[tensor]
    if vd.atype is not AccessType.CACHE:
        raise InvalidSchedule(
            f"cannot change the layout of {tensor!r}: it is part of the "
            f"function interface ({vd.atype})")
    return vd


def var_split(func, tensor: str, dim: int, factor: int):
    """Split dimension ``dim`` of a tensor into (outer, factor)."""
    vd = _layout_target(func, tensor)
    if not (0 <= dim < vd.ndim):
        raise InvalidSchedule(f"{tensor!r} has no dimension {dim}")
    f = wrap(factor)
    new_shape = list(vd.shape)
    new_shape[dim:dim + 1] = [(vd.shape[dim] + f - 1) // f, f]

    def transform(idx: tuple) -> list:
        idx = list(idx)
        e = idx[dim]
        idx[dim:dim + 1] = [e // f, e % f]
        return idx

    return _relayout(func, vd, new_shape, transform)


def var_reorder(func, tensor: str, order: List[int]):
    """Permute the dimensions of a tensor."""
    vd = _layout_target(func, tensor)
    if sorted(order) != list(range(vd.ndim)):
        raise InvalidSchedule(
            f"order {order} is not a permutation of {vd.ndim} dims")
    new_shape = [vd.shape[k] for k in order]

    def transform(idx: tuple) -> list:
        return [idx[k] for k in order]

    return _relayout(func, vd, new_shape, transform)


def var_merge(func, tensor: str, dim: int):
    """Merge dimensions ``dim`` and ``dim+1`` of a tensor."""
    vd = _layout_target(func, tensor)
    if not (0 <= dim < vd.ndim - 1):
        raise InvalidSchedule(
            f"cannot merge dims {dim},{dim + 1} of {vd.ndim}-D {tensor!r}")
    d1 = vd.shape[dim + 1]
    new_shape = list(vd.shape)
    new_shape[dim:dim + 2] = [vd.shape[dim] * d1]

    def transform(idx: tuple) -> list:
        idx = list(idx)
        idx[dim:dim + 2] = [idx[dim] * d1 + idx[dim + 1]]
        return idx

    return _relayout(func, vd, new_shape, transform)


def _relayout(func, vd: VarDef, new_shape, transform):
    def on_def(d: VarDef):
        body = _AccessRewriter(d.name, d.name, transform)(d.body)
        out = VarDef(d.name, new_shape, d.dtype, d.atype, d.mtype, body,
                     d.pinned)
        out.sid, out.label, out.init_data = d.sid, d.label, d.init_data
        return out

    return replace_stmt(func, vd.sid, on_def)

"""Parallelizing transformations: parallelize, unroll, blend, vectorize
(paper Table 1), with dependence-aware legality (paper 4.2.2)."""

from __future__ import annotations

from typing import List

from ..analysis import DirItem, analyzer_for
from ..errors import DependenceViolation, InvalidSchedule
from ..ir import (For, IntConst, Mutator, ReduceTo, StmtSeq, collect_stmts,
                  fresh_copy, seq, substitute, wrap)
from .common import find_loop, replace_stmt, stmts_of_body

#: accepted values for the ``parallel`` annotation
PARALLEL_KINDS = (
    "openmp",
    "cuda.blockIdx.x", "cuda.blockIdx.y", "cuda.blockIdx.z",
    "cuda.threadIdx.x", "cuda.threadIdx.y", "cuda.threadIdx.z",
)


def parallelize(func, loop_sel, kind: str = "openmp", analyzer=None):
    """Run a loop's iterations on parallel threads.

    Illegal when a non-reduction dependence is carried by the loop
    (Fig. 13(b)); same-operator reductions are allowed and lowered with
    atomic updates / parallel reduction (Fig. 13(d)/(e)).
    """
    if kind not in PARALLEL_KINDS:
        raise InvalidSchedule(
            f"unknown parallel kind {kind!r}; choose from {PARALLEL_KINDS}")
    loop = find_loop(func.body, loop_sel)
    analyzer = analyzer_for(func, analyzer)
    deps = analyzer.find(direction=[DirItem.same_loop(loop.sid, "!=")],
                         first_only=True)
    if deps:
        raise DependenceViolation(
            f"cannot parallelize {loop_sel!r}: loop-carried {deps[0]}", deps)

    # Reductions whose target outlives the loop and is updated from
    # multiple iterations must become atomic (Fig. 13(e)).
    atomic_targets = set()
    for r in collect_stmts(loop, lambda s: isinstance(s, ReduceTo)):
        carried = analyzer.find(tensors=[r.var],
                                direction=[DirItem.same_loop(loop.sid,
                                                             "!=")],
                                ignore_reduce_pairs=False,
                                first_only=True)
        if carried:
            atomic_targets.add(r.var)

    def on_loop(l: For):
        prop = l.property.clone()
        prop.parallel = kind

        class MarkAtomic(Mutator):

            def mutate_ReduceTo(self, s: ReduceTo):
                out = ReduceTo(s.var,
                               [self.mutate_expr(i) for i in s.indices],
                               s.op, self.mutate_expr(s.expr),
                               atomic=s.atomic or s.var in atomic_targets)
                out.sid, out.label = s.sid, s.label
                return out

        body = MarkAtomic()(l.body) if atomic_targets else l.body
        out = For(l.iter_var, l.begin, l.end, body, prop)
        out.sid, out.label = l.sid, l.label
        return out

    return replace_stmt(func, loop.sid, on_loop)


def unroll(func, loop_sel, immediate: bool = True):
    """Unroll a loop with a constant trip count into straight-line copies;
    with ``immediate=False`` only marks the loop for the backend."""
    loop = find_loop(func.body, loop_sel)
    if not immediate:
        def mark(l: For):
            prop = l.property.clone()
            prop.unroll = True
            out = For(l.iter_var, l.begin, l.end, l.body, prop)
            out.sid, out.label = l.sid, l.label
            return out

        return replace_stmt(func, loop.sid, mark)

    if not (isinstance(loop.begin, IntConst)
            and isinstance(loop.end, IntConst)):
        raise InvalidSchedule(
            f"cannot unroll {loop_sel!r}: trip count is not a compile-time "
            f"constant")
    copies = []
    for i in range(loop.begin.val, loop.end.val):
        copies.append(
            substitute(fresh_copy(loop.body), {loop.iter_var: wrap(i)}))
    return replace_stmt(func, loop.sid, seq(copies))


def vectorize(func, loop_sel, analyzer=None):
    """Mark a loop for vector execution (NumPy kernels / SIMD / warps).

    Requires the same independence as ``parallelize``; reductions are
    allowed (lowered to vector reductions).
    """
    loop = find_loop(func.body, loop_sel)
    analyzer = analyzer_for(func, analyzer)
    deps = analyzer.find(direction=[DirItem.same_loop(loop.sid, "!=")],
                         first_only=True)
    if deps:
        raise DependenceViolation(
            f"cannot vectorize {loop_sel!r}: loop-carried {deps[0]}", deps)

    def mark(l: For):
        prop = l.property.clone()
        prop.vectorize = True
        out = For(l.iter_var, l.begin, l.end, l.body, prop)
        out.sid, out.label = l.sid, l.label
        return out

    return replace_stmt(func, loop.sid, mark)


def blend(func, loop_sel, analyzer=None):
    """Unroll a loop and interleave statement copies statement-major
    (all iterations of the first statement, then of the second, ...).

    Requires a constant trip count and fission-style legality between
    every pair of body statements.
    """
    loop = find_loop(func.body, loop_sel)
    if not (isinstance(loop.begin, IntConst)
            and isinstance(loop.end, IntConst)):
        raise InvalidSchedule(
            f"cannot blend {loop_sel!r}: trip count is not constant")
    stmts = stmts_of_body(loop.body)
    if len(stmts) < 1:
        raise InvalidSchedule("empty loop")
    from ..ir import VarDef

    if any(isinstance(s, VarDef) for s in stmts):
        raise InvalidSchedule(
            "blend across a VarDef is not supported; fission first")

    analyzer = analyzer_for(func, analyzer)
    for i, s1 in enumerate(stmts):
        for s2 in stmts[i + 1:]:
            deps = analyzer.find(
                earlier_in=s2.sid,
                later_in=s1.sid,
                direction=[DirItem.same_loop(loop.sid, ">")],
                first_only=True)
            if deps:
                raise DependenceViolation(
                    f"blend would reverse {deps[0]}", deps)

    copies = []
    for s in stmts:
        for i in range(loop.begin.val, loop.end.val):
            copies.append(substitute(fresh_copy(s),
                                     {loop.iter_var: wrap(i)}))
    return replace_stmt(func, loop.sid, seq(copies))
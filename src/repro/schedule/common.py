"""Shared machinery for schedule transformations: locating statements,
replacing subtrees, and collecting context."""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..errors import InvalidSchedule
from ..ir import (For, Func, If, Mutator, Stmt, StmtSeq, VarDef, collect_stmts,
                  fresh_name, used_names)


def find_stmt(root: Stmt, selector) -> Stmt:
    """Resolve a selector (sid, label, or Stmt) to a unique statement."""
    if isinstance(selector, Stmt):
        selector = selector.sid
    hits = collect_stmts(
        root, lambda s: s.sid == selector or s.label == selector)
    if not hits:
        raise InvalidSchedule(f"no statement matching {selector!r}")
    if len(hits) > 1:
        raise InvalidSchedule(
            f"selector {selector!r} is ambiguous ({len(hits)} matches)")
    return hits[0]


def find_loop(root: Stmt, selector) -> For:
    s = find_stmt(root, selector)
    if not isinstance(s, For):
        raise InvalidSchedule(f"{selector!r} is not a loop")
    return s


class _Replacer(Mutator):

    def __init__(self, sid: str, fn: Callable[[Stmt], Stmt]):
        self.sid = sid
        self.fn = fn
        self.hit = False

    def mutate_stmt(self, s: Stmt) -> Stmt:
        if s.sid == self.sid:
            self.hit = True
            return self.fn(s)
        return super().mutate_stmt(s)


def replace_stmt(root, sid: str, new_stmt_or_fn) -> Stmt:
    """Replace the statement with ``sid``; ``new_stmt_or_fn`` is either the
    replacement or a function old->new."""
    fn = new_stmt_or_fn if callable(new_stmt_or_fn) \
        else (lambda _s: new_stmt_or_fn)
    rep = _Replacer(sid, fn)
    out = rep(root)
    if not rep.hit:
        raise InvalidSchedule(f"statement {sid!r} not found")
    return out


def path_to(root: Stmt, sid: str) -> List[Stmt]:
    """The chain of statements from ``root`` down to the statement with
    ``sid`` (inclusive)."""
    path: List[Stmt] = []

    def walk(s: Stmt) -> bool:
        path.append(s)
        if s.sid == sid:
            return True
        for c in s.children_stmts():
            if walk(c):
                return True
        path.pop()
        return False

    start = root.body if isinstance(root, Func) else root
    if not walk(start):
        raise InvalidSchedule(f"statement {sid!r} not found")
    return path


def parent_of(root: Stmt, sid: str) -> Optional[Stmt]:
    path = path_to(root, sid)
    return path[-2] if len(path) >= 2 else None


def loops_on_path(root, sid: str) -> List[For]:
    """Loops enclosing (strictly above) the statement with ``sid``."""
    return [s for s in path_to(root, sid)[:-1] if isinstance(s, For)]


def outer_iters(root, sid: str) -> List[str]:
    """Iterator names defined outside the statement (usable in bounds)."""
    return [l.iter_var for l in loops_on_path(root, sid)]


def fresh_iter(root, base: str) -> str:
    return fresh_name(base, used_names(root))


def only_stmt_of(loop: For) -> Optional[Stmt]:
    """The single statement of a loop body, unwrapping trivial sequences."""
    body = loop.body
    while isinstance(body, StmtSeq):
        if len(body.stmts) != 1:
            return None
        body = body.stmts[0]
    return body


def perfectly_nested(outer: For, inner_sel: str) -> List[For]:
    """The chain of perfectly nested loops from ``outer`` down to the loop
    with sid/label ``inner_sel``; raises if the nest is imperfect."""
    chain = [outer]
    cur = outer
    while cur.sid != inner_sel and cur.label != inner_sel:
        nxt = only_stmt_of(cur)
        if not isinstance(nxt, For):
            raise InvalidSchedule(
                f"loops between {outer.sid} and {inner_sel} are not "
                f"perfectly nested")
        chain.append(nxt)
        cur = nxt
    return chain


def stmts_of_body(body: Stmt) -> List[Stmt]:
    """Body statements as a list (single statements become one-element)."""
    if isinstance(body, StmtSeq):
        return list(body.stmts)
    return [body]

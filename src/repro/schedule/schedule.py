"""The user-facing Schedule object: a Func plus a fluent, checked API for
every transformation in the paper's Table 1.

Every method validates legality with dependence analysis (raising
:class:`~repro.errors.InvalidSchedule` /
:class:`~repro.errors.DependenceViolation` on conflict), mutates an
internal copy of the program, and returns statement ids so follow-up
transformations can target the results::

    s = Schedule(program)
    outer, inner = s.split("main_loop", factor=32)
    s.parallelize(outer, "openmp")
    s.vectorize(inner)
    exe = build(s.func, backend="pycode")
"""

from __future__ import annotations

from typing import List, Optional

from ..analysis import DepAnalyzer
from ..frontend.staging import Program
from ..ir import For, Func, Stmt, collect_stmts, dump
from . import loop_trans, mem_trans, misc_trans, parallel_trans
from .common import find_loop, find_stmt


class Schedule:
    """A scheduling session over one program."""

    def __init__(self, program_or_func):
        if isinstance(program_or_func, Program):
            func = program_or_func.func
        elif isinstance(program_or_func, Func):
            func = program_or_func
        else:
            raise TypeError("Schedule needs a Program or Func")
        # normalise through the standard lowering Pipeline before any
        # transformation: per-pass cache makes repeat sessions over the
        # same program (tuner rounds) effectively free
        from ..pipeline import lowering_pipeline

        self.func = lowering_pipeline(name="schedule").run(func)
        self._log: List[str] = []
        #: one persistent dependence analyzer for the whole session; each
        #: primitive refreshes it against the current tree instead of
        #: rebuilding analysis state from scratch (feasibility verdicts
        #: for unchanged subtrees are memoized by content).
        self._analyzer: Optional[DepAnalyzer] = None

    def _deps(self) -> DepAnalyzer:
        """The session's persistent analyzer, refreshed for ``self.func``."""
        if self._analyzer is None:
            self._analyzer = DepAnalyzer(self.func)
        else:
            self._analyzer.refresh(self.func)
        return self._analyzer

    # -- introspection ------------------------------------------------------
    def find(self, selector) -> Stmt:
        """The unique statement matching a sid or label."""
        return find_stmt(self.func.body, selector)

    def find_all(self, pred) -> List[Stmt]:
        return collect_stmts(self.func.body, pred)

    def loops(self) -> List[For]:
        """All loops, in pre-order."""
        return self.find_all(lambda s: isinstance(s, For))

    def normalize(self):
        """Re-run the standard lowering pipeline on the current tree
        (what the constructor does to its input). A transformation can
        leave simplifiable structure behind — e.g. a trip-1 outer loop
        after a full split — and starting a *new* session on the result
        folds it away; recording ``normalize`` as an explicit step keeps
        schedule traces replayable across such session boundaries."""
        from ..pipeline import lowering_pipeline

        self.func = lowering_pipeline(name="schedule").run(self.func)
        self._log.append("normalize()")

    def verify(self, level: str = "warning"):
        """Run the whole-program verifier (``repro.verify``) on the
        current state of the schedule and return its
        :class:`~repro.analysis.verify.diagnostics.Diagnostics` report.

        Useful for cross-validating a sequence of transformations: every
        primitive already checks its own legality, but ``verify()``
        re-derives races, bounds and def-use facts from the tree as it
        stands, independent of the per-primitive verdicts.
        """
        from ..analysis.verify import verify as run_verifier

        return run_verifier(self.func, level=level)

    def fork(self) -> "Schedule":
        """An independent copy (for trying alternative schedules)."""
        out = Schedule(self.func)
        out._log = list(self._log)
        return out

    @property
    def log(self) -> List[str]:
        """Human-readable record of the applied transformations."""
        return list(self._log)

    def __repr__(self):  # pragma: no cover - debugging aid
        return dump(self.func)

    # -- loop transformations ------------------------------------------------
    def split(self, loop, factor=None, nparts=None):
        """Split a loop; returns (outer_sid, inner_sid)."""
        self.func, outer, inner = loop_trans.split(self.func, loop,
                                                   factor=factor,
                                                   nparts=nparts)
        self._log.append(f"split({loop}, factor={factor}, nparts={nparts})")
        return outer, inner

    def merge(self, outer, inner):
        """Merge two perfectly nested loops; returns the merged sid."""
        self.func, merged = loop_trans.merge(self.func, outer, inner)
        self._log.append(f"merge({outer}, {inner})")
        return merged

    def reorder(self, order: List):
        """Permute a perfectly nested band into ``order``."""
        self.func = loop_trans.reorder(self.func, order,
                                       analyzer=self._deps())
        self._log.append(f"reorder({order})")

    def fission(self, loop, after):
        """Fission a loop after a statement; returns (front, back) sids."""
        self.func, front, back = loop_trans.fission(self.func, loop, after,
                                                    analyzer=self._deps())
        self._log.append(f"fission({loop}, after={after})")
        return front, back

    def fuse(self, loop0, loop1):
        """Fuse two consecutive loops; returns the fused sid."""
        self.func, fused = loop_trans.fuse(self.func, loop0, loop1,
                                           analyzer=self._deps())
        self._log.append(f"fuse({loop0}, {loop1})")
        return fused

    def swap(self, stmts: List):
        """Reorder consecutive sibling statements into the given order."""
        self.func = loop_trans.swap(self.func, stmts,
                                    analyzer=self._deps())
        self._log.append(f"swap({stmts})")

    # -- parallelizing transformations ---------------------------------------
    def parallelize(self, loop, kind: str = "openmp"):
        """Bind a loop to parallel hardware (threads / CUDA grid)."""
        self.func = parallel_trans.parallelize(self.func, loop, kind,
                                               analyzer=self._deps())
        self._log.append(f"parallelize({loop}, {kind})")

    def unroll(self, loop, immediate: bool = True):
        """Unroll a constant-trip loop."""
        self.func = parallel_trans.unroll(self.func, loop, immediate)
        self._log.append(f"unroll({loop})")

    def vectorize(self, loop):
        """Execute a loop with vector kernels / SIMD."""
        self.func = parallel_trans.vectorize(self.func, loop,
                                             analyzer=self._deps())
        self._log.append(f"vectorize({loop})")

    def blend(self, loop):
        """Unroll a loop and interleave its statements."""
        self.func = parallel_trans.blend(self.func, loop,
                                         analyzer=self._deps())
        self._log.append(f"blend({loop})")

    # -- memory transformations -----------------------------------------------
    def cache(self, stmt, tensor: str, mtype):
        """Stage a tensor region through a new buffer around ``stmt``;
        returns (fill_sid, flush_sid, cache_name)."""
        self.func, fill, flush, name = mem_trans.cache(
            self.func, stmt, tensor, mtype)
        self._log.append(f"cache({stmt}, {tensor}, {mtype})")
        return fill, flush, name

    def cache_reduction(self, stmt, tensor: str, mtype):
        """Accumulate reductions locally, then reduce back once;
        returns (init_sid, flush_sid, cache_name)."""
        self.func, init, flush, name = mem_trans.cache_reduction(
            self.func, stmt, tensor, mtype)
        self._log.append(f"cache_reduction({stmt}, {tensor}, {mtype})")
        return init, flush, name

    def set_mtype(self, tensor: str, mtype):
        """Change the memory a tensor lives in."""
        self.func = mem_trans.set_mtype(self.func, tensor, mtype)
        self._log.append(f"set_mtype({tensor}, {mtype})")

    def var_split(self, tensor: str, dim: int, factor: int):
        """Split a tensor dimension (layout)."""
        self.func = mem_trans.var_split(self.func, tensor, dim, factor)
        self._log.append(f"var_split({tensor}, {dim}, {factor})")

    def var_reorder(self, tensor: str, order: List[int]):
        """Transpose tensor dimensions (layout)."""
        self.func = mem_trans.var_reorder(self.func, tensor, order)
        self._log.append(f"var_reorder({tensor}, {order})")

    def var_merge(self, tensor: str, dim: int):
        """Merge two adjacent tensor dimensions (layout)."""
        self.func = mem_trans.var_merge(self.func, tensor, dim)
        self._log.append(f"var_merge({tensor}, {dim})")

    # -- others ------------------------------------------------------------------
    def as_lib(self, loop):
        """Replace a recognised nest with a vendor library call."""
        self.func, sid = misc_trans.as_lib(self.func, loop)
        self._log.append(f"as_lib({loop})")
        return sid

    def separate_tail(self, loop):
        """Split off boundary iterations to remove branching."""
        self.func, sids = misc_trans.separate_tail(self.func, loop)
        self._log.append(f"separate_tail({loop})")
        return sids

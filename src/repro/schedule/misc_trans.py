"""Other transformations: as_lib (fall back to a vendor library) and
separate_tail (hoist boundary iterations) — paper Table 1."""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errors import InvalidSchedule
from ..ir import (Add, For, If, IntConst, LibCall, Load, Mul, ReduceTo,
                  StmtSeq, Var, VarDef, collect_stmts, defined_tensors,
                  makeMax, makeMin, same_expr, seq, substitute)
from ..ir import expr as E
from .common import find_loop, only_stmt_of, replace_stmt, fresh_iter


def as_lib(func, loop_sel):
    """Replace a recognised loop nest with a vendor-library call.

    Currently recognises dense matrix multiplication
    ``C[i, j] += A[i, k] * B[k, j]`` over a perfect (i, j, k) nest with
    zero-based bounds (any loop order), and whole-tensor fills.
    Returns ``(new_func, libcall_sid)``.
    """
    loop = find_loop(func.body, loop_sel)
    call = _match_matmul(func, loop) or _match_fill(func, loop)
    if call is None:
        raise InvalidSchedule(
            f"{loop_sel!r} does not match a known library pattern")
    new_func = replace_stmt(func, loop.sid, call)
    return new_func, call.sid


def _nest_of(loop: For) -> List[For]:
    nest = [loop]
    while True:
        inner = only_stmt_of(nest[-1])
        if isinstance(inner, For):
            nest.append(inner)
        else:
            return nest


def _match_matmul(func, loop: For) -> Optional[LibCall]:
    nest = _nest_of(loop)
    accumulate = True
    init_store = None
    if len(nest) == 2:
        # fused-init form: for i: for j: { c[i,j] = 0; for k: c += a*b }
        from ..ir import Store, Const

        inner = nest[-1].body
        kids = inner.stmts if isinstance(inner, StmtSeq) else [inner]
        if len(kids) == 2 and isinstance(kids[0], Store) \
                and isinstance(kids[0].expr, Const) \
                and kids[0].expr.val == 0 and isinstance(kids[1], For):
            init_store = kids[0]
            nest = nest + [kids[1]]
            accumulate = False
        else:
            return None
    if len(nest) != 3:
        return None
    body = only_stmt_of(nest[-1])
    if not isinstance(body, ReduceTo) or body.op != "+":
        return None
    if init_store is not None:
        from ..ir import same_expr

        if not (init_store.var == body.var
                and len(init_store.indices) == len(body.indices)
                and all(same_expr(p, q) for p, q in
                        zip(init_store.indices, body.indices))):
            return None
    if not all(isinstance(l.begin, IntConst) and l.begin.val == 0
               for l in nest):
        return None
    if not isinstance(body.expr, Mul):
        return None
    lhs, rhs = body.expr.lhs, body.expr.rhs
    if not (isinstance(lhs, Load) and isinstance(rhs, Load)):
        return None
    if len(body.indices) != 2 or len(lhs.indices) != 2 \
            or len(rhs.indices) != 2:
        return None

    def iname(e) -> Optional[str]:
        return e.name if isinstance(e, Var) else None

    c_idx = [iname(i) for i in body.indices]
    l_idx = [iname(i) for i in lhs.indices]
    r_idx = [iname(i) for i in rhs.indices]
    if None in c_idx or None in l_idx or None in r_idx:
        return None
    iters = {l.iter_var for l in nest}
    if set(c_idx) | set(l_idx) | set(r_idx) != iters:
        return None
    i, j = c_idx
    k = (iters - {i, j}).pop()
    # accept A[i,k]*B[k,j] on either side of the multiplication
    for a, b in ((lhs, rhs), (rhs, lhs)):
        a_idx = [iname(x) for x in a.indices]
        b_idx = [iname(x) for x in b.indices]
        if a_idx == [i, k] and b_idx == [k, j]:
            # loop extents must match operand shapes
            defs = defined_tensors(func.body)
            ext = {l.iter_var: l.end for l in nest}
            shapes_ok = (
                _shape_is(defs.get(body.var), [ext[i], ext[j]])
                and _shape_is(defs.get(a.var), [ext[i], ext[k]])
                and _shape_is(defs.get(b.var), [ext[k], ext[j]]))
            if not shapes_ok:
                return None
            return LibCall("matmul", [body.var], [a.var, b.var],
                           {"accumulate": accumulate})
    return None


def _shape_is(vardef, extents) -> bool:
    if vardef is None or vardef.ndim != len(extents):
        return False
    return all(same_expr(s, e) for s, e in zip(vardef.shape, extents))


def _match_fill(func, loop: For) -> Optional[LibCall]:
    nest = _nest_of(loop)
    body = only_stmt_of(nest[-1])
    from ..ir import Store, Const

    if not isinstance(body, Store) or not isinstance(body.expr, Const):
        return None
    if not all(isinstance(l.begin, IntConst) and l.begin.val == 0
               for l in nest):
        return None
    idx_names = [i.name if isinstance(i, Var) else None for i in body.indices]
    if None in idx_names or idx_names != [l.iter_var for l in nest]:
        return None
    defs = defined_tensors(func.body)
    if not _shape_is(defs.get(body.var), [l.end for l in nest]):
        return None
    return LibCall("fill", [body.var], [], {"value": body.expr.val})


def separate_tail(func, loop_sel):
    """Split a loop at the boundary implied by its internal conditionals so
    the main body runs branch-free (paper Table 1).

    Returns ``(new_func, sids)`` where ``sids`` are the resulting loops.
    """
    loop = find_loop(func.body, loop_sel)
    points = _split_points(loop)
    if not points:
        raise InvalidSchedule(
            f"no splittable conditions found in {loop_sel!r}")

    # Clamp each split point into [begin, end] and build consecutive loops.
    cuts = []
    for p in points:
        cuts.append(makeMax(loop.begin, makeMin(p, loop.end)))
    bounds = [loop.begin] + cuts + [loop.end]

    from ..ir import fresh_copy

    new_loops = []
    for k in range(len(bounds) - 1):
        it = fresh_iter(func, loop.iter_var + ".t") if k else loop.iter_var
        body = fresh_copy(loop.body) if k else loop.body
        if k:
            body = substitute(body, {loop.iter_var: Var(it)})
        nl = For(it, bounds[k], bounds[k + 1], body, loop.property.clone())
        if k == 0:
            nl.label = loop.label
        new_loops.append(nl)
    new_func = replace_stmt(func, loop.sid, seq(new_loops))

    from ..passes.prune import prune_branches

    new_func = prune_branches(new_func)
    from ..passes import simplify

    new_func = simplify(new_func)
    return new_func, [l.sid for l in new_loops]


def _split_points(loop: For) -> List:
    """Iterator thresholds implied by conditions inside the loop.

    A condition ``c*it + rest CMP other`` (with ``rest`` bounded over the
    inner loops) yields the first iteration where the guard may change
    truth value — e.g. the guard of an uneven ``split`` yields the first
    partial tile.
    """
    points = []
    seen = set()

    def walk(s, inner_loops):
        if isinstance(s, If):
            for cond in _conjuncts(s.cond):
                p = _threshold(cond, loop.iter_var, inner_loops)
                if p is not None and p.key() not in seen:
                    seen.add(p.key())
                    points.append(p)
        for c in s.children_stmts():
            walk(c, inner_loops + [s] if isinstance(s, For) else inner_loops)

    walk(loop.body, [])
    return points


def _conjuncts(cond):
    if isinstance(cond, E.LAnd):
        yield from _conjuncts(cond.lhs)
        yield from _conjuncts(cond.rhs)
    else:
        yield cond


def _decompose(e, iter_var: str):
    """Write an integer expression as ``c*iter_var + rest`` with the
    iterator absent from ``rest``; None if not linear in the iterator."""
    from ..ir import all_vars

    if isinstance(e, Var) and e.name == iter_var:
        return 1, IntConst(0)
    if isinstance(e, E.Add):
        l = _decompose(e.lhs, iter_var)
        r = _decompose(e.rhs, iter_var)
        if l is None or r is None:
            return None
        return l[0] + r[0], l[1] + r[1]
    if isinstance(e, E.Sub):
        l = _decompose(e.lhs, iter_var)
        r = _decompose(e.rhs, iter_var)
        if l is None or r is None:
            return None
        return l[0] - r[0], l[1] - r[1]
    if isinstance(e, Mul):
        for k, other in ((e.lhs, e.rhs), (e.rhs, e.lhs)):
            if isinstance(k, IntConst):
                inner = _decompose(other, iter_var)
                if inner is None:
                    return None
                return inner[0] * k.val, inner[1] * k.val
        return None
    if iter_var in set(all_vars(e)):
        return None
    return 0, e


def _threshold(cond, iter_var: str, inner_loops):
    """The first iteration where ``cond`` may flip, derived from the sign
    of the iterator coefficient and bounds of the residual term."""
    if not isinstance(cond, E.CmpOp):
        return None
    # Normalise every comparison to  E < 0  over integers.
    cls = type(cond)
    diff = cond.lhs - cond.rhs
    if cls is E.LT:
        expr = diff
    elif cls is E.LE:
        expr = diff - 1
    elif cls is E.GT:
        expr = cond.rhs - cond.lhs
    elif cls is E.GE:
        expr = cond.rhs - cond.lhs - 1
    else:
        return None  # ==/!= would need two cuts
    dec = _decompose(expr, iter_var)
    if dec is None:
        return None
    c, rest = dec
    if c == 0:
        return None

    from ..analysis import BoundsCtx, tightest_bounds
    from ..ir import all_vars
    from ..passes.simplify_pass import simplify_expr

    ctx = BoundsCtx()
    for l in inner_loops:
        ctx = ctx.with_loop(l.iter_var, l.begin, l.end)
    inner_names = {l.iter_var for l in inner_loops}
    outer_ok = lambda e_: not (set(all_vars(e_)) & (inner_names
                                                    | {iter_var}))
    # allowed vars: anything except inner iterators and the loop iterator
    all_names = set()
    for l in inner_loops:
        all_names |= set(all_vars(l.begin)) | set(all_vars(l.end))
    allowed = (all_names | set(all_vars(rest))) - inner_names - {iter_var}
    _lo, up = tightest_bounds(rest, ctx, allowed)
    if up is None or not outer_ok(up):
        return None
    if c > 0:
        # guard true while c*it + UB < 0; first unsafe it = ceil(-UB/c)
        point = (0 - up + c - 1) // c
    else:
        # guard false while (-c)*it < ... ; first always-true iteration
        point = up // (-c) + 1
    return simplify_expr(point)

"""Loop transformations: split, merge, reorder, fission, fuse, swap
(paper Table 1, rows 1-6), each guarded by dependence analysis."""

from __future__ import annotations

import itertools
from typing import List, Optional, Tuple

from ..analysis import DirItem, analyzer_for
from ..errors import DependenceViolation, InvalidSchedule
from ..ir import (For, ForProperty, If, IntConst, StmtSeq, Var, VarDef,
                  collect_stmts, fresh_copy, same_expr, seq, substitute, wrap)
from ..polyhedral import LinCon, is_feasible, try_affine
from .common import (find_loop, find_stmt, fresh_iter, only_stmt_of,
                     parent_of, perfectly_nested, replace_stmt, stmts_of_body)


def split(func, loop_sel, factor=None, nparts=None):
    """Split a loop into two nested loops.

    Exactly one of ``factor`` (inner length) / ``nparts`` (outer length)
    must be given. Returns ``(new_func, outer_sid, inner_sid)``. Always
    legal: iteration order is preserved (a guard protects partial tiles).
    """
    if (factor is None) == (nparts is None):
        raise InvalidSchedule("give exactly one of factor/nparts")
    loop = find_loop(func.body, loop_sel)
    n = loop.len
    if factor is not None:
        f = wrap(factor)
    else:
        f = (n + wrap(nparts) - 1) // wrap(nparts)
    outer_n = (n + f - 1) // f
    io = fresh_iter(func, loop.iter_var + ".o")
    ii = fresh_iter(func, loop.iter_var + ".i")
    offset = Var(io) * f + Var(ii)
    body = substitute(loop.body, {loop.iter_var: loop.begin + offset})
    exact = (isinstance(n, IntConst) and isinstance(f, IntConst)
             and f.val > 0 and n.val % f.val == 0)
    if not exact:
        body = If(offset < n, body)
    inner = For(ii, 0, f, body, loop.property.clone())
    outer = For(io, 0, outer_n, inner, ForProperty())
    outer.label = loop.label
    new_func = replace_stmt(func, loop.sid, outer)
    return new_func, outer.sid, inner.sid


def merge(func, outer_sel, inner_sel):
    """Merge two perfectly nested loops into one. Returns
    ``(new_func, merged_sid)``."""
    outer = find_loop(func.body, outer_sel)
    inner = only_stmt_of(outer)
    if not isinstance(inner, For) or (inner.sid != inner_sel
                                      and inner.label != inner_sel):
        raise InvalidSchedule(
            f"{inner_sel!r} is not perfectly nested inside {outer_sel!r}")
    from ..ir import all_vars

    for b in (inner.begin, inner.end):
        if outer.iter_var in set(all_vars(b)):
            raise InvalidSchedule(
                "cannot merge: inner loop bounds depend on the outer "
                "iterator (non-rectangular nest)")
    n_in = inner.len
    m = fresh_iter(func, f"{outer.iter_var}.{inner.iter_var}")
    body = substitute(
        inner.body, {
            outer.iter_var: outer.begin + Var(m) // n_in,
            inner.iter_var: inner.begin + Var(m) % n_in,
        })
    merged = For(m, 0, outer.len * n_in, body, outer.property.clone())
    merged.label = outer.label
    new_func = replace_stmt(func, outer.sid, merged)
    return new_func, merged.sid


def reorder(func, order: List[str], analyzer=None):
    """Permute a perfectly nested loop band into the given order.

    Illegal when some dependence would become lexicographically negative
    (paper 4.2.1). Returns the new func.
    """
    if len(order) < 2:
        raise InvalidSchedule("reorder needs at least two loops")
    sels = [find_loop(func.body, s).sid for s in order]
    # Identify the current band: the outermost selected loop downwards.
    paths = {sid: len(_enclosing_sids(func, sid)) for sid in sels}
    outer_sid = min(sels, key=lambda s: paths[s])
    outer = find_loop(func.body, outer_sid)
    band: List[For] = [outer]
    cur = outer
    while set(l.sid for l in band) != set(sels):
        nxt = only_stmt_of(cur)
        if not isinstance(nxt, For):
            raise InvalidSchedule("loops to reorder are not perfectly nested")
        band.append(nxt)
        cur = nxt
    if len(band) != len(sels):
        raise InvalidSchedule("reorder loops must form a contiguous band")

    old_order = [l.sid for l in band]
    new_order = sels
    perm = [old_order.index(s) for s in new_order]

    _check_permutation_legal(func, band, perm, analyzer)

    innermost_body = band[-1].body
    loops_by_sid = {l.sid: l for l in band}
    new_nest = innermost_body
    for sid in reversed(new_order):
        l = loops_by_sid[sid]
        nf = For(l.iter_var, l.begin, l.end, new_nest, l.property.clone())
        nf.sid, nf.label = l.sid, l.label
        new_nest = nf
    return replace_stmt(func, outer.sid, lambda _s: new_nest)


def _enclosing_sids(func, sid):
    from .common import path_to

    return [s.sid for s in path_to(func.body, sid)[:-1]]


def _check_permutation_legal(func, band: List[For], perm: List[int],
                             analyzer=None):
    """Enumerate direction vectors that flip lexicographic sign."""
    n = len(band)
    analyzer = analyzer_for(func, analyzer)
    for vec in itertools.product("<=>", repeat=n):
        if _lex_sign(vec) != 1:
            continue  # cannot exist as a dependence
        new_vec = [vec[perm[k]] for k in range(n)]
        if _lex_sign(new_vec) != -1:
            continue  # still legal after permutation
        direction = [
            DirItem.same_loop(band[k].sid, vec[k]) for k in range(n)
        ]
        deps = analyzer.find(direction=direction, first_only=True)
        if deps:
            raise DependenceViolation(
                f"reorder violates {deps[0]} (direction {''.join(vec)})",
                deps)


def _lex_sign(vec) -> int:
    for v in vec:
        if v == ">":
            return 1
        if v == "<":
            return -1
    return 0


def fission(func, loop_sel, after_sel, analyzer=None):
    """Fission a loop into two at the statement ``after_sel`` (which ends
    the first loop). Returns ``(new_func, front_sid, back_sid)``.

    The split point must be a direct child of the loop body, possibly
    under a chain of VarDefs; VarDefs above the split are duplicated into
    both loops, which is only legal when no value flows through them
    across the split point (cache the variable first otherwise).
    """
    loop = find_loop(func.body, loop_sel)
    prefixes, front_inner, back_inner, defs = _split_body(func, loop,
                                                          after_sel)
    if not back_inner:
        raise InvalidSchedule("fission point is at the loop boundary")

    front_sids = set()
    for group in prefixes + [front_inner]:
        for s in group:
            front_sids |= _subtree_sids(s)
    back_sids = set()
    for s in back_inner:
        back_sids |= _subtree_sids(s)

    analyzer = analyzer_for(func, analyzer)
    for s2 in back_inner:
        for group in prefixes + [front_inner]:
            for s1 in group:
                deps = analyzer.find(
                    earlier_in=s2.sid,
                    later_in=s1.sid,
                    direction=[DirItem.same_loop(loop.sid, ">")],
                    first_only=True)
                if deps:
                    raise DependenceViolation(
                        f"fission would reverse {deps[0]}", deps)

    for vd in defs:
        deps = analyzer.find(tensors=[vd.name])
        for d in deps:
            if d.earlier.stmt.sid in front_sids \
                    and d.later.stmt.sid in back_sids:
                raise DependenceViolation(
                    f"variable {vd.name!r} is live across the fission "
                    f"point; cache it first", [d])

    def build_front(k):
        if k == len(defs):
            return seq(front_inner)
        d = defs[k]
        nd = VarDef(d.name, d.shape, d.dtype, d.atype, d.mtype,
                    build_front(k + 1), d.pinned)
        nd.init_data = d.init_data
        nd.sid, nd.label = d.sid, d.label
        return seq(list(prefixes[k]) + [nd])

    front_body = build_front(0)

    from ..ir import fresh_name, rename_tensor, used_names

    taken = used_names(func)
    back_body = seq([fresh_copy(s) for s in back_inner])
    rename_map = {}
    for d in defs:
        rename_map[d.name] = fresh_name(d.name + ".b", taken)
        taken.add(rename_map[d.name])
        back_body = rename_tensor(back_body, d.name, rename_map[d.name])
    for d in reversed(defs):
        nd = VarDef(rename_map[d.name], d.shape, d.dtype, d.atype, d.mtype,
                    back_body, d.pinned)
        nd.init_data = d.init_data
        back_body = nd
    it2 = fresh_iter(func, loop.iter_var + ".f")
    back_body = substitute(back_body, {loop.iter_var: Var(it2)})

    l1 = For(loop.iter_var, loop.begin, loop.end, front_body,
             loop.property.clone())
    l2 = For(it2, loop.begin, loop.end, back_body, loop.property.clone())
    l1.label = loop.label
    new_func = replace_stmt(func, loop.sid, seq([l1, l2]))
    return new_func, l1.sid, l2.sid


def _subtree_sids(stmt):
    return {s.sid for s in collect_stmts(stmt, lambda _s: True)}


def _split_body(func, loop: For, after_sel: str):
    """Locate the split point under trailing VarDef chains.

    Returns ``(prefix_groups, front_inner, back_inner, defs)`` where
    ``prefix_groups[k]`` are the statements preceding ``defs[k]`` at its
    nesting level.
    """
    target = find_stmt(func.body, after_sel)
    defs: List[VarDef] = []
    prefixes: List[List] = []
    body = loop.body
    while True:
        stmts = stmts_of_body(body)
        idx = None
        for i, s in enumerate(stmts):
            if s.sid == target.sid or target.sid in _subtree_sids(s):
                idx = i
                break
        if idx is None:
            raise InvalidSchedule(
                f"{after_sel!r} is not inside loop {loop.sid}")
        s = stmts[idx]
        if s.sid == target.sid:
            return prefixes, stmts[:idx + 1], stmts[idx + 1:], defs
        if isinstance(s, VarDef) and idx == len(stmts) - 1:
            prefixes.append(stmts[:idx])
            defs.append(s)
            body = s.body
            continue
        raise InvalidSchedule(
            f"{after_sel!r} must be a direct child of the loop body "
            f"(possibly under VarDefs)")


def fuse(func, loop0_sel, loop1_sel, analyzer=None):
    """Fuse two consecutive loops of equal length into one.

    Returns ``(new_func, fused_sid)``. Illegal when a dependence from the
    first loop to the second would be reversed by interleaving (the paper's
    dot_max example, section 4.2). When the loops are separated only by
    VarDef scopes and statements independent of the first loop, the scopes
    are extended and the statements swapped ahead automatically (the
    enabling moves of ``auto_fuse``).
    """
    l0 = find_loop(func.body, loop0_sel)
    l1 = find_loop(func.body, loop1_sel)
    if not _are_consecutive(func, l0, l1):
        func = _make_siblings(func, l0.sid, l1.sid, analyzer)
        l0 = find_loop(func.body, l0.sid)
        l1 = find_loop(func.body, l1.sid)
    parent = parent_of(func.body, l0.sid)
    if not isinstance(parent, StmtSeq):
        raise InvalidSchedule("loops to fuse must be siblings")
    idx = [i for i, s in enumerate(parent.stmts) if s.sid == l0.sid]
    if not idx or idx[0] + 1 >= len(parent.stmts) or \
            parent.stmts[idx[0] + 1].sid != l1.sid:
        raise InvalidSchedule("loops to fuse must be consecutive")

    if not _provably_equal(l0.len, l1.len):
        raise InvalidSchedule(
            f"cannot fuse loops of (possibly) different lengths "
            f"{l0.len!r} vs {l1.len!r}")

    analyzer = analyzer_for(func, analyzer)
    deps = analyzer.find(
        earlier_in=l0.sid,
        later_in=l1.sid,
        direction=[DirItem.cross_loop(l0.sid, l1.sid, "<")],
        first_only=True)
    if deps:
        raise DependenceViolation(f"fuse would reverse {deps[0]}", deps)

    it = fresh_iter(func, l0.iter_var)
    body0 = substitute(l0.body, {l0.iter_var: l0.begin + Var(it)})
    body1 = substitute(l1.body, {l1.iter_var: l1.begin + Var(it)})
    fused = For(it, 0, l0.len, seq([body0, body1]), l0.property.clone())
    fused.label = l0.label

    def on_parent(p: StmtSeq):
        stmts = [s for s in p.stmts if s.sid != l1.sid]
        out = StmtSeq([fused if s.sid == l0.sid else s for s in stmts])
        out.sid, out.label = p.sid, p.label
        return out

    new_func = replace_stmt(func, parent.sid, on_parent)
    return new_func, fused.sid


def _are_consecutive(func, l0: For, l1: For) -> bool:
    parent = parent_of(func.body, l0.sid)
    if not isinstance(parent, StmtSeq):
        return False
    for i, s in enumerate(parent.stmts[:-1]):
        if s.sid == l0.sid:
            return parent.stmts[i + 1].sid == l1.sid
    return False


def _make_siblings(func, l0_sid: str, l1_sid: str, analyzer=None):
    """Normalisation enabling fuse: extend VarDef scopes separating the two
    loops over both, and move the separating statements before the first
    loop (dependence-checked)."""
    from .common import loops_on_path, path_to

    parent = parent_of(func.body, l0_sid)
    if not isinstance(parent, StmtSeq):
        raise InvalidSchedule("loops to fuse must share a statement "
                              "sequence (possibly across VarDef scopes)")
    pos = next((i for i, s in enumerate(parent.stmts) if s.sid == l0_sid),
               None)
    if pos is None:
        raise InvalidSchedule("loops to fuse must share a parent")
    pre = list(parent.stmts[:pos])
    l0 = parent.stmts[pos]
    items = list(parent.stmts[pos + 1:])
    defs: List[VarDef] = []
    between: List = []
    l1 = None
    rest: List = []
    while l1 is None:
        progressed = False
        for i, it in enumerate(items):
            if it.sid == l1_sid:
                l1 = it
                rest = items[i + 1:]
                between.extend(items[:i])
                progressed = True
                break
            if isinstance(it, VarDef) and i == len(items) - 1:
                between.extend(items[:i])
                defs.append(it)
                items = stmts_of_body(it.body)
                progressed = True
                break
        if not progressed:
            raise InvalidSchedule(
                f"loop {l1_sid!r} does not follow {l0_sid!r} in program "
                f"order")

    # Moving `between` statements ahead of l0 flips their order with l0:
    # require no loop-independent dependence between them and l0.
    common_loops = loops_on_path(func.body, parent.sid)
    direction = [DirItem.same_loop(l.sid, "=") for l in common_loops]
    analyzer = analyzer_for(func, analyzer)
    for b in between:
        for earlier_sid, later_sid in ((l0.sid, b.sid), (b.sid, l0.sid)):
            deps = analyzer.find(earlier_in=earlier_sid,
                                 later_in=later_sid,
                                 direction=direction,
                                 first_only=True)
            if deps:
                raise DependenceViolation(
                    f"cannot move {b.sid} across {l0.sid} to enable fuse: "
                    f"{deps[0]}", deps)

    inner = seq(list(between) + [l0, l1] + list(rest))
    for d in reversed(defs):
        nd = VarDef(d.name, d.shape, d.dtype, d.atype, d.mtype, inner,
                    d.pinned)
        nd.sid, nd.label, nd.init_data = d.sid, d.label, d.init_data
        inner = nd

    def on_parent(p: StmtSeq):
        out = StmtSeq(pre + [inner])
        out.sid, out.label = p.sid, p.label
        return out

    return replace_stmt(func, parent.sid, on_parent)


def _provably_equal(a, b) -> bool:
    if same_expr(a, b):
        return True
    ra = try_affine(a)
    rb = try_affine(b)
    if ra is None or rb is None:
        return False
    aa, ca, _ = ra
    ab, cb, _ = rb
    # equal for all parameter values iff (a != b) is infeasible
    return not (is_feasible(ca + cb + [LinCon.lt(aa, ab)])
                or is_feasible(ca + cb + [LinCon.gt(aa, ab)]))


def swap(func, stmt_sels: List[str], analyzer=None):
    """Reorder consecutive sibling statements into the given order.

    Illegal when two statements whose relative order changes have a
    loop-independent dependence. Returns the new func.
    """
    stmts = [find_stmt(func.body, s) for s in stmt_sels]
    parent = parent_of(func.body, stmts[0].sid)
    if not isinstance(parent, StmtSeq):
        raise InvalidSchedule("swap targets must be siblings in a sequence")
    sids = [s.sid for s in stmts]
    positions = {s.sid: i for i, s in enumerate(parent.stmts)}
    if not all(sid in positions for sid in sids):
        raise InvalidSchedule("swap targets must share one parent sequence")
    idxs = sorted(positions[sid] for sid in sids)
    if idxs != list(range(idxs[0], idxs[0] + len(idxs))):
        raise InvalidSchedule("swap targets must be consecutive")

    from .common import loops_on_path

    common_loops = loops_on_path(func.body, parent.sid)
    direction = [DirItem.same_loop(l.sid, "=") for l in common_loops]
    analyzer = analyzer_for(func, analyzer)
    old_order = [s.sid for s in parent.stmts[idxs[0]:idxs[0] + len(idxs)]]
    new_rank = {sid: k for k, sid in enumerate(sids)}
    for a_pos, a_sid in enumerate(old_order):
        for b_sid in old_order[a_pos + 1:]:
            if new_rank[b_sid] < new_rank[a_sid]:  # order flips
                deps = analyzer.find(earlier_in=a_sid,
                                     later_in=b_sid,
                                     direction=direction,
                                     first_only=True)
                if deps:
                    raise DependenceViolation(
                        f"swap would reverse {deps[0]}", deps)

    by_sid = {s.sid: s for s in parent.stmts}
    new_children = list(parent.stmts)
    for off, sid in enumerate(sids):
        new_children[idxs[0] + off] = by_sid[sid]

    def on_parent(p: StmtSeq):
        out = StmtSeq(new_children)
        out.sid, out.label = p.sid, p.label
        return out

    return replace_stmt(func, parent.sid, on_parent)

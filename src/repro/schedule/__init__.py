"""Dependence-aware schedule transformations (paper Table 1)."""

from .schedule import Schedule
from .parallel_trans import PARALLEL_KINDS

__all__ = ["Schedule", "PARALLEL_KINDS"]

"""Longformer sliding-window attention (paper section 1, Figures 1 and 5).

Each token attends to tokens within a window of radius ``w``:
``y_i = sum_j softmax_j(q_i . k_{i+j} / sqrt(d)) * v_{i+j}`` over
``j in [-w, w]`` clipped to the sequence.

- :func:`make_program` — FreeTensor: direct indexing ``k[i+j]`` (paper
  Fig. 5), out-of-window entries masked inline; memory cost O(n*d).
- :func:`run_baseline` — operator-based (paper Fig. 1(c)): pad + a
  materialised sliding-window copy of K and V (O(n*w*d) extra memory!),
  batched matmuls, masked softmax.
- :func:`reference` — NumPy ground truth.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

import repro as ft
from .data import token_sequence


def make_data(seq_len: int = 128, feat_len: int = 16, w: int = 8,
              seed: int = 0) -> Dict[str, np.ndarray]:
    data = token_sequence(seq_len, feat_len, seed)
    data["w"] = w
    return data


def make_program() -> ft.Program:
    """FreeTensor implementation (paper Fig. 5 plus softmax and V)."""

    @ft.transform
    def longformer(q: ft.Tensor[("n", "d"), "f32", "input"],
                   k: ft.Tensor[("n", "d"), "f32", "input"],
                   v: ft.Tensor[("n", "d"), "f32", "input"],
                   w: ft.Size):
        y = ft.zeros((q.shape(0), q.shape(1)), "f32")
        for i in range(q.shape(0)):
            dot = ft.empty((2 * w + 1,), "f32")
            for j in range(-w, w + 1):
                if i + j >= 0 and i + j < q.shape(0):
                    dot[j + w] = 0.0
                    for p in range(q.shape(1)):
                        dot[j + w] += q[i, p] * k[i + j, p]
                else:
                    dot[j + w] = -float("inf")
            scale = ft.sqrt(1.0 * q.shape(1))
            mx = -float("inf")
            for j in range(2 * w + 1):
                mx = ft.max(mx, dot[j] / scale)
            attn = ft.empty((2 * w + 1,), "f32")
            s = 0.0
            for j in range(2 * w + 1):
                attn[j] = ft.exp(dot[j] / scale - mx)
                s += attn[j]
            for j in range(-w, w + 1):
                if i + j >= 0 and i + j < q.shape(0):
                    for p in range(q.shape(1)):
                        y[i, p] += attn[j + w] / s * v[i + j, p]
        return y

    return longformer


def make_dilated_program() -> ft.Program:
    """Dilated sliding-window attention (the Longformer paper's second
    pattern: the window samples every ``dil``-th token, widening the
    receptive field at the same cost). Expressed in the DSL it is one
    index change — ``k[i + j * dil]`` — whereas the operator-based
    formulation needs a whole new strided gather."""

    @ft.transform
    def longformer_dilated(q: ft.Tensor[("n", "d"), "f32", "input"],
                           k: ft.Tensor[("n", "d"), "f32", "input"],
                           v: ft.Tensor[("n", "d"), "f32", "input"],
                           w: ft.Size, dil: ft.Size):
        y = ft.zeros((q.shape(0), q.shape(1)), "f32")
        for i in range(q.shape(0)):
            dot = ft.empty((2 * w + 1,), "f32")
            for j in range(-w, w + 1):
                if i + j * dil >= 0 and i + j * dil < q.shape(0):
                    dot[j + w] = 0.0
                    for p in range(q.shape(1)):
                        dot[j + w] += q[i, p] * k[i + j * dil, p]
                else:
                    dot[j + w] = -float("inf")
            scale = ft.sqrt(1.0 * q.shape(1))
            mx = -float("inf")
            for j in range(2 * w + 1):
                mx = ft.max(mx, dot[j] / scale)
            attn = ft.empty((2 * w + 1,), "f32")
            s = 0.0
            for j in range(2 * w + 1):
                attn[j] = ft.exp(dot[j] / scale - mx)
                s += attn[j]
            for j in range(-w, w + 1):
                if i + j * dil >= 0 and i + j * dil < q.shape(0):
                    for p in range(q.shape(1)):
                        y[i, p] += attn[j + w] / s * v[i + j * dil, p]
        return y

    return longformer_dilated


def reference_dilated(data: Dict[str, np.ndarray],
                      dilation: int) -> np.ndarray:
    q, k, v, w = data["q"], data["k"], data["v"], data["w"]
    n, d = q.shape
    out = np.zeros_like(q)
    for i in range(n):
        js = np.arange(-w, w + 1) * dilation + i
        js = js[(js >= 0) & (js < n)]
        dots = (q[i] @ k[js].T) / np.sqrt(d)
        a = np.exp(dots - dots.max())
        a /= a.sum()
        out[i] = a @ v[js]
    return out.astype(np.float32)


def reference(data: Dict[str, np.ndarray]) -> np.ndarray:
    q, k, v, w = data["q"], data["k"], data["v"], data["w"]
    n, d = q.shape
    out = np.zeros_like(q)
    for i in range(n):
        lo, hi = max(0, i - w), min(n, i + w + 1)
        dots = (q[i] @ k[lo:hi].T) / np.sqrt(d)
        a = np.exp(dots - dots.max())
        a /= a.sum()
        out[i] = a @ v[lo:hi]
    return out.astype(np.float32)


def run_baseline(data: Dict[str, np.ndarray], device=None,
                 requires_grad: bool = False):
    """Operator-based implementation (paper Fig. 1(b)/(c)).

    K and V are padded and copied ``(2w+1)``-fold via the materialised
    sliding-window operator — the paper's memory redundancy — then the
    whole attention is batched matmuls and one softmax kernel.
    """
    from ..baselines import (add, bmm, pad, reshape, sliding_window,
                             softmax, tensor, transpose)

    q0, k0, v0, w = data["q"], data["k"], data["v"], data["w"]
    n, d = q0.shape
    q = tensor(q0, device, requires_grad=requires_grad)
    k = tensor(k0, device, requires_grad=requires_grad)
    v = tensor(v0, device, requires_grad=requires_grad)

    k_pad = pad(k, ((w, w), (0, 0)))
    v_pad = pad(v, ((w, w), (0, 0)))
    k_win = sliding_window(k_pad, 2 * w + 1)   # (n, 2w+1, d) materialised
    v_win = sliding_window(v_pad, 2 * w + 1)   # (n, 2w+1, d) materialised

    # dot[i, j] = q[i] . k_win[i, j] / sqrt(d)
    q3 = reshape(q, (n, d, 1))
    dots = reshape(bmm(k_win, q3), (n, 2 * w + 1)) * (1.0 / np.sqrt(d))

    # mask out-of-sequence positions (a constant tensor, as in PyTorch)
    jj = np.arange(-w, w + 1)[None, :]
    ii = np.arange(n)[:, None]
    mask = np.where((ii + jj >= 0) & (ii + jj < n), 0.0,
                    -np.inf).astype(np.float32)
    dots = add(dots, tensor(mask, device))
    attn = softmax(dots, axis=1)               # (n, 2w+1)

    a3 = reshape(attn, (n, 1, 2 * w + 1))
    y = reshape(bmm(a3, v_win), (n, d))
    return y, {"q": q, "k": k, "v": v}


def grad_reference(data: Dict[str, np.ndarray], out_grad: np.ndarray
                   ) -> Dict[str, np.ndarray]:
    """NumPy gradients of (y * out_grad).sum() w.r.t. q, k, v."""
    q, k, v, w = data["q"], data["k"], data["v"], data["w"]
    n, d = q.shape
    gq = np.zeros_like(q)
    gk = np.zeros_like(k)
    gv = np.zeros_like(v)
    for i in range(n):
        lo, hi = max(0, i - w), min(n, i + w + 1)
        dots = (q[i] @ k[lo:hi].T) / np.sqrt(d)
        a = np.exp(dots - dots.max())
        a /= a.sum()
        g = out_grad[i]
        ga = v[lo:hi] @ g
        gd = a * (ga - (a * ga).sum())
        gq[i] += gd @ k[lo:hi] / np.sqrt(d)
        gk[lo:hi] += np.outer(gd, q[i]) / np.sqrt(d)
        gv[lo:hi] += np.outer(a, g)
    return {"q": gq.astype(np.float32), "k": gk.astype(np.float32),
            "v": gv.astype(np.float32)}

"""SoftRas: a differentiable soft rasterizer (paper section 6.1).

For every pixel p and projected triangle f the soft rasterizer computes a
smooth inside/outside score from the three edge functions,

``score(p, f) = prod_e sigmoid(cross_e(p, f) / sigma)``

and aggregates the silhouette ``I(p) = 1 - prod_f (1 - score(p, f))``
(the probabilistic union of Liu et al.'s Soft Rasterizer). Everything is
smooth, so the image is differentiable w.r.t. vertex positions.

- :func:`make_program` — FreeTensor: one fine-grained pixel-face loop
  nest; the inner product over faces accumulates in log space so reverse-
  mode AD sees a ``+=`` reduction (and can *recompute* the cheap per-pair
  score instead of materialising an (H, W, F) tensor — the Fig. 18
  experiment).
- :func:`run_baseline` — operator-based: broadcast the full
  (H*W, F) pixel-face interaction tensors through whole-tensor kernels
  (the vmap-style formulation the paper credits JAX/PyTorch with).
- :func:`reference` — NumPy ground truth.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

import repro as ft
from .data import pixel_grid, projected_triangles

#: sharpness of the edge sigmoid (the paper's sigma)
INV_SIGMA = 60.0
#: guard for the log-space accumulation
EPS = 1e-6


def make_data(n_faces: int = 16, image_size: int = 16, seed: int = 0
              ) -> Dict[str, np.ndarray]:
    data = projected_triangles(n_faces, image_size, seed)
    data["px"] = pixel_grid(image_size)
    del data["image_size"]
    return data


def make_program() -> ft.Program:
    """FreeTensor implementation: per pixel-face geometry, log-space
    aggregation."""

    @ft.transform
    def softras(verts: ft.Tensor[("m", 3, 2), "f32", "input"],
                px: ft.Tensor[("h", "wd", 2), "f32", "input"]):
        img = ft.zeros((px.shape(0), px.shape(1)), "f32")
        for hh in range(px.shape(0)):
            for ww in range(px.shape(1)):
                acc = 0.0  # log prod_f (1 - score_f)
                for f in range(verts.shape(0)):
                    # inside score: product of the three edge sigmoids,
                    # written as one expression (cheap to recompute in
                    # the backward pass instead of materialising)
                    score = (
                        ft.sigmoid(
                            ((verts[f, 1, 0] - verts[f, 0, 0]) *
                             (px[hh, ww, 1] - verts[f, 0, 1]) -
                             (verts[f, 1, 1] - verts[f, 0, 1]) *
                             (px[hh, ww, 0] - verts[f, 0, 0]))
                            * INV_SIGMA) *
                        ft.sigmoid(
                            ((verts[f, 2, 0] - verts[f, 1, 0]) *
                             (px[hh, ww, 1] - verts[f, 1, 1]) -
                             (verts[f, 2, 1] - verts[f, 1, 1]) *
                             (px[hh, ww, 0] - verts[f, 1, 0]))
                            * INV_SIGMA) *
                        ft.sigmoid(
                            ((verts[f, 0, 0] - verts[f, 2, 0]) *
                             (px[hh, ww, 1] - verts[f, 2, 1]) -
                             (verts[f, 0, 1] - verts[f, 2, 1]) *
                             (px[hh, ww, 0] - verts[f, 2, 0]))
                            * INV_SIGMA))
                    acc += ft.log(1.0 + EPS - score)
                img[hh, ww] = 1.0 - ft.exp(acc)
        return img

    return softras


def _scores_numpy(verts: np.ndarray, px: np.ndarray) -> np.ndarray:
    """(H, W, F) soft inside-scores, broadcast formulation."""
    p = px[:, :, None, :]  # (H, W, 1, 2)
    out = 1.0
    for e in range(3):
        v0 = verts[:, e]            # (F, 2)
        v1 = verts[:, (e + 1) % 3]  # (F, 2)
        cr = ((v1[:, 0] - v0[:, 0]) * (p[..., 1] - v0[:, 1]) -
              (v1[:, 1] - v0[:, 1]) * (p[..., 0] - v0[:, 0]))
        out = out * (1.0 / (1.0 + np.exp(-cr * INV_SIGMA)))
    return out  # (H, W, F)


def reference(data: Dict[str, np.ndarray]) -> np.ndarray:
    scores = _scores_numpy(data["verts"], data["px"])
    acc = np.log(1.0 + EPS - scores).sum(axis=-1)
    return (1.0 - np.exp(acc)).astype(np.float32)


def run_baseline(data: Dict[str, np.ndarray], device=None,
                 requires_grad: bool = False):
    """Operator-based implementation over materialised (H*W, F) tensors.

    This is the vmap formulation: per-face geometry written with
    whole-tensor operators, broadcast over all pixel-face pairs.
    """
    from ..baselines import (add, exp, log, mul, narrow, neg, reshape,
                             sigmoid, sub, sum_, tensor)

    verts, px = data["verts"], data["px"]
    h, w_, _ = px.shape
    m = verts.shape[0]
    vt = tensor(verts, device, requires_grad=requires_grad)
    pxt = tensor(px.reshape(h * w_, 1, 2), device)

    score = None
    for e in range(3):
        v0 = reshape(narrow(vt, 1, e, 1), (1, m, 2))
        v1 = reshape(narrow(vt, 1, (e + 1) % 3, 1), (1, m, 2))
        ex = sub(narrow(v1, 2, 0, 1), narrow(v0, 2, 0, 1))  # (1, m, 1)
        ey = sub(narrow(v1, 2, 1, 1), narrow(v0, 2, 1, 1))
        rx = sub(narrow(pxt, 2, 0, 1), narrow(v0, 2, 0, 1))  # (hw, m, 1)
        ry = sub(narrow(pxt, 2, 1, 1), narrow(v0, 2, 1, 1))
        cr = sub(mul(ex, ry), mul(ey, rx))                   # (hw, m, 1)
        s = sigmoid(mul(cr, INV_SIGMA))
        score = s if score is None else mul(score, s)
    score2 = reshape(score, (h * w_, m))
    acc = sum_(log(add(neg(score2), 1.0 + EPS)), axis=1)     # (hw,)
    img = reshape(add(neg(exp(acc)), 1.0), (h, w_))
    return img, {"verts": vt}


def grad_reference(data: Dict[str, np.ndarray], out_grad: np.ndarray
                   ) -> Dict[str, np.ndarray]:
    """NumPy gradient of (img * out_grad).sum() w.r.t. the vertices."""
    verts, px = data["verts"], data["px"]
    scores = _scores_numpy(verts, px)  # (H, W, F)
    acc = np.log(1.0 + EPS - scores).sum(axis=-1)
    # d img / d score_f = exp(acc) / (1 + EPS - score_f)
    gscore = (out_grad * np.exp(acc))[..., None] / (1.0 + EPS - scores)
    gverts = np.zeros_like(verts)
    p = px[:, :, None, :]
    sig = []
    for e in range(3):
        v0 = verts[:, e]
        v1 = verts[:, (e + 1) % 3]
        cr = ((v1[:, 0] - v0[:, 0]) * (p[..., 1] - v0[:, 1]) -
              (v1[:, 1] - v0[:, 1]) * (p[..., 0] - v0[:, 0]))
        sig.append(1.0 / (1.0 + np.exp(-cr * INV_SIGMA)))
    for e in range(3):
        others = scores / np.maximum(sig[e], 1e-30)
        dsig = sig[e] * (1 - sig[e]) * INV_SIGMA
        gcr = gscore * others * dsig  # (H, W, F)
        v0 = verts[:, e]
        v1 = verts[:, (e + 1) % 3]
        # cr = (x1-x0)(py-y0) - (y1-y0)(px-x0)
        d_x1 = p[..., 1] - v0[:, 1]
        d_y1 = -(p[..., 0] - v0[:, 0])
        d_x0 = -(p[..., 1] - v0[:, 1]) + (v1[:, 1] - v0[:, 1])
        d_y0 = -(v1[:, 0] - v0[:, 0]) + (p[..., 0] - v0[:, 0])
        gverts[:, (e + 1) % 3, 0] += (gcr * d_x1).sum(axis=(0, 1))
        gverts[:, (e + 1) % 3, 1] += (gcr * d_y1).sum(axis=(0, 1))
        gverts[:, e, 0] += (gcr * d_x0).sum(axis=(0, 1))
        gverts[:, e, 1] += (gcr * d_y0).sum(axis=(0, 1))
    return {"verts": gverts.astype(np.float32)}

"""Synthetic input generators for the evaluation workloads.

The paper evaluates on real model inputs (3-D meshes, documents, graphs);
this reproduction generates synthetic data with the same structural
properties — triangle-mesh face adjacency, token sequences, random sparse
graphs in CSR form, and projected triangle soups — sized by a scale
parameter so benchmarks can sweep.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np


def mesh_faces(n_faces: int, in_feats: int, seed: int = 0
               ) -> Dict[str, np.ndarray]:
    """A synthetic closed-mesh structure: per-face features and the
    3-neighbour adjacency array of SubdivNet (paper Fig. 2).

    Adjacency is built from a random 3-regular pairing so every face has
    exactly three distinct neighbours and no self-loops, like a manifold
    triangle mesh's face-adjacency graph.
    """
    rng = np.random.default_rng(seed)
    adj = np.empty((n_faces, 3), np.int32)
    for j in range(3):
        perm = rng.permutation(n_faces)
        # a fixed-point-free shift of a permutation: neighbour != self
        adj[:, j] = np.roll(perm, j + 1)[np.argsort(perm)]
    # ensure the three neighbours of each face are distinct
    for i in range(n_faces):
        while len(set(adj[i])) < 3 or i in adj[i]:
            adj[i] = rng.choice(
                np.setdiff1d(np.arange(n_faces), [i]), 3, replace=False)
    e = rng.standard_normal((n_faces, in_feats)).astype(np.float32)
    return {"adj": adj, "e": e}


def mesh_conv_weights(in_feats: int, out_feats: int, seed: int = 0
                      ) -> Dict[str, np.ndarray]:
    rng = np.random.default_rng(seed + 1)
    w = (rng.standard_normal((4 * in_feats, out_feats)) /
         np.sqrt(4 * in_feats)).astype(np.float32)
    return {"w": w}


def token_sequence(seq_len: int, feat_len: int, seed: int = 0
                   ) -> Dict[str, np.ndarray]:
    """Q/K/V projections of a token sequence (Longformer, paper Fig. 1)."""
    rng = np.random.default_rng(seed)
    mk = lambda: rng.standard_normal((seq_len, feat_len)) \
        .astype(np.float32)
    return {"q": mk(), "k": mk(), "v": mk()}


def random_graph_csr(n_nodes: int, avg_degree: int, seed: int = 0
                     ) -> Dict[str, np.ndarray]:
    """A random directed graph in CSR form (GAT input).

    Uses networkx when available (an Erdos-Renyi graph), falling back to
    direct sampling; every node receives at least one in-edge (a
    self-loop), as GAT implementations conventionally add.
    """
    rng = np.random.default_rng(seed)
    try:
        import networkx as nx

        p = min(1.0, avg_degree / max(1, n_nodes - 1))
        g = nx.gnp_random_graph(n_nodes, p, seed=seed, directed=True)
        edges = np.array(list(g.edges()), dtype=np.int64).reshape(-1, 2)
    except ImportError:  # pragma: no cover - networkx is available here
        m = n_nodes * avg_degree
        edges = rng.integers(0, n_nodes, (m, 2)).astype(np.int64)
    loops = np.stack([np.arange(n_nodes)] * 2, axis=1).astype(np.int64)
    edges = np.concatenate([edges, loops], axis=0)
    # CSR grouped by destination node
    order = np.argsort(edges[:, 1], kind="stable")
    edges = edges[order]
    indices = edges[:, 0].astype(np.int32)
    indptr = np.zeros(n_nodes + 1, np.int32)
    np.add.at(indptr, edges[:, 1] + 1, 1)
    indptr = np.cumsum(indptr).astype(np.int32)
    return {
        "indptr": indptr,
        "indices": indices,
        "src": edges[:, 0].astype(np.int32),
        "dst": edges[:, 1].astype(np.int32),
    }


def projected_triangles(n_faces: int, image_size: int, seed: int = 0
                        ) -> Dict[str, np.ndarray]:
    """Screen-space triangles for the soft rasterizer (SoftRas).

    Vertices live in [0, 1]^2; triangles are small so each covers a few
    pixels, like a projected mesh.
    """
    rng = np.random.default_rng(seed)
    centers = rng.uniform(0.1, 0.9, (n_faces, 1, 2))
    offsets = rng.uniform(-0.15, 0.15, (n_faces, 3, 2))
    verts = (centers + offsets).astype(np.float32)
    return {"verts": verts, "image_size": image_size}


def ragged_token_sequences(n_requests: int, feat_len: int = 16,
                           w: int = 8, min_len: int = 32,
                           max_len: int = 128, seed: int = 0
                           ) -> List[Dict[str, np.ndarray]]:
    """Variable-length Longformer request instances (serving workload).

    Returns one ``make_data``-style dict per request — Q/K/V of shape
    ``(n_i, feat_len)`` with ``n_i`` drawn uniformly from
    ``[min_len, max_len]`` — deterministically for a fixed seed, so
    tests, benchmarks and the serving load generator agree on the exact
    traffic mix.
    """
    rng = np.random.default_rng(seed)
    lens = rng.integers(min_len, max_len + 1, n_requests)
    out = []
    for i, n in enumerate(lens):
        data = token_sequence(int(n), feat_len, seed=seed + 1000 + i)
        data["w"] = w
        out.append(data)
    return out


def ragged_graphs(n_requests: int, feats: int = 8, out_feats: int = 8,
                  min_nodes: int = 24, max_nodes: int = 96,
                  avg_degree: int = 4, seed: int = 0
                  ) -> List[Dict[str, np.ndarray]]:
    """Variable-size GAT graph instances (serving workload).

    One ``gat.make_data``-style dict per request — a CSR graph whose
    node count is drawn uniformly from ``[min_nodes, max_nodes]`` plus
    per-request node features. The attention weights (``wmat``,
    ``att_s``, ``att_d``) are *shared* across all requests, as they
    would be when many clients query one deployed model — which is what
    lets a serving batcher concatenate the graphs block-diagonally into
    one disjoint-union call. Deterministic for a fixed seed.
    """
    rng = np.random.default_rng(seed)
    sizes = rng.integers(min_nodes, max_nodes + 1, n_requests)
    wrng = np.random.default_rng(seed + 1)
    wmat = (wrng.standard_normal((feats, out_feats)) /
            np.sqrt(feats)).astype(np.float32)
    att_s = wrng.standard_normal(out_feats).astype(np.float32)
    att_d = wrng.standard_normal(out_feats).astype(np.float32)
    out = []
    for i, n in enumerate(sizes):
        sub_seed = seed + 2000 + i
        data = random_graph_csr(int(n), avg_degree, seed=sub_seed)
        sub_rng = np.random.default_rng(sub_seed + 2)
        data["h"] = sub_rng.standard_normal((int(n), feats)) \
            .astype(np.float32)
        data["wmat"], data["att_s"], data["att_d"] = wmat, att_s, att_d
        out.append(data)
    return out


def pixel_grid(image_size: int) -> np.ndarray:
    """Pixel-centre coordinates in [0, 1]^2, shape (H, W, 2)."""
    xs = (np.arange(image_size) + 0.5) / image_size
    px = np.stack(np.meshgrid(xs, xs, indexing="ij"), axis=-1)
    return px.astype(np.float32)

"""SubdivNet mesh convolution (paper section 2.2, Figures 2-3).

One mesh-convolution layer: for every face, combine its feature with three
aggregates over its adjacent faces — their sum, the circular difference
``sum_j |e_{j+1} - e_j|`` (the red box of Fig. 2a), and ``sum_j |e_i -
e_j|`` — then apply a dense weight.

Three implementations share one semantics:

- :func:`make_program` — the FreeTensor free-form version (fine-grained
  loops, direct indexing through ``adj``, no gather/concat intermediates);
- :func:`run_baseline` — the operator-based version of paper Fig. 2(c):
  ``index_select -> reshape -> cat -> sub/abs/sum -> matmul``, every step
  a whole-tensor kernel with a materialised result;
- :func:`reference` — plain NumPy, used as ground truth in tests.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

import repro as ft
from .data import mesh_conv_weights, mesh_faces


def make_data(n_faces: int = 64, in_feats: int = 8, out_feats: int = 8,
              seed: int = 0) -> Dict[str, np.ndarray]:
    data = mesh_faces(n_faces, in_feats, seed)
    data.update(mesh_conv_weights(in_feats, out_feats, seed))
    return data


def make_program() -> ft.Program:
    """The FreeTensor implementation (fine-grained, redundancy-free)."""

    @ft.transform
    def subdivnet(adj: ft.Tensor[("n", 3), "i32", "input"],
                  e: ft.Tensor[("n", "f"), "f32", "input"],
                  w: ft.Tensor[("g", "o"), "f32", "input"]):
        assert w.shape(0) == 4 * e.shape(1)
        y = ft.zeros((adj.shape(0), w.shape(1)), "f32")
        for i in range(adj.shape(0)):
            # the four aggregate feature blocks, built in place
            feat = ft.zeros((4 * e.shape(1),), "f32")
            for k in range(e.shape(1)):
                feat[k] = e[i, k]
            for j in range(3):
                for k in range(e.shape(1)):
                    feat[e.shape(1) + k] += e[adj[i, j], k]
                    feat[2 * e.shape(1) + k] += ft.abs(
                        e[adj[i, (j + 1) % 3], k] - e[adj[i, j], k])
                    feat[3 * e.shape(1) + k] += ft.abs(
                        e[i, k] - e[adj[i, j], k])
            for oo in range(w.shape(1)):
                for g in range(w.shape(0)):
                    y[i, oo] += feat[g] * w[g, oo]
        return y

    return subdivnet


def reference(data: Dict[str, np.ndarray]) -> np.ndarray:
    adj, e, w = data["adj"], data["e"], data["w"]
    nb = e[adj]  # (n, 3, f)
    f1 = nb.sum(axis=1)
    f2 = np.abs(e[adj[:, [1, 2, 0]]] - nb).sum(axis=1)
    f3 = np.abs(e[:, None, :] - nb).sum(axis=1)
    feat = np.concatenate([e, f1, f2, f3], axis=1)
    return (feat @ w).astype(np.float32)


def run_baseline(data: Dict[str, np.ndarray], device=None,
                 requires_grad: bool = False):
    """Operator-based implementation (paper Fig. 2(b)/(c)).

    Returns ``(output OpTensor, leaf dict)``; with ``requires_grad`` the
    leaves record gradients after ``out.backward()``.
    """
    from ..baselines import (abs_, cat, index_select, matmul, narrow,
                             reshape, sub, sum_, tensor)

    adj = data["adj"]
    n, three = adj.shape
    e = tensor(data["e"], device, requires_grad=requires_grad)
    w = tensor(data["w"], device, requires_grad=requires_grad)
    idx = tensor(adj.reshape(-1), device, dtype=np.int64)

    # Step 1 (Fig. 2c): gather neighbour features into a full 3-D tensor
    adj_feat = reshape(index_select(e, 0, idx),
                       (n, three, data["e"].shape[1]))
    # Step 2: slice / reorder / concatenate to align e_{j+1} with e_j
    reordered = cat([narrow(adj_feat, 1, 1, 2),
                     narrow(adj_feat, 1, 0, 1)], axis=1)
    # Step 3: arithmetic on the materialised tensors
    f1 = sum_(adj_feat, axis=1)
    f2 = sum_(abs_(sub(reordered, adj_feat)), axis=1)
    e3 = reshape(e, (n, 1, data["e"].shape[1]))
    f3 = sum_(abs_(sub(e3, adj_feat)), axis=1)
    feat = cat([e, f1, f2, f3], axis=1)
    out = matmul(feat, w)
    return out, {"e": e, "w": w}


def grad_reference(data: Dict[str, np.ndarray], out_grad: np.ndarray
                   ) -> Dict[str, np.ndarray]:
    """NumPy gradient of (out * out_grad).sum() w.r.t. e and w."""
    adj, e, w = data["adj"], data["e"], data["w"]
    n, f = e.shape
    nb = e[adj]
    f1 = nb.sum(axis=1)
    f2 = np.abs(e[adj[:, [1, 2, 0]]] - nb).sum(axis=1)
    f3 = np.abs(e[:, None, :] - nb).sum(axis=1)
    feat = np.concatenate([e, f1, f2, f3], axis=1)
    gw = feat.T @ out_grad
    gfeat = out_grad @ w.T
    g0, g1, g2, g3 = np.split(gfeat, 4, axis=1)
    ge = g0.copy()
    np.add.at(ge, adj.reshape(-1), np.repeat(g1, 3, axis=0))
    d2 = np.sign(e[adj[:, [1, 2, 0]]] - nb)
    np.add.at(ge, adj[:, [1, 2, 0]].reshape(-1),
              (d2 * g2[:, None, :]).reshape(-1, f))
    np.add.at(ge, adj.reshape(-1), (-d2 * g2[:, None, :]).reshape(-1, f))
    d3 = np.sign(e[:, None, :] - nb)
    ge += (d3 * g3[:, None, :]).sum(axis=1)
    np.add.at(ge, adj.reshape(-1), (-d3 * g3[:, None, :]).reshape(-1, f))
    return {"e": ge.astype(np.float32), "w": gw.astype(np.float32)}

"""GAT: one graph-attention layer (paper section 6.1, Velickovic et al.).

For each node i with in-neighbours N(i):

``e_ij = LeakyReLU(a_s . (W h_j) + a_d . (W h_i))``,
``alpha_ij = softmax_j(e_ij)``,
``h'_i = sum_j alpha_ij (W h_j)``.

- :func:`make_program` — FreeTensor: CSR traversal with a fine-grained
  per-neighbourhood softmax; the projected features are computed once by
  an inlined matmul (which ``auto_use_lib`` maps to the vendor library).
- :func:`run_baseline` — a DGL-style message-passing implementation:
  edge-parallel gather kernels, segment max/sum kernels, scatter updates.
- :func:`reference` — NumPy ground truth.

As in the paper, only the forward pass is evaluated for GAT.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

import repro as ft
from repro import libop
from .data import random_graph_csr

LEAKY_SLOPE = 0.2


def make_data(n_nodes: int = 64, avg_degree: int = 4, feats: int = 8,
              out_feats: int = 8, seed: int = 0) -> Dict[str, np.ndarray]:
    data = random_graph_csr(n_nodes, avg_degree, seed)
    rng = np.random.default_rng(seed + 2)
    data["h"] = rng.standard_normal((n_nodes, feats)).astype(np.float32)
    data["wmat"] = (rng.standard_normal((feats, out_feats)) /
                    np.sqrt(feats)).astype(np.float32)
    data["att_s"] = rng.standard_normal(out_feats).astype(np.float32)
    data["att_d"] = rng.standard_normal(out_feats).astype(np.float32)
    return data


def make_program() -> ft.Program:
    """FreeTensor implementation: fused projection + CSR attention."""

    @ft.transform
    def gat(indptr: ft.Tensor[("n1",), "i32", "input"],
            indices: ft.Tensor[("m",), "i32", "input"],
            h: ft.Tensor[("n", "f"), "f32", "input"],
            wmat: ft.Tensor[("f", "o"), "f32", "input"],
            att_s: ft.Tensor[("o",), "f32", "input"],
            att_d: ft.Tensor[("o",), "f32", "input"]):
        assert indptr.shape(0) == h.shape(0) + 1
        hw = libop.matmul(h, wmat)          # (n, o), inlined
        # per-node source/destination attention scores
        s_src = ft.zeros((h.shape(0),), "f32")
        s_dst = ft.zeros((h.shape(0),), "f32")
        for i in range(h.shape(0)):
            for oo in range(wmat.shape(1)):
                s_src[i] += att_s[oo] * hw[i, oo]
                s_dst[i] += att_d[oo] * hw[i, oo]
        y = ft.zeros((h.shape(0), wmat.shape(1)), "f32")
        for i in range(h.shape(0)):
            # neighbourhood softmax over in-edges of i, fine-grained
            mx = -float("inf")
            for jj in range(indptr[i], indptr[i + 1]):
                score = s_src[indices[jj]] + s_dst[i]
                mx = ft.max(mx, ft.max(score, score * LEAKY_SLOPE))
            ssum = 0.0
            att = ft.empty((indptr[i + 1] - indptr[i],), "f32")
            for jj in range(indptr[i], indptr[i + 1]):
                score = s_src[indices[jj]] + s_dst[i]
                leaky = ft.max(score, score * LEAKY_SLOPE)
                att[jj - indptr[i]] = ft.exp(leaky - mx)
                ssum += att[jj - indptr[i]]
            for jj in range(indptr[i], indptr[i + 1]):
                for oo in range(wmat.shape(1)):
                    y[i, oo] += att[jj - indptr[i]] / ssum * \
                        hw[indices[jj], oo]
        return y

    return gat


def _leaky(x):
    return np.where(x > 0, x, LEAKY_SLOPE * x)


def reference(data: Dict[str, np.ndarray]) -> np.ndarray:
    indptr, indices = data["indptr"], data["indices"]
    h, wmat = data["h"], data["wmat"]
    att_s, att_d = data["att_s"], data["att_d"]
    hw = h @ wmat
    s_src = hw @ att_s
    s_dst = hw @ att_d
    n, o = hw.shape
    y = np.zeros((n, o), np.float32)
    for i in range(n):
        nbr = indices[indptr[i]:indptr[i + 1]]
        if len(nbr) == 0:
            continue
        e = _leaky(s_src[nbr] + s_dst[i])
        a = np.exp(e - e.max())
        a /= a.sum()
        y[i] = a @ hw[nbr]
    return y.astype(np.float32)


def run_baseline(data: Dict[str, np.ndarray], device=None):
    """DGL-style message passing: one whole-edge-set kernel per step."""
    from ..baselines import (add, div, exp, index_select, leaky_relu,
                             matmul, mul, reshape, scatter_add,
                             scatter_max, sub, sum_, tensor)

    indices, dst = data["indices"], data["dst"]
    h = tensor(data["h"], device)
    wmat = tensor(data["wmat"], device)
    att_s = tensor(data["att_s"].reshape(-1, 1), device)
    att_d = tensor(data["att_d"].reshape(-1, 1), device)
    n = data["h"].shape[0]

    hw = matmul(h, wmat)                              # projection kernel
    s_src = reshape(matmul(hw, att_s), (n,))
    s_dst = reshape(matmul(hw, att_d), (n,))

    src_idx = tensor(data["src"], device, dtype=np.int64)
    dst_idx = tensor(dst, device, dtype=np.int64)
    e_src = index_select(s_src, 0, src_idx)           # gather per edge
    e_dst = index_select(s_dst, 0, dst_idx)
    e = leaky_relu(add(e_src, e_dst), LEAKY_SLOPE)

    neg_inf = tensor(np.full(n, -np.inf, np.float32), device)
    mx = scatter_max(neg_inf, 0, dst_idx, e)          # segment max
    e = exp(sub(e, index_select(mx, 0, dst_idx)))
    denom = scatter_add(tensor(np.zeros(n, np.float32), device), 0,
                        dst_idx, e)                   # segment sum
    alpha = div(e, index_select(denom, 0, dst_idx))

    msg = mul(reshape(alpha, (-1, 1)), index_select(hw, 0, src_idx))
    y = scatter_add(tensor(np.zeros_like(hw.numpy()), device), 0,
                    dst_idx, msg)
    return y, {"h": h, "wmat": wmat}

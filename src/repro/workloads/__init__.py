"""The paper's four evaluation workloads (section 6.1), each implemented
in the FreeTensor DSL and in the operator-based baseline framework, with
NumPy references for verification."""

from . import data, gat, longformer, softras, subdivnet

#: registry used by the benchmark harness
ALL = {
    "subdivnet": subdivnet,
    "longformer": longformer,
    "softras": softras,
    "gat": gat,
}

__all__ = ["ALL", "data", "gat", "longformer", "softras", "subdivnet"]

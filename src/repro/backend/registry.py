"""The unified backend registry: one capability-declaring object per
backend, one ``register_backend`` call to make it real.

Before this module existed, backend knowledge lived in four parallel
registries that had to be updated in lockstep: the ``_BACKENDS`` builder
map in ``runtime/driver.py``, the ``declare_legalization`` table in
``pipeline/legalize.py``, the if/elif capability ladder in
``autosched/target.py`` and stray string dispatch in the searcher. A
:class:`Backend` object now declares everything at once, and every
consumer — codegen dispatch, legalization, the cost model, the verifier,
the structured searcher, the measurement pool and the CLIs — *queries*
the registry instead of special-casing names (the MLIR/TensorIR
retargetability recipe; see PAPERS.md and docs/ARCHITECTURE.md).

Registering a new target is one call against this public API::

    from repro.backend import Backend, BackendCaps, register_backend

    register_backend(Backend(
        name="mytarget",
        build=my_builder,              # (func, **opts) -> run(env)
        caps=my_caps,                  # (target) -> BackendCaps
        legalization=("my_pass",),     # pass names codegen requires
        legalization_impls={"my_pass": my_pass_fn},
        target_kind="cpu",
        caps_version="1",
    ))

and the tuner, cost model, verifier, CLIs and measurement pool all pick
it up with zero further edits — proven in-tree by the blocked-NumPy
``npblock`` backend (``repro.backend.npblock``).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..errors import BackendError


class ScopeRule:
    """One declared memory-scope privacy rule: tensors of ``mtype`` are
    private to each instance of parallel kind ``kind_prefix`` (so a
    cross-thread dependence on such a tensor is impossible — the FT203
    verifier check).

    ``mtype`` is a :class:`~repro.ir.MemType` (or its string value);
    ``kind_prefix`` matches a parallel kind exactly or as a dotted
    prefix (``cuda`` matches ``cuda.blockIdx.x``).
    """

    __slots__ = ("mtype", "kind_prefix", "reason")

    def __init__(self, mtype, kind_prefix: str, reason: str):
        self.mtype = getattr(mtype, "value", str(mtype))
        self.kind_prefix = kind_prefix
        self.reason = reason

    def matches(self, kind: str, mtype) -> bool:
        mval = getattr(mtype, "value", str(mtype))
        if mval != self.mtype:
            return False
        return (kind == self.kind_prefix
                or kind.startswith(self.kind_prefix + "."))

    def __repr__(self):  # pragma: no cover
        return f"ScopeRule({self.mtype} private to {self.kind_prefix})"


class Backend:
    """A first-class backend: the single declaration every stage queries.

    - ``name`` — the registry key (what ``build(backend=...)`` takes);
    - ``build`` — the codegen entry: ``build(func, **opts) -> run(env)``
      (None for codegen-only backends such as ``cuda``, whose IR is
      executed by the simulator instead);
    - ``caps`` — ``caps(target) -> BackendCaps``, the capability table
      the cost model / searcher / verifier consult;
    - ``legalization`` — ordered names of the IR-legalization passes the
      code generator requires (appended to standard lowering by
      ``repro.pipeline``);
    - ``legalization_impls`` — implementations for legalization passes
      this backend brings along (merged into the global pass table at
      registration; built-in pass names may be referenced without one);
    - ``target_kind`` — ``"cpu"`` / ``"gpu"``: which default
      :class:`~repro.autosched.target.Target` to schedule for;
    - ``scope_rules`` — declared :class:`ScopeRule` memory-scope privacy
      facts (drives the verifier's FT203 check);
    - ``caps_version`` — bump when any declaration above changes
      meaning: it is folded into the build cache key and the persistent
      disk-cache discriminators, so stale artifacts self-invalidate.
    """

    __slots__ = ("name", "build", "caps", "legalization",
                 "legalization_impls", "target_kind", "scope_rules",
                 "caps_version", "description")

    def __init__(self, name: str,
                 build: Optional[Callable] = None,
                 caps: Optional[Callable] = None,
                 legalization: Tuple[str, ...] = (),
                 legalization_impls: Optional[Dict[str, Callable]] = None,
                 target_kind: str = "cpu",
                 scope_rules: Tuple[ScopeRule, ...] = (),
                 caps_version: str = "1",
                 description: str = ""):
        if not name or not isinstance(name, str):
            raise ValueError("Backend.name must be a non-empty string")
        if target_kind not in ("cpu", "gpu"):
            raise ValueError(
                f"Backend.target_kind must be 'cpu' or 'gpu', "
                f"got {target_kind!r}")
        self.name = name
        self.build = build
        self.caps = caps
        self.legalization = tuple(legalization)
        self.legalization_impls = dict(legalization_impls or {})
        self.target_kind = target_kind
        self.scope_rules = tuple(scope_rules)
        self.caps_version = str(caps_version)
        self.description = description

    # -- queries -----------------------------------------------------------
    @property
    def runnable(self) -> bool:
        """Whether ``build()`` can execute this backend (codegen-only
        backends emit source but cannot run it here)."""
        return self.build is not None

    def capabilities(self, target=None):
        """The :class:`~repro.backend.caps.BackendCaps` for ``target``
        (default: this backend's default target)."""
        from .caps import BackendCaps

        if target is None:
            target = self.default_target()
        if self.caps is not None:
            return self.caps(target)
        # sequential scalar fallback: every annotation is a no-op
        return BackendCaps(self.name, {}, vector_width=1,
                           stride_matters=False)

    def default_target(self):
        """The default scheduling :class:`~repro.autosched.target.Target`
        for this backend (by declared ``target_kind``)."""
        from ..autosched.target import CPU, GPU

        return GPU if self.target_kind == "gpu" else CPU

    def cache_tag(self) -> str:
        """The content-key discriminator caches fold in for this
        backend: name plus ``caps_version``, so bumping the version
        invalidates every cached artifact built under the old
        declarations."""
        return f"{self.name}@{self.caps_version}"

    def format_failure(self, exc: BaseException) -> str:
        """One consistent rendering of a compile/run failure on this
        backend — used by the driver, the serial measurement path and
        the pool workers alike, so fault-injection logs and metrics
        agree on the backend name."""
        return f"{self.name}: {type(exc).__name__}: {exc}"

    def __repr__(self):  # pragma: no cover
        run = "" if self.runnable else ", codegen-only"
        return f"Backend({self.name}@{self.caps_version}{run})"


# ---------------------------------------------------------------------------
# the registry
# ---------------------------------------------------------------------------

_REGISTRY: Dict[str, Backend] = {}
_BUILTINS_LOADED = False


def _ensure_builtins():
    """Import the built-in backend declarations exactly once (lazily, so
    ``repro.backend`` never drags codegen modules in at import time)."""
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True
    from . import builtin  # noqa: F401  (registers interp/pycode/c/...)
    from . import npblock  # noqa: F401  (registers the npblock target)


def register_backend(backend: Backend, replace: bool = False) -> Backend:
    """Register ``backend`` as the single source of truth for its name.

    This is the whole public registration API: codegen dispatch
    (``build()``), legalization (``repro.pipeline``), capability queries
    (cost model, searcher, verifier), the measurement pool and the CLIs
    all resolve the object registered here. Re-registering a name raises
    unless ``replace=True`` (tests use replace to stub backends).
    """
    if not isinstance(backend, Backend):
        raise TypeError(
            f"register_backend takes a Backend object, "
            f"got {type(backend).__name__}")
    _ensure_builtins()
    if backend.name in _REGISTRY and not replace:
        raise BackendError(
            f"backend {backend.name!r} is already registered; pass "
            f"replace=True to override")
    # validate declared legalization names against the combined table
    # (built-in passes + the impls this backend brings along)
    from ..pipeline.legalize import known_legalization_passes

    known = set(known_legalization_passes()) | set(
        backend.legalization_impls)
    for n in backend.legalization:
        if n not in known:
            raise ValueError(
                f"backend {backend.name!r} declares unknown legalization "
                f"pass {n!r}; known: {sorted(known)} (pass an "
                f"implementation via legalization_impls)")
    _REGISTRY[backend.name] = backend
    return backend


def unregister_backend(name: str) -> None:
    """Remove a registered backend (primarily for tests)."""
    _ensure_builtins()
    _REGISTRY.pop(name, None)


def find_backend(name: str) -> Optional[Backend]:
    """The registered Backend for ``name``, or None."""
    _ensure_builtins()
    return _REGISTRY.get(name)


def get_backend(name: str) -> Backend:
    """The registered Backend for ``name``; raises
    :class:`~repro.errors.BackendError` naming the available ones."""
    b = find_backend(name)
    if b is None:
        raise BackendError(
            f"unknown backend {name!r}; available: "
            f"{available_backends(runnable_only=False)}")
    return b


def available_backends(runnable_only: bool = True) -> List[str]:
    """Sorted names of registered backends (by default only the ones
    ``build()`` can execute — what CLI ``--backend`` choices offer)."""
    _ensure_builtins()
    return sorted(n for n, b in _REGISTRY.items()
                  if b.runnable or not runnable_only)


def backend_caps(name: str, target=None):
    """Capability table for ``name`` on ``target`` — the query behind
    ``Target.capabilities``. Unknown names get the sequential-scalar
    fallback (every annotation a no-op), preserving the cost model's
    historical behaviour for ad-hoc backend strings."""
    from .caps import BackendCaps

    b = find_backend(name)
    if b is None:
        return BackendCaps(name, {}, vector_width=1, stride_matters=False)
    return b.capabilities(target)


def backend_cache_tag(name: str) -> str:
    """``name@caps_version`` for cache keys (plain ``name`` when the
    backend is not registered — nothing declared, nothing to version)."""
    b = find_backend(name)
    return b.cache_tag() if b is not None else name


def scope_violation(kind: str, mtype) -> str:
    """Why a dependence on a tensor of ``mtype`` cannot cross iterations
    of a loop parallelized as ``kind`` — per the scope rules registered
    backends declare — or '' when no declared rule applies (the FT203
    verifier query)."""
    _ensure_builtins()
    for b in _REGISTRY.values():
        for rule in b.scope_rules:
            if rule.matches(kind, mtype):
                return rule.reason
    return ""


def legalization_impl(name: str) -> Optional[Callable]:
    """A legalization pass implementation contributed by a registered
    backend (``legalization_impls``), or None."""
    _ensure_builtins()
    for b in _REGISTRY.values():
        fn = b.legalization_impls.get(name)
        if fn is not None:
            return fn
    return None

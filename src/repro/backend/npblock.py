"""``npblock``: a blocked/vectorized NumPy backend, registered purely
through the public :func:`~repro.backend.register_backend` API.

This module is the retargetability proof for the unified backend
registry (see ``repro.backend.registry``): it adds a genuinely new
runnable target — legalization pass, capability table, code generator
and builder — without touching the driver, the pipeline, the cost
model, the searcher, the verifier or the CLIs. Everything below goes
through one ``register_backend(Backend(...))`` call.

The backend itself:

- **legalization** (``npblock_vectorize``) marks every innermost loop
  whose body the NumPy lowering can turn into whole-array kernels
  (:func:`~repro.codegen.pycode.loop_vectorizes`) *and* that carries no
  cross-iteration dependence as ``vectorize`` — the same legality query
  ``Schedule.vectorize`` enforces, run as an IR pass. ``pycode`` only
  vectorizes loops a schedule marked; ``npblock`` vectorizes whatever
  is provably safe, which is where its speedup on raw (unscheduled)
  builds comes from;
- **codegen** subclasses the pycode generator but lowers each
  vectorized loop over fixed-size blocks of ``REPRO_NPBLOCK_BLOCK``
  elements (default 4096): the iterator becomes a bounded index vector
  per block, so index/temporary vectors stay cache-sized instead of
  materialising whole-loop intermediates. Reductions accumulate
  per block (``tgt += np.sum(...)`` each block), so blocking never
  changes results beyond float reassociation.
"""

from __future__ import annotations

import os
from typing import Dict

from ..ir import For, Func, Mutator, collect_stmts
from ..ir import stmt as S
from .caps import BackendCaps
from .registry import Backend, register_backend

#: elements per vectorized block (env-overridable; must stay positive)
DEFAULT_BLOCK = 4096

#: below this trip count the generated code falls back to the scalar
#: loop at runtime — NumPy's fixed per-kernel dispatch cost loses to a
#: plain Python loop on short trips (env-overridable)
DEFAULT_MIN_TRIP = 32


def _env_int(var: str, default: int) -> int:
    try:
        n = int(os.environ.get(var, default))
    except ValueError:
        n = default
    return max(1, n)


def block_size() -> int:
    return _env_int("REPRO_NPBLOCK_BLOCK", DEFAULT_BLOCK)


def min_vec_trip() -> int:
    return _env_int("REPRO_NPBLOCK_MIN_TRIP", DEFAULT_MIN_TRIP)


# ---------------------------------------------------------------------------
# legalization: auto-mark safe innermost loops as vectorize
# ---------------------------------------------------------------------------


class _MarkVectorizable(Mutator):

    def __init__(self, sids):
        self._sids = sids

    def mutate_For(self, s: For) -> S.Stmt:
        out = self.generic_mutate_stmt(s)
        if out.sid in self._sids:
            out.property.vectorize = True
        return out


def npblock_vectorize(func: Func) -> Func:
    """Mark every innermost loop the blocked NumPy lowering can execute
    as whole-array kernels — shape-feasible per ``loop_vectorizes`` and
    free of loop-carried dependences (reduction pairs excepted: the
    lowering accumulates them with ``np.sum``/``np.add.at``/...). This
    is the legality check ``Schedule.vectorize`` performs, applied
    automatically; already-annotated loops are left alone."""
    from ..analysis import DepAnalyzer, DirItem
    from ..codegen.pycode import loop_vectorizes

    analyzer = None
    sids = set()
    for l in collect_stmts(func.body, lambda s: isinstance(s, For)):
        if l.property.vectorize or l.property.parallel:
            continue
        if collect_stmts(l.body, lambda s: isinstance(s, For)):
            continue  # not innermost
        if not loop_vectorizes(l):
            continue
        if analyzer is None:
            analyzer = DepAnalyzer(func)
        carried = analyzer.find(
            direction=[DirItem.same_loop(l.sid, "!=")], first_only=True)
        if not carried:
            sids.add(l.sid)
    if not sids:
        return func
    return _MarkVectorizable(sids)(func)


# ---------------------------------------------------------------------------
# codegen: pycode's vector lowering, over fixed-size blocks
# ---------------------------------------------------------------------------


def _make_codegen(func: Func):
    # deferred so importing repro.backend never drags codegen in
    from ..codegen.pycode import PyCodegen, loop_vectorizes

    class NpBlockCodegen(PyCodegen):
        """The pycode generator with vectorized loops lowered over
        fixed-size blocks instead of one whole-loop index vector, behind
        a runtime trip-count guard: short loops (< ``min_vec_trip()``
        iterations) run the ordinary scalar loop, where Python beats
        NumPy's fixed per-kernel dispatch cost."""

        def _try_vectorize(self, s: For, indent: int) -> bool:
            if not loop_vectorizes(s):
                return False
            stmts = s.body.stmts if isinstance(s.body, S.StmtSeq) \
                else [s.body]
            iv = s.iter_var
            n = self._vec_counter
            self._vec_counter += 1
            lo, hi = f"_lo{n}", f"_hi{n}"
            self.line(indent, f"{lo}, {hi} = {self.pexpr(s.begin)}, "
                              f"{self.pexpr(s.end)}")
            self.line(indent, f"if {hi} - {lo} >= {min_vec_trip()}:")
            blk, vec_name = f"_b{n}", f"_vi{n}"
            self.line(indent + 1, f"for {blk} in range({lo}, {hi}, "
                                  f"{block_size()}):")
            self.line(indent + 2, f"{vec_name} = np.arange({blk}, "
                                  f"min({blk} + {block_size()}, {hi}))")
            vec = {iv: vec_name}
            for c in stmts:
                self._gen_vec_stmt(c, iv, vec, indent + 2)
            # scalar fallback for short trips
            self.line(indent, "else:")
            it = self.mangle(s.iter_var)
            self.line(indent + 1, f"for {it} in range({lo}, {hi}):")
            self.pstmt(s.body, indent + 2)
            return True

    return NpBlockCodegen(func)


def compile_func_npblock(func: Func):
    """Compile a (legalized) Func to a blocked-NumPy Python callable."""
    gen = _make_codegen(func)
    src, consts = gen.generate()
    namespace: Dict[str, object] = {"_consts": consts}
    from ..runtime.libcalls import apply_libcall

    namespace["_libcall"] = (
        lambda kind, attrs, outs, args: apply_libcall(kind, attrs, outs,
                                                      args))
    code = compile(src, f"<npblock {func.name}>", "exec")
    exec(code, namespace)
    kernel = namespace["kernel"]
    kernel.__ft_source__ = src
    return kernel


def _build_npblock(func: Func, **_opts):
    kernel = compile_func_npblock(func)
    interface = func.interface_tensors()

    def run(env):
        args = [env[p] for p in interface]
        args += [env[p] for p in func.scalar_params]
        kernel(*args)

    run.__ft_source__ = kernel.__ft_source__
    return run


# ---------------------------------------------------------------------------
# the declaration
# ---------------------------------------------------------------------------


def _caps_npblock(target):
    from ..codegen.pycode import loop_vectorizes

    # sequential in one Python process, like pycode — but the
    # legalization pass above vectorizes everything feasible, and
    # blocking adds one extra kernel dispatch per block, which the
    # declared vec_kernel_seq override charges
    return BackendCaps("npblock", {}, vector_width=None,
                       stride_matters=False,
                       vec_feasible=loop_vectorizes,
                       vec_kernel_seq=96.0,
                       vec_whole_width=16)


NPBLOCK = register_backend(Backend(
    name="npblock",
    build=_build_npblock,
    caps=_caps_npblock,
    legalization=("npblock_vectorize",),
    legalization_impls={"npblock_vectorize": npblock_vectorize},
    target_kind="cpu",
    caps_version="1",
    description="blocked NumPy kernels (auto-vectorizing legalization)",
))

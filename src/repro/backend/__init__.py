"""``repro.backend`` — the unified backend registry.

One :class:`Backend` object per target declares everything backend-
specific — codegen entry, capability table, legalization passes, memory
scope rules, default target kind, cache version — and every stage of the
compiler *queries* the registry instead of dispatching on backend-name
strings. See ``repro.backend.registry`` for the object model and
``repro.backend.npblock`` for a full out-of-core registration example.
"""

from .caps import BackendCaps
from .registry import (Backend, ScopeRule, available_backends,
                       backend_cache_tag, backend_caps, find_backend,
                       get_backend, legalization_impl, register_backend,
                       scope_violation, unregister_backend)

__all__ = [
    "Backend", "BackendCaps", "ScopeRule", "available_backends",
    "backend_cache_tag", "backend_caps", "find_backend", "get_backend",
    "legalization_impl", "register_backend", "scope_violation",
    "unregister_backend",
]

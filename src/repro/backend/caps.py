"""Backend capability declarations (:class:`BackendCaps`).

A capability table is *declared* by a :class:`~repro.backend.Backend`
object (one per registered backend, see ``repro.backend.registry``) and
*queried* by every stage that must reason about what a backend actually
does with scheduled IR:

- the cost model (``repro.analysis.cost``) discounts sequential work by
  the parallel lane counts and vector widths declared here, and charges
  the silent plain-loop fallback through ``vec_feasible``;
- the structured searcher (``repro.autosched.search.space``) offers
  ``parallel`` knobs only when :meth:`schedule_parallel_kind` reports an
  annotation the backend honours — no backend-name string dispatch;
- the race verifier's FT203 memory-scope check reads the scope rules the
  backend's :class:`~repro.backend.Backend` declares;
- the persistent caches fold ``caps_version`` (on the Backend object)
  into their keys, so changing a declaration invalidates stale entries.

This class used to live in ``repro.autosched.target`` (which still
re-exports it); it moved here when the backend registry became the one
source of backend truth.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple


class BackendCaps:
    """What a (backend, target) pair actually does with parallel/vector
    annotations — the capability table behind the cost model's
    exploited-parallelism axis (see docs/PERFORMANCE.md).

    ``capacity(kind)`` is the hardware lane count a ``For`` bound to
    parallel kind ``kind`` is spread over: 1 means the annotation is a
    no-op on this backend, None means effectively unbounded (every
    iteration gets a lane). ``vector_width`` is the SIMD width applied to
    ``vectorize`` loops; None means the whole loop becomes one vector
    kernel (the NumPy lowering). ``vec_feasible`` is the backend's own
    legality predicate for honouring a ``vectorize`` marking on a given
    ``For`` (None = always honoured): the code generators silently fall
    back to plain loops on shapes they cannot vectorize, and the cost
    model must model that fallback, not the annotation. ``stride_matters``
    is False on backends whose per-element cost is interpretation
    overhead rather than memory latency.

    ``parallel_ann_kind`` is the annotation kind a generic schedule
    "make this loop parallel" decision binds to on this backend
    (``openmp``, ``cuda.blockIdx.x``, ...; None when no annotation buys
    anything). ``memory_scopes`` are the :class:`~repro.ir.MemType`
    values the backend can address. ``vec_kernel_seq`` /
    ``vec_whole_width`` override the cost model's default dispatch
    overhead and per-element discount for whole-loop vector kernels
    (None = model defaults).
    """

    __slots__ = ("backend", "vector_width", "stride_matters", "_parallel",
                 "vec_feasible", "parallel_ann_kind", "memory_scopes",
                 "vec_kernel_seq", "vec_whole_width")

    def __init__(self, backend: str, parallel: dict,
                 vector_width: Optional[int], stride_matters: bool,
                 vec_feasible: Optional[Callable] = None,
                 parallel_ann_kind: Optional[str] = None,
                 memory_scopes: Tuple[str, ...] = ("cpu",),
                 vec_kernel_seq: Optional[float] = None,
                 vec_whole_width: Optional[int] = None):
        self.backend = backend
        self._parallel = dict(parallel)
        self.vector_width = vector_width
        self.stride_matters = stride_matters
        self.vec_feasible = vec_feasible
        self.parallel_ann_kind = parallel_ann_kind
        self.memory_scopes = tuple(memory_scopes)
        self.vec_kernel_seq = vec_kernel_seq
        self.vec_whole_width = vec_whole_width

    def capacity(self, kind: str) -> Optional[int]:
        """Lane count for parallel kind ``kind`` (e.g. ``openmp``,
        ``cuda.blockIdx.x``); 1 when the backend ignores it."""
        for prefix, cap in self._parallel.items():
            if kind == prefix or kind.startswith(prefix + "."):
                return cap
        return 1

    def schedule_parallel_kind(self) -> Optional[str]:
        """The parallel kind a schedule-level ``parallel`` annotation
        should bind to, or None when the annotation would be a no-op
        (capacity 1) — the query that replaced the searcher's
        backend-name string dispatch."""
        kind = self.parallel_ann_kind
        if kind is None:
            return None
        cap = self.capacity(kind)
        if cap is not None and cap <= 1:
            return None
        return kind

    def __repr__(self):  # pragma: no cover
        return (f"BackendCaps({self.backend}, vec={self.vector_width}, "
                f"parallel={self._parallel})")

"""Built-in backend declarations.

Each block below is the *entire* statement of one backend: builder
(codegen entry), capability table, legalization requirements, default
target kind and memory-scope rules. The declarations that used to be
scattered across ``runtime/driver.py`` (builders), ``pipeline/
legalize.py`` (legalization table) and ``autosched/target.py`` (the
capability if/elif ladder) all live here now, behind one
``register_backend`` call per backend.
"""

from __future__ import annotations

from .caps import BackendCaps
from .registry import Backend, ScopeRule, register_backend

# ---------------------------------------------------------------------------
# interp: the reference interpreter
# ---------------------------------------------------------------------------


def _build_interp(func, metrics=None, **_opts):
    from ..runtime.interpreter import Interpreter

    interp = Interpreter(metrics=metrics)

    def run(env):
        interp.run(func, env)

    return run


def _caps_interp(target, _name="interp"):
    # sequential scalar evaluation; every annotation is a no-op
    return BackendCaps(_name, {}, vector_width=1, stride_matters=False)


INTERP = register_backend(Backend(
    name="interp",
    build=_build_interp,
    caps=_caps_interp,
    target_kind="cpu",
    caps_version="1",
    description="reference interpreter (scalar, sequential)",
))


# ---------------------------------------------------------------------------
# pycode: generated Python/NumPy source
# ---------------------------------------------------------------------------


def _build_pycode(func, **_opts):
    from ..codegen.pycode import compile_func

    kernel = compile_func(func)
    interface = func.interface_tensors()

    def run(env):
        args = [env[p] for p in interface]
        args += [env[p] for p in func.scalar_params]
        kernel(*args)

    run.__ft_source__ = kernel.__ft_source__
    return run


def _caps_pycode(target):
    from ..codegen.pycode import loop_vectorizes

    # sequential in one Python process: openmp/cuda markings are
    # ignored, but `vectorize` lowers the whole loop to one NumPy kernel
    return BackendCaps("pycode", {}, vector_width=None,
                       stride_matters=False,
                       vec_feasible=loop_vectorizes)


PYCODE = register_backend(Backend(
    name="pycode",
    build=_build_pycode,
    caps=_caps_pycode,
    legalization=(),  # interprets vectorize markings itself
    target_kind="cpu",
    caps_version="1",
    description="generated Python with NumPy vector kernels",
))


# ---------------------------------------------------------------------------
# c: native code via gcc (OpenMP + simd)
# ---------------------------------------------------------------------------


def _build_c(func, **opts):
    from ..codegen.ccode import compile_func_native

    native = compile_func_native(func, **opts)

    def run(env):
        native(env)

    run.__ft_source__ = native.__ft_source__
    return run


def _caps_c(target):
    from ..pipeline import simd_body_ok

    return BackendCaps(
        "c",
        {"openmp": target.num_threads},
        vector_width=target.vector_width,
        stride_matters=True,
        vec_feasible=lambda s: simd_body_ok(s.body),
        parallel_ann_kind="openmp")


C = register_backend(Backend(
    name="c",
    build=_build_c,
    caps=_caps_c,
    legalization=("simd_suppress",),
    target_kind="cpu",
    caps_version="1",
    description="native C via gcc (OpenMP parallel, omp simd)",
))


# ---------------------------------------------------------------------------
# gpusim: the simulated CUDA device
# ---------------------------------------------------------------------------

_GPU_SCOPE_RULES = (
    ScopeRule("gpu/local", "cuda",
              "gpu/local memory is private to each thread"),
    ScopeRule("gpu/shared", "cuda.blockIdx",
              "gpu/shared memory is private to each thread block"),
)


def _build_gpusim(func, device=None, metrics=None, **_opts):
    from ..runtime.gpusim import GPUSimulator

    sim = GPUSimulator(device=device, metrics=metrics)

    def run(env):
        sim.run(func, env)

    return run


def _caps_gpusim(target, _name="gpusim"):
    return BackendCaps(
        _name,
        {"cuda.blockIdx": None,
         "cuda.threadIdx": target.block_size,
         "openmp": target.num_threads},
        vector_width=32,
        stride_matters=True,
        parallel_ann_kind="cuda.blockIdx.x",
        memory_scopes=("cpu", "gpu/global", "gpu/shared", "gpu/local"))


GPUSIM = register_backend(Backend(
    name="gpusim",
    build=_build_gpusim,
    caps=_caps_gpusim,
    target_kind="gpu",
    scope_rules=_GPU_SCOPE_RULES,
    caps_version="1",
    description="simulated CUDA device (interprets cuda.* annotations)",
))


# ---------------------------------------------------------------------------
# cuda: codegen-only (emits CUDA C++ source; executed by gpusim)
# ---------------------------------------------------------------------------

CUDA = register_backend(Backend(
    name="cuda",
    build=None,  # no GPU/nvcc here: source is golden-tested, not run
    caps=lambda t: _caps_gpusim(t, "cuda"),
    legalization=("simd_suppress",),
    target_kind="gpu",
    scope_rules=_GPU_SCOPE_RULES,
    caps_version="1",
    description="CUDA C++ source generator (codegen-only)",
))

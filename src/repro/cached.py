"""``python -m repro.cached`` — run the warm compile daemon.

See :mod:`repro.cache.daemon` for the protocol and
docs/PERFORMANCE.md for when a daemon is worth running.
"""

from .cache.daemon import main

if __name__ == "__main__":
    raise SystemExit(main())

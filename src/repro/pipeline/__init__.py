"""``repro.pipeline`` — the unified pass-manager compilation pipeline.

One authoritative construction of the compile flow, shared by all four
entry points (``repro.runtime.build``, ``repro.autosched.auto_schedule``,
``repro.ad.grad`` and the ``python -m repro.verify`` CLI):

    staged Func
      │  [optimize: auto_fuse → auto_vectorize → auto_parallelize →
      │             auto_mem_type → auto_use_lib → auto_unroll]
      ▼
    flatten → make_reduction → simplify → cleanup      (standard lowering)
      ▼
    <backend legalization>                              (repro.pipeline.legalize)
      ▼
    codegen_prep                                        (final normalization)
      ▼
    code generator

See docs/ARCHITECTURE.md for the full diagram, the pass inventory per
target, and the instrumentation environment variables
(``REPRO_DUMP_IR``, ``REPRO_VERIFY_EACH_PASS``, ``REPRO_NO_PASS_CACHE``).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..ir import Func
from .legalize import (LEGALIZATION_PASSES, declare_legalization,
                       declared_legalization, legalization_passes, legalize,
                       simd_body_ok, suppress_illegal_simd)
from .manager import (Pass, Pipeline, clear_pass_cache, pass_cache_stats)

#: the standard lowering sequence (no scheduling decisions): flatten
#: statement sequences, canonicalise self-updates into reductions,
#: fold/simplify expressions and control flow, and drop dead writes.
STANDARD_LOWERING = ("flatten", "make_reduction", "simplify", "cleanup")


def _pass_fns():
    from ..analysis.cost import cost_model_pass
    from ..passes.cleanup import remove_dead_writes
    from ..passes.flatten import flatten_stmt_seq
    from ..passes.make_reduction import make_reduction
    from ..passes.prune import prune_branches
    from ..passes.simplify_pass import simplify

    return {
        "flatten": flatten_stmt_seq,
        "make_reduction": make_reduction,
        "simplify": simplify,
        "cleanup": remove_dead_writes,
        "prune": prune_branches,
        # same transformation as "flatten" under a distinct name: the
        # final normalization after legalization rewrites, immediately
        # before the code generator
        "codegen_prep": flatten_stmt_seq,
        # identity analysis pass: estimate the static cost of the tree
        # at this point in the pipeline (repro.analysis.cost)
        "cost_model": cost_model_pass,
    }


def named_pass(name: str) -> Pass:
    """Construct a standard pass by name (``flatten``, ``make_reduction``,
    ``simplify``, ``cleanup``, ``prune``, ``codegen_prep``,
    ``cost_model``, or any registered legalization pass)."""
    fns = _pass_fns()
    if name in fns:
        # cost_model is wanted for its side effect (the recorded
        # estimate); a pass-cache hit would skip the analysis entirely
        return Pass(name, fns[name], cacheable=(name != "cost_model"))
    if name in LEGALIZATION_PASSES:
        return Pass(name, LEGALIZATION_PASSES[name])
    raise ValueError(
        f"unknown pass {name!r}; known: "
        f"{sorted(set(fns) | set(LEGALIZATION_PASSES))}")


def lowering_passes() -> List[Pass]:
    """The standard lowering sequence as fresh Pass objects."""
    fns = _pass_fns()
    return [Pass(n, fns[n]) for n in STANDARD_LOWERING]


#: shared stateless pipeline instances, keyed by name
_PIPELINES: Dict[str, Pipeline] = {}


def lowering_pipeline(name: str = "lower") -> Pipeline:
    """The standard lowering pipeline (what ``repro.passes.lower`` runs).

    Pipelines are stateless between runs, so instances are shared by
    ``name``; the per-pass cache is shared across all of them regardless.
    """
    pipe = _PIPELINES.get(name)
    if pipe is None:
        pipe = Pipeline(lowering_passes(), name=name)
        _PIPELINES[name] = pipe
    return pipe


def build_pipeline(backend: str = "pycode", target=None,
                   name: Optional[str] = None) -> Pipeline:
    """The full non-scheduling compile pipeline for ``backend``: standard
    lowering, then — when the backend declared legalization passes —
    those passes followed by the final ``codegen_prep`` normalization.

    Not memoized: the legalization declarations may change as backends
    register themselves.
    """
    passes = lowering_passes()
    legal = legalization_passes(backend)
    if legal:
        # re-normalise only when legalization actually rewrote the tree;
        # for backends with nothing declared the build pipeline is
        # exactly the standard lowering (one pass fewer in the tuner's
        # per-candidate hot loop)
        passes += legal
        passes.append(named_pass("codegen_prep"))
    return Pipeline(passes, name=name or f"build-{backend}")


def compile_ir(func: Func, backend: str = "pycode", target=None,
               optimize: bool = False,
               times: Optional[Dict[str, float]] = None) -> Func:
    """Compile ``func`` to the exact IR ``build()`` hands its backend.

    This is the single authoritative optimize/lower path: ``build()``
    calls it, and the verify CLI calls it with the same defaults, so
    CLI-verified IR is bit-identical (same ``struct_hash``) to what a
    build compiles.

    When a warm compile daemon is listening (``python -m repro.cached``)
    the whole job is delegated to it; any daemon-side problem falls back
    to compiling locally (see ``repro.cache.client``).
    """
    from ..cache.client import maybe_daemon_compile

    served = maybe_daemon_compile(func, backend=backend, target=target,
                                  optimize=optimize, times=times)
    if served is not None:
        return served
    if optimize:
        from ..autosched import auto_schedule

        return auto_schedule(func, target=target, backend=backend,
                             times=times)
    return build_pipeline(backend=backend, target=target).run(func,
                                                              times=times)


__all__ = [
    "LEGALIZATION_PASSES", "Pass", "Pipeline", "STANDARD_LOWERING",
    "build_pipeline", "clear_pass_cache", "compile_ir",
    "declare_legalization", "declared_legalization", "legalization_passes",
    "legalize", "lowering_passes", "lowering_pipeline", "named_pass",
    "pass_cache_stats", "simd_body_ok", "suppress_illegal_simd",
]

"""The pass manager: compilation as an explicit sequence of Pass objects.

Every compilation in this codebase — ``build()``, the rule-based
auto-scheduler, ``grad()``'s forward/backward lowering, and the
``python -m repro.verify`` CLI — constructs a :class:`Pipeline` and runs
it, instead of calling lowering passes ad hoc. Centralising the pass
sequence buys three things at once:

- **per-pass caching**: each pass's output is memoized under a chain
  key — the sid-inclusive content hash of the pipeline's input extended
  by the names of the passes applied since — so a pipeline whose prefix
  already ran is served from the cache pass by pass. This subsumes the
  old whole-``lower()`` memo at the same cost: warm or cold, a chain
  hashes its input exactly once;
- **per-pass instrumentation**: wall-clock per pass (cumulative process
  counters in ``repro.runtime.metrics.pipeline_stats()`` and per-build
  timings in ``Executable.compile_times``), IR snapshots with unified
  diffs after every pass (``REPRO_DUMP_IR=<dir>``), and between-pass
  verification that attributes any *new* error diagnostic to the pass
  that introduced it (``REPRO_VERIFY_EACH_PASS=1``);
- **target-aware composition**: backends declare the legalization passes
  their code generators require (see ``repro.pipeline.legalize``) and
  the builders in ``repro.pipeline`` append them, so codegen never
  special-cases IR shapes it cannot emit.

The in-memory cache is backed by the persistent cross-process store in
``repro.cache``: on a full memory miss the pipeline probes the store
deepest-first along its chain key (canonicalised to be process-
independent) and installs hits back into memory; the terminal output of
a cold cacheable segment is written through. See docs/PERFORMANCE.md.

Escape hatches: ``REPRO_NO_PASS_CACHE=1`` disables the per-pass cache
(``REPRO_NO_LOWER_CACHE=1`` is honoured as its pre-pipeline alias);
``REPRO_NO_DISK_CACHE=1`` disables the persistent store only.
"""

from __future__ import annotations

import difflib
import itertools
import os
import time
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..errors import VerificationError
from ..ir import Func

#: content-addressed per-pass result cache:
#: ``(pass name, chain key) -> output Func``, where the chain key is the
#: sid-inclusive struct-hash of the pipeline's input joined with the
#: names of the cacheable passes already applied to it. Passes are
#: deterministic and sid-preserving, so the output of pass *k* is a pure
#: function of (input tree, passes 1..k) — deriving keys from the chain
#: instead of hashing every intermediate tree keeps a cold pipeline at
#: exactly one hash of its input (the tuner compiles hundreds of unique
#: candidate schedules; hashing after every pass was measurably slower).
#: Only the *terminal* output of each run's cacheable segment is stored —
#: one retained tree per compiled program, like the old whole-``lower()``
#: memo (keeping every intermediate measurably slowed the tuner through
#: gc pressure alone) — and a warm run jumps to the deepest pass in its
#: chain with an entry. Every consumer treats pass outputs as immutable
#: (schedules rebuild, never mutate in place), so sharing outputs across
#: callers is safe. Hashes are sid-inclusive because statement addressing
#: must stay identical to a fresh run — schedules target statements by
#: sid afterwards.
_PASS_CACHE: Dict[Tuple[str, str], Func] = {}
_PASS_CACHE_LIMIT = 512
_PASS_CACHE_STATS = {"hits": 0, "misses": 0, "disk_hits": 0}

#: monotonic index for REPRO_DUMP_IR run directories (no timestamps: runs
#: stay ordered and reproducible within one process)
_DUMP_COUNTER = itertools.count()


def clear_pass_cache():
    """Drop every cached per-pass result; the next pipeline runs cold."""
    _PASS_CACHE.clear()


def pass_cache_stats() -> Dict[str, int]:
    """Hit/miss counters of the per-pass result cache (cumulative;
    surviving ``clear_pass_cache``)."""
    return dict(_PASS_CACHE_STATS)


def _cache_enabled() -> bool:
    env = os.environ
    return (env.get("REPRO_NO_PASS_CACHE", "") != "1"
            and env.get("REPRO_NO_LOWER_CACHE", "") != "1")


def _hash(func: Func) -> str:
    from ..ir.hashing import struct_hash

    return struct_hash(func, include_sids=True)


def _disk_store():
    """The persistent store handle, or None when disk caching is off."""
    from ..cache import store as disk_store

    return disk_store.get_store()


def composite_cache_lookup(name: str, key: str,
                           input_func: Optional[Func] = None,
                           disk_extra: Optional[str] = None,
                           ) -> Optional[Func]:
    """Look up a composite (whole-sub-pipeline) result under pass-cache
    entry ``(name, key)``; returns the Func or None.

    The auto-scheduler memoizes its entire run this way: its rule passes
    are individually uncacheable (they share one Schedule session and
    mint fresh sids per run), but the run as a whole is deterministic in
    its input, so serving the stored object keeps repeated optimized
    compiles of one program — build(), then the verify CLI — bit-identical
    down to sids.

    ``input_func`` + ``disk_extra`` opt the entry into the persistent
    store: on a memory miss the disk is probed under the *canonical*
    (process-independent) key derived from ``input_func`` plus the
    ``disk_extra`` discriminator, and a disk hit is installed in memory
    under ``(name, key)`` so repeats stay bit-identical in-process.
    """
    if not _cache_enabled():
        return None
    entry = _PASS_CACHE.get((name, key))
    if entry is not None:
        _PASS_CACHE_STATS["hits"] += 1
        return entry
    if input_func is not None:
        disk = _disk_store()
        if disk is not None:
            from ..cache.serial import canonical_key

            canon, sids = canonical_key(input_func)
            func = disk.ir_lookup(name, f"{canon}|{disk_extra or ''}", sids)
            if func is not None:
                _PASS_CACHE_STATS["disk_hits"] += 1
                if len(_PASS_CACHE) >= _PASS_CACHE_LIMIT:
                    _PASS_CACHE.clear()  # pragma: no cover
                _PASS_CACHE[(name, key)] = func
                return func
    _PASS_CACHE_STATS["misses"] += 1
    return None


def composite_cache_store(name: str, key: str, func: Func,
                          input_func: Optional[Func] = None,
                          disk_extra: Optional[str] = None):
    if not _cache_enabled():
        return
    if len(_PASS_CACHE) >= _PASS_CACHE_LIMIT:
        _PASS_CACHE.clear()  # pragma: no cover
    _PASS_CACHE[(name, key)] = func
    if input_func is not None:
        disk = _disk_store()
        if disk is not None:
            from ..cache.serial import canonical_key

            canon, sids = canonical_key(input_func)
            disk.ir_store(name, f"{canon}|{disk_extra or ''}", sids, func)


class Pass:
    """One named IR-to-IR transformation step.

    ``fn`` takes a :class:`~repro.ir.Func` and returns a new Func; it
    must be deterministic, sid-preserving, and must not mutate its input.
    ``cacheable=False`` marks passes whose output depends on state beyond
    the input tree — the auto-scheduler's rule passes share a mutable
    Schedule session, for example — so they always run.

    ``key`` is the identity the cache chains use for this pass (default:
    the name). Backend legalization passes set ``key`` to
    ``name@caps_version`` so bumping a backend's declared version
    invalidates cached chains through its legalization, while ``name``
    stays clean for timings and metrics — and the standard-lowering
    prefix of the chain remains shared across backends.
    """

    __slots__ = ("name", "fn", "cacheable", "key")

    def __init__(self, name: str, fn: Callable[[Func], Func],
                 cacheable: bool = True, key: Optional[str] = None):
        self.name = name
        self.fn = fn
        self.cacheable = cacheable
        self.key = key if key is not None else name

    def __repr__(self):  # pragma: no cover
        tag = "" if self.cacheable else ", uncacheable"
        return f"Pass({self.name}{tag})"


class Pipeline:
    """An explicit, named, instrumented sequence of passes.

    ``run(func)`` threads the function through every pass in order and
    returns the final Func. Stateless between runs: one Pipeline object
    can compile any number of functions.
    """

    def __init__(self, passes: Sequence[Pass], name: str = "pipeline"):
        self.passes: List[Pass] = list(passes)
        names = [p.name for p in self.passes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate pass names in pipeline: {names}")
        self.name = name

    def pass_names(self) -> List[str]:
        return [p.name for p in self.passes]

    def __repr__(self):  # pragma: no cover
        return f"Pipeline({self.name}: {' -> '.join(self.pass_names())})"

    def run(self, func: Func,
            times: Optional[Dict[str, float]] = None) -> Func:
        """Run every pass in order; returns the final Func.

        ``times``, when given, accumulates per-pass wall-clock seconds
        under each pass's name (this is what ``Executable.compile_times``
        carries for a cold build).
        """
        from ..runtime import metrics

        dump_dir = os.environ.get("REPRO_DUMP_IR", "")
        snap = _Snapshotter(dump_dir, self, func) if dump_dir else None
        baseline: Optional[Set[tuple]] = None
        if os.environ.get("REPRO_VERIFY_EACH_PASS", "") == "1":
            baseline = _error_keys(func)
        # Instrumented runs want every pass to really execute (snapshots
        # diff pass outputs; per-pass verification attributes findings),
        # so they bypass cache lookups entirely.
        instrumented = snap is not None or baseline is not None
        use_cache = _cache_enabled() and not instrumented

        def live(p: Pass, cur: Func, counted: bool) -> Func:
            nonlocal baseline
            t0 = time.perf_counter()
            out = p.fn(cur)
            dt = time.perf_counter() - t0
            if counted:
                _PASS_CACHE_STATS["misses"] += 1
            metrics.record_pass_run(p.name, dt, False)
            if times is not None:
                times[p.name] = times.get(p.name, 0.0) + dt
            if snap is not None:
                snap.take(p.name, out)
            if baseline is not None:
                baseline = self._check_pass(p, out, baseline)
            return out

        cur = func
        n = len(self.passes)
        i = 0
        disk = _disk_store() if use_cache else None
        # The chain anchors at a struct-hash of the current tree and
        # extends by pass name: pass outputs are pure functions of
        # (anchor tree, passes since), so no intermediate tree is ever
        # hashed. An uncacheable pass (output depends on state beyond
        # the input tree) invalidates the anchor; the next cacheable
        # pass re-hashes.
        chain: Optional[str] = None
        # Disk twin of the chain: [anchor tree, pass names since anchor,
        # memoized canonical_key(anchor)]. The canonical (preorder-sid-
        # renumbered) hash is process-independent, so it — not the
        # absolute-sid chain — keys the persistent store. Computed only
        # when the disk is actually consulted.
        anchor: Optional[list] = None

        def disk_key(upto: int) -> Tuple[str, List[str]]:
            from ..cache.serial import canonical_key

            if anchor[2] is None:
                anchor[2] = canonical_key(anchor[0])
            canon, sids = anchor[2]
            names = anchor[1] + [self.passes[m].key
                                 for m in range(i, upto + 1)]
            return canon + "|" + "|".join(names), sids

        while i < n:
            p = self.passes[i]
            if not (use_cache and p.cacheable):
                cur = live(p, cur, False)
                chain = None
                anchor = None
                i += 1
                continue
            if chain is None:
                chain = _hash(cur)
                anchor = [cur, [], None]
            # the contiguous cacheable segment starting here, with each
            # pass's chain key
            j = i
            keys = []
            ch = chain
            while j < n and self.passes[j].cacheable:
                keys.append((self.passes[j].key, ch))
                ch = ch + "|" + self.passes[j].key
                j += 1
            # serve from the deepest pass in the segment with an entry
            t0 = time.perf_counter()
            hit_idx = None
            for k in range(j - 1, i - 1, -1):
                out = _PASS_CACHE.get(keys[k - i])
                if out is not None:
                    hit_idx = k
                    break
            # full memory miss: probe the persistent store, deepest first
            from_disk = False
            if hit_idx is None and disk is not None:
                for k in range(j - 1, i - 1, -1):
                    dkey, sids = disk_key(k)
                    out = disk.ir_lookup("pass", dkey, sids)
                    if out is not None:
                        hit_idx = k
                        from_disk = True
                        break
            if hit_idx is not None:
                dt = time.perf_counter() - t0
                covered = hit_idx - i + 1
                if from_disk:
                    _PASS_CACHE_STATS["disk_hits"] += covered
                    # install in memory so in-process repeats skip disk
                    if len(_PASS_CACHE) >= _PASS_CACHE_LIMIT:
                        _PASS_CACHE.clear()  # pragma: no cover
                    _PASS_CACHE[keys[hit_idx - i]] = out
                else:
                    _PASS_CACHE_STATS["hits"] += covered
                for k in range(i, hit_idx + 1):
                    name = self.passes[k].name
                    d = dt if k == hit_idx else 0.0
                    metrics.record_pass_run(name, d, True)
                    if times is not None:
                        times[name] = times.get(name, 0.0) + d
                cur = out
                chain = keys[hit_idx - i][1] + "|" + \
                    self.passes[hit_idx].key
                anchor[1].extend(self.passes[k].key
                                 for k in range(i, hit_idx + 1))
                i = hit_idx + 1
                continue
            # cold segment: run it live, store only its terminal output
            # (one retained tree per program, like the old lower() memo)
            for k in range(i, j):
                cur = live(self.passes[k], cur, True)
            if len(_PASS_CACHE) >= _PASS_CACHE_LIMIT:
                _PASS_CACHE.clear()  # pragma: no cover
            _PASS_CACHE[keys[j - 1 - i]] = cur
            if disk is not None:
                dkey, sids = disk_key(j - 1)
                disk.ir_store("pass", dkey, sids, cur)
            chain = ch
            anchor[1].extend(self.passes[k].key for k in range(i, j))
            i = j
        return cur

    def _check_pass(self, p: Pass, out: Func,
                    baseline: Set[tuple]) -> Set[tuple]:
        """REPRO_VERIFY_EACH_PASS: verify ``out`` and attribute any error
        diagnostic not present before this pass to ``p``."""
        from ..analysis.verify import verify

        report = verify(out, level="error")
        keys = {_diag_key(d) for d in report.errors}
        fresh = [d for d in report.errors if _diag_key(d) not in baseline]
        if fresh:
            lines = [
                f"pipeline {self.name!r}: pass {p.name!r} introduced "
                f"{len(fresh)} new error diagnostic(s):"
            ]
            lines += [d.render(show_source=False) for d in fresh]
            raise VerificationError("\n".join(lines), diagnostics=report)
        return keys


def _diag_key(d) -> tuple:
    """Identity of a diagnostic for cross-pass comparison. The message is
    excluded: passes rewrite expressions, which rewords messages about a
    finding that was already there."""
    return (d.code, d.sid, d.tensor)


def _error_keys(func: Func) -> Set[tuple]:
    from ..analysis.verify import verify

    return {_diag_key(d) for d in verify(func, level="error").errors}


class _Snapshotter:
    """REPRO_DUMP_IR: one ``.ir`` snapshot per pass plus a unified diff
    against the previous snapshot, in a fresh per-run directory."""

    def __init__(self, base_dir: str, pipeline: Pipeline, func: Func):
        safe = "".join(c if c.isalnum() or c in "._-" else "_"
                       for c in func.name) or "func"
        run = next(_DUMP_COUNTER)
        self.dir = os.path.join(base_dir,
                                f"{run:04d}-{pipeline.name}-{safe}")
        os.makedirs(self.dir, exist_ok=True)
        self.idx = 0
        self.prev_name = "00-input"
        self.prev_text = self._write(self.prev_name, func)

    @staticmethod
    def _text(func: Func) -> str:
        from ..ir import dump

        return dump(func, show_ids=True)

    def _write(self, stem: str, func: Func) -> str:
        text = self._text(func)
        with open(os.path.join(self.dir, stem + ".ir"), "w") as f:
            f.write(text)
        return text

    def take(self, pass_name: str, func: Func):
        self.idx += 1
        stem = f"{self.idx:02d}-{pass_name}"
        text = self._write(stem, func)
        diff = difflib.unified_diff(
            self.prev_text.splitlines(keepends=True),
            text.splitlines(keepends=True),
            fromfile=self.prev_name + ".ir", tofile=stem + ".ir")
        with open(os.path.join(self.dir, stem + ".diff"), "w") as f:
            f.writelines(diff)
        self.prev_name, self.prev_text = stem, text

"""Target-aware legalization passes.

Each backend *declares* the passes its code generator requires before it
can emit the IR, and the pipeline builders in ``repro.pipeline`` append
those passes after the standard lowering sequence. Code generators
therefore see pre-legalized IR and emit it directly, instead of
special-casing shapes they cannot handle — e.g. the OpenMP
simd-suppression logic that used to live inside ``codegen/ccode.py`` is
now the ``simd_suppress`` pass below.

Declarations live on the :class:`~repro.backend.Backend` objects in the
unified registry (``repro.backend``): ``Backend.legalization`` names the
ordered passes, and backends may contribute implementations of their own
via ``Backend.legalization_impls`` (the ``npblock`` backend's
auto-vectorize pass arrives that way). The :func:`declare_legalization`
function remains as a thin shim over the registry for out-of-tree
callers that predate Backend objects.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..ir import For, Func, Mutator, ReduceTo, Stmt, collect_stmts
from .manager import Pass


# ---------------------------------------------------------------------------
# simd_suppress: drop `vectorize` markings gcc's `omp simd` cannot honour
# ---------------------------------------------------------------------------


def simd_body_ok(body: Stmt) -> bool:
    """Whether a vectorized loop body stays legal under ``omp simd``.

    gcc only allows ``ordered simd``/``simd``/``loop``/``atomic``
    constructs inside a simd region; a nested ``parallel for`` or the
    ``critical`` a min/max atomic lowers to must instead drop the simd
    marking (it is an optimization hint — a plain loop is always correct).
    """
    for x in collect_stmts(body, lambda _x: True):
        if isinstance(x, For) and x.property.parallel:
            return False
        if isinstance(x, ReduceTo) and x.atomic and x.op in ("min", "max"):
            return False
    return True


class _SuppressIllegalSimd(Mutator):

    def mutate_For(self, s: For) -> Stmt:
        out = self.generic_mutate_stmt(s)
        if out.property.vectorize and not simd_body_ok(out.body):
            out.property.vectorize = False
        return out


def suppress_illegal_simd(func: Func) -> Func:
    """Clear ``vectorize`` on loops whose bodies are illegal inside an
    ``omp simd`` region (nested parallel loops, atomic min/max)."""
    return _SuppressIllegalSimd()(func)


# ---------------------------------------------------------------------------
# registry shims (declarations live on repro.backend Backend objects)
# ---------------------------------------------------------------------------

#: built-in legalization pass implementations by name (backends add
#: their own via ``Backend.legalization_impls``)
LEGALIZATION_PASSES = {
    "simd_suppress": suppress_illegal_simd,
}

#: declarations for backend names with no registered Backend object
#: (out-of-tree callers using the pre-registry ``declare_legalization``)
_UNREGISTERED_LEGALIZATION: Dict[str, Tuple[str, ...]] = {}


def known_legalization_passes() -> List[str]:
    """Names of the built-in legalization passes (the table a
    ``Backend.legalization`` declaration may reference without bringing
    an implementation along)."""
    return sorted(LEGALIZATION_PASSES)


def _pass_impl(name: str):
    fn = LEGALIZATION_PASSES.get(name)
    if fn is None:
        from ..backend import legalization_impl

        fn = legalization_impl(name)
    if fn is None:
        raise ValueError(
            f"no implementation for legalization pass {name!r}; known: "
            f"{known_legalization_passes()}")
    return fn


def declare_legalization(backend: str, pass_names) -> None:
    """Declare the legalization passes ``backend``'s codegen requires.

    Thin shim over the unified registry: when ``backend`` is a
    registered :class:`~repro.backend.Backend` its declaration is
    updated in place; otherwise the names are kept aside and served by
    :func:`declared_legalization` until the backend registers properly.
    """
    from ..backend import find_backend, legalization_impl

    names = tuple(pass_names)
    for n in names:
        if n not in LEGALIZATION_PASSES and legalization_impl(n) is None:
            raise ValueError(
                f"unknown legalization pass {n!r}; known: "
                f"{known_legalization_passes()}")
    b = find_backend(backend)
    if b is not None:
        b.legalization = names
    else:
        _UNREGISTERED_LEGALIZATION[backend] = names


def declared_legalization(backend: str) -> Tuple[str, ...]:
    """The pass names ``backend`` declared (via its registered
    :class:`~repro.backend.Backend`, or the :func:`declare_legalization`
    shim; empty for unknown backends)."""
    from ..backend import find_backend

    b = find_backend(backend)
    if b is not None:
        return b.legalization
    return _UNREGISTERED_LEGALIZATION.get(backend, ())


def legalization_passes(backend: str) -> List[Pass]:
    """Pass objects for ``backend``'s declared legalization sequence.

    Each Pass carries the backend's ``caps_version`` in its cache
    ``key`` (``name@version``), so bumping the version on a Backend
    invalidates cached pipeline chains that ran its legalization while
    leaving the shared standard-lowering prefix untouched.
    """
    from ..backend import find_backend

    b = find_backend(backend)
    version = b.caps_version if b is not None else None
    out = []
    for n in declared_legalization(backend):
        key = f"{n}@{version}" if version is not None else n
        out.append(Pass(n, _pass_impl(n), key=key))
    return out


def legalize(func: Func, backend: str) -> Func:
    """Apply ``backend``'s declared legalization directly (for code
    generators invoked outside a Pipeline; idempotent)."""
    from .manager import Pipeline

    passes = legalization_passes(backend)
    if not passes:
        return func
    return Pipeline(passes, name=f"legalize-{backend}").run(func)

"""Target-aware legalization passes.

Each backend *declares* the passes its code generator requires before it
can emit the IR (``declare_legalization``), and the pipeline builders in
``repro.pipeline`` append those passes after the standard lowering
sequence. Code generators therefore see pre-legalized IR and emit it
directly, instead of special-casing shapes they cannot handle — e.g. the
OpenMP simd-suppression logic that used to live inside
``codegen/ccode.py`` is now the ``simd_suppress`` pass below.

The table here pre-seeds declarations for every built-in backend (the
pipeline for a backend is constructed before the backend module is
imported); the backend modules re-declare their own requirements at
import as the in-situ statement of record, and out-of-tree backends
register theirs the same way.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..ir import For, Func, Mutator, ReduceTo, Stmt, collect_stmts
from .manager import Pass


# ---------------------------------------------------------------------------
# simd_suppress: drop `vectorize` markings gcc's `omp simd` cannot honour
# ---------------------------------------------------------------------------


def simd_body_ok(body: Stmt) -> bool:
    """Whether a vectorized loop body stays legal under ``omp simd``.

    gcc only allows ``ordered simd``/``simd``/``loop``/``atomic``
    constructs inside a simd region; a nested ``parallel for`` or the
    ``critical`` a min/max atomic lowers to must instead drop the simd
    marking (it is an optimization hint — a plain loop is always correct).
    """
    for x in collect_stmts(body, lambda _x: True):
        if isinstance(x, For) and x.property.parallel:
            return False
        if isinstance(x, ReduceTo) and x.atomic and x.op in ("min", "max"):
            return False
    return True


class _SuppressIllegalSimd(Mutator):

    def mutate_For(self, s: For) -> Stmt:
        out = self.generic_mutate_stmt(s)
        if out.property.vectorize and not simd_body_ok(out.body):
            out.property.vectorize = False
        return out


def suppress_illegal_simd(func: Func) -> Func:
    """Clear ``vectorize`` on loops whose bodies are illegal inside an
    ``omp simd`` region (nested parallel loops, atomic min/max)."""
    return _SuppressIllegalSimd()(func)


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

#: legalization pass implementations by name
LEGALIZATION_PASSES = {
    "simd_suppress": suppress_illegal_simd,
}

#: backend name -> ordered pass names its code generator requires.
#: "c" and "cuda" reuse the same simd-capable statement printer; the
#: interpreter, the CUDA simulator and the NumPy backend interpret
#: parallel/vectorize markings themselves and need no IR rewrites.
_BACKEND_LEGALIZATION: Dict[str, Tuple[str, ...]] = {
    "c": ("simd_suppress",),
    "cuda": ("simd_suppress",),
    "gpusim": (),
    "interp": (),
    "pycode": (),
}


def declare_legalization(backend: str, pass_names) -> None:
    """Declare the legalization passes ``backend``'s codegen requires
    (each name must exist in ``LEGALIZATION_PASSES``)."""
    names = tuple(pass_names)
    for n in names:
        if n not in LEGALIZATION_PASSES:
            raise ValueError(
                f"unknown legalization pass {n!r}; known: "
                f"{sorted(LEGALIZATION_PASSES)}")
    _BACKEND_LEGALIZATION[backend] = names


def declared_legalization(backend: str) -> Tuple[str, ...]:
    """The pass names ``backend`` declared (empty for unknown backends)."""
    return _BACKEND_LEGALIZATION.get(backend, ())


def legalization_passes(backend: str) -> List[Pass]:
    """Pass objects for ``backend``'s declared legalization sequence."""
    return [Pass(n, LEGALIZATION_PASSES[n])
            for n in declared_legalization(backend)]


def legalize(func: Func, backend: str) -> Func:
    """Apply ``backend``'s declared legalization directly (for code
    generators invoked outside a Pipeline; idempotent)."""
    from .manager import Pipeline

    passes = legalization_passes(backend)
    if not passes:
        return func
    return Pipeline(passes, name=f"legalize-{backend}").run(func)

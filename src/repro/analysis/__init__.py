"""Program analyses: accesses, dependences, symbolic bounds, and the
whole-program verifier (``repro.analysis.verify``)."""

from .access import Access, collect_accesses
from .bounds import (BoundsCtx, bound_candidates, const_bounds,
                     tightest_bounds)
from .deps import (Dependence, DepAnalyzer, DirItem, analysis_cache_stats,
                   analyze, analyzer_for, clear_analysis_cache)
from .verify import Diagnostic, Diagnostics, verify

__all__ = [
    "Access", "collect_accesses",
    "BoundsCtx", "bound_candidates", "const_bounds", "tightest_bounds",
    "Dependence", "DepAnalyzer", "DirItem", "analysis_cache_stats",
    "analyze", "analyzer_for", "clear_analysis_cache",
    "Diagnostic", "Diagnostics", "verify",
    "CostEstimate", "analyze_cost", "estimate_cost", "perf_lint",
]


def __getattr__(name):
    # the cost model loads lazily: it pulls in the access/bounds layers
    # plus the scheduler's target table, none of which `import
    # repro.analysis` itself should pay for
    if name in ("CostEstimate", "Counts", "analyze_cost", "estimate_cost",
                "perf_lint", "infer_scalar_env", "clear_cost_memo"):
        from . import cost

        return getattr(cost, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")

"""Program analyses: accesses, dependences, symbolic bounds, and the
whole-program verifier (``repro.analysis.verify``)."""

from .access import Access, collect_accesses
from .bounds import (BoundsCtx, bound_candidates, const_bounds,
                     tightest_bounds)
from .deps import (Dependence, DepAnalyzer, DirItem, analysis_cache_stats,
                   analyze, analyzer_for, clear_analysis_cache)
from .verify import Diagnostic, Diagnostics, verify

__all__ = [
    "Access", "collect_accesses",
    "BoundsCtx", "bound_candidates", "const_bounds", "tightest_bounds",
    "Dependence", "DepAnalyzer", "DirItem", "analysis_cache_stats",
    "analyze", "analyzer_for", "clear_analysis_cache",
    "Diagnostic", "Diagnostics", "verify",
]

"""Collecting memory accesses with their full static context.

Every read (Load) and write (Store/ReduceTo target, LibCall operand) is
recorded together with its enclosing loops, the affine conditions guarding
it, its pre-order position (textual order), and the loop depth at which its
tensor was defined — the ingredient for the paper's stack-scope projection
(Figure 12(d)).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..ir import expr as E
from ..ir import stmt as S


class Access:
    """One static memory access site."""

    __slots__ = ("tensor", "indices", "is_write", "reduce_op", "stmt",
                 "loops", "conds", "def_depth", "order", "ancestors",
                 "cached_sig")

    def __init__(self, tensor: str, indices, is_write: bool,
                 reduce_op: Optional[str], stmt: S.Stmt, loops, conds,
                 def_depth: int, order: int, ancestors):
        self.tensor = tensor
        #: index expressions; None means "may touch any element"
        self.indices = indices
        self.is_write = is_write
        self.reduce_op = reduce_op
        self.stmt = stmt
        #: enclosing For nodes, outermost first
        self.loops: Tuple[S.For, ...] = tuple(loops)
        #: guarding (condition, polarity) pairs from enclosing Ifs/Asserts
        self.conds = tuple(conds)
        #: how many of ``loops`` enclose the tensor's VarDef
        self.def_depth = def_depth
        #: pre-order position (textual order tie-break)
        self.order = order
        #: sids of all enclosing statements (incl. self.stmt)
        self.ancestors = frozenset(ancestors)
        #: lazily-computed content signature (see ``deps._access_signature``)
        self.cached_sig = None

    def __repr__(self):  # pragma: no cover - debugging aid
        kind = "W" if self.is_write else "R"
        if self.reduce_op:
            kind += f"({self.reduce_op})"
        return f"<{kind} {self.tensor} @ {self.stmt.sid}>"


def collect_accesses(root: S.Stmt) -> List[Access]:
    """All accesses in a statement tree, in pre-order."""
    out: List[Access] = []
    counter = [0]
    # tensor name -> number of loops enclosing its VarDef
    def_depth: Dict[str, int] = {}

    def expr_reads(e: E.Expr, ctx):
        if isinstance(e, E.Load):
            out.append(
                Access(e.var, tuple(e.indices), False, None, ctx["stmt"],
                       ctx["loops"], ctx["conds"],
                       def_depth.get(e.var, 0), counter[0], ctx["anc"]))
        for c in e.children():
            expr_reads(c, ctx)

    def walk(s: S.Stmt, loops, conds, anc):
        counter[0] += 1
        anc = anc | {s.sid}
        ctx = {"stmt": s, "loops": loops, "conds": conds, "anc": anc}
        if isinstance(s, S.StmtSeq):
            for c in s.stmts:
                walk(c, loops, conds, anc)
        elif isinstance(s, S.VarDef):
            def_depth[s.name] = len(loops)
            for d in s.shape:
                expr_reads(d, ctx)
            walk(s.body, loops, conds, anc)
        elif isinstance(s, S.For):
            expr_reads(s.begin, ctx)
            expr_reads(s.end, ctx)
            walk(s.body, loops + (s,), conds, anc)
        elif isinstance(s, S.If):
            expr_reads(s.cond, ctx)
            walk(s.then_case, loops, conds + ((s.cond, True),), anc)
            if s.else_case is not None:
                walk(s.else_case, loops, conds + ((s.cond, False),), anc)
        elif isinstance(s, S.Assert):
            walk(s.body, loops, conds + ((s.cond, True),), anc)
        elif isinstance(s, S.Store):
            for i in s.indices:
                expr_reads(i, ctx)
            expr_reads(s.expr, ctx)
            out.append(
                Access(s.var, tuple(s.indices), True, None, s, loops, conds,
                       def_depth.get(s.var, 0), counter[0], anc))
        elif isinstance(s, S.ReduceTo):
            for i in s.indices:
                expr_reads(i, ctx)
            expr_reads(s.expr, ctx)
            # the target is read-modify-write; one access record flagged
            # with its reduce op covers both roles
            out.append(
                Access(s.var, tuple(s.indices), True, s.op, s, loops, conds,
                       def_depth.get(s.var, 0), counter[0], anc))
        elif isinstance(s, S.Eval):
            expr_reads(s.expr, ctx)
        elif isinstance(s, S.LibCall):
            for name in s.args:
                out.append(
                    Access(name, None, False, None, s, loops, conds,
                           def_depth.get(name, 0), counter[0], anc))
            for name in s.outs:
                out.append(
                    Access(name, None, True, None, s, loops, conds,
                           def_depth.get(name, 0), counter[0], anc))
        elif isinstance(s, (S.Alloc, S.Free, S.Any)):
            pass
        else:  # pragma: no cover - exhaustive
            raise TypeError(f"unknown stmt {type(s).__name__}")

    body = root.body if isinstance(root, S.Func) else root
    walk(body, (), (), frozenset())
    return out

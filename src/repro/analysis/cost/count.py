"""The static cost walker: trip counts, op counts, traffic, parallelism.

One pass over a lowered ``Func`` computes a :class:`.model.CostEstimate`
without executing anything:

- **trip counts** come from ``analysis.bounds``: the loop length
  ``end - begin`` is bounded symbolically under the enclosing iterator
  ranges plus the caller's scalar environment; when no constant bound
  exists (CSR neighbour loops — the extent lives in ``indptr`` data) an
  interval fallback of ``assumed_trip`` iterations is used and the
  estimate is demoted from *sound* to *approximate*;
- **op counts** mirror the interpreter's dynamic semantics node for node
  (same ``op_category``, branch maxima for ``If``/``IfExpr``, an
  over-count allowance for short-circuited ``LAnd``/``LOr``), so the
  ``REPRO_COUNT_OPS=1`` oracle can check them for equality on exact
  programs and for the upper-bound direction on sound ones;
- **parallelism** discounts the ``seq`` axis through the backend's
  declared capabilities (``Target.capabilities``): a loop annotation the
  backend ignores buys nothing, one it honours divides the sequential
  trip by the hardware lane count;
- **traffic** re-walks the access sites (``analysis.access``) for
  per-tensor element counts, a reuse-discounted distinct-element
  estimate, and an innermost-stride classification per site.
"""

from __future__ import annotations

from math import ceil
from typing import Dict, List, Optional, Tuple

from ...ir import AccessType, all_vars, defined_tensors, makeSub, wrap
from ...ir import expr as E
from ...ir import stmt as S
from ..access import Access, collect_accesses
from ..bounds import BoundsCtx, const_bounds
from .model import (LIB_CALL_SEQ, STRIDE_ORDER, Counts, CostEstimate,
                    LoopCost, TensorTraffic, op_category)

#: |elementwise stride| at which an innermost access stops prefetching
#: usefully on real hardware (8 × f32 = one 32-byte sector per element)
HOSTILE_STRIDE = 8

#: modeled dispatch overhead (scalar-op units) of lowering a vectorized
#: loop to one whole-width NumPy kernel. Kernel dispatch (index-vector
#: construction, ufunc setup) costs on the order of dozens of
#: interpreted scalar ops, so vectorizing a short loop is modeled as
#: a net loss — matching measurement, where only trips past a few
#: dozen elements amortize the dispatch.
VEC_KERNEL_SEQ = 80.0

#: modeled per-element throughput advantage of a whole-loop NumPy kernel
#: over the interpreted scalar loop it replaces. The kernel still
#: touches every element — memory traffic and ufunc inner loops scale
#: with the trip count — so vectorization is a constant-factor discount,
#: not a free pass (dispatch overhead is VEC_KERNEL_SEQ on top).
VEC_WHOLE_WIDTH = 16


def count_expr(e: E.Expr, c: Counts) -> bool:
    """Accumulate the ops of one evaluation of ``e`` into ``c``; returns
    True when the count is exact (equals any dynamic evaluation)."""
    if isinstance(e, (E.Const, E.Var, E.AnyExpr)):
        return True
    if isinstance(e, E.Load):
        exact = True
        for i in e.indices:
            exact &= count_expr(i, c)
        c.note("loads")
        c.tensor_read(e.var)
        return exact
    if isinstance(e, E.IfExpr):
        exact = count_expr(e.cond, c)
        t, f = Counts(), Counts()
        te = count_expr(e.then_case, t)
        fe = count_expr(e.else_case, f)
        c.add(Counts.maxed(t, f))
        return exact and te and fe and t.same_totals(f)
    if isinstance(e, (E.LAnd, E.LOr)):
        # the interpreter short-circuits: the rhs may never evaluate, so
        # counting it is an over-approximation unless it is free
        exact = count_expr(e.lhs, c)
        r = Counts()
        re_ = count_expr(e.rhs, r)
        c.add(r)
        c.note("int_ops")
        return exact and re_ and r.total_ops() == 0
    if isinstance(e, E.LNot):
        exact = count_expr(e.operand, c)
        c.note("int_ops")
        return exact
    if isinstance(e, E.Cast):
        return count_expr(e.operand, c)
    if isinstance(e, E.Intrinsic):
        exact = True
        for a in e.args:
            exact &= count_expr(a, c)
        c.note("flops")
        return exact
    cat = op_category(e)
    exact = True
    for ch in e.children():
        exact &= count_expr(ch, c)
    if cat is not None:
        c.note(cat)
    return exact


class _Walker:
    """Statement walk producing per-execution :class:`Counts`."""

    def __init__(self, func: S.Func, caps, scalar_env: Dict[str, int],
                 assumed_trip: int):
        self.caps = caps
        self.assumed_trip = assumed_trip
        self.params = set(func.params)
        self.trips: Dict[str, Tuple[int, bool]] = {}
        #: iterator name -> trip count of the *currently open* loops,
        #: innermost wins (used by the guard-frequency analysis)
        self.var_trips: Dict[str, int] = {}
        self.loops: List[LoopCost] = []
        self.sound = True
        base = BoundsCtx()
        for k, v in sorted(scalar_env.items()):
            base = base.with_loop(k, wrap(int(v)), wrap(int(v) + 1))
        self.base_ctx = base

    def trip_of(self, s: S.For, ctx: BoundsCtx) -> Tuple[int, bool]:
        lo, up = const_bounds(makeSub(s.end, s.begin), ctx)
        if up is None:
            self.sound = False
            return self.assumed_trip, False
        up = max(0, up)
        return up, (lo is not None and max(0, lo) == up)

    def _vec_honored(self, s: S.For) -> bool:
        """Whether the backend will actually vectorize ``s`` — the code
        generators silently fall back to a plain loop on shapes their
        lowering cannot handle, and the model must charge the fallback."""
        f = self.caps.vec_feasible
        return f is None or bool(f(s))

    def seq_trip(self, s: S.For, trip: int, vec_ok: bool) -> float:
        prop = s.property
        if prop.parallel:
            cap = self.caps.capacity(prop.parallel)
            if cap is None:
                return 1.0
            return float(ceil(trip / max(1, cap))) if trip else 0.0
        if prop.vectorize and vec_ok:
            w = self.caps.vector_width
            if w is None:  # whole-loop kernel (NumPy vector backends);
                # the per-element discount is the model default unless
                # the backend's declared caps override it
                w = self.caps.vec_whole_width or VEC_WHOLE_WIDTH
            return float(ceil(trip / max(1, w))) if trip else 0.0
        return float(trip)

    def _guard_frac(self, cond: E.Expr,
                    ctx: BoundsCtx) -> Optional[float]:
        """Sound upper bound on the fraction of evaluations on which an
        else-less guard holds, or None when nothing is provable.

        For ``a (<|<=|>|>=) b``, direction-normalised to "holds iff
        ``d <= thr``" with ``d = a - b``, interval analysis under the
        enclosing loop ranges gives ``d ∈ [lo, up]``, of which ``S``
        integers satisfy the guard. If some open loop iterator ``v``
        appears in ``d`` with coefficient ±1, then for any fixed
        assignment of the other variables ``d`` sweeps ``trip(v)``
        *consecutive* integers inside ``[lo, up]`` — at most ``S`` of
        them satisfying — so the guard holds on at most
        ``min(1, S / trip(v))`` of the v-iterations, uniformly over the
        outer ones. The smallest such bound over eligible iterators is
        returned; conjunctions take the min of their sides (an
        intersection is no larger than either set)."""
        if isinstance(cond, E.LAnd):
            a = self._guard_frac(cond.lhs, ctx)
            b = self._guard_frac(cond.rhs, ctx)
            if a is None:
                return b
            return a if b is None else min(a, b)
        if isinstance(cond, (E.LT, E.LE)):
            d = makeSub(cond.lhs, cond.rhs)
            thr = -1 if isinstance(cond, E.LT) else 0
        elif isinstance(cond, (E.GT, E.GE)):
            d = makeSub(cond.rhs, cond.lhs)
            thr = -1 if isinstance(cond, E.GT) else 0
        else:
            return None
        lo, up = const_bounds(d, ctx)
        if lo is None or up is None:
            return None
        if up <= thr:
            return 1.0
        if lo > thr:
            return 0.0
        sat = thr - lo + 1  # integers of [lo, up] satisfying d <= thr
        best = None
        for v, trip in self.var_trips.items():
            if trip <= 1:
                continue
            k = _linear_coeff(d, v)
            if k is not None and abs(k) == 1:
                frac = min(1.0, sat / trip)
                best = frac if best is None else min(best, frac)
        return best

    def walk(self, s: S.Stmt, ctx: BoundsCtx,
             execs: int) -> Tuple[Counts, bool]:
        c = Counts()
        if isinstance(s, S.StmtSeq):
            exact = True
            for ch in s.stmts:
                cc, e = self.walk(ch, ctx, execs)
                c.add(cc)
                exact &= e
            return c, exact
        if isinstance(s, S.VarDef):
            exact = True
            if s.name not in self.params:
                # the runtime evaluates local shapes at every entry;
                # parameter/output buffers are bound by the driver
                for d in s.shape:
                    exact &= count_expr(d, c)
            cc, e = self.walk(s.body, ctx, execs)
            c.add(cc)
            return c, exact and e
        if isinstance(s, S.For):
            exact = count_expr(s.begin, c) & count_expr(s.end, c)
            trip, t_exact = self.trip_of(s, ctx)
            vec_ok = bool(s.property.vectorize) and self._vec_honored(s)
            seq = self.seq_trip(s, trip, vec_ok)
            head_seq = seq
            if vec_ok and self.caps.vector_width is None and trip:
                # kernel dispatch overhead: model default, unless the
                # backend's declared caps override it
                head_seq = seq + (self.caps.vec_kernel_seq
                                  or VEC_KERNEL_SEQ)
            inner_ctx = ctx.with_loop(s.iter_var, s.begin, s.end)
            prev_trip = self.var_trips.get(s.iter_var)
            self.var_trips[s.iter_var] = trip
            body_c, b_exact = self.walk(s.body, inner_ctx, execs * trip)
            if prev_trip is None:
                self.var_trips.pop(s.iter_var, None)
            else:
                self.var_trips[s.iter_var] = prev_trip
            c.note("iters", trip, head_seq)
            c.add_scaled(body_c, trip, seq)
            self.trips[s.sid] = (trip, t_exact)
            self.loops.append(
                LoopCost(s, trip, t_exact, seq, execs,
                         body_c.total_ops()))
            return c, exact and t_exact and b_exact
        if isinstance(s, S.If):
            exact = count_expr(s.cond, c)
            if s.else_case is None:
                frac = self._guard_frac(s.cond, ctx)
                if frac is not None:
                    # the guard provably holds on at most this fraction
                    # of the enclosing iterations: charge the body pro
                    # rata instead of the full branch max (split tails,
                    # window boundaries)
                    if frac <= 0.0:
                        return c, exact
                    t, te = self.walk(
                        s.then_case, ctx,
                        max(1, int(round(execs * frac))))
                    if frac >= 1.0:
                        c.add(t)
                        return c, exact and te
                    c.add_scaled(t, frac, frac)
                    return c, False
            t, te = self.walk(s.then_case, ctx, execs)
            if s.else_case is not None:
                f, fe = self.walk(s.else_case, ctx, execs)
            else:
                f, fe = Counts(), True
            c.add(Counts.maxed(t, f))
            return c, exact and te and fe and t.same_totals(f)
        if isinstance(s, S.Assert):
            exact = count_expr(s.cond, c)
            cc, e = self.walk(s.body, ctx, execs)
            c.add(cc)
            return c, exact and e
        if isinstance(s, S.Store):
            exact = True
            for i in s.indices:
                exact &= count_expr(i, c)
            exact &= count_expr(s.expr, c)
            c.note("stores")
            c.tensor_write(s.var)
            return c, exact
        if isinstance(s, S.ReduceTo):
            exact = True
            for i in s.indices:
                exact &= count_expr(i, c)
            exact &= count_expr(s.expr, c)
            c.note("reduces")
            # read-modify-write: the target is touched on both sides
            c.tensor_read(s.var)
            c.tensor_write(s.var)
            return c, exact
        if isinstance(s, S.Eval):
            return c, count_expr(s.expr, c)
        if isinstance(s, S.LibCall):
            c.note("lib_calls", 1, LIB_CALL_SEQ)
            return c, True
        # Alloc/Free/Any: free
        return c, True


# ---------------------------------------------------------------------------
# Traffic / stride second pass
# ---------------------------------------------------------------------------


def _linear_coeff(e: E.Expr, var: str) -> Optional[int]:
    """Coefficient of ``var`` in ``e`` when ``e`` is affine in it; None
    when ``var`` occurs non-linearly (or behind a Load — a gather)."""
    if isinstance(e, E.Var):
        return 1 if e.name == var else 0
    if isinstance(e, E.Const):
        return 0
    if isinstance(e, E.Load):
        return None if var in all_vars(e) else 0
    if isinstance(e, E.Add):
        a, b = _linear_coeff(e.lhs, var), _linear_coeff(e.rhs, var)
        return None if a is None or b is None else a + b
    if isinstance(e, E.Sub):
        a, b = _linear_coeff(e.lhs, var), _linear_coeff(e.rhs, var)
        return None if a is None or b is None else a - b
    if isinstance(e, E.Mul):
        if isinstance(e.lhs, E.IntConst):
            k = _linear_coeff(e.rhs, var)
            return None if k is None else e.lhs.val * k
        if isinstance(e.rhs, E.IntConst):
            k = _linear_coeff(e.lhs, var)
            return None if k is None else e.rhs.val * k
        return 0 if var not in all_vars(e) else None
    if isinstance(e, E.Cast):
        return _linear_coeff(e.operand, var)
    return 0 if var not in all_vars(e) else None


def _dim_extents(vd: S.VarDef, ctx: BoundsCtx) -> List[Optional[int]]:
    out = []
    for d in vd.shape:
        _lo, up = const_bounds(d, ctx)
        out.append(up if up is None or up >= 0 else 0)
    return out


def _numel_ub(vd: S.VarDef, ctx: BoundsCtx) -> Optional[int]:
    n = 1
    for ext in _dim_extents(vd, ctx):
        if ext is None:
            return None
        n *= ext
    return n


def classify_stride(a: Access, vd: Optional[S.VarDef],
                    ctx: BoundsCtx) -> Tuple[str, Optional[int]]:
    """(class, |element stride|) of the access along its innermost
    enclosing loop. Classes, friendliest first: ``invariant`` (index free
    of the loop var), ``unit``, ``bulk`` (whole-tensor library operand),
    ``strided`` (constant stride > 1 in the last dim), ``outer`` (the
    loop var strides a non-innermost dim — row-major hostile),
    ``indirect`` (a data-dependent gather/scatter)."""
    if a.indices is None:
        return "bulk", None
    if not a.loops:
        return "invariant", 0
    var = a.loops[-1].iter_var
    coeffs = [_linear_coeff(i, var) for i in a.indices]
    if any(k is None for k in coeffs):
        return "indirect", None
    if all(k == 0 for k in coeffs):
        return "invariant", 0
    exts = _dim_extents(vd, ctx) if vd is not None else \
        [None] * len(coeffs)
    if all(k == 0 for k in coeffs[:-1]):
        last = abs(coeffs[-1])
        return ("unit", 1) if last == 1 else ("strided", last)
    # the loop var moves an outer dimension: each step jumps a whole
    # row of the trailing dims
    stride = 0
    row = 1
    known = True
    for dim in range(len(coeffs) - 1, -1, -1):
        if coeffs[dim]:
            stride += abs(coeffs[dim]) * (row if known else 0)
        ext = exts[dim]
        if ext is None:
            known = False
        else:
            row *= max(1, ext)
    return "outer", (stride if known and stride else None)


def _reuse_iters(a: Access, trips: Dict[str, Tuple[int, bool]]) -> int:
    """Product of the trip counts of the innermost enclosing loops whose
    iterator does not appear in the access's indices — iterations across
    which the *same* elements are re-touched (temporal reuse)."""
    if a.indices is None:
        return 1
    used = set()
    for i in a.indices:
        used |= set(all_vars(i))
    factor = 1
    for l in reversed(a.loops):
        if l.iter_var in used:
            break
        factor *= max(1, trips.get(l.sid, (1, False))[0])
    return factor


def _traffic_pass(func: S.Func, trips, base_ctx: BoundsCtx):
    defs = defined_tensors(func.body)
    traffic: Dict[str, TensorTraffic] = {}
    stride_sites = []
    penalty = 0.0
    for a in collect_accesses(func.body):
        vd = defs.get(a.tensor)
        execs = 1
        for l in a.loops:
            execs *= max(0, trips.get(l.sid, (1, False))[0])
        row = traffic.get(a.tensor)
        if row is None:
            elem = vd.dtype.size_bytes if vd is not None else 4
            numel = _numel_ub(vd, base_ctx) if vd is not None else None
            row = traffic[a.tensor] = TensorTraffic(a.tensor, elem, numel)
        cls, stride = classify_stride(a, vd, base_ctx)
        if cls == "bulk":
            amount = row.numel if row.numel else 1
        else:
            amount = execs
        if a.is_write:
            row.writes += amount
            if a.reduce_op:
                row.reads += amount
        else:
            row.reads += amount
        row.distinct += amount / max(1, _reuse_iters(a, trips))
        if STRIDE_ORDER.index(cls) > STRIDE_ORDER.index(row.stride_class):
            row.stride_class = cls
        hostile = cls == "outer" or (
            cls == "strided" and (stride is None or stride >= HOSTILE_STRIDE))
        if hostile:
            penalty += float(execs)
            stride_sites.append((a, cls, stride, execs))
    footprint = 0
    for name, vd in defs.items():
        if vd.atype is not AccessType.CACHE or name not in traffic:
            continue
        n = _numel_ub(vd, base_ctx)
        if n is not None:
            footprint += n * vd.dtype.size_bytes
    return traffic, penalty, stride_sites, footprint


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def analyze(func: S.Func, backend: str, target,
            scalar_env: Optional[Dict[str, int]] = None,
            assumed_trip: int = 8) -> CostEstimate:
    """Compute the :class:`CostEstimate` of ``func`` for ``backend`` on
    ``target``. Pure and deterministic; callers memoize (see ``api``)."""
    caps = target.capabilities(backend)
    w = _Walker(func, caps, scalar_env or {}, assumed_trip)
    totals, exact = w.walk(func.body, w.base_ctx, 1)
    traffic, penalty, stride_sites, footprint = _traffic_pass(
        func, w.trips, w.base_ctx)
    return CostEstimate(
        name=func.name, backend=backend, target_name=target.name,
        counts=totals, loops=w.loops, traffic=traffic,
        stride_penalty=penalty, footprint_bytes=footprint,
        exact=exact and w.sound, sound=w.sound,
        assumed_trip=assumed_trip, stride_sites=stride_sites,
        stride_weight=0.25 if caps.stride_matters else 0.0)
